GO ?= go

.PHONY: all check build test race test-race bench bench-query vet fuzz experiments examples clean

all: build vet test

check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detector pass over the packages with real concurrency: the MapReduce
# runtime (retries, speculation), its consumers, and the parallel builders.
test-race:
	$(GO) test -race ./internal/mapreduce ./internal/core ./internal/mrjoin ./internal/dfs

# Query-engine microbenchmarks (alloc counts must report 0 allocs/op for
# steady-state Searcher use) plus the SearchBatch throughput experiment,
# which writes BENCH_query.json.
bench: bench-query
	$(GO) test -bench=. -benchmem ./...

bench-query:
	$(GO) test -run=NONE -bench='Searcher|SearchBatch' -benchmem ./internal/core/
	$(GO) run ./cmd/habench -exp query

fuzz:
	$(GO) test -fuzz=FuzzDecodeDynamic -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzFromString -fuzztime=15s ./internal/bitvec/

experiments:
	$(GO) run ./cmd/habench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dedup
	$(GO) run ./examples/imagesearch
	$(GO) run ./examples/chemsearch
	$(GO) run ./examples/streaming
	$(GO) run ./examples/mrpipeline

clean:
	$(GO) clean ./...
