GO ?= go

.PHONY: all check build test race test-race bench bench-query bench-frozen bench-serve bench-planner bench-load bench-load-rep bench-scale vet fmt-check fuzz fuzz-wire fuzz-mih fuzz-qcache fuzz-arena smoke debug-smoke lsm-smoke experiments examples clean

all: build vet test

check: build vet fmt-check test test-race fuzz-wire fuzz-mih fuzz-qcache fuzz-arena

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean, listing the offenders.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detector pass over everything; the concurrency-heavy packages (the
# MapReduce runtime, the serving layer's server/client, the parallel
# builders) are all covered by running the whole module.
test-race:
	$(GO) test -race ./...

# Query-engine microbenchmarks (alloc counts must report 0 allocs/op for
# steady-state Searcher use) plus the SearchBatch throughput experiment,
# which writes BENCH_query.json.
bench: bench-query
	$(GO) test -bench=. -benchmem ./...

bench-query:
	$(GO) test -run=NONE -bench='Searcher|SearchBatch' -benchmem ./internal/core/
	$(GO) run ./cmd/habench -exp query

# Frozen-index microbenchmarks: freeze (compile) time, flat-walk search and
# top-k, and the near-single-copy v2 decode, then the pointer-vs-frozen
# experiment rows (BENCH_query.json gains a "frozen" field per run).
bench-frozen:
	$(GO) test -run=NONE -bench='Freeze|Frozen' -benchmem ./internal/core/
	$(GO) run ./cmd/habench -exp query

# Serving-layer throughput experiment: QPS and latency against in-process
# shard servers across shard counts and batch sizes; writes BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/habench -exp serve

# Planner experiment: threshold sweep across the HA walk, MIH, and the brute
# scan at 64-bit codes, the engine crossovers, the planner's hit rate, and
# the auto-vs-forced-ha comparison; writes BENCH_planner.json.
bench-planner:
	$(GO) run ./cmd/habench -exp planner

# Traffic-shaped serving experiment: open-loop zipfian load against a real
# loopback deployment — result-cache hit rate and tail latency at 0.75x
# capacity, and the goodput collapse/survival sweep past saturation with
# admission shedding off and on; writes BENCH_load.json.
bench-load:
	$(GO) run ./cmd/habench -exp load

# Replica-routing experiment: the same zipfian workload against a replicated
# deployment under three routing policies (single replica, rendezvous
# affinity, naive split) plus a cold-failover window that kills one replica
# under load; writes the "replicated" section of BENCH_load.json.
bench-load-rep:
	$(GO) run ./cmd/habench -exp load-rep

# Zero-copy arena experiment at multi-million-code scale: streaming-build
# wall/peak-heap at two sizes, then mmap-vs-eager serving over the same v4
# snapshot (load-to-first-query, heap/mapped bytes, RSS growth, query
# latency); writes BENCH_scale.json.
bench-scale:
	$(GO) run ./cmd/habench -exp scale

fuzz:
	$(GO) test -fuzz=FuzzDecodeDynamic -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzDecodeIndex -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzDecodeFrozen -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzFromString -fuzztime=15s ./internal/bitvec/
	$(GO) test -fuzz=FuzzParseMutationFrames -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzStatsRespDowngrade -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeMIH -fuzztime=30s ./internal/mih/

# Short fuzz smoke of the protocol-v3 mutation-frame decoders and the
# version-negotiated StatsResp encode/parse round-trip — cheap enough to run
# on every check. Each -fuzz pattern must match exactly one target, so the
# two fuzzers run as separate invocations.
fuzz-wire:
	$(GO) test -run=NONE -fuzz=FuzzParseMutationFrames -fuzztime=5s ./internal/wire/
	$(GO) test -run=NONE -fuzz=FuzzStatsRespDowngrade -fuzztime=5s ./internal/wire/

# Short fuzz smoke of the MIH (HADX v3) codec's hostile-input hardening.
fuzz-mih:
	$(GO) test -run=NONE -fuzz=FuzzDecodeMIH -fuzztime=5s ./internal/mih/

# Short fuzz smoke of the result-cache key packing: distinct (code,
# threshold, engine, shard, epoch) tuples must never collide to one key.
fuzz-qcache:
	$(GO) test -run=NONE -fuzz=FuzzKeyPacking -fuzztime=5s ./internal/qcache/

# Short fuzz smoke of the HADX v4 arena section table: byte-level splats and
# truncations over the mmap-native layout must be rejected (or decode to an
# index that answers searches), never crash — in both alias and copy modes.
fuzz-arena:
	$(GO) test -run=NONE -fuzz=FuzzSectionTable -fuzztime=5s ./internal/core/

# End-to-end smoke of the serving stack: build the CLIs, generate a tiny
# dataset, shard it, start two haserve processes (one fault-injected), query
# through haquery, and diff against the in-process oracle.
smoke:
	./scripts/smoke.sh

# Smoke plus the observability surface: shard 0 serves its HTTP debug
# endpoint, and the script asserts /debug/obs reports non-empty latency
# histograms and nonzero request/fault counters.
debug-smoke:
	SMOKE_DEBUG=1 ./scripts/smoke.sh

# Smoke of the mutable (LSM) serving tier: restart the shards with -mutable,
# insert, delete, seal, and compact through haquery, and verify searches see
# every mutation.
lsm-smoke:
	SMOKE_LSM=1 ./scripts/smoke.sh

experiments:
	$(GO) run ./cmd/habench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dedup
	$(GO) run ./examples/imagesearch
	$(GO) run ./examples/chemsearch
	$(GO) run ./examples/streaming
	$(GO) run ./examples/mrpipeline

clean:
	$(GO) clean ./...
