// Package haindex_test benchmarks every table and figure of the paper's
// evaluation with testing.B micro-benchmarks. Each BenchmarkTableN* /
// BenchmarkFigN* family corresponds to one published artifact; run them all
// with
//
//	go test -bench=. -benchmem
//
// The habench command (cmd/habench) regenerates the full formatted tables;
// these benchmarks expose the same measurements to Go tooling.
package haindex_test

import (
	"fmt"
	"testing"

	"haindex"
)

const (
	benchN    = 5000
	benchBits = 32
	benchH    = 3
)

// benchEnv lazily prepares one hashed dataset per profile.
type benchEnv struct {
	codes   []haindex.Code
	vecs    []haindex.Vec
	hash    *haindex.SpectralHash
	queries []haindex.Code
}

var envCache = map[string]*benchEnv{}

func env(b *testing.B, profile haindex.DatasetProfile, n int) *benchEnv {
	b.Helper()
	key := fmt.Sprintf("%s/%d", profile.Name, n)
	if e, ok := envCache[key]; ok {
		return e
	}
	vecs := haindex.Generate(profile, n, 1)
	hf, err := haindex.LearnSpectralHash(haindex.Sample(vecs, n/10+100, 2), benchBits)
	if err != nil {
		b.Fatal(err)
	}
	codes := haindex.HashAll(hf, vecs)
	e := &benchEnv{codes: codes, vecs: vecs, hash: hf}
	for i := 0; i < 64; i++ {
		e.queries = append(e.queries, codes[(i*7919)%n])
	}
	envCache[key] = e
	return e
}

func (e *benchEnv) query(i int) haindex.Code { return e.queries[i%len(e.queries)] }

// ---- Table 4: Hamming-select query time per system ----

func benchSearch(b *testing.B, search func(haindex.Code, int) []int, e *benchEnv) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search(e.query(i), benchH)
	}
}

func BenchmarkTable4QueryNestedLoop(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx := haindex.NewNestedLoop(e.codes, nil)
	benchSearch(b, idx.Search, e)
}

func BenchmarkTable4QueryMH4(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx, err := haindex.NewMH4(e.codes, nil)
	if err != nil {
		b.Fatal(err)
	}
	benchSearch(b, idx.Search, e)
}

func BenchmarkTable4QueryMH10(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx, err := haindex.NewMH10(e.codes, nil)
	if err != nil {
		b.Fatal(err)
	}
	benchSearch(b, idx.Search, e)
}

func BenchmarkTable4QueryHEngine(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx, err := haindex.NewHEngine(e.codes, nil, benchH)
	if err != nil {
		b.Fatal(err)
	}
	benchSearch(b, idx.Search, e)
}

func BenchmarkTable4QueryHmSearch(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx, err := haindex.NewHmSearch(e.codes, nil, benchH)
	if err != nil {
		b.Fatal(err)
	}
	benchSearch(b, idx.Search, e)
}

func BenchmarkTable4QueryRadixTree(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx := haindex.BuildRadixTree(e.codes, nil)
	benchSearch(b, idx.Search, e)
}

func BenchmarkTable4QuerySHAIndex(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx := haindex.BuildStaticIndex(e.codes, nil, 8)
	benchSearch(b, idx.Search, e)
}

func BenchmarkTable4QueryDHAIndex(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx := haindex.BuildDynamicIndex(e.codes, nil, haindex.IndexOptions{})
	benchSearch(b, idx.Search, e)
}

// ---- Table 4: update time (delete + reinsert) ----

func BenchmarkTable4UpdateDHAIndex(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx := haindex.BuildDynamicIndex(e.codes, nil, haindex.IndexOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % benchN
		idx.Delete(id, e.codes[id])
		idx.Insert(id, e.codes[id])
	}
}

func BenchmarkTable4UpdateSHAIndex(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx := haindex.BuildStaticIndex(e.codes, nil, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % benchN
		idx.Delete(id, e.codes[id])
		idx.Insert(id, e.codes[id])
	}
}

func BenchmarkTable4UpdateMH4(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx, err := haindex.NewMH4(e.codes, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % benchN
		idx.Delete(id, e.codes[id])
		idx.Insert(id, e.codes[id])
	}
}

// ---- Figure 6: threshold sensitivity ----

func BenchmarkFig6(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	dha := haindex.BuildDynamicIndex(e.codes, nil, haindex.IndexOptions{})
	mh4, err := haindex.NewMH4(e.codes, nil)
	if err != nil {
		b.Fatal(err)
	}
	systems := []struct {
		name   string
		search func(haindex.Code, int) []int
	}{
		{"DHA", dha.Search},
		{"MH4", mh4.Search},
	}
	for _, sys := range systems {
		for h := 1; h <= 6; h++ {
			b.Run(fmt.Sprintf("%s/h=%d", sys.name, h), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sys.search(e.query(i), h)
				}
			})
		}
	}
}

// ---- Figure 8: window/depth parameter study ----

func BenchmarkFig8Build(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	for _, wf := range []float64{0.005, 0.02, 0.04} {
		for _, depth := range []int{4, 7} {
			w := int(wf * benchN)
			b.Run(fmt.Sprintf("w=%.3f/depth=%d", wf, depth), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					haindex.BuildDynamicIndex(e.codes, nil, haindex.IndexOptions{Window: w, Depth: depth})
				}
			})
		}
	}
}

func BenchmarkFig8Query(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	for _, wf := range []float64{0.005, 0.02, 0.04} {
		w := int(wf * benchN)
		idx := haindex.BuildDynamicIndex(e.codes, nil, haindex.IndexOptions{Window: w, Depth: 7})
		b.Run(fmt.Sprintf("w=%.3f", wf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.Search(e.query(i), benchH)
			}
		})
	}
}

// ---- Table 5: kNN-select systems ----

func BenchmarkTable5KNNLSH(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	lsh := haindex.NewE2LSH(e.vecs, haindex.E2LSHConfig{Tables: 20, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsh.Select(e.vecs[(i*7919)%benchN], 50)
	}
}

func BenchmarkTable5KNNLSBTree(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	lsb := haindex.NewLSBTree(e.vecs, haindex.LSBConfig{Trees: 25, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsb.Select(e.vecs[(i*7919)%benchN], 50)
	}
}

func BenchmarkTable5KNNDHAIndex(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx := haindex.BuildDynamicIndex(e.codes, nil, haindex.IndexOptions{})
	s := haindex.NewHammingKNN(idx, e.hash, e.vecs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(e.vecs[(i*7919)%benchN], 50)
	}
}

func BenchmarkTable5BuildLSBTree(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		haindex.NewLSBTree(e.vecs, haindex.LSBConfig{Trees: 25, Seed: 1})
	}
}

func BenchmarkTable5BuildDHAIndex(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		haindex.BuildDynamicIndex(e.codes, nil, haindex.IndexOptions{})
	}
}

// ---- Figures 7 and 9: distributed joins (pipeline per op) ----

func joinBenchData(b *testing.B) ([]haindex.Vec, []haindex.Vec, *haindex.Preprocessed, haindex.JoinOptions) {
	b.Helper()
	base := haindex.Generate(haindex.NUSWide, 400, 5)
	opt := haindex.JoinOptions{Bits: benchBits, Nodes: 4, Partitions: 4, SampleRate: 0.1, Threshold: benchH, Seed: 1}
	pre, err := haindex.PrepareJoin(base, base, opt)
	if err != nil {
		b.Fatal(err)
	}
	return base, base, pre, opt
}

func BenchmarkFig7MRHAIndexA(b *testing.B) {
	r, s, pre, opt := joinBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := haindex.BuildGlobalIndex(r, pre, opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := haindex.HammingJoin(s, g, pre, false, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.ShuffleBytes+res.Metrics.BroadcastBytes+
			g.Metrics.ShuffleBytes+g.Metrics.BroadcastBytes), "shuffle+bcast-bytes/op")
	}
}

func BenchmarkFig7MRHAIndexB(b *testing.B) {
	r, s, pre, opt := joinBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := haindex.BuildGlobalIndex(r, pre, opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := haindex.HammingJoin(s, g, pre, true, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.ShuffleBytes+res.Metrics.BroadcastBytes+
			g.Metrics.ShuffleBytes+g.Metrics.BroadcastBytes), "shuffle+bcast-bytes/op")
	}
}

func BenchmarkFig7PMH10(b *testing.B) {
	r, s, pre, opt := joinBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := haindex.PMHJoin(r, s, pre, 10, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.ShuffleBytes+res.Metrics.BroadcastBytes), "shuffle+bcast-bytes/op")
	}
}

func BenchmarkFig7PGBJ(b *testing.B) {
	r, s, _, opt := joinBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := haindex.PGBJ(r, s, 10, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.ShuffleBytes+res.Metrics.BroadcastBytes), "shuffle+bcast-bytes/op")
	}
}

// Figure 9 measures the same pipelines' wall time; ns/op of the Fig7
// benchmarks is that measurement, so Fig9 runs the scale sweep instead.
func BenchmarkFig9ScaleSweep(b *testing.B) {
	base := haindex.Generate(haindex.NUSWide, 150, 5)
	opt := haindex.JoinOptions{Bits: benchBits, Nodes: 4, Partitions: 4, SampleRate: 0.1, Threshold: benchH, Seed: 1}
	for _, scale := range []int{2, 4} {
		data := haindex.ScaleUp(base, scale)
		pre, err := haindex.PrepareJoin(data, data, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("MRHA-B/x%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := haindex.BuildGlobalIndex(data, pre, opt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := haindex.HammingJoin(data, g, pre, true, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("PGBJ/x%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := haindex.PGBJ(data, data, 10, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 10: sampling sweep ----

func BenchmarkFig10Sampling(b *testing.B) {
	base := haindex.Generate(haindex.NUSWide, 600, 5)
	for _, rate := range []float64{0.05, 0.30} {
		opt := haindex.JoinOptions{Bits: benchBits, Nodes: 4, Partitions: 4, SampleRate: rate, Threshold: benchH, Seed: 1}
		b.Run(fmt.Sprintf("rate=%.2f", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pre, err := haindex.PrepareJoin(base, base, opt)
				if err != nil {
					b.Fatal(err)
				}
				g, err := haindex.BuildGlobalIndex(base, pre, opt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := haindex.HammingJoin(base, g, pre, false, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablations (DESIGN.md design choices) ----

func BenchmarkAblationGrayOrder(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	for _, variant := range []struct {
		name string
		opts haindex.IndexOptions
	}{
		{"gray", haindex.IndexOptions{}},
		{"lex", haindex.IndexOptions{LexOrder: true}},
	} {
		idx := haindex.BuildDynamicIndex(e.codes, nil, variant.opts)
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.Search(e.query(i), benchH)
			}
		})
	}
}

func BenchmarkAblationResidual(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	idx := haindex.BuildDynamicIndex(e.codes, nil, haindex.IndexOptions{})
	b.Run("residual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.Search(e.query(i), benchH)
		}
	})
	b.Run("recompute-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.SearchRecomputeAll(e.query(i), benchH)
		}
	})
}

func BenchmarkAblationConsolidate(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	for _, variant := range []struct {
		name string
		opts haindex.IndexOptions
	}{
		{"consolidate", haindex.IndexOptions{}},
		{"no-consolidate", haindex.IndexOptions{NoConsolidate: true}},
	} {
		idx := haindex.BuildDynamicIndex(e.codes, nil, variant.opts)
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.Search(e.query(i), benchH)
			}
		})
	}
}

func BenchmarkAblationPivots(b *testing.B) {
	e := env(b, haindex.NUSWide, benchN)
	sample := e.codes[:500]
	b.Run("histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			haindex.Pivots(sample, 16)
		}
	})
	// Uniform pivots are nearly free to compute; the interesting contrast
	// (reducer skew) is reported by habench -exp ablation.
	pivots := haindex.Pivots(sample, 16)
	b.Run("partition-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			haindex.PartitionOf(pivots, e.codes[i%len(e.codes)])
		}
	})
}
