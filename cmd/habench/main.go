// Command habench regenerates the paper's evaluation tables and figures
// (Section 6) at a configurable scale and prints them as aligned text
// tables. See EXPERIMENTS.md for recorded outputs and the paper-vs-measured
// discussion.
//
// Usage:
//
//	habench -exp all            # everything, default scale
//	habench -exp table4 -n 50000
//	habench -exp fig7 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"haindex/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table4|fig6|fig7|fig8|fig9|fig10|table5|ablation|scaling|faults|query|serve|planner|load|load-rep|scale|all")
		quick  = flag.Bool("quick", false, "use the small smoke-test scale")
		n      = flag.Int("n", 0, "override Hamming-select dataset size")
		knnN   = flag.Int("knn-n", 0, "override kNN dataset size (Table 5)")
		joinN  = flag.Int("join-base", 0, "override join base size per side")
		scales = flag.String("scales", "", "override join scale sweep, e.g. 5,10,15")
		nodes  = flag.Int("nodes", 0, "override simulated cluster size")
		seed   = flag.Int64("seed", 0, "override RNG seed")
	)
	flag.Parse()

	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if *n > 0 {
		sc.SelectN = *n
	}
	if *knnN > 0 {
		sc.KNNN = *knnN
	}
	if *joinN > 0 {
		sc.JoinBase = *joinN
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
		sc.Partitions = *nodes
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *scales != "" {
		var ss []int
		for _, part := range strings.Split(*scales, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatalf("invalid -scales %q: %v", *scales, err)
			}
			ss = append(ss, v)
		}
		sc.JoinScales = ss
	}

	type runner struct {
		name string
		run  func(bench.Scale) ([]bench.Table, error)
	}
	runners := []runner{
		{"table4", bench.Table4},
		{"fig6", bench.Fig6},
		{"fig8", bench.Fig8},
		{"table5", bench.Table5},
		{"fig7", bench.Fig7},
		{"fig9", bench.Fig9},
		{"fig10", bench.Fig10},
		{"ablation", bench.Ablations},
		{"scaling", bench.Scaling},
		{"faults", bench.FaultSweep},
		{"query", bench.QueryBench},
		{"serve", bench.ServeBench},
		{"planner", bench.PlannerBench},
		{"load", bench.LoadBench},
		{"load-rep", bench.LoadRepBench},
		{"scale", bench.ScaleBench},
	}
	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		tables, err := r.run(sc)
		if err != nil {
			fatalf("%s: %v", r.name, err)
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
	}
	if !ran {
		fatalf("unknown experiment %q; want table4|fig6|fig7|fig8|fig9|fig10|table5|ablation|scaling|faults|query|serve|planner|load|load-rep|scale|all", *exp)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "habench: "+format+"\n", args...)
	os.Exit(1)
}
