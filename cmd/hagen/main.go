// Command hagen generates synthetic datasets matching the paper's three
// evaluation corpora (NUS-WIDE, Flickr, DBPedia profiles) and writes them as
// CSV, one feature vector per line. The -scale flag applies the paper's ×s
// scale-up technique.
//
// Usage:
//
//	hagen -profile NUS-WIDE -n 10000 -o nuswide.csv
//	hagen -profile Flickr -n 1000 -scale 5 -o flickr_x5.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"haindex/internal/dataset"
)

func main() {
	var (
		profile = flag.String("profile", "NUS-WIDE", "dataset profile: NUS-WIDE|Flickr|DBPedia")
		n       = flag.Int("n", 10000, "number of base tuples")
		scale   = flag.Int("scale", 1, "scale-up factor (paper's ×s technique)")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	p, err := dataset.ProfileByName(*profile)
	if err != nil {
		fatalf("%v", err)
	}
	data := dataset.Generate(p, *n, *seed)
	if *scale > 1 {
		data = dataset.ScaleUp(data, *scale)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	for _, v := range data {
		for i, x := range v {
			if i > 0 {
				if err := w.WriteByte(','); err != nil {
					fatalf("write: %v", err)
				}
			}
			if _, err := w.WriteString(strconv.FormatFloat(x, 'g', 8, 64)); err != nil {
				fatalf("write: %v", err)
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			fatalf("write: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "hagen: wrote %d tuples of %d dims (%s)\n", len(data), p.Dim, p.Name)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hagen: "+format+"\n", args...)
	os.Exit(1)
}
