// Command haidx builds, inspects and queries persisted HA-Index files (the
// binary wire format of internal/core's codec — the same bytes a cluster
// deployment would write to its DFS and broadcast).
//
// Usage:
//
//	hagen -profile NUS-WIDE -n 20000 -o d.csv
//	haidx build -data d.csv -bits 32 -o d.hadx
//	haidx info -index d.hadx
//	haidx search -index d.hadx -data d.csv -query-rows 0,42 -h 3
//	haidx shard -data d.csv -bits 32 -parts 4 -o shards/
//
// The shard subcommand splits the dataset into Gray-code partitions and
// writes one self-describing snapshot per partition (shard-00000.hasn …),
// ready to be served by haserve and queried through haquery. It also writes
// codes.txt (one bit-string per row) so queries can be issued by code.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/gray"
	"haindex/internal/hash"
	"haindex/internal/histo"
	"haindex/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: haidx <build|info|search|shard> [flags]")
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "search":
		cmdSearch(os.Args[2:])
	case "shard":
		cmdShard(os.Args[2:])
	default:
		fatalf("unknown subcommand %q; want build|info|search|shard", os.Args[1])
	}
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	data := fs.String("data", "", "CSV dataset (required)")
	bits := fs.Int("bits", 32, "binary code length")
	out := fs.String("o", "index.hadx", "output index file")
	seed := fs.Int64("seed", 1, "hash-learning sample seed")
	leafless := fs.Bool("leafless", false, "write the Option-B form without tuple-id tables")
	frozen := fs.Bool("frozen", false, "write the compiled (frozen, v2) form instead of the pointer encoding")
	arena := fs.Bool("arena", false, "write the mmap-native (frozen, v4) form; implies -frozen")
	fs.Parse(args)
	if *data == "" {
		fatalf("build: -data is required")
	}
	vecs, err := dataset.ReadCSV(*data)
	if err != nil {
		fatalf("%v", err)
	}
	hf, err := hash.LearnSpectral(dataset.Reservoir(vecs, len(vecs)/10+100, *seed), *bits)
	if err != nil {
		fatalf("learning hash: %v", err)
	}
	t0 := time.Now()
	idx := core.BuildDynamic(hash.HashAll(hf, vecs), nil, core.Options{})
	buildTime := time.Since(t0)
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	var sz int
	if *arena {
		fz := core.Freeze(idx)
		if err := fz.EncodeArena(f, !*leafless); err != nil {
			fatalf("encoding: %v", err)
		}
		sz = fz.EncodedSizeArena(!*leafless)
	} else if *frozen {
		fz := core.Freeze(idx)
		if err := fz.Encode(f, !*leafless); err != nil {
			fatalf("encoding: %v", err)
		}
		sz, _ = fz.EncodedSize(!*leafless)
	} else {
		if err := idx.Encode(f, !*leafless); err != nil {
			fatalf("encoding: %v", err)
		}
		sz, _ = idx.EncodedSize(!*leafless)
	}
	fmt.Printf("haidx: indexed %d tuples (%d-bit codes) in %v; wrote %s (%.1f KB)\n",
		idx.Len(), *bits, buildTime.Round(time.Millisecond), *out, float64(sz)/1e3)
	fmt.Println("note: queries must be hashed with the same learned function; keep the dataset and seed")
}

func loadIndex(path string) core.Index {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	idx, err := core.DecodeIndex(f)
	if err != nil {
		fatalf("decoding %s: %v", path, err)
	}
	return idx
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	index := fs.String("index", "", "index file (required)")
	fs.Parse(args)
	if *index == "" {
		fatalf("info: -index is required")
	}
	idx := loadIndex(*index)
	// Both index forms expose the same structural counters.
	stats := idx.(interface {
		Codes() []bitvec.Code
		NodeCount() int
		EdgeCount() int
		SizeBytes() int
	})
	form := "pointer (v1)"
	if fz, ok := idx.(*core.FrozenIndex); ok {
		form = "frozen (v2)"
		if fz.ArenaForm() {
			form = "arena (v4, mmap-native)"
		}
	}
	fmt.Printf("HA-Index file: %s\n", *index)
	fmt.Printf("  form:           %s\n", form)
	fmt.Printf("  code length:    %d bits\n", idx.Length())
	fmt.Printf("  tuples:         %d\n", idx.Len())
	fmt.Printf("  distinct codes: %d\n", len(stats.Codes()))
	fmt.Printf("  internal nodes: %d\n", stats.NodeCount())
	fmt.Printf("  edges:          %d\n", stats.EdgeCount())
	if dyn, ok := idx.(*core.DynamicIndex); ok {
		fmt.Printf("  memory:         %.1f KB (internal %.1f KB)\n",
			float64(dyn.SizeBytes())/1e3, float64(dyn.InternalSizeBytes())/1e3)
	} else {
		fmt.Printf("  memory:         %.1f KB (flat arena)\n", float64(stats.SizeBytes())/1e3)
	}
}

func cmdSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	index := fs.String("index", "", "index file (required)")
	data := fs.String("data", "", "CSV dataset the index was built from (required)")
	rows := fs.String("query-rows", "0", "comma-separated dataset rows used as queries")
	h := fs.Int("h", 3, "Hamming threshold")
	seed := fs.Int64("seed", 1, "hash-learning sample seed used at build time")
	fs.Parse(args)
	if *index == "" || *data == "" {
		fatalf("search: -index and -data are required")
	}
	idx := loadIndex(*index)
	vecs, err := dataset.ReadCSV(*data)
	if err != nil {
		fatalf("%v", err)
	}
	hf, err := hash.LearnSpectral(dataset.Reservoir(vecs, len(vecs)/10+100, *seed), idx.Length())
	if err != nil {
		fatalf("re-learning hash: %v", err)
	}
	sr := core.NewSearcher(idx)
	for _, part := range strings.Split(*rows, ",") {
		row, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || row < 0 || row >= len(vecs) {
			fatalf("invalid query row %q (dataset has %d rows)", part, len(vecs))
		}
		q := hf.Hash(vecs[row])
		t0 := time.Now()
		ids := append([]int(nil), sr.Search(q, *h)...)
		took := time.Since(t0)
		sort.Ints(ids)
		fmt.Printf("row %d: %d matches within h=%d in %v [%d distance computations]\n",
			row, len(ids), *h, took, sr.Stats.DistanceComputations)
	}
}

// cmdShard hashes the dataset, picks Gray-rank pivots from a sample, splits
// the rows into contiguous Gray partitions, and writes one serving snapshot
// per partition. Row numbers in the CSV become the global tuple ids, so
// results from a sharded deployment line up with a single-index build.
func cmdShard(args []string) {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	data := fs.String("data", "", "CSV dataset (required)")
	bits := fs.Int("bits", 32, "binary code length")
	parts := fs.Int("parts", 2, "number of partitions (one snapshot each)")
	out := fs.String("o", "shards", "output directory")
	seed := fs.Int64("seed", 1, "hash-learning sample seed")
	frozen := fs.Bool("frozen", true, "write frozen snapshots; -frozen=false writes the pointer encoding")
	arena := fs.Bool("arena", true, "write mmap-native (v4) snapshots via the streaming builder; -arena=false writes v2")
	chunk := fs.Int("chunk", 1<<18, "streaming-build chunk size in tuples (peak memory is O(chunk), not O(partition))")
	fs.Parse(args)
	if *data == "" {
		fatalf("shard: -data is required")
	}
	if *parts < 1 {
		fatalf("shard: -parts must be >= 1")
	}
	vecs, err := dataset.ReadCSV(*data)
	if err != nil {
		fatalf("%v", err)
	}
	hf, err := hash.LearnSpectral(dataset.Reservoir(vecs, len(vecs)/10+100, *seed), *bits)
	if err != nil {
		fatalf("learning hash: %v", err)
	}
	codes := hash.HashAll(hf, vecs)

	// Strided sample: a prefix sample is biased on row-ordered (clustered)
	// datasets and dumps the unseen clusters into one partition.
	pivots := histo.Pivots(histo.Sample(codes, 2000), *parts)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	byPart := make([][]int, *parts)
	for i, c := range codes {
		m := histo.PartitionID(pivots, c)
		byPart[m] = append(byPart[m], i)
	}
	t0 := time.Now()
	for m := 0; m < *parts; m++ {
		rows := byPart[m]
		partCodes := make([]bitvec.Code, len(rows))
		for j, i := range rows {
			partCodes[j] = codes[i]
		}
		meta := wire.SnapshotMeta{Part: m, Parts: *parts, Length: *bits, Pivots: pivots}
		path := filepath.Join(*out, fmt.Sprintf("shard-%05d.hasn", m))
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		if *frozen && *arena {
			// Streaming build: Gray-sort the partition so chunks cover tight
			// Gray ranges, then freeze-and-spool chunk by chunk straight into
			// a v4 snapshot — the partition index is never resident at once.
			gray.Sort(partCodes, rows)
			sw, err := core.NewFrozenStreamWriter(*bits, *chunk, core.Options{})
			if err != nil {
				fatalf("%v", err)
			}
			for j, c := range partCodes {
				if err := sw.Add(rows[j], c); err != nil {
					fatalf("streaming %s: %v", path, err)
				}
			}
			if err := wire.WriteSnapshotStream(f, meta, sw); err != nil {
				fatalf("writing %s: %v", path, err)
			}
		} else {
			var idx core.Index = core.BuildDynamic(partCodes, rows, core.Options{})
			if *frozen {
				idx = core.Freeze(idx.(*core.DynamicIndex))
			}
			if err := wire.WriteSnapshot(f, meta, idx); err != nil {
				fatalf("writing %s: %v", path, err)
			}
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("haidx: %s: %d tuples\n", path, len(rows))
	}
	cf, err := os.Create(filepath.Join(*out, "codes.txt"))
	if err != nil {
		fatalf("%v", err)
	}
	cw := bufio.NewWriter(cf)
	for _, c := range codes {
		fmt.Fprintln(cw, c.String())
	}
	if err := cw.Flush(); err != nil {
		fatalf("%v", err)
	}
	cf.Close()
	fmt.Printf("haidx: sharded %d tuples into %d partitions in %v; codes in %s\n",
		len(codes), *parts, time.Since(t0).Round(time.Millisecond), filepath.Join(*out, "codes.txt"))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "haidx: "+format+"\n", args...)
	os.Exit(1)
}
