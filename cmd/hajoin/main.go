// Command hajoin runs the MapReduce Hamming-join pipeline of Section 5 over
// two CSV datasets: preprocessing (sampling, hash learning, pivot
// selection), global HA-Index construction, and the join itself (Option A
// or B), or one of the distributed baselines (PMH, PGBJ). It reports result
// size, shuffle and broadcast volumes, reducer skew, and per-phase times.
//
// Usage:
//
//	hagen -profile NUS-WIDE -n 2000 -o r.csv
//	hagen -profile NUS-WIDE -n 2000 -seed 2 -o s.csv
//	hajoin -r r.csv -s s.csv -method mrha-a -h 3 -nodes 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"haindex/internal/dataset"
	"haindex/internal/mapreduce"
	"haindex/internal/mrjoin"
)

func main() {
	var (
		rPath    = flag.String("r", "", "CSV dataset for table R (required)")
		sPath    = flag.String("s", "", "CSV dataset for table S (defaults to R: self-join)")
		method   = flag.String("method", "mrha-a", "plan: mrha-a|mrha-b|pmh|pgbj")
		h        = flag.Int("h", 3, "Hamming distance threshold")
		bits     = flag.Int("bits", 32, "binary code length")
		nodes    = flag.Int("nodes", 16, "simulated cluster size")
		sample   = flag.Float64("sample", 0.1, "preprocessing sample rate")
		k        = flag.Int("k", 50, "k for the PGBJ kNN-join")
		seed     = flag.Int64("seed", 1, "RNG seed")
		sworkers = flag.Int("search-workers", 0, "per-reducer query-batch workers (0 = GOMAXPROCS, 1 = serial)")

		failEvery = flag.Int("fail-every", 0, "inject a failure into the first attempt of every Nth map and reduce task (0 = none)")
		straggle  = flag.Duration("straggle", 0, "stall map task 0 of every job by this duration (straggler injection)")
		speculate = flag.Bool("speculate", false, "enable speculative execution of stragglers")
		retries   = flag.Int("retries", 0, "per-task attempt budget (0 = Hadoop's default of 4)")
	)
	flag.Parse()
	if *rPath == "" {
		fatalf("-r is required")
	}
	r, err := dataset.ReadCSV(*rPath)
	if err != nil {
		fatalf("%v", err)
	}
	s := r
	if *sPath != "" {
		if s, err = dataset.ReadCSV(*sPath); err != nil {
			fatalf("%v", err)
		}
	}
	opt := mrjoin.Options{
		Bits:       *bits,
		Nodes:      *nodes,
		Partitions: *nodes,
		SampleRate: *sample,
		Threshold:  *h,
		Seed:       *seed,
		Retry:      mapreduce.RetryPolicy{MaxAttempts: *retries},

		SearchWorkers: *sworkers,
	}
	if *failEvery > 0 || *straggle > 0 {
		plan := mapreduce.NewFaultPlan()
		if *failEvery > 0 {
			plan.FailEvery(mapreduce.MapTask, *failEvery).FailEvery(mapreduce.ReduceTask, *failEvery)
		}
		if *straggle > 0 {
			plan.Delay(mapreduce.MapTask, 0, 0, *straggle)
		}
		opt.Faults = plan
	}
	if *speculate {
		opt.Speculation = mapreduce.Speculation{Enabled: true}
	}
	fmt.Printf("R: %d tuples, S: %d tuples, h=%d, %d nodes\n", len(r), len(s), *h, *nodes)

	if *method == "pgbj" {
		t0 := time.Now()
		res, err := mrjoin.PGBJ(r, s, *k, opt)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("PGBJ exact %d-NN join: %d result lists in %v\n", *k, len(res.Neighbors), time.Since(t0).Round(time.Millisecond))
		printMetrics("total", res.Metrics)
		return
	}

	t0 := time.Now()
	pre, err := mrjoin.Preprocess(r, s, opt)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("phase 1 (preprocess): sample=%d, learn=%v, pivots=%v\n",
		pre.SampleSize, pre.LearnTime.Round(time.Millisecond), pre.PivotTime.Round(time.Millisecond))

	if *method == "pmh" {
		res, err := mrjoin.PMHJoin(r, s, pre, 10, opt)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("PMH-10 join: %d pairs in %v\n", len(res.Pairs), time.Since(t0).Round(time.Millisecond))
		printMetrics("join", res.Metrics)
		return
	}

	g, err := mrjoin.BuildGlobalIndex(r, pre, opt)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("phase 2 (global HA-Index): %d nodes, %d edges, merge=%v\n",
		g.Index.NodeCount(), g.Index.EdgeCount(), g.Merge.Round(time.Microsecond))
	printMetrics("build", g.Metrics)

	var res *mrjoin.JoinResult
	switch *method {
	case "mrha-a":
		res, err = mrjoin.HammingJoinA(s, g, pre, opt)
	case "mrha-b":
		res, err = mrjoin.HammingJoinB(s, g, pre, opt)
	default:
		fatalf("unknown method %q", *method)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("phase 3 (%s): %d pairs, total %v\n", *method, len(res.Pairs), time.Since(t0).Round(time.Millisecond))
	printMetrics("join", res.Metrics)
	if res.PostJoin > 0 {
		fmt.Printf("  post-join (id recovery): %v\n", res.PostJoin.Round(time.Microsecond))
	}
}

func printMetrics(phase string, m mapreduce.Metrics) {
	fmt.Printf("  %s: shuffle %.3f MB, broadcast %.3f MB, reducer skew %.2f\n",
		phase, float64(m.ShuffleBytes)/1e6, float64(m.BroadcastBytes)/1e6, m.Skew())
	if m.Wall > 0 {
		fmt.Printf("  %s walls: map=%v shuffle=%v reduce=%v (total %v)\n",
			phase, m.MapWall.Round(time.Microsecond), m.ShuffleWall.Round(time.Microsecond),
			m.ReduceWall.Round(time.Microsecond), m.Wall.Round(time.Microsecond))
	}
	if m.Attempts > int64(m.Tasks()) || m.SpeculativeLaunched > 0 {
		fmt.Printf("  %s failures: %d attempts for %d tasks, %d retried, %d/%d speculative won/launched, wasted %.3f MB\n",
			phase, m.Attempts, m.Tasks(), m.RetriedTasks, m.SpeculativeWon, m.SpeculativeLaunched,
			float64(m.WastedBytes)/1e6)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hajoin: "+format+"\n", args...)
	os.Exit(1)
}
