// Command haquery fans similarity queries across running haserve shards. It
// dials every replica group, learns the deployment's pivots from the
// handshakes, routes each query only to the shards whose Gray range can hold
// a match within the threshold, and merges the per-shard answers.
//
// Usage:
//
//	haquery -shards 127.0.0.1:7070,127.0.0.1:7071 -codes 0101...,1100... -h 3
//	haquery -shards "host:7070/host:7170,host:7071" -codes-file shards/codes.txt -rows 0,42 -h 3 -topk 5
//	haquery -shards ... -codes-file shards/codes.txt -rows 0-99 -h 3 -oracle shards/
//
// Shards are comma-separated; replicas of one shard are joined with "/".
// With -oracle DIR the same queries are also answered by an in-process
// index rebuilt from every snapshot in DIR, the two result sets are diffed,
// and a mismatch exits nonzero — the end-to-end correctness check the smoke
// test runs.
//
// Against a mutable deployment (haserve -mutable) the router also mutates:
//
//	haquery -shards ... -insert "500:0101...,501:1100..."   # upsert tuples
//	haquery -shards ... -delete 500,501                     # delete by id
//	haquery -shards ... -seal -h 3 -codes 0101...           # freeze memtables
//	haquery -shards ... -seal-compact                       # ...and compact
//
// Mutations run before the queries of the same invocation, so an inserted
// tuple is immediately searchable. Inserts route by the code's Gray
// partition; deletes and seals broadcast.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/client"
	"haindex/internal/core"
	"haindex/internal/obs"
	"haindex/internal/wire"
)

func main() {
	var (
		shards    = flag.String("shards", "", "shard addresses: comma between shards, \"/\" between replicas (required)")
		codesCSV  = flag.String("codes", "", "comma-separated query bit-strings")
		codesFile = flag.String("codes-file", "", "file with one bit-string per line (haidx shard writes codes.txt)")
		rows      = flag.String("rows", "0", "rows of -codes-file to query: comma-separated, \"-\" for ranges")
		h         = flag.Int("h", 3, "Hamming threshold")
		topk      = flag.Int("topk", 0, "also run top-k queries with this k (0 = off)")
		hedge     = flag.Duration("hedge", 0, "hedge delay before racing the next replica (0 = off)")
		oracle    = flag.String("oracle", "", "snapshot directory to rebuild an in-process oracle from; diff and exit nonzero on mismatch")
		verbose   = flag.Bool("v", false, "print every id list")
		trace     = flag.Bool("trace", false, "print the span tree of the slowest batch and per-attempt latency percentiles")
		engine    = flag.String("engine", "auto", "access path forced on every shard: auto|ha|mih|scan (non-auto needs protocol v4 shards with the engine enabled)")
		priority  = flag.String("priority", "", "admission class under server load shedding: normal|interactive|batch (rides protocol v5; older shards ignore it)")

		insert      = flag.String("insert", "", "comma-separated id:bit-string upserts applied before querying (mutable shards)")
		deleteIDs   = flag.String("delete", "", "comma-separated tuple ids deleted before querying (mutable shards)")
		seal        = flag.Bool("seal", false, "seal every shard's memtable into a frozen segment")
		sealCompact = flag.Bool("seal-compact", false, "seal, then compact every shard's segment stack")
	)
	flag.Parse()
	if *shards == "" {
		fatalf("-shards is required")
	}
	var addrs [][]string
	for _, sh := range strings.Split(*shards, ",") {
		var reps []string
		for _, rep := range strings.Split(sh, "/") {
			if rep = strings.TrimSpace(rep); rep != "" {
				reps = append(reps, rep)
			}
		}
		if len(reps) > 0 {
			addrs = append(addrs, reps)
		}
	}

	r, err := client.Dial(addrs, client.Options{HedgeAfter: *hedge, Engine: *engine, Priority: *priority})
	if err != nil {
		fatalf("%v", err)
	}
	defer r.Close()

	mutated := runMutations(r, *insert, *deleteIDs, *seal, *sealCompact)

	queries := loadQueries(*codesCSV, *codesFile, *rows, r.Length())
	if len(queries) == 0 {
		if mutated {
			return // a pure mutation invocation needs no queries
		}
		fatalf("no queries; pass -codes or -codes-file")
	}

	t0 := time.Now()
	got, err := r.SearchBatch(queries, *h)
	if err != nil {
		fatalf("search: %v", err)
	}
	took := time.Since(t0)
	total := 0
	for i, ids := range got {
		total += len(ids)
		if *verbose {
			fmt.Printf("query %d: %d matches %v\n", i, len(ids), ids)
		}
	}
	fmt.Printf("haquery: %d queries over %d shards: %d matches within h=%d in %v\n",
		len(queries), r.Parts(), total, *h, took.Round(time.Microsecond))

	var tkIDs, tkDists [][]int
	if *topk > 0 {
		tkIDs, tkDists, err = r.TopK(queries, *topk)
		if err != nil {
			fatalf("topk: %v", err)
		}
		if *verbose {
			for i := range tkIDs {
				fmt.Printf("query %d top-%d: ids %v dists %v\n", i, *topk, tkIDs[i], tkDists[i])
			}
		}
	}

	st := r.Stats()
	fmt.Printf("haquery: routed %d shard-queries, pruned %d, %d retries (%v backing off), %d hedges (%d won, %d losers drained)\n",
		st.QueriesRouted, st.QueriesPruned, st.Retries, st.BackoffWait.Round(time.Microsecond),
		st.Hedges, st.HedgeWins, st.HedgeLosses)

	if *trace {
		snap := r.Snapshot()
		fmt.Printf("haquery: attempt latency %s\n", latSummary(snap.Attempt))
		for m, hs := range snap.PerShard {
			if hs.Count > 0 {
				fmt.Printf("haquery:   shard %d %s\n", m, latSummary(hs))
			}
		}
		if slowest := r.Tracer().Slowest(); slowest != nil {
			fmt.Printf("haquery: slowest batch (%v):\n%s", slowest.Duration().Round(time.Microsecond), slowest.Tree())
		}
	}

	if *oracle != "" {
		diffOracle(*oracle, queries, *h, *topk, got, tkIDs, tkDists)
	}
}

// runMutations applies -insert, -delete, and -seal/-seal-compact, in that
// order, reporting whether any mutation flag was given.
func runMutations(r *client.Router, insert, deleteIDs string, seal, sealCompact bool) bool {
	mutated := false
	if insert != "" {
		mutated = true
		var ids []int
		var codes []bitvec.Code
		for _, pair := range strings.Split(insert, ",") {
			i := strings.IndexByte(pair, ':')
			if i < 0 {
				fatalf("bad -insert pair %q: want id:bit-string", pair)
			}
			id, err := strconv.Atoi(strings.TrimSpace(pair[:i]))
			if err != nil || id < 0 {
				fatalf("bad -insert id %q", pair[:i])
			}
			c, err := bitvec.FromString(strings.TrimSpace(pair[i+1:]))
			if err != nil {
				fatalf("bad -insert code in %q: %v", pair, err)
			}
			if c.Len() != r.Length() {
				fatalf("-insert code for id %d is %d bits; the deployment serves %d-bit codes", id, c.Len(), r.Length())
			}
			ids = append(ids, id)
			codes = append(codes, c)
		}
		replaced, err := r.Insert(ids, codes)
		if err != nil {
			fatalf("insert: %v", err)
		}
		fmt.Printf("haquery: upserted %d tuples (%d replaced an older version)\n", len(ids), replaced)
	}
	if deleteIDs != "" {
		mutated = true
		var ids []int
		for _, s := range strings.Split(deleteIDs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || id < 0 {
				fatalf("bad -delete id %q", s)
			}
			ids = append(ids, id)
		}
		deleted, err := r.Delete(ids)
		if err != nil {
			fatalf("delete: %v", err)
		}
		fmt.Printf("haquery: deleted %d of %d ids\n", deleted, len(ids))
	}
	if seal || sealCompact {
		mutated = true
		seals, err := r.Seal(sealCompact)
		if err != nil {
			fatalf("seal: %v", err)
		}
		for m, sok := range seals {
			fmt.Printf("haquery: shard %d sealed: %d segments, %d memtable entries, %d tombstones, epoch %d\n",
				m, sok.Segments, sok.MemtableSize, sok.Tombstones, sok.Epoch)
		}
	}
	return mutated
}

// loadQueries parses -codes, or the selected -rows of -codes-file.
func loadQueries(codesCSV, codesFile, rows string, length int) []bitvec.Code {
	var out []bitvec.Code
	parse := func(s string) bitvec.Code {
		c, err := bitvec.FromString(strings.TrimSpace(s))
		if err != nil {
			fatalf("bad code %q: %v", s, err)
		}
		if c.Len() != length {
			fatalf("code %q is %d bits; the deployment serves %d-bit codes", s, c.Len(), length)
		}
		return c
	}
	if codesCSV != "" {
		for _, s := range strings.Split(codesCSV, ",") {
			out = append(out, parse(s))
		}
	}
	if codesFile != "" {
		f, err := os.Open(codesFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		var lines []string
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if s := strings.TrimSpace(sc.Text()); s != "" {
				lines = append(lines, s)
			}
		}
		if err := sc.Err(); err != nil {
			fatalf("%v", err)
		}
		for _, part := range strings.Split(rows, ",") {
			lo, hi, err := parseRange(strings.TrimSpace(part))
			if err != nil || lo < 0 || hi >= len(lines) || lo > hi {
				fatalf("invalid row selection %q (file has %d rows)", part, len(lines))
			}
			for row := lo; row <= hi; row++ {
				out = append(out, parse(lines[row]))
			}
		}
	}
	return out
}

func parseRange(s string) (lo, hi int, err error) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		if lo, err = strconv.Atoi(s[:i]); err != nil {
			return
		}
		hi, err = strconv.Atoi(s[i+1:])
		return
	}
	lo, err = strconv.Atoi(s)
	return lo, lo, err
}

// diffOracle rebuilds one in-process index from every snapshot in dir and
// checks the distributed answers against it, id for id.
func diffOracle(dir string, queries []bitvec.Code, h, topk int, got [][]int, tkIDs, tkDists [][]int) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.hasn"))
	if err != nil || len(paths) == 0 {
		fatalf("oracle: no *.hasn snapshots in %s", dir)
	}
	sort.Strings(paths)
	var ids []int
	var codes []bitvec.Code
	for _, p := range paths {
		_, idx, err := wire.ReadSnapshotFile(p)
		if err != nil {
			fatalf("oracle: %v", err)
		}
		// Both snapshot forms (pointer and frozen) enumerate their tuples.
		idx.(interface {
			Tuples(func(id int, code bitvec.Code))
		}).Tuples(func(id int, code bitvec.Code) {
			ids = append(ids, id)
			codes = append(codes, code)
		})
	}
	if len(codes) == 0 {
		fatalf("oracle: snapshots in %s hold no tuples", dir)
	}
	all := core.BuildDynamic(codes, ids, core.Options{})
	sr := core.NewSearcher(all)
	mismatches := 0
	for i, q := range queries {
		want := append([]int(nil), sr.Search(q, h)...)
		sort.Ints(want)
		if !equalInts(got[i], want) {
			mismatches++
			fmt.Fprintf(os.Stderr, "haquery: MISMATCH query %d: shards %v, oracle %v\n", i, got[i], want)
		}
		if topk > 0 {
			wIDs, wDists := sr.TopK(q, topk)
			if !equalInts(tkIDs[i], wIDs) || !equalInts(tkDists[i], wDists) {
				mismatches++
				fmt.Fprintf(os.Stderr, "haquery: MISMATCH top-%d query %d: shards (%v,%v), oracle (%v,%v)\n",
					topk, i, tkIDs[i], tkDists[i], wIDs, wDists)
			}
		}
	}
	if mismatches > 0 {
		fatalf("oracle: %d mismatching queries", mismatches)
	}
	fmt.Printf("haquery: oracle check passed — %d queries identical to the in-process index (%d tuples)\n",
		len(queries), all.Len())
}

// latSummary renders a nanosecond-valued histogram summary as durations.
func latSummary(h obs.HistSummary) string {
	if h.Count == 0 {
		return "empty"
	}
	us := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v (n=%d)",
		us(h.P50), us(h.P95), us(h.P99), us(h.Max), h.Count)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "haquery: "+format+"\n", args...)
	os.Exit(1)
}
