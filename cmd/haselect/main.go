// Command haselect answers Hamming-select queries over a CSV dataset: it
// learns a spectral hash from a sample, hashes the dataset into binary
// codes, builds the chosen index, and reports the tuples within the Hamming
// threshold of each query row, with per-query work statistics.
//
// Usage:
//
//	hagen -profile NUS-WIDE -n 20000 -o d.csv
//	haselect -data d.csv -method dha -h 3 -query-rows 0,17,99
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"haindex/internal/baseline"
	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/hash"
	"haindex/internal/mih"
	"haindex/internal/planner"
	"haindex/internal/radix"
)

func main() {
	var (
		data    = flag.String("data", "", "CSV dataset (from hagen); required")
		method  = flag.String("method", "dha", "index: dha|sha|radix|nl|mh4|mh10|hengine|hmsearch|mih|planner")
		engine  = flag.String("engine", "auto", "with -method planner: auto|ha|mih|scan — force one access path or let the measured cost model choose")
		h       = flag.Int("h", 3, "Hamming distance threshold")
		bits    = flag.Int("bits", 32, "binary code length")
		rows    = flag.String("query-rows", "0", "comma-separated dataset row ids used as queries")
		seed    = flag.Int64("seed", 1, "RNG seed for hash learning sample")
		verbose = flag.Bool("v", false, "print matched ids (not just counts)")
		workers = flag.Int("workers", 1, "batch the query rows through a SearchBatch worker pool (0 = GOMAXPROCS, 1 = serial per-query loop); dha/sha only")
	)
	flag.Parse()
	if *data == "" {
		fatalf("-data is required")
	}
	vecs, err := dataset.ReadCSV(*data)
	if err != nil {
		fatalf("%v", err)
	}
	sample := dataset.Reservoir(vecs, len(vecs)/10+100, *seed)
	hf, err := hash.LearnSpectral(sample, *bits)
	if err != nil {
		fatalf("learning hash: %v", err)
	}
	codes := hash.HashAll(hf, vecs)

	t0 := time.Now()
	search, stats, size, batchIdx := buildIndex(*method, *engine, codes, *h, *seed)
	fmt.Printf("built %s over %d tuples in %v (%.1f MB)\n",
		*method, len(codes), time.Since(t0).Round(time.Millisecond), float64(size())/1e6)

	var rowIDs []int
	for _, part := range strings.Split(*rows, ",") {
		row, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || row < 0 || row >= len(codes) {
			fatalf("invalid query row %q (dataset has %d rows)", part, len(codes))
		}
		rowIDs = append(rowIDs, row)
	}

	if *workers != 1 {
		// Batch path: drain every query row through a worker pool of
		// Searchers over the shared index.
		if batchIdx == nil {
			fatalf("-workers requires -method dha, sha, or mih")
		}
		queries := make([]bitvec.Code, len(rowIDs))
		for i, row := range rowIDs {
			queries[i] = codes[row]
		}
		t0 := time.Now()
		results, st := core.SearchBatch(batchIdx, queries, *h, *workers)
		took := time.Since(t0)
		for i, row := range rowIDs {
			ids := append([]int(nil), results[i]...)
			sort.Ints(ids)
			fmt.Printf("query row %d (code %s): %d matches\n", row, queries[i].String(), len(ids))
			if *verbose {
				fmt.Printf("  ids: %v\n", ids)
			}
		}
		qps := float64(len(queries)) / took.Seconds()
		fmt.Printf("batch: %d queries in %v (%.0f q/s, workers=%d) [%d distance computations, %d nodes visited]\n",
			len(queries), took.Round(time.Microsecond), qps, *workers, st.DistanceComputations, st.NodesVisited)
		return
	}

	for _, row := range rowIDs {
		q := codes[row]
		t0 := time.Now()
		ids := search(q, *h)
		took := time.Since(t0)
		sort.Ints(ids)
		fmt.Printf("query row %d (code %s): %d matches in %v%s\n",
			row, q.String(), len(ids), took, stats())
		if *verbose {
			fmt.Printf("  ids: %v\n", ids)
		}
	}
}

// buildIndex wires up the requested method behind a common search closure.
// batchIdx is non-nil for the methods that support the batched Searcher
// engine (dha, sha, mih).
func buildIndex(method, engine string, codes []bitvec.Code, h int, seed int64) (search func(bitvec.Code, int) []int, stats func() string, size func() int, batchIdx core.Index) {
	noStats := func() string { return "" }
	switch method {
	case "dha":
		idx := core.BuildDynamic(codes, nil, core.Options{})
		sr := core.NewSearcher(idx)
		return func(q bitvec.Code, h int) []int { return sr.SearchAppend(nil, q, h) }, func() string {
			return fmt.Sprintf(" [%d distance computations, %d nodes visited]",
				sr.Stats.DistanceComputations, sr.Stats.NodesVisited)
		}, idx.SizeBytes, idx
	case "sha":
		idx := core.BuildStatic(codes, nil, 8)
		sr := core.NewSearcher(idx)
		return func(q bitvec.Code, h int) []int { return sr.SearchAppend(nil, q, h) }, func() string {
			return fmt.Sprintf(" [%d distance computations]", sr.Stats.DistanceComputations)
		}, idx.SizeBytes, idx
	case "radix":
		idx := radix.Build(codes, nil)
		return idx.Search, func() string {
			return fmt.Sprintf(" [%d nodes visited]", idx.Stats.NodesVisited)
		}, idx.SizeBytes, nil
	case "nl":
		idx := baseline.NewNestedLoop(codes, nil)
		return idx.Search, noStats, idx.SizeBytes, nil
	case "mh4", "mh10":
		build := baseline.NewMH4
		if method == "mh10" {
			build = baseline.NewMH10
		}
		idx, err := build(codes, nil)
		if err != nil {
			fatalf("%v", err)
		}
		return idx.Search, noStats, idx.SizeBytes, nil
	case "hengine":
		idx, err := baseline.NewHEngine(codes, nil, h)
		if err != nil {
			fatalf("%v", err)
		}
		return idx.Search, noStats, idx.SizeBytes, nil
	case "hmsearch":
		idx, err := baseline.NewHmSearch(codes, nil, h)
		if err != nil {
			fatalf("%v", err)
		}
		return idx.Search, noStats, idx.SizeBytes, nil
	case "mih":
		m, err := mih.Build(codes, nil, mih.Options{})
		if err != nil {
			fatalf("%v", err)
		}
		idx := core.AsIndex(m)
		sr := core.NewSearcher(idx)
		return func(q bitvec.Code, h int) []int { return sr.SearchAppend(nil, q, h) }, func() string {
			return fmt.Sprintf(" [%d probes, %d candidates verified]",
				sr.Stats.NodesVisited, sr.Stats.DistanceComputations)
		}, m.SizeBytes, idx
	case "planner":
		pl, err := planner.Auto(codes, nil, planner.Options{Seed: seed})
		if err != nil {
			fatalf("%v", err)
		}
		forced, haveForced := planner.Strategy(0), false
		if engine != "auto" {
			if forced, err = planner.ParseStrategy(engine); err != nil {
				fatalf("%v", err)
			}
			haveForced = true
		}
		var last planner.Plan
		search := func(q bitvec.Code, h int) []int {
			if haveForced {
				out, _ := pl.SelectWith(forced, q, h)
				last = planner.Plan{Strategy: forced, Reason: "forced by -engine"}
				return out
			}
			var out []int
			out, _, last = pl.Select(q, h)
			return out
		}
		size := func() int {
			sz := 0
			eng := pl.Engines()
			if f, ok := eng.HA.(*core.FrozenIndex); ok {
				sz += f.SizeBytes()
			}
			if eng.MIH != nil {
				if m, ok := eng.MIH.Engine().(*mih.Index); ok {
					sz += m.SizeBytes()
				}
			}
			return sz
		}
		return search, func() string {
			return fmt.Sprintf(" [path=%s: %s]", last.Strategy, last.Reason)
		}, size, nil
	}
	fatalf("unknown method %q", method)
	return nil, nil, nil, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "haselect: "+format+"\n", args...)
	os.Exit(1)
}
