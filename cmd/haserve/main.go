// Command haserve hosts one HA-Index shard over the wire protocol. It loads
// a partition snapshot written by "haidx shard" (or internal/wire directly),
// binds a TCP listener, and answers batched Hamming-select, top-k, and stats
// requests until interrupted.
//
// Usage:
//
//	haserve -snapshot shards/shard-00000.hasn -addr 127.0.0.1:7070
//	haserve -snapshot shards/shard-00001.hasn -addr 127.0.0.1:0 -port-file s1.addr
//
// With -addr ending in :0 the kernel picks a free port; -port-file writes
// the bound address for scripts to pick up. The -fail-requests,
// -drop-requests, and -shed-requests flags inject deterministic faults (by
// server-wide request number) for smoke tests of client retry, failover,
// and shed backoff. -debug-addr binds a loopback HTTP endpoint exposing the
// shard's latency histograms (/debug/obs), recent request traces
// (/debug/traces), and pprof.
//
// -cache N gives the shard a bounded result cache keyed on (query,
// threshold, engine, index epoch) — repeat queries under zipfian traffic
// are answered without consuming an admission ticket. -shed-after DUR
// bounds how long a request may wait for admission before the shard sheds
// it with a polite overload frame that v5 clients retry with backoff
// instead of counting as a replica failure.
//
// -engine picks the search access path for immutable serving: the default
// "auto" builds the full engine set (HA walk, multi-index hashing, brute
// scan) and routes each request through the measured cost-based planner;
// "ha", "mih", or "scan" pin one engine. Clients can override per request
// with their own -engine hint (protocol v4).
//
// -mmap (default on) serves a version-4 snapshot zero-copy: the arena is
// aliased out of an mmap of the file, so startup cost and heap footprint
// are independent of shard size (watch index.mapped_bytes vs
// index.heap_bytes on /debug/obs). Older snapshot versions, -frozen=false,
// and -mutable fall back to the eager reader automatically.
//
// With -mutable the snapshot seeds an LSM shard (internal/lsm) instead of
// an immutable index: the server then also accepts protocol-v3 insert,
// delete, and seal frames (haquery -insert/-delete/-seal), sealing the
// memtable into frozen segments in the background past -memtable-max
// entries and compacting the stack past -compact-at segments.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"haindex/internal/lsm"
	"haindex/internal/server"
	"haindex/internal/wire"
)

func main() {
	var (
		snapshot  = flag.String("snapshot", "", "shard snapshot file (required)")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address (\":0\" picks a free port)")
		searchers = flag.Int("searchers", 0, "searcher pool size (0 = GOMAXPROCS)")
		portFile  = flag.String("port-file", "", "write the bound address to this file")
		failReqs  = flag.String("fail-requests", "", "comma-separated request numbers answered with an error frame")
		dropReqs  = flag.String("drop-requests", "", "comma-separated request numbers whose connection is dropped")
		debugAddr = flag.String("debug-addr", "", "also serve /debug/obs, /debug/traces, /debug/pprof on this HTTP address (e.g. 127.0.0.1:7071; bind loopback only)")
		debugFile = flag.String("debug-port-file", "", "write the bound debug address to this file")
		cacheN    = flag.Int("cache", 0, "result-cache entries keyed on (query, threshold, engine, epoch); 0 disables")
		shedAfter = flag.Duration("shed-after", 0, "admission-wait budget before a request is shed with a polite overload frame (0 disables; v5 clients retry with backoff)")
		shedReqs  = flag.String("shed-requests", "", "comma-separated request numbers answered with a shed frame (v5 sessions)")
		idleTO    = flag.Duration("idle-timeout", 0, "drop connections idle longer than this (0 = 30s, negative disables)")
		writeTO   = flag.Duration("write-timeout", 0, "per-response write deadline (0 = 30s, negative disables)")
		frozen    = flag.Bool("frozen", true, "serve the compiled (frozen) index; -frozen=false walks the pointer hierarchy")
		mmapIdx   = flag.Bool("mmap", true, "serve a v4 snapshot zero-copy out of an mmap of the file; other versions fall back to the eager reader")
		engine    = flag.String("engine", "auto", "access path for immutable serving: auto (measured cost-based planner), ha, mih, or scan; -mutable always serves the LSM engine")

		mutable     = flag.Bool("mutable", false, "serve a mutable LSM shard seeded from the snapshot; accepts insert/delete/seal")
		memtableMax = flag.Int("memtable-max", 0, "memtable entries before a background seal (0 = 4096, negative disables)")
		compactAt   = flag.Int("compact-at", 0, "segment count that triggers compaction after a seal (0 = 4, negative disables)")
	)
	flag.Parse()
	if *snapshot == "" {
		fatalf("-snapshot is required")
	}

	var faults *server.FaultPlan
	addFaults := func(csv string, add func(*server.FaultPlan, int64)) {
		if csv == "" {
			return
		}
		if faults == nil {
			faults = server.NewFaultPlan()
		}
		for _, part := range strings.Split(csv, ",") {
			req, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil || req < 0 {
				fatalf("invalid request number %q", part)
			}
			add(faults, req)
		}
	}
	addFaults(*failReqs, func(p *server.FaultPlan, r int64) { p.FailRequest(r) })
	addFaults(*dropReqs, func(p *server.FaultPlan, r int64) { p.DropRequest(r) })
	addFaults(*shedReqs, func(p *server.FaultPlan, r int64) { p.ShedRequest(r) })

	opts := server.Options{
		Searchers:    *searchers,
		Faults:       faults,
		CacheEntries: *cacheN,
		ShedAfter:    *shedAfter,
		IdleTimeout:  *idleTO,
		WriteTimeout: *writeTO,
		PointerWalk:  !*frozen,
		Mmap:         *mmapIdx && *frozen && !*mutable,
		Engine:       *engine,
	}
	if *mutable {
		// The LSM shard is its own engine; only the default auto (or an
		// explicit ha) makes sense here.
		if *engine != "auto" && *engine != "ha" {
			fatalf("-engine %s is incompatible with -mutable", *engine)
		}
		opts.Engine = ""
	}
	var s *server.Server
	var shard *lsm.Shard
	var err error
	if *mutable {
		var meta wire.SnapshotMeta
		meta, shard, err = loadMutable(*snapshot, *memtableMax, *compactAt)
		if err == nil {
			s, err = server.NewMutable(meta, shard, opts)
		}
	} else {
		s, err = server.LoadSnapshotFile(*snapshot, opts)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if err := s.Start(*addr); err != nil {
		fatalf("%v", err)
	}
	if *debugAddr != "" {
		da, err := s.StartDebug(*debugAddr)
		if err != nil {
			fatalf("starting debug endpoint: %v", err)
		}
		fmt.Printf("haserve: debug endpoint on http://%s/debug/obs\n", da)
		if *debugFile != "" {
			if err := os.WriteFile(*debugFile, []byte(da.String()+"\n"), 0o644); err != nil {
				fatalf("writing debug port file: %v", err)
			}
		}
	}
	bound := s.Addr().String()
	meta := s.Meta()
	fmt.Printf("haserve: shard %d/%d (%d-bit codes) on %s from %s\n",
		meta.Part, meta.Parts, meta.Length, bound, *snapshot)
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			fatalf("writing port file: %v", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := s.Stats()
	s.Close()
	fmt.Printf("haserve: served %d requests (%d select + %d top-k queries, %d ids, %d errors, %d faults injected)\n",
		st.Requests, st.Queries, st.TopKQueries, st.IDsReturned, st.Errors, st.FaultsInjected)
	if shard != nil {
		lst := shard.Stats()
		fmt.Printf("haserve: shard ended at %d tuples in %d segments + %d memtable entries (%d seals, %d compactions, epoch %d)\n",
			lst.Len, lst.Segments, lst.MemtableSize, lst.Seals, lst.Compactions, lst.Epoch)
	}
}

// loadMutable seeds an LSM shard from a snapshot: the decoded index — either
// form — becomes the shard's first immutable segment.
func loadMutable(path string, memtableMax, compactAt int) (wire.SnapshotMeta, *lsm.Shard, error) {
	meta, idx, err := wire.ReadSnapshotFile(path)
	if err != nil {
		return meta, nil, fmt.Errorf("loading snapshot %s: %w", path, err)
	}
	shard := lsm.New(meta.Length, lsm.Options{
		MemtableMax: memtableMax,
		CompactAt:   compactAt,
	})
	if err := shard.Bootstrap(idx); err != nil {
		return meta, nil, err
	}
	return meta, shard, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "haserve: "+format+"\n", args...)
	os.Exit(1)
}
