package haindex_test

import (
	"bytes"
	"fmt"
	"sort"

	"haindex"
)

// ExampleBuildDynamicIndex indexes the paper's Table 2a and runs Example
// 1's Hamming-select.
func ExampleBuildDynamicIndex() {
	codes := []haindex.Code{
		haindex.MustCode("001 001 010"), // t0
		haindex.MustCode("001 011 101"), // t1
		haindex.MustCode("011 001 100"), // t2
		haindex.MustCode("101 001 010"), // t3
		haindex.MustCode("101 110 110"), // t4
		haindex.MustCode("101 011 101"), // t5
		haindex.MustCode("101 101 010"), // t6
		haindex.MustCode("111 001 100"), // t7
	}
	idx := haindex.BuildDynamicIndex(codes, nil, haindex.IndexOptions{Window: 2})
	ids := idx.Search(haindex.MustCode("101100010"), 3)
	sort.Ints(ids)
	fmt.Println(ids)
	// Output: [0 3 4 6]
}

// ExampleDistance shows the XOR-and-count Hamming distance.
func ExampleDistance() {
	a := haindex.MustCode("101100010")
	b := haindex.MustCode("001001010")
	fmt.Println(haindex.Distance(a, b))
	// Output: 3
}

// ExampleTanimoto computes the Tanimoto coefficient of two fingerprints.
func ExampleTanimoto() {
	a := haindex.MustCode("11110000")
	b := haindex.MustCode("11000000")
	fmt.Println(haindex.Tanimoto(a, b))
	// Output: 0.5
}

// ExampleSemiJoin filters probe tuples to those with a near match.
func ExampleSemiJoin() {
	indexed := []haindex.Code{
		haindex.MustCode("11110000"),
		haindex.MustCode("00001111"),
	}
	idx := haindex.BuildDynamicIndex(indexed, nil, haindex.IndexOptions{})
	probe := []haindex.Code{
		haindex.MustCode("11110001"), // 1 bit from indexed[0]
		haindex.MustCode("10101010"), // far from both
	}
	fmt.Println(haindex.SemiJoin(idx, probe, 2))
	fmt.Println(haindex.AntiJoin(idx, probe, 2))
	// Output:
	// [0]
	// [1]
}

// ExampleDynamicIndex_Encode round-trips an index through its wire format.
func ExampleDynamicIndex_Encode() {
	codes := []haindex.Code{haindex.MustCode("0101"), haindex.MustCode("0111")}
	idx := haindex.BuildDynamicIndex(codes, nil, haindex.IndexOptions{})
	var buf bytes.Buffer
	if err := idx.Encode(&buf, true); err != nil {
		panic(err)
	}
	back, err := haindex.DecodeIndex(&buf)
	if err != nil {
		panic(err)
	}
	ids := back.Search(haindex.MustCode("0101"), 1)
	sort.Ints(ids)
	fmt.Println(back.Len(), ids)
	// Output: 2 [0 1]
}

// ExampleNewTanimotoIndex screens fingerprints at a Tanimoto threshold.
func ExampleNewTanimotoIndex() {
	prints := []haindex.Code{
		haindex.MustCode("11110000"), // id 0
		haindex.MustCode("11000000"), // id 1: T=0.5 vs id 0
		haindex.MustCode("00001111"), // id 2: disjoint
	}
	idx, err := haindex.NewTanimotoIndex(prints, nil, haindex.IndexOptions{})
	if err != nil {
		panic(err)
	}
	matches, err := idx.Search(prints[0], 0.5)
	if err != nil {
		panic(err)
	}
	for _, m := range matches {
		fmt.Printf("id %d at T=%.2f\n", m.ID, m.Similarity)
	}
	// Output:
	// id 0 at T=1.00
	// id 1 at T=0.50
}

// ExampleNewPlanner shows the cost-based access-path decision.
func ExampleNewPlanner() {
	codes := make([]haindex.Code, 256)
	for i := range codes {
		codes[i] = haindex.MustCode("00000000")
		v := uint64(i)
		for b := 0; b < 8; b++ {
			codes[i].SetBit(b, v>>uint(7-b)&1 == 1)
		}
	}
	p, err := haindex.NewPlanner(codes, nil, haindex.PlannerOptions{CalibProbes: -1})
	if err != nil {
		panic(err)
	}
	// Price the engines by hand (calibration was disabled above): at h = L
	// everything matches and pruning is impossible, so the walk has
	// collapsed and the scan is cheapest — the planner routes accordingly.
	p.Observe(haindex.UseHA, 8, 90000)
	p.Observe(haindex.UseMIH, 8, 40000)
	p.Observe(haindex.UseScan, 8, 5000)
	fmt.Println(p.Plan(8).Strategy)
	// Output: scan
}
