// Chemsearch demonstrates Tanimoto-similarity screening over chemical
// fingerprints — the application the paper's related work maps onto
// Hamming-distance queries (Zhang et al.). Synthetic 1024-bit structural
// fingerprints are generated from scaffold families (as real fingerprints
// derive from shared substructures); the Tanimoto index buckets them by
// popcount and answers each similarity query with a handful of tight
// Hamming range queries over per-bucket HA-Indexes.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"haindex"
)

const (
	bits      = 1024 // fingerprint length (e.g. ECFP-style folded prints)
	nPrints   = 20000
	scaffolds = 60
)

// corpus builds fingerprints around scaffold families: each scaffold sets a
// core bit pattern, members add/remove a few substructure bits.
func corpus(rng *rand.Rand) []haindex.Code {
	cores := make([]haindex.Code, scaffolds)
	for i := range cores {
		c := haindex.NewCode(bits)
		for j := 0; j < 90; j++ {
			c.SetBit(rng.Intn(bits), true)
		}
		cores[i] = c
	}
	out := make([]haindex.Code, nPrints)
	for i := range out {
		c := cores[rng.Intn(scaffolds)].Clone()
		for j := 0; j < 10; j++ {
			c.SetBit(rng.Intn(bits), true) // extra substituents
		}
		for j := 0; j < 4; j++ {
			c.SetBit(rng.Intn(bits), false) // missing fragments
		}
		out[i] = c
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(7))
	prints := corpus(rng)
	fmt.Printf("corpus: %d fingerprints of %d bits\n", len(prints), bits)

	t0 := time.Now()
	idx, err := haindex.NewTanimotoIndex(prints, nil, haindex.IndexOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("built popcount-bucketed Tanimoto index in %v\n\n", time.Since(t0).Round(time.Millisecond))

	query := prints[4242]
	for _, t := range []float64{0.95, 0.85, 0.7} {
		t0 = time.Now()
		matches, err := idx.Search(query, t)
		if err != nil {
			panic(err)
		}
		took := time.Since(t0)

		// Brute force for comparison.
		t0 = time.Now()
		brute := 0
		for _, p := range prints {
			if haindex.Tanimoto(query, p) >= t {
				brute++
			}
		}
		bruteTook := time.Since(t0)

		if len(matches) != brute {
			panic("index disagrees with brute force")
		}
		fmt.Printf("T >= %.2f: %4d matches in %8v (index, %5d Hamming computations) vs %8v (scan) — %4.1fx\n",
			t, len(matches), took.Round(time.Microsecond), idx.Stats.DistanceComputations,
			bruteTook.Round(time.Microsecond), float64(bruteTook)/float64(took))
		if len(matches) > 0 {
			fmt.Printf("          best: id %d at T=%.3f\n", matches[0].ID, matches[0].Similarity)
		}
	}
	fmt.Println("\n(the popcount-ratio bound prunes whole buckets and each surviving bucket")
	fmt.Println(" is probed with a tight per-bucket Hamming threshold on its HA-Index)")
}
