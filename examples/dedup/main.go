// Dedup demonstrates near-duplicate document detection (the Manku et al.
// use case the paper cites): synthetic documents are modeled as term-
// frequency vectors, SimHash maps them to 64-bit fingerprints, and a
// Hamming-select per document over a Dynamic HA-Index clusters the
// near-duplicates. Planted duplicates (lightly edited copies) are used to
// measure detection quality.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"haindex"
)

const (
	vocab      = 512 // vocabulary size (term dimensions)
	nDocs      = 4000
	dupsPerDoc = 2 // planted near-copies for every 10th document
	bits       = 64
	threshold  = 3
)

// syntheticCorpus builds term-frequency documents plus planted near-
// duplicates; it returns the vectors and, for each doc, the id of the
// original it was derived from (itself if fresh).
func syntheticCorpus(rng *rand.Rand) (docs []haindex.Vec, source []int) {
	for len(docs) < nDocs {
		// A fresh document: a sparse mixture of terms.
		doc := make(haindex.Vec, vocab)
		terms := 30 + rng.Intn(40)
		for t := 0; t < terms; t++ {
			doc[rng.Intn(vocab)] += float64(1 + rng.Intn(5))
		}
		id := len(docs)
		docs = append(docs, doc)
		source = append(source, id)
		if id%10 == 0 {
			// Planted near-duplicates: copy with a few term edits.
			for d := 0; d < dupsPerDoc && len(docs) < nDocs; d++ {
				dup := doc.Clone()
				for e := 0; e < 3; e++ {
					dup[rng.Intn(vocab)] += float64(rng.Intn(3))
				}
				docs = append(docs, dup)
				source = append(source, id)
			}
		}
	}
	return docs, source
}

func main() {
	rng := rand.New(rand.NewSource(99))
	docs, source := syntheticCorpus(rng)
	fmt.Printf("corpus: %d documents over a %d-term vocabulary\n", len(docs), vocab)

	sim := haindex.NewSimHash(vocab, bits, 7)
	t0 := time.Now()
	prints := haindex.HashAll(sim, docs)
	fmt.Printf("fingerprinted (%d-bit SimHash) in %v\n", bits, time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	idx := haindex.BuildDynamicIndex(prints, nil, haindex.IndexOptions{})
	fmt.Printf("built HA-Index in %v\n\n", time.Since(t0).Round(time.Millisecond))

	// Self Hamming-select: each document retrieves its near-duplicates.
	t0 = time.Now()
	var truePairs, foundPairs, correctPairs int
	for i := range docs {
		if source[i] != i {
			truePairs++ // (original, duplicate) ground-truth pair
		}
		for _, j := range idx.Search(prints[i], threshold) {
			if j <= i {
				continue
			}
			foundPairs++
			if source[i] == source[j] || source[j] == i || source[i] == j {
				correctPairs++
			}
		}
	}
	took := time.Since(t0)
	fmt.Printf("self Hamming-join at h=%d: %v total (%v/doc)\n",
		threshold, took.Round(time.Millisecond), (took / time.Duration(len(docs))).Round(time.Microsecond))
	fmt.Printf("  candidate duplicate pairs: %d\n", foundPairs)
	fmt.Printf("  planted duplicate relations: %d\n", truePairs)
	precision := 0.0
	if foundPairs > 0 {
		precision = float64(correctPairs) / float64(foundPairs)
	}
	recall := float64(correctPairs) / float64(truePairs)
	if recall > 1 {
		recall = 1
	}
	fmt.Printf("  precision %.2f, planted-pair recall %.2f\n", precision, recall)
	fmt.Println("\n(lightly edited copies land within a few fingerprint bits, so a small")
	fmt.Println(" Hamming threshold finds them without comparing all document pairs)")
}
