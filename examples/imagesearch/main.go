// Imagesearch demonstrates the paper's motivating application: content-based
// image retrieval over high-dimensional feature vectors. A NUS-WIDE-like
// dataset of 225-d color-moment vectors is hashed into 32-bit codes with a
// learned spectral hash; a Dynamic HA-Index answers Hamming-select and
// approximate kNN queries, and the example reports recall against the exact
// scan together with the work saved.
package main

import (
	"fmt"
	"time"

	"haindex"
)

func main() {
	const (
		n    = 30000
		bits = 32
		k    = 10
	)
	fmt.Printf("generating %d synthetic image feature vectors (225-d, NUS-WIDE profile)...\n", n)
	images := haindex.Generate(haindex.NUSWide, n, 42)

	// Learn the similarity hash from a 10%% sample, as the paper's
	// preprocessing phase does.
	t0 := time.Now()
	hashFn, err := haindex.LearnSpectralHash(haindex.Sample(images, n/10, 7), bits)
	if err != nil {
		panic(err)
	}
	fmt.Printf("learned %d-bit spectral hash in %v\n", bits, time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	codes := haindex.HashAll(hashFn, images)
	idx := haindex.BuildDynamicIndex(codes, nil, haindex.IndexOptions{})
	fmt.Printf("hashed and indexed in %v (%d index nodes, %.1f MB)\n\n",
		time.Since(t0).Round(time.Millisecond), idx.NodeCount(), float64(idx.SizeBytes())/1e6)

	// Hamming-select: near-duplicate image lookup.
	query := images[123]
	qcode := hashFn.Hash(query)
	t0 = time.Now()
	dup := idx.Search(qcode, 3)
	fmt.Printf("Hamming-select h=3 for image #123: %d near-duplicates in %v "+
		"(%d distance computations vs %d for a scan)\n\n",
		len(dup), time.Since(t0).Round(time.Microsecond), idx.Stats.DistanceComputations, n)

	// Approximate kNN-select via Hamming threshold escalation.
	searcher := haindex.NewHammingKNN(idx, hashFn, images)
	var recallSum float64
	var approxTime, exactTime time.Duration
	const queries = 20
	for i := 0; i < queries; i++ {
		q := images[(i*997)%n]
		t0 = time.Now()
		approx := searcher.Select(q, k)
		approxTime += time.Since(t0)
		t0 = time.Now()
		exact := haindex.ExactKNN(images, q, k)
		exactTime += time.Since(t0)
		recallSum += haindex.Recall(approx, exact)
	}
	fmt.Printf("approximate %d-NN over %d queries:\n", k, queries)
	fmt.Printf("  HA-Index: %v/query   exact scan: %v/query   speedup: %.0fx\n",
		(approxTime / queries).Round(time.Microsecond),
		(exactTime / queries).Round(time.Microsecond),
		float64(exactTime)/float64(approxTime))
	fmt.Printf("  mean recall vs exact: %.2f\n", recallSum/queries)
}
