// Mrpipeline runs the full distributed Hamming-join of Section 5 on the
// simulated MapReduce cluster and contrasts the four systems of the paper's
// Figures 7 and 9: MRHA Option A, MRHA Option B, the PMH broadcast-R
// baseline, and the exact PGBJ kNN-join — reporting result sizes, shuffle
// and broadcast volumes, reducer balance, and wall time.
package main

import (
	"fmt"
	"time"

	"haindex"
)

func main() {
	const (
		nPerSide = 1500
		nodes    = 8
		h        = 3
		k        = 10
	)
	base := haindex.Generate(haindex.Flickr, 2*nPerSide, 3)
	r, s := base[:nPerSide], base[nPerSide:]
	opt := haindex.JoinOptions{Bits: 32, Nodes: nodes, Partitions: nodes, SampleRate: 0.1, Threshold: h, Seed: 1}
	fmt.Printf("R: %d × %d-d, S: %d × %d-d, h=%d, %d simulated nodes\n\n",
		len(r), len(r[0]), len(s), len(s[0]), h, nodes)

	// Phase 1: sampling, hash learning, histogram pivots.
	t0 := time.Now()
	pre, err := haindex.PrepareJoin(r, s, opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("phase 1: sampled %d, learned 32-bit spectral hash (%v), %d pivots\n",
		pre.SampleSize, pre.LearnTime.Round(time.Millisecond), len(pre.Pivots))

	// Phase 2: distributed HA-Index build + merge.
	g, err := haindex.BuildGlobalIndex(r, pre, opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("phase 2: global HA-Index (%d nodes, %d edges), reducer skew %.2f, shuffle %.2f KB\n\n",
		g.Index.NodeCount(), g.Index.EdgeCount(), g.Metrics.Skew(), float64(g.Metrics.ShuffleBytes)/1e3)

	type row struct {
		name            string
		pairs           int
		shuffleKB, bcKB float64
		wall            time.Duration
	}
	var rows []row

	t0 = time.Now()
	a, err := haindex.HammingJoin(s, g, pre, false, opt)
	if err != nil {
		panic(err)
	}
	rows = append(rows, row{"MRHA-A (leafy index)", len(a.Pairs),
		float64(a.Metrics.ShuffleBytes) / 1e3, float64(a.Metrics.BroadcastBytes) / 1e3, time.Since(t0)})

	t0 = time.Now()
	b, err := haindex.HammingJoin(s, g, pre, true, opt)
	if err != nil {
		panic(err)
	}
	rows = append(rows, row{"MRHA-B (leafless)", len(b.Pairs),
		float64(b.Metrics.ShuffleBytes) / 1e3, float64(b.Metrics.BroadcastBytes) / 1e3, time.Since(t0)})

	t0 = time.Now()
	p, err := haindex.PMHJoin(r, s, pre, 10, opt)
	if err != nil {
		panic(err)
	}
	rows = append(rows, row{"PMH-10 (broadcast R)", len(p.Pairs),
		float64(p.Metrics.ShuffleBytes) / 1e3, float64(p.Metrics.BroadcastBytes) / 1e3, time.Since(t0)})

	t0 = time.Now()
	pg, err := haindex.PGBJ(r, s, k, opt)
	if err != nil {
		panic(err)
	}
	rows = append(rows, row{fmt.Sprintf("PGBJ (exact %d-NN)", k), len(pg.Neighbors) * k,
		float64(pg.Metrics.ShuffleBytes) / 1e3, float64(pg.Metrics.BroadcastBytes) / 1e3, time.Since(t0)})

	fmt.Printf("%-22s %10s %14s %14s %12s\n", "system", "results", "shuffle (KB)", "broadcast (KB)", "wall")
	for _, r := range rows {
		fmt.Printf("%-22s %10d %14.1f %14.1f %12v\n", r.name, r.pairs, r.shuffleKB, r.bcKB, r.wall.Round(time.Millisecond))
	}
	if len(a.Pairs) != len(b.Pairs) {
		panic("options A and B disagree")
	}
	fmt.Println("\nMRHA options agree pair-for-pair; PGBJ answers the exact kNN-join at a")
	fmt.Println("full-dimensional shuffle cost — the Figure 7/9 contrast.")
}
