// Quickstart walks the paper's running example (Tables 2 and 3) through the
// public API: the eight binary codes of Table 2a are indexed in a Dynamic
// HA-Index, Example 1's Hamming-select runs at h=3, the Table 3 trace query
// follows, and the Hamming-join of Tables 2a×2b finishes the tour.
package main

import (
	"fmt"
	"sort"

	"haindex"
)

func main() {
	// Table 2a: dataset S.
	sCodes := []haindex.Code{
		haindex.MustCode("001 001 010"), // t0
		haindex.MustCode("001 011 101"), // t1
		haindex.MustCode("011 001 100"), // t2
		haindex.MustCode("101 001 010"), // t3
		haindex.MustCode("101 110 110"), // t4
		haindex.MustCode("101 011 101"), // t5
		haindex.MustCode("101 101 010"), // t6
		haindex.MustCode("111 001 100"), // t7
	}
	// Table 2b: dataset R.
	rCodes := []haindex.Code{
		haindex.MustCode("101 100 010"), // r0
		haindex.MustCode("101 010 010"), // r1
		haindex.MustCode("110 000 010"), // r2
	}

	idx := haindex.BuildDynamicIndex(sCodes, nil, haindex.IndexOptions{Window: 2, Depth: 3})
	fmt.Printf("Dynamic HA-Index over %d tuples: %d internal nodes, %d edges\n\n",
		idx.Len(), idx.NodeCount(), idx.EdgeCount())

	// Example 1: Hamming-select with tq = "101100010", h = 3.
	tq := haindex.MustCode("101100010")
	matches := idx.Search(tq, 3)
	sort.Ints(matches)
	fmt.Printf("h-select(%s, S) at h=3: t%v\n", tq, matches)
	fmt.Printf("  (paper's Example 1 expects {t0, t3, t4, t6})\n")
	fmt.Printf("  work: %d distance computations for 8 tuples\n\n", idx.Stats.DistanceComputations)

	// Table 3's trace query.
	trace := haindex.MustCode("010001011")
	matches = idx.Search(trace, 3)
	fmt.Printf("h-select(%s, S) at h=3: t%v (Table 3 expects {t0})\n\n", trace, matches)

	// Example 1 continued: the Hamming-join of R and S at h=3.
	fmt.Println("h-join(R, S) at h=3:")
	for ri, rc := range rCodes {
		partners := idx.Search(rc, 3)
		sort.Ints(partners)
		for _, si := range partners {
			fmt.Printf("  (r%d, t%d)\n", ri, si)
		}
	}
	fmt.Println("  (paper expects r0,r1 x {t0,t3,t4,t6} and (r2,t3))")

	// Updates: delete t4, insert it back (Section 4.5).
	if !idx.Delete(4, sCodes[4]) {
		panic("delete failed")
	}
	after := idx.Search(tq, 3)
	sort.Ints(after)
	fmt.Printf("\nafter deleting t4, h-select(%s) = t%v\n", tq, after)
	idx.Insert(4, sCodes[4])
	restored := idx.Search(tq, 3)
	sort.Ints(restored)
	fmt.Printf("after re-inserting t4       = t%v\n", restored)
}
