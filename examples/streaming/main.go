// Streaming demonstrates the *dynamic* in Dynamic HA-Index (Section 4.5):
// a long-running workload interleaves inserts, deletes and Hamming-select
// queries — the regime where rebuild-only structures fall over — while the
// index buffers insertions, batch-appends them with H-Build, and unlinks
// emptied nodes on deletion. Every 10,000 operations the example
// cross-checks the index against a shadow brute-force table and reports
// throughput, plus a cost-based planner EXPLAIN at two thresholds.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"haindex"
)

func main() {
	const (
		bits    = 32
		initial = 20000
		ops     = 50000
	)
	rng := rand.New(rand.NewSource(11))

	// Clustered synthetic codes, like hashed feature vectors.
	centers := make([]haindex.Code, 64)
	for i := range centers {
		c := haindex.NewCode(bits)
		for b := 0; b < bits; b++ {
			if rng.Intn(2) == 1 {
				c.SetBit(b, true)
			}
		}
		centers[i] = c
	}
	newCode := func() haindex.Code {
		c := centers[rng.Intn(len(centers))].Clone()
		for f := 0; f < 3; f++ {
			c.FlipBit(rng.Intn(bits))
		}
		return c
	}

	// Shadow table: id -> code, the ground truth.
	shadow := make(map[int]haindex.Code, initial)
	codes := make([]haindex.Code, initial)
	for i := range codes {
		codes[i] = newCode()
		shadow[i] = codes[i]
	}
	idx := haindex.BuildDynamicIndex(codes, nil, haindex.IndexOptions{})
	nextID := initial
	live := make([]int, initial)
	for i := range live {
		live[i] = i
	}

	var inserts, deletes, queries, checks int
	t0 := time.Now()
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 3: // insert
			id := nextID
			nextID++
			c := newCode()
			idx.Insert(id, c)
			shadow[id] = c
			live = append(live, id)
			inserts++
		case r < 5 && len(live) > 1000: // delete
			pos := rng.Intn(len(live))
			id := live[pos]
			if !idx.Delete(id, shadow[id]) {
				panic("delete failed")
			}
			delete(shadow, id)
			live[pos] = live[len(live)-1]
			live = live[:len(live)-1]
			deletes++
		default: // query
			id := live[rng.Intn(len(live))]
			q := shadow[id].Clone()
			q.FlipBit(rng.Intn(bits))
			idx.Search(q, 3)
			queries++
		}
		if (op+1)%10000 == 0 {
			// Cross-check a random query against the shadow table.
			id := live[rng.Intn(len(live))]
			q := shadow[id]
			got := idx.Search(q, 3)
			want := 0
			for _, c := range shadow {
				if haindex.Distance(q, c) <= 3 {
					want++
				}
			}
			if len(got) != want {
				panic(fmt.Sprintf("drift at op %d: index %d vs shadow %d", op+1, len(got), want))
			}
			checks++
			fmt.Printf("op %6d: %d live tuples, index consistent (%d matches), %d nodes\n",
				op+1, len(live), want, idx.NodeCount())
		}
	}
	took := time.Since(t0)
	fmt.Printf("\n%d ops in %v (%.0f ops/s): %d inserts, %d deletes, %d queries, %d consistency checks\n",
		ops, took.Round(time.Millisecond), float64(ops)/took.Seconds(), inserts, deletes, queries, checks)

	// Planner view over the final state.
	finalCodes := make([]haindex.Code, 0, len(shadow))
	for _, c := range shadow {
		finalCodes = append(finalCodes, c)
	}
	pl, err := haindex.NewPlanner(finalCodes, nil, haindex.PlannerOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	q := finalCodes[0]
	pl.Select(q, 3)
	pl.Select(q, 28)
	fmt.Println()
	fmt.Print(pl.Explain(3))
	fmt.Print(pl.Explain(28))
}
