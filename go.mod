module haindex

go 1.22
