// Package haindex is a Go implementation of the HA-Index and its
// Hamming-distance similarity-search operators, reproducing Tang, Yu, Aref,
// Malluhi & Ouzzani, "Efficient Processing of Hamming-Distance-Based
// Similarity-Search Queries Over MapReduce" (EDBT 2015).
//
// The library answers two query flavors over fixed-length binary codes
// produced by a learned similarity hash:
//
//   - Hamming-select: all tuples whose codes are within Hamming distance h
//     of a query code (Definition 1);
//   - Hamming-join: all pairs across two datasets within distance h
//     (Definition 2), including a MapReduce execution with histogram-
//     balanced partitioning and index broadcast (Section 5).
//
// The primary index is the Dynamic HA-Index: codes are Gray-order sorted so
// that similar codes cluster, a sliding window extracts the maximal shared
// fixed-length subsequences (FLSSeq) into a hierarchy of pattern nodes, and
// range queries prune whole subtrees by the Hamming downward-closure
// property while charging each shared pattern a single XOR. The package also
// provides the Static HA-Index, a Radix-Tree approach, the published
// baselines (MultiHashTable, HEngine, HmSearch, E2LSH, LSB-Tree, PGBJ), and
// approximate kNN-select/kNN-join drivers built on Hamming search.
//
// Quick start:
//
//	data := haindex.Generate(haindex.NUSWide, 10000, 1)
//	hashFn, _ := haindex.LearnSpectralHash(data[:1000], 32)
//	codes := haindex.HashAll(hashFn, data)
//	idx := haindex.BuildDynamicIndex(codes, nil, haindex.IndexOptions{})
//	ids := idx.Search(hashFn.Hash(query), 3)
package haindex

import (
	"io"

	"haindex/internal/baseline"
	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/dfs"
	"haindex/internal/hash"
	"haindex/internal/histo"
	"haindex/internal/knn"
	"haindex/internal/mih"
	"haindex/internal/mrjoin"
	"haindex/internal/planner"
	"haindex/internal/radix"
	"haindex/internal/relop"
	"haindex/internal/tanimoto"
	"haindex/internal/vector"
)

// Core data types.
type (
	// Code is a fixed-length binary code (a string of 0s and 1s produced by
	// a similarity hash function).
	Code = bitvec.Code
	// Pattern is a partially specified code — an FLSSeq with a mask of
	// fixed positions.
	Pattern = bitvec.Pattern
	// Vec is a dense d-dimensional feature vector.
	Vec = vector.Vec
)

// Indexes.
type (
	// DynamicIndex is the Dynamic HA-Index (Section 4.4), the paper's
	// primary contribution.
	DynamicIndex = core.DynamicIndex
	// StaticIndex is the Static HA-Index with fixed bit segmentation
	// (Section 4.3).
	StaticIndex = core.StaticIndex
	// FrozenIndex is the immutable compiled form of a Dynamic HA-Index:
	// the pattern DAG flattened into contiguous arrays for cache-friendly,
	// allocation-free search and near-single-copy snapshot load.
	FrozenIndex = core.FrozenIndex
	// IndexOptions configures HA-Index construction (window, depth,
	// insert-buffer size).
	IndexOptions = core.Options
	// SearchStats reports per-query work (distance computations, nodes
	// visited).
	SearchStats = core.SearchStats
	// SearchIndex is any HA-Index the reusable Searcher engine can drive
	// (DynamicIndex or StaticIndex).
	SearchIndex = core.Index
	// Searcher is a reusable, allocation-free query engine over one
	// HA-Index. One Searcher per goroutine; the index may be shared.
	Searcher = core.Searcher
	// RadixTree is the PATRICIA-trie approach of Section 4.2.
	RadixTree = radix.Tree
)

// Baselines.
type (
	// NestedLoop is the linear XOR-and-count scan.
	NestedLoop = baseline.NestedLoop
	// MultiHash is Manku et al.'s multi-hash-table index (MH-4, MH-10).
	MultiHash = baseline.MultiHash
	// HEngine is Liu et al.'s sorted-signature-table engine.
	HEngine = baseline.HEngine
	// HmSearch is Zhang et al.'s signature-enumeration index.
	HmSearch = baseline.HmSearch
)

// Hashing.
type (
	// HashFunc maps feature vectors to binary codes.
	HashFunc = hash.Func
	// SpectralHash is the learned, data-dependent hash the paper uses.
	SpectralHash = hash.Spectral
	// SimHash is Charikar's random-hyperplane hash.
	SimHash = hash.SimHash
)

// Datasets.
type (
	// DatasetProfile describes a synthetic dataset family.
	DatasetProfile = dataset.Profile
)

// The paper's three evaluation dataset profiles.
var (
	NUSWide = dataset.NUSWide
	Flickr  = dataset.Flickr
	DBPedia = dataset.DBPedia
)

// kNN.
type (
	// Neighbor is one kNN result.
	Neighbor = knn.Neighbor
	// HammingKNN answers approximate kNN-select via Hamming threshold
	// escalation over any Hamming index.
	HammingKNN = knn.HammingKNN
	// E2LSH is the p-stable LSH baseline.
	E2LSH = knn.E2LSH
	// E2LSHConfig tunes E2LSH.
	E2LSHConfig = knn.E2LSHConfig
	// LSBTree is the Z-order + B-tree baseline forest.
	LSBTree = knn.LSBTree
	// LSBConfig tunes the LSB forest.
	LSBConfig = knn.LSBConfig
)

// Distributed joins.
type (
	// JoinOptions configures the MapReduce pipelines.
	JoinOptions = mrjoin.Options
	// Preprocessed carries the learned hash and partition pivots.
	Preprocessed = mrjoin.Preprocessed
	// GlobalIndex is the merged distributed HA-Index over table R.
	GlobalIndex = mrjoin.GlobalIndex
	// JoinResult is the output of one distributed Hamming-join.
	JoinResult = mrjoin.JoinResult
	// Pair is one Hamming-join result pair.
	Pair = mrjoin.Pair
	// SelectResult is the output of one distributed Hamming-select batch.
	SelectResult = mrjoin.SelectResult
)

// ---- Codes ----

// NewCode returns an all-zero n-bit code.
func NewCode(n int) Code { return bitvec.New(n) }

// CodeFromString parses a code from a string of '0' and '1' (spaces
// ignored).
func CodeFromString(s string) (Code, error) { return bitvec.FromString(s) }

// MustCode is CodeFromString panicking on error; for literals.
func MustCode(s string) Code { return bitvec.MustFromString(s) }

// Distance returns the Hamming distance between two equal-length codes.
func Distance(a, b Code) int { return a.Distance(b) }

// ---- Index construction ----

// BuildDynamicIndex bulkloads a Dynamic HA-Index (Algorithm 1, H-Build)
// over the codes; ids default to positions when nil.
func BuildDynamicIndex(codes []Code, ids []int, opts IndexOptions) *DynamicIndex {
	return core.BuildDynamic(codes, ids, opts)
}

// BuildStaticIndex builds a Static HA-Index with the given segment width in
// bits (0 selects 8).
func BuildStaticIndex(codes []Code, ids []int, segWidth int) *StaticIndex {
	return core.BuildStatic(codes, ids, segWidth)
}

// FreezeIndex compiles a Dynamic HA-Index into its immutable frozen form.
// Buffered inserts are flushed first, so the frozen index always covers every
// tuple the dynamic index held.
func FreezeIndex(x *DynamicIndex) *FrozenIndex { return core.Freeze(x) }

// ---- Query engine ----

// NewSearcher returns a reusable query engine over idx. Steady-state
// searches are allocation-free; results alias scratch valid until the next
// call. Each goroutine needs its own Searcher, but they may all share one
// read-only index.
func NewSearcher(idx SearchIndex) *Searcher { return core.NewSearcher(idx) }

// SearchBatch answers a batch of Hamming-select queries with a pool of
// `workers` Searchers over the shared index (workers <= 0 selects
// GOMAXPROCS). Results are positionally aligned with queries; the returned
// stats aggregate work across all workers.
func SearchBatch(idx SearchIndex, queries []Code, h, workers int) ([][]int, SearchStats) {
	return core.SearchBatch(idx, queries, h, workers)
}

// SearchCodesBatch is SearchBatch returning the matching codes themselves
// instead of tuple ids.
func SearchCodesBatch(idx SearchIndex, queries []Code, h, workers int) ([][]Code, SearchStats) {
	return core.SearchCodesBatch(idx, queries, h, workers)
}

// BuildRadixTree builds the Radix-Tree (PATRICIA) index of Section 4.2.
func BuildRadixTree(codes []Code, ids []int) *RadixTree {
	return radix.Build(codes, ids)
}

// MergeIndexes merges per-partition Dynamic HA-Indexes into a global index
// (Section 5.2). Inputs with disjoint code sets are grafted without touching
// data; overlapping inputs trigger a rebuild.
func MergeIndexes(parts ...*DynamicIndex) *DynamicIndex { return core.Merge(parts...) }

// NewNestedLoop, NewMultiHash, NewHEngine and NewHmSearch construct the
// centralized baselines of Section 6.

// NewNestedLoop builds the linear-scan baseline.
func NewNestedLoop(codes []Code, ids []int) *NestedLoop { return baseline.NewNestedLoop(codes, ids) }

// NewMultiHash builds Manku et al.'s index over `blocks` code blocks keyed
// on every combination of `matched` blocks — C(blocks, matched) tables.
func NewMultiHash(codes []Code, ids []int, blocks, matched int) (*MultiHash, error) {
	return baseline.NewMultiHash(codes, ids, blocks, matched)
}

// NewMH4 builds the paper's MH-4 configuration (4 tables).
func NewMH4(codes []Code, ids []int) (*MultiHash, error) { return baseline.NewMH4(codes, ids) }

// NewMH10 builds the paper's MH-10 configuration (10 tables).
func NewMH10(codes []Code, ids []int) (*MultiHash, error) { return baseline.NewMH10(codes, ids) }

// NewHEngine builds HEngine designed for thresholds up to hmax.
func NewHEngine(codes []Code, ids []int, hmax int) (*HEngine, error) {
	return baseline.NewHEngine(codes, ids, hmax)
}

// NewHmSearch builds the HmSearch signature index for thresholds up to hmax.
func NewHmSearch(codes []Code, ids []int, hmax int) (*HmSearch, error) {
	return baseline.NewHmSearch(codes, ids, hmax)
}

// ---- Hashing ----

// LearnSpectralHash learns a bits-bit spectral hash function from a sample
// of the dataset (Weiss et al., the paper's choice).
func LearnSpectralHash(sample []Vec, bits int) (*SpectralHash, error) {
	return hash.LearnSpectral(sample, bits)
}

// NewSimHash returns a random-hyperplane hash over d-dimensional inputs.
func NewSimHash(d, bits int, seed int64) *SimHash { return hash.NewSimHash(d, bits, seed) }

// HashAll maps a batch of vectors through a hash function.
func HashAll(f HashFunc, vs []Vec) []Code { return hash.HashAll(f, vs) }

// ---- Datasets ----

// Generate produces n synthetic vectors from a dataset profile,
// deterministically from seed.
func Generate(p DatasetProfile, n int, seed int64) []Vec { return dataset.Generate(p, n, seed) }

// ScaleUp grows a dataset by the paper's ×s frequency-successor technique
// while preserving its distribution.
func ScaleUp(d []Vec, s int) []Vec { return dataset.ScaleUp(d, s) }

// Sample draws a uniform reservoir sample of size k.
func Sample(d []Vec, k int, seed int64) []Vec { return dataset.Reservoir(d, k, seed) }

// ---- Partitioning ----

// Pivots derives equi-depth Gray-order partition pivots from sample codes
// (Section 5.1).
func Pivots(sample []Code, parts int) []Code { return histo.Pivots(sample, parts) }

// PartitionOf returns the partition index of a code under the pivots.
func PartitionOf(pivots []Code, c Code) int { return histo.PartitionID(pivots, c) }

// ---- kNN ----

// NewHammingKNN wires a Hamming index and hash function to the original
// vectors for approximate kNN-select with threshold escalation.
func NewHammingKNN(idx knn.HammingSearcher, hasher knn.Hasher, data []Vec) *HammingKNN {
	return knn.NewHammingKNN(idx, hasher, data)
}

// ExactKNN returns the exact k nearest neighbors by linear scan.
func ExactKNN(data []Vec, q Vec, k int) []Neighbor { return knn.Exact(data, q, k) }

// NewE2LSH builds the p-stable LSH baseline.
func NewE2LSH(data []Vec, cfg E2LSHConfig) *E2LSH { return knn.NewE2LSH(data, cfg) }

// NewLSBTree builds the LSB-Tree baseline forest.
func NewLSBTree(data []Vec, cfg LSBConfig) *LSBTree { return knn.NewLSBTree(data, cfg) }

// Recall measures |approx ∩ exact| / |exact| over neighbor id sets.
func Recall(approx, exact []Neighbor) float64 { return knn.Recall(approx, exact) }

// ---- Distributed Hamming-join (Section 5) ----

// PrepareJoin runs the preprocessing phase: sampling, hash learning and
// pivot selection over both tables.
func PrepareJoin(r, s []Vec, opt JoinOptions) (*Preprocessed, error) {
	return mrjoin.Preprocess(r, s, opt)
}

// BuildGlobalIndex runs the first MapReduce job: partition R by Gray-order
// pivots, H-Build a local HA-Index per partition, and merge them.
func BuildGlobalIndex(r []Vec, pre *Preprocessed, opt JoinOptions) (*GlobalIndex, error) {
	return mrjoin.BuildGlobalIndex(r, pre, opt)
}

// HammingJoin runs the second MapReduce job joining S against the broadcast
// global index. Option A ships the index with leaf id tables; Option B
// ships a leafless index and recovers ids in a post-processing hash join
// (Section 5.3).
func HammingJoin(s []Vec, g *GlobalIndex, pre *Preprocessed, optionB bool, opt JoinOptions) (*JoinResult, error) {
	if optionB {
		return mrjoin.HammingJoinB(s, g, pre, opt)
	}
	return mrjoin.HammingJoinA(s, g, pre, opt)
}

// HammingSelect answers a batch of Hamming-select queries as one MapReduce
// job over the broadcast global index: queries are partitioned round-robin
// across reducers, and each reducer drains its share through the batched
// Searcher engine.
func HammingSelect(queries []Vec, g *GlobalIndex, pre *Preprocessed, opt JoinOptions) (*SelectResult, error) {
	return mrjoin.HammingSelect(queries, g, pre, opt)
}

// HammingJoinLargeR is Option B's large-R variant: the id-recovery join runs
// as one more MapReduce repartition hash-join instead of in memory.
func HammingJoinLargeR(r, s []Vec, g *GlobalIndex, pre *Preprocessed, opt JoinOptions) (*JoinResult, error) {
	return mrjoin.HammingJoinBLarge(r, s, g, pre, opt)
}

// PMHJoin runs the parallel MultiHashTable baseline join (Manku et al.
// extended to MapReduce, PMH-k) for comparison with the HA-Index plans.
func PMHJoin(r, s []Vec, pre *Preprocessed, tables int, opt JoinOptions) (*JoinResult, error) {
	return mrjoin.PMHJoin(r, s, pre, tables, opt)
}

// PGBJResult is the output of the exact distributed kNN-join baseline.
type PGBJResult = mrjoin.PGBJResult

// PGBJ runs Lu et al.'s exact parallel kNN-join baseline.
func PGBJ(r, s []Vec, k int, opt JoinOptions) (*PGBJResult, error) {
	return mrjoin.PGBJ(r, s, k, opt)
}

// ---- Serialization ----

// DecodeIndex reads a Dynamic HA-Index previously written with
// (*DynamicIndex).Encode — the wire format local indexes are persisted and
// broadcast in.
func DecodeIndex(r io.Reader) (*DynamicIndex, error) { return core.DecodeDynamic(r) }

// DecodeAnyIndex reads any index wire format — v1 pointer (DynamicIndex),
// v2 frozen (FrozenIndex), or v3 MIH — dispatching on the header version.
func DecodeAnyIndex(r io.Reader) (SearchIndex, error) { return core.DecodeIndex(r) }

// DecodeFrozenIndex reads a frozen index previously written with
// (*FrozenIndex).Encode (wire format v2), rejecting v1 pointer payloads.
func DecodeFrozenIndex(r io.Reader) (*FrozenIndex, error) { return core.DecodeFrozen(r) }

// ---- Similarity-aware relational operators (Section 7 direction) ----

// SimilaritySearcher is the contract the relational operators accept.
type SimilaritySearcher = relop.Searcher

// IntersectRow is one similarity-intersection result.
type IntersectRow = relop.IntersectRow

// SemiJoin returns the probe positions having at least one indexed tuple
// within Hamming distance h.
func SemiJoin(idx SimilaritySearcher, probe []Code, h int) []int {
	return relop.SemiJoin(idx, probe, h)
}

// AntiJoin returns the probe positions having no indexed tuple within h.
func AntiJoin(idx SimilaritySearcher, probe []Code, h int) []int {
	return relop.AntiJoin(idx, probe, h)
}

// Intersect computes the similarity-aware intersection of the probe codes
// with the indexed dataset.
func Intersect(idx SimilaritySearcher, probe []Code, h int) []IntersectRow {
	return relop.Intersect(idx, probe, h)
}

// Subsumes reports whether every probe tuple has an indexed tuple within h.
func Subsumes(idx SimilaritySearcher, probe []Code, h int) bool {
	return relop.Subsumes(idx, probe, h)
}

// ---- Tanimoto similarity search (chemical fingerprints) ----

// TanimotoIndex answers Tanimoto-threshold queries over binary fingerprints
// by reduction to per-popcount Hamming range queries.
type TanimotoIndex = tanimoto.Index

// TanimotoMatch is one Tanimoto search result.
type TanimotoMatch = tanimoto.Match

// NewTanimotoIndex indexes binary fingerprints for Tanimoto search.
func NewTanimotoIndex(prints []Code, ids []int, opts IndexOptions) (*TanimotoIndex, error) {
	return tanimoto.New(prints, ids, opts)
}

// Tanimoto returns the Tanimoto coefficient of two fingerprints.
func Tanimoto(a, b Code) float64 { return tanimoto.Similarity(a, b) }

// ---- kNN-join ----

// KNNJoinResult maps probe indexes to neighbor lists.
type KNNJoinResult = knn.JoinResult

// ExactKNNJoin computes the exact kNN-join by linear scan (ground truth).
func ExactKNNJoin(data, probe []Vec, k int) KNNJoinResult { return knn.ExactJoin(data, probe, k) }

// KNNJoinRecall averages per-tuple recall of an approximate join.
func KNNJoinRecall(approx, exact KNNJoinResult) float64 { return knn.JoinRecall(approx, exact) }

// ---- Cost-based access-path planning ----

// Planner routes each query to the cheapest of the HA-Index walk,
// multi-index hashing, and the linear scan, using a measured per-threshold
// cost model calibrated at build time and refined online.
type Planner = planner.Planner

// PlannerPlan is one routing decision with its EXPLAIN fields.
type PlannerPlan = planner.Plan

// PlannerOptions tunes planner calibration and adaptation.
type PlannerOptions = planner.Options

// PlannerStrategy names a planner access path.
type PlannerStrategy = planner.Strategy

// The planner's access paths.
const (
	UseHA   = planner.UseHA
	UseMIH  = planner.UseMIH
	UseScan = planner.UseScan
)

// NewPlanner builds the full engine set (frozen HA-Index, MIH, scan) over
// the codes and returns a calibrated planner.
func NewPlanner(codes []Code, ids []int, opts PlannerOptions) (*Planner, error) {
	return planner.Auto(codes, ids, opts)
}

// ---- Multi-index hashing engine ----

// MIHIndex is the frozen multi-index-hashing engine: Norouzi et al.'s exact
// pigeonhole search in flat-arena form, the co-equal alternative to the
// HA-Index walk at loose thresholds. Adapt it with MIHSearchIndex to run it
// under Searcher, SearchBatch, and TopK.
type MIHIndex = mih.Index

// MIHOptions configures NewMIH; the zero value auto-sizes the blocks.
type MIHOptions = mih.Options

// NewMIH builds the frozen MIH engine over the codes.
func NewMIH(codes []Code, ids []int, opts MIHOptions) (*MIHIndex, error) {
	return mih.Build(codes, ids, opts)
}

// MIHSearchIndex adapts an MIH engine to the read-only index surface.
func MIHSearchIndex(m *MIHIndex) SearchIndex { return core.AsIndex(m) }

// DecodeMIH reads an MIH engine previously written with (*MIHIndex).Encode
// (wire format v3), rejecting other payloads.
func DecodeMIH(r io.Reader) (*MIHIndex, error) { return mih.Decode(r) }

// ---- Distributed filesystem simulation ----

// DFS is the simulated distributed filesystem; wire it into JoinOptions.FS
// to route local-index persistence through it with byte accounting.
type DFS = dfs.FS

// NewDFS returns an empty simulated filesystem with the given replication
// factor (0 selects 3, the HDFS default).
func NewDFS(replication int) *DFS { return dfs.New(replication) }

// BuildDynamicIndexParallel is BuildDynamicIndex with concurrent
// construction over Gray-range partitions; results are query-equivalent.
// workers <= 0 selects GOMAXPROCS.
func BuildDynamicIndexParallel(codes []Code, ids []int, opts IndexOptions, workers int) *DynamicIndex {
	return core.BuildDynamicParallel(codes, ids, opts, workers)
}

// LocalHammingJoin computes the centralized Hamming-join (the Section 5
// intro's "build an HA-Index for R, run H-Search per S tuple"): all (rid,
// sid) pairs whose codes are within h.
func LocalHammingJoin(rCodes, sCodes []Code, h int) []Pair {
	idx := core.BuildDynamic(rCodes, nil, core.Options{})
	var out []Pair
	var stats core.SearchStats
	for sid, sc := range sCodes {
		for _, rid := range idx.SearchInto(sc, h, &stats) {
			out = append(out, Pair{RID: rid, SID: sid})
		}
	}
	return out
}
