package haindex_test

import (
	"sort"
	"testing"

	"haindex"
)

// TestPublicAPIEndToEnd drives the full public workflow: generate, learn,
// hash, index, select, kNN, and the distributed join.
func TestPublicAPIEndToEnd(t *testing.T) {
	data := haindex.Generate(haindex.NUSWide, 800, 1)
	hf, err := haindex.LearnSpectralHash(haindex.Sample(data, 200, 2), 32)
	if err != nil {
		t.Fatal(err)
	}
	codes := haindex.HashAll(hf, data)

	idx := haindex.BuildDynamicIndex(codes, nil, haindex.IndexOptions{})
	q := hf.Hash(data[5])
	got := idx.Search(q, 3)
	found := false
	for _, id := range got {
		if id == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("query tuple missing from its own neighborhood")
	}
	// Cross-check against the nested-loop facade baseline.
	nl := haindex.NewNestedLoop(codes, nil)
	want := nl.Search(q, 3)
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("DHA %d vs NL %d results", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("result sets differ")
		}
	}

	// kNN.
	s := haindex.NewHammingKNN(idx, hf, data)
	ns := s.Select(data[5], 5)
	if len(ns) != 5 || ns[0].ID != 5 || ns[0].Dist != 0 {
		t.Fatalf("kNN self lookup: %v", ns)
	}
	exact := haindex.ExactKNN(data, data[5], 5)
	if haindex.Recall(ns, exact) < 0.2 {
		t.Fatalf("recall too low: %v vs %v", ns, exact)
	}

	// Distributed join (tiny).
	opt := haindex.JoinOptions{Bits: 32, Nodes: 2, Partitions: 2, SampleRate: 0.2, Threshold: 3, Seed: 1}
	pre, err := haindex.PrepareJoin(data[:400], data[400:], opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := haindex.BuildGlobalIndex(data[:400], pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := haindex.HammingJoin(data[400:], g, pre, false, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := haindex.HammingJoin(data[400:], g, pre, true, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("options disagree: %d vs %d pairs", len(a.Pairs), len(b.Pairs))
	}
}

// TestPaperExamplePublic re-runs Example 1 through the facade.
func TestPaperExamplePublic(t *testing.T) {
	codes := []haindex.Code{
		haindex.MustCode("001 001 010"),
		haindex.MustCode("001 011 101"),
		haindex.MustCode("011 001 100"),
		haindex.MustCode("101 001 010"),
		haindex.MustCode("101 110 110"),
		haindex.MustCode("101 011 101"),
		haindex.MustCode("101 101 010"),
		haindex.MustCode("111 001 100"),
	}
	for _, build := range []func() interface {
		Search(haindex.Code, int) []int
	}{
		func() interface {
			Search(haindex.Code, int) []int
		} {
			return haindex.BuildDynamicIndex(codes, nil, haindex.IndexOptions{Window: 2})
		},
		func() interface {
			Search(haindex.Code, int) []int
		} {
			return haindex.BuildStaticIndex(codes, nil, 3)
		},
		func() interface {
			Search(haindex.Code, int) []int
		} {
			return haindex.BuildRadixTree(codes, nil)
		},
	} {
		idx := build()
		got := idx.Search(haindex.MustCode("101100010"), 3)
		sort.Ints(got)
		want := []int{0, 3, 4, 6}
		if len(got) != len(want) {
			t.Fatalf("got %v want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v want %v", got, want)
			}
		}
	}
}

func TestDistanceFacade(t *testing.T) {
	a := haindex.MustCode("101100010")
	b := haindex.MustCode("001001010")
	if haindex.Distance(a, b) != 3 {
		t.Fatal("distance mismatch")
	}
	if haindex.NewCode(8).Len() != 8 {
		t.Fatal("NewCode length")
	}
	if _, err := haindex.CodeFromString("10x"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPivotsFacade(t *testing.T) {
	data := haindex.Generate(haindex.DBPedia, 300, 3)
	hf, err := haindex.LearnSpectralHash(data, 32)
	if err != nil {
		t.Fatal(err)
	}
	codes := haindex.HashAll(hf, data)
	pivots := haindex.Pivots(codes, 4)
	if len(pivots) != 3 {
		t.Fatalf("pivots = %d", len(pivots))
	}
	counts := make([]int, 4)
	for _, c := range codes {
		counts[haindex.PartitionOf(pivots, c)]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d empty: %v", p, counts)
		}
	}
}

func TestMergeIndexesFacade(t *testing.T) {
	a := haindex.BuildDynamicIndex([]haindex.Code{haindex.MustCode("0000")}, []int{0}, haindex.IndexOptions{})
	b := haindex.BuildDynamicIndex([]haindex.Code{haindex.MustCode("1111")}, []int{1}, haindex.IndexOptions{})
	g := haindex.MergeIndexes(a, b)
	if g.Len() != 2 {
		t.Fatalf("Len=%d", g.Len())
	}
	if got := g.Search(haindex.MustCode("1110"), 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestLocalHammingJoin(t *testing.T) {
	r := []haindex.Code{haindex.MustCode("0000"), haindex.MustCode("1111")}
	s := []haindex.Code{haindex.MustCode("0001"), haindex.MustCode("0111")}
	pairs := haindex.LocalHammingJoin(r, s, 1)
	want := map[haindex.Pair]bool{
		{RID: 0, SID: 0}: true, // 0000~0001
		{RID: 1, SID: 1}: true, // 1111~0111
	}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Fatalf("unexpected pair %v", p)
		}
	}
}
