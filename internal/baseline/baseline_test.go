package baseline

import (
	"math/rand"
	"sort"
	"testing"

	"haindex/internal/bitvec"
)

// searcher is the common contract the tests exercise.
type searcher interface {
	Search(q bitvec.Code, h int) []int
	Len() int
	Insert(id int, c bitvec.Code)
	Delete(id int, c bitvec.Code) bool
	SizeBytes() int
}

// clusteredCodes produces codes with heavy sharing, like hashed real data.
func clusteredCodes(rng *rand.Rand, n, bitsLen, clusters, flips int) []bitvec.Code {
	out := make([]bitvec.Code, 0, n)
	for len(out) < n {
		center := bitvec.Rand(rng, bitsLen)
		for i := 0; i < n/clusters+1 && len(out) < n; i++ {
			c := center.Clone()
			for f := 0; f < flips; f++ {
				c.FlipBit(rng.Intn(bitsLen))
			}
			out = append(out, c)
		}
	}
	return out
}

func sortedCopy(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func builders(t *testing.T, codes []bitvec.Code) map[string]searcher {
	t.Helper()
	out := map[string]searcher{
		"nested-loop": NewNestedLoop(append([]bitvec.Code(nil), codes...), nil),
	}
	mh4, err := NewMH4(append([]bitvec.Code(nil), codes...), nil)
	if err != nil {
		t.Fatal(err)
	}
	out["mh-4"] = mh4
	mh10, err := NewMH10(append([]bitvec.Code(nil), codes...), nil)
	if err != nil {
		t.Fatal(err)
	}
	out["mh-10"] = mh10
	he, err := NewHEngine(append([]bitvec.Code(nil), codes...), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["hengine"] = he
	hm, err := NewHmSearch(append([]bitvec.Code(nil), codes...), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["hmsearch"] = hm
	return out
}

// TestAgainstOracle cross-checks every index against the nested-loop scan on
// random and clustered workloads across thresholds.
func TestAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 6; trial++ {
		bitsLen := []int{16, 32, 64}[trial%3]
		var codes []bitvec.Code
		if trial%2 == 0 {
			codes = clusteredCodes(rng, 300, bitsLen, 10, 3)
		} else {
			codes = make([]bitvec.Code, 300)
			for i := range codes {
				codes[i] = bitvec.Rand(rng, bitsLen)
			}
		}
		idxs := builders(t, codes)
		oracle := idxs["nested-loop"]
		for q := 0; q < 20; q++ {
			query := codes[rng.Intn(len(codes))].Clone()
			for f := 0; f < rng.Intn(4); f++ {
				query.FlipBit(rng.Intn(bitsLen))
			}
			for _, h := range []int{0, 1, 3, 6} {
				want := oracle.Search(query, h)
				for name, idx := range idxs {
					if name == "nested-loop" {
						continue
					}
					got := idx.Search(query, h)
					if !equalIDs(got, want) {
						t.Fatalf("%s: h=%d got %d results want %d (trial %d)", name, h, len(got), len(want), trial)
					}
				}
			}
		}
	}
}

func TestInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	codes := clusteredCodes(rng, 100, 32, 5, 2)
	idxs := builders(t, codes)
	extra := bitvec.Rand(rng, 32)
	for name, idx := range idxs {
		idx.Insert(1000, extra)
		got := idx.Search(extra, 0)
		found := false
		for _, id := range got {
			if id == 1000 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: inserted tuple not found", name)
		}
		if !idx.Delete(1000, extra) {
			t.Errorf("%s: delete reported failure", name)
		}
		for _, id := range idx.Search(extra, 0) {
			if id == 1000 {
				t.Errorf("%s: deleted tuple still returned", name)
			}
		}
		if idx.Delete(1000, extra) {
			t.Errorf("%s: double delete reported success", name)
		}
	}
}

func TestDeleteExistingTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	codes := clusteredCodes(rng, 80, 32, 4, 2)
	idxs := builders(t, codes)
	victim := 17
	for name, idx := range idxs {
		if !idx.Delete(victim, codes[victim]) {
			t.Errorf("%s: failed to delete existing tuple", name)
			continue
		}
		for _, id := range idx.Search(codes[victim], 0) {
			if id == victim {
				t.Errorf("%s: deleted tuple still returned", name)
			}
		}
	}
}

// TestMemoryOrdering checks the paper's qualitative memory story:
// MultiHash's replicas dominate, HEngine uses less, and more tables cost
// more.
func TestMemoryOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	codes := clusteredCodes(rng, 2000, 32, 20, 3)
	idxs := builders(t, codes)
	nl := idxs["nested-loop"].SizeBytes()
	mh4 := idxs["mh-4"].SizeBytes()
	mh10 := idxs["mh-10"].SizeBytes()
	he := idxs["hengine"].SizeBytes()
	if mh10 <= mh4 {
		t.Errorf("MH-10 (%d) should use more memory than MH-4 (%d)", mh10, mh4)
	}
	if mh4 <= nl {
		t.Errorf("MH-4 (%d) should replicate beyond one copy (%d)", mh4, nl)
	}
	if he >= mh10 {
		t.Errorf("HEngine (%d) should use less memory than MH-10 (%d)", he, mh10)
	}
}

func TestSegmentBounds(t *testing.T) {
	b := segmentBounds(9, 3)
	want := [][2]int{{0, 3}, {3, 3}, {6, 3}}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v", b)
		}
	}
	b = segmentBounds(10, 3)
	if b[0][1] != 4 || b[1][1] != 3 || b[2][1] != 3 {
		t.Fatalf("uneven bounds = %v", b)
	}
	total := 0
	for _, x := range b {
		total += x[1]
	}
	if total != 10 || b[2][0]+b[2][1] != 10 {
		t.Fatalf("bounds don't cover: %v", b)
	}
}

func TestSegKey(t *testing.T) {
	c := bitvec.MustFromString("101100010")
	if got := segKey(c, 0, 3); got != 0b101 {
		t.Errorf("seg0 = %b", got)
	}
	if got := segKey(c, 3, 3); got != 0b100 {
		t.Errorf("seg1 = %b", got)
	}
	if got := segKey(c, 6, 3); got != 0b010 {
		t.Errorf("seg2 = %b", got)
	}
	// Across a word boundary.
	rng := rand.New(rand.NewSource(55))
	big := bitvec.Rand(rng, 128)
	got := segKey(big, 60, 10)
	var want uint64
	for i := 0; i < 10; i++ {
		want <<= 1
		if big.Bit(60 + i) {
			want |= 1
		}
	}
	if got != want {
		t.Errorf("cross-boundary segKey = %b want %b", got, want)
	}
}

func TestEnumerateVariants(t *testing.T) {
	var got []uint64
	enumerateVariants(0b101, 3, 1, func(v uint64) { got = append(got, v) })
	// Exact + 3 one-bit flips.
	if len(got) != 4 {
		t.Fatalf("got %d variants", len(got))
	}
	seen := map[uint64]bool{}
	for _, v := range got {
		seen[v] = true
	}
	for _, want := range []uint64{0b101, 0b100, 0b111, 0b001} {
		if !seen[want] {
			t.Errorf("missing variant %b", want)
		}
	}
	// Radius 2 over width 4: 1 + 4 + 6 = 11 variants.
	got = nil
	enumerateVariants(0, 4, 2, func(v uint64) { got = append(got, v) })
	if len(got) != 11 {
		t.Errorf("radius-2 count = %d want 11", len(got))
	}
}

func TestMultiHashErrors(t *testing.T) {
	if _, err := NewMultiHash(nil, nil, 4, 1); err == nil {
		t.Error("expected empty-dataset error")
	}
	rng := rand.New(rand.NewSource(56))
	long := []bitvec.Code{bitvec.Rand(rng, 200)}
	if _, err := NewMultiHash(long, nil, 2, 1); err == nil {
		t.Error("expected oversized-key error")
	}
	short := []bitvec.Code{bitvec.Rand(rng, 32)}
	if _, err := NewMultiHash(short, nil, 4, 5); err == nil {
		t.Error("expected matched>blocks error")
	}
	if _, err := NewMultiHash(short, nil, 0, 1); err == nil {
		t.Error("expected invalid-blocks error")
	}
}

func TestNestedLoopIDs(t *testing.T) {
	codes := []bitvec.Code{bitvec.MustFromString("0000"), bitvec.MustFromString("1111")}
	nl := NewNestedLoop(codes, []int{7, 9})
	got := nl.Search(bitvec.MustFromString("0000"), 0)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v", got)
	}
}
