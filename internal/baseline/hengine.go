package baseline

import (
	"fmt"
	"sort"

	"haindex/internal/bitvec"
)

// HEngine is Liu, Shen & Torng's (ICDE'11) Hamming query engine. The code is
// split into k = ceil((hmax+1)/2) segments so that any code within distance
// hmax agrees with the query on some segment up to one flipped bit. Each
// segment owns a table of (segment value, position) entries sorted by value;
// a query binary-searches the table for its segment value and each of its
// one-bit variants, verifying candidates against a single shared copy of the
// dataset — less memory than MultiHash, at the cost of variant enumeration.
type HEngine struct {
	hmax   int
	k      int
	bounds [][2]int
	codes  []bitvec.Code
	ids    []int
	tables [][]hentry

	visited []uint32
	epoch   uint32
}

type hentry struct {
	key uint64
	pos int32
}

// NewHEngine builds an index designed for thresholds up to hmax. Queries with
// larger h remain exact but enumerate more variants per segment (the
// threshold sensitivity the paper reports).
func NewHEngine(codes []bitvec.Code, ids []int, hmax int) (*HEngine, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("baseline: empty dataset")
	}
	if hmax < 1 {
		hmax = 1
	}
	L := codes[0].Len()
	k := (hmax + 2) / 2 // ceil((hmax+1)/2)
	if k > L {
		k = L
	}
	if (L+k-1)/k > 64 {
		return nil, fmt.Errorf("baseline: %d-bit segments exceed 64 bits", (L+k-1)/k)
	}
	e := &HEngine{
		hmax:    hmax,
		k:       k,
		bounds:  segmentBounds(L, k),
		codes:   codes,
		ids:     normalizeIDs(codes, ids),
		tables:  make([][]hentry, k),
		visited: make([]uint32, len(codes)),
	}
	for t := 0; t < k; t++ {
		from, width := e.bounds[t][0], e.bounds[t][1]
		tab := make([]hentry, len(codes))
		for i, c := range codes {
			tab[i] = hentry{key: segKey(c, from, width), pos: int32(i)}
		}
		sort.Slice(tab, func(a, b int) bool { return tab[a].key < tab[b].key })
		e.tables[t] = tab
	}
	return e, nil
}

// Search returns the ids of all codes within Hamming distance h of q.
func (e *HEngine) Search(q bitvec.Code, h int) []int {
	e.epoch++
	radius := h / e.k // pigeonhole: some segment within floor(h/k)
	var out []int
	for t := 0; t < e.k; t++ {
		from, width := e.bounds[t][0], e.bounds[t][1]
		key := segKey(q, from, width)
		probe := func(k uint64) {
			tab := e.tables[t]
			i := sort.Search(len(tab), func(j int) bool { return tab[j].key >= k })
			for ; i < len(tab) && tab[i].key == k; i++ {
				pos := tab[i].pos
				if e.visited[pos] == e.epoch {
					continue
				}
				e.visited[pos] = e.epoch
				if e.ids[pos] < 0 {
					continue // tombstone
				}
				if _, ok := q.DistanceWithin(e.codes[pos], h); ok {
					out = append(out, e.ids[pos])
				}
			}
		}
		enumerateVariants(key, width, radius, probe)
	}
	return out
}

// Len returns the number of live indexed tuples.
func (e *HEngine) Len() int {
	n := 0
	for _, id := range e.ids {
		if id >= 0 {
			n++
		}
	}
	return n
}

// Insert adds a tuple to every sorted table (in-place insertion keeps the
// tables sorted).
func (e *HEngine) Insert(id int, c bitvec.Code) {
	pos := int32(len(e.codes))
	e.codes = append(e.codes, c)
	e.ids = append(e.ids, id)
	e.visited = append(e.visited, 0)
	for t := 0; t < e.k; t++ {
		from, width := e.bounds[t][0], e.bounds[t][1]
		key := segKey(c, from, width)
		tab := e.tables[t]
		i := sort.Search(len(tab), func(j int) bool { return tab[j].key >= key })
		tab = append(tab, hentry{})
		copy(tab[i+1:], tab[i:])
		tab[i] = hentry{key: key, pos: pos}
		e.tables[t] = tab
	}
}

// Delete tombstones the tuple with the given id and code. It reports whether
// a tuple was removed.
func (e *HEngine) Delete(id int, c bitvec.Code) bool {
	from, width := e.bounds[0][0], e.bounds[0][1]
	key := segKey(c, from, width)
	tab := e.tables[0]
	i := sort.Search(len(tab), func(j int) bool { return tab[j].key >= key })
	for ; i < len(tab) && tab[i].key == key; i++ {
		pos := tab[i].pos
		if e.ids[pos] == id && e.codes[pos].Equal(c) {
			e.ids[pos] = -1
			return true
		}
	}
	return false
}

// SizeBytes returns the approximate in-memory footprint: one dataset copy
// plus k sorted signature tables.
func (e *HEngine) SizeBytes() int {
	sz := len(e.visited)*4 + len(e.ids)*8
	for _, c := range e.codes {
		sz += c.SizeBytes()
	}
	for _, tab := range e.tables {
		sz += len(tab) * 12
	}
	return sz
}
