package baseline

import (
	"fmt"

	"haindex/internal/bitvec"
)

// HmSearch is Zhang et al.'s (SSDBM'13) exact signature-enumeration index.
// Like HEngine it splits codes into k = ceil((hmax+1)/2) segments so that a
// match within hmax agrees with the query on some segment up to one bit —
// but it moves the variant enumeration to indexing time: every code is
// indexed under its exact segment value and every one-bit variant of it, so
// a query performs only k exact lookups. The price is the dramatic index
// growth the paper notes: each tuple contributes 1+width signatures per
// segment.
type HmSearch struct {
	hmax   int
	k      int
	bounds [][2]int
	codes  []bitvec.Code
	ids    []int
	// sigs[t] maps a segment-t signature to the positions indexed under it.
	sigs []map[uint64][]int32

	visited []uint32
	epoch   uint32
}

// NewHmSearch builds the signature index for thresholds up to hmax.
func NewHmSearch(codes []bitvec.Code, ids []int, hmax int) (*HmSearch, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("baseline: empty dataset")
	}
	if hmax < 1 {
		hmax = 1
	}
	L := codes[0].Len()
	k := (hmax + 2) / 2
	if k > L {
		k = L
	}
	if (L+k-1)/k > 64 {
		return nil, fmt.Errorf("baseline: %d-bit segments exceed 64 bits", (L+k-1)/k)
	}
	h := &HmSearch{
		hmax:    hmax,
		k:       k,
		bounds:  segmentBounds(L, k),
		codes:   codes,
		ids:     normalizeIDs(codes, ids),
		sigs:    make([]map[uint64][]int32, k),
		visited: make([]uint32, len(codes)),
	}
	for t := 0; t < k; t++ {
		h.sigs[t] = make(map[uint64][]int32)
	}
	for i, c := range codes {
		h.indexCode(int32(i), c)
	}
	return h, nil
}

func (h *HmSearch) indexCode(pos int32, c bitvec.Code) {
	for t := 0; t < h.k; t++ {
		from, width := h.bounds[t][0], h.bounds[t][1]
		key := segKey(c, from, width)
		enumerateVariants(key, width, 1, func(sig uint64) {
			h.sigs[t][sig] = append(h.sigs[t][sig], pos)
		})
	}
}

// Search returns the ids of all codes within Hamming distance h of q. When h
// exceeds the designed hmax, the query side additionally enumerates variants
// to keep the result exact.
func (h *HmSearch) Search(q bitvec.Code, dist int) []int {
	h.epoch++
	// Data side covers radius 1 per segment; the query side must cover the
	// remainder of the pigeonhole radius floor(dist/k).
	extra := dist/h.k - 1
	if extra < 0 {
		extra = 0
	}
	var out []int
	for t := 0; t < h.k; t++ {
		from, width := h.bounds[t][0], h.bounds[t][1]
		key := segKey(q, from, width)
		probe := func(sig uint64) {
			for _, pos := range h.sigs[t][sig] {
				if h.visited[pos] == h.epoch {
					continue
				}
				h.visited[pos] = h.epoch
				if h.ids[pos] < 0 {
					continue
				}
				if _, ok := q.DistanceWithin(h.codes[pos], dist); ok {
					out = append(out, h.ids[pos])
				}
			}
		}
		enumerateVariants(key, width, extra, probe)
	}
	return out
}

// Len returns the number of live indexed tuples.
func (h *HmSearch) Len() int {
	n := 0
	for _, id := range h.ids {
		if id >= 0 {
			n++
		}
	}
	return n
}

// Insert adds a tuple and all its signatures.
func (h *HmSearch) Insert(id int, c bitvec.Code) {
	pos := int32(len(h.codes))
	h.codes = append(h.codes, c)
	h.ids = append(h.ids, id)
	h.visited = append(h.visited, 0)
	h.indexCode(pos, c)
}

// Delete tombstones the tuple with the given id and code.
func (h *HmSearch) Delete(id int, c bitvec.Code) bool {
	from, width := h.bounds[0][0], h.bounds[0][1]
	key := segKey(c, from, width)
	for _, pos := range h.sigs[0][key] {
		if h.ids[pos] == id && h.codes[pos].Equal(c) {
			h.ids[pos] = -1
			return true
		}
	}
	return false
}

// SizeBytes returns the approximate footprint, dominated by the enumerated
// signature postings.
func (h *HmSearch) SizeBytes() int {
	sz := len(h.visited)*4 + len(h.ids)*8
	for _, c := range h.codes {
		sz += c.SizeBytes()
	}
	for _, m := range h.sigs {
		for _, b := range m {
			sz += 16 + 4*len(b)
		}
	}
	return sz
}
