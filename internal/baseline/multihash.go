package baseline

import (
	"fmt"

	"haindex/internal/bitvec"
)

// segmentBounds splits L bits into k contiguous segments of nearly equal
// width (the first L%k segments are one bit wider).
func segmentBounds(L, k int) [][2]int {
	if k <= 0 || k > L {
		panic(fmt.Sprintf("baseline: cannot split %d bits into %d segments", L, k))
	}
	out := make([][2]int, k)
	base, extra := L/k, L%k
	at := 0
	for i := 0; i < k; i++ {
		w := base
		if i < extra {
			w++
		}
		out[i] = [2]int{at, w}
		at += w
	}
	return out
}

// segKey extracts the width-bit segment starting at from as a uint64.
func segKey(c bitvec.Code, from, width int) uint64 {
	// Width is bounded by the table construction (<= 64).
	words := c.Words()
	var v uint64
	for i := 0; i < width; i++ {
		bit := from + i
		v <<= 1
		v |= words[bit/64] >> uint(63-bit%64) & 1
	}
	return v
}

// MultiHash is Manku et al.'s multiple-hash-table index. The binary code is
// cut into `blocks` contiguous blocks; one table is built for every
// combination of `matched` blocks, keyed by their concatenation, and every
// table replicates the stored codes (the memory cost the paper criticizes).
// If two codes are within distance h <= blocks-matched, at most h blocks
// differ, so some combination of matched blocks agrees exactly and one
// exact-match probe per table finds every answer. The paper's MH-4 is
// (blocks=4, matched=1): 4 tables on 1-block keys; MH-10 is (5, 2): 10
// tables on longer, more selective 2-block keys.
//
// As in Manku's sorted tables — where duplicate fingerprints are adjacent —
// each bucket holds distinct codes with their tuple-id lists, so a probe
// verifies each distinct code once regardless of duplication.
//
// For thresholds beyond the design guarantee the pigeonhole bound
// generalizes: some combination carries at most floor(matched·h/blocks)
// differing bits, so tables are probed with key variants within that radius
// and the index stays exact at every h.
type MultiHash struct {
	blocks  int
	matched int
	bounds  [][2]int
	combos  [][]int // block index combinations, one per table
	tables  []mhTable
	keyBits int

	// Distinct-code groups shared by all tables.
	groups  []mhGroup
	byCode  map[string]int32
	n       int
	visited []uint32
	epoch   uint32
}

type mhGroup struct {
	code bitvec.Code
	ids  []int
}

type mhTable struct {
	// codes is this table's replica of the distinct codes, as in Manku's
	// per-table sorted copies.
	codes   []bitvec.Code
	buckets map[uint64][]int32 // key -> distinct-group indexes
}

// combinations enumerates all m-element subsets of {0..b-1}.
func combinations(b, m int) [][]int {
	var out [][]int
	combo := make([]int, m)
	var rec func(start, at int)
	rec = func(start, at int) {
		if at == m {
			out = append(out, append([]int(nil), combo...))
			return
		}
		for i := start; i < b; i++ {
			combo[at] = i
			rec(i+1, at+1)
		}
	}
	rec(0, 0)
	return out
}

// NewMultiHash builds the index over `blocks` blocks keyed on every
// combination of `matched` blocks (C(blocks, matched) tables). It returns an
// error when a key would exceed 64 bits or the parameters are degenerate.
func NewMultiHash(codes []bitvec.Code, ids []int, blocks, matched int) (*MultiHash, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("baseline: empty dataset")
	}
	L := codes[0].Len()
	if blocks <= 0 || blocks > L {
		return nil, fmt.Errorf("baseline: invalid block count %d for %d-bit codes", blocks, L)
	}
	if matched <= 0 || matched > blocks {
		return nil, fmt.Errorf("baseline: invalid matched count %d of %d blocks", matched, blocks)
	}
	bounds := segmentBounds(L, blocks)
	keyBits := 0
	for i := 0; i < matched; i++ {
		keyBits += bounds[i][1] // widest blocks come first
	}
	if keyBits > 64 {
		return nil, fmt.Errorf("baseline: %d-bit combination keys exceed 64 bits", keyBits)
	}
	m := &MultiHash{
		blocks:  blocks,
		matched: matched,
		bounds:  bounds,
		combos:  combinations(blocks, matched),
		keyBits: keyBits,
		byCode:  make(map[string]int32),
	}
	m.tables = make([]mhTable, len(m.combos))
	for t := range m.tables {
		m.tables[t].buckets = make(map[uint64][]int32)
	}
	allIDs := normalizeIDs(codes, ids)
	for i, c := range codes {
		m.Insert(allIDs[i], c)
	}
	return m, nil
}

// NewMH4 builds the paper's MH-4 configuration: 4 tables over 4 blocks.
func NewMH4(codes []bitvec.Code, ids []int) (*MultiHash, error) {
	return NewMultiHash(codes, ids, 4, 1)
}

// NewMH10 builds the paper's MH-10 configuration: 10 tables over C(5,2)
// block pairs.
func NewMH10(codes []bitvec.Code, ids []int) (*MultiHash, error) {
	return NewMultiHash(codes, ids, 5, 2)
}

// comboKey concatenates the blocks selected by combo into one key.
func (m *MultiHash) comboKey(c bitvec.Code, combo []int) uint64 {
	var key uint64
	for _, b := range combo {
		from, width := m.bounds[b][0], m.bounds[b][1]
		key = key<<uint(width) | segKey(c, from, width)
	}
	return key
}

// comboWidth returns the key width of a combination.
func (m *MultiHash) comboWidth(combo []int) int {
	w := 0
	for _, b := range combo {
		w += m.bounds[b][1]
	}
	return w
}

// Search returns the ids of all codes within Hamming distance h of q.
func (m *MultiHash) Search(q bitvec.Code, h int) []int {
	m.epoch++
	// Pigeonhole: some combination of matched blocks carries at most
	// floor(matched*h/blocks) of the differing bits.
	radius := m.matched * h / m.blocks
	var out []int
	for t, combo := range m.combos {
		tab := &m.tables[t]
		key := m.comboKey(q, combo)
		probe := func(k uint64) {
			for _, gi := range tab.buckets[k] {
				if m.visited[gi] == m.epoch {
					continue
				}
				m.visited[gi] = m.epoch
				if _, ok := q.DistanceWithin(tab.codes[gi], h); ok {
					out = append(out, m.groups[gi].ids...)
				}
			}
		}
		enumerateVariants(key, m.comboWidth(combo), radius, probe)
	}
	return out
}

// enumerateVariants calls fn with key and every value obtained by flipping up
// to radius of its low width bits.
func enumerateVariants(key uint64, width, radius int, fn func(uint64)) {
	fn(key)
	if radius <= 0 {
		return
	}
	var rec func(k uint64, start, left int)
	rec = func(k uint64, start, left int) {
		if left == 0 {
			return
		}
		for b := start; b < width; b++ {
			nk := k ^ (1 << uint(b))
			fn(nk)
			rec(nk, b+1, left-1)
		}
	}
	rec(key, 0, radius)
}

// Len returns the number of live indexed tuples.
func (m *MultiHash) Len() int { return m.n }

// Tables returns the table count (e.g. 4 for MH-4, 10 for MH-10).
func (m *MultiHash) Tables() int { return len(m.combos) }

// Insert adds a tuple; a previously unseen code is indexed in every table.
func (m *MultiHash) Insert(id int, c bitvec.Code) {
	m.n++
	key := c.Key()
	if gi, ok := m.byCode[key]; ok {
		m.groups[gi].ids = append(m.groups[gi].ids, id)
		return
	}
	gi := int32(len(m.groups))
	m.groups = append(m.groups, mhGroup{code: c, ids: []int{id}})
	m.byCode[key] = gi
	m.visited = append(m.visited, 0)
	for t, combo := range m.combos {
		tab := &m.tables[t]
		tab.codes = append(tab.codes, c.Clone())
		k := m.comboKey(c, combo)
		tab.buckets[k] = append(tab.buckets[k], gi)
	}
}

// Delete removes the tuple with the given id and code. Emptied groups stay
// in the tables (they simply match nothing). It reports whether a tuple was
// removed.
func (m *MultiHash) Delete(id int, c bitvec.Code) bool {
	gi, ok := m.byCode[c.Key()]
	if !ok {
		return false
	}
	ids := m.groups[gi].ids
	for i, v := range ids {
		if v == id {
			m.groups[gi].ids = append(ids[:i], ids[i+1:]...)
			m.n--
			return true
		}
	}
	return false
}

// SizeBytes returns the approximate in-memory footprint, dominated by the
// per-table code replicas.
func (m *MultiHash) SizeBytes() int {
	sz := len(m.visited) * 4
	for _, g := range m.groups {
		sz += 48 + g.code.SizeBytes() + 8*len(g.ids)
	}
	for t := range m.tables {
		tab := &m.tables[t]
		for _, c := range tab.codes {
			sz += c.SizeBytes()
		}
		for _, b := range tab.buckets {
			sz += 16 + 4*len(b)
		}
	}
	return sz
}
