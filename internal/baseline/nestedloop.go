// Package baseline implements the state-of-the-art competitors the paper
// evaluates the HA-Index against for centralized Hamming-select:
//
//   - NestedLoop — the naive linear XOR-and-count scan.
//   - MultiHash — Manku et al.'s multiple-hash-table scheme (MH-4, MH-10):
//     the code is split into one segment per table, the dataset is
//     replicated and bucketed per table, and a query probes each table by
//     its segment, scanning the bucket linearly.
//   - HEngine — Liu, Shen & Torng's refinement: sorted signature tables
//     probed by binary search over the query segment and its one-bit
//     variants, trading enumeration for replication.
//   - HmSearch — Zhang et al.'s exact signature-enumeration index
//     (related-work extension).
//
// All implementations are exact for every threshold h: when a configuration
// cannot rely on the pigeonhole guarantee at exact-match radius, the probe
// radius per segment is raised to floor(h/k), which is the generalized
// multi-index-hashing guarantee. That keeps cross-method comparisons
// apples-to-apples while preserving each method's cost profile.
package baseline

import (
	"haindex/internal/bitvec"
)

// NestedLoop is the naive baseline: a linear scan computing the full Hamming
// distance of every stored code against the query.
type NestedLoop struct {
	codes []bitvec.Code
	ids   []int
}

// NewNestedLoop indexes (trivially) the codes with their tuple ids. ids may
// be nil, in which case positions are used.
func NewNestedLoop(codes []bitvec.Code, ids []int) *NestedLoop {
	return &NestedLoop{codes: codes, ids: normalizeIDs(codes, ids)}
}

// Search returns the ids of all codes within Hamming distance h of q.
func (n *NestedLoop) Search(q bitvec.Code, h int) []int {
	var out []int
	for i, c := range n.codes {
		if _, ok := q.DistanceWithin(c, h); ok {
			out = append(out, n.ids[i])
		}
	}
	return out
}

// Len returns the number of indexed tuples.
func (n *NestedLoop) Len() int { return len(n.codes) }

// Insert appends a tuple.
func (n *NestedLoop) Insert(id int, c bitvec.Code) {
	n.codes = append(n.codes, c)
	n.ids = append(n.ids, id)
}

// Delete removes the first tuple with the given id and code. It reports
// whether a tuple was removed.
func (n *NestedLoop) Delete(id int, c bitvec.Code) bool {
	for i := range n.codes {
		if n.ids[i] == id && n.codes[i].Equal(c) {
			n.codes = append(n.codes[:i], n.codes[i+1:]...)
			n.ids = append(n.ids[:i], n.ids[i+1:]...)
			return true
		}
	}
	return false
}

// SizeBytes returns the approximate in-memory footprint.
func (n *NestedLoop) SizeBytes() int {
	sz := 0
	for _, c := range n.codes {
		sz += c.SizeBytes()
	}
	return sz + 8*len(n.ids)
}

func normalizeIDs(codes []bitvec.Code, ids []int) []int {
	if ids != nil {
		if len(ids) != len(codes) {
			panic("baseline: ids length mismatch")
		}
		return ids
	}
	ids = make([]int, len(codes))
	for i := range ids {
		ids[i] = i
	}
	return ids
}
