package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haindex/internal/bitvec"
)

// Property: the pigeonhole-probed MultiHash equals the scan for arbitrary
// block/match configurations and thresholds.
func TestQuickMultiHashConfigurations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 16 + rng.Intn(48)
		blocks := 2 + rng.Intn(4)
		matched := 1 + rng.Intn(blocks)
		n := 20 + rng.Intn(150)
		codes := clusteredCodes(rng, n, bits, 4, 3)
		mh, err := NewMultiHash(codes, nil, blocks, matched)
		if err != nil {
			return true // invalid configuration rejected is fine
		}
		nl := NewNestedLoop(codes, nil)
		q := bitvec.Rand(rng, bits)
		h := rng.Intn(8)
		return equalIDs(mh.Search(q, h), nl.Search(q, h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: HEngine stays exact when queried beyond its design threshold.
func TestQuickHEngineBeyondDesign(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		codes := clusteredCodes(rng, 100, 32, 4, 3)
		he, err := NewHEngine(codes, nil, 1+rng.Intn(4))
		if err != nil {
			return false
		}
		nl := NewNestedLoop(codes, nil)
		q := codes[rng.Intn(len(codes))]
		h := rng.Intn(12)
		return equalIDs(he.Search(q, h), nl.Search(q, h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
