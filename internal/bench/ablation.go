package bench

import (
	"fmt"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/histo"
)

// uniformPivots adapts histo.UniformPivots for the join-balance ablation.
func uniformPivots(bits, parts int) []bitvec.Code {
	return histo.UniformPivots(bits, parts)
}

// Ablations runs the design-choice studies DESIGN.md calls out over one
// dataset: Gray ordering vs lexicographic, residual distance accounting vs
// full recomputation, and node consolidation on vs off.
func Ablations(sc Scale) ([]Table, error) {
	env, err := NewEnv(dataset.NUSWide, sc.SelectN, sc.Bits, sc.Queries, sc.Seed)
	if err != nil {
		return nil, err
	}
	h := sc.Threshold

	variants := []struct {
		name string
		opts core.Options
		// recompute switches the search to the full-recompute ablation.
		recompute bool
	}{
		{name: "DHA (gray + residual + consolidate)"},
		{name: "lexicographic order", opts: core.Options{LexOrder: true}},
		{name: "full distance recompute", recompute: true},
		{name: "no node consolidation", opts: core.Options{NoConsolidate: true}},
	}
	t := Table{
		Title: "Ablation: Dynamic HA-Index design choices",
		Note: fmt.Sprintf("%s, n=%d, h=%d; distance computations are per-query means",
			env.Profile.Name, sc.SelectN, h),
		Header: []string{"variant", "query time(ms)", "distance computations", "nodes", "edges"},
	}
	for _, v := range variants {
		idx := core.BuildDynamic(env.Codes, nil, v.opts)
		var dur time.Duration
		comps := 0
		t0 := time.Now()
		for _, q := range env.Queries {
			if v.recompute {
				idx.SearchRecomputeAll(q, h)
			} else {
				idx.Search(q, h)
			}
			comps += idx.Stats.DistanceComputations
		}
		dur = time.Since(t0) / time.Duration(len(env.Queries))
		t.Rows = append(t.Rows, []string{
			v.name,
			ms(dur),
			fmt.Sprintf("%d", comps/len(env.Queries)),
			fmt.Sprintf("%d", idx.NodeCount()),
			fmt.Sprintf("%d", idx.EdgeCount()),
		})
	}

	balance, err := JoinBalance(sc)
	if err != nil {
		return nil, err
	}
	return []Table{t, balance}, nil
}
