// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6) at laptop scale: the same systems, workloads,
// sweeps and metrics, with dataset sizes reduced so a full reproduction
// completes in minutes. The targets are the paper's qualitative shapes —
// who wins, by roughly what factor, and where the crossovers are — not its
// absolute numbers, which depended on a 2014-era 16-node Hadoop cluster.
//
// Each experiment returns a Table that the habench command prints and
// EXPERIMENTS.md records.
package bench

import (
	"fmt"
	"strings"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/dataset"
	"haindex/internal/hash"
	"haindex/internal/vector"
)

// Scale collects every knob that trades fidelity for runtime.
type Scale struct {
	// SelectN is the per-dataset tuple count for the Hamming-select
	// experiments (Table 4, Figures 6 and 8). The paper used 270k–1M.
	SelectN int
	// Queries is how many queries each timing averages over.
	Queries int
	// Bits is the binary code length (the paper's Table 4 uses 32).
	Bits int
	// Threshold is the default Hamming threshold h.
	Threshold int
	// KNNN is the dataset size for the kNN-select comparison (Table 5; the
	// paper used 300k tuples).
	KNNN int
	// K is the kNN result size (the paper's default is 50).
	K int
	// LSBTrees is the LSB forest size (the paper used 25).
	LSBTrees int
	// JoinBase is the per-side base size for the MapReduce experiments
	// (Figures 7, 9, 10); scaled by JoinScales.
	JoinBase int
	// JoinScales are the ×s dataset scale factors of Figures 7 and 9.
	JoinScales []int
	// Nodes is the simulated cluster size (the paper used 16).
	Nodes int
	// Partitions is the partition count N for the distributed joins.
	Partitions int
	// SampleRates are the Figure 10 sampling sweep points.
	SampleRates []float64
	// Seed makes every experiment deterministic.
	Seed int64
}

// DefaultScale returns the laptop-scale defaults documented in
// EXPERIMENTS.md.
func DefaultScale() Scale {
	return Scale{
		SelectN:     20000,
		Queries:     40,
		Bits:        32,
		Threshold:   3,
		KNNN:        20000,
		K:           50,
		LSBTrees:    25,
		JoinBase:    200,
		JoinScales:  []int{5, 10, 15, 20, 25},
		Nodes:       16,
		Partitions:  16,
		SampleRates: []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
		Seed:        1,
	}
}

// QuickScale returns a configuration small enough for tests and smoke runs.
func QuickScale() Scale {
	s := DefaultScale()
	s.SelectN = 2000
	s.Queries = 10
	s.KNNN = 2000
	s.K = 10
	s.LSBTrees = 5
	s.JoinBase = 150
	s.JoinScales = []int{2, 4}
	s.Nodes = 4
	s.Partitions = 4
	s.SampleRates = []float64{0.1, 0.3}
	return s
}

// Table is one reproduced table or figure: a titled grid of formatted cells.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t Table) Format() string {
	var b strings.Builder
	b.WriteString("## " + t.Title + "\n")
	if t.Note != "" {
		b.WriteString(t.Note + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Env is a prepared dataset: vectors, a learned hash, the codes, and query
// codes drawn as perturbed dataset members (the paper queries with dataset
// tuples).
type Env struct {
	Profile dataset.Profile
	Vecs    []vector.Vec
	Hash    *hash.Spectral
	Codes   []bitvec.Code
	Queries []bitvec.Code
	QVecs   []vector.Vec
}

// NewEnv generates and hashes one dataset.
func NewEnv(p dataset.Profile, n, bits, queries int, seed int64) (*Env, error) {
	vecs := dataset.Generate(p, n, seed)
	sampleN := n / 10
	if sampleN < 100 {
		sampleN = n
	}
	sample := dataset.Reservoir(vecs, sampleN, seed+1)
	h, err := hash.LearnSpectral(sample, bits)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", p.Name, err)
	}
	codes := hash.HashAll(h, vecs)
	env := &Env{Profile: p, Vecs: vecs, Hash: h, Codes: codes}
	for i := 0; i < queries; i++ {
		j := (i * 7919) % n
		env.Queries = append(env.Queries, codes[j])
		env.QVecs = append(env.QVecs, vecs[j])
	}
	return env, nil
}

// ---- formatting helpers ----

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }

func mb(bytes int) string { return fmt.Sprintf("%.1f", float64(bytes)/1e6) }

func gb(bytes int64) string { return fmt.Sprintf("%.4f", float64(bytes)/1e9) }

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// timeQueries runs fn once per query and returns the mean duration.
func timeQueries(queries []bitvec.Code, fn func(q bitvec.Code)) time.Duration {
	t0 := time.Now()
	for _, q := range queries {
		fn(q)
	}
	if len(queries) == 0 {
		return 0
	}
	return time.Since(t0) / time.Duration(len(queries))
}
