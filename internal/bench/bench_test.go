package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"haindex/internal/dataset"
)

// The bench package's tests run every experiment at QuickScale and verify
// structure plus the paper's qualitative orderings where they are stable at
// tiny scale.

func TestTableFormat(t *testing.T) {
	tb := Table{
		Title:  "T",
		Note:   "note",
		Header: []string{"a", "longer"},
		Rows:   [][]string{{"xx", "y"}},
	}
	s := tb.Format()
	for _, want := range []string{"## T", "note", "a ", "longer", "xx"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q:\n%s", want, s)
		}
	}
}

func TestNewEnv(t *testing.T) {
	env, err := NewEnv(profileForTest(), 500, 32, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Codes) != 500 || len(env.Queries) != 10 {
		t.Fatalf("codes=%d queries=%d", len(env.Codes), len(env.Queries))
	}
	if env.Codes[0].Len() != 32 {
		t.Fatalf("bits=%d", env.Codes[0].Len())
	}
}

func TestTable4Quick(t *testing.T) {
	sc := QuickScale()
	tables, err := Table4(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables=%d want 3 (one per dataset)", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 7 {
			t.Fatalf("%s: %d rows want 7 systems", tb.Title, len(tb.Rows))
		}
		// Query time ordering at the extremes: DHA at least matches
		// Nested-Loops even at this tiny quick scale (the gap widens with
		// n; the full-scale ordering is asserted in EXPERIMENTS.md runs).
		nl := cellMs(t, tb, "Nested-Loops", 1)
		dha := cellMs(t, tb, "DHA-Index", 1)
		if dha > nl*3/2+50*time.Microsecond {
			t.Errorf("%s: DHA (%v) should not lose to Nested-Loops (%v)", tb.Title, dha, nl)
		}
	}
}

func TestFig6Quick(t *testing.T) {
	sc := QuickScale()
	sc.SelectN = 1000
	sc.Queries = 5
	tables, err := Fig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables=%d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Header) != 7 || len(tb.Rows) != 7 {
			t.Fatalf("%s: header=%d rows=%d", tb.Title, len(tb.Header), len(tb.Rows))
		}
	}
}

func TestFig8Quick(t *testing.T) {
	sc := QuickScale()
	sc.SelectN = 1000
	sc.Queries = 5
	tables, err := Fig8(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables=%d", len(tables))
	}
	if len(tables[0].Rows) != 8 {
		t.Fatalf("window rows=%d", len(tables[0].Rows))
	}
}

func TestTable5Quick(t *testing.T) {
	sc := QuickScale()
	sc.KNNN = 800
	sc.Queries = 5
	tables, err := Table5(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables=%d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 6 {
			t.Fatalf("%s: rows=%d want 6", tb.Title, len(tb.Rows))
		}
	}
}

func TestFig7And9Quick(t *testing.T) {
	sc := QuickScale()
	tables7, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables7) != 3 {
		t.Fatalf("fig7 tables=%d", len(tables7))
	}
	for _, tb := range tables7 {
		if len(tb.Rows) != 4 {
			t.Fatalf("%s: rows=%d", tb.Title, len(tb.Rows))
		}
		// PGBJ must shuffle the most at every scale (Figure 7's headline).
		pg := rowOf(t, tb, "PGBJ")
		ha := rowOf(t, tb, "MRHA-INDEX-B")
		for c := 1; c < len(pg); c++ {
			pgv, _ := strconv.ParseFloat(pg[c], 64)
			hav, _ := strconv.ParseFloat(ha[c], 64)
			if pgv <= hav {
				t.Errorf("%s col %d: PGBJ %v should exceed MRHA-B %v", tb.Title, c, pgv, hav)
			}
		}
	}
	tables9, err := Fig9(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables9) != 3 {
		t.Fatalf("fig9 tables=%d", len(tables9))
	}
}

func TestFig10Quick(t *testing.T) {
	sc := QuickScale()
	tables, err := Fig10(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables=%d", len(tables))
	}
	for _, row := range tables[1].Rows {
		p, _ := strconv.ParseFloat(row[1], 64)
		r, _ := strconv.ParseFloat(row[2], 64)
		if p < 0 || p > 1 || r < 0 || r > 1 {
			t.Fatalf("precision/recall out of range: %v", row)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	sc := QuickScale()
	tables, err := Ablations(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables=%d", len(tables))
	}
	if len(tables[0].Rows) != 4 {
		t.Fatalf("variant rows=%d", len(tables[0].Rows))
	}
}

// ---- helpers ----

func profileForTest() dataset.Profile {
	return dataset.Profile{Name: "test", Dim: 16, Clusters: 4, Skew: 0.8, Spread: 0.05}
}

func rowOf(t *testing.T, tb Table, name string) []string {
	t.Helper()
	for _, r := range tb.Rows {
		if r[0] == name {
			return r
		}
	}
	t.Fatalf("%s: no row %q", tb.Title, name)
	return nil
}

func cellMs(t *testing.T, tb Table, row string, col int) time.Duration {
	t.Helper()
	r := rowOf(t, tb, row)
	v, err := strconv.ParseFloat(r[col], 64)
	if err != nil {
		t.Fatalf("cell %s[%d] = %q: %v", row, col, r[col], err)
	}
	return time.Duration(v * float64(time.Millisecond))
}

func TestScalingQuick(t *testing.T) {
	sc := QuickScale()
	sc.SelectN = 500
	sc.Queries = 5
	tables, err := Scaling(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("tables=%d rows=%d", len(tables), len(tables[0].Rows))
	}
}

func TestFaultSweepQuick(t *testing.T) {
	sc := QuickScale()
	tables, err := FaultSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables=%d", len(tables))
	}
	for _, tb := range tables {
		for _, row := range tb.Rows {
			if row[len(row)-1] != "yes" {
				t.Fatalf("%s: inexact row under faults: %v", tb.Title, row)
			}
		}
	}
	for _, row := range tables[0].Rows[1:] {
		if row[4] == "0" {
			t.Fatalf("faulted row recorded no retries: %v", row)
		}
	}
}

func TestPlannerBenchQuick(t *testing.T) {
	sc := QuickScale()
	sc.SelectN = 800
	sc.Queries = 5
	tables, err := plannerBench(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables=%d want 2", len(tables))
	}
	if len(tables[0].Rows) != 12 {
		t.Fatalf("sweep rows=%d want 12 thresholds", len(tables[0].Rows))
	}
	if len(tables[0].Header) != 8 {
		t.Fatalf("sweep header=%d", len(tables[0].Header))
	}
	if len(tables[1].Rows) != 4 {
		t.Fatalf("summary rows=%d", len(tables[1].Rows))
	}
}

func TestScaleBenchQuick(t *testing.T) {
	sc := QuickScale()
	tables, err := scaleBench(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables=%d want 2", len(tables))
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("build rows=%d want 2 sizes", len(tables[0].Rows))
	}
	if len(tables[1].Rows) != 2 {
		t.Fatalf("serve rows=%d want mmap+eager", len(tables[1].Rows))
	}
}
