package bench

import (
	"fmt"
	"sort"
	"time"

	"haindex/internal/dataset"
	"haindex/internal/mapreduce"
	"haindex/internal/mrjoin"
	"haindex/internal/vector"
)

// This file is the failure-model study — beyond the paper, which ran on a
// real Hadoop cluster and inherited its fault tolerance for free. The sweep
// shows the property the paper's exactness claims silently depend on: task
// failures and stragglers change the join's cost (attempts, wasted work,
// wall time) but never its answer or its shuffle volume.

// stragglerDelay is the injected stall for the speculation study: long
// enough to dominate a laptop-scale job's wall time, short enough that the
// full sweep stays in benchmark budget.
const stragglerDelay = 60 * time.Millisecond

// faultPipeline runs the full MRHA pipeline (preprocess → global index
// build → Option A join) under one failure configuration, returning the
// join pairs, the combined build+join metrics, and the end-to-end wall.
func faultPipeline(r, s []vector.Vec, opt mrjoin.Options) ([]mrjoin.Pair, mapreduce.Metrics, time.Duration, error) {
	t0 := time.Now()
	pre, err := mrjoin.Preprocess(r, s, opt)
	if err != nil {
		return nil, mapreduce.Metrics{}, 0, err
	}
	g, err := mrjoin.BuildGlobalIndex(r, pre, opt)
	if err != nil {
		return nil, mapreduce.Metrics{}, 0, err
	}
	join, err := mrjoin.HammingJoinA(s, g, pre, opt)
	if err != nil {
		return nil, mapreduce.Metrics{}, 0, err
	}
	var total mapreduce.Metrics
	total.Add(g.Metrics)
	total.Add(join.Metrics)
	return join.Pairs, total, time.Since(t0), nil
}

func sortPairs(ps []mrjoin.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
}

func samePairs(a, b []mrjoin.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FaultSweep measures the Hamming-join under the runtime failure model:
// first a failure-rate sweep (wall time, attempts, wasted work, and an
// exactness check against the failure-free run), then the straggler study
// (speculative execution on vs off).
func FaultSweep(sc Scale) ([]Table, error) {
	p := dataset.NUSWide
	base := dataset.Generate(p, sc.JoinBase*2, sc.Seed)
	r, s := base, base
	mkOpt := func() mrjoin.Options {
		return mrjoin.Options{
			Bits:       sc.Bits,
			Partitions: sc.Partitions,
			Nodes:      sc.Nodes,
			SampleRate: 0.1,
			Threshold:  sc.Threshold,
			Seed:       sc.Seed,
			// Tight backoff keeps the sweep's injected retries from
			// dominating a laptop-scale run.
			Retry: mapreduce.RetryPolicy{Backoff: 100 * time.Microsecond},
		}
	}

	sweep := Table{
		Title: fmt.Sprintf("Fault sweep: MRHA join (Option A) under injected task failures (%s)", p.Name),
		Note: fmt.Sprintf("n=%d per side, self-join, h=%d, %d nodes; first attempt of every k-th map and reduce task fails; "+
			"exact = pairs and shuffle bytes identical to the failure-free run", len(base), sc.Threshold, sc.Nodes),
		Header: []string{"fail-rate", "wall(s)", "tasks", "attempts", "retried", "wasted(MB)", "exact"},
	}
	var refPairs []mrjoin.Pair
	var refShuffle int64
	for _, mod := range []int{0, 8, 4, 2} {
		opt := mkOpt()
		rate := "0"
		if mod > 0 {
			opt.Faults = mapreduce.NewFaultPlan().
				FailEvery(mapreduce.MapTask, mod).
				FailEvery(mapreduce.ReduceTask, mod)
			rate = fmt.Sprintf("1/%d", mod)
		}
		pairs, m, wall, err := faultPipeline(r, s, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: fault sweep (mod %d): %v", mod, err)
		}
		sortPairs(pairs)
		if mod == 0 {
			refPairs, refShuffle = pairs, m.ShuffleBytes
		}
		exact := "yes"
		if !samePairs(pairs, refPairs) || m.ShuffleBytes != refShuffle {
			exact = "NO"
		}
		sweep.Rows = append(sweep.Rows, []string{
			rate, secs(wall), fmt.Sprintf("%d", m.Tasks()),
			fmt.Sprintf("%d", m.Attempts), fmt.Sprintf("%d", m.RetriedTasks),
			fmt.Sprintf("%.3f", float64(m.WastedBytes)/1e6), exact,
		})
	}

	straggler := Table{
		Title: "Straggler study: speculative execution vs a stalled map task",
		Note: fmt.Sprintf("map task 0 of each job stalls %v; speculation races a backup attempt and takes the first finisher",
			stragglerDelay),
		Header: []string{"speculation", "wall(s)", "attempts", "spec-launched", "spec-won", "exact"},
	}
	for _, speculate := range []bool{false, true} {
		opt := mkOpt()
		opt.Faults = mapreduce.NewFaultPlan().
			Delay(mapreduce.MapTask, 0, 0, stragglerDelay)
		label := "off"
		if speculate {
			opt.Speculation = mapreduce.Speculation{Enabled: true, MinCompleted: 2}
			label = "on"
		}
		pairs, m, wall, err := faultPipeline(r, s, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: straggler study (speculate=%v): %v", speculate, err)
		}
		sortPairs(pairs)
		exact := "yes"
		if !samePairs(pairs, refPairs) || m.ShuffleBytes != refShuffle {
			exact = "NO"
		}
		straggler.Rows = append(straggler.Rows, []string{
			label, secs(wall), fmt.Sprintf("%d", m.Attempts),
			fmt.Sprintf("%d", m.SpeculativeLaunched), fmt.Sprintf("%d", m.SpeculativeWon), exact,
		})
	}
	return []Table{sweep, straggler}, nil
}
