package bench

import (
	"fmt"
	"time"

	"haindex/internal/dataset"
	"haindex/internal/knn"
	"haindex/internal/mapreduce"
	"haindex/internal/mrjoin"
	"haindex/internal/vector"
)

// joinCosts is the measured cost of one distributed join plan at one scale.
type joinCosts struct {
	shuffle int64 // shuffle + broadcast bytes, the Figure 7 metric
	wall    time.Duration
}

// runJoinSuite executes the four systems of Figures 7 and 9 over one
// dataset at one scale factor and returns per-system costs.
func runJoinSuite(base []vector.Vec, scale int, sc Scale) (map[string]joinCosts, error) {
	data := dataset.ScaleUp(base, scale)
	// Self-join setting, as in the paper's Section 6.2 (Self-Hamming-join /
	// Self-kNN-join).
	r, s := data, data
	opt := mrjoin.Options{
		Bits:       sc.Bits,
		Partitions: sc.Partitions,
		Nodes:      sc.Nodes,
		SampleRate: 0.1,
		Threshold:  sc.Threshold,
		Seed:       sc.Seed,
	}
	out := make(map[string]joinCosts)

	t0 := time.Now()
	pre, err := mrjoin.Preprocess(r, s, opt)
	if err != nil {
		return nil, err
	}
	preTime := time.Since(t0)

	t0 = time.Now()
	g, err := mrjoin.BuildGlobalIndex(r, pre, opt)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(t0)
	buildCost := g.Metrics.ShuffleBytes + g.Metrics.BroadcastBytes

	t0 = time.Now()
	a, err := mrjoin.HammingJoinA(s, g, pre, opt)
	if err != nil {
		return nil, err
	}
	out["MRHA-INDEX-A"] = joinCosts{
		shuffle: buildCost + a.Metrics.ShuffleBytes + a.Metrics.BroadcastBytes,
		wall:    preTime + buildTime + time.Since(t0),
	}

	t0 = time.Now()
	b, err := mrjoin.HammingJoinB(s, g, pre, opt)
	if err != nil {
		return nil, err
	}
	out["MRHA-INDEX-B"] = joinCosts{
		shuffle: buildCost + b.Metrics.ShuffleBytes + b.Metrics.BroadcastBytes,
		wall:    preTime + buildTime + time.Since(t0),
	}

	t0 = time.Now()
	p, err := mrjoin.PMHJoin(r, s, pre, 10, opt)
	if err != nil {
		return nil, err
	}
	out["PMH-10"] = joinCosts{
		shuffle: p.Metrics.ShuffleBytes + p.Metrics.BroadcastBytes,
		wall:    preTime + time.Since(t0),
	}

	t0 = time.Now()
	pg, err := mrjoin.PGBJ(r, s, sc.K, opt)
	if err != nil {
		return nil, err
	}
	out["PGBJ"] = joinCosts{
		shuffle: pg.Metrics.ShuffleBytes + pg.Metrics.BroadcastBytes,
		wall:    time.Since(t0),
	}
	return out, nil
}

var joinSystems = []string{"PGBJ", "PMH-10", "MRHA-INDEX-A", "MRHA-INDEX-B"}

// joinSweep runs the suite across the scale sweep for each dataset and
// renders one table per dataset with the chosen metric.
func joinSweep(sc Scale, title, note string, metric func(joinCosts) string) ([]Table, error) {
	var out []Table
	for _, p := range dataset.Profiles() {
		base := dataset.Generate(p, sc.JoinBase, sc.Seed)
		t := Table{
			Title:  fmt.Sprintf("%s (%s)", title, p.Name),
			Note:   fmt.Sprintf("%s; base n=%d per side, self-join, h=%d, %d nodes", note, sc.JoinBase, sc.Threshold, sc.Nodes),
			Header: append([]string{"system"}, sprintInts("x", sc.JoinScales)...),
		}
		rows := make(map[string][]string, len(joinSystems))
		for _, sys := range joinSystems {
			rows[sys] = []string{sys}
		}
		for _, scale := range sc.JoinScales {
			costs, err := runJoinSuite(base, scale, sc)
			if err != nil {
				return nil, err
			}
			for _, sys := range joinSystems {
				rows[sys] = append(rows[sys], metric(costs[sys]))
			}
		}
		for _, sys := range joinSystems {
			t.Rows = append(t.Rows, rows[sys])
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig7 reproduces the shuffle-cost study: bytes crossing the network
// (shuffle + broadcast) per system as the data scales ×5..×25.
func Fig7(sc Scale) ([]Table, error) {
	return joinSweep(sc, "Figure 7: shuffling cost of Hamming-join and kNN-join",
		"cells in GB (log-scale plot in the paper)",
		func(c joinCosts) string { return gb(c.shuffle) })
}

// Fig9 reproduces the scalability study: end-to-end running time per system
// across the same sweep.
func Fig9(sc Scale) ([]Table, error) {
	return joinSweep(sc, "Figure 9: speedup and scalability (running time)",
		"cells in seconds",
		func(c joinCosts) string { return secs(c.wall) })
}

// Fig10 reproduces the sampling study: per-phase costs of the MRHA pipeline
// and the approximate join's precision/recall as the sampling rate varies.
func Fig10(sc Scale) ([]Table, error) {
	p := dataset.NUSWide
	base := dataset.Generate(p, sc.JoinBase*4, sc.Seed)
	r, s := base, base
	phases := Table{
		Title:  fmt.Sprintf("Figure 10a: effect of sampling on query cost (%s)", p.Name),
		Note:   fmt.Sprintf("n=%d per side, h=%d; cells in seconds", len(base), sc.Threshold),
		Header: []string{"sampling", "learn-hash(s)", "pivot(s)", "build-index(s)", "join(s)", "reducer-skew"},
	}
	quality := Table{
		Title:  fmt.Sprintf("Figure 10b: precision and recall vs sampling (%s)", p.Name),
		Note:   fmt.Sprintf("approximate kNN-join (k=%d) via Hamming-join at h=%d vs exact kNN-join", sc.K, sc.Threshold),
		Header: []string{"sampling", "precision", "recall"},
	}
	for _, rate := range sc.SampleRates {
		opt := mrjoin.Options{
			Bits:       sc.Bits,
			Partitions: sc.Partitions,
			Nodes:      sc.Nodes,
			SampleRate: rate,
			Threshold:  sc.Threshold,
			Seed:       sc.Seed,
		}
		pre, err := mrjoin.Preprocess(r, s, opt)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		g, err := mrjoin.BuildGlobalIndex(r, pre, opt)
		if err != nil {
			return nil, err
		}
		buildTime := time.Since(t0)
		t0 = time.Now()
		join, err := mrjoin.HammingJoinA(s, g, pre, opt)
		if err != nil {
			return nil, err
		}
		joinTime := time.Since(t0)
		phases.Rows = append(phases.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			secs(pre.LearnTime),
			secs(pre.SampleTime + pre.PivotTime),
			secs(buildTime),
			secs(joinTime),
			fmt.Sprintf("%.2f", g.Metrics.Skew()),
		})
		prec, rec := joinQuality(r, s, join, sc.K)
		quality.Rows = append(quality.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%.3f", prec),
			fmt.Sprintf("%.3f", rec),
		})
	}
	return []Table{phases, quality}, nil
}

// joinQuality measures the approximate kNN-join the Hamming-join induces:
// for a sample of S tuples, the join partners (ranked by true distance,
// truncated to k) are compared with the exact k nearest neighbors.
func joinQuality(r, s []vector.Vec, join *mrjoin.JoinResult, k int) (precision, recall float64) {
	partners := make(map[int][]int)
	for _, p := range join.Pairs {
		partners[p.SID] = append(partners[p.SID], p.RID)
	}
	nq := 50
	if nq > len(s) {
		nq = len(s)
	}
	var psum, rsum float64
	for i := 0; i < nq; i++ {
		sid := (i * 131) % len(s)
		approx := knn.ExactSubset(r, partners[sid], s[sid], k)
		exact := knn.Exact(r, s[sid], k)
		inExact := make(map[int]bool, len(exact))
		for _, n := range exact {
			inExact[n.ID] = true
		}
		hits := 0
		for _, n := range approx {
			if inExact[n.ID] {
				hits++
			}
		}
		if len(approx) > 0 {
			psum += float64(hits) / float64(len(approx))
		}
		rsum += float64(hits) / float64(len(exact))
	}
	return psum / float64(nq), rsum / float64(nq)
}

// JoinBalance is the pivot-strategy ablation: reducer skew under histogram
// pivots vs uniform range splitting on each (skewed) dataset.
func JoinBalance(sc Scale) (Table, error) {
	t := Table{
		Title:  "Ablation: histogram pivots vs uniform range partitioning",
		Note:   "reducer input skew (max/mean); 1.0 is perfectly balanced",
		Header: []string{"dataset", "histogram-pivots", "uniform-pivots"},
	}
	for _, p := range dataset.Profiles() {
		base := dataset.Generate(p, sc.JoinBase*4, sc.Seed)
		opt := mrjoin.Options{Bits: sc.Bits, Partitions: sc.Partitions, Nodes: sc.Nodes, SampleRate: 0.1, Threshold: sc.Threshold, Seed: sc.Seed}
		pre, err := mrjoin.Preprocess(base, base, opt)
		if err != nil {
			return Table{}, err
		}
		g, err := mrjoin.BuildGlobalIndex(base, pre, opt)
		if err != nil {
			return Table{}, err
		}
		histSkew := g.Metrics.Skew()

		uniform := *pre
		uniform.Pivots = uniformPivots(sc.Bits, opt.Partitions)
		gu, err := mrjoin.BuildGlobalIndex(base, &uniform, opt)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{p.Name, fmt.Sprintf("%.2f", histSkew), fmt.Sprintf("%.2f", gu.Metrics.Skew())})
		_ = mapreduce.Metrics{}
	}
	return t, nil
}
