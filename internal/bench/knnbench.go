package bench

import (
	"fmt"
	"time"

	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/hash"
	"haindex/internal/knn"
	"haindex/internal/vector"
)

// Table5 reproduces the kNN-select comparison: query time and index build
// time for E2LSH, the LSB-Tree forest, and the HA-Index-backed approximate
// kNN at 32- and 64-bit codes, per dataset.
func Table5(sc Scale) ([]Table, error) {
	var out []Table
	for _, p := range dataset.Profiles() {
		vecs := dataset.Generate(p, sc.KNNN, sc.Seed)
		qidx := make([]int, 0, sc.Queries)
		for i := 0; i < sc.Queries; i++ {
			qidx = append(qidx, (i*7919)%len(vecs))
		}
		t := Table{
			Title: fmt.Sprintf("Table 5 (%s): kNN-select comparison", p.Name),
			Note: fmt.Sprintf("n=%d, k=%d; LSB forest of %d trees; query is per-query mean; recall vs exact scan",
				sc.KNNN, sc.K, sc.LSBTrees),
			Header: []string{"algorithm", "query time(ms)", "index build time(s)", "recall"},
		}
		exact := make([][]knn.Neighbor, len(qidx))
		for i, qi := range qidx {
			exact[i] = knn.Exact(vecs, vecs[qi], sc.K)
		}
		meanRecall := func(sel func(q vector.Vec, k int) []knn.Neighbor) string {
			sum := 0.0
			for i, qi := range qidx {
				sum += knn.Recall(sel(vecs[qi], sc.K), exact[i])
			}
			return fmt.Sprintf("%.2f", sum/float64(len(qidx)))
		}

		// E2LSH with the paper's 20 tables.
		t0 := time.Now()
		lsh := knn.NewE2LSH(vecs, knn.E2LSHConfig{Tables: 20, Seed: sc.Seed})
		lshBuild := time.Since(t0)
		lshQ := timeVecQueries(vecs, qidx, func(q vector.Vec) { lsh.Select(q, sc.K) })
		t.Rows = append(t.Rows, []string{"LSH", ms(lshQ), secs(lshBuild), meanRecall(lsh.Select)})

		// LSB-Tree forest.
		t0 = time.Now()
		lsb := knn.NewLSBTree(vecs, knn.LSBConfig{Trees: sc.LSBTrees, Seed: sc.Seed})
		lsbBuild := time.Since(t0)
		lsbQ := timeVecQueries(vecs, qidx, func(q vector.Vec) { lsb.Select(q, sc.K) })
		t.Rows = append(t.Rows, []string{fmt.Sprintf("LSB-Tree(%d)", sc.LSBTrees), ms(lsbQ), secs(lsbBuild), meanRecall(lsb.Select)})

		// HA-Index variants at 32 and 64 bits, static and dynamic.
		for _, bits := range []int{32, 64} {
			sample := dataset.Reservoir(vecs, len(vecs)/10+100, sc.Seed+2)
			hf, err := hash.LearnSpectral(sample, bits)
			if err != nil {
				return nil, err
			}
			codes := hash.HashAll(hf, vecs)

			t0 = time.Now()
			sha := core.BuildStatic(codes, nil, 8)
			shaBuild := time.Since(t0)
			shaKNN := knn.NewHammingKNN(sha, hf, vecs)
			shaQ := timeVecQueries(vecs, qidx, func(q vector.Vec) { shaKNN.Select(q, sc.K) })
			t.Rows = append(t.Rows, []string{fmt.Sprintf("SHA-Index(%d)", bits), ms(shaQ), secs(shaBuild), meanRecall(shaKNN.Select)})

			t0 = time.Now()
			dha := core.BuildDynamic(codes, nil, core.Options{})
			dhaBuild := time.Since(t0)
			dhaKNN := knn.NewHammingKNN(dha, hf, vecs)
			dhaQ := timeVecQueries(vecs, qidx, func(q vector.Vec) { dhaKNN.Select(q, sc.K) })
			t.Rows = append(t.Rows, []string{fmt.Sprintf("DHA-Index(%d)", bits), ms(dhaQ), secs(dhaBuild), meanRecall(dhaKNN.Select)})
		}
		out = append(out, t)
	}
	return out, nil
}

func timeVecQueries(vecs []vector.Vec, qidx []int, fn func(q vector.Vec)) time.Duration {
	t0 := time.Now()
	for _, i := range qidx {
		fn(vecs[i])
	}
	if len(qidx) == 0 {
		return 0
	}
	return time.Since(t0) / time.Duration(len(qidx))
}
