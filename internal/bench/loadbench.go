package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/client"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/histo"
	"haindex/internal/loadgen"
	"haindex/internal/server"
	"haindex/internal/wire"
)

// LoadBenchFile is where LoadBench writes its machine-readable results.
const LoadBenchFile = "BENCH_load.json"

type loadBenchJSON struct {
	N           int     `json:"n"`
	Bits        int     `json:"bits"`
	Threshold   int     `json:"threshold"`
	Shards      int     `json:"shards"`
	Searchers   int     `json:"searchers_per_shard"`
	Routers     int     `json:"routers"`
	Batch       int     `json:"queries_per_request"`
	PoolSize    int     `json:"distinct_requests"`
	ZipfSkew    float64 `json:"zipf_skew"`
	ServiceNs   int64   `json:"unloaded_request_ns"`
	CapacityRPS float64 `json:"capacity_rps"`
	SLONs       int64   `json:"slo_ns"`
	ShedAfterNs int64   `json:"shed_after_ns"`
	DeadlineNs  int64   `json:"client_deadline_ns"`

	Sweep      []loadRunJSON  `json:"sweep"`
	Cache      []cacheRunJSON `json:"cache"`
	Replicated *repBenchJSON  `json:"replicated,omitempty"`
}

type loadRunJSON struct {
	RateMultiple float64 `json:"rate_multiple"`
	Shedding     bool    `json:"shedding"`
	OfferedRPS   float64 `json:"offered_rps"`
	Offered      int64   `json:"offered"`
	Done         int64   `json:"done"`
	Good         int64   `json:"good"`
	Shed         int64   `json:"shed"`
	ServerSheds  int64   `json:"server_sheds"`
	Failed       int64   `json:"failed"`
	Dropped      int64   `json:"dropped"`
	Throughput   float64 `json:"throughput_rps"`
	Goodput      float64 `json:"goodput_rps"`
	P50Ns        int64   `json:"p50_ns"`
	P95Ns        int64   `json:"p95_ns"`
	P99Ns        int64   `json:"p99_ns"`
	MaxNs        int64   `json:"max_ns"`
}

type cacheRunJSON struct {
	CacheOn bool    `json:"cache_on"`
	HitRate float64 `json:"hit_rate"`
	loadRunJSON
}

// LoadBench probes the serving tier under traffic instead of back-to-back
// measurement loops: an open-loop zipfian workload is offered to a real
// loopback deployment at controlled fractions of its measured capacity,
// through a pool of routers so client-side connection serialization does
// not mask server-side queueing. Two questions are answered. (a) Does the
// server-side result cache convert popularity skew into latency headroom —
// hit rate and tail latency with the cache on versus off at the same
// offered rate? (b) Past saturation, does admission-budget shedding keep
// goodput (completions within the SLO) from collapsing the way an
// unprotected queue does? Results go to BENCH_load.json.
func LoadBench(sc Scale) ([]Table, error) {
	quick := sc.SelectN <= 4000
	bits := 64 // fixed: the load experiment pins the 20k x 64-bit shape
	env, err := NewEnv(dataset.NUSWide, sc.SelectN, bits, sc.Queries, sc.Seed)
	if err != nil {
		return nil, err
	}

	const (
		parts     = 2
		searchers = 2
		zipfSkew  = 1.1
	)
	routers, batch, poolBatches := 64, 16, 400
	calibDur, runDur := 700*time.Millisecond, 1200*time.Millisecond
	if quick {
		routers, batch, poolBatches = 16, 8, 120
		calibDur, runDur = 300*time.Millisecond, 350*time.Millisecond
	}

	// The request pool: poolBatches distinct requests of batch queries each,
	// every query a near-duplicate of a stored code. Popularity is zipfian
	// over whole requests, so the cache sees the head of the distribution
	// again and again.
	rng := rand.New(rand.NewSource(sc.Seed + 17))
	queries := make([]bitvec.Code, poolBatches*batch)
	for i := range queries {
		c := env.Codes[rng.Intn(len(env.Codes))].Clone()
		for f := 0; f < 2; f++ {
			c.FlipBit(rng.Intn(bits))
		}
		queries[i] = c
	}
	pick := loadgen.NewPicker(dataset.ZipfWeights(poolBatches, zipfSkew))
	batchOf := func(qi int) []bitvec.Code { return queries[qi*batch : (qi+1)*batch] }

	rec := loadBenchJSON{
		N:         len(env.Codes),
		Bits:      bits,
		Shards:    parts,
		Searchers: searchers,
		Routers:   routers,
		Batch:     batch,
		PoolSize:  poolBatches,
		ZipfSkew:  zipfSkew,
	}

	// Base deployment: no cache, no shedding. Used for calibration, the
	// shedding-off sweep arm, and the cache-off run.
	base, err := startLoadServers(env.Codes, bits, parts, 1,
		server.Options{Searchers: searchers})
	if err != nil {
		return nil, err
	}
	defer base.close()

	// Calibration routers get a generous deadline: nothing here is
	// overloaded yet, and the measured numbers size every knob below.
	calibWorkers := 4 * parts * searchers
	if err := base.dial(client.Options{Timeout: time.Second}, calibWorkers); err != nil {
		return nil, err
	}

	// Calibrate the threshold so one request costs enough that admission
	// queueing — not framing overhead — dominates under load: raise h until
	// the unloaded request takes at least 300µs (or give up at bits/4).
	h := 2
	var service time.Duration
	for ; ; h += 2 {
		if _, err := base.routers[0].SearchBatch(batchOf(0), h); err != nil {
			return nil, err
		}
		t0 := time.Now()
		const probes = 16
		for i := 1; i <= probes; i++ {
			if _, err := base.routers[0].SearchBatch(batchOf(i%poolBatches), h); err != nil {
				return nil, err
			}
		}
		service = time.Since(t0) / probes
		if service >= 300*time.Microsecond || h >= bits/4 {
			break
		}
	}
	rec.Threshold = h
	rec.ServiceNs = service.Nanoseconds()

	do := func(d *loadDeployment) func(int) error {
		return func(qi int) error {
			r := <-d.free
			defer func() { d.free <- r }()
			_, err := r.SearchBatch(batchOf(qi), h)
			return err
		}
	}
	isShed := func(err error) bool { return errors.Is(err, client.ErrShed) }

	// Capacity: a closed loop with enough workers to keep every searcher
	// busy measures the sustainable completion rate.
	calib := loadgen.Run(loadgen.Config{
		Do:       do(base),
		Pick:     pick,
		Workers:  calibWorkers,
		Duration: calibDur,
		Seed:     sc.Seed + 23,
	})
	if calib.Done == 0 {
		return nil, fmt.Errorf("bench: load calibration completed no requests")
	}
	capacity := calib.Throughput
	rec.CapacityRPS = capacity

	// Every knob below derives from the measured unloaded request time. The
	// SLO is the client's deadline: past it the caller has abandoned the
	// request, so a later completion is worthless and goodput counts only
	// answers the caller was still around to read. That coupling is what
	// makes overload collapse measurable — an unprotected server keeps
	// burning searcher time on requests whose clients already hung up,
	// while a shedding server refuses them before any work is sunk. The
	// shed budget is a couple of service times: an admission wait that long
	// already forfeits the deadline's useful margin.
	slo := 50 * service
	if slo < 10*time.Millisecond {
		slo = 10 * time.Millisecond
	}
	shedAfter := 2 * service
	deadline := slo
	rec.SLONs = slo.Nanoseconds()
	rec.ShedAfterNs = shedAfter.Nanoseconds()
	rec.DeadlineNs = deadline.Nanoseconds()

	// Both sweep arms get identical clients: deadline-bounded, polite
	// backoff on shed. Only the server policy differs.
	ropts := client.Options{Timeout: deadline, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	if err := base.dial(ropts, routers); err != nil {
		return nil, err
	}

	// Shedding deployment: same shape, admission budget set.
	shedDep, err := startLoadServers(env.Codes, bits, parts, 1,
		server.Options{Searchers: searchers, ShedAfter: shedAfter})
	if err != nil {
		return nil, err
	}
	defer shedDep.close()
	if err := shedDep.dial(ropts, routers); err != nil {
		return nil, err
	}

	toRun := func(mult float64, shedding bool, res loadgen.Result) loadRunJSON {
		return loadRunJSON{
			RateMultiple: mult,
			Shedding:     shedding,
			OfferedRPS:   mult * capacity,
			Offered:      res.Offered,
			Done:         res.Done,
			Good:         res.Good,
			Shed:         res.Shed,
			Failed:       res.Failed,
			Dropped:      res.Dropped,
			Throughput:   res.Throughput,
			Goodput:      res.Goodput,
			P50Ns:        res.Latency.P50.Nanoseconds(),
			P95Ns:        res.Latency.P95.Nanoseconds(),
			P99Ns:        res.Latency.P99.Nanoseconds(),
			MaxNs:        res.Latency.Max.Nanoseconds(),
		}
	}

	sweepTable := Table{
		Title: "Traffic-shaped serving: goodput vs offered load, shedding off/on",
		Note: fmt.Sprintf("%s, n=%d, L=%d bits, h=%d, %d shards x %d searchers, %d routers, %d queries/request; capacity %.0f req/s, SLO %v, shed budget %v",
			env.Profile.Name, len(env.Codes), bits, h, parts, searchers, routers, batch, capacity, slo.Round(time.Microsecond), shedAfter.Round(time.Microsecond)),
		Header: []string{"offered (xcap)", "shedding", "goodput req/s", "throughput", "sheds", "dropped", "p50 ms", "p99 ms"},
	}
	for _, mult := range []float64{0.5, 1, 2, 4} {
		for _, arm := range []struct {
			dep      *loadDeployment
			shedding bool
		}{{base, false}, {shedDep, true}} {
			shedsBefore := serverSheds(arm.dep)
			res := loadgen.Run(loadgen.Config{
				Do:          do(arm.dep),
				Pick:        pick,
				Rate:        mult * capacity,
				MaxInFlight: routers,
				Duration:    runDur,
				SLO:         slo,
				IsShed:      isShed,
				Seed:        sc.Seed + 31,
			})
			run := toRun(mult, arm.shedding, res)
			run.ServerSheds = serverSheds(arm.dep) - shedsBefore
			rec.Sweep = append(rec.Sweep, run)
			sweepTable.Rows = append(sweepTable.Rows, []string{
				fmt.Sprintf("%.1fx", mult),
				onOff(arm.shedding),
				fmt.Sprintf("%.0f", run.Goodput),
				fmt.Sprintf("%.0f", run.Throughput),
				fmt.Sprintf("%d", run.ServerSheds),
				fmt.Sprintf("%d", run.Dropped),
				fmt.Sprintf("%.2f", float64(run.P50Ns)/1e6),
				fmt.Sprintf("%.2f", float64(run.P99Ns)/1e6),
			})
		}
	}

	// Cache arm: a third deployment with the server-side result cache on,
	// offered the same zipfian traffic at 75% of capacity as the cache-off
	// baseline. Hit rate comes from the servers' own qcache counters.
	cacheDep, err := startLoadServers(env.Codes, bits, parts, 1,
		server.Options{Searchers: searchers, CacheEntries: 4 * poolBatches * batch})
	if err != nil {
		return nil, err
	}
	defer cacheDep.close()
	if err := cacheDep.dial(ropts, routers); err != nil {
		return nil, err
	}

	cacheTable := Table{
		Title: "Traffic-shaped serving: result cache under zipfian traffic",
		Note: fmt.Sprintf("open loop at %.0f req/s (0.75x capacity), zipf skew %.1f over %d distinct requests",
			0.75*capacity, zipfSkew, poolBatches),
		Header: []string{"cache", "hit rate", "goodput req/s", "p50 ms", "p95 ms", "p99 ms"},
	}
	for _, arm := range []struct {
		dep *loadDeployment
		on  bool
	}{{base, false}, {cacheDep, true}} {
		res := loadgen.Run(loadgen.Config{
			Do:          do(arm.dep),
			Pick:        pick,
			Rate:        0.75 * capacity,
			MaxInFlight: routers,
			Duration:    2 * runDur,
			SLO:         slo,
			IsShed:      isShed,
			Seed:        sc.Seed + 41,
		})
		run := cacheRunJSON{CacheOn: arm.on, loadRunJSON: toRun(0.75, false, res)}
		if arm.on {
			var hits, misses int64
			for _, s := range arm.dep.servers {
				hits += s.Obs().Counter("qcache.hits").Value()
				misses += s.Obs().Counter("qcache.misses").Value()
			}
			if hits+misses > 0 {
				run.HitRate = float64(hits) / float64(hits+misses)
			}
		}
		rec.Cache = append(rec.Cache, run)
		cacheTable.Rows = append(cacheTable.Rows, []string{
			onOff(arm.on),
			fmt.Sprintf("%.2f", run.HitRate),
			fmt.Sprintf("%.0f", run.Goodput),
			fmt.Sprintf("%.2f", float64(run.P50Ns)/1e6),
			fmt.Sprintf("%.2f", float64(run.P95Ns)/1e6),
			fmt.Sprintf("%.2f", float64(run.P99Ns)/1e6),
		})
	}

	// Keep the replicated arm's section if habench -exp load-rep wrote one;
	// the two experiments share the file but regenerate independently.
	if prev, ok := readLoadBenchFile(); ok {
		rec.Replicated = prev.Replicated
	}
	if err := writeLoadBenchFile(rec); err != nil {
		return nil, err
	}
	return []Table{sweepTable, cacheTable}, nil
}

// readLoadBenchFile loads the current BENCH_load.json, if any.
func readLoadBenchFile() (loadBenchJSON, bool) {
	var rec loadBenchJSON
	data, err := os.ReadFile(LoadBenchFile)
	if err != nil || json.Unmarshal(data, &rec) != nil {
		return loadBenchJSON{}, false
	}
	return rec, true
}

func writeLoadBenchFile(rec loadBenchJSON) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding %s: %w", LoadBenchFile, err)
	}
	if err := os.WriteFile(LoadBenchFile, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", LoadBenchFile, err)
	}
	return nil
}

// serverSheds sums the deployment's server-side shed counters — the polite
// refusals the servers issued, whether or not the client's retry-with-backoff
// later turned them into completions.
func serverSheds(d *loadDeployment) int64 {
	var n int64
	for _, s := range d.servers {
		n += s.Obs().Counter("sheds").Value()
	}
	return n
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// loadDeployment is a loopback deployment plus a free list of routers. One
// router serializes one connection per shard, so offering real concurrency
// requires a pool: an issuer takes a router from free, runs one request,
// and returns it.
type loadDeployment struct {
	servers []*server.Server
	addrs   [][]string
	routers []*client.Router
	free    chan *client.Router
}

func (d *loadDeployment) close() {
	for _, r := range d.routers {
		r.Close()
	}
	d.routers = nil
	for _, s := range d.servers {
		s.Close()
	}
}

// dial (re)builds the deployment's router pool: any existing routers are
// closed and nRouters fresh ones are dialed with the given options.
func (d *loadDeployment) dial(ropts client.Options, nRouters int) error {
	for _, r := range d.routers {
		r.Close()
	}
	d.routers = nil
	d.free = make(chan *client.Router, nRouters)
	for i := 0; i < nRouters; i++ {
		r, err := client.Dial(d.addrs, ropts)
		if err != nil {
			return err
		}
		d.routers = append(d.routers, r)
		d.free <- r
	}
	return nil
}

// startLoadServers partitions codes into parts Gray ranges and starts
// replicas identical shard servers per partition (all replicas of a shard
// serve the same partition index) with the given options; dial the router
// pool separately. d.servers is shard-major: shard m's replica rep is
// servers[m*replicas+rep].
func startLoadServers(codes []bitvec.Code, bits, parts, replicas int, sopts server.Options) (*loadDeployment, error) {
	sample := codes
	if len(sample) > 2000 {
		sample = codes[:2000]
	}
	pivots := histo.Pivots(sample, parts)
	byPart := make([][]bitvec.Code, parts)
	idsByPart := make([][]int, parts)
	for i, c := range codes {
		m := histo.PartitionID(pivots, c)
		byPart[m] = append(byPart[m], c)
		idsByPart[m] = append(idsByPart[m], i)
	}
	d := &loadDeployment{}
	for m := 0; m < parts; m++ {
		meta := wire.SnapshotMeta{Part: m, Parts: parts, Length: bits, Pivots: pivots}
		idx := core.BuildDynamic(byPart[m], idsByPart[m], core.Options{})
		var addrs []string
		for rep := 0; rep < replicas; rep++ {
			s, err := server.New(meta, idx, sopts)
			if err != nil {
				d.close()
				return nil, err
			}
			if err := s.Start("127.0.0.1:0"); err != nil {
				d.close()
				return nil, err
			}
			d.servers = append(d.servers, s)
			addrs = append(addrs, s.Addr().String())
		}
		d.addrs = append(d.addrs, addrs)
	}
	return d, nil
}
