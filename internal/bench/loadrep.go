package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/client"
	"haindex/internal/dataset"
	"haindex/internal/loadgen"
	"haindex/internal/server"
)

// repBenchJSON is the "replicated" section of BENCH_load.json: the replica
// routing experiment, written by habench -exp load-rep independently of the
// single-replica sweep (the two read-modify-write the same file).
type repBenchJSON struct {
	Replicas    int     `json:"replicas_per_shard"`
	Shards      int     `json:"shards"`
	Threshold   int     `json:"threshold"`
	CapacityRPS float64 `json:"capacity_rps"`
	OfferedRPS  float64 `json:"offered_rps"`
	SLONs       int64   `json:"slo_ns"`

	Arms     []repArmJSON     `json:"arms"`
	Failover *repFailoverJSON `json:"cold_failover,omitempty"`
}

// repArmJSON is one routing policy's measured run. PerReplicaRequests is
// shard-major: shard m's replica rep is entry m*replicas+rep; the single
// arm has one entry per shard.
type repArmJSON struct {
	Policy             string  `json:"policy"` // single | rendezvous | none
	HitRate            float64 `json:"hit_rate"`
	PerReplicaRequests []int64 `json:"per_replica_requests"`
	loadRunJSON
}

// repFailoverJSON is the cold-failover window: one replica of shard 0 is
// killed under steady rendezvous traffic and the same offered rate continues
// against the survivors.
type repFailoverJSON struct {
	KilledReplica      string  `json:"killed_replica"`
	GoodputBefore      float64 `json:"goodput_before_rps"`
	GoodputAfter       float64 `json:"goodput_after_rps"`
	HitRateAfter       float64 `json:"hit_rate_after"`
	P99BeforeNs        int64   `json:"p99_before_ns"`
	P99AfterNs         int64   `json:"p99_after_ns"`
	Retries            int64   `json:"client_retries"`
	PerReplicaRequests []int64 `json:"per_replica_requests"`
}

// LoadRepBench measures cache-aware replica routing: the same zipfian
// workload LoadBench uses is offered to a replicated deployment (every shard
// served by several identical replicas, each with its own result cache)
// under three routing policies — a single-replica baseline, rendezvous
// affinity (each request keyed to the replica whose cache it keeps warm),
// and the naive round-robin split. Affinity should hold the baseline's hit
// rate while spreading load; the naive split fragments the same working set
// across every replica's cache and pays for it in misses. A cold-failover
// window then kills one replica under affinity traffic and measures how
// goodput and hit rate recover on the survivors. Results land in the
// "replicated" section of BENCH_load.json.
func LoadRepBench(sc Scale) ([]Table, error) {
	quick := sc.SelectN <= 4000
	bits := 64
	env, err := NewEnv(dataset.NUSWide, sc.SelectN, bits, sc.Queries, sc.Seed)
	if err != nil {
		return nil, err
	}

	const (
		parts     = 2
		searchers = 2
		replicas  = 3
		zipfSkew  = 1.1
	)
	routers, batch, poolBatches := 48, 8, 300
	calibDur, runDur := 700*time.Millisecond, 1200*time.Millisecond
	if quick {
		routers, batch, poolBatches = 16, 8, 120
		calibDur, runDur = 300*time.Millisecond, 400*time.Millisecond
	}

	rng := rand.New(rand.NewSource(sc.Seed + 53))
	queries := make([]bitvec.Code, poolBatches*batch)
	for i := range queries {
		c := env.Codes[rng.Intn(len(env.Codes))].Clone()
		for f := 0; f < 2; f++ {
			c.FlipBit(rng.Intn(bits))
		}
		queries[i] = c
	}
	pick := loadgen.NewPicker(dataset.ZipfWeights(poolBatches, zipfSkew))
	batchOf := func(qi int) []bitvec.Code { return queries[qi*batch : (qi+1)*batch] }

	// Every measured arm gets a fresh deployment so its caches start cold
	// and its counters cover exactly its own window; the cache is sized to
	// hold the whole distinct-query pool, so any hit-rate gap between
	// policies is routing, not capacity.
	cacheEntries := 2 * poolBatches * batch
	sopts := server.Options{Searchers: searchers, CacheEntries: cacheEntries}

	// Calibration runs on a throwaway uncached replicated deployment: the
	// measured service time and closed-loop capacity size the offered rate
	// and SLO without pre-warming any arm's cache.
	calibDep, err := startLoadServers(env.Codes, bits, parts, replicas,
		server.Options{Searchers: searchers})
	if err != nil {
		return nil, err
	}
	calibWorkers := 4 * parts * searchers
	if err := calibDep.dial(client.Options{Timeout: time.Second}, calibWorkers); err != nil {
		calibDep.close()
		return nil, err
	}
	h := 2
	var service time.Duration
	for ; ; h += 2 {
		if _, err := calibDep.routers[0].SearchBatch(batchOf(0), h); err != nil {
			calibDep.close()
			return nil, err
		}
		t0 := time.Now()
		const probes = 16
		for i := 1; i <= probes; i++ {
			if _, err := calibDep.routers[0].SearchBatch(batchOf(i%poolBatches), h); err != nil {
				calibDep.close()
				return nil, err
			}
		}
		service = time.Since(t0) / probes
		if service >= 300*time.Microsecond || h >= bits/4 {
			break
		}
	}
	do := func(d *loadDeployment) func(int) error {
		return func(qi int) error {
			r := <-d.free
			defer func() { d.free <- r }()
			_, err := r.SearchBatch(batchOf(qi), h)
			return err
		}
	}
	isShed := func(err error) bool { return errors.Is(err, client.ErrShed) }
	calib := loadgen.Run(loadgen.Config{
		Do:       do(calibDep),
		Pick:     pick,
		Workers:  calibWorkers,
		Duration: calibDur,
		Seed:     sc.Seed + 57,
	})
	calibDep.close()
	if calib.Done == 0 {
		return nil, fmt.Errorf("bench: load-rep calibration completed no requests")
	}
	capacity := calib.Throughput
	slo := 50 * service
	if slo < 10*time.Millisecond {
		slo = 10 * time.Millisecond
	}
	rate := 0.75 * capacity

	rep := &repBenchJSON{
		Replicas:    replicas,
		Shards:      parts,
		Threshold:   h,
		CapacityRPS: capacity,
		OfferedRPS:  rate,
		SLONs:       slo.Nanoseconds(),
	}

	hitRate := func(d *loadDeployment) float64 {
		var hits, misses int64
		for _, s := range d.servers {
			hits += s.Obs().Counter("qcache.hits").Value()
			misses += s.Obs().Counter("qcache.misses").Value()
		}
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}
	perReplica := func(d *loadDeployment, before []int64) []int64 {
		out := make([]int64, len(d.servers))
		for i, s := range d.servers {
			out[i] = s.Obs().Counter("requests").Value()
			if before != nil {
				out[i] -= before[i]
			}
		}
		return out
	}

	table := Table{
		Title: "Replica routing: rendezvous affinity vs single replica vs naive split",
		Note: fmt.Sprintf("%s, n=%d, L=%d bits, h=%d, %d shards, %d replicas/shard, open loop at %.0f req/s (0.75x capacity), zipf skew %.1f over %d distinct requests, cache %d entries/replica",
			env.Profile.Name, len(env.Codes), bits, h, parts, replicas, rate, zipfSkew, poolBatches, cacheEntries),
		Header: []string{"policy", "hit rate", "goodput req/s", "p50 ms", "p99 ms", "per-replica requests"},
	}

	arms := []struct {
		policy   string
		replicas int
		affinity string
	}{
		{"single", 1, ""},
		{"rendezvous", replicas, ""},
		{"none", replicas, "none"},
	}
	// The rendezvous arm's deployment stays up for the failover window.
	var affDep *loadDeployment
	var affRouters []*client.Router
	for _, arm := range arms {
		dep, err := startLoadServers(env.Codes, bits, parts, arm.replicas, sopts)
		if err != nil {
			return nil, err
		}
		ropts := client.Options{Timeout: slo, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Affinity: arm.affinity}
		if err := dep.dial(ropts, routers); err != nil {
			dep.close()
			return nil, err
		}
		before := perReplica(dep, nil) // exclude handshake traffic
		res := loadgen.Run(loadgen.Config{
			Do:          do(dep),
			Pick:        pick,
			Rate:        rate,
			MaxInFlight: routers,
			Duration:    2 * runDur,
			SLO:         slo,
			IsShed:      isShed,
			Seed:        sc.Seed + 61,
		})
		run := repArmJSON{
			Policy:             arm.policy,
			HitRate:            hitRate(dep),
			PerReplicaRequests: perReplica(dep, before),
			loadRunJSON: loadRunJSON{
				RateMultiple: 0.75,
				OfferedRPS:   rate,
				Offered:      res.Offered,
				Done:         res.Done,
				Good:         res.Good,
				Shed:         res.Shed,
				Failed:       res.Failed,
				Dropped:      res.Dropped,
				Throughput:   res.Throughput,
				Goodput:      res.Goodput,
				P50Ns:        res.Latency.P50.Nanoseconds(),
				P95Ns:        res.Latency.P95.Nanoseconds(),
				P99Ns:        res.Latency.P99.Nanoseconds(),
				MaxNs:        res.Latency.Max.Nanoseconds(),
			},
		}
		rep.Arms = append(rep.Arms, run)
		table.Rows = append(table.Rows, []string{
			arm.policy,
			fmt.Sprintf("%.2f", run.HitRate),
			fmt.Sprintf("%.0f", run.Goodput),
			fmt.Sprintf("%.2f", float64(run.P50Ns)/1e6),
			fmt.Sprintf("%.2f", float64(run.P99Ns)/1e6),
			joinInt64(run.PerReplicaRequests),
		})
		if arm.policy == "rendezvous" {
			affDep, affRouters = dep, dep.routers
		} else {
			dep.close()
		}
	}

	// Cold failover: kill shard 0's replica 0 under the affinity policy and
	// keep offering the same rate. The keys it owned re-rendezvous onto the
	// survivors, whose caches start cold for them; goodput should dip only
	// by the failure-detection retries, not collapse.
	affArm := rep.Arms[1]
	var hb, mb int64
	for _, s := range affDep.servers {
		hb += s.Obs().Counter("qcache.hits").Value()
		mb += s.Obs().Counter("qcache.misses").Value()
	}
	beforeReqs := perReplica(affDep, nil)
	killed := affDep.servers[0]
	killed.Close()
	var retriesBefore int64
	for _, r := range affRouters {
		retriesBefore += r.Stats().Retries
	}
	res := loadgen.Run(loadgen.Config{
		Do:          do(affDep),
		Pick:        pick,
		Rate:        rate,
		MaxInFlight: routers,
		Duration:    2 * runDur,
		SLO:         slo,
		IsShed:      isShed,
		Seed:        sc.Seed + 67,
	})
	var ha, ma, retriesAfter int64
	for _, s := range affDep.servers {
		ha += s.Obs().Counter("qcache.hits").Value()
		ma += s.Obs().Counter("qcache.misses").Value()
	}
	for _, r := range affRouters {
		retriesAfter += r.Stats().Retries
	}
	fo := &repFailoverJSON{
		KilledReplica: "shard0/replica0",
		GoodputBefore: affArm.Goodput,
		GoodputAfter:  res.Goodput,
		P99BeforeNs:   affArm.P99Ns,
		P99AfterNs:    res.Latency.P99.Nanoseconds(),
		Retries:       retriesAfter - retriesBefore,
	}
	if d := (ha - hb) + (ma - mb); d > 0 {
		fo.HitRateAfter = float64(ha-hb) / float64(d)
	}
	fo.PerReplicaRequests = perReplica(affDep, beforeReqs)
	rep.Failover = fo
	affDep.close()

	foTable := Table{
		Title:  "Replica routing: cold failover under rendezvous affinity",
		Note:   "shard 0 replica 0 killed at t=0 of the window; same offered rate against the survivors",
		Header: []string{"window", "goodput req/s", "hit rate", "p99 ms", "retries", "per-replica requests"},
		Rows: [][]string{
			{"healthy", fmt.Sprintf("%.0f", fo.GoodputBefore), fmt.Sprintf("%.2f", affArm.HitRate),
				fmt.Sprintf("%.2f", float64(fo.P99BeforeNs)/1e6), "0", joinInt64(affArm.PerReplicaRequests)},
			{"failover", fmt.Sprintf("%.0f", fo.GoodputAfter), fmt.Sprintf("%.2f", fo.HitRateAfter),
				fmt.Sprintf("%.2f", float64(fo.P99AfterNs)/1e6), fmt.Sprintf("%d", fo.Retries), joinInt64(fo.PerReplicaRequests)},
		},
	}

	rec, _ := readLoadBenchFile()
	rec.Replicated = rep
	if err := writeLoadBenchFile(rec); err != nil {
		return nil, err
	}
	return []Table{table, foTable}, nil
}

func joinInt64(v []int64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, "/")
}
