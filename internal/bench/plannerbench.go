package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/planner"
)

// PlannerBenchFile is where PlannerBench writes its machine-readable results.
const PlannerBenchFile = "BENCH_planner.json"

type plannerBenchJSON struct {
	N       int               `json:"n"`
	Bits    int               `json:"bits"`
	Queries int               `json:"queries_per_point"`
	Rows    []plannerBenchRow `json:"rows"`
	// CrossoverHAToMIH is the first threshold where MIH beats the HA walk;
	// CrossoverToScan the first where the brute scan beats both. -1 = never.
	CrossoverHAToMIH int `json:"crossover_ha_to_mih"`
	CrossoverToScan  int `json:"crossover_to_scan"`
	// PlannerHitRate is the fraction of thresholds where the planner picked
	// the measured-fastest engine or one within 10% of it.
	PlannerHitRate float64 `json:"planner_hit_rate"`
	// The acceptance comparison: total time of planner-routed queries vs
	// the same queries forced through the HA walk, over thresholds >= 8.
	AutoNsHighH  int64   `json:"auto_ns_high_h"`
	HANsHighH    int64   `json:"ha_ns_high_h"`
	SpeedupHighH float64 `json:"auto_vs_ha_speedup_high_h"`
}

type plannerBenchRow struct {
	H       int    `json:"h"`
	HANs    int64  `json:"ha_ns_per_query"`
	MIHNs   int64  `json:"mih_ns_per_query"`
	ScanNs  int64  `json:"scan_ns_per_query"`
	AutoNs  int64  `json:"auto_ns_per_query"`
	Planned string `json:"planned"`
	Fastest string `json:"fastest"`
	Hit     bool   `json:"hit"`
}

// PlannerBench sweeps the Hamming threshold across the three engines — the
// HA-Index walk, multi-index hashing, and the brute scan — at 64-bit codes,
// locating the crossovers the measured cost model must learn, and then runs
// the same workload through the planner's auto routing. Three claims are
// checked: the per-threshold winner changes (so no static choice is right),
// the planner's decision tracks the measured winner, and auto routing beats
// any-single-engine at the thresholds past the walk's pruning cliff.
// Results are printed as tables and written to BENCH_planner.json.
func PlannerBench(sc Scale) ([]Table, error) {
	return plannerBench(sc, true)
}

func plannerBench(sc Scale, writeFile bool) ([]Table, error) {
	// 64-bit codes stretch the threshold axis far enough that all three
	// regimes (walk, MIH, scan) appear; 32-bit codes hit the scan regime
	// almost immediately.
	const bits = 64
	env, err := NewEnv(dataset.NUSWide, sc.SelectN, bits, sc.Queries, sc.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed + 17))
	nq := sc.Queries
	if nq < 5 {
		nq = 5
	}
	queries := make([]bitvec.Code, nq)
	for i := range queries {
		c := env.Codes[rng.Intn(len(env.Codes))].Clone()
		for f := 0; f < 2; f++ {
			c.FlipBit(rng.Intn(bits))
		}
		queries[i] = c
	}

	pl, err := planner.Auto(env.Codes, nil, planner.Options{Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	// Dedicated searchers for the forced sweeps, so the engine baselines
	// are measured outside the planner's observation loop.
	srHA := core.NewSearcher(pl.Engines().HA)
	srMIH := core.NewSearcher(pl.Engines().MIH)
	scanCodes := pl.Engines().Codes

	var thresholds []int
	for _, h := range []int{0, 1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 32} {
		if h <= bits {
			thresholds = append(thresholds, h)
		}
	}

	rec := plannerBenchJSON{
		N:                len(env.Codes),
		Bits:             bits,
		Queries:          nq,
		CrossoverHAToMIH: -1,
		CrossoverToScan:  -1,
	}
	names := map[planner.Strategy]string{
		planner.UseHA:   "ha",
		planner.UseMIH:  "mih",
		planner.UseScan: "scan",
	}
	hits := 0
	for _, h := range thresholds {
		haNs := timeQueries(queries, func(q bitvec.Code) { srHA.Search(q, h) }).Nanoseconds()
		mihNs := timeQueries(queries, func(q bitvec.Code) { srMIH.Search(q, h) }).Nanoseconds()
		scanNs := timeQueries(queries, func(q bitvec.Code) {
			for _, c := range scanCodes {
				q.DistanceWithin(c, h)
			}
		}).Nanoseconds()

		// The planner's decision for this threshold, before the auto run.
		plan := pl.Plan(h)
		planned := names[plan.Strategy]

		// The same workload through auto routing: every query planned,
		// executed, and observed back into the cost model.
		autoNs := timeQueries(queries, func(q bitvec.Code) { pl.Select(q, h) }).Nanoseconds()

		fastest, fastestNs := "ha", haNs
		if mihNs < fastestNs {
			fastest, fastestNs = "mih", mihNs
		}
		if scanNs < fastestNs {
			fastest, fastestNs = "scan", scanNs
		}
		byName := map[string]int64{"ha": haNs, "mih": mihNs, "scan": scanNs}
		hit := float64(byName[planned]) <= 1.1*float64(fastestNs)
		if hit {
			hits++
		}
		if rec.CrossoverHAToMIH < 0 && mihNs < haNs {
			rec.CrossoverHAToMIH = h
		}
		if rec.CrossoverToScan < 0 && scanNs < haNs && scanNs < mihNs {
			rec.CrossoverToScan = h
		}
		if h >= 8 {
			rec.AutoNsHighH += autoNs * int64(nq)
			rec.HANsHighH += haNs * int64(nq)
		}
		rec.Rows = append(rec.Rows, plannerBenchRow{
			H: h, HANs: haNs, MIHNs: mihNs, ScanNs: scanNs, AutoNs: autoNs,
			Planned: planned, Fastest: fastest, Hit: hit,
		})
	}
	rec.PlannerHitRate = float64(hits) / float64(len(thresholds))
	if rec.AutoNsHighH > 0 {
		rec.SpeedupHighH = float64(rec.HANsHighH) / float64(rec.AutoNsHighH)
	}

	t := Table{
		Title: "Planner: threshold sweep across engines, and auto routing",
		Note: fmt.Sprintf("%s, n=%d, L=%d bits, %d queries per point; cells are µs/query; hit = planner pick within 10%% of fastest",
			env.Profile.Name, len(env.Codes), bits, nq),
		Header: []string{"h", "ha (walk)", "mih", "scan", "auto", "planned", "fastest", "hit"},
	}
	us := func(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e3) }
	for _, r := range rec.Rows {
		hit := "no"
		if r.Hit {
			hit = "yes"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.H), us(r.HANs), us(r.MIHNs), us(r.ScanNs), us(r.AutoNs),
			r.Planned, r.Fastest, hit,
		})
	}
	st := Table{
		Title:  "Planner: crossovers and routing quality",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"crossover ha->mih (h)", crossStr(rec.CrossoverHAToMIH)},
			{"crossover ->scan (h)", crossStr(rec.CrossoverToScan)},
			{"planner hit rate", fmt.Sprintf("%.0f%%", 100*rec.PlannerHitRate)},
			{"auto vs forced-ha speedup (h>=8)", fmt.Sprintf("%.2fx", rec.SpeedupHighH)},
		},
	}

	if writeFile {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("bench: encoding %s: %w", PlannerBenchFile, err)
		}
		if err := os.WriteFile(PlannerBenchFile, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", PlannerBenchFile, err)
		}
	}
	return []Table{t, st}, nil
}

func crossStr(h int) string {
	if h < 0 {
		return "never"
	}
	return fmt.Sprintf("%d", h)
}
