package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
)

// QueryBenchFile is where QueryBench writes its machine-readable results.
const QueryBenchFile = "BENCH_query.json"

// queryBenchJSON is the machine-readable record of one QueryBench run.
type queryBenchJSON struct {
	N          int   `json:"n"`
	Bits       int   `json:"bits"`
	Threshold  int   `json:"threshold"`
	Queries    int   `json:"queries"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	BuildNs    int64 `json:"build_ns"`
	FreezeNs   int64 `json:"freeze_ns"`

	// Serial one-Searcher baselines, pointer walk vs frozen arena, with the
	// resident footprint of each index form.
	SerialNsOp       int64   `json:"serial_ns_per_query"`
	SerialQPS        float64 `json:"serial_qps"`
	FrozenSerialNsOp int64   `json:"frozen_serial_ns_per_query"`
	FrozenSerialQPS  float64 `json:"frozen_serial_qps"`
	PointerBytes     int     `json:"pointer_bytes"`
	FrozenBytes      int     `json:"frozen_bytes"`

	Runs        []queryBenchRun `json:"runs"`
	BestSpeedup float64         `json:"best_speedup"`
}

type queryBenchRun struct {
	Frozen    bool    `json:"frozen"`
	Workers   int     `json:"workers"`
	BatchSize int     `json:"batch_size"`
	NsPerOp   int64   `json:"ns_per_query"`
	QPS       float64 `json:"qps"`
	Speedup   float64 `json:"speedup_vs_serial"`
}

// QueryBench measures the batched query engine (beyond the paper): steady-
// state SearchBatch throughput over one shared HA-Index as a function of
// worker count and batch size, against the serial one-Searcher baseline —
// for both index forms, the pointer hierarchy and its frozen compilation.
// Results are printed as tables and written to BENCH_query.json.
func QueryBench(sc Scale) ([]Table, error) {
	env, err := NewEnv(dataset.NUSWide, sc.SelectN, sc.Bits, sc.Queries, sc.Seed)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	idx := core.BuildDynamic(env.Codes, nil, core.Options{})
	buildNs := time.Since(t0).Nanoseconds()
	t0 = time.Now()
	frozen := core.Freeze(idx)
	freezeNs := time.Since(t0).Nanoseconds()

	// Query workload: dataset members perturbed by a couple of bit flips —
	// selective queries with non-empty results, like the paper's.
	rng := rand.New(rand.NewSource(sc.Seed + 7))
	nq := 4096
	if nq > 2*len(env.Codes) {
		nq = 2 * len(env.Codes)
	}
	queries := make([]bitvec.Code, nq)
	for i := range queries {
		c := env.Codes[rng.Intn(len(env.Codes))].Clone()
		for f := 0; f < 2; f++ {
			c.FlipBit(rng.Intn(sc.Bits))
		}
		queries[i] = c
	}

	// Serial baseline per index form: one reused Searcher, one query at a
	// time. A warmup pass sizes the scratch so the measurement sees the
	// steady state.
	serialNs := func(over core.Index) time.Duration {
		sr := core.NewSearcher(over)
		for _, q := range queries[:nq/4] {
			sr.Search(q, sc.Threshold)
		}
		t0 := time.Now()
		for _, q := range queries {
			sr.Search(q, sc.Threshold)
		}
		return time.Since(t0)
	}
	serial := serialNs(idx)
	frozenSerial := serialNs(frozen)

	rec := queryBenchJSON{
		N:                len(env.Codes),
		Bits:             sc.Bits,
		Threshold:        sc.Threshold,
		Queries:          nq,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		BuildNs:          buildNs,
		FreezeNs:         freezeNs,
		SerialNsOp:       serial.Nanoseconds() / int64(nq),
		SerialQPS:        float64(nq) / serial.Seconds(),
		FrozenSerialNsOp: frozenSerial.Nanoseconds() / int64(nq),
		FrozenSerialQPS:  float64(nq) / frozenSerial.Seconds(),
		PointerBytes:     idx.SizeBytes(),
		FrozenBytes:      frozen.SizeBytes(),
	}

	forms := Table{
		Title: "Query engine: pointer walk vs frozen (compiled) index, serial Searcher",
		Note: fmt.Sprintf("%s, n=%d, L=%d bits, h=%d, %d queries; build %v, freeze %v",
			env.Profile.Name, len(env.Codes), sc.Bits, sc.Threshold, nq,
			time.Duration(buildNs).Round(time.Millisecond), time.Duration(freezeNs).Round(time.Millisecond)),
		Header: []string{"index form", "ns/query", "q/s", "resident bytes"},
		Rows: [][]string{
			{"pointer (DynamicIndex)", fmt.Sprintf("%d", rec.SerialNsOp),
				fmt.Sprintf("%.0f", rec.SerialQPS), fmt.Sprintf("%d", rec.PointerBytes)},
			{"frozen (FrozenIndex)", fmt.Sprintf("%d", rec.FrozenSerialNsOp),
				fmt.Sprintf("%.0f", rec.FrozenSerialQPS), fmt.Sprintf("%d", rec.FrozenBytes)},
		},
	}

	workerCounts := []int{1, 2, 4, 8}
	batchSizes := []int{64, 256, 1024}
	tables := []Table{forms}
	for _, form := range []struct {
		name     string
		frozen   bool
		over     core.Index
		baseline time.Duration
	}{
		{"pointer", false, idx, serial},
		{"frozen", true, frozen, frozenSerial},
	} {
		t := Table{
			Title: fmt.Sprintf("Query engine: SearchBatch throughput vs workers and batch size (%s index)", form.name),
			Note: fmt.Sprintf("%s, n=%d, L=%d bits, h=%d, %d queries; cells are q/s (speedup vs %.0f q/s serial %s baseline); GOMAXPROCS=%d",
				env.Profile.Name, len(env.Codes), sc.Bits, sc.Threshold, nq,
				float64(nq)/form.baseline.Seconds(), form.name, rec.GOMAXPROCS),
			Header: []string{"batch size"},
		}
		for _, w := range workerCounts {
			t.Header = append(t.Header, fmt.Sprintf("workers=%d", w))
		}
		for _, b := range batchSizes {
			row := []string{fmt.Sprintf("%d", b)}
			for _, w := range workerCounts {
				t0 := time.Now()
				for off := 0; off < nq; off += b {
					end := off + b
					if end > nq {
						end = nq
					}
					core.SearchBatch(form.over, queries[off:end], sc.Threshold, w)
				}
				dur := time.Since(t0)
				qps := float64(nq) / dur.Seconds()
				speedup := form.baseline.Seconds() / dur.Seconds()
				rec.Runs = append(rec.Runs, queryBenchRun{
					Frozen:    form.frozen,
					Workers:   w,
					BatchSize: b,
					NsPerOp:   dur.Nanoseconds() / int64(nq),
					QPS:       qps,
					Speedup:   speedup,
				})
				if speedup > rec.BestSpeedup {
					rec.BestSpeedup = speedup
				}
				row = append(row, fmt.Sprintf("%.0f (%.2fx)", qps, speedup))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encoding %s: %w", QueryBenchFile, err)
	}
	if err := os.WriteFile(QueryBenchFile, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: writing %s: %w", QueryBenchFile, err)
	}
	return tables, nil
}
