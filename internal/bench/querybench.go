package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
)

// QueryBenchFile is where QueryBench writes its machine-readable results.
const QueryBenchFile = "BENCH_query.json"

// queryBenchJSON is the machine-readable record of one QueryBench run.
type queryBenchJSON struct {
	N           int             `json:"n"`
	Bits        int             `json:"bits"`
	Threshold   int             `json:"threshold"`
	Queries     int             `json:"queries"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	SerialNsOp  int64           `json:"serial_ns_per_query"`
	SerialQPS   float64         `json:"serial_qps"`
	Runs        []queryBenchRun `json:"runs"`
	BestSpeedup float64         `json:"best_speedup"`
}

type queryBenchRun struct {
	Workers   int     `json:"workers"`
	BatchSize int     `json:"batch_size"`
	NsPerOp   int64   `json:"ns_per_query"`
	QPS       float64 `json:"qps"`
	Speedup   float64 `json:"speedup_vs_serial"`
}

// QueryBench measures the batched query engine (beyond the paper): steady-
// state SearchBatch throughput over one shared Dynamic HA-Index as a
// function of worker count and batch size, against the serial one-Searcher
// baseline. Results are printed as a table and written to BENCH_query.json.
func QueryBench(sc Scale) ([]Table, error) {
	env, err := NewEnv(dataset.NUSWide, sc.SelectN, sc.Bits, sc.Queries, sc.Seed)
	if err != nil {
		return nil, err
	}
	idx := core.BuildDynamic(env.Codes, nil, core.Options{})

	// Query workload: dataset members perturbed by a couple of bit flips —
	// selective queries with non-empty results, like the paper's.
	rng := rand.New(rand.NewSource(sc.Seed + 7))
	nq := 4096
	if nq > 2*len(env.Codes) {
		nq = 2 * len(env.Codes)
	}
	queries := make([]bitvec.Code, nq)
	for i := range queries {
		c := env.Codes[rng.Intn(len(env.Codes))].Clone()
		for f := 0; f < 2; f++ {
			c.FlipBit(rng.Intn(sc.Bits))
		}
		queries[i] = c
	}

	// Serial baseline: one reused Searcher, one query at a time. A warmup
	// pass sizes the scratch so the measurement sees the steady state.
	sr := core.NewSearcher(idx)
	for _, q := range queries[:nq/4] {
		sr.Search(q, sc.Threshold)
	}
	t0 := time.Now()
	for _, q := range queries {
		sr.Search(q, sc.Threshold)
	}
	serial := time.Since(t0)

	rec := queryBenchJSON{
		N:          len(env.Codes),
		Bits:       sc.Bits,
		Threshold:  sc.Threshold,
		Queries:    nq,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SerialNsOp: serial.Nanoseconds() / int64(nq),
		SerialQPS:  float64(nq) / serial.Seconds(),
	}

	workerCounts := []int{1, 2, 4, 8}
	batchSizes := []int{64, 256, 1024}
	t := Table{
		Title: "Query engine: SearchBatch throughput vs workers and batch size",
		Note: fmt.Sprintf("%s, n=%d, L=%d bits, h=%d, %d queries; cells are q/s (speedup vs %.0f q/s serial baseline); GOMAXPROCS=%d",
			env.Profile.Name, len(env.Codes), sc.Bits, sc.Threshold, nq, rec.SerialQPS, rec.GOMAXPROCS),
		Header: []string{"batch size"},
	}
	for _, w := range workerCounts {
		t.Header = append(t.Header, fmt.Sprintf("workers=%d", w))
	}
	for _, b := range batchSizes {
		row := []string{fmt.Sprintf("%d", b)}
		for _, w := range workerCounts {
			t0 := time.Now()
			for off := 0; off < nq; off += b {
				end := off + b
				if end > nq {
					end = nq
				}
				core.SearchBatch(idx, queries[off:end], sc.Threshold, w)
			}
			dur := time.Since(t0)
			qps := float64(nq) / dur.Seconds()
			speedup := serial.Seconds() / dur.Seconds()
			rec.Runs = append(rec.Runs, queryBenchRun{
				Workers:   w,
				BatchSize: b,
				NsPerOp:   dur.Nanoseconds() / int64(nq),
				QPS:       qps,
				Speedup:   speedup,
			})
			if speedup > rec.BestSpeedup {
				rec.BestSpeedup = speedup
			}
			row = append(row, fmt.Sprintf("%.0f (%.2fx)", qps, speedup))
		}
		t.Rows = append(t.Rows, row)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encoding %s: %w", QueryBenchFile, err)
	}
	if err := os.WriteFile(QueryBenchFile, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: writing %s: %w", QueryBenchFile, err)
	}
	return []Table{t}, nil
}
