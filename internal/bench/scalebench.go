package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/gray"
	"haindex/internal/histo"
	"haindex/internal/wire"
)

// ScaleBenchFile is where ScaleBench writes its machine-readable results.
const ScaleBenchFile = "BENCH_scale.json"

type scaleBenchJSON struct {
	Bits      int `json:"bits"`
	Threshold int `json:"threshold"`
	Chunk     int `json:"chunk"`
	Queries   int `json:"queries"`

	Builds []scaleBuildJSON `json:"builds"`
	Serve  []scaleArmJSON   `json:"serve"`
}

type scaleBuildJSON struct {
	N             int   `json:"n"`
	WallNs        int64 `json:"wall_ns"`
	PeakHeapBytes int64 `json:"peak_heap_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
}

type scaleArmJSON struct {
	Mode          string `json:"mode"` // "mmap" or "eager"
	N             int    `json:"n"`
	LoadNs        int64  `json:"load_ns"`
	FirstQueryNs  int64  `json:"first_query_ns"` // load + one search
	HeapBytes     int64  `json:"index_heap_bytes"`
	MappedBytes   int64  `json:"index_mapped_bytes"`
	RSSDeltaBytes int64  `json:"rss_delta_bytes"`
	P50Ns         int64  `json:"p50_ns"`
	P99Ns         int64  `json:"p99_ns"`
	Matches       int64  `json:"matches"`
}

// heapSampler watches runtime.MemStats.HeapInuse from a background
// goroutine, so allocation peaks inside an instrumented region (chunk
// builds, eager decodes) are caught even though the region itself never
// yields a hook point.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	max  atomic.Int64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if v := int64(ms.HeapInuse); v > s.max.Load() {
				s.max.Store(v)
			}
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
	return s
}

// Stop ends sampling and returns the peak HeapInuse observed.
func (s *heapSampler) Stop() int64 {
	close(s.stop)
	<-s.done
	return s.max.Load()
}

func heapInuse() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}

// vmRSS reads the process resident set size from /proc; 0 where /proc is
// unavailable (the heap figures still tell the story there).
func vmRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// scaleCodes generates n clustered 64-bit codes cheaply (no vectors, no
// hash learning — at millions of tuples the scale experiment is about the
// index and codec, not the hashing front end).
func scaleCodes(rng *rand.Rand, n, bits int) []bitvec.Code {
	out := make([]bitvec.Code, 0, n)
	per := 1000
	for len(out) < n {
		center := bitvec.Rand(rng, bits)
		for i := 0; i < per && len(out) < n; i++ {
			c := center.Clone()
			for f := 0; f < 3; f++ {
				c.FlipBit(rng.Intn(bits))
			}
			out = append(out, c)
		}
	}
	return out
}

// streamSnapshot builds a v4 snapshot for codes via the streaming path,
// returning wall time and the peak builder heap (above the pre-build
// baseline, so the resident input codes are not charged to the builder).
func streamSnapshot(path string, codes []bitvec.Code, bits, chunk int) (time.Duration, int64, error) {
	ids := make([]int, len(codes))
	for i := range ids {
		ids[i] = i
	}
	sorted := make([]bitvec.Code, len(codes))
	copy(sorted, codes)
	gray.Sort(sorted, ids)

	meta := wire.SnapshotMeta{Part: 0, Parts: 1, Length: bits, Pivots: histo.Pivots(nil, 1)}
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	runtime.GC()
	base := heapInuse()
	sampler := startHeapSampler()
	t0 := time.Now()
	sw, err := core.NewFrozenStreamWriter(bits, chunk, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	for i, c := range sorted {
		if err := sw.Add(ids[i], c); err != nil {
			return 0, 0, err
		}
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := wire.WriteSnapshotStream(bw, meta, sw); err != nil {
		return 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, err
	}
	wall := time.Since(t0)
	peak := sampler.Stop() - base
	if peak < 0 {
		peak = 0
	}
	return wall, peak, f.Sync()
}

// ScaleBench measures the zero-copy arena path at multi-million-code scale:
// (a) the streaming build — wall clock and peak builder heap at two sizes,
// showing peak memory tracks the chunk, not the partition; (b) serving —
// load-to-first-query time, index heap/mapped bytes, process RSS growth,
// and query latency for the mmap arm versus the eager-decode arm over the
// same snapshot file. Results go to BENCH_scale.json.
func ScaleBench(sc Scale) ([]Table, error) { return scaleBench(sc, true) }

func scaleBench(sc Scale, writeJSON bool) ([]Table, error) {
	quick := sc.SelectN <= 4000
	bits := 64
	chunk := 1 << 18
	sizes := []int{1_250_000, 5_000_000}
	nq := 300
	if quick {
		chunk = 1 << 14
		sizes = []int{30_000, 120_000}
		nq = 60
	}

	dir, err := os.MkdirTemp("", "haidx-scale-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rec := scaleBenchJSON{Bits: bits, Threshold: sc.Threshold, Chunk: chunk, Queries: nq}
	buildTable := Table{
		Title:  "Streaming build at scale (chunked freeze-and-spool, 64-bit codes)",
		Note:   fmt.Sprintf("chunk=%d; peak heap is the builder's growth over the resident input codes", chunk),
		Header: []string{"tuples", "build wall", "peak builder heap MB", "snapshot MB"},
	}

	// (a) Streaming builds, small size first so each build's peak is its own.
	rng := rand.New(rand.NewSource(sc.Seed + 23))
	var snapPath string
	var queries []bitvec.Code
	for _, n := range sizes {
		codes := scaleCodes(rng, n, bits)
		path := filepath.Join(dir, fmt.Sprintf("scale-%d.hasn", n))
		wall, peak, err := streamSnapshot(path, codes, bits, chunk)
		if err != nil {
			return nil, fmt.Errorf("bench: streaming build n=%d: %w", n, err)
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		rec.Builds = append(rec.Builds, scaleBuildJSON{
			N: n, WallNs: wall.Nanoseconds(), PeakHeapBytes: peak, SnapshotBytes: st.Size(),
		})
		buildTable.Rows = append(buildTable.Rows, []string{
			fmt.Sprintf("%d", n), wall.Round(time.Millisecond).String(),
			mb(int(peak)), mb(int(st.Size())),
		})
		if n == sizes[len(sizes)-1] {
			snapPath = path
			for i := 0; i < nq; i++ {
				q := codes[rng.Intn(len(codes))].Clone()
				q.FlipBit(rng.Intn(bits))
				queries = append(queries, q)
			}
		}
		codes = nil
		runtime.GC()
	}

	// (b) Serving arms over the largest snapshot. The mmap arm runs first:
	// it touches only the pages the queries visit, so the eager arm's heap
	// cannot be blamed on it.
	serveTable := Table{
		Title:  fmt.Sprintf("Serving the %d-tuple snapshot: mmap vs eager", sizes[len(sizes)-1]),
		Note:   "load = snapshot open to index ready; first query = load + one search",
		Header: []string{"arm", "load", "first query", "index heap MB", "mapped MB", "rss delta MB", "p50 µs", "p99 µs"},
	}
	n := sizes[len(sizes)-1]
	for _, mode := range []string{"mmap", "eager"} {
		debug.FreeOSMemory()
		rss0 := vmRSS()
		var idx *core.FrozenIndex
		t0 := time.Now()
		if mode == "mmap" {
			_, mapped, err := wire.MapSnapshotFile(snapPath)
			if err != nil {
				return nil, fmt.Errorf("bench: mmap arm: %w", err)
			}
			idx = mapped
		} else {
			_, eager, err := wire.ReadSnapshotFile(snapPath)
			if err != nil {
				return nil, fmt.Errorf("bench: eager arm: %w", err)
			}
			fz, ok := eager.(*core.FrozenIndex)
			if !ok {
				return nil, fmt.Errorf("bench: eager arm decoded %T", eager)
			}
			idx = fz
		}
		load := time.Since(t0)
		sr := core.NewSearcher(idx)
		first := len(sr.Search(queries[0], sc.Threshold))
		firstQuery := time.Since(t0)

		lat := make([]int64, 0, len(queries))
		var matches int64 = int64(first)
		for _, q := range queries {
			q0 := time.Now()
			matches += int64(len(sr.Search(q, sc.Threshold)))
			lat = append(lat, time.Since(q0).Nanoseconds())
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50, p99 := lat[len(lat)/2], lat[len(lat)*99/100]
		rssDelta := vmRSS() - rss0
		arm := scaleArmJSON{
			Mode: mode, N: n,
			LoadNs: load.Nanoseconds(), FirstQueryNs: firstQuery.Nanoseconds(),
			HeapBytes: int64(idx.HeapBytes()), MappedBytes: int64(idx.MappedBytes()),
			RSSDeltaBytes: rssDelta, P50Ns: p50, P99Ns: p99, Matches: matches,
		}
		rec.Serve = append(rec.Serve, arm)
		serveTable.Rows = append(serveTable.Rows, []string{
			mode, load.Round(time.Microsecond).String(), firstQuery.Round(time.Microsecond).String(),
			mb(idx.HeapBytes()), mb(idx.MappedBytes()), mb(int(rssDelta)),
			fmt.Sprintf("%.1f", float64(p50)/1e3), fmt.Sprintf("%.1f", float64(p99)/1e3),
		})
		idx.Close()
		idx = nil
		sr = nil
	}
	// Both arms saw identical tuples; a matches mismatch means the codec lied.
	if rec.Serve[0].Matches != rec.Serve[1].Matches {
		return nil, fmt.Errorf("bench: mmap arm found %d matches, eager arm %d",
			rec.Serve[0].Matches, rec.Serve[1].Matches)
	}

	serveTable.Note += fmt.Sprintf("; both arms agree on %d total matches", rec.Serve[0].Matches)
	if writeJSON {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(ScaleBenchFile, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		serveTable.Note += "; " + ScaleBenchFile + " written"
	}
	return []Table{buildTable, serveTable}, nil
}
