package bench

import (
	"fmt"
	"time"

	"haindex/internal/baseline"
	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
)

// Scaling measures how the Hamming-select gap between the Dynamic HA-Index
// and the linear scan widens with dataset size — the projection of Table 4
// toward the paper's 270k–1M-tuple regime that EXPERIMENTS.md reports.
func Scaling(sc Scale) ([]Table, error) {
	sizes := []int{20000, 50000, 100000, 200000}
	if sc.SelectN < 20000 {
		// Quick mode: shrink the sweep proportionally.
		sizes = []int{sc.SelectN, 2 * sc.SelectN, 4 * sc.SelectN}
	}
	t := Table{
		Title:  "Scaling: Hamming-select query time vs dataset size (NUS-WIDE)",
		Note:   fmt.Sprintf("h=%d, %d-bit codes; per-query means over %d queries", sc.Threshold, sc.Bits, sc.Queries),
		Header: []string{"n", "DHA (ms)", "Nested-Loops (ms)", "NL/DHA", "DHA distance comps"},
	}
	for _, n := range sizes {
		env, err := NewEnv(dataset.NUSWide, n, sc.Bits, sc.Queries, sc.Seed)
		if err != nil {
			return nil, err
		}
		dha := core.BuildDynamic(env.Codes, nil, core.Options{})
		nl := baseline.NewNestedLoop(env.Codes, nil)
		var comps int
		dhaT := timeQueries(env.Queries, func(q bitvec.Code) {
			dha.Search(q, sc.Threshold)
			comps += dha.Stats.DistanceComputations
		})
		nlT := timeQueries(env.Queries, func(q bitvec.Code) { nl.Search(q, sc.Threshold) })
		ratio := float64(nlT) / float64(max64(dhaT, time.Nanosecond))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			ms(dhaT),
			ms(nlT),
			fmt.Sprintf("%.1f", ratio),
			fmt.Sprintf("%d", comps/len(env.Queries)),
		})
	}
	return []Table{t}, nil
}

func max64(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
