package bench

import (
	"fmt"
	"time"

	"haindex/internal/baseline"
	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/radix"
)

// selectMethod is one row of the Table 4 comparison.
type selectMethod struct {
	name   string
	search func(q bitvec.Code, h int) []int
	update func(id int, c bitvec.Code) // delete then re-insert
	size   func() int
	extra  string // e.g. DHA internal-only size
}

// buildSelectMethods constructs the seven systems of Table 4 over the env.
func buildSelectMethods(env *Env, hmax int) ([]selectMethod, error) {
	codes := env.Codes
	nl := baseline.NewNestedLoop(append([]bitvec.Code(nil), codes...), nil)
	mh4, err := baseline.NewMH4(codes, nil)
	if err != nil {
		return nil, err
	}
	mh10, err := baseline.NewMH10(codes, nil)
	if err != nil {
		return nil, err
	}
	he, err := baseline.NewHEngine(append([]bitvec.Code(nil), codes...), nil, hmax)
	if err != nil {
		return nil, err
	}
	rt := radix.Build(codes, nil)
	sha := core.BuildStatic(codes, nil, 8)
	dha := core.BuildDynamic(codes, nil, core.Options{})
	return []selectMethod{
		{
			name:   "Nested-Loops",
			search: nl.Search,
			update: func(id int, c bitvec.Code) { nl.Delete(id, c); nl.Insert(id, c) },
			size:   nl.SizeBytes,
		},
		{
			name:   "MH-4",
			search: mh4.Search,
			update: func(id int, c bitvec.Code) { mh4.Delete(id, c); mh4.Insert(id, c) },
			size:   mh4.SizeBytes,
		},
		{
			name:   "MH-10",
			search: mh10.Search,
			update: func(id int, c bitvec.Code) { mh10.Delete(id, c); mh10.Insert(id, c) },
			size:   mh10.SizeBytes,
		},
		{
			name:   "HEngine",
			search: he.Search,
			update: func(id int, c bitvec.Code) { he.Delete(id, c); he.Insert(id, c) },
			size:   he.SizeBytes,
		},
		{
			name:   "Radix-Tree",
			search: rt.Search,
			update: func(id int, c bitvec.Code) { rt.Delete(id, c); rt.Insert(id, c) },
			size:   rt.SizeBytes,
		},
		{
			name:   "SHA-Index",
			search: sha.Search,
			update: func(id int, c bitvec.Code) { sha.Delete(id, c); sha.Insert(id, c) },
			size:   sha.SizeBytes,
		},
		{
			name:   "DHA-Index",
			search: dha.Search,
			update: func(id int, c bitvec.Code) { dha.Delete(id, c); dha.Insert(id, c) },
			size:   dha.SizeBytes,
			extra: fmt.Sprintf("%s/%s", mb(dha.SizeBytes()),
				mb(dha.InternalSizeBytes()+dha.LeafCodeSizeBytes())),
		},
	}, nil
}

// Table4 reproduces the overall Hamming-select comparison: query time,
// update time, and space usage for the seven systems on the three datasets
// (32-bit codes, h = 3).
func Table4(sc Scale) ([]Table, error) {
	var out []Table
	for _, p := range dataset.Profiles() {
		env, err := NewEnv(p, sc.SelectN, sc.Bits, sc.Queries, sc.Seed)
		if err != nil {
			return nil, err
		}
		methods, err := buildSelectMethods(env, sc.Threshold)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Table 4 (%s): Hamming-select overall comparison", p.Name),
			Note:   fmt.Sprintf("n=%d, L=%d bits, h=%d; times are per-query/per-update means", sc.SelectN, sc.Bits, sc.Threshold),
			Header: []string{"method", "query time(ms)", "update time(ms)", "space usage(MB)"},
		}
		for _, m := range methods {
			q := timeQueries(env.Queries, func(qc bitvec.Code) { m.search(qc, sc.Threshold) })
			// Update: delete one tuple and insert it back, as in the paper.
			uid := 0
			t0 := time.Now()
			rounds := 20
			for r := 0; r < rounds; r++ {
				m.update(uid, env.Codes[uid])
			}
			u := time.Since(t0) / time.Duration(rounds)
			space := mb(m.size())
			if m.extra != "" {
				space = m.extra
			}
			t.Rows = append(t.Rows, []string{m.name, ms(q), ms(u), space})
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig6 reproduces the threshold sensitivity study: per-query time as the
// Hamming threshold h grows from 1 to 6, per dataset and system.
func Fig6(sc Scale) ([]Table, error) {
	hs := []int{1, 2, 3, 4, 5, 6}
	var out []Table
	for _, p := range dataset.Profiles() {
		env, err := NewEnv(p, sc.SelectN, sc.Bits, sc.Queries, sc.Seed)
		if err != nil {
			return nil, err
		}
		methods, err := buildSelectMethods(env, sc.Threshold)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Figure 6 (%s): query time vs Hamming threshold", p.Name),
			Note:   fmt.Sprintf("n=%d, L=%d bits; per-query ms", sc.SelectN, sc.Bits),
			Header: append([]string{"method"}, sprintInts("h=", hs)...),
		}
		for _, m := range methods {
			row := []string{m.name}
			for _, h := range hs {
				row = append(row, ms(timeQueries(env.Queries, func(qc bitvec.Code) { m.search(qc, h) })))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig8 reproduces the DHA-Index parameter study: build time and query time
// as functions of the (normalized) window length and the index depth.
func Fig8(sc Scale) ([]Table, error) {
	env, err := NewEnv(dataset.NUSWide, sc.SelectN, sc.Bits, sc.Queries, sc.Seed)
	if err != nil {
		return nil, err
	}
	windows := []float64{0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04}
	depths := []int{4, 5, 6, 7}
	build := Table{
		Title:  "Figure 8a: DHA-Index building time vs window length",
		Note:   fmt.Sprintf("%s, n=%d; window normalized by n; cells in ms", env.Profile.Name, sc.SelectN),
		Header: append([]string{"window"}, sprintInts("depth=", depths)...),
	}
	query := Table{
		Title:  "Figure 8b: DHA-Index query time vs window length",
		Note:   fmt.Sprintf("%s, n=%d, h=%d; per-query ms", env.Profile.Name, sc.SelectN, sc.Threshold),
		Header: append([]string{"window"}, sprintInts("depth=", depths)...),
	}
	for _, wf := range windows {
		w := int(wf * float64(sc.SelectN))
		if w < 2 {
			w = 2
		}
		brow := []string{fmt.Sprintf("%.3f", wf)}
		qrow := []string{fmt.Sprintf("%.3f", wf)}
		for _, d := range depths {
			t0 := time.Now()
			idx := core.BuildDynamic(env.Codes, nil, core.Options{Window: w, Depth: d})
			brow = append(brow, ms(time.Since(t0)))
			qrow = append(qrow, ms(timeQueries(env.Queries, func(qc bitvec.Code) { idx.Search(qc, sc.Threshold) })))
		}
		build.Rows = append(build.Rows, brow)
		query.Rows = append(query.Rows, qrow)
	}
	return []Table{build, query}, nil
}

func sprintInts(prefix string, vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf("%s%d", prefix, v)
	}
	return out
}
