package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/client"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/histo"
	"haindex/internal/obs"
	"haindex/internal/server"
	"haindex/internal/wire"
)

// ServeBenchFile is where ServeBench writes its machine-readable results.
const ServeBenchFile = "BENCH_serve.json"

type serveBenchJSON struct {
	N          int             `json:"n"`
	Bits       int             `json:"bits"`
	Threshold  int             `json:"threshold"`
	Queries    int             `json:"queries"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Runs       []serveBenchRun `json:"runs"`
}

type serveBenchRun struct {
	Shards    int     `json:"shards"`
	BatchSize int     `json:"batch_size"`
	NsPerOp   int64   `json:"ns_per_query"`
	QPS       float64 `json:"qps"`
	Pruned    int64   `json:"queries_pruned"`
	// Per-SearchBatch-call latency distribution (one sample per batch, not
	// per query), from an obs.Histogram over the measured calls.
	P50Ns int64 `json:"batch_p50_ns"`
	P95Ns int64 `json:"batch_p95_ns"`
	P99Ns int64 `json:"batch_p99_ns"`
	MaxNs int64 `json:"batch_max_ns"`
}

// ServeBench measures the online serving path end to end: real haserve-style
// shard servers on loopback TCP, a client.Router fanning batched
// Hamming-select queries across them, as a function of shard count and batch
// size. Latency here includes framing, syscalls, and the routing merge —
// the costs the in-process QueryBench cannot see. Results are printed as a
// table and written to BENCH_serve.json.
func ServeBench(sc Scale) ([]Table, error) {
	env, err := NewEnv(dataset.NUSWide, sc.SelectN, sc.Bits, sc.Queries, sc.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed + 11))
	nq := 2048
	if nq > 2*len(env.Codes) {
		nq = 2 * len(env.Codes)
	}
	queries := make([]bitvec.Code, nq)
	for i := range queries {
		c := env.Codes[rng.Intn(len(env.Codes))].Clone()
		for f := 0; f < 2; f++ {
			c.FlipBit(rng.Intn(sc.Bits))
		}
		queries[i] = c
	}

	rec := serveBenchJSON{
		N:          len(env.Codes),
		Bits:       sc.Bits,
		Threshold:  sc.Threshold,
		Queries:    nq,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	shardCounts := []int{1, 2, 4}
	batchSizes := []int{1, 16, 128}
	t := Table{
		Title: "Serving layer: router throughput vs shard count and batch size",
		Note: fmt.Sprintf("%s, n=%d, L=%d bits, h=%d, %d queries over loopback TCP; cells are q/s (µs/query); GOMAXPROCS=%d",
			env.Profile.Name, len(env.Codes), sc.Bits, sc.Threshold, nq, rec.GOMAXPROCS),
		Header: []string{"batch size"},
	}
	for _, parts := range shardCounts {
		t.Header = append(t.Header, fmt.Sprintf("shards=%d", parts))
	}

	type cell struct{ qps, us float64 }
	cells := make(map[[2]int]cell)
	lats := make(map[[2]int]obs.HistSnapshot)
	for _, parts := range shardCounts {
		r, servers, err := startDeployment(env.Codes, sc.Bits, parts)
		if err != nil {
			return nil, err
		}
		for _, b := range batchSizes {
			// Warmup sizes searcher scratch and fills connection buffers.
			if _, err := r.SearchBatch(queries[:min(b, nq)], sc.Threshold); err != nil {
				return nil, err
			}
			lat := obs.NewHistogram()
			t0 := time.Now()
			for off := 0; off < nq; off += b {
				end := off + b
				if end > nq {
					end = nq
				}
				c0 := time.Now()
				if _, err := r.SearchBatch(queries[off:end], sc.Threshold); err != nil {
					return nil, err
				}
				lat.RecordSince(c0)
			}
			dur := time.Since(t0)
			qps := float64(nq) / dur.Seconds()
			cells[[2]int{b, parts}] = cell{qps: qps, us: float64(dur.Microseconds()) / float64(nq)}
			snap := lat.Snapshot()
			lats[[2]int{b, parts}] = snap
			rec.Runs = append(rec.Runs, serveBenchRun{
				Shards:    parts,
				BatchSize: b,
				NsPerOp:   dur.Nanoseconds() / int64(nq),
				QPS:       qps,
				Pruned:    r.Stats().QueriesPruned,
				P50Ns:     snap.P50(),
				P95Ns:     snap.P95(),
				P99Ns:     snap.P99(),
				MaxNs:     snap.Max,
			})
		}
		r.Close()
		for _, s := range servers {
			s.Close()
		}
	}
	for _, b := range batchSizes {
		row := []string{fmt.Sprintf("%d", b)}
		for _, parts := range shardCounts {
			c := cells[[2]int{b, parts}]
			row = append(row, fmt.Sprintf("%.0f (%.0f µs)", c.qps, c.us))
		}
		t.Rows = append(t.Rows, row)
	}
	lt := Table{
		Title:  "Serving layer: per-batch latency percentiles",
		Note:   "cells are p50 / p95 / p99 of one SearchBatch round trip, in µs",
		Header: t.Header,
	}
	for _, b := range batchSizes {
		row := []string{fmt.Sprintf("%d", b)}
		for _, parts := range shardCounts {
			s := lats[[2]int{b, parts}]
			row = append(row, fmt.Sprintf("%.0f / %.0f / %.0f",
				float64(s.P50())/1e3, float64(s.P95())/1e3, float64(s.P99())/1e3))
		}
		lt.Rows = append(lt.Rows, row)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encoding %s: %w", ServeBenchFile, err)
	}
	if err := os.WriteFile(ServeBenchFile, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: writing %s: %w", ServeBenchFile, err)
	}
	return []Table{t, lt}, nil
}

// startDeployment partitions codes into parts Gray ranges, starts one shard
// server per partition on loopback, and dials a router over them.
func startDeployment(codes []bitvec.Code, bits, parts int) (*client.Router, []*server.Server, error) {
	sample := codes
	if len(sample) > 2000 {
		sample = codes[:2000]
	}
	pivots := histo.Pivots(sample, parts)
	byPart := make([][]bitvec.Code, parts)
	idsByPart := make([][]int, parts)
	for i, c := range codes {
		m := histo.PartitionID(pivots, c)
		byPart[m] = append(byPart[m], c)
		idsByPart[m] = append(idsByPart[m], i)
	}
	var servers []*server.Server
	var addrs [][]string
	for m := 0; m < parts; m++ {
		meta := wire.SnapshotMeta{Part: m, Parts: parts, Length: bits, Pivots: pivots}
		idx := core.BuildDynamic(byPart[m], idsByPart[m], core.Options{})
		s, err := server.New(meta, idx, server.Options{})
		if err != nil {
			return nil, nil, err
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			return nil, nil, err
		}
		servers = append(servers, s)
		addrs = append(addrs, []string{s.Addr().String()})
	}
	r, err := client.Dial(addrs, client.Options{})
	if err != nil {
		for _, s := range servers {
			s.Close()
		}
		return nil, nil, err
	}
	return r, servers, nil
}
