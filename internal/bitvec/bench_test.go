package bitvec

import (
	"math/rand"
	"testing"
)

func benchCodes(n, bits int) []Code {
	rng := rand.New(rand.NewSource(1))
	out := make([]Code, n)
	for i := range out {
		out[i] = Rand(rng, bits)
	}
	return out
}

func BenchmarkDistance32(b *testing.B) {
	cs := benchCodes(1024, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs[i%1024].Distance(cs[(i+1)%1024])
	}
}

func BenchmarkDistance256(b *testing.B) {
	cs := benchCodes(1024, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs[i%1024].Distance(cs[(i+1)%1024])
	}
}

func BenchmarkDistanceWithin(b *testing.B) {
	cs := benchCodes(1024, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs[i%1024].DistanceWithin(cs[(i+1)%1024], 3)
	}
}

func BenchmarkPatternDistanceExcluding(b *testing.B) {
	cs := benchCodes(1024, 64)
	pats := make([]Pattern, 512)
	for i := range pats {
		pats[i] = Shared(cs[2*i], cs[2*i+1])
	}
	ex := cs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pats[i%512].DistanceExcluding(cs[i%1024], ex)
	}
}

func BenchmarkShared(b *testing.B) {
	cs := benchCodes(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shared(cs...)
	}
}

func BenchmarkKey(b *testing.B) {
	cs := benchCodes(1024, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cs[i%1024].Key()
	}
}
