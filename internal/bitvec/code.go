// Package bitvec implements fixed-length binary codes and masked bit
// patterns, the primitive data types of the HA-Index.
//
// A Code is a fixed-length string of 0s and 1s produced by a similarity hash
// function. Hamming distance between two codes is an XOR followed by a
// population count. A Pattern is a partially-specified code — a fixed-length
// subsequence (FLSSeq) in the paper's terminology — with a mask identifying
// the fixed bit positions; distances against a pattern count differing bits
// only at fixed positions.
//
// Bit addressing: bit 0 is the leftmost (most significant) bit of the code
// string. Bit i is stored in word i/64 at shift 63-(i%64), so comparing the
// word slices lexicographically compares the code strings lexicographically.
package bitvec

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// Code is a fixed-length binary code.
type Code struct {
	words []uint64
	n     int
}

// wordsFor returns the number of 64-bit words needed for n bits.
func wordsFor(n int) int { return (n + 63) / 64 }

// New returns an all-zero code of n bits. It panics if n <= 0.
func New(n int) Code {
	if n <= 0 {
		panic(fmt.Sprintf("bitvec: invalid code length %d", n))
	}
	return Code{words: make([]uint64, wordsFor(n)), n: n}
}

// FromString parses a code from a string of '0' and '1' runes. Spaces are
// ignored so paper-style codes such as "001 001 010" parse directly.
func FromString(s string) (Code, error) {
	s = strings.ReplaceAll(s, " ", "")
	if len(s) == 0 {
		return Code{}, fmt.Errorf("bitvec: empty code string")
	}
	c := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			c.SetBit(i, true)
		default:
			return Code{}, fmt.Errorf("bitvec: invalid rune %q at position %d", r, i)
		}
	}
	return c, nil
}

// MustFromString is FromString but panics on error; intended for tests and
// examples with literal codes.
func MustFromString(s string) Code {
	c, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return c
}

// FromUint64 returns an n-bit code whose bits are the n low bits of v, most
// significant first. It panics if n is not in [1, 64].
func FromUint64(v uint64, n int) Code {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("bitvec: FromUint64 length %d out of range", n))
	}
	c := New(n)
	c.words[0] = v << (64 - uint(n))
	return c
}

// Uint64 returns the code's bits as the low bits of a uint64, most
// significant bit of the code first. It panics if the code is longer than 64
// bits.
func (c Code) Uint64() uint64 {
	if c.n > 64 {
		panic(fmt.Sprintf("bitvec: Uint64 on %d-bit code", c.n))
	}
	return c.words[0] >> (64 - uint(c.n))
}

// Rand returns a uniformly random n-bit code drawn from rng.
func Rand(rng *rand.Rand, n int) Code {
	c := New(n)
	for i := range c.words {
		c.words[i] = rng.Uint64()
	}
	c.clearTail()
	return c
}

// clearTail zeroes the unused trailing bits of the last word.
func (c Code) clearTail() {
	if r := uint(c.n % 64); r != 0 {
		c.words[len(c.words)-1] &= ^uint64(0) << (64 - r)
	}
}

// Len returns the code length in bits.
func (c Code) Len() int { return c.n }

// IsZero reports whether c is the zero value (no storage), as opposed to a
// valid all-zero code.
func (c Code) IsZero() bool { return c.words == nil }

// Bit returns bit i (0 = leftmost).
func (c Code) Bit(i int) bool {
	return c.words[i/64]&(1<<uint(63-i%64)) != 0
}

// SetBit sets bit i (0 = leftmost) to v, in place.
func (c Code) SetBit(i int, v bool) {
	m := uint64(1) << uint(63-i%64)
	if v {
		c.words[i/64] |= m
	} else {
		c.words[i/64] &^= m
	}
}

// FlipBit inverts bit i in place.
func (c Code) FlipBit(i int) {
	c.words[i/64] ^= 1 << uint(63-i%64)
}

// Clone returns a deep copy of c.
func (c Code) Clone() Code {
	w := make([]uint64, len(c.words))
	copy(w, c.words)
	return Code{words: w, n: c.n}
}

// Equal reports whether c and d have the same length and bits.
func (c Code) Equal(d Code) bool {
	if c.n != d.n {
		return false
	}
	for i, w := range c.words {
		if w != d.words[i] {
			return false
		}
	}
	return true
}

// Compare orders codes lexicographically by their bit strings (equivalently,
// as unsigned big-endian integers). It returns -1, 0, or +1.
func (c Code) Compare(d Code) int {
	for i := range c.words {
		switch {
		case c.words[i] < d.words[i]:
			return -1
		case c.words[i] > d.words[i]:
			return 1
		}
	}
	return 0
}

// Distance returns the Hamming distance between c and d: the number of bit
// positions at which they differ. It panics if the lengths differ.
func (c Code) Distance(d Code) int {
	if c.n != d.n {
		panic(fmt.Sprintf("bitvec: distance between %d-bit and %d-bit codes", c.n, d.n))
	}
	sum := 0
	for i, w := range c.words {
		sum += bits.OnesCount64(w ^ d.words[i])
	}
	return sum
}

// DistanceWithin returns (distance, true) if the Hamming distance between c
// and d is at most h, and (d', false) with d' > h otherwise. It short-circuits
// once the running count exceeds h, which matters for long codes.
func (c Code) DistanceWithin(d Code, h int) (int, bool) {
	sum := 0
	for i, w := range c.words {
		sum += bits.OnesCount64(w ^ d.words[i])
		if sum > h {
			return sum, false
		}
	}
	return sum, true
}

// DistanceExcluding returns the Hamming distance between c and d counted
// only at positions NOT set in the exclude mask. H-Search uses it to charge
// each bit of a leaf code exactly once along an index path.
func (c Code) DistanceExcluding(d, exclude Code) int {
	sum := 0
	ew := exclude.words
	for i, w := range c.words {
		sum += bits.OnesCount64((w ^ d.words[i]) &^ ew[i])
	}
	return sum
}

// OnesCount returns the number of 1 bits in c.
func (c Code) OnesCount() int {
	sum := 0
	for _, w := range c.words {
		sum += bits.OnesCount64(w)
	}
	return sum
}

// Xor returns c XOR d as a new code.
func (c Code) Xor(d Code) Code {
	out := New(c.n)
	for i, w := range c.words {
		out.words[i] = w ^ d.words[i]
	}
	return out
}

// Segment extracts bits [from, from+width) as a new width-bit code.
func (c Code) Segment(from, width int) Code {
	if from < 0 || width <= 0 || from+width > c.n {
		panic(fmt.Sprintf("bitvec: segment [%d,%d) of %d-bit code", from, from+width, c.n))
	}
	out := New(width)
	for i := 0; i < width; i++ {
		if c.Bit(from + i) {
			out.SetBit(i, true)
		}
	}
	return out
}

// String renders the code as a string of '0' and '1'.
func (c Code) String() string {
	var b strings.Builder
	b.Grow(c.n)
	for i := 0; i < c.n; i++ {
		if c.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Key returns a compact string usable as a map key. Unlike String it is not
// human-readable; it is the raw words plus the length.
func (c Code) Key() string {
	var b strings.Builder
	b.Grow(len(c.words)*8 + 1)
	for _, w := range c.words {
		for s := 56; s >= 0; s -= 8 {
			b.WriteByte(byte(w >> uint(s)))
		}
	}
	b.WriteByte(byte(c.n))
	return b.String()
}

// AppendBytes appends a fixed-width binary encoding of c to dst and returns
// the extended slice. Decode with CodeFromBytes using the same bit length.
func (c Code) AppendBytes(dst []byte) []byte {
	for _, w := range c.words {
		for s := 56; s >= 0; s -= 8 {
			dst = append(dst, byte(w>>uint(s)))
		}
	}
	return dst
}

// EncodedLen returns the byte length of the AppendBytes encoding of an n-bit
// code.
func EncodedLen(n int) int { return wordsFor(n) * 8 }

// CodeFromBytes decodes an n-bit code previously encoded with AppendBytes.
// It returns the code and the number of bytes consumed.
func CodeFromBytes(src []byte, n int) (Code, int, error) {
	need := EncodedLen(n)
	if len(src) < need {
		return Code{}, 0, fmt.Errorf("bitvec: short buffer: need %d bytes, have %d", need, len(src))
	}
	c := New(n)
	for i := range c.words {
		var w uint64
		for j := 0; j < 8; j++ {
			w = w<<8 | uint64(src[i*8+j])
		}
		c.words[i] = w
	}
	return c, need, nil
}

// Words exposes the underlying words (read-only by convention); used by
// size accounting and the gray package.
func (c Code) Words() []uint64 { return c.words }

// FromWords wraps an existing word slice as an n-bit code WITHOUT copying:
// the code aliases words, so the caller must not mutate them afterwards. It
// is the arena constructor used by the frozen HA-Index, whose codes live
// packed in one contiguous slab. Bits beyond n in the last word are cleared
// in place. It panics when the slice is not exactly wordsFor(n) long.
func FromWords(words []uint64, n int) Code {
	if n <= 0 || len(words) != wordsFor(n) {
		panic(fmt.Sprintf("bitvec: FromWords %d words for %d bits", len(words), n))
	}
	c := Code{words: words, n: n}
	c.clearTail()
	return c
}

// FromWordsShared is FromWords for word storage the caller may not write to
// — a read-only mmap'd arena. The bits beyond n in the last word are assumed
// already clear (true for any slab written from Code.Words()); they are NOT
// cleared here, so a caller aliasing untrusted bytes gets whatever tail bits
// the slab holds, consistently across every aliasing path.
func FromWordsShared(words []uint64, n int) Code {
	if n <= 0 || len(words) != wordsFor(n) {
		panic(fmt.Sprintf("bitvec: FromWordsShared %d words for %d bits", len(words), n))
	}
	return Code{words: words, n: n}
}

// SizeBytes returns the in-memory footprint of the code's bit storage.
func (c Code) SizeBytes() int { return len(c.words)*8 + 16 /* slice header */ + 8 /* n */ }
