package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randCode(rng *rand.Rand, n int) Code { return Rand(rng, n) }

func TestFromStringRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "001001010", "101100010", "1111111111"}
	for _, s := range cases {
		c, err := FromString(s)
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if got := c.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
		if c.Len() != len(s) {
			t.Errorf("Len(%q) = %d", s, c.Len())
		}
	}
}

func TestFromStringSpaces(t *testing.T) {
	c, err := FromString("001 001 010")
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "001001010" {
		t.Errorf("got %q", c.String())
	}
}

func TestFromStringErrors(t *testing.T) {
	for _, s := range []string{"", "012", "ab", " "} {
		if _, err := FromString(s); err == nil {
			t.Errorf("FromString(%q): expected error", s)
		}
	}
}

func TestFromUint64RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(64)
		v := rng.Uint64() & (^uint64(0) >> uint(64-n))
		c := FromUint64(v, n)
		if got := c.Uint64(); got != v {
			t.Fatalf("n=%d v=%x got %x", n, v, got)
		}
	}
}

func TestBitSetGet(t *testing.T) {
	c := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if c.Bit(i) {
			t.Fatalf("bit %d should start 0", i)
		}
		c.SetBit(i, true)
		if !c.Bit(i) {
			t.Fatalf("bit %d should be set", i)
		}
		c.SetBit(i, false)
		if c.Bit(i) {
			t.Fatalf("bit %d should be cleared", i)
		}
		c.FlipBit(i)
		if !c.Bit(i) {
			t.Fatalf("bit %d should be flipped on", i)
		}
		c.FlipBit(i)
	}
	if c.OnesCount() != 0 {
		t.Fatalf("count=%d", c.OnesCount())
	}
}

func TestDistanceBasics(t *testing.T) {
	a := MustFromString("101100010")
	b := MustFromString("001001010")
	if d := a.Distance(b); d != 3 {
		t.Errorf("distance = %d, want 3", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b, c := randCode(rng, n), randCode(rng, n), randCode(rng, n)
		// Symmetry, identity, triangle inequality, XOR equivalence.
		if a.Distance(b) != b.Distance(a) {
			return false
		}
		if a.Distance(a) != 0 {
			return false
		}
		if a.Distance(c) > a.Distance(b)+b.Distance(c) {
			return false
		}
		return a.Xor(b).OnesCount() == a.Distance(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(150)
		a, b := randCode(rng, n), randCode(rng, n)
		h := rng.Intn(n + 1)
		d := a.Distance(b)
		got, ok := a.DistanceWithin(b, h)
		if ok != (d <= h) {
			t.Fatalf("within mismatch d=%d h=%d ok=%v", d, h, ok)
		}
		if ok && got != d {
			t.Fatalf("within distance %d want %d", got, d)
		}
	}
}

func TestDistanceExcluding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(150)
		a, b, ex := randCode(rng, n), randCode(rng, n), randCode(rng, n)
		want := 0
		for j := 0; j < n; j++ {
			if !ex.Bit(j) && a.Bit(j) != b.Bit(j) {
				want++
			}
		}
		if got := a.DistanceExcluding(b, ex); got != want {
			t.Fatalf("excluding = %d want %d", got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(150)
		a, b := randCode(rng, n), randCode(rng, n)
		want := 0
		as, bs := a.String(), b.String()
		switch {
		case as < bs:
			want = -1
		case as > bs:
			want = 1
		}
		if got := a.Compare(b); got != want {
			t.Fatalf("compare(%s,%s)=%d want %d", as, bs, got, want)
		}
	}
}

func TestSegment(t *testing.T) {
	c := MustFromString("101100010")
	if got := c.Segment(0, 3).String(); got != "101" {
		t.Errorf("seg0 = %q", got)
	}
	if got := c.Segment(3, 3).String(); got != "100" {
		t.Errorf("seg1 = %q", got)
	}
	if got := c.Segment(6, 3).String(); got != "010" {
		t.Errorf("seg2 = %q", got)
	}
	if got := c.Segment(2, 5).String(); got != "11000" {
		t.Errorf("seg mid = %q", got)
	}
}

func TestKeyUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seen := map[string]string{}
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(100)
		c := randCode(rng, n)
		k := c.Key()
		if prev, ok := seen[k]; ok && prev != c.String() {
			t.Fatalf("key collision: %q vs %q", prev, c.String())
		}
		seen[k] = c.String()
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(200)
		c := randCode(rng, n)
		buf := c.AppendBytes(nil)
		if len(buf) != EncodedLen(n) {
			t.Fatalf("encoded len %d want %d", len(buf), EncodedLen(n))
		}
		d, used, err := CodeFromBytes(buf, n)
		if err != nil || used != len(buf) || !d.Equal(c) {
			t.Fatalf("roundtrip failed: %v used=%d equal=%v", err, used, d.Equal(c))
		}
	}
	if _, _, err := CodeFromBytes([]byte{1}, 64); err == nil {
		t.Error("expected short-buffer error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromString("1010")
	b := a.Clone()
	b.FlipBit(0)
	if a.Bit(0) != true || b.Bit(0) != false {
		t.Error("clone not independent")
	}
}

func TestRandClearsTail(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(130)
		c := Rand(rng, n)
		w := c.Words()
		if r := uint(n % 64); r != 0 {
			if w[len(w)-1]&(^uint64(0)>>r) != 0 {
				t.Fatalf("tail bits set for n=%d", n)
			}
		}
	}
}

func TestZeroValueAndSize(t *testing.T) {
	var zero Code
	if !zero.IsZero() {
		t.Fatal("zero value should report IsZero")
	}
	c := MustFromString("1010")
	if c.IsZero() {
		t.Fatal("real code is not zero")
	}
	if c.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if MustFromString("10").Equal(MustFromString("100")) {
		t.Fatal("different lengths are not equal")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	New(0)
}

func TestUint64Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 bits")
		}
	}()
	New(65).Uint64()
}

func TestFromUint64Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad length")
		}
	}()
	FromUint64(1, 65)
}

func TestMustFromStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFromString("10x")
}

func TestDistanceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFromString("10").Distance(MustFromString("100"))
}

func TestSegmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range segment")
		}
	}()
	MustFromString("1010").Segment(2, 5)
}
