package bitvec

import (
	"testing"
)

// Native fuzz targets; under plain `go test` they run their seed corpus,
// and `go test -fuzz` explores further.

func FuzzFromString(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "0101", "001 001 010", "abc", "0x1", "111111111111111111111111111111111"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := FromString(s)
		if err != nil {
			return
		}
		// Round-trip through String must be stable (spaces removed).
		again, err := FromString(c.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !again.Equal(c) {
			t.Fatalf("round trip changed code: %q vs %q", c.String(), again.String())
		}
	})
}

func FuzzCodeFromBytes(f *testing.F) {
	f.Add([]byte{}, 8)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 64)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1}, 3)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n <= 0 || n > 1024 {
			return
		}
		c, used, err := CodeFromBytes(data, n)
		if err != nil {
			return
		}
		// Tail bits beyond n must have been preserved as stored; encoding
		// again must reproduce the consumed prefix up to tail masking.
		out := c.AppendBytes(nil)
		if len(out) != used {
			t.Fatalf("encoded %d bytes, consumed %d", len(out), used)
		}
		back, _, err := CodeFromBytes(out, n)
		if err != nil || !back.Equal(c) {
			t.Fatal("re-decode mismatch")
		}
	})
}

func FuzzPatternFromString(f *testing.F) {
	for _, seed := range []string{"", "·", "0·1", "...", "**1", "01x"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := PatternFromString(s)
		if err != nil {
			return
		}
		again, err := PatternFromString(p.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !again.Equal(p) {
			t.Fatal("pattern round trip changed")
		}
	})
}
