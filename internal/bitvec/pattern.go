package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Pattern is a partially specified binary code: a fixed-length subsequence
// (FLSSeq) in the paper's terminology. mask has a 1 at every fixed position;
// bits holds the value at fixed positions and is 0 elsewhere. A fixed-length
// substring (FLSS) is simply a Pattern whose fixed positions are contiguous.
type Pattern struct {
	mask Code
	bits Code
}

// PatternOf returns the fully-specified pattern of a code (every position
// fixed).
func PatternOf(c Code) Pattern {
	m := New(c.n)
	for i := range m.words {
		m.words[i] = ^uint64(0)
	}
	m.clearTail()
	return Pattern{mask: m, bits: c.Clone()}
}

// EmptyPattern returns a pattern of n bits with no fixed positions.
func EmptyPattern(n int) Pattern {
	return Pattern{mask: New(n), bits: New(n)}
}

// PatternFromMaskBits assembles a pattern from a fixed-position mask and a
// value code. Value bits outside the mask are cleared. It panics on length
// mismatch.
func PatternFromMaskBits(mask, bits Code) Pattern {
	if mask.Len() != bits.Len() {
		panic(fmt.Sprintf("bitvec: pattern mask %d bits vs values %d bits", mask.Len(), bits.Len()))
	}
	b := New(mask.Len())
	for i := range b.words {
		b.words[i] = bits.words[i] & mask.words[i]
	}
	return Pattern{mask: mask.Clone(), bits: b}
}

// PatternFromString parses a paper-style pattern where '·', '.' and '*'
// denote unfixed positions, e.g. "···0·010".
func PatternFromString(s string) (Pattern, error) {
	s = strings.ReplaceAll(s, " ", "")
	rs := []rune(s)
	if len(rs) == 0 {
		return Pattern{}, fmt.Errorf("bitvec: empty pattern string")
	}
	p := EmptyPattern(len(rs))
	for i, r := range rs {
		switch r {
		case '0':
			p.mask.SetBit(i, true)
		case '1':
			p.mask.SetBit(i, true)
			p.bits.SetBit(i, true)
		case '.', '*', '·':
			// unfixed
		default:
			return Pattern{}, fmt.Errorf("bitvec: invalid pattern rune %q at %d", r, i)
		}
	}
	return p, nil
}

// MustPatternFromString is PatternFromString but panics on error.
func MustPatternFromString(s string) Pattern {
	p, err := PatternFromString(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Shared returns the maximal pattern common to all the given codes: the
// positions at which every code agrees, with the shared value. This is the
// extractFLSSeq primitive of Algorithm 1 (H-Build). It panics if codes is
// empty or lengths differ.
func Shared(codes ...Code) Pattern {
	if len(codes) == 0 {
		panic("bitvec: Shared of no codes")
	}
	n := codes[0].n
	mask := New(n)
	for i := range mask.words {
		mask.words[i] = ^uint64(0)
	}
	mask.clearTail()
	first := codes[0]
	for _, c := range codes[1:] {
		if c.n != n {
			panic("bitvec: Shared over mixed code lengths")
		}
		for i := range mask.words {
			mask.words[i] &^= first.words[i] ^ c.words[i]
		}
	}
	b := New(n)
	for i := range b.words {
		b.words[i] = first.words[i] & mask.words[i]
	}
	return Pattern{mask: mask, bits: b}
}

// SharedPattern returns the maximal pattern common to two patterns: positions
// fixed in both with equal values. Used when consolidating index nodes.
func SharedPattern(p, q Pattern) Pattern {
	n := p.Len()
	mask := New(n)
	b := New(n)
	for i := range mask.words {
		agree := ^(p.bits.words[i] ^ q.bits.words[i])
		mask.words[i] = p.mask.words[i] & q.mask.words[i] & agree
		b.words[i] = p.bits.words[i] & mask.words[i]
	}
	return Pattern{mask: mask, bits: b}
}

// Len returns the pattern length in bits.
func (p Pattern) Len() int { return p.mask.n }

// IsZero reports whether p is the zero value.
func (p Pattern) IsZero() bool { return p.mask.words == nil }

// FixedCount returns the number of fixed positions.
func (p Pattern) FixedCount() int { return p.mask.OnesCount() }

// Fixed reports whether position i is fixed.
func (p Pattern) Fixed(i int) bool { return p.mask.Bit(i) }

// Bit returns the value at position i; meaningful only when Fixed(i).
func (p Pattern) Bit(i int) bool { return p.bits.Bit(i) }

// Mask returns the pattern's fixed-position mask code.
func (p Pattern) Mask() Code { return p.mask }

// Bits returns the pattern's value code (zero at unfixed positions).
func (p Pattern) Bits() Code { return p.bits }

// Distance returns the Hamming distance between the pattern and a code,
// counted only at the pattern's fixed positions (the paper's distance to an
// FLSSeq).
func (p Pattern) Distance(c Code) int {
	sum := 0
	for i, w := range p.bits.words {
		sum += bits.OnesCount64((w ^ c.words[i]) & p.mask.words[i])
	}
	return sum
}

// DistanceExcluding returns the distance between the pattern and a code at
// the fixed positions NOT covered by the exclude mask. H-Search uses this to
// charge each bit position exactly once along an index path.
func (p Pattern) DistanceExcluding(c Code, exclude Code) int {
	sum := 0
	for i, w := range p.bits.words {
		sum += bits.OnesCount64((w ^ c.words[i]) & p.mask.words[i] &^ exclude.words[i])
	}
	return sum
}

// Matches reports whether code c agrees with the pattern at every fixed
// position (the bitmatch test of Algorithm 2).
func (p Pattern) Matches(c Code) bool {
	for i, w := range p.bits.words {
		if (w^c.words[i])&p.mask.words[i] != 0 {
			return false
		}
	}
	return true
}

// Contains reports whether pattern q is a sub-pattern of p: every position
// fixed by q is fixed by p with the same value.
func (p Pattern) Contains(q Pattern) bool {
	for i := range p.mask.words {
		if q.mask.words[i]&^p.mask.words[i] != 0 {
			return false
		}
		if (p.bits.words[i]^q.bits.words[i])&q.mask.words[i] != 0 {
			return false
		}
	}
	return true
}

// CompatibleWith reports whether p and q agree on every position fixed in
// both, i.e. whether some full code satisfies both patterns.
func (p Pattern) CompatibleWith(q Pattern) bool {
	for i := range p.mask.words {
		both := p.mask.words[i] & q.mask.words[i]
		if (p.bits.words[i]^q.bits.words[i])&both != 0 {
			return false
		}
	}
	return true
}

// Combine returns the union of two patterns (the combine step of H-Search,
// Algorithm 3 line 15). On positions fixed in both, p's value wins; callers
// combine only compatible patterns (parent and child on one index path).
func (p Pattern) Combine(q Pattern) Pattern {
	n := p.Len()
	mask := New(n)
	b := New(n)
	for i := range mask.words {
		mask.words[i] = p.mask.words[i] | q.mask.words[i]
		b.words[i] = p.bits.words[i] | (q.bits.words[i] &^ p.mask.words[i])
	}
	return Pattern{mask: mask, bits: b}
}

// Minus returns p restricted to positions not fixed in the exclude mask: the
// residual pattern a child contributes beyond its parent.
func (p Pattern) Minus(exclude Code) Pattern {
	n := p.Len()
	mask := New(n)
	b := New(n)
	for i := range mask.words {
		mask.words[i] = p.mask.words[i] &^ exclude.words[i]
		b.words[i] = p.bits.words[i] & mask.words[i]
	}
	return Pattern{mask: mask, bits: b}
}

// Equal reports whether two patterns fix the same positions with the same
// values.
func (p Pattern) Equal(q Pattern) bool {
	return p.mask.Equal(q.mask) && p.bits.Equal(q.bits)
}

// Key returns a compact string usable as a map key for node consolidation.
func (p Pattern) Key() string { return p.mask.Key() + p.bits.Key() }

// String renders the pattern paper-style, with '·' at unfixed positions.
func (p Pattern) String() string {
	var b strings.Builder
	for i := 0; i < p.Len(); i++ {
		switch {
		case !p.mask.Bit(i):
			b.WriteRune('·')
		case p.bits.Bit(i):
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// SizeBytes returns the approximate in-memory footprint of the pattern.
func (p Pattern) SizeBytes() int { return p.mask.SizeBytes() + p.bits.SizeBytes() }

// IsFLSS reports whether the pattern's fixed positions are contiguous, i.e.
// whether it is a fixed-length substring in the paper's Definition 3 sense.
func (p Pattern) IsFLSS() bool {
	first, last, count := -1, -1, 0
	for i := 0; i < p.Len(); i++ {
		if p.mask.Bit(i) {
			if first < 0 {
				first = i
			}
			last = i
			count++
		}
	}
	if count == 0 {
		return true
	}
	return last-first+1 == count
}
