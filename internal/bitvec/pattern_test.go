package bitvec

import (
	"math/rand"
	"testing"
)

func TestPatternFromString(t *testing.T) {
	p := MustPatternFromString("···0·010")
	if p.Len() != 8 {
		t.Fatalf("len=%d", p.Len())
	}
	if p.FixedCount() != 4 {
		t.Fatalf("fixed=%d", p.FixedCount())
	}
	if p.String() != "···0·010" {
		t.Fatalf("string=%q", p.String())
	}
	// '.' and '*' also accepted.
	q := MustPatternFromString("..10*1")
	if q.FixedCount() != 3 {
		t.Fatalf("fixed=%d", q.FixedCount())
	}
}

// TestPaperFLSSExamples checks the FLSS/FLSSeq examples of Section 4.1.
func TestPaperFLSSExamples(t *testing.T) {
	t0 := MustFromString("001101010")
	// U = "····0101·" is an FLSS of t0's code "001101010".
	u := MustPatternFromString("····0101·")
	if !u.Matches(t0) {
		t.Error("u should match t0")
	}
	if !u.IsFLSS() {
		t.Error("u should be an FLSS (contiguous)")
	}
	// V = "101······" is not an FLSS of t0.
	v := MustPatternFromString("101······")
	if v.Matches(t0) {
		t.Error("v should not match t0")
	}
	// FLSSeq example: U = "···0·1·1·" is an FLSSeq of "001001010", so its
	// distance to that code is 0 by Definition 4. (The paper's prose claims
	// 2 for this pair, which contradicts its own definition — an FLSSeq of
	// a code agrees with it at every effective position.)
	t0b := MustFromString("001001010")
	seq := MustPatternFromString("···0·1·1·")
	if d := seq.Distance(t0b); d != 0 {
		t.Errorf("distance to own FLSSeq = %d, want 0", d)
	}
	if !seq.Matches(t0b) {
		t.Error("a code must match its own FLSSeq")
	}
	if seq.IsFLSS() {
		t.Error("seq is non-contiguous, not an FLSS")
	}
	// A genuinely differing code: flip effective positions 5 and 7.
	far := MustFromString("001000000")
	if d := seq.Distance(far); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
}

func TestShared(t *testing.T) {
	a := MustFromString("001001010")
	b := MustFromString("001011101")
	p := Shared(a, b)
	// Positions where a and b agree: 0,1,2,3,5 -> values 0,0,1,0,1
	want := "0010·1···"
	if p.String() != want {
		t.Errorf("shared = %q want %q", p.String(), want)
	}
	if !p.Matches(a) || !p.Matches(b) {
		t.Error("shared must match both inputs")
	}
}

func TestSharedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(100)
		k := 2 + rng.Intn(5)
		codes := make([]Code, k)
		for j := range codes {
			codes[j] = Rand(rng, n)
		}
		p := Shared(codes...)
		for _, c := range codes {
			if !p.Matches(c) {
				t.Fatal("shared pattern must match every input")
			}
		}
		// Maximality: for every unfixed position some pair disagrees.
		for pos := 0; pos < n; pos++ {
			if p.Fixed(pos) {
				continue
			}
			agree := true
			for _, c := range codes[1:] {
				if c.Bit(pos) != codes[0].Bit(pos) {
					agree = false
					break
				}
			}
			if agree {
				t.Fatalf("position %d unfixed but all agree", pos)
			}
		}
	}
}

func TestSharedPattern(t *testing.T) {
	p := MustPatternFromString("0010·1···")
	q := MustPatternFromString("0·10·11··")
	s := SharedPattern(p, q)
	want := "0·10·1···"
	if s.String() != want {
		t.Errorf("sharedPattern = %q want %q", s.String(), want)
	}
	if !p.Contains(s) || !q.Contains(s) {
		t.Error("inputs must contain their shared pattern")
	}
}

func TestPatternDistance(t *testing.T) {
	p := MustPatternFromString("···0·1·1·")
	q := MustFromString("001100000")
	// Effective positions 3,5,7 hold 1,0,0 in q against 0,1,1 in p.
	if d := p.Distance(q); d != 3 {
		t.Errorf("distance = %d want 3", d)
	}
	if p.Matches(q) {
		t.Error("should not match at distance 3")
	}
}

func TestDistanceExcludingPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(100)
		a, b, ex := Rand(rng, n), Rand(rng, n), Rand(rng, n)
		p := PatternOf(a)
		want := 0
		for j := 0; j < n; j++ {
			if !ex.Bit(j) && a.Bit(j) != b.Bit(j) {
				want++
			}
		}
		if got := p.DistanceExcluding(b, ex); got != want {
			t.Fatalf("got %d want %d", got, want)
		}
	}
}

func TestCombineAndMinus(t *testing.T) {
	parent := MustPatternFromString("0·10·····")
	child := MustPatternFromString("0010·1···")
	combined := parent.Combine(child)
	if !combined.Contains(parent) || !combined.Contains(child) {
		t.Error("combine must contain both")
	}
	res := child.Minus(parent.Mask())
	// Residual bits: position 1 ('0') and position 5 ('1').
	if res.String() != "·0···1···" {
		t.Errorf("residual = %q", res.String())
	}
	// Combining parent with residual yields the child.
	if !parent.Combine(res).Equal(child) {
		t.Error("parent + residual != child")
	}
}

func TestCombineDistanceDecomposition(t *testing.T) {
	// Distance(child, q) == Distance(parent, q) + DistanceExcluding(child,
	// q, parent.mask) whenever parent ⊆ child — the invariant H-Search
	// relies on.
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(100)
		a, b := Rand(rng, n), Rand(rng, n)
		child := Shared(a, b)
		c := Rand(rng, n)
		parent := SharedPattern(child, PatternOf(c))
		if !child.Contains(parent) {
			t.Fatal("parent must be contained in child")
		}
		q := Rand(rng, n)
		full := child.Distance(q)
		split := parent.Distance(q) + child.DistanceExcluding(q, parent.Mask())
		if full != split {
			t.Fatalf("decomposition broken: %d != %d", full, split)
		}
	}
}

func TestCompatibleWith(t *testing.T) {
	p := MustPatternFromString("01··")
	q := MustPatternFromString("0·1·")
	r := MustPatternFromString("10··")
	if !p.CompatibleWith(q) {
		t.Error("p,q compatible")
	}
	if p.CompatibleWith(r) {
		t.Error("p,r incompatible")
	}
}

func TestPatternKey(t *testing.T) {
	p := MustPatternFromString("01··")
	q := MustPatternFromString("01**") // same as p, different spelling
	if p.Key() != q.Key() {
		t.Error("equal patterns must share keys")
	}
	r := MustPatternFromString("010·")
	if p.Key() == r.Key() {
		t.Error("different patterns must not share keys")
	}
	// A pattern with value 0 at a fixed position differs from unfixed.
	s := MustPatternFromString("01·0")
	u := MustPatternFromString("01··")
	if s.Key() == u.Key() {
		t.Error("fixed-zero vs unfixed must differ")
	}
}

func TestEmptyAndFullPattern(t *testing.T) {
	e := EmptyPattern(9)
	if e.FixedCount() != 0 {
		t.Error("empty pattern has no fixed bits")
	}
	c := MustFromString("101010101")
	if e.Distance(c) != 0 {
		t.Error("empty pattern distance is 0")
	}
	f := PatternOf(c)
	if f.FixedCount() != 9 {
		t.Error("full pattern fixes all bits")
	}
	d := MustFromString("010101010")
	if f.Distance(d) != 9 {
		t.Error("full pattern distance equals code distance")
	}
}

func TestPatternFromMaskBits(t *testing.T) {
	mask := MustFromString("1100")
	bits := MustFromString("1011") // bits outside the mask must be cleared
	p := PatternFromMaskBits(mask, bits)
	if p.String() != "10··" {
		t.Fatalf("pattern = %q", p.String())
	}
	if !p.Fixed(0) || p.Fixed(2) {
		t.Fatal("mask positions wrong")
	}
	if !p.Bit(0) || p.Bit(1) {
		t.Fatal("value positions wrong")
	}
	// Inputs stay independent: mutating the mask afterwards must not change
	// the pattern.
	mask.FlipBit(3)
	if p.Fixed(3) {
		t.Fatal("pattern aliases its input mask")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	PatternFromMaskBits(MustFromString("10"), MustFromString("101"))
}

func TestPatternAccessorsAndZero(t *testing.T) {
	var zero Pattern
	if !zero.IsZero() {
		t.Fatal("zero pattern should report IsZero")
	}
	p := MustPatternFromString("1·0")
	if p.IsZero() {
		t.Fatal("real pattern is not zero")
	}
	if p.Bits().String() != "100" {
		t.Fatalf("bits = %q", p.Bits().String())
	}
	if p.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
	// Contains with value disagreement on a shared fixed position.
	q := MustPatternFromString("0··")
	if p.Contains(q) {
		t.Fatal("value conflict must fail containment")
	}
}

func TestMustPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustPatternFromString("01x")
}
