// Package btree implements an in-memory B+-tree keyed by uint64 with integer
// payloads and bidirectional leaf iteration. It is the disk-index substrate
// of the LSB-Tree baseline (Tao et al., TODS'10), which stores Z-order values
// of LSH projections in a B-tree and expands bidirectionally from the query's
// position.
package btree

import "fmt"

const degree = 32 // max keys per node

// Tree is a B+-tree multimap from uint64 keys to int values.
type Tree struct {
	root *node
	n    int
}

type node struct {
	keys     []uint64
	children []*node // nil for leaves
	vals     []int   // leaves only
	next     *node   // leaf chain
	prev     *node
}

func (nd *node) leaf() bool { return nd.children == nil }

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.n }

// Insert adds (key, val); duplicate keys are allowed.
func (t *Tree) Insert(key uint64, val int) {
	t.n++
	r := t.root
	if len(r.keys) >= degree {
		// Split the root preemptively.
		nr := &node{children: []*node{r}}
		nr.splitChild(0)
		t.root = nr
		r = nr
	}
	r.insertNonFull(key, val)
}

func (nd *node) insertNonFull(key uint64, val int) {
	if nd.leaf() {
		i := nd.lowerBound(key)
		nd.keys = append(nd.keys, 0)
		nd.vals = append(nd.vals, 0)
		copy(nd.keys[i+1:], nd.keys[i:])
		copy(nd.vals[i+1:], nd.vals[i:])
		nd.keys[i] = key
		nd.vals[i] = val
		return
	}
	i := nd.childIndex(key)
	child := nd.children[i]
	if len(child.keys) >= degree {
		nd.splitChild(i)
		if key >= nd.keys[i] {
			i++
		}
	}
	nd.children[i].insertNonFull(key, val)
}

// lowerBound returns the first index with keys[i] >= key.
func (nd *node) lowerBound(key uint64) int {
	lo, hi := 0, len(nd.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child subtree for key in an internal node, whose
// keys[i] is the smallest key in children[i+1].
func (nd *node) childIndex(key uint64) int {
	lo, hi := 0, len(nd.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitChild splits the full child i, promoting its median separator.
func (nd *node) splitChild(i int) {
	child := nd.children[i]
	mid := len(child.keys) / 2
	var sep uint64
	right := &node{}
	if child.leaf() {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
		right.next = child.next
		if right.next != nil {
			right.next.prev = right
		}
		right.prev = child
		child.next = right
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	nd.keys = append(nd.keys, 0)
	copy(nd.keys[i+1:], nd.keys[i:])
	nd.keys[i] = sep
	nd.children = append(nd.children, nil)
	copy(nd.children[i+2:], nd.children[i+1:])
	nd.children[i+1] = right
}

// Iter is a bidirectional cursor over leaf entries.
type Iter struct {
	leaf *node
	pos  int
}

// Seek positions a cursor at the first entry with key >= target. The cursor
// may be past the end (Valid reports false) when all keys are smaller.
func (t *Tree) Seek(key uint64) Iter {
	nd := t.root
	for !nd.leaf() {
		nd = nd.children[nd.childIndex(key)]
	}
	i := nd.lowerBound(key)
	it := Iter{leaf: nd, pos: i}
	if i >= len(nd.keys) {
		it.leaf = nd.next
		it.pos = 0
	}
	return it
}

// Min returns a cursor at the smallest entry.
func (t *Tree) Min() Iter {
	nd := t.root
	for !nd.leaf() {
		nd = nd.children[0]
	}
	return Iter{leaf: nd, pos: 0}
}

// Max returns a cursor at the largest entry (invalid when empty).
func (t *Tree) Max() Iter {
	nd := t.root
	for !nd.leaf() {
		nd = nd.children[len(nd.children)-1]
	}
	if len(nd.keys) == 0 {
		return Iter{}
	}
	return Iter{leaf: nd, pos: len(nd.keys) - 1}
}

// Valid reports whether the cursor references an entry.
func (it Iter) Valid() bool { return it.leaf != nil && it.pos >= 0 && it.pos < len(it.leaf.keys) }

// Key returns the current key; the cursor must be Valid.
func (it Iter) Key() uint64 { return it.leaf.keys[it.pos] }

// Val returns the current value; the cursor must be Valid.
func (it Iter) Val() int { return it.leaf.vals[it.pos] }

// Next returns a cursor advanced by one entry (possibly invalid).
func (it Iter) Next() Iter {
	if it.leaf == nil {
		return it
	}
	it.pos++
	for it.leaf != nil && it.pos >= len(it.leaf.keys) {
		it.leaf = it.leaf.next
		it.pos = 0
	}
	return it
}

// Prev returns a cursor moved back by one entry (possibly invalid).
func (it Iter) Prev() Iter {
	if it.leaf == nil {
		return it
	}
	it.pos--
	for it.leaf != nil && it.pos < 0 {
		it.leaf = it.leaf.prev
		if it.leaf != nil {
			it.pos = len(it.leaf.keys) - 1
		}
	}
	return it
}

// Check validates the B+-tree invariants; it is used by tests.
func (t *Tree) Check() error {
	count := 0
	var prevKey uint64
	first := true
	for it := t.Min(); it.Valid(); it = it.Next() {
		if !first && it.Key() < prevKey {
			return fmt.Errorf("btree: keys out of order: %d after %d", it.Key(), prevKey)
		}
		prevKey = it.Key()
		first = false
		count++
	}
	if count != t.n {
		return fmt.Errorf("btree: iterated %d entries, Len()=%d", count, t.n)
	}
	return nil
}

// SizeBytes returns the approximate in-memory footprint.
func (t *Tree) SizeBytes() int {
	sz := 0
	var walk func(*node)
	walk = func(nd *node) {
		sz += 80 + 8*len(nd.keys) + 8*len(nd.vals) + 8*len(nd.children)
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(t.root)
	return sz
}
