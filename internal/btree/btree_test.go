package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertAndIterate(t *testing.T) {
	bt := New()
	keys := []uint64{5, 3, 8, 1, 9, 7, 2, 6, 4, 0}
	for _, k := range keys {
		bt.Insert(k, int(k)*10)
	}
	if bt.Len() != len(keys) {
		t.Fatalf("len=%d", bt.Len())
	}
	if err := bt.Check(); err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for it := bt.Min(); it.Valid(); it = it.Next() {
		if it.Key() != want || it.Val() != int(want)*10 {
			t.Fatalf("got (%d,%d) want (%d,%d)", it.Key(), it.Val(), want, want*10)
		}
		want++
	}
	if want != 10 {
		t.Fatalf("iterated %d", want)
	}
}

func TestLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	bt := New()
	n := 20000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 5000 // force duplicates
		bt.Insert(keys[i], i)
	}
	if err := bt.Check(); err != nil {
		t.Fatal(err)
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := 0
	for it := bt.Min(); it.Valid(); it = it.Next() {
		if it.Key() != sorted[i] {
			t.Fatalf("pos %d: key %d want %d", i, it.Key(), sorted[i])
		}
		i++
	}
	if i != n {
		t.Fatalf("iterated %d want %d", i, n)
	}
}

func TestSeek(t *testing.T) {
	bt := New()
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		bt.Insert(k, int(k))
	}
	cases := []struct {
		seek uint64
		want uint64
		ok   bool
	}{
		{0, 10, true}, {10, 10, true}, {11, 20, true}, {35, 40, true},
		{50, 50, true}, {51, 0, false},
	}
	for _, c := range cases {
		it := bt.Seek(c.seek)
		if it.Valid() != c.ok {
			t.Fatalf("seek %d: valid=%v", c.seek, it.Valid())
		}
		if c.ok && it.Key() != c.want {
			t.Fatalf("seek %d: key %d want %d", c.seek, it.Key(), c.want)
		}
	}
}

func TestBidirectional(t *testing.T) {
	bt := New()
	for k := uint64(0); k < 100; k += 2 {
		bt.Insert(k, int(k))
	}
	it := bt.Seek(51) // lands on 52
	if !it.Valid() || it.Key() != 52 {
		t.Fatalf("seek: %v", it)
	}
	prev := it.Prev()
	if !prev.Valid() || prev.Key() != 50 {
		t.Fatalf("prev: %v", prev.Key())
	}
	// Walk all the way back.
	count := 0
	for p := prev; p.Valid(); p = p.Prev() {
		count++
	}
	if count != 26 { // 0..50 step 2
		t.Fatalf("backward count %d", count)
	}
	// Max cursor.
	mx := bt.Max()
	if !mx.Valid() || mx.Key() != 98 {
		t.Fatalf("max %v", mx.Key())
	}
	if bad := (New()).Max(); bad.Valid() {
		t.Fatal("empty max should be invalid")
	}
}

func TestQuickOrderedInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bt := New()
		n := rng.Intn(3000)
		for i := 0; i < n; i++ {
			bt.Insert(rng.Uint64()%1000, i)
		}
		return bt.Check() == nil && bt.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytes(t *testing.T) {
	bt := New()
	for i := uint64(0); i < 1000; i++ {
		bt.Insert(i, int(i))
	}
	if bt.SizeBytes() < 16000 {
		t.Errorf("size %d seems too small for 1000 entries", bt.SizeBytes())
	}
}
