package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/histo"
	"haindex/internal/obs"
	"haindex/internal/server"
	"haindex/internal/wire"
)

// deployment is a full in-process multi-shard serving stack built from one
// dataset: per-partition snapshot files, shard servers (optionally several
// replicas per shard), and the oracle index over all codes.
type deployment struct {
	codes   []bitvec.Code
	pivots  []bitvec.Code
	oracle  *core.Searcher
	servers []*server.Server
	addrs   [][]string
}

// buildDeployment writes per-partition snapshots to disk, loads them back
// (exercising the snapshot protocol end to end), and starts the servers.
// replicaFaults[part] holds one fault plan per extra replica of that shard;
// replica 0 of shard 0 gets faults[0] etc.
func buildDeployment(t *testing.T, rng *rand.Rand, n, bits, parts int, replicas map[int][]*server.FaultPlan) *deployment {
	t.Helper()
	return buildDeploymentEngine(t, rng, n, bits, parts, replicas, "")
}

// buildDeploymentEngine is buildDeployment with the servers' Options.Engine
// set, for the multi-engine serving tests.
func buildDeploymentEngine(t *testing.T, rng *rand.Rand, n, bits, parts int, replicas map[int][]*server.FaultPlan, engine string) *deployment {
	t.Helper()
	// All codes share the base's first 8 bits, so the dataset occupies one
	// narrow Gray region: interior partitions then share long rank
	// prefixes and far-off queries are provably prunable.
	base := bitvec.Rand(rng, bits)
	codes := make([]bitvec.Code, n)
	for i := range codes {
		c := base.Clone()
		for f := 0; f < rng.Intn(10); f++ {
			c.FlipBit(8 + rng.Intn(bits-8))
		}
		codes[i] = c
	}
	sample := make([]bitvec.Code, 0, 200)
	for _, i := range rng.Perm(n)[:min(200, n)] {
		sample = append(sample, codes[i])
	}
	pivots := histo.Pivots(sample, parts)

	d := &deployment{codes: codes, pivots: pivots}
	dir := t.TempDir()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	d.oracle = core.NewSearcher(core.BuildDynamic(codes, ids, core.Options{}))

	byPart := make([][]bitvec.Code, parts)
	idsByPart := make([][]int, parts)
	for i, c := range codes {
		m := histo.PartitionID(pivots, c)
		byPart[m] = append(byPart[m], c)
		idsByPart[m] = append(idsByPart[m], i)
	}
	for m := 0; m < parts; m++ {
		meta := wire.SnapshotMeta{Part: m, Parts: parts, Length: bits, Pivots: pivots}
		idx := core.BuildDynamic(byPart[m], idsByPart[m], core.Options{})
		var buf bytes.Buffer
		if err := wire.WriteSnapshot(&buf, meta, idx); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%05d.hasn", m))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		var addrs []string
		plans := replicas[m]
		for rep := 0; rep < max(1, len(plans)); rep++ {
			var plan *server.FaultPlan
			if rep < len(plans) {
				plan = plans[rep]
			}
			s, err := server.LoadSnapshotFile(path, server.Options{Searchers: 2, Faults: plan, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			d.servers = append(d.servers, s)
			addrs = append(addrs, s.Addr().String())
		}
		d.addrs = append(d.addrs, addrs)
	}
	return d
}

func (d *deployment) queries(rng *rand.Rand, nq, bits, flips int) []bitvec.Code {
	out := make([]bitvec.Code, nq)
	for i := range out {
		q := d.codes[rng.Intn(len(d.codes))].Clone()
		for f := 0; f < rng.Intn(flips+1); f++ {
			q.FlipBit(rng.Intn(bits))
		}
		out[i] = q
	}
	return out
}

// TestRouterMatchesOracleAcrossShards is the subsystem's acceptance test:
// results from a Router over multiple shard servers — one replica
// fault-injected to fail its first request — must be identical to a single
// in-process Searcher over all the data.
func TestRouterMatchesOracleAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const bits, parts, h = 32, 3, 3
	// Shard 0 has two replicas; the first fails its first search request
	// and drops the connection on its second, so the router must retry on
	// to the healthy replica.
	faulty := server.NewFaultPlan().FailRequest(0).DropRequest(1)
	d := buildDeployment(t, rng, 1200, bits, parts, map[int][]*server.FaultPlan{
		0: {faulty, nil},
	})
	// Affinity "none" pins the first shard request to replica 0, so the
	// fault plan is guaranteed to fire; rendezvous order depends on the
	// replicas' ephemeral ports.
	r, err := Dial(d.addrs, Options{MaxAttempts: 3, Backoff: time.Millisecond, Affinity: "none"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	queries := d.queries(rng, 120, bits, h)
	got, err := r.SearchBatch(queries, h)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := append([]int(nil), d.oracle.Search(q, h)...)
		sort.Ints(want)
		if len(want) == 0 {
			want = nil
		}
		if !equalInts(got[i], want) {
			t.Fatalf("query %d: router %v, oracle %v", i, got[i], want)
		}
	}

	// Top-k across shards must match the oracle exactly, ties included.
	ids, dists, err := r.TopK(queries[:30], 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries[:30] {
		wantIDs, wantDists := d.oracle.TopK(q, 9)
		if !equalInts(ids[i], wantIDs) || !equalInts(dists[i], wantDists) {
			t.Fatalf("topk query %d: router (%v,%v), oracle (%v,%v)", i, ids[i], dists[i], wantIDs, wantDists)
		}
	}

	st := r.Stats()
	if st.Retries == 0 {
		t.Fatalf("fault-injected replica provoked no retries: %+v", st)
	}
	if st.QueriesPruned == 0 {
		t.Fatalf("Gray-range routing pruned nothing across %d shards: %+v", parts, st)
	}
	// The injected faults must be visible in the faulty shard's counters.
	found := false
	for _, s := range d.servers {
		if s.Stats().FaultsInjected > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no server recorded injected faults")
	}
}

// TestRouterSingleReplicaRetriesSameServer: with one replica per shard the
// retry loop must come back to the same address and succeed once the fault
// budget is spent.
func TestRouterSingleReplicaRetriesSameServer(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const bits, parts, h = 16, 2, 2
	d := buildDeployment(t, rng, 300, bits, parts, map[int][]*server.FaultPlan{
		0: {server.NewFaultPlan().FailRequest(0)},
		1: {server.NewFaultPlan().DropRequest(0)},
	})
	r, err := Dial(d.addrs, Options{MaxAttempts: 4, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	queries := d.queries(rng, 40, bits, h)
	got, err := r.SearchBatch(queries, h)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := append([]int(nil), d.oracle.Search(q, h)...)
		sort.Ints(want)
		if len(want) == 0 {
			want = nil
		}
		if !equalInts(got[i], want) {
			t.Fatalf("query %d: router %v, oracle %v", i, got[i], want)
		}
	}
}

// TestRouterHedgingAbsorbsStraggler: a delayed first replica should lose
// the race to the hedge on the second, well before the delay elapses.
func TestRouterHedgingAbsorbsStraggler(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const bits, parts, h = 16, 2, 2
	// Every early request to shard 0's primary stalls 2s.
	stall := server.NewFaultPlan()
	for req := int64(0); req < 64; req++ {
		stall.DelayRequest(req, 2*time.Second)
	}
	d := buildDeployment(t, rng, 300, bits, parts, map[int][]*server.FaultPlan{
		0: {stall, nil},
	})
	// Affinity "none" makes the stalled replica the hedge primary
	// deterministically; rendezvous might rank the healthy one first.
	r, err := Dial(d.addrs, Options{HedgeAfter: 5 * time.Millisecond, Backoff: time.Millisecond, Affinity: "none"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	queries := d.queries(rng, 20, bits, h)
	t0 := time.Now()
	got, err := r.SearchBatch(queries, h)
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("hedging did not absorb the straggler: batch took %v", took)
	}
	for i, q := range queries {
		want := append([]int(nil), d.oracle.Search(q, h)...)
		sort.Ints(want)
		if len(want) == 0 {
			want = nil
		}
		if !equalInts(got[i], want) {
			t.Fatalf("query %d: router %v, oracle %v", i, got[i], want)
		}
	}
	st := r.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("straggler provoked no hedge wins: %+v", st)
	}
	// Every hedge win leaves a losing leg behind; the router must abort and
	// account for it rather than letting it camp on the pooled connection.
	if st.HedgeLosses == 0 {
		t.Fatalf("hedge wins recorded but no losses drained: %+v", st)
	}
}

// fetchObs pulls and decodes a debug endpoint's registry snapshot.
func fetchObs(t *testing.T, addr net.Addr) obs.RegistrySnapshot {
	t.Helper()
	resp, err := http.Get("http://" + addr.String() + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestObservabilityAcceptance drives the router against a fault-injected
// deployment with the servers' debug endpoints up, then checks that the
// client and server registries tell one consistent story: the client
// retried, the servers injected faults, and every search attempt the client
// issued is accounted for in the servers' request counters.
func TestObservabilityAcceptance(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const bits, parts, h = 16, 2, 2
	// Shard 0's only replica rejects its first two requests with injected
	// failures, so the router must retry into the same server.
	d := buildDeployment(t, rng, 400, bits, parts, map[int][]*server.FaultPlan{
		0: {server.NewFaultPlan().FailRequest(0).FailRequest(1)},
	})
	var debugAddrs []net.Addr
	for _, s := range d.servers {
		a, err := s.StartDebug("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		debugAddrs = append(debugAddrs, a)
	}
	r, err := Dial(d.addrs, Options{MaxAttempts: 4, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	queries := d.queries(rng, 60, bits, h)
	if _, err := r.SearchBatch(queries, h); err != nil {
		t.Fatal(err)
	}

	var serverRequests, serverFaults, serverSearchNs int64
	for _, a := range debugAddrs {
		snap := fetchObs(t, a)
		serverRequests += snap.Counters["requests"]
		serverFaults += snap.Counters["faults_injected"]
		serverSearchNs += snap.Histograms["req.search_ns"].Count
	}
	st := r.Stats()
	if st.Retries == 0 {
		t.Fatalf("fault plan provoked no client retries: %+v", st)
	}
	if st.BackoffWait <= 0 {
		t.Fatalf("retries recorded but no backoff wait accumulated: %+v", st)
	}
	if serverFaults == 0 {
		t.Fatal("debug endpoints report no injected faults")
	}
	// Consistency across the two registries: without hedging, every client
	// attempt (first tries plus retries) reached a server and was counted
	// there, fault-rejected or not.
	attempts := st.ShardRequests + st.Retries
	if serverRequests != attempts {
		t.Fatalf("servers counted %d requests, client issued %d attempts: %+v", serverRequests, attempts, st)
	}
	snap := r.Snapshot()
	if snap.Attempt.Count != attempts {
		t.Fatalf("client attempt histogram has %d samples, want %d", snap.Attempt.Count, attempts)
	}
	if snap.Attempt.P50 <= 0 || snap.Attempt.P95 < snap.Attempt.P50 || snap.Attempt.Max < snap.Attempt.P95 {
		t.Fatalf("attempt percentiles not monotone: %+v", snap.Attempt)
	}
	if len(snap.PerShard) != parts {
		t.Fatalf("PerShard has %d entries, want %d", len(snap.PerShard), parts)
	}
	var perShard int64
	for _, hs := range snap.PerShard {
		perShard += hs.Count
	}
	if perShard != attempts {
		t.Fatalf("per-shard histograms hold %d samples, want %d", perShard, attempts)
	}
	// The client registry mirrors the Stats counters.
	creg := r.Obs().Snapshot()
	if creg.Counters["retries"] != st.Retries || creg.Counters["shard_requests"] != st.ShardRequests {
		t.Fatalf("client registry %v disagrees with Stats %+v", creg.Counters, st)
	}
	// Only successfully answered searches land in the servers' latency
	// histograms; the fault-rejected attempts must not.
	if want := serverRequests - serverFaults; serverSearchNs != want {
		t.Fatalf("servers' search histograms hold %d samples, want %d", serverSearchNs, want)
	}
	// The SearchBatch trace made it into the tracer ring with real spans.
	slowest := r.Tracer().Slowest()
	if slowest == nil {
		t.Fatal("tracer kept no SearchBatch trace")
	}
	if spans := slowest.Spans(); len(spans) < 3 { // root + route + ≥1 shard span
		t.Fatalf("slowest trace has only %d spans: %v", len(spans), spans)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRouterEnginesMatchOracle is the multi-engine acceptance test: one
// deployment with every shard serving -engine auto, queried through the
// planner's choice and through each forced engine in turn — every routing
// must return exactly the single-index oracle's ids. The per-engine
// decision counters and latency histograms must surface at /debug/obs.
func TestRouterEnginesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const bits, parts, h = 32, 3, 4
	d := buildDeploymentEngine(t, rng, 1500, bits, parts, nil, "auto")
	queries := d.queries(rng, 40, bits, h)
	want := make([][]int, len(queries))
	for i, q := range queries {
		want[i] = append([]int(nil), d.oracle.Search(q, h)...)
		sort.Ints(want[i])
		if len(want[i]) == 0 {
			want[i] = nil
		}
	}
	for _, engine := range []string{"auto", "ha", "mih", "scan"} {
		r, err := Dial(d.addrs, Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.SearchBatch(queries, h)
		r.Close()
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		for i := range queries {
			if !equalInts(got[i], want[i]) {
				t.Fatalf("engine %s query %d: router %v, oracle %v", engine, i, got[i], want[i])
			}
		}
	}

	// Unknown engine names are rejected at Dial.
	if _, err := Dial(d.addrs, Options{Engine: "warp"}); err == nil {
		t.Fatal("bad engine name accepted")
	}

	// Every server routed requests; the strategy counters and per-engine
	// latency histograms must be populated across the deployment.
	var routed int64
	engineSamples := map[string]int64{}
	for _, s := range d.servers {
		a, err := s.StartDebug("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		snap := fetchObs(t, a)
		for _, name := range []string{"ha", "mih", "scan"} {
			routed += snap.Counters["planner."+name]
			engineSamples[name] += snap.Histograms["engine."+name+"_ns"].Count
		}
	}
	if routed == 0 {
		t.Fatal("no planner decisions counted across the deployment")
	}
	for _, name := range []string{"ha", "mih", "scan"} {
		if engineSamples[name] == 0 {
			t.Fatalf("engine.%s_ns histograms empty across the deployment", name)
		}
	}
}
