package client

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/histo"
	"haindex/internal/lsm"
	"haindex/internal/server"
	"haindex/internal/wire"
)

// mutableDeployment is an in-process multi-shard mutable serving stack:
// every shard is an lsm.Shard behind server.NewMutable, fronted by a Router.
type mutableDeployment struct {
	pivots  []bitvec.Code
	shards  []*lsm.Shard
	servers []*server.Server
	router  *Router
}

func buildMutableDeployment(t *testing.T, rng *rand.Rand, bits, parts int, seed map[int]bitvec.Code, memtableMax int) *mutableDeployment {
	t.Helper()
	return buildMutableDeploymentOpts(t, rng, bits, parts, seed, memtableMax, server.Options{Searchers: 2}, Options{})
}

func buildMutableDeploymentOpts(t *testing.T, rng *rand.Rand, bits, parts int, seed map[int]bitvec.Code, memtableMax int, sopts server.Options, ropts Options) *mutableDeployment {
	t.Helper()
	sample := make([]bitvec.Code, 0, len(seed))
	for _, c := range seed {
		sample = append(sample, c)
	}
	pivots := histo.Pivots(sample, parts)
	d := &mutableDeployment{pivots: pivots}
	var addrs [][]string
	for m := 0; m < parts; m++ {
		sh := lsm.New(bits, lsm.Options{
			Index:       core.Options{Window: 8, BufferMax: 16},
			MemtableMax: memtableMax,
			CompactAt:   2,
		})
		var codes []bitvec.Code
		var ids []int
		for id, c := range seed {
			if histo.PartitionID(pivots, c) == m {
				ids = append(ids, id)
				codes = append(codes, c)
			}
		}
		if len(codes) > 0 {
			if err := sh.Bootstrap(core.BuildDynamic(codes, ids, core.Options{Window: 8})); err != nil {
				t.Fatal(err)
			}
		}
		meta := wire.SnapshotMeta{Part: m, Parts: parts, Length: bits, Pivots: pivots}
		s, err := server.NewMutable(meta, sh, sopts)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		d.shards = append(d.shards, sh)
		d.servers = append(d.servers, s)
		addrs = append(addrs, []string{s.Addr().String()})
	}
	r, err := Dial(addrs, ropts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	d.router = r
	return d
}

func bruteSearch(o map[int]bitvec.Code, q bitvec.Code, h int) []int {
	var out []int
	for id, c := range o {
		if _, ok := q.DistanceWithin(c, h); ok {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

func checkDeployment(t *testing.T, d *mutableDeployment, o map[int]bitvec.Code, rng *rand.Rand, bits, h, queries int) {
	t.Helper()
	qs := make([]bitvec.Code, queries)
	for i := range qs {
		qs[i] = bitvec.Rand(rng, bits)
		if len(o) > 0 && rng.Intn(3) > 0 {
			for id := range o {
				qs[i] = o[id].Clone()
				break
			}
			for f := 0; f < rng.Intn(4); f++ {
				qs[i].FlipBit(rng.Intn(bits))
			}
		}
	}
	got, err := d.router.SearchBatch(qs, h)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want := bruteSearch(o, q, h)
		if !equalInts(got[i], want) {
			t.Fatalf("query %d: got %v want %v", i, got[i], want)
		}
	}
	// Top-k with global (distance, id) order.
	k := 1 + rng.Intn(8)
	ids, dists, err := d.router.TopK(qs[:1], k)
	if err != nil {
		t.Fatal(err)
	}
	type cand struct{ id, d int }
	var cands []cand
	for id, c := range o {
		dd, _ := qs[0].DistanceWithin(c, bits)
		cands = append(cands, cand{id, dd})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	if len(ids[0]) != len(cands) {
		t.Fatalf("topk: got %v want %v", ids[0], cands)
	}
	for i := range cands {
		if ids[0][i] != cands[i].id || dists[0][i] != cands[i].d {
			t.Fatalf("topk[%d]: got (%d,%d) want (%d,%d)", i, ids[0][i], dists[0][i], cands[i].id, cands[i].d)
		}
	}
}

func clusteredAround(rng *rand.Rand, base bitvec.Code, bits, flips int) bitvec.Code {
	c := base.Clone()
	for f := 0; f < rng.Intn(flips+1); f++ {
		c.FlipBit(8 + rng.Intn(bits-8))
	}
	return c
}

// TestMutableDeploymentMatchesOracle is the serving-tier acceptance test:
// a sharded mutable deployment under inserts, upserts (including ones whose
// new code moves to a different partition), deletes, seals, and compactions
// must answer searches and top-k byte-identically to a brute-force oracle.
func TestMutableDeploymentMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	const bits, parts, h = 32, 3, 3
	base := bitvec.Rand(rng, bits)
	o := map[int]bitvec.Code{}
	for id := 0; id < 150; id++ {
		o[id] = clusteredAround(rng, base, bits, 9)
	}
	seed := make(map[int]bitvec.Code, len(o))
	for id, c := range o {
		seed[id] = c
	}
	d := buildMutableDeployment(t, rng, bits, parts, seed, -1)
	checkDeployment(t, d, o, rng, bits, h, 20)

	// Fresh inserts through the router.
	var ids []int
	var codes []bitvec.Code
	for id := 150; id < 260; id++ {
		c := clusteredAround(rng, base, bits, 9)
		ids = append(ids, id)
		codes = append(codes, c)
		o[id] = c
	}
	replaced, err := d.router.Insert(ids, codes)
	if err != nil {
		t.Fatal(err)
	}
	if replaced != 0 {
		t.Fatalf("fresh inserts reported %d replaced", replaced)
	}
	checkDeployment(t, d, o, rng, bits, h, 20)

	// Upserts: rewrite 40 existing ids with fresh random codes — most will
	// land in a different Gray partition, exercising the cross-shard retire.
	ids, codes = nil, nil
	for id := 0; id < 40; id++ {
		c := bitvec.Rand(rng, bits)
		ids = append(ids, id)
		codes = append(codes, c)
		o[id] = c
	}
	if replaced, err = d.router.Insert(ids, codes); err != nil {
		t.Fatal(err)
	}
	if replaced != 40 {
		t.Fatalf("upserts of 40 live ids reported %d replaced", replaced)
	}
	checkDeployment(t, d, o, rng, bits, h, 20)
	if total := deploymentLen(d); total != len(o) {
		t.Fatalf("deployment holds %d tuples, oracle %d — an upsert left a duplicate", total, len(o))
	}

	// Seal everything into segments, then delete through the frozen layer.
	if _, err := d.router.Seal(false); err != nil {
		t.Fatal(err)
	}
	ids = nil
	for id := 50; id < 90; id++ {
		ids = append(ids, id)
		delete(o, id)
	}
	deleted, err := d.router.Delete(ids)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 40 {
		t.Fatalf("deleted %d of 40 live ids", deleted)
	}
	if deleted, err = d.router.Delete(ids); err != nil {
		t.Fatal(err)
	}
	if deleted != 0 {
		t.Fatalf("re-delete of dead ids reported %d deleted", deleted)
	}
	checkDeployment(t, d, o, rng, bits, h, 20)

	// Compact: tombstones fold away, answers unchanged.
	seals, err := d.router.Seal(true)
	if err != nil {
		t.Fatal(err)
	}
	for m, sok := range seals {
		if sok.Tombstones != 0 {
			t.Fatalf("shard %d: compaction left %d tombstones", m, sok.Tombstones)
		}
		if sok.MemtableSize != 0 {
			t.Fatalf("shard %d: seal left %d memtable entries", m, sok.MemtableSize)
		}
	}
	checkDeployment(t, d, o, rng, bits, h, 25)
}

func deploymentLen(d *mutableDeployment) int {
	total := 0
	for _, sh := range d.shards {
		total += sh.Len()
	}
	return total
}

// TestMutableDeploymentConcurrentChurn hammers a mutable deployment with a
// router-driven mutator while concurrent router searches run, background
// seals and compactions firing off the small memtable bound. Stable ids are
// never mutated and must appear in every search whose radius demands them;
// after quiescing, answers must match the oracle exactly. Run under -race.
func TestMutableDeploymentConcurrentChurn(t *testing.T) {
	runConcurrentChurn(t, false)
}

// TestMutableDeploymentConcurrentChurnCached is the same churn oracle with
// both result-cache tiers enabled — the server's qcache keyed on the LSM
// mutation version and the router's keyed on its mutation generations. The
// invariants do not weaken: cached answers must never be stale.
func TestMutableDeploymentConcurrentChurnCached(t *testing.T) {
	runConcurrentChurn(t, true)
}

func runConcurrentChurn(t *testing.T, cached bool) {
	rng := rand.New(rand.NewSource(707))
	const bits, parts, h = 32, 2, 3
	base := bitvec.Rand(rng, bits)
	o := map[int]bitvec.Code{}
	stable := make([]bitvec.Code, 60)
	for id := range stable {
		stable[id] = clusteredAround(rng, base, bits, 9)
		o[id] = stable[id]
	}
	sopts := server.Options{Searchers: 2}
	ropts := Options{}
	if cached {
		sopts.CacheEntries = 4096
		ropts.CacheEntries = 4096
		ropts.CachePartials = true
	}
	d := buildMutableDeploymentOpts(t, rng, bits, parts, o, 32, sopts, ropts)

	var oMu sync.Mutex
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		mrng := rand.New(rand.NewSource(808))
		next := 1000
		var live []int
		for i := 0; i < 300; i++ {
			if len(live) == 0 || mrng.Intn(3) > 0 {
				c := clusteredAround(mrng, base, bits, 9)
				id := next
				next++
				oMu.Lock()
				_, err := d.router.Insert([]int{id}, []bitvec.Code{c})
				if err == nil {
					o[id] = c
					live = append(live, id)
				}
				oMu.Unlock()
				if err != nil {
					errs <- fmt.Errorf("insert: %w", err)
					return
				}
			} else {
				k := mrng.Intn(len(live))
				id := live[k]
				live = append(live[:k], live[k+1:]...)
				oMu.Lock()
				_, err := d.router.Delete([]int{id})
				if err == nil {
					delete(o, id)
				}
				oMu.Unlock()
				if err != nil {
					errs <- fmt.Errorf("delete: %w", err)
					return
				}
			}
			if i%100 == 50 {
				if _, err := d.router.Seal(i%200 == 50); err != nil {
					errs <- fmt.Errorf("seal: %w", err)
					return
				}
			}
		}
	}()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := stable[srng.Intn(len(stable))].Clone()
				for f := 0; f < srng.Intn(3); f++ {
					q.FlipBit(srng.Intn(bits))
				}
				got, err := d.router.Search(q, h)
				if err != nil {
					errs <- fmt.Errorf("search: %w", err)
					return
				}
				have := map[int]bool{}
				for _, id := range got {
					if have[id] {
						errs <- fmt.Errorf("duplicate id %d in result", id)
						return
					}
					have[id] = true
				}
				for id, c := range stable {
					if _, ok := q.DistanceWithin(c, h); ok && !have[id] {
						errs <- fmt.Errorf("stable id %d missing at h=%d", id, h)
						return
					}
				}
			}
		}(int64(900 + w))
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := d.router.Seal(true); err != nil {
		t.Fatal(err)
	}
	checkDeployment(t, d, o, rng, bits, h, 25)
	if cached {
		// The oracle holding is only meaningful if the caches actually
		// served traffic during the churn.
		hits := d.router.Obs().Counter("qcache.hits").Value()
		for _, s := range d.servers {
			hits += s.Obs().Counter("qcache.hits").Value()
		}
		if hits == 0 {
			t.Fatal("cached churn run never hit a cache — the test is vacuous")
		}
	}
}

// TestMutableServerRefusesMutationsWhenImmutable pins the failure mode: an
// immutable server must answer v3 mutation frames with an error, not
// corrupt state or hang.
func TestMutableServerRefusesMutationsWhenImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	codes := make([]bitvec.Code, 50)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 32)
	}
	pivots := histo.Pivots(codes, 1)
	meta := wire.SnapshotMeta{Part: 0, Parts: 1, Length: 32, Pivots: pivots}
	s, err := server.New(meta, core.BuildDynamic(codes, nil, core.Options{}), server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := Dial([][]string{{s.Addr().String()}}, Options{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Insert([]int{1}, []bitvec.Code{codes[0]}); err == nil {
		t.Fatal("insert against immutable shard succeeded")
	}
	// The connection must survive the refusal: searches still work.
	if _, err := r.Search(codes[0], 0); err != nil {
		t.Fatalf("search after refused mutation: %v", err)
	}
}
