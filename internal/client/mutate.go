package client

import (
	"fmt"
	"sync"

	"haindex/internal/bitvec"
	"haindex/internal/histo"
	"haindex/internal/obs"
	"haindex/internal/wire"
)

// The mutation side of the router, for deployments whose shards serve a
// mutable LSM tier (haserve -mutable). Requires sessions negotiated at
// protocol version 3; against older or immutable shards the server's error
// frame surfaces through the normal retry path.

// invalidateCaches bumps the deployment-wide mutation generation after a
// mutation was issued, making every merged result-cache entry filled before
// it unreachable. It is called whether or not the mutation fully succeeded —
// some shards may have applied their part, and over-invalidation only costs
// misses. Bumping after (not before) issuing keeps racing lookups
// linearizable: a fill at the old generation can only be read by a lookup
// that also started before the mutation completed.
func (r *Router) invalidateCaches() {
	r.depGen.Add(1)
}

// bumpShard invalidates one shard's partial-result entries. Mutations call
// it only for shards whose result set actually changed — a broadcast delete
// that found nothing to delete leaves the shard's partials valid, which is
// what makes CachePartials worth having: an insert landing on shard 1
// does not evict the partials of shard 0.
func (r *Router) bumpShard(m int) {
	if m < len(r.shardGens) {
		r.shardGens[m].Add(1)
	}
}

// Insert applies a batch of upserts across the deployment. Each (id, code)
// pair is routed to the shard owning the code's Gray partition — the same
// pivot routing the build used, so mutations land where a future search
// will look. The ids are also broadcast as deletes to every other shard: an
// upsert that moves an id across a partition boundary (its code changed
// ranges) must retire the old copy wherever it lives, leaving exactly one
// live version deployment-wide. It returns how many pairs superseded an
// older live version.
func (r *Router) Insert(ids []int, codes []bitvec.Code) (int, error) {
	if len(ids) != len(codes) {
		return 0, fmt.Errorf("client: %d ids but %d codes", len(ids), len(codes))
	}
	if err := r.checkQueries(codes); err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	ownIDs := make([][]int, len(r.shards))
	ownCodes := make([][]bitvec.Code, len(r.shards))
	for i, c := range codes {
		m := histo.PartitionID(r.pivots, c)
		ownIDs[m] = append(ownIDs[m], ids[i])
		ownCodes[m] = append(ownCodes[m], c)
	}
	replaced := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for m := range r.shards {
		var foreign []int
		for i := range ids {
			if histo.PartitionID(r.pivots, codes[i]) != m {
				foreign = append(foreign, ids[i])
			}
		}
		if len(ownIDs[m]) == 0 && len(foreign) == 0 {
			continue
		}
		wg.Add(1)
		go func(m int, foreign []int) {
			defer wg.Done()
			sh := r.shards[m]
			if len(foreign) > 0 {
				resp, err := r.deleteOn(sh, foreign)
				if err != nil {
					r.bumpShard(m) // state unknown; over-invalidate
					fail(err)
					return
				}
				if resp.Deleted > 0 {
					r.bumpShard(m)
				}
				mu.Lock()
				replaced += resp.Deleted
				mu.Unlock()
			}
			if len(ownIDs[m]) == 0 {
				return
			}
			// The insert lands here whatever the outcome reports; the
			// shard's partials are stale either way.
			defer r.bumpShard(m)
			req := wire.InsertReq{Length: r.length, IDs: ownIDs[m], Codes: ownCodes[m]}
			respType, body, err := r.do(sh, routePrimary, 0, wire.MsgInsert, fixedPayload(req.Append(nil)), nil, obs.NoSpan)
			if err == nil && respType != wire.MsgInsertOK {
				err = fmt.Errorf("client: shard %d answered %s", m, respType)
			}
			var resp wire.InsertResp
			if err == nil {
				resp, err = wire.ParseInsertResp(body)
			}
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			replaced += resp.Replaced
			mu.Unlock()
		}(m, foreign)
	}
	wg.Wait()
	r.invalidateCaches()
	if firstErr != nil {
		return 0, firstErr
	}
	return replaced, nil
}

// Delete removes the tuples with the given ids, wherever they live. Ids are
// broadcast — only codes route, and a delete carries none — and each shard
// quietly skips ids it does not hold. It returns how many ids were live
// somewhere in the deployment.
func (r *Router) Delete(ids []int) (int, error) {
	if len(ids) == 0 {
		return 0, nil
	}
	deleted := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for m := range r.shards {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			resp, err := r.deleteOn(r.shards[m], ids)
			if err != nil || resp.Deleted > 0 {
				r.bumpShard(m)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			deleted += resp.Deleted
		}(m)
	}
	wg.Wait()
	r.invalidateCaches()
	if firstErr != nil {
		return 0, firstErr
	}
	return deleted, nil
}

func (r *Router) deleteOn(sh *shard, ids []int) (wire.DeleteResp, error) {
	respType, body, err := r.do(sh, routePrimary, 0, wire.MsgDelete, fixedPayload(wire.DeleteReq{IDs: ids}.Append(nil)), nil, obs.NoSpan)
	if err == nil && respType != wire.MsgDeleteOK {
		err = fmt.Errorf("client: shard %d answered %s", sh.part, respType)
	}
	if err != nil {
		return wire.DeleteResp{}, err
	}
	return wire.ParseDeleteResp(body)
}

// Seal asks every shard to freeze its memtable into a segment now, and with
// compact set to also compact its segment stack. It returns the per-shard
// layering, indexed by partition id. Since seals are synchronous on the
// server, a returned Seal is a deployment-wide barrier: every previously
// acknowledged mutation is in an immutable segment.
func (r *Router) Seal(compact bool) ([]wire.SealOK, error) {
	out := make([]wire.SealOK, len(r.shards))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	payload := fixedPayload(wire.SealReq{Compact: compact}.Append(nil))
	for m := range r.shards {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			respType, body, err := r.do(r.shards[m], routePrimary, 0, wire.MsgSeal, payload, nil, obs.NoSpan)
			if err == nil && respType != wire.MsgSealOK {
				err = fmt.Errorf("client: shard %d answered %s", m, respType)
			}
			var resp wire.SealOK
			if err == nil {
				resp, err = wire.ParseSealOK(body)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out[m] = resp
		}(m)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
