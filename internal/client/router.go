// Package client is the query-side of the serving subsystem: a Router that
// fans Hamming-select and top-k queries out over the shard servers of a
// Gray-partitioned HA-Index deployment. Routing uses the same pivots the
// shards were built from — learned from the shards' own handshakes — through
// histo.Ranges, so a query only visits shards whose Gray range can contain a
// match within the threshold. Each shard may have several replicas; replica
// selection is cache-aware: rendezvous hashing on the request's packed
// result-cache key (internal/qcache) picks a preferred replica per request,
// so repeated queries land where their answers are already cached, and the
// failover order for retries is the rest of that ranking rather than list
// position. Requests retry across replicas with exponential backoff, an
// optional hedging policy races the best-ranked healthy standby when the
// primary is slow (the serving-layer analogue of the MapReduce runtime's
// speculative execution), and shed-backoff retries steer to the least-loaded
// other replica using the warmth/load signal replicas report in their stats
// (wire protocol v6).
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/histo"
	"haindex/internal/obs"
	"haindex/internal/qcache"
	"haindex/internal/wire"
)

// ErrShed marks a shard request abandoned because the shard kept answering
// MsgShed (it is overloaded) until the request's deadline ran out. Load
// generators match it with errors.Is to count shed traffic apart from
// failures — a shed is the server working as designed, not a fault.
var ErrShed = errors.New("client: request shed by overloaded shard")

// Options configures a Router.
type Options struct {
	// MaxAttempts bounds tries per shard request across replicas (0 = 3).
	MaxAttempts int
	// Backoff is the base sleep before the second attempt; it doubles per
	// subsequent attempt up to MaxBackoff, with equal jitter (the actual
	// sleep is uniform in [b/2, b]) so synchronized clients do not stampede
	// a recovering shard in lockstep (0 = 2ms).
	Backoff time.Duration
	// MaxBackoff caps one backoff sleep regardless of how many attempts
	// have failed (0 = 100ms).
	MaxBackoff time.Duration
	// HedgeAfter launches a speculative duplicate of an in-flight request
	// on the next replica when the first has not answered within this
	// budget; first answer wins and the loser is closed promptly. 0
	// disables hedging; it also stays off for single-replica shards.
	HedgeAfter time.Duration
	// DialTimeout bounds connection establishment (0 = 2s).
	DialTimeout time.Duration
	// Timeout bounds one request round trip on a connection, and also the
	// total wall time of one shard request across retries and backoff
	// sleeps — a few failed attempts can no longer sleep far past it
	// (0 = 30s).
	Timeout time.Duration

	// Engine is the access-path hint attached to every search request: ""
	// or "auto" lets each shard route (its planner or configured mode);
	// "ha", "mih", or "scan" forces that engine on every shard. Forcing
	// requires every shard to speak protocol version 4, and the named
	// engine to be enabled server-side — Dial and the shards enforce the
	// two halves respectively.
	Engine string
	// Priority is the admission class attached to every search request:
	// "" or "normal", "interactive" (2x the server's shed budget), or
	// "batch" (half). It rides protocol version 5; sessions negotiated
	// lower simply omit it from the wire (the server treats them as
	// normal).
	Priority string

	// Affinity selects the replica-routing policy. "" or "rendezvous" (the
	// default) routes each request to the replica that rendezvous hashing
	// of its packed result-cache key prefers, so the same query keeps
	// landing on the same warm cache while distinct queries spread across
	// the replica set. "none" rotates round-robin per shard with no
	// affinity — the naive split, kept for comparison benchmarks and for
	// tests that need a deterministic replica order.
	Affinity string
	// FailureCooldown is how long a replica that failed an attempt at the
	// transport level (dial refused, connection dropped) is demoted to the
	// tail of the rendezvous ranking, so fresh requests, failovers, and
	// hedges prefer standbys believed healthy (0 = 500ms).
	FailureCooldown time.Duration

	// CacheEntries, when positive, gives the router a client-side result
	// cache (internal/qcache) of merged whole-deployment answers, bounded
	// to that many entries. Entries are keyed on a router-local mutation
	// generation bumped by Insert/Delete, so the cache is only coherent
	// when every mutation to the deployment flows through this router —
	// the single-writer setup the load harness uses. 0 disables.
	CacheEntries int
	// CachePartials additionally caches per-shard partial results (keyed
	// per shard on its own generation), so a query that misses the merged
	// cache can still skip the shards it has fresh partials for. Only
	// meaningful with CacheEntries > 0.
	CachePartials bool

	// Obs, when set, is the registry the router hangs its counters and
	// per-attempt latency histograms on; nil gives the router a private one
	// (reachable via Router.Obs).
	Obs *obs.Registry
	// TraceCapacity sizes the ring of recent SearchBatch traces kept for
	// haquery -trace (0 = 16).
	TraceCapacity int
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 2 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 100 * time.Millisecond
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.TraceCapacity <= 0 {
		o.TraceCapacity = 16
	}
	if o.FailureCooldown <= 0 {
		o.FailureCooldown = 500 * time.Millisecond
	}
	return o
}

// Stats counts the router's fan-out and failure handling since creation.
type Stats struct {
	// ShardRequests is how many shard round trips were issued (excluding
	// hedges and retries).
	ShardRequests int64
	// QueriesRouted and QueriesPruned split query×shard pairs into sent vs
	// skipped by the Gray-range lower bound.
	QueriesRouted int64
	QueriesPruned int64
	// Retries counts failed attempts that were retried on another replica
	// (or the same one, for single-replica shards).
	Retries int64
	// Sheds counts MsgShed answers received. A shed is retried after a
	// backoff and does not count as a failed attempt or a retry — the
	// shard is healthy, just saturated. Steers counts the shed retries
	// that moved to a less-loaded sibling replica instead of returning to
	// the one that shed.
	Sheds  int64
	Steers int64
	// Hedges counts speculative duplicates launched; HedgeWins how many
	// answered before the primary; HedgeLosses how many legs lost the race
	// and were drained/closed (their work is the serving-layer analogue of
	// the MapReduce runtime's WastedBytes).
	Hedges      int64
	HedgeWins   int64
	HedgeLosses int64
	// BackoffWait is the total wall time spent sleeping between retry
	// attempts.
	BackoffWait time.Duration
}

// Snapshot extends Stats with the latency distributions the counters can't
// show: per-attempt round-trip percentiles, overall and per shard.
type Snapshot struct {
	Stats
	// Attempt summarizes every round-trip attempt the router issued
	// (including hedges and retries).
	Attempt obs.HistSummary
	// PerShard holds one attempt-latency summary per partition id.
	PerShard []obs.HistSummary
}

// Router fans queries across the shards of one deployment. Safe for
// concurrent use.
type Router struct {
	opts     Options
	engine   int // wire engine hint attached to every SearchReq
	priority int // wire admission class attached to every SearchReq
	length   int
	pivots   []bitvec.Code
	ranges   *histo.Ranges
	shards   []*shard // indexed by partition id

	// cache, when non-nil, holds merged (and optionally per-shard partial)
	// search results. depGen is the deployment-wide mutation generation the
	// merged entries are keyed on; shardGens (indexed by partition) key the
	// partials. Insert and Delete bump them after the mutation is
	// acknowledged, making every pre-mutation entry unreachable.
	cache     *qcache.Cache
	depGen    atomic.Uint64
	shardGens []atomic.Uint64

	shardRequests atomic.Int64
	queriesRouted atomic.Int64
	queriesPruned atomic.Int64
	retries       atomic.Int64
	sheds         atomic.Int64
	steers        atomic.Int64
	hedges        atomic.Int64
	hedgeWins     atomic.Int64
	hedgeLosses   atomic.Int64
	backoffWait   atomic.Int64 // nanoseconds

	// Observability: per-attempt latency histograms (overall and per
	// shard), retry/hedge counters mirrored into the registry, and a ring
	// of recent SearchBatch traces.
	reg            *obs.Registry
	tracer         *obs.Tracer
	histAttempt    *obs.Histogram
	histShard      []*obs.Histogram // indexed by partition id
	cntRequests    *obs.Counter
	cntRetries     *obs.Counter
	cntSheds       *obs.Counter
	cntSteers      *obs.Counter
	cntHedges      *obs.Counter
	cntHedgeWins   *obs.Counter
	cntHedgeLosses *obs.Counter

	// Test seams: the retry loop tells time and sleeps through these so a
	// fake clock can pin down the backoff bounds deterministically.
	now        func() time.Time
	sleep      func(time.Duration)
	randInt63n func(int64) int64
}

// shard is one partition's replica set.
type shard struct {
	part     int
	replicas []*replica
	// rrSeq rotates zero-affinity and Affinity-"none" requests across the
	// replica set so they spread instead of pinning replica 0.
	rrSeq atomic.Uint64
}

// replica is one server address with at most one pooled connection; the
// mutex serializes the request/response conversation on it.
type replica struct {
	addr string
	opts Options

	// rank caches the replica's rendezvous identity (a hash of its
	// address, never 0); lazily computed so hand-built test replicas work.
	rank atomic.Uint64

	// Health and load signals, written off the connection mutex so routing
	// never blocks on an in-flight request. failUntil/shedUntil are unix
	// nanos: until then the replica is demoted (transport failure) or
	// known saturated (it answered MsgShed). ewmaNs tracks attempt
	// round-trip latency; the warm* fields mirror the replica's last
	// StatsResp warmth block (wire protocol v6), recorded opportunistically
	// whenever a stats response passes through the router.
	failUntil   atomic.Int64
	shedUntil   atomic.Int64
	ewmaNs      atomic.Int64
	warmEntries atomic.Int64
	warmHits    atomic.Int64
	warmMisses  atomic.Int64
	warmAdmNs   atomic.Int64
	warmIdle    atomic.Int64
	warmAt      atomic.Int64 // unix nanos of the last warmth refresh

	mu    sync.Mutex
	conn  net.Conn
	br    *bufio.Reader
	hello wire.HelloOK
}

// rendezvousRank returns the replica's fixed rendezvous identity.
func (rp *replica) rendezvousRank() uint64 {
	if v := rp.rank.Load(); v != 0 {
		return v
	}
	v := qcache.Hash([]byte(rp.addr)) | 1 // 0 is the "uncomputed" sentinel
	rp.rank.Store(v)
	return v
}

// recordWarmth folds one StatsResp into the replica's steering state.
func (rp *replica) recordWarmth(st wire.StatsResp, now time.Time) {
	rp.warmEntries.Store(st.CacheEntries)
	rp.warmHits.Store(st.CacheHits)
	rp.warmMisses.Store(st.CacheMisses)
	rp.warmAdmNs.Store(st.AdmissionP50Ns)
	rp.warmIdle.Store(st.PoolIdle)
	rp.warmAt.Store(now.UnixNano())
}

// loadScore is the replica's steering cost: lower is better. Transport
// failure and a recent shed dominate; within a health class the reported
// admission-wait median plus the observed attempt-latency EWMA order the
// candidates, so a drowning replica loses to an idle one even before it
// sheds.
func (rp *replica) loadScore(now int64) (badness int, load int64) {
	if rp.failUntil.Load() > now {
		badness += 2
	}
	if rp.shedUntil.Load() > now {
		badness++
	}
	return badness, rp.warmAdmNs.Load() + rp.ewmaNs.Load()
}

// mix64 is the splitmix64 finalizer — the rendezvous score mixer combining
// a request's affinity with a replica's rank.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Dial connects to a deployment. shardAddrs lists, per shard, the addresses
// of its replicas (all replicas of a shard serve the same partition
// snapshot). The router handshakes one replica per shard, learns the pivot
// list and partition layout from the shards themselves, and verifies the
// deployment is consistent: every partition served exactly once, by shards
// agreeing on code length and pivots.
func Dial(shardAddrs [][]string, opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(shardAddrs) == 0 {
		return nil, fmt.Errorf("client: no shards")
	}
	engine, err := wire.ParseEngine(opts.Engine)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	priority, err := wire.ParsePriority(opts.Priority)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	switch opts.Affinity {
	case "", "rendezvous", "none":
	default:
		return nil, fmt.Errorf("client: unknown affinity policy %q (want rendezvous or none)", opts.Affinity)
	}
	r := &Router{
		opts:       opts,
		engine:     engine,
		priority:   priority,
		shards:     make([]*shard, len(shardAddrs)),
		shardGens:  make([]atomic.Uint64, len(shardAddrs)),
		reg:        opts.Obs,
		tracer:     obs.NewTracer(opts.TraceCapacity),
		now:        time.Now,
		sleep:      time.Sleep,
		randInt63n: rand.Int63n,
	}
	if r.reg == nil {
		r.reg = obs.NewRegistry()
	}
	if opts.CacheEntries > 0 {
		r.cache = qcache.New(qcache.Options{MaxEntries: opts.CacheEntries, Obs: r.reg})
	}
	r.histAttempt = r.reg.Histogram("attempt_ns")
	r.histShard = make([]*obs.Histogram, len(shardAddrs))
	for m := range r.histShard {
		r.histShard[m] = r.reg.Histogram(fmt.Sprintf("shard%02d.attempt_ns", m))
	}
	r.cntRequests = r.reg.Counter("shard_requests")
	r.cntRetries = r.reg.Counter("retries")
	r.cntSheds = r.reg.Counter("sheds")
	r.cntSteers = r.reg.Counter("steers")
	r.cntHedges = r.reg.Counter("hedges")
	r.cntHedgeWins = r.reg.Counter("hedge_wins")
	r.cntHedgeLosses = r.reg.Counter("hedge_losses")
	seen := make(map[int]string)
	for i, addrs := range shardAddrs {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("client: shard %d has no replicas", i)
		}
		sh := &shard{part: -1}
		for _, addr := range addrs {
			sh.replicas = append(sh.replicas, &replica{addr: addr, opts: opts})
		}
		var hello wire.HelloOK
		var err error
		for _, rp := range sh.replicas {
			if hello, err = rp.handshake(); err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("client: shard %d unreachable: %w", i, err)
		}
		if engine != wire.EngineAuto && hello.Version < 4 {
			return nil, fmt.Errorf("client: engine %s needs protocol version 4, shard %d negotiated %d",
				wire.EngineName(engine), i, hello.Version)
		}
		if hello.Parts != len(shardAddrs) {
			return nil, fmt.Errorf("client: shard %d says the deployment has %d partitions, but %d shards were given",
				i, hello.Parts, len(shardAddrs))
		}
		if prev, dup := seen[hello.Part]; dup {
			return nil, fmt.Errorf("client: partition %d served by both %s and %s", hello.Part, prev, addrs[0])
		}
		seen[hello.Part] = addrs[0]
		sh.part = hello.Part
		if r.pivots == nil {
			r.length = hello.Length
			r.pivots = hello.Pivots
		} else {
			if hello.Length != r.length {
				return nil, fmt.Errorf("client: shard %d serves %d-bit codes, others %d", i, hello.Length, r.length)
			}
			if len(hello.Pivots) != len(r.pivots) {
				return nil, fmt.Errorf("client: shard %d has %d pivots, others %d", i, len(hello.Pivots), len(r.pivots))
			}
			for j := range hello.Pivots {
				if !hello.Pivots[j].Equal(r.pivots[j]) {
					return nil, fmt.Errorf("client: shard %d pivot %d disagrees with the rest of the deployment", i, j)
				}
			}
		}
		r.shards[hello.Part] = sh
	}
	for part, sh := range r.shards {
		if sh == nil {
			return nil, fmt.Errorf("client: partition %d not served by any shard", part)
		}
	}
	r.ranges = histo.NewRanges(r.length, r.pivots)
	return r, nil
}

// Length returns the deployment's code length in bits.
func (r *Router) Length() int { return r.length }

// Parts returns the number of partitions.
func (r *Router) Parts() int { return len(r.shards) }

// Stats returns a snapshot of the router counters.
func (r *Router) Stats() Stats {
	return Stats{
		ShardRequests: r.shardRequests.Load(),
		QueriesRouted: r.queriesRouted.Load(),
		QueriesPruned: r.queriesPruned.Load(),
		Retries:       r.retries.Load(),
		Sheds:         r.sheds.Load(),
		Steers:        r.steers.Load(),
		Hedges:        r.hedges.Load(),
		HedgeWins:     r.hedgeWins.Load(),
		HedgeLosses:   r.hedgeLosses.Load(),
		BackoffWait:   time.Duration(r.backoffWait.Load()),
	}
}

// Snapshot returns Stats plus the attempt-latency distributions, overall and
// per shard.
func (r *Router) Snapshot() Snapshot {
	s := Snapshot{
		Stats:    r.Stats(),
		Attempt:  obs.Summarize(r.histAttempt.Snapshot()),
		PerShard: make([]obs.HistSummary, len(r.histShard)),
	}
	for m, h := range r.histShard {
		s.PerShard[m] = obs.Summarize(h.Snapshot())
	}
	return s
}

// Obs returns the router's metric registry (the one given in Options, or the
// router's private one).
func (r *Router) Obs() *obs.Registry { return r.reg }

// Tracer returns the ring of recent SearchBatch traces; Tracer().Slowest()
// is what haquery -trace prints.
func (r *Router) Tracer() *obs.Tracer { return r.tracer }

// Close closes all pooled connections.
func (r *Router) Close() {
	for _, sh := range r.shards {
		for _, rp := range sh.replicas {
			rp.close()
		}
	}
}

// Search returns the sorted ids of all tuples within Hamming distance h of
// q, across every shard whose Gray range can contain one.
func (r *Router) Search(q bitvec.Code, h int) ([]int, error) {
	res, err := r.SearchBatch([]bitvec.Code{q}, h)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// SearchBatch answers a batch of Hamming-select queries. results[i] holds
// the sorted ids matching queries[i] (nil when none). Shards are visited
// concurrently, each receiving only the queries it can answer.
func (r *Router) SearchBatch(queries []bitvec.Code, h int) ([][]int, error) {
	if err := r.checkQueries(queries); err != nil {
		return nil, err
	}
	if h < 0 || h > r.length {
		return nil, fmt.Errorf("client: threshold %d out of range for %d-bit codes", h, r.length)
	}
	tr := obs.NewTrace("search-batch")
	defer r.tracer.Add(tr)

	results := make([][]int, len(queries))

	// Cache phase: the merged-answer cache finishes whole queries before
	// routing sees them. Generations are read once, before any shard is
	// contacted — a racing mutation then either bumps them (this fill
	// becomes unreachable) or was already acknowledged (the answer is
	// current); see the qcache package docs for the ordering argument.
	var (
		gen      uint64
		sgens    []uint64 // per-shard generations, when partials are on
		fullKeys [][]byte // packed merged-cache key per missed query
		cached   []bool
	)
	if r.cache != nil {
		span := tr.Start("cache", 0)
		gen = r.depGen.Load()
		fullKeys = make([][]byte, len(queries))
		cached = make([]bool, len(queries))
		var kb []byte
		for i, q := range queries {
			kb = qcache.Key{Code: q, H: h, Engine: r.engine, Shard: -1, Epoch: gen}.Append(kb[:0])
			if ids, ok := r.cache.Get(kb); ok {
				if len(ids) > 0 {
					// Copy: callers own the result slices they get back.
					results[i] = append([]int(nil), ids...)
				}
				cached[i] = true
				continue
			}
			fullKeys[i] = append([]byte(nil), kb...)
		}
		if r.opts.CachePartials {
			sgens = make([]uint64, len(r.shards))
			for m := range sgens {
				sgens[m] = r.shardGens[m].Load()
			}
		}
		tr.End(span)
	}

	// Route each remaining query to the shards whose Gray range can hold a
	// match; with partials on, a fresh per-shard entry answers its
	// (query, shard) pair on the spot and that shard is skipped.
	routeSpan := tr.Start("route", 0)
	perShard := make([][]int, len(r.shards))    // query indexes per shard
	partKeys := make([][][]byte, len(r.shards)) // packed partial keys, aligned
	var parts []int
	var kb []byte
	for i, q := range queries {
		if cached != nil && cached[i] {
			continue
		}
		parts = r.ranges.Route(parts[:0], q, h)
		routed := 0
		for _, m := range parts {
			if sgens != nil {
				kb = qcache.Key{Code: q, H: h, Engine: r.engine, Shard: m, Epoch: sgens[m]}.Append(kb[:0])
				if ids, ok := r.cache.Get(kb); ok {
					results[i] = append(results[i], ids...)
					continue
				}
				partKeys[m] = append(partKeys[m], append([]byte(nil), kb...))
			}
			perShard[m] = append(perShard[m], i)
			routed++
		}
		r.queriesRouted.Add(int64(routed))
		r.queriesPruned.Add(int64(len(r.shards) - len(parts)))
	}
	tr.End(routeSpan)

	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for m, qidx := range perShard {
		if len(qidx) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, qidx []int, pkeys [][]byte) {
			defer wg.Done()
			sub := make([]bitvec.Code, len(qidx))
			for j, i := range qidx {
				sub[j] = queries[i]
			}
			shardSpan := tr.Start(fmt.Sprintf("shard%02d (%d queries)", sh.part, len(sub)), 0)
			defer tr.End(shardSpan)
			// The request is encoded per attempt for the replica's
			// negotiated version: engine and priority are trailing varints
			// that older sessions must not see.
			pf := func(version int) []byte {
				return wire.SearchReq{H: h, Engine: r.engine, Priority: r.priority, Queries: sub}.AppendVersion(nil, version)
			}
			respType, payload, err := r.do(sh, routeAffinity, r.affinityOf(sub, h), wire.MsgSearch, pf, tr, shardSpan)
			if err == nil && respType != wire.MsgSearchOK {
				err = fmt.Errorf("client: shard %d answered %s", sh.part, respType)
			}
			var resp wire.SearchResp
			if err == nil {
				resp, err = wire.ParseSearchResp(payload)
			}
			if err == nil && len(resp.IDs) != len(sub) {
				err = fmt.Errorf("client: shard %d answered %d of %d queries", sh.part, len(resp.IDs), len(sub))
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for j, i := range qidx {
				// Partitions are disjoint, so ids from different shards
				// never collide; merging is concatenation.
				results[i] = append(results[i], resp.IDs[j]...)
				if pkeys != nil {
					// The parsed slice is response-owned and read-only from
					// here on; the cache can keep it without a copy.
					r.cache.Put(pkeys[j], resp.IDs[j])
				}
			}
		}(r.shards[m], qidx, partKeys[m])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range results {
		sort.Ints(results[i])
	}
	// Fill the merged cache for the queries that missed it, at the
	// generation read before fan-out. Copies: the caller owns results.
	if r.cache != nil {
		for i, fk := range fullKeys {
			if fk == nil {
				continue
			}
			var cp []int
			if len(results[i]) > 0 {
				cp = append([]int(nil), results[i]...)
			}
			r.cache.Put(fk, cp)
		}
	}
	return results, nil
}

// TopK returns the k nearest ids (with Hamming distances) per query,
// ordered by (distance, id). Every shard is consulted — a k-nearest result
// has no a-priori distance bound to prune with.
func (r *Router) TopK(queries []bitvec.Code, k int) ([][]int, [][]int, error) {
	if err := r.checkQueries(queries); err != nil {
		return nil, nil, err
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("client: k must be positive")
	}
	type shardResp struct {
		resp wire.TopKResp
		err  error
	}
	resps := make([]shardResp, len(r.shards))
	payload := fixedPayload(wire.TopKReq{K: k, Queries: queries}.Append(nil))
	aff := r.affinityOf(queries, k)
	var wg sync.WaitGroup
	for m := range r.shards {
		r.queriesRouted.Add(int64(len(queries)))
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			respType, body, err := r.do(r.shards[m], routeAffinity, aff, wire.MsgTopK, payload, nil, obs.NoSpan)
			if err == nil && respType != wire.MsgTopKOK {
				err = fmt.Errorf("client: shard %d answered %s", m, respType)
			}
			var resp wire.TopKResp
			if err == nil {
				resp, err = wire.ParseTopKResp(body)
			}
			if err == nil && len(resp.IDs) != len(queries) {
				err = fmt.Errorf("client: shard %d answered %d of %d queries", m, len(resp.IDs), len(queries))
			}
			resps[m] = shardResp{resp: resp, err: err}
		}(m)
	}
	wg.Wait()
	for _, sr := range resps {
		if sr.err != nil {
			return nil, nil, sr.err
		}
	}
	// k-way merge per query: shard lists are (distance, id)-ordered, and
	// the global order is the same relation, so a full sort of the
	// concatenation is correct; lists are short (≤ k each).
	ids := make([][]int, len(queries))
	dists := make([][]int, len(queries))
	for i := range queries {
		type pair struct{ d, id int }
		var all []pair
		for _, sr := range resps {
			for j := range sr.resp.IDs[i] {
				all = append(all, pair{d: sr.resp.Dists[i][j], id: sr.resp.IDs[i][j]})
			}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].d != all[b].d {
				return all[a].d < all[b].d
			}
			return all[a].id < all[b].id
		})
		if len(all) > k {
			all = all[:k]
		}
		for _, p := range all {
			ids[i] = append(ids[i], p.id)
			dists[i] = append(dists[i], p.d)
		}
	}
	return ids, dists, nil
}

// ShardStats asks every shard for its serving counters.
func (r *Router) ShardStats() ([]wire.StatsResp, error) {
	out := make([]wire.StatsResp, len(r.shards))
	for m, sh := range r.shards {
		respType, payload, err := r.do(sh, routeRotate, 0, wire.MsgStats, nil, nil, obs.NoSpan)
		if err != nil {
			return nil, err
		}
		if respType != wire.MsgStatsOK {
			return nil, fmt.Errorf("client: shard %d answered %s", m, respType)
		}
		if out[m], err = wire.ParseStatsResp(payload); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *Router) checkQueries(queries []bitvec.Code) error {
	for i, q := range queries {
		if q.Len() != r.length {
			return fmt.Errorf("client: query %d is %d-bit, deployment serves %d-bit codes", i, q.Len(), r.length)
		}
	}
	return nil
}

// payloadFn encodes one request for the protocol version a replica
// negotiated — resolved per attempt, because the version is only known
// after the replica's lazy dial. fixedPayload adapts version-independent
// messages.
type payloadFn func(version int) []byte

func fixedPayload(p []byte) payloadFn { return func(int) []byte { return p } }

// routeMode says how do picks among a shard's replicas.
type routeMode int

const (
	// routeAffinity rendezvous-hashes the request's affinity key against the
	// replica set, so equal requests keep landing on the same warm cache. A
	// zero affinity (empty batch, Affinity "none") degrades to routeRotate.
	routeAffinity routeMode = iota
	// routeRotate round-robins across the shard's replicas — for requests
	// with no cacheable identity (stats) and for the Affinity "none" policy.
	routeRotate
	// routePrimary pins list order: replica 0 first, the rest as failovers.
	// Mutations use it so a replicated deployment's writes keep hitting one
	// replica instead of scattering divergence across the set.
	routePrimary
)

// affinityOf folds a query batch into its rendezvous affinity key: the XOR
// of qcache.Hash over each query's packed result-cache key (shard -1, epoch
// 0 — the deployment-position-independent core), so the affinity is
// order-insensitive across the batch and agrees with the key the answering
// server caches under. Zero means "no affinity" and falls back to rotation.
func (r *Router) affinityOf(queries []bitvec.Code, h int) uint64 {
	if r.opts.Affinity == "none" {
		return 0
	}
	var a uint64
	var kb []byte
	for _, q := range queries {
		kb = qcache.Key{Code: q, H: h, Engine: r.engine, Shard: -1, Epoch: 0}.Append(kb[:0])
		a ^= qcache.Hash(kb)
	}
	return a
}

// ranking orders a shard's replica indexes for one request: rendezvous
// scores (mode routeAffinity), round-robin rotation (routeRotate, or a zero
// affinity), or plain list order (routePrimary). Replicas inside their
// failure cooldown are then demoted to the tail, relative order preserved,
// so the first attempt and any hedge prefer replicas believed healthy while
// a shard whose replicas all failed still tries them all.
func (r *Router) ranking(sh *shard, mode routeMode, affinity uint64) []int {
	n := len(sh.replicas)
	order := make([]int, n)
	switch {
	case mode == routeAffinity && affinity != 0:
		for i := range order {
			order[i] = i
		}
		scores := make([]uint64, n)
		for i, rp := range sh.replicas {
			scores[i] = mix64(affinity ^ rp.rendezvousRank())
		}
		sort.Slice(order, func(a, b int) bool {
			if scores[order[a]] != scores[order[b]] {
				return scores[order[a]] > scores[order[b]]
			}
			return order[a] < order[b]
		})
	case mode == routePrimary:
		for i := range order {
			order[i] = i
		}
	default:
		base := int((sh.rrSeq.Add(1) - 1) % uint64(n))
		for i := range order {
			order[i] = (base + i) % n
		}
	}
	now := r.now().UnixNano()
	ranked := make([]int, 0, n)
	var cooling []int
	for _, i := range order {
		if sh.replicas[i].failUntil.Load() > now {
			cooling = append(cooling, i)
		} else {
			ranked = append(ranked, i)
		}
	}
	return append(ranked, cooling...)
}

// leastLoadedOther picks the steering target for a shed retry: the sibling
// of cur with the lowest (badness, load) score — not failed, preferring one
// that has not itself shed recently, then the lowest reported admission wait
// plus observed latency. Nil when cur has no live sibling, in which case the
// retry stays where it was.
func (r *Router) leastLoadedOther(sh *shard, cur *replica) *replica {
	now := r.now().UnixNano()
	var best *replica
	var bestBad int
	var bestLoad int64
	for _, rp := range sh.replicas {
		if rp == cur {
			continue
		}
		bad, load := rp.loadScore(now)
		if bad >= 2 {
			continue // failure cooldown: worse than the replica that at least answered
		}
		if best == nil || bad < bestBad || (bad == bestBad && load < bestLoad) {
			best, bestBad, bestLoad = rp, bad, load
		}
	}
	return best
}

// do performs one shard request with retry, backoff, and hedging. The
// replica order for the request comes from ranking: attempt n goes to the
// n'th ranked replica (mod the set), so failover walks the rendezvous
// preference list instead of raw list position. A server-reported error
// frame counts as a failed attempt just like a transport error. The whole
// retry loop — attempts plus backoff sleeps — is bounded by Opts.Timeout of
// wall time, so a run of failures cannot sleep far past the per-request
// budget.
//
// A MsgShed answer is not a failure: the shard is healthy but saturated, and
// blind failover would stampede the next replica with the same load. The
// request instead backs off (doubling, jittered, capped at MaxBackoff)
// without consuming a retry attempt, then steers the retry to the
// least-loaded live sibling — a colder cache beats a deadline miss — falling
// back to the replica that shed when it has no live sibling, until the
// request deadline runs out, at which point the error wraps ErrShed. A shed
// also disables hedging for the rest of the request, for the same reason: a
// speculative duplicate is extra load aimed at a shard that just asked for
// less.
func (r *Router) do(sh *shard, mode routeMode, affinity uint64, t wire.MsgType, pf payloadFn, tr *obs.Trace, parent obs.SpanID) (wire.MsgType, []byte, error) {
	r.shardRequests.Add(1)
	r.cntRequests.Inc()
	deadline := r.now().Add(r.opts.Timeout)
	backoff := r.opts.Backoff
	rank := r.ranking(sh, mode, affinity)
	var lastErr error
	// Once a shard sheds, hedging is off for the rest of this request: a
	// speculative duplicate adds load exactly when the server asked the
	// client to back off.
	shedSeen := false
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Equal jitter: sleep uniform in [b/2, b] so synchronized
			// clients spread out instead of re-stampeding a recovering
			// shard in lockstep.
			b := backoff
			if b > r.opts.MaxBackoff {
				b = r.opts.MaxBackoff
			}
			d := b/2 + time.Duration(r.randInt63n(int64(b/2)+1))
			if remain := deadline.Sub(r.now()); d > remain {
				return 0, nil, fmt.Errorf("client: shard %d: retry budget exhausted after %d attempts (timeout %v): %w",
					sh.part, attempt, r.opts.Timeout, lastErr)
			}
			r.retries.Add(1)
			r.cntRetries.Inc()
			sp := tr.Start(fmt.Sprintf("backoff attempt %d", attempt), parent)
			r.sleep(d)
			tr.End(sp)
			r.backoffWait.Add(int64(d))
			backoff *= 2
		}
		rp := sh.replicas[rank[attempt%len(rank)]]
		var respType wire.MsgType
		var resp []byte
		var err error
		shedBackoff := r.opts.Backoff
		for {
			sp := tr.Start(fmt.Sprintf("attempt %d → %s", attempt, rp.addr), parent)
			if attempt == 0 && !shedSeen && r.opts.HedgeAfter > 0 && len(sh.replicas) > 1 {
				var winner *replica
				winner, respType, resp, err = r.hedged(sh, rank, t, pf)
				if winner != nil {
					// A shed (or any answer) is attributed to the replica
					// that actually sent it, which may be the hedge leg.
					rp = winner
				}
			} else {
				respType, resp, err = r.attempt(sh, rp, t, pf, nil)
			}
			tr.End(sp)
			if err != nil || respType != wire.MsgShed {
				break
			}
			r.sheds.Add(1)
			r.cntSheds.Inc()
			shedSeen = true
			b := shedBackoff
			if b > r.opts.MaxBackoff {
				b = r.opts.MaxBackoff
			}
			d := b/2 + time.Duration(r.randInt63n(int64(b/2)+1))
			// Remember the shed for about as long as this backoff round, so
			// rankings and hedges built meanwhile prefer the siblings.
			rp.shedUntil.Store(r.now().Add(2 * d).UnixNano())
			if remain := deadline.Sub(r.now()); d > remain {
				return 0, nil, fmt.Errorf("client: shard %d: %w (deadline %v exhausted)",
					sh.part, ErrShed, r.opts.Timeout)
			}
			bsp := tr.Start(fmt.Sprintf("shed backoff → %s", rp.addr), parent)
			r.sleep(d)
			tr.End(bsp)
			r.backoffWait.Add(int64(d))
			shedBackoff *= 2
			if next := r.leastLoadedOther(sh, rp); next != nil && next != rp {
				r.steers.Add(1)
				r.cntSteers.Inc()
				rp = next
			}
		}
		if err == nil && respType == wire.MsgError {
			em, perr := wire.ParseErrorMsg(resp)
			if perr != nil {
				err = perr
			} else {
				err = fmt.Errorf("client: shard %d: server error: %s", sh.part, em.Msg)
			}
		}
		if err == nil {
			return respType, resp, nil
		}
		lastErr = err
	}
	return 0, nil, fmt.Errorf("client: shard %d failed after %d attempts: %w", sh.part, r.opts.MaxAttempts, lastErr)
}

// attempt performs one round trip on rp and records its latency in the
// per-attempt histograms (overall and per shard), win or lose — failed and
// hedged attempts cost real time too, and the distribution should show it.
// It is also where the replica's health and warmth state is maintained: a
// transport failure starts the failure cooldown (unless the round trip was
// aborted by a decided hedge race, which says nothing about the replica), a
// success clears it and feeds the latency EWMA, and a stats answer passing
// through refreshes the warmth signal steering reads.
func (r *Router) attempt(sh *shard, rp *replica, t wire.MsgType, pf payloadFn, cancel *connCancel) (wire.MsgType, []byte, error) {
	t0 := time.Now()
	respType, resp, err := rp.roundTrip(t, pf, cancel)
	r.histAttempt.RecordSince(t0)
	r.histShard[sh.part].RecordSince(t0)
	switch {
	case err == errHedgeAborted || cancel.wasAborted():
		// The race was decided out from under this leg; its connection may
		// have been closed deliberately. No health signal either way.
	case err != nil:
		rp.failUntil.Store(r.now().Add(r.opts.FailureCooldown).UnixNano())
	default:
		rp.failUntil.Store(0)
		ns := int64(time.Since(t0))
		if prev := rp.ewmaNs.Load(); prev > 0 {
			ns = (7*prev + ns) / 8
		}
		rp.ewmaNs.Store(ns)
		if respType == wire.MsgStatsOK {
			if st, perr := wire.ParseStatsResp(resp); perr == nil {
				rp.recordWarmth(st, r.now())
			}
		}
	}
	return respType, resp, err
}

// RefreshWarmth polls every replica of every shard for its serving stats and
// folds the warmth block (wire protocol v6) into the steering state. The
// router also refreshes opportunistically from any stats response that
// passes through it (ShardStats); this is the explicit sweep for callers who
// want fresher load signals than their stats traffic provides, e.g. a load
// generator between phases.
func (r *Router) RefreshWarmth() {
	for _, sh := range r.shards {
		for _, rp := range sh.replicas {
			r.attempt(sh, rp, wire.MsgStats, nil, nil)
		}
	}
}

// errHedgeAborted marks a hedge leg whose race was decided before the leg
// got its turn on the replica's connection; nothing was written to the wire.
var errHedgeAborted = fmt.Errorf("client: hedge race already decided")

// connCancel lets the winner of a hedged race abort the loser's in-flight
// round trip. The loser registers its connection here after taking the
// replica lock; abort closes that connection, which unblocks the loser's
// read immediately (the error path poisons the pooled conn, so the next
// request redials). Without it the losing leg would sit on the replica's
// mutex — and its pooled connection — until the conn deadline, up to
// Opts.Timeout.
type connCancel struct {
	mu      sync.Mutex
	conn    net.Conn
	aborted bool
}

// register records the leg's connection so abort can reach it. It reports
// false when the race was already decided — the leg must give up without
// touching the wire.
func (c *connCancel) register(conn net.Conn) bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.aborted {
		return false
	}
	c.conn = conn
	return true
}

// abort ends the leg: any registered connection is closed, and a leg yet to
// register will refuse to start.
func (c *connCancel) abort() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aborted = true
	if c.conn != nil {
		c.conn.Close()
	}
}

// wasAborted reports whether the race was decided against this leg. Its
// connection may have been closed out from under a healthy replica, so a
// transport error seen afterwards must not start that replica's failure
// cooldown.
func (c *connCancel) wasAborted() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborted
}

// hedged races the ranking's primary replica against a delayed speculative
// duplicate on a standby. The standby order is the rest of the ranking with
// replicas in failure cooldown or recently shedding demoted to its tail, so
// the hedge lands on the best-ranked replica believed able to answer — not
// on a hardwired list position that may be dead. If a hedge leg itself dies
// at the transport level, the next standby is launched immediately: the
// point of the hedge is a live second horse in the race. The first answer
// wins; losing legs are aborted promptly (their connections closed, their
// results drained in the background) so they do not hold pooled connections
// for the rest of the request timeout.
func (r *Router) hedged(sh *shard, rank []int, t wire.MsgType, pf payloadFn) (*replica, wire.MsgType, []byte, error) {
	type result struct {
		rp       *replica
		respType wire.MsgType
		resp     []byte
		err      error
		cancel   *connCancel
		hedge    bool
	}
	now := r.now().UnixNano()
	standbys := make([]*replica, 0, len(rank)-1)
	var cold []*replica
	for _, i := range rank[1:] {
		rp := sh.replicas[i]
		if rp.failUntil.Load() > now || rp.shedUntil.Load() > now {
			cold = append(cold, rp)
		} else {
			standbys = append(standbys, rp)
		}
	}
	standbys = append(standbys, cold...)
	ch := make(chan result, 1+len(standbys))
	launch := func(rp *replica, cancel *connCancel, hedge bool) {
		respType, resp, err := r.attempt(sh, rp, t, pf, cancel)
		ch <- result{rp: rp, respType: respType, resp: resp, err: err, cancel: cancel, hedge: hedge}
	}
	cancels := []*connCancel{new(connCancel)}
	go launch(sh.replicas[rank[0]], cancels[0], false)
	timer := time.NewTimer(r.opts.HedgeAfter)
	defer timer.Stop()
	launched, nextStandby := 1, 0
	launchNext := func() bool {
		if nextStandby >= len(standbys) {
			return false
		}
		r.hedges.Add(1)
		r.cntHedges.Inc()
		c := new(connCancel)
		cancels = append(cancels, c)
		go launch(standbys[nextStandby], c, true)
		nextStandby++
		launched++
		return true
	}
	for {
		select {
		case res := <-ch:
			if res.err == nil {
				if res.hedge {
					r.hedgeWins.Add(1)
					r.cntHedgeWins.Inc()
				}
				if losers := launched - 1; losers > 0 {
					// Cut the losing legs loose now: close their in-flight
					// connections and drain their results off-path.
					for _, c := range cancels {
						if c != res.cancel {
							c.abort()
						}
					}
					r.hedgeLosses.Add(int64(losers))
					r.cntHedgeLosses.Add(int64(losers))
					go func() {
						for i := 0; i < losers; i++ {
							<-ch
						}
					}()
				}
				return res.rp, res.respType, res.resp, nil
			}
			launched--
			if res.hedge && res.err != errHedgeAborted && launched > 0 {
				// The standby died under its hedge while the primary is
				// still out; replace it with the next candidate.
				launchNext()
			}
			if launched == 0 {
				// Primary failed before the hedge budget (or every leg
				// failed): surface the error to the retry loop.
				return nil, 0, nil, res.err
			}
		case <-timer.C:
			launchNext()
		}
	}
}

// handshake dials (if needed) and returns the shard's hello.
func (rp *replica) handshake() (wire.HelloOK, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.conn == nil {
		if err := rp.dialLocked(); err != nil {
			return wire.HelloOK{}, err
		}
	}
	return rp.hello, nil
}

// roundTrip performs one request on the pooled connection, redialing once
// if the connection was lost. Any error poisons the connection so the next
// attempt starts fresh. A non-nil cancel makes the round trip abortable: the
// connection is registered with it before use, so a hedge winner can close
// it out from under the blocked read. The payload is resolved here, after
// the dial, because it may depend on the session's negotiated version.
func (rp *replica) roundTrip(t wire.MsgType, pf payloadFn, cancel *connCancel) (wire.MsgType, []byte, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.conn == nil {
		if err := rp.dialLocked(); err != nil {
			return 0, nil, err
		}
	}
	if !cancel.register(rp.conn) {
		// The race was decided before this leg reached the connection;
		// nothing was written, so the pooled conn stays healthy.
		return 0, nil, errHedgeAborted
	}
	var payload []byte
	if pf != nil {
		payload = pf(rp.hello.Version)
	}
	rp.conn.SetDeadline(time.Now().Add(rp.opts.Timeout))
	if err := wire.WriteFrame(rp.conn, t, payload); err != nil {
		rp.closeLocked()
		return 0, nil, err
	}
	respType, resp, err := wire.ReadFrame(rp.br)
	if err != nil {
		rp.closeLocked()
		return 0, nil, err
	}
	return respType, resp, nil
}

// dialLocked connects and handshakes; rp.mu must be held.
func (rp *replica) dialLocked() error {
	conn, err := net.DialTimeout("tcp", rp.addr, rp.opts.DialTimeout)
	if err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(rp.opts.Timeout))
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.Hello{Version: wire.Version}.Append(nil)); err != nil {
		conn.Close()
		return err
	}
	respType, payload, err := wire.ReadFrame(br)
	if err != nil {
		conn.Close()
		return err
	}
	if respType == wire.MsgError {
		conn.Close()
		if em, perr := wire.ParseErrorMsg(payload); perr == nil {
			return fmt.Errorf("client: %s rejected handshake: %s", rp.addr, em.Msg)
		}
		return fmt.Errorf("client: %s rejected handshake", rp.addr)
	}
	if respType != wire.MsgHelloOK {
		conn.Close()
		return fmt.Errorf("client: %s answered handshake with %s", rp.addr, respType)
	}
	hello, err := wire.ParseHelloOK(payload)
	if err != nil {
		conn.Close()
		return err
	}
	// Downward negotiation: the server answers with min(client, server), so
	// anything in [1, our version] is a session we can speak; the negotiated
	// level is kept per replica to gate newer frames. A higher version than
	// we offered is a protocol violation.
	if hello.Version < 1 || hello.Version > wire.Version {
		conn.Close()
		return fmt.Errorf("client: %s negotiated protocol version %d, this client speaks 1..%d", rp.addr, hello.Version, wire.Version)
	}
	rp.conn, rp.br, rp.hello = conn, br, hello
	return nil
}

func (rp *replica) close() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	rp.closeLocked()
}

func (rp *replica) closeLocked() {
	if rp.conn != nil {
		rp.conn.Close()
		rp.conn = nil
		rp.br = nil
	}
}
