package client

import (
	"math/rand"
	"net"
	"sort"
	"testing"
	"time"

	"haindex/internal/server"
)

// TestRouterSpreadsReplicas: with rendezvous affinity, a stream of distinct
// queries must land on every replica of a shard — the affinity key varies
// per query, so the rendezvous winner does too. Before the fix the retry
// loop computed `attempt % len(replicas)` from attempt 0, which pinned every
// first attempt (hence all healthy-path traffic) to replica 0 and left the
// rest of the set cold.
func TestRouterSpreadsReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const bits, parts, h = 32, 1, 3
	d := buildDeployment(t, rng, 600, bits, parts, map[int][]*server.FaultPlan{
		0: {nil, nil, nil},
	})
	r, err := Dial(d.addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	queries := d.queries(rng, 60, bits, h)
	for _, q := range queries {
		if _, err := r.Search(q, h); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range d.servers {
		if n := s.Stats().Requests; n == 0 {
			t.Fatalf("replica %d served no requests across %d distinct queries: routing is pinned", i, len(queries))
		}
	}
}

// TestRouterAffinityStable: the same query must keep landing on the same
// replica — that is the cache-warmth contract rendezvous hashing buys. Only
// one replica's request counter may move while one query is replayed.
func TestRouterAffinityStable(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const bits, parts, h = 32, 1, 3
	d := buildDeployment(t, rng, 600, bits, parts, map[int][]*server.FaultPlan{
		0: {nil, nil, nil},
	})
	r, err := Dial(d.addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := d.queries(rng, 1, bits, h)[0]
	before := make([]int64, len(d.servers))
	for i, s := range d.servers {
		before[i] = s.Stats().Requests
	}
	const replays = 12
	for i := 0; i < replays; i++ {
		if _, err := r.Search(q, h); err != nil {
			t.Fatal(err)
		}
	}
	moved := 0
	for i, s := range d.servers {
		switch delta := s.Stats().Requests - before[i]; {
		case delta == replays:
			moved++
		case delta != 0:
			t.Fatalf("replica %d served %d of %d replays: affinity split one key across replicas", i, delta, replays)
		}
	}
	if moved != 1 {
		t.Fatalf("%d replicas served the replayed query, want exactly 1", moved)
	}
}

// TestRouterHedgeSkipsDeadReplica: the speculative duplicate must go to a
// standby that can actually answer. Replica 1 — the pre-fix hardwired hedge
// target — is dead, replica 0 stalls, and the batch must still finish fast
// because the hedge reaches replica 2. Before the fix hedged() always raced
// sh.replicas[1], the dead leg failed instantly, and the request sat out the
// primary's full stall.
func TestRouterHedgeSkipsDeadReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	const bits, parts, h = 16, 1, 2
	stall := server.NewFaultPlan()
	for req := int64(0); req < 64; req++ {
		stall.DelayRequest(req, 2*time.Second)
	}
	d := buildDeployment(t, rng, 300, bits, parts, map[int][]*server.FaultPlan{
		0: {stall, nil, nil},
	})
	// Kill replica 1: its address now refuses connections.
	d.servers[1].Close()

	// Affinity "none" pins the stalled replica as the hedge primary; the
	// dead replica sits exactly where the old code hardwired the hedge.
	r, err := Dial(d.addrs, Options{HedgeAfter: 5 * time.Millisecond, Backoff: time.Millisecond, Affinity: "none"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	queries := d.queries(rng, 10, bits, h)
	t0 := time.Now()
	got, err := r.SearchBatch(queries, h)
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("hedge did not reach a live standby: batch took %v", took)
	}
	for i, q := range queries {
		want := append([]int(nil), d.oracle.Search(q, h)...)
		sort.Ints(want)
		if len(want) == 0 {
			want = nil
		}
		if !equalInts(got[i], want) {
			t.Fatalf("query %d: router %v, oracle %v", i, got[i], want)
		}
	}
	st := r.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("dead-standby race produced no hedge wins: %+v", st)
	}
}

// TestRouterReplicatedMatchesOracle is the replicated acceptance test: a
// 2-shard × 3-replica deployment under the default rendezvous policy must
// return exactly the single-index oracle's answers, spread healthy-path load
// over every replica, and keep each query keyed to one replica.
func TestRouterReplicatedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const bits, parts, h = 32, 2, 3
	d := buildDeployment(t, rng, 900, bits, parts, map[int][]*server.FaultPlan{
		0: {nil, nil, nil},
		1: {nil, nil, nil},
	})
	r, err := Dial(d.addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	queries := d.queries(rng, 150, bits, h)
	for i, q := range queries {
		got, err := r.Search(q, h)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]int(nil), d.oracle.Search(q, h)...)
		sort.Ints(want)
		if len(want) == 0 {
			want = nil
		}
		if !equalInts(got, want) {
			t.Fatalf("query %d: router %v, oracle %v", i, got, want)
		}
	}
	// Healthy steady state: every replica of every shard carries load. Dial
	// only handshakes the first replica per shard, so a non-zero request
	// count here is search traffic placed by the rendezvous ranking.
	for i, s := range d.servers {
		if n := s.Stats().Requests; n == 0 {
			t.Fatalf("replica %d served no requests in a healthy replicated deployment", i)
		}
	}
	// Key→replica affinity: replaying one query moves exactly one replica's
	// counter per shard it routes to.
	q := queries[0]
	before := make([]int64, len(d.servers))
	for i, s := range d.servers {
		before[i] = s.Stats().Requests
	}
	const replays = 8
	for i := 0; i < replays; i++ {
		if _, err := r.Search(q, h); err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < parts; m++ {
		touched := 0
		for rep := 0; rep < 3; rep++ {
			i := m*3 + rep
			if delta := d.servers[i].Stats().Requests - before[i]; delta != 0 {
				touched++
				if delta != replays {
					t.Fatalf("shard %d replica %d served %d of %d replays", m, rep, delta, replays)
				}
			}
		}
		if touched > 1 {
			t.Fatalf("shard %d: %d replicas served the replayed query, want at most 1", m, touched)
		}
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Fatalf("healthy deployment provoked %d retries", st.Retries)
	}
}

// TestDialRejectsUnknownAffinity: the policy name is validated up front.
func TestDialRejectsUnknownAffinity(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := Dial([][]string{{ln.Addr().String()}}, Options{Affinity: "sticky"}); err == nil {
		t.Fatal("bad affinity policy accepted")
	}
}
