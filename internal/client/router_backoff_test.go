package client

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"haindex/internal/obs"
	"haindex/internal/wire"
)

// fakeClock drives the router's retry loop deterministically: sleeps advance
// the clock instead of passing real time, and every sleep is recorded.
type fakeClock struct {
	mu     sync.Mutex
	t      time.Time
	sleeps []time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	c.sleeps = append(c.sleeps, d)
}

// newBackoffRouter builds a Router around a single one-replica shard whose
// address refuses connections, with the clock and jitter seams replaced —
// every attempt fails fast and the backoff schedule is exact.
func newBackoffRouter(t *testing.T, opts Options, clk *fakeClock, jitter func(int64) int64) *Router {
	t.Helper()
	// Grab a port the kernel just released: dialing it fails immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	opts = opts.withDefaults()
	reg := obs.NewRegistry()
	r := &Router{
		opts:       opts,
		shards:     []*shard{{part: 0, replicas: []*replica{{addr: addr, opts: opts}}}},
		reg:        reg,
		tracer:     obs.NewTracer(4),
		now:        clk.now,
		sleep:      clk.sleep,
		randInt63n: jitter,
	}
	r.histAttempt = reg.Histogram("attempt_ns")
	r.histShard = []*obs.Histogram{reg.Histogram("shard00.attempt_ns")}
	r.cntRequests = reg.Counter("shard_requests")
	r.cntRetries = reg.Counter("retries")
	r.cntSheds = reg.Counter("sheds")
	r.cntSteers = reg.Counter("steers")
	r.cntHedges = reg.Counter("hedges")
	r.cntHedgeWins = reg.Counter("hedge_wins")
	r.cntHedgeLosses = reg.Counter("hedge_losses")
	return r
}

// TestBackoffCapAndDoubling: with jitter pinned to its maximum, the sleep
// schedule must double from Backoff and flatten at MaxBackoff exactly.
func TestBackoffCapAndDoubling(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	maxJitter := func(n int64) int64 { return n - 1 } // top of [0, n)
	r := newBackoffRouter(t, Options{
		MaxAttempts: 6,
		Backoff:     4 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		DialTimeout: 100 * time.Millisecond,
		Timeout:     10 * time.Second,
	}, clk, maxJitter)

	_, _, err := r.do(r.shards[0], routeRotate, 0, wire.MsgStats, nil, nil, obs.NoSpan)
	if err == nil {
		t.Fatal("expected failure against a refusing address")
	}
	want := []time.Duration{
		4 * time.Millisecond,  // b=4ms, max jitter → full b
		8 * time.Millisecond,  // doubled
		10 * time.Millisecond, // 16ms capped
		10 * time.Millisecond, // 32ms capped
		10 * time.Millisecond, // 64ms capped
	}
	if len(clk.sleeps) != len(want) {
		t.Fatalf("sleeps %v, want %v", clk.sleeps, want)
	}
	var total time.Duration
	for i, d := range clk.sleeps {
		if d != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, d, want[i], clk.sleeps)
		}
		if d > r.opts.MaxBackoff {
			t.Fatalf("sleep %d = %v exceeds MaxBackoff %v", i, d, r.opts.MaxBackoff)
		}
		total += d
	}
	st := r.Stats()
	if st.BackoffWait != total {
		t.Fatalf("BackoffWait = %v, want %v", st.BackoffWait, total)
	}
	if st.Retries != int64(len(want)) {
		t.Fatalf("Retries = %d, want %d", st.Retries, len(want))
	}
	// Every failed attempt must still land in the latency histograms.
	if n := r.Snapshot().Attempt.Count; n != int64(len(want))+1 {
		t.Fatalf("attempt histogram has %d samples, want %d", n, len(want)+1)
	}
}

// TestBackoffJitterRange: sleeps must stay within the equal-jitter envelope
// [b/2, b] for any jitter draw.
func TestBackoffJitterRange(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	minJitter := func(n int64) int64 { return 0 } // bottom of the range
	r := newBackoffRouter(t, Options{
		MaxAttempts: 4,
		Backoff:     4 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		DialTimeout: 100 * time.Millisecond,
		Timeout:     10 * time.Second,
	}, clk, minJitter)

	r.do(r.shards[0], routeRotate, 0, wire.MsgStats, nil, nil, obs.NoSpan)
	want := []time.Duration{
		2 * time.Millisecond, // b=4ms, zero jitter → b/2
		4 * time.Millisecond, // b=8ms → 4ms
		5 * time.Millisecond, // b capped at 10ms → 5ms
	}
	if len(clk.sleeps) != len(want) {
		t.Fatalf("sleeps %v, want %v", clk.sleeps, want)
	}
	for i, d := range clk.sleeps {
		if d != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, d, want[i])
		}
	}
}

// TestBackoffBoundedByTimeout: the retry loop may not sleep past the request
// deadline — it must give up with a budget error instead, and the total
// sleep must stay under Timeout.
func TestBackoffBoundedByTimeout(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	maxJitter := func(n int64) int64 { return n - 1 }
	r := newBackoffRouter(t, Options{
		MaxAttempts: 50,
		Backoff:     4 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		DialTimeout: 100 * time.Millisecond,
		Timeout:     20 * time.Millisecond,
	}, clk, maxJitter)

	start := clk.now()
	_, _, err := r.do(r.shards[0], routeRotate, 0, wire.MsgStats, nil, nil, obs.NoSpan)
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want retry-budget error", err)
	}
	// Sleeps 4ms then 8ms land at t+12ms; the next 16ms draw would end at
	// t+28ms > deadline, so the loop must stop there.
	var total time.Duration
	for _, d := range clk.sleeps {
		total += d
	}
	if total >= r.opts.Timeout {
		t.Fatalf("slept %v total, must stay under Timeout %v", total, r.opts.Timeout)
	}
	if got := clk.now().Sub(start); got > r.opts.Timeout {
		t.Fatalf("retry loop consumed %v of fake wall time, Timeout is %v", got, r.opts.Timeout)
	}
	if len(clk.sleeps) != 2 {
		t.Fatalf("sleeps %v, want exactly 2 before the budget error", clk.sleeps)
	}
}
