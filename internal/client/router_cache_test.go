package client

import (
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/histo"
)

// TestRouterResultCache: with CacheEntries set, a repeated batch is served
// without contacting any shard; a mutation through the router invalidates
// every merged entry; and with CachePartials on, a mutation that only
// touched shard 1 lets the repeat query skip shard 0 via its still-valid
// partial.
func TestRouterResultCache(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	const bits, parts, h = 16, 2, 16 // h = bits: every query routes to (and matches) everything
	o := map[int]bitvec.Code{}
	for id := 0; id < 40; id++ {
		o[id] = bitvec.Rand(rng, bits)
	}
	d := buildMutableDeployment(t, rng, bits, parts, o, -1)
	r, err := Dial(addrsOf(d), Options{CacheEntries: 1024, CachePartials: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	q := bitvec.Rand(rng, bits)
	cold, err := r.SearchBatch([]bitvec.Code{q}, h)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteSearch(o, q, h)
	if !equalInts(cold[0], want) {
		t.Fatalf("cold: got %v want %v", cold[0], want)
	}

	// Warm repeat: answered from the merged cache, zero shard round trips.
	before := r.Stats().ShardRequests
	warm, err := r.SearchBatch([]bitvec.Code{q}, h)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(warm[0], want) {
		t.Fatalf("warm: got %v want %v", warm[0], want)
	}
	if delta := r.Stats().ShardRequests - before; delta != 0 {
		t.Fatalf("warm batch issued %d shard requests, want 0", delta)
	}
	if r.Obs().Counter("qcache.hits").Value() == 0 {
		t.Fatal("qcache.hits did not move")
	}
	// The cached result must be a private copy: mutating it cannot poison
	// later hits.
	if len(warm[0]) > 0 {
		warm[0][0] = -999
		again, err := r.SearchBatch([]bitvec.Code{q}, h)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(again[0], want) {
			t.Fatal("caller mutation leaked into the cache")
		}
	}

	// Insert a fresh id whose code lives on shard 1: the merged entry is
	// invalidated (the repeat sees the new id), but shard 0's partials
	// survive — the foreign-delete broadcast found nothing to delete there —
	// so the repeat contacts exactly one shard.
	var c bitvec.Code
	for {
		c = bitvec.Rand(rng, bits)
		if histo.PartitionID(d.pivots, c) == 1 {
			break
		}
	}
	if _, err := r.Insert([]int{100}, []bitvec.Code{c}); err != nil {
		t.Fatal(err)
	}
	o[100] = c
	want = bruteSearch(o, q, h)
	before = r.Stats().ShardRequests
	fresh, err := r.SearchBatch([]bitvec.Code{q}, h)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(fresh[0], want) {
		t.Fatalf("post-insert: got %v want %v — stale cache served", fresh[0], want)
	}
	if delta := r.Stats().ShardRequests - before; delta != 1 {
		t.Fatalf("post-insert batch issued %d shard requests, want 1 (shard 0 partial still valid)", delta)
	}

	// A delete that hits shard 1 invalidates it again; results stay exact.
	if _, err := r.Delete([]int{100}); err != nil {
		t.Fatal(err)
	}
	delete(o, 100)
	want = bruteSearch(o, q, h)
	after, err := r.SearchBatch([]bitvec.Code{q}, h)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(after[0], want) {
		t.Fatalf("post-delete: got %v want %v — stale cache served", after[0], want)
	}
}

func addrsOf(d *mutableDeployment) [][]string {
	var addrs [][]string
	for _, s := range d.servers {
		addrs = append(addrs, []string{s.Addr().String()})
	}
	return addrs
}
