package client

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"haindex/internal/obs"
	"haindex/internal/wire"
)

// startSheddingServer runs a minimal in-test shard server that handshakes at
// protocol v5 and answers every subsequent request with MsgShed after delay —
// a shard that is permanently saturated. It returns its address and a counter
// of accepted connections.
func startSheddingServer(t *testing.T, delay time.Duration) (string, *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var dials atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			dials.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				typ, _, err := wire.ReadFrame(br)
				if err != nil || typ != wire.MsgHello {
					return
				}
				ok := wire.HelloOK{Version: 5, Length: 32, Part: 0, Parts: 1}
				if err := wire.WriteFrame(conn, wire.MsgHelloOK, ok.Append(nil)); err != nil {
					return
				}
				for {
					if _, _, err := wire.ReadFrame(br); err != nil {
						return
					}
					if delay > 0 {
						time.Sleep(delay)
					}
					shed := wire.ShedResp{WaitNs: int64(time.Millisecond)}
					if err := wire.WriteFrame(conn, wire.MsgShed, shed.Append(nil)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), &dials
}

// startStatsServer runs a minimal in-test shard server that handshakes at
// protocol v5 and answers every subsequent request with MsgStatsOK — a
// healthy, unloaded sibling. It returns its address and a counter of
// requests served.
func startStatsServer(t *testing.T) (string, *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var served atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				typ, _, err := wire.ReadFrame(br)
				if err != nil || typ != wire.MsgHello {
					return
				}
				ok := wire.HelloOK{Version: 5, Length: 32, Part: 0, Parts: 1}
				if err := wire.WriteFrame(conn, wire.MsgHelloOK, ok.Append(nil)); err != nil {
					return
				}
				for {
					if _, _, err := wire.ReadFrame(br); err != nil {
						return
					}
					served.Add(1)
					st := wire.StatsResp{Requests: int64(served.Load())}
					if err := wire.WriteFrame(conn, wire.MsgStatsOK, st.AppendVersion(nil, 5)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), &served
}

// TestShedSteersToLeastLoadedReplica: after a shed backoff the retry must
// move to the sibling replica with the lowest (health, load) score — not
// return to the replica that just asked for less, and not to a sibling whose
// reported admission wait says it is drowning too. Pre-fix the router
// retried the shedding replica forever and this request could only end in
// ErrShed.
func TestShedSteersToLeastLoadedReplica(t *testing.T) {
	shedAddr, _ := startSheddingServer(t, 0)
	busyAddr, busyServed := startStatsServer(t)
	idleAddr, idleServed := startStatsServer(t)

	clk := &fakeClock{t: time.Unix(1000, 0)}
	maxJitter := func(n int64) int64 { return n - 1 }
	r := newBackoffRouter(t, Options{
		MaxAttempts: 3,
		Backoff:     4 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		DialTimeout: time.Second,
		Timeout:     50 * time.Millisecond,
	}, clk, maxJitter)
	busy := &replica{addr: busyAddr, opts: r.opts}
	busy.warmAdmNs.Store(int64(5 * time.Millisecond)) // reports a long admission wait
	r.shards[0].replicas = []*replica{
		{addr: shedAddr, opts: r.opts},
		busy,
		{addr: idleAddr, opts: r.opts},
	}

	respType, _, err := r.do(r.shards[0], routePrimary, 0, wire.MsgStats, nil, nil, obs.NoSpan)
	if err != nil {
		t.Fatalf("steered request failed: %v", err)
	}
	if respType != wire.MsgStatsOK {
		t.Fatalf("respType = %s, want MsgStatsOK", respType)
	}
	if got := []time.Duration{4 * time.Millisecond}; len(clk.sleeps) != 1 || clk.sleeps[0] != got[0] {
		t.Fatalf("sleeps %v, want %v", clk.sleeps, got)
	}
	st := r.Stats()
	if st.Sheds != 1 || st.Steers != 1 {
		t.Fatalf("Sheds = %d, Steers = %d, want 1 and 1", st.Sheds, st.Steers)
	}
	if st.Retries != 0 {
		t.Fatalf("Retries = %d: a steered shed retry must not count as a failed attempt", st.Retries)
	}
	if n := idleServed.Load(); n != 1 {
		t.Fatalf("idle replica served %d requests, want the steered retry", n)
	}
	if n := busyServed.Load(); n != 0 {
		t.Fatalf("busy replica served %d requests: steering ignored the load signal", n)
	}
	if r.Obs().Counter("steers").Value() != st.Steers {
		t.Fatal("steers counter not mirrored into the registry")
	}
}

// TestShedBackoffBoundedByDeadline pins the router's overload etiquette with
// a fake clock when the whole replica set is saturated: MsgShed answers back
// off with a doubling, capped sleep, each retry steers to the sibling, none
// of it counts as a retry/failure, and the loop gives up with ErrShed once
// the next sleep would cross the request deadline — the shard may bounce
// between saturated replicas but can never sleep past its budget.
func TestShedBackoffBoundedByDeadline(t *testing.T) {
	shedAddr, shedDials := startSheddingServer(t, 0)
	spareAddr, spareDials := startSheddingServer(t, 0)

	clk := &fakeClock{t: time.Unix(1000, 0)}
	maxJitter := func(n int64) int64 { return n - 1 } // top of [0, n): d = b
	r := newBackoffRouter(t, Options{
		MaxAttempts: 3,
		Backoff:     4 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		DialTimeout: time.Second,
		Timeout:     50 * time.Millisecond,
	}, clk, maxJitter)
	r.shards[0].replicas = []*replica{
		{addr: shedAddr, opts: r.opts},
		{addr: spareAddr, opts: r.opts},
	}

	_, _, err := r.do(r.shards[0], routePrimary, 0, wire.MsgStats, nil, nil, obs.NoSpan)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	// With max jitter each shed sleep is the full (capped) base: 4, 8, 16,
	// 20ms land at t+48ms; the next 20ms draw would cross the 50ms deadline.
	want := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond, 16 * time.Millisecond, 20 * time.Millisecond}
	if len(clk.sleeps) != len(want) {
		t.Fatalf("sleeps %v, want %v", clk.sleeps, want)
	}
	for i, d := range want {
		if clk.sleeps[i] != d {
			t.Fatalf("sleep %d = %v, want %v (all %v)", i, clk.sleeps[i], d, clk.sleeps)
		}
	}
	st := r.Stats()
	if st.Sheds != int64(len(want))+1 {
		t.Fatalf("Sheds = %d, want %d (one per MsgShed answer)", st.Sheds, len(want)+1)
	}
	if st.Steers != int64(len(want)) {
		t.Fatalf("Steers = %d, want %d (one per backoff cycle)", st.Steers, len(want))
	}
	if st.Retries != 0 {
		t.Fatalf("Retries = %d: a shed must not count as a failed attempt", st.Retries)
	}
	if n := shedDials.Load(); n != 1 {
		t.Fatalf("shedding replica dialed %d times, want 1 pooled connection", n)
	}
	if n := spareDials.Load(); n != 1 {
		t.Fatalf("sibling replica dialed %d times, want 1 pooled connection", n)
	}
	if r.Obs().Counter("sheds").Value() != st.Sheds {
		t.Fatal("sheds counter not mirrored into the registry")
	}
}

// TestShedDisablesHedging: once a shard sheds, the shed-backoff cycles must
// stop launching speculative duplicates — a hedge is extra load aimed at a
// shard that just asked for less. The primary answers its shed slowly enough
// that every hedged call would fire its hedge timer, and the sibling sheds
// too, so without the guard each backoff cycle would launch a fresh hedge.
func TestShedDisablesHedging(t *testing.T) {
	shedAddr, _ := startSheddingServer(t, 30*time.Millisecond)
	spareAddr, _ := startSheddingServer(t, 0)

	clk := &fakeClock{t: time.Unix(1000, 0)}
	maxJitter := func(n int64) int64 { return n - 1 }
	r := newBackoffRouter(t, Options{
		MaxAttempts: 3,
		Backoff:     4 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		DialTimeout: time.Second,
		HedgeAfter:  time.Millisecond,
		Timeout:     50 * time.Millisecond,
	}, clk, maxJitter)
	r.shards[0].replicas = []*replica{
		{addr: shedAddr, opts: r.opts},
		{addr: spareAddr, opts: r.opts},
	}

	_, _, err := r.do(r.shards[0], routePrimary, 0, wire.MsgStats, nil, nil, obs.NoSpan)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	st := r.Stats()
	if st.Sheds < 2 {
		t.Fatalf("Sheds = %d, want several backoff cycles", st.Sheds)
	}
	// Only the first cycle may hedge; every later one saw shedSeen.
	if st.Hedges > 1 {
		t.Fatalf("Hedges = %d: shed cycles kept launching speculative duplicates", st.Hedges)
	}
}
