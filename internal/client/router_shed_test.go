package client

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"haindex/internal/obs"
	"haindex/internal/wire"
)

// startSheddingServer runs a minimal in-test shard server that handshakes at
// protocol v5 and answers every subsequent request with MsgShed after delay —
// a shard that is permanently saturated. It returns its address and a counter
// of accepted connections.
func startSheddingServer(t *testing.T, delay time.Duration) (string, *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var dials atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			dials.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				typ, _, err := wire.ReadFrame(br)
				if err != nil || typ != wire.MsgHello {
					return
				}
				ok := wire.HelloOK{Version: 5, Length: 32, Part: 0, Parts: 1}
				if err := wire.WriteFrame(conn, wire.MsgHelloOK, ok.Append(nil)); err != nil {
					return
				}
				for {
					if _, _, err := wire.ReadFrame(br); err != nil {
						return
					}
					if delay > 0 {
						time.Sleep(delay)
					}
					shed := wire.ShedResp{WaitNs: int64(time.Millisecond)}
					if err := wire.WriteFrame(conn, wire.MsgShed, shed.Append(nil)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), &dials
}

// TestShedBackoffBoundedByDeadline pins the router's overload etiquette with
// a fake clock: MsgShed answers are retried on the same replica with a
// doubling, capped backoff; they never fail over to another replica, never
// count as retries, and the loop gives up with ErrShed once the next sleep
// would cross the request deadline.
func TestShedBackoffBoundedByDeadline(t *testing.T) {
	shedAddr, shedDials := startSheddingServer(t, 0)

	// The second replica must never be contacted: shedding is not failure.
	spareLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { spareLn.Close() })
	var spareDials atomic.Int32
	go func() {
		for {
			conn, err := spareLn.Accept()
			if err != nil {
				return
			}
			spareDials.Add(1)
			conn.Close()
		}
	}()

	clk := &fakeClock{t: time.Unix(1000, 0)}
	maxJitter := func(n int64) int64 { return n - 1 } // top of [0, n): d = b
	r := newBackoffRouter(t, Options{
		MaxAttempts: 3,
		Backoff:     4 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		DialTimeout: time.Second,
		Timeout:     50 * time.Millisecond,
	}, clk, maxJitter)
	r.shards[0].replicas = []*replica{
		{addr: shedAddr, opts: r.opts},
		{addr: spareLn.Addr().String(), opts: r.opts},
	}

	_, _, err = r.do(r.shards[0], wire.MsgStats, nil, nil, obs.NoSpan)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	// With max jitter each shed sleep is the full (capped) base: 4, 8, 16,
	// 20ms land at t+48ms; the next 20ms draw would cross the 50ms deadline.
	want := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond, 16 * time.Millisecond, 20 * time.Millisecond}
	if len(clk.sleeps) != len(want) {
		t.Fatalf("sleeps %v, want %v", clk.sleeps, want)
	}
	for i, d := range want {
		if clk.sleeps[i] != d {
			t.Fatalf("sleep %d = %v, want %v (all %v)", i, clk.sleeps[i], d, clk.sleeps)
		}
	}
	st := r.Stats()
	if st.Sheds != int64(len(want))+1 {
		t.Fatalf("Sheds = %d, want %d (one per MsgShed answer)", st.Sheds, len(want)+1)
	}
	if st.Retries != 0 {
		t.Fatalf("Retries = %d: a shed must not count as a failed attempt", st.Retries)
	}
	if n := spareDials.Load(); n != 0 {
		t.Fatalf("replica 1 was dialed %d times: shedding must not fail over", n)
	}
	if n := shedDials.Load(); n != 1 {
		t.Fatalf("shedding replica dialed %d times, want 1 pooled connection", n)
	}
	if r.Obs().Counter("sheds").Value() != st.Sheds {
		t.Fatal("sheds counter not mirrored into the registry")
	}
}

// TestShedDisablesHedging: once a shard sheds, the shed-backoff cycles must
// stop launching speculative duplicates — a hedge is extra load aimed at a
// shard that just asked for less. The shedding replica answers slowly enough
// that every hedged call would fire its hedge timer, so without the guard
// each backoff cycle would dial the spare replica afresh.
func TestShedDisablesHedging(t *testing.T) {
	shedAddr, _ := startSheddingServer(t, 30*time.Millisecond)

	spareLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { spareLn.Close() })
	var spareDials atomic.Int32
	go func() {
		for {
			conn, err := spareLn.Accept()
			if err != nil {
				return
			}
			spareDials.Add(1)
			conn.Close()
		}
	}()

	clk := &fakeClock{t: time.Unix(1000, 0)}
	maxJitter := func(n int64) int64 { return n - 1 }
	r := newBackoffRouter(t, Options{
		MaxAttempts: 3,
		Backoff:     4 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		DialTimeout: time.Second,
		HedgeAfter:  time.Millisecond,
		Timeout:     50 * time.Millisecond,
	}, clk, maxJitter)
	r.shards[0].replicas = []*replica{
		{addr: shedAddr, opts: r.opts},
		{addr: spareLn.Addr().String(), opts: r.opts},
	}

	_, _, err = r.do(r.shards[0], wire.MsgStats, nil, nil, obs.NoSpan)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	st := r.Stats()
	if st.Sheds < 2 {
		t.Fatalf("Sheds = %d, want several backoff cycles", st.Sheds)
	}
	// Only the first cycle may hedge; every later one saw shedSeen.
	if st.Hedges > 1 {
		t.Fatalf("Hedges = %d: shed cycles kept launching speculative duplicates", st.Hedges)
	}
	if n := spareDials.Load(); n > 1 {
		t.Fatalf("spare replica dialed %d times: hedging must stop after the first shed", n)
	}
}
