package core

import "haindex/internal/bitvec"

// SearchRecomputeAll answers the same query as Search but recomputes the
// full pattern distance from scratch at every node instead of charging only
// the residual bits beyond the parent. Because a child's pattern contains
// its parent's, the bound is identical and the result set is exactly
// Search's — only the redundant work returns. This is the ablation for the
// residual-distance accounting DESIGN.md calls out; it exists to be
// benchmarked, not used.
func (x *DynamicIndex) SearchRecomputeAll(q bitvec.Code, h int) []int {
	x.Stats = SearchStats{}
	var out []int
	type qitem struct {
		n *dnode
	}
	var queue []qitem
	for _, r := range x.roots {
		x.Stats.DistanceComputations++
		if r.pat.Distance(q) <= h {
			queue = append(queue, qitem{n: r})
		}
	}
	for _, g := range x.topLeaves {
		x.Stats.DistanceComputations++
		x.Stats.LeavesChecked++
		if _, ok := q.DistanceWithin(g.code, h); ok {
			out = append(out, g.ids...)
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		x.Stats.NodesVisited++
		for _, c := range it.n.children {
			x.Stats.DistanceComputations++
			if c.pat.Distance(q) <= h {
				queue = append(queue, qitem{n: c})
			}
		}
		for _, g := range it.n.leaves {
			x.Stats.DistanceComputations++
			x.Stats.LeavesChecked++
			if _, ok := q.DistanceWithin(g.code, h); ok {
				out = append(out, g.ids...)
			}
		}
	}
	for _, p := range x.buffer {
		x.Stats.DistanceComputations++
		if _, ok := q.DistanceWithin(p.code, h); ok {
			out = append(out, p.id)
		}
	}
	return out
}
