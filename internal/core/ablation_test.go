package core

import (
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
)

// TestSearchRecomputeAllEquivalence: the ablation search must return exactly
// the same results as H-Search.
func TestSearchRecomputeAllEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 6; trial++ {
		codes := clusteredCodes(rng, 300, 32, 6, 3)
		dyn := BuildDynamic(codes, nil, Options{Window: 4 + rng.Intn(8)})
		for q := 0; q < 15; q++ {
			query := codes[rng.Intn(len(codes))].Clone()
			for f := 0; f < rng.Intn(4); f++ {
				query.FlipBit(rng.Intn(32))
			}
			h := rng.Intn(7)
			if !equalIDs(dyn.Search(query, h), dyn.SearchRecomputeAll(query, h)) {
				t.Fatal("ablation search diverges from H-Search")
			}
		}
	}
}

// TestLexOrderAblationCorrect: a lexicographically-ordered index stays
// correct (only less effective).
func TestLexOrderAblationCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	codes := clusteredCodes(rng, 300, 32, 6, 3)
	lex := BuildDynamic(codes, nil, Options{Window: 8, LexOrder: true})
	for q := 0; q < 20; q++ {
		query := codes[rng.Intn(len(codes))].Clone()
		query.FlipBit(rng.Intn(32))
		h := rng.Intn(6)
		if got, want := lex.Search(query, h), oracle(codes, query, h); !equalIDs(got, want) {
			t.Fatal("lex-order index incorrect")
		}
	}
}

// TestNoConsolidateAblationCorrect: disabling node consolidation must not
// change results.
func TestNoConsolidateAblationCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	codes := clusteredCodes(rng, 300, 32, 6, 3)
	nc := BuildDynamic(codes, nil, Options{Window: 8, NoConsolidate: true})
	for q := 0; q < 20; q++ {
		query := codes[rng.Intn(len(codes))].Clone()
		query.FlipBit(rng.Intn(32))
		h := rng.Intn(6)
		if got, want := nc.Search(query, h), oracle(codes, query, h); !equalIDs(got, want) {
			t.Fatal("no-consolidate index incorrect")
		}
	}
}

// TestGrayOrderBeatsLexOnSuffixClusters: codes sharing suffixes but split on
// the first bit (the paper's t2/t7 scenario) favor Gray clustering over
// plain prefix order in distance computations.
func TestGrayOrderBeatsLexOnSuffixClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	// Clusters whose members differ in the high bits but share low bits.
	var codes []bitvec.Code
	for c := 0; c < 16; c++ {
		base := bitvec.Rand(rng, 32)
		for i := 0; i < 60; i++ {
			v := base.Clone()
			v.FlipBit(rng.Intn(4)) // churn only the leading bits
			codes = append(codes, v)
		}
	}
	grayIdx := BuildDynamic(codes, nil, Options{Window: 8})
	lexIdx := BuildDynamic(codes, nil, Options{Window: 8, LexOrder: true})
	grayWork, lexWork := 0, 0
	for q := 0; q < 30; q++ {
		query := codes[rng.Intn(len(codes))].Clone()
		query.FlipBit(rng.Intn(32))
		grayIdx.Search(query, 3)
		grayWork += grayIdx.Stats.DistanceComputations
		lexIdx.Search(query, 3)
		lexWork += lexIdx.Stats.DistanceComputations
	}
	if grayWork > lexWork*2 {
		t.Errorf("gray order did %d computations vs lex %d; expected competitive or better", grayWork, lexWork)
	}
}
