package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"unsafe"
)

// HADX v4 — the mmap-native frozen arena layout.
//
// Unlike v2 (varints, big-endian words, incremental parse) every integer in
// v4 is fixed-width little-endian and every array sits at an 8-byte-aligned
// offset, so a mapped file can be aliased in place: the word slabs become
// []uint64 and the CSR arrays []int32 views straight into the page cache,
// with no decode pass and no heap copy. A section table up front carries the
// (offset, byte-size) of each array; hostile-input validation runs on that
// table and on the small structural int32 arrays (bounds, monotonicity,
// level order), never on the big word slabs — any bit pattern in a code or
// residual word is a valid code, so the walks cannot be driven out of bounds
// by slab contents.
//
// Layout (byte offsets):
//
//	0   magic "HADX"
//	4   version byte 0x04, then 3 zero pad bytes
//	8   9 × uint64: length L, flags (bit0 ids present), n (tuple count),
//	    nGroups, nNodes, nRoots, nChild, nLeaf, nTop
//	80  uint64 section count (11)
//	88  11 × {uint64 offset, uint64 bytes} section table
//	264 sections, ascending, each 8-aligned and tightly packed (≤7 pad
//	    bytes between consecutive sections, ≤7 trailing):
//	      rootIDs    nRoots  × int32   (ascending node ids)
//	      topLeaves  nTop    × int32
//	      childStart nNodes+1 × int32  (CSR prefix)
//	      childList  nChild  × int32
//	      leafStart  nNodes+1 × int32  (CSR prefix)
//	      leafList   nLeaf   × int32
//	      idStart    nGroups+1 × int32 (CSR prefix)
//	      codeSlab   nGroups*nw × uint64
//	      idSlab     n × int64
//	      resSlab    nNodes*2*nw × uint64
//	      maskSlab   nNodes*nw × uint64
//
// The version byte doubles as the uvarint DecodeIndex reads after the magic,
// so v4 files flow through the same header as v1/v2/v3.
const codecVersionArena = 4

const (
	arenaSectionCount = 11
	arenaHeaderSize   = 8 + 9*8 + 8 + arenaSectionCount*16 // = 264, 8-aligned
)

// Section indexes in layout order.
const (
	secRoots = iota
	secTop
	secChildStart
	secChildList
	secLeafStart
	secLeafList
	secIDStart
	secCodeSlab
	secIDSlab
	secResSlab
	secMaskSlab
)

// canAliasArena reports whether this host can view little-endian v4 bytes in
// place: it must be little-endian with 64-bit ints (so []int aliases the
// int64 id slab). Anything else falls back to the copying decode.
var canAliasArena = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1 && strconv.IntSize == 64
}()

func align8(v uint64) uint64 { return (v + 7) &^ 7 }

// arenaCounts is the v4 fixed header after the magic/version.
type arenaCounts struct {
	length, flags, n                             uint64
	nGroups, nNodes, nRoots, nChild, nLeaf, nTop uint64
}

// sectionSizes returns the exact byte size of each section for these counts.
func (c arenaCounts) sectionSizes() [arenaSectionCount]uint64 {
	nw := (c.length + 63) / 64
	return [arenaSectionCount]uint64{
		secRoots:      4 * c.nRoots,
		secTop:        4 * c.nTop,
		secChildStart: 4 * (c.nNodes + 1),
		secChildList:  4 * c.nChild,
		secLeafStart:  4 * (c.nNodes + 1),
		secLeafList:   4 * c.nLeaf,
		secIDStart:    4 * (c.nGroups + 1),
		secCodeSlab:   8 * c.nGroups * nw,
		secIDSlab:     8 * c.n,
		secResSlab:    8 * c.nNodes * 2 * nw,
		secMaskSlab:   8 * c.nNodes * nw,
	}
}

// sectionTable lays the sections out tightly after the header: each offset is
// the 8-byte alignment of the previous end. It returns the table and the
// total file size.
func (c arenaCounts) sectionTable() ([arenaSectionCount][2]uint64, uint64) {
	sizes := c.sectionSizes()
	var table [arenaSectionCount][2]uint64
	cur := uint64(arenaHeaderSize)
	for i, sz := range sizes {
		table[i] = [2]uint64{cur, sz}
		cur = align8(cur + sz)
	}
	return table, cur
}

// EncodeArena writes the index in the HADX v4 mmap-native layout. With
// withIDs=false the id tables are zeroed (the leafless broadcast form).
// Unlike the v2 codec it represents scattered (streamed-forest) roots.
func (f *FrozenIndex) EncodeArena(w io.Writer, withIDs bool) error {
	nn := len(f.childStart) - 1
	c := arenaCounts{
		length:  uint64(f.length),
		nGroups: uint64(f.GroupCount()),
		nNodes:  uint64(nn),
		nRoots:  uint64(len(f.rootIDs)),
		nChild:  uint64(len(f.childList)),
		nLeaf:   uint64(len(f.leafList)),
		nTop:    uint64(len(f.topLeaves)),
	}
	if withIDs {
		c.flags = 1
		c.n = uint64(len(f.idSlab))
	}
	table, _ := c.sectionTable()

	bw := bufio.NewWriterSize(w, 1<<16)
	var u8 [8]byte
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u8[:], v)
		_, err := bw.Write(u8[:])
		return err
	}
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if _, err := bw.Write([]byte{codecVersionArena, 0, 0, 0}); err != nil {
		return err
	}
	for _, v := range []uint64{c.length, c.flags, c.n, c.nGroups, c.nNodes, c.nRoots, c.nChild, c.nLeaf, c.nTop, arenaSectionCount} {
		if err := putU64(v); err != nil {
			return err
		}
	}
	for _, s := range table {
		if err := putU64(s[0]); err != nil {
			return err
		}
		if err := putU64(s[1]); err != nil {
			return err
		}
	}

	// Section bodies, with up-to-7 zero pad bytes between them. The chunked
	// bulk copies mirror writeWordsBulk: one Write per 512 words.
	var chunk [512 * 8]byte
	cur := uint64(arenaHeaderSize)
	pad := func(to uint64) error {
		var zeros [8]byte
		for cur < to {
			n := to - cur
			if n > 8 {
				n = 8
			}
			if _, err := bw.Write(zeros[:n]); err != nil {
				return err
			}
			cur += n
		}
		return nil
	}
	writeI32s := func(vals []int32) error {
		for len(vals) > 0 {
			n := len(chunk) / 4
			if n > len(vals) {
				n = len(vals)
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(chunk[i*4:], uint32(vals[i]))
			}
			if _, err := bw.Write(chunk[:n*4]); err != nil {
				return err
			}
			cur += uint64(n * 4)
			vals = vals[n:]
		}
		return nil
	}
	writeU64s := func(vals []uint64) error {
		for len(vals) > 0 {
			n := len(chunk) / 8
			if n > len(vals) {
				n = len(vals)
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(chunk[i*8:], vals[i])
			}
			if _, err := bw.Write(chunk[:n*8]); err != nil {
				return err
			}
			cur += uint64(n * 8)
			vals = vals[n:]
		}
		return nil
	}
	writeInts := func(vals []int) error {
		for len(vals) > 0 {
			n := len(chunk) / 8
			if n > len(vals) {
				n = len(vals)
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(chunk[i*8:], uint64(int64(vals[i])))
			}
			if _, err := bw.Write(chunk[:n*8]); err != nil {
				return err
			}
			cur += uint64(n * 8)
			vals = vals[n:]
		}
		return nil
	}

	idStart := f.idStart
	idSlab := f.idSlab
	if !withIDs {
		idStart = make([]int32, c.nGroups+1)
		idSlab = nil
	}
	for i, body := range []func() error{
		secRoots:      func() error { return writeI32s(f.rootIDs) },
		secTop:        func() error { return writeI32s(f.topLeaves) },
		secChildStart: func() error { return writeI32s(f.childStart) },
		secChildList:  func() error { return writeI32s(f.childList) },
		secLeafStart:  func() error { return writeI32s(f.leafStart) },
		secLeafList:   func() error { return writeI32s(f.leafList) },
		secIDStart:    func() error { return writeI32s(idStart) },
		secCodeSlab:   func() error { return writeU64s(f.codeSlab) },
		secIDSlab:     func() error { return writeInts(idSlab) },
		secResSlab:    func() error { return writeU64s(f.resSlab) },
		secMaskSlab:   func() error { return writeU64s(f.maskSlab) },
	} {
		if err := pad(table[i][0]); err != nil {
			return err
		}
		if err := body(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodedSizeArena returns the exact v4 file size without encoding.
func (f *FrozenIndex) EncodedSizeArena(withIDs bool) int {
	nn := len(f.childStart) - 1
	c := arenaCounts{
		length:  uint64(f.length),
		nGroups: uint64(f.GroupCount()),
		nNodes:  uint64(nn),
		nRoots:  uint64(len(f.rootIDs)),
		nChild:  uint64(len(f.childList)),
		nLeaf:   uint64(len(f.leafList)),
		nTop:    uint64(len(f.topLeaves)),
	}
	if withIDs {
		c.n = uint64(len(f.idSlab))
	}
	_, total := c.sectionTable()
	return int(total)
}

// DecodeArenaBytes parses a complete v4 arena image. When alias is true (and
// the host allows it) the returned index's slabs alias data — the caller must
// keep data immutable and alive for the index's lifetime; MapFrozen uses this
// over an mmap'd region. When alias is false every array is copied onto the
// heap and data may be discarded.
//
// Corrupt input — truncated, misaligned, overlapping or mis-sized sections,
// out-of-range or out-of-level-order references — returns an error, never
// panics. The word slabs themselves are not validated: every bit pattern is a
// legal code/residual, so they cannot make a walk misbehave.
func DecodeArenaBytes(data []byte, alias bool) (*FrozenIndex, error) {
	if len(data) < arenaHeaderSize {
		return nil, fmt.Errorf("core: arena truncated: %d bytes < %d header", len(data), arenaHeaderSize)
	}
	if string(data[:4]) != codecMagic {
		return nil, fmt.Errorf("core: bad arena magic %q", data[:4])
	}
	if data[4] != codecVersionArena || data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("core: bad arena version bytes % x", data[4:8])
	}
	u64at := func(off int) uint64 { return binary.LittleEndian.Uint64(data[off:]) }
	c := arenaCounts{
		length: u64at(8), flags: u64at(16), n: u64at(24),
		nGroups: u64at(32), nNodes: u64at(40), nRoots: u64at(48),
		nChild: u64at(56), nLeaf: u64at(64), nTop: u64at(72),
	}
	if u64at(80) != arenaSectionCount {
		return nil, fmt.Errorf("core: arena section count %d, want %d", u64at(80), arenaSectionCount)
	}
	if c.length == 0 || c.length > 1<<20 {
		return nil, fmt.Errorf("core: implausible code length %d", c.length)
	}
	const maxCount = 1<<31 - 2
	for _, v := range []uint64{c.n, c.nGroups, c.nNodes, c.nRoots, c.nChild, c.nLeaf, c.nTop} {
		if v > maxCount {
			return nil, fmt.Errorf("core: arena counts overflow")
		}
	}
	if c.nRoots > c.nNodes {
		return nil, fmt.Errorf("core: arena claims %d roots of %d nodes", c.nRoots, c.nNodes)
	}

	// The section table must match the layout implied by the counts exactly:
	// ascending 8-aligned offsets with ≤7 pad bytes between sections, sizes
	// equal to count×width, and the last section ending within 7 bytes of
	// EOF. Anything else — overlap, gaps, truncation — is rejected here,
	// before a single array is touched.
	want, total := c.sectionTable()
	if uint64(len(data)) < total || uint64(len(data)) > align8(total) {
		return nil, fmt.Errorf("core: arena is %d bytes, layout wants %d", len(data), total)
	}
	var secs [arenaSectionCount][]byte
	for i := range want {
		off := u64at(88 + i*16)
		size := u64at(88 + i*16 + 8)
		if off != want[i][0] || size != want[i][1] {
			return nil, fmt.Errorf("core: arena section %d at (%d,%d), layout wants (%d,%d)", i, off, size, want[i][0], want[i][1])
		}
		secs[i] = data[off : off+size]
	}

	nw := int(c.length+63) / 64
	f := &FrozenIndex{
		length:    int(c.length),
		n:         int(c.n),
		nw:        nw,
		arenaForm: true,
	}
	if alias && canAliasArena {
		f.rootIDs = aliasI32(secs[secRoots])
		f.topLeaves = aliasI32(secs[secTop])
		f.childStart = aliasI32(secs[secChildStart])
		f.childList = aliasI32(secs[secChildList])
		f.leafStart = aliasI32(secs[secLeafStart])
		f.leafList = aliasI32(secs[secLeafList])
		f.idStart = aliasI32(secs[secIDStart])
		f.codeSlab = aliasU64(secs[secCodeSlab])
		f.idSlab = aliasInt(secs[secIDSlab])
		f.resSlab = aliasU64(secs[secResSlab])
		f.maskSlab = aliasU64(secs[secMaskSlab])
	} else {
		f.rootIDs = copyI32(secs[secRoots])
		f.topLeaves = copyI32(secs[secTop])
		f.childStart = copyI32(secs[secChildStart])
		f.childList = copyI32(secs[secChildList])
		f.leafStart = copyI32(secs[secLeafStart])
		f.leafList = copyI32(secs[secLeafList])
		f.idStart = copyI32(secs[secIDStart])
		f.codeSlab = copyU64(secs[secCodeSlab])
		f.idSlab = copyInt(secs[secIDSlab])
		f.resSlab = copyU64(secs[secResSlab])
		f.maskSlab = copyU64(secs[secMaskSlab])
	}
	if err := f.validateStructure(c); err != nil {
		return nil, err
	}
	return f, nil
}

// validateStructure bounds- and order-checks every structural array so the
// walks can index the slabs without further checks. It runs on the aliased
// views directly (cheap int32 scans; the word slabs are never read).
func (f *FrozenIndex) validateStructure(c arenaCounts) error {
	nNodes, nGroups := int32(c.nNodes), int32(c.nGroups)
	prev := int32(-1)
	for _, r := range f.rootIDs {
		if r <= prev || r >= nNodes {
			return fmt.Errorf("core: arena root %d out of order or range", r)
		}
		prev = r
	}
	for _, gi := range f.topLeaves {
		if gi < 0 || gi >= nGroups {
			return fmt.Errorf("core: arena top leaf %d out of range", gi)
		}
	}
	checkCSR := func(starts []int32, total uint64, what string) error {
		if starts[0] != 0 || starts[len(starts)-1] != int32(total) {
			return fmt.Errorf("core: arena %s prefix ends [%d,%d], want [0,%d]", what, starts[0], starts[len(starts)-1], total)
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] < starts[i-1] {
				return fmt.Errorf("core: arena %s prefix decreases at %d", what, i)
			}
		}
		return nil
	}
	if err := checkCSR(f.childStart, c.nChild, "child"); err != nil {
		return err
	}
	if err := checkCSR(f.leafStart, c.nLeaf, "leaf"); err != nil {
		return err
	}
	if err := checkCSR(f.idStart, c.n, "id"); err != nil {
		return err
	}
	// Level-order invariant: every child id exceeds its parent's — rules out
	// cycles and guarantees the BFS walk terminates.
	for nid := int32(0); nid < nNodes; nid++ {
		for ci := f.childStart[nid]; ci < f.childStart[nid+1]; ci++ {
			if cc := f.childList[ci]; cc <= nid || cc >= nNodes {
				return fmt.Errorf("core: arena node %d lists child %d out of level order", nid, cc)
			}
		}
	}
	for _, gi := range f.leafList {
		if gi < 0 || gi >= nGroups {
			return fmt.Errorf("core: arena leaf ref %d out of range", gi)
		}
	}
	return nil
}

// decodeArenaBody is the DecodeIndex dispatch target: the bufio reader sits
// just past the magic and the version byte (read as a uvarint), so the three
// pad bytes and everything after are still in the stream. It reassembles the
// full image and parses it copying — io.Reader input has no stable backing to
// alias.
func decodeArenaBody(br *bufio.Reader) (Index, error) {
	rest, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading arena: %w", err)
	}
	data := make([]byte, 0, 5+len(rest))
	data = append(data, codecMagic...)
	data = append(data, codecVersionArena)
	data = append(data, rest...)
	return DecodeArenaBytes(data, false)
}

// mapFrozenEager is the portable MapFrozen fallback: read the whole file and
// decode copying.
func mapFrozenEager(path string, off int64) (*FrozenIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if off < 0 || off%8 != 0 || off >= int64(len(data)) {
		return nil, fmt.Errorf("core: arena offset %d in a %d-byte file", off, len(data))
	}
	return DecodeArenaBytes(data[off:], false)
}

// ---- byte-slice views ----

func aliasI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func aliasU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func aliasInt(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8)
}

func copyI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func copyU64(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func copyInt(b []byte) []int {
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[i*8:])))
	}
	return out
}
