package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"haindex/internal/bitvec"
)

// FrozenStreamWriter builds a HADX v4 arena incrementally, in bounded
// memory: tuples are accumulated into chunks, each chunk is built and frozen
// on its own (a pointer DAG over only chunkSize codes), and the chunk's
// arenas are appended — with all node/group/offset references shifted by the
// running totals — onto per-section temp spool files that Finish concatenates
// into the final image. Peak RSS is O(chunkSize), not O(total), which is what
// lets a MapReduce reducer emit a multi-million-code frozen shard without
// ever materializing the partition's pointer index.
//
// The result is a forest of per-chunk hierarchies over disjoint tuple
// subsets: its roots are scattered (recorded in the v4 root list), but the
// level-order child>parent invariant holds because every chunk's ids are
// shifted uniformly, so the frozen walks run unchanged. Search answers are
// the union over chunks — identical to a monolithic build's answers, since
// both emit exactly the tuples within distance h. Feed tuples in Gray-rank
// order (gray.Sort) so each chunk covers a tight Gray range and the per-chunk
// hierarchies stay as selective as a monolithic build's.
//
// The writer is single-goroutine; after Finish or Abort it must not be used.
type FrozenStreamWriter struct {
	length    int
	chunkSize int
	opts      Options

	codes []bitvec.Code
	ids   []int

	dir    string
	spools [arenaSectionCount]*spool

	nGroups, nNodes, nRoots, nChild, nLeaf, nTop, n uint64
	chunks                                          int
	err                                             error
}

// spool is one section's temp file behind a buffered writer.
type spool struct {
	f  *os.File
	bw *bufio.Writer
}

// NewFrozenStreamWriter returns a streaming builder for length-bit codes
// that freezes every chunkSize tuples (≥1; a few hundred thousand is a good
// default — small enough to bound RSS, large enough that per-chunk hierarchy
// quality matches a monolithic build over the same Gray range). Spool files
// live in a fresh temp directory until Finish or Abort removes them.
func NewFrozenStreamWriter(length, chunkSize int, opts Options) (*FrozenStreamWriter, error) {
	if length <= 0 || length > 1<<20 {
		return nil, fmt.Errorf("core: implausible code length %d", length)
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("core: chunk size %d", chunkSize)
	}
	dir, err := os.MkdirTemp("", "haidx-arena-")
	if err != nil {
		return nil, err
	}
	sw := &FrozenStreamWriter{length: length, chunkSize: chunkSize, opts: opts, dir: dir}
	for i := range sw.spools {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("sec%02d", i)))
		if err != nil {
			sw.Abort()
			return nil, err
		}
		sw.spools[i] = &spool{f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	}
	return sw, nil
}

// Add appends one tuple. When the current chunk fills, it is built, frozen,
// and spooled before Add returns.
func (sw *FrozenStreamWriter) Add(id int, code bitvec.Code) error {
	if sw.err != nil {
		return sw.err
	}
	if code.Len() != sw.length {
		return sw.fail(fmt.Errorf("core: %d-bit code in a %d-bit stream", code.Len(), sw.length))
	}
	sw.codes = append(sw.codes, code)
	sw.ids = append(sw.ids, id)
	if len(sw.codes) >= sw.chunkSize {
		return sw.flushChunk()
	}
	return nil
}

// Len returns the number of tuples added so far.
func (sw *FrozenStreamWriter) Len() int { return int(sw.n) + len(sw.codes) }

// Length returns the code length in bits the stream was created for.
func (sw *FrozenStreamWriter) Length() int { return sw.length }

func (sw *FrozenStreamWriter) fail(err error) error {
	if sw.err == nil {
		sw.err = err
		sw.cleanup()
	}
	return sw.err
}

// flushChunk freezes the buffered tuples and appends their arenas to the
// spools, shifting every cross-array reference by the running totals.
func (sw *FrozenStreamWriter) flushChunk() error {
	if len(sw.codes) == 0 {
		return nil
	}
	f := Freeze(BuildDynamic(sw.codes, sw.ids, sw.opts))
	sw.codes = sw.codes[:0]
	sw.ids = sw.ids[:0]

	nodeOff, groupOff := int32(sw.nNodes), int32(sw.nGroups)
	childOff, leafOff, idOff := int32(sw.nChild), int32(sw.nLeaf), int32(sw.n)
	nn := len(f.childStart) - 1

	const maxCount = 1<<31 - 2
	sw.nGroups += uint64(f.GroupCount())
	sw.nNodes += uint64(nn)
	sw.nRoots += uint64(len(f.rootIDs))
	sw.nChild += uint64(len(f.childList))
	sw.nLeaf += uint64(len(f.leafList))
	sw.nTop += uint64(len(f.topLeaves))
	sw.n += uint64(len(f.idSlab))
	for _, v := range []uint64{sw.nGroups, sw.nNodes, sw.nChild, sw.nLeaf, sw.n} {
		if v > maxCount {
			return sw.fail(fmt.Errorf("core: streamed arena exceeds 2^31 elements"))
		}
	}
	sw.chunks++

	shift := func(sec int, vals []int32, off int32) error {
		return spoolI32s(sw.spools[sec], vals, off)
	}
	// The prefix arrays spool without their final sentinel — the next chunk's
	// shifted entries continue them, and Finish appends the closing totals.
	if err := shift(secRoots, f.rootIDs, nodeOff); err != nil {
		return sw.fail(err)
	}
	if err := shift(secTop, f.topLeaves, groupOff); err != nil {
		return sw.fail(err)
	}
	if err := shift(secChildStart, f.childStart[:nn], childOff); err != nil {
		return sw.fail(err)
	}
	if err := shift(secChildList, f.childList, nodeOff); err != nil {
		return sw.fail(err)
	}
	if err := shift(secLeafStart, f.leafStart[:nn], leafOff); err != nil {
		return sw.fail(err)
	}
	if err := shift(secLeafList, f.leafList, groupOff); err != nil {
		return sw.fail(err)
	}
	if err := shift(secIDStart, f.idStart[:f.GroupCount()], idOff); err != nil {
		return sw.fail(err)
	}
	if err := spoolU64s(sw.spools[secCodeSlab], f.codeSlab); err != nil {
		return sw.fail(err)
	}
	if err := spoolInts(sw.spools[secIDSlab], f.idSlab); err != nil {
		return sw.fail(err)
	}
	if err := spoolU64s(sw.spools[secResSlab], f.resSlab); err != nil {
		return sw.fail(err)
	}
	if err := spoolU64s(sw.spools[secMaskSlab], f.maskSlab); err != nil {
		return sw.fail(err)
	}
	return nil
}

// Finish freezes the last partial chunk, closes the prefix arrays, and
// assembles the v4 arena image onto out (header, section table, then each
// spool streamed through in section order). The spool directory is removed
// on return. The image always carries id tables (flags bit0 set).
func (sw *FrozenStreamWriter) Finish(out io.Writer) error {
	if sw.err != nil {
		return sw.err
	}
	if err := sw.flushChunk(); err != nil {
		return err
	}
	if err := spoolI32s(sw.spools[secChildStart], []int32{int32(sw.nChild)}, 0); err != nil {
		return sw.fail(err)
	}
	if err := spoolI32s(sw.spools[secLeafStart], []int32{int32(sw.nLeaf)}, 0); err != nil {
		return sw.fail(err)
	}
	if err := spoolI32s(sw.spools[secIDStart], []int32{int32(sw.n)}, 0); err != nil {
		return sw.fail(err)
	}

	c := arenaCounts{
		length: uint64(sw.length), flags: 1, n: sw.n,
		nGroups: sw.nGroups, nNodes: sw.nNodes, nRoots: sw.nRoots,
		nChild: sw.nChild, nLeaf: sw.nLeaf, nTop: sw.nTop,
	}
	table, _ := c.sectionTable()

	bw := bufio.NewWriterSize(out, 1<<16)
	var u8 [8]byte
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u8[:], v)
		_, err := bw.Write(u8[:])
		return err
	}
	if _, err := bw.WriteString(codecMagic); err != nil {
		return sw.fail(err)
	}
	if _, err := bw.Write([]byte{codecVersionArena, 0, 0, 0}); err != nil {
		return sw.fail(err)
	}
	for _, v := range []uint64{c.length, c.flags, c.n, c.nGroups, c.nNodes, c.nRoots, c.nChild, c.nLeaf, c.nTop, arenaSectionCount} {
		if err := putU64(v); err != nil {
			return sw.fail(err)
		}
	}
	for _, s := range table {
		if err := putU64(s[0]); err != nil {
			return sw.fail(err)
		}
		if err := putU64(s[1]); err != nil {
			return sw.fail(err)
		}
	}
	cur := uint64(arenaHeaderSize)
	for i, sp := range sw.spools {
		var zeros [8]byte
		for cur < table[i][0] {
			n := table[i][0] - cur
			if n > 8 {
				n = 8
			}
			if _, err := bw.Write(zeros[:n]); err != nil {
				return sw.fail(err)
			}
			cur += n
		}
		if err := sp.bw.Flush(); err != nil {
			return sw.fail(err)
		}
		if _, err := sp.f.Seek(0, io.SeekStart); err != nil {
			return sw.fail(err)
		}
		copied, err := io.Copy(bw, sp.f)
		if err != nil {
			return sw.fail(err)
		}
		if uint64(copied) != table[i][1] {
			return sw.fail(fmt.Errorf("core: spool %d holds %d bytes, layout wants %d", i, copied, table[i][1]))
		}
		cur += uint64(copied)
	}
	if err := bw.Flush(); err != nil {
		return sw.fail(err)
	}
	sw.cleanup()
	sw.err = fmt.Errorf("core: FrozenStreamWriter already finished")
	return nil
}

// Abort discards all spooled state and removes the temp directory.
func (sw *FrozenStreamWriter) Abort() {
	sw.cleanup()
	if sw.err == nil {
		sw.err = fmt.Errorf("core: FrozenStreamWriter aborted")
	}
}

func (sw *FrozenStreamWriter) cleanup() {
	for _, sp := range sw.spools {
		if sp != nil && sp.f != nil {
			sp.f.Close()
			sp.f = nil
		}
	}
	if sw.dir != "" {
		os.RemoveAll(sw.dir)
		sw.dir = ""
	}
}

func spoolI32s(sp *spool, vals []int32, off int32) error {
	var chunk [512 * 4]byte
	for len(vals) > 0 {
		n := len(chunk) / 4
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[i*4:], uint32(vals[i]+off))
		}
		if _, err := sp.bw.Write(chunk[:n*4]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func spoolU64s(sp *spool, vals []uint64) error {
	var chunk [512 * 8]byte
	for len(vals) > 0 {
		n := len(chunk) / 8
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], vals[i])
		}
		if _, err := sp.bw.Write(chunk[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func spoolInts(sp *spool, vals []int) error {
	var chunk [512 * 8]byte
	for len(vals) > 0 {
		n := len(chunk) / 8
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], uint64(int64(vals[i])))
		}
		if _, err := sp.bw.Write(chunk[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}
