package core

import (
	"bytes"
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
)

// buildStreamedArena streams n clustered bitsLen-bit codes (Gray-sorted, as
// the shard pipeline feeds them) through a FrozenStreamWriter in chunkSize
// chunks and decodes the resulting v4 image.
func buildStreamedArena(tb testing.TB, n, bitsLen, chunkSize int) *FrozenIndex {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(n + bitsLen)))
	codes := clusteredCodes(rng, n, bitsLen, 10, 3)
	ids := make([]int, len(codes))
	for i := range ids {
		ids[i] = i
	}
	gray.Sort(codes, ids)
	sw, err := NewFrozenStreamWriter(bitsLen, chunkSize, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := range codes {
		if err := sw.Add(ids[i], codes[i]); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sw.Finish(&buf); err != nil {
		tb.Fatal(err)
	}
	f, err := DecodeArenaBytes(buf.Bytes(), false)
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

// TestStreamedEquivalence: the chunked streaming build answers Search and
// TopK exactly like a monolithic build over the same tuples — the forest of
// per-chunk hierarchies covers disjoint subsets whose union is the whole
// partition. Exercised across chunk sizes that divide the input unevenly.
func TestStreamedEquivalence(t *testing.T) {
	for _, bitsLen := range []int{32, 128} {
		for _, chunkSize := range []int{64, 257, 1 << 20} {
			rng := rand.New(rand.NewSource(int64(bitsLen * chunkSize)))
			codes := clusteredCodes(rng, 800, bitsLen, 10, 3)
			ids := make([]int, len(codes))
			for i := range ids {
				ids[i] = i
			}
			mono := Freeze(BuildDynamic(codes, ids, Options{}))

			sortedCodes := append([]bitvec.Code(nil), codes...)
			sortedIDs := append([]int(nil), ids...)
			gray.Sort(sortedCodes, sortedIDs)
			sw, err := NewFrozenStreamWriter(bitsLen, chunkSize, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range sortedCodes {
				if err := sw.Add(sortedIDs[i], sortedCodes[i]); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := sw.Finish(&buf); err != nil {
				t.Fatal(err)
			}
			streamed, err := DecodeArenaBytes(buf.Bytes(), false)
			if err != nil {
				t.Fatal(err)
			}
			if streamed.Len() != mono.Len() {
				t.Fatalf("L=%d chunk=%d: streamed %d tuples, want %d", bitsLen, chunkSize, streamed.Len(), mono.Len())
			}

			queries := make([]bitvec.Code, 24)
			for i := range queries {
				if i%3 == 0 {
					queries[i] = bitvec.Rand(rng, bitsLen)
				} else {
					queries[i] = codes[rng.Intn(len(codes))]
				}
			}
			ssr, msr := NewSearcher(streamed), NewSearcher(mono)
			for h := 0; h <= 6; h += 2 {
				for qi, q := range queries {
					got := append([]int(nil), ssr.Search(q, h)...)
					if want := msr.Search(q, h); !equalIDs(got, want) {
						t.Fatalf("L=%d chunk=%d h=%d q#%d: streamed %d ids, monolithic %d", bitsLen, chunkSize, h, qi, len(got), len(want))
					}
				}
			}
			for _, k := range []int{1, 9, 50} {
				for qi, q := range queries {
					gi, gd := ssr.TopK(q, k)
					wi, wd := msr.TopK(q, k)
					if !equalIDs(gi, wi) {
						t.Fatalf("L=%d chunk=%d k=%d q#%d: streamed ids %v, want %v", bitsLen, chunkSize, k, qi, gi, wi)
					}
					for i := range gd {
						if gd[i] != wd[i] {
							t.Fatalf("L=%d chunk=%d k=%d q#%d: dist[%d]=%d, want %d", bitsLen, chunkSize, k, qi, i, gd[i], wd[i])
						}
					}
				}
			}
		}
	}
}

// TestStreamedEmpty: finishing with no tuples yields a valid empty arena.
func TestStreamedEmpty(t *testing.T) {
	sw, err := NewFrozenStreamWriter(64, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := DecodeArenaBytes(buf.Bytes(), false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 || f.GroupCount() != 0 {
		t.Fatalf("empty stream decoded to %d tuples, %d groups", f.Len(), f.GroupCount())
	}
	sr := NewSearcher(f)
	if got := sr.Search(bitvec.New(64), 10); len(got) != 0 {
		t.Fatalf("empty arena answered %d ids", len(got))
	}
}

// TestStreamWriterReuseRejected: Add/Finish after Finish must error, not
// corrupt spools.
func TestStreamWriterReuseRejected(t *testing.T) {
	sw, err := NewFrozenStreamWriter(32, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Add(1, bitvec.FromUint64(5, 32)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sw.Add(2, bitvec.FromUint64(6, 32)); err == nil {
		t.Fatal("Add accepted after Finish")
	}
	if err := sw.Finish(&buf); err == nil {
		t.Fatal("Finish accepted twice")
	}
	// Wrong-width codes fail fast.
	sw2, err := NewFrozenStreamWriter(32, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Abort()
	if err := sw2.Add(1, bitvec.FromUint64(5, 16)); err == nil {
		t.Fatal("Add accepted a 16-bit code into a 32-bit stream")
	}
}
