package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"haindex/internal/bitvec"
)

// validArenaEncoding freezes a small clustered index and returns its v4
// arena image.
func validArenaEncoding(tb testing.TB, withIDs bool) ([]byte, *FrozenIndex) {
	tb.Helper()
	rng := rand.New(rand.NewSource(157))
	codes := clusteredCodes(rng, 60, 32, 3, 2)
	ids := make([]int, len(codes))
	for i := range ids {
		ids[i] = i
	}
	frozen := Freeze(BuildDynamic(codes, ids, Options{}))
	var buf bytes.Buffer
	if err := frozen.EncodeArena(&buf, withIDs); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), frozen
}

// TestArenaRoundTrip: EncodeArena∘DecodeArenaBytes is the identity on the
// search surface for both the copying and (when the host allows) aliasing
// parse, with and without id tables, and DecodeIndex dispatches v4 bytes.
func TestArenaRoundTrip(t *testing.T) {
	for _, withIDs := range []bool{true, false} {
		data, orig := validArenaEncoding(t, withIDs)
		if got := orig.EncodedSizeArena(withIDs); got != len(data) {
			t.Fatalf("withIDs=%v: EncodedSizeArena %d, encoded %d bytes", withIDs, got, len(data))
		}
		for _, alias := range []bool{false, true} {
			got, err := DecodeArenaBytes(data, alias)
			if err != nil {
				t.Fatalf("withIDs=%v alias=%v: %v", withIDs, alias, err)
			}
			if !got.arenaForm {
				t.Fatal("decoded arena not marked arenaForm")
			}
			if got.Length() != orig.Length() || got.GroupCount() != orig.GroupCount() ||
				got.NodeCount() != orig.NodeCount() || got.EdgeCount() != orig.EdgeCount() {
				t.Fatalf("withIDs=%v alias=%v: structure mismatch after round trip", withIDs, alias)
			}
			wantLen := orig.Len()
			if !withIDs {
				wantLen = 0
			}
			if got.Len() != wantLen {
				t.Fatalf("withIDs=%v: %d tuples, want %d", withIDs, got.Len(), wantLen)
			}
			gsr, osr := NewSearcher(got), NewSearcher(orig)
			for _, c := range orig.Codes()[:20] {
				if g, w := gsr.SearchCodes(c, 2), osr.SearchCodes(c, 2); len(g) != len(w) {
					t.Fatalf("withIDs=%v alias=%v: %d codes, want %d", withIDs, alias, len(g), len(w))
				}
				if withIDs {
					if g, w := gsr.Search(c, 2), osr.Search(c, 2); !equalIDs(g, w) {
						t.Fatalf("alias=%v: %d ids, want %d", alias, len(g), len(w))
					}
				}
			}
		}
		idx, err := DecodeIndex(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		fi, ok := idx.(*FrozenIndex)
		if !ok || !fi.arenaForm {
			t.Fatalf("DecodeIndex returned %T (arenaForm=%v) for a v4 encoding", idx, ok && fi.arenaForm)
		}
	}
}

// TestMapFrozenMatchesEager: the mmap'd view and the eager decode answer
// byte-identical Search/TopK results over a mixed query set — the tentpole
// equivalence property. Run under -race this also exercises concurrent
// searchers over one shared mapping.
func TestMapFrozenMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	codes := clusteredCodes(rng, 1200, 64, 12, 3)
	ids := make([]int, len(codes))
	for i := range ids {
		ids[i] = i * 3
	}
	frozen := Freeze(BuildDynamic(codes, ids, Options{}))
	path := filepath.Join(t.TempDir(), "shard.hadx")
	fd, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := frozen.EncodeArena(fd, true); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}

	mapped, err := MapFrozen(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	eager, err := mapFrozenEager(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.MappedBytes() > 0 && mapped.HeapBytes() >= eager.HeapBytes() {
		t.Fatalf("mapped HeapBytes %d not below eager %d", mapped.HeapBytes(), eager.HeapBytes())
	}

	queries := make([]bitvec.Code, 48)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = bitvec.Rand(rng, 64)
		} else {
			queries[i] = codes[rng.Intn(len(codes))]
		}
	}
	done := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			msr, esr := NewSearcher(mapped), NewSearcher(eager)
			for h := 0; h <= 6; h++ {
				for _, q := range queries {
					got := append([]int(nil), msr.Search(q, h)...)
					if want := esr.Search(q, h); !equalIDs(got, want) {
						done <- &searchMismatchError{len(got), len(want)}
						return
					}
				}
			}
			for _, k := range []int{1, 7, 33} {
				for _, q := range queries {
					gi, gd := msr.TopK(q, k)
					wi, wd := esr.TopK(q, k)
					if !equalIDs(gi, wi) {
						done <- &searchMismatchError{len(gi), len(wi)}
						return
					}
					for i := range gd {
						if gd[i] != wd[i] {
							done <- &searchMismatchError{gd[i], wd[i]}
							return
						}
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 2; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestArenaStreamedRoundTrip: a FrozenStreamWriter arena (scattered roots)
// survives the v4 round trip — the v2 codec must refuse it, the arena codec
// must preserve it.
func TestArenaStreamedRoundTrip(t *testing.T) {
	f := buildStreamedArena(t, 900, 64, 128)
	if f.rootsContiguous() {
		t.Skip("streamed build happened to produce contiguous roots")
	}
	if err := f.Encode(&bytes.Buffer{}, true); err == nil {
		t.Fatal("v2 codec accepted scattered roots")
	}
	var buf bytes.Buffer
	if err := f.EncodeArena(&buf, true); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeArenaBytes(buf.Bytes(), false)
	if err != nil {
		t.Fatal(err)
	}
	gsr, osr := NewSearcher(got), NewSearcher(f)
	for _, c := range f.Codes()[:30] {
		if g, w := gsr.Search(c, 3), osr.Search(c, 3); !equalIDs(g, w) {
			t.Fatalf("streamed round trip: %d ids, want %d", len(g), len(w))
		}
	}
}

// corrupt returns a copy of data with an in-place edit applied.
func corrupt(data []byte, edit func([]byte)) []byte {
	out := append([]byte(nil), data...)
	edit(out)
	return out
}

// TestDecodeArenaCorruptInput: truncated, misaligned, overlapping, mis-sized
// and structurally invalid images must all be rejected with an error — never
// a panic — by both the copying and aliasing parse.
func TestDecodeArenaCorruptInput(t *testing.T) {
	valid, _ := validArenaEncoding(t, true)
	putU64 := func(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
	secOff := func(i int) int { return 88 + i*16 }

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"header only half", valid[:100]},
		{"bad magic", corrupt(valid, func(b []byte) { b[0] = 'X' })},
		{"bad version", corrupt(valid, func(b []byte) { b[4] = 9 })},
		{"nonzero version pad", corrupt(valid, func(b []byte) { b[6] = 1 })},
		{"zero length", corrupt(valid, func(b []byte) { putU64(b, 8, 0) })},
		{"huge length", corrupt(valid, func(b []byte) { putU64(b, 8, 1<<21) })},
		{"count overflow", corrupt(valid, func(b []byte) { putU64(b, 32, 1<<40) })},
		{"roots exceed nodes", corrupt(valid, func(b []byte) { putU64(b, 48, 1<<20) })},
		{"bad section count", corrupt(valid, func(b []byte) { putU64(b, 80, 7) })},
		// Section table attacks: misaligned offset, overlap with the previous
		// section, inflated size, offset past EOF.
		{"misaligned section", corrupt(valid, func(b []byte) {
			putU64(b, secOff(secCodeSlab), binary.LittleEndian.Uint64(b[secOff(secCodeSlab):])+4)
		})},
		{"overlapping sections", corrupt(valid, func(b []byte) {
			putU64(b, secOff(secResSlab), binary.LittleEndian.Uint64(b[secOff(secCodeSlab):]))
		})},
		{"inflated section size", corrupt(valid, func(b []byte) {
			putU64(b, secOff(secMaskSlab)+8, 1<<30)
		})},
		{"section past EOF", corrupt(valid, func(b []byte) {
			putU64(b, secOff(secMaskSlab), uint64(len(valid)+1024))
		})},
		// Structural attacks inside otherwise-consistent sections. The first
		// root must be nonnegative and ascending; a CSR prefix must start at 0.
		{"negative root", corrupt(valid, func(b []byte) {
			off := binary.LittleEndian.Uint64(b[secOff(secRoots):])
			binary.LittleEndian.PutUint32(b[off:], 0xffffffff)
		})},
		{"childStart not zero-based", corrupt(valid, func(b []byte) {
			off := binary.LittleEndian.Uint64(b[secOff(secChildStart):])
			binary.LittleEndian.PutUint32(b[off:], 1)
		})},
		{"leaf ref out of range", corrupt(valid, func(b []byte) {
			off := binary.LittleEndian.Uint64(b[secOff(secLeafList):])
			binary.LittleEndian.PutUint32(b[off:], 1<<30)
		})},
		{"child out of level order", corrupt(valid, func(b []byte) {
			off := binary.LittleEndian.Uint64(b[secOff(secChildList):])
			binary.LittleEndian.PutUint32(b[off:], 0)
		})},
		{"trailing garbage", append(append([]byte(nil), valid...), make([]byte, 64)...)},
	}
	for _, cut := range []int{8, arenaHeaderSize - 1, arenaHeaderSize + 3, len(valid) / 2, len(valid) - 1} {
		cases = append(cases, struct {
			name string
			data []byte
		}{"truncated", valid[:cut]})
	}
	for _, tc := range cases {
		for _, alias := range []bool{false, true} {
			if _, err := DecodeArenaBytes(tc.data, alias); err == nil {
				t.Errorf("%s (%d bytes, alias=%v): decode accepted corrupt input", tc.name, len(tc.data), alias)
			}
		}
	}
	if _, err := DecodeArenaBytes(valid, false); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
	// MapFrozen on a corrupt file must reject (and release the mapping).
	badFile := corrupt(valid, func(b []byte) { putU64(b, secOff(secMaskSlab)+8, 1<<30) })
	path := filepath.Join(t.TempDir(), "bad.hadx")
	if err := os.WriteFile(path, badFile, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFrozen(path); err == nil {
		t.Fatal("MapFrozen accepted a corrupt arena")
	}
}

// FuzzSectionTable mutates a valid v4 image — truncation plus an 8-byte
// splat at an arbitrary offset, which reaches every header field, section
// table entry, and structural array. Decode must either error or yield an
// index whose walks terminate without panicking, on both parse paths.
func FuzzSectionTable(f *testing.F) {
	valid, _ := validArenaEncoding(f, true)
	f.Add(uint16(len(valid)), uint16(0), uint64(0))
	f.Add(uint16(len(valid)), uint16(88), uint64(1)<<33)
	f.Add(uint16(len(valid)), uint16(96), uint64(0xffffffffffffffff))
	f.Add(uint16(200), uint16(8), uint64(3))
	f.Fuzz(func(t *testing.T, cut uint16, at uint16, splat uint64) {
		data := append([]byte(nil), valid...)
		if int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) >= 8 {
			off := int(at) % (len(data) - 7)
			binary.LittleEndian.PutUint64(data[off:], splat)
		}
		for _, alias := range []bool{false, true} {
			got, err := DecodeArenaBytes(data, alias)
			if err != nil {
				continue
			}
			sr := NewSearcher(got)
			for _, c := range got.Codes() {
				sr.Search(c, 1)
			}
			sr.TopK(bitvec.New(got.Length()), 3)
		}
	})
}

// BenchmarkEncodeFrozenV2 pins the bulk writeWords path: encoding throughput
// on a large slab should be memcpy-bound, not per-word-Write-bound.
func BenchmarkEncodeFrozenV2(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 128, 16, 3)
	idx := Freeze(BuildDynamic(codes, nil, Options{}))
	sz, err := idx.EncodedSize(true)
	if err != nil {
		b.Fatal(err)
	}
	buf := bytes.NewBuffer(make([]byte, 0, sz))
	b.ReportAllocs()
	b.SetBytes(int64(sz))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := idx.Encode(buf, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeArena(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 128, 16, 3)
	idx := Freeze(BuildDynamic(codes, nil, Options{}))
	sz := idx.EncodedSizeArena(true)
	buf := bytes.NewBuffer(make([]byte, 0, sz))
	b.ReportAllocs()
	b.SetBytes(int64(sz))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := idx.EncodeArena(buf, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeArenaEager(b *testing.B) {
	data, _ := benchArenaImage(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeArenaBytes(data, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeArenaAlias(b *testing.B) {
	data, _ := benchArenaImage(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeArenaBytes(data, true); err != nil {
			b.Fatal(err)
		}
	}
}

func benchArenaImage(b *testing.B) ([]byte, *FrozenIndex) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 128, 16, 3)
	idx := Freeze(BuildDynamic(codes, nil, Options{}))
	var buf bytes.Buffer
	if err := idx.EncodeArena(&buf, true); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), idx
}
