package core

import (
	"bytes"
	"math/rand"
	"testing"
)

func BenchmarkHBuildSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDynamic(codes, nil, Options{})
	}
}

func BenchmarkHBuildParallel4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDynamicParallel(codes, nil, Options{}, 4)
	}
}

func BenchmarkHSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := BuildDynamic(codes, nil, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(codes[i%len(codes)], 3)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := BuildDynamic(codes, nil, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := idx.Encode(&buf, true); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := BuildDynamic(codes, nil, Options{})
	var buf bytes.Buffer
	if err := idx.Encode(&buf, true); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDynamic(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := BuildDynamic(codes, nil, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % len(codes)
		idx.Delete(id, codes[id])
		idx.Insert(id, codes[id])
	}
}
