package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"haindex/internal/bitvec"
)

// Binary serialization of the Dynamic HA-Index. A distributed deployment
// writes each reducer's local index to the DFS and ships the merged global
// index through the distributed cache (Section 5.2); this codec is that wire
// format. Encoding with withIDs=false produces the leafless Option-B form:
// the structure and distinct codes are kept, the tuple-id tables dropped.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "HADX" | version 1 | code length L | flags (bit0: ids present)
//	leaf groups: count, then per group: code words (fixed 8B each), id
//	  count + delta-encoded ids (only when ids present)
//	top-leaf group indexes: count + indexes
//	roots: count, then each subtree depth-first:
//	  pattern mask words + bits words (fixed), freq, child count, children,
//	  leaf count, leaf group indexes

const (
	codecMagic   = "HADX"
	codecVersion = 1
)

// Encode writes the index to w. With withIDs=false the leaf id tables are
// omitted (the Option-B broadcast form); decoding such an index yields one
// that answers SearchCodes but returns no ids.
func (x *DynamicIndex) Encode(w io.Writer, withIDs bool) error {
	x.Flush()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	putUvarint(bw, codecVersion)
	putUvarint(bw, uint64(x.length))
	flags := uint64(0)
	if withIDs {
		flags |= 1
	}
	putUvarint(bw, flags)

	// Leaf groups in deterministic order; remember index per group.
	groups := make([]*leafGroup, 0, len(x.byCode))
	x.walkGroups(func(g *leafGroup) { groups = append(groups, g) })
	index := make(map[*leafGroup]int, len(groups))
	putUvarint(bw, uint64(len(groups)))
	for i, g := range groups {
		index[g] = i
		for _, word := range g.code.Words() {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], word)
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		if withIDs {
			putUvarint(bw, uint64(len(g.ids)))
			prev := int64(0)
			for _, id := range g.ids {
				putVarint(bw, int64(id)-prev)
				prev = int64(id)
			}
		}
	}

	putUvarint(bw, uint64(len(x.topLeaves)))
	for _, g := range x.topLeaves {
		putUvarint(bw, uint64(index[g]))
	}

	putUvarint(bw, uint64(len(x.roots)))
	var encNode func(n *dnode) error
	encNode = func(n *dnode) error {
		for _, word := range n.pat.Mask().Words() {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], word)
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		for _, word := range n.pat.Bits().Words() {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], word)
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		putUvarint(bw, uint64(n.freq))
		putUvarint(bw, uint64(len(n.children)))
		for _, c := range n.children {
			if err := encNode(c); err != nil {
				return err
			}
		}
		putUvarint(bw, uint64(len(n.leaves)))
		for _, g := range n.leaves {
			putUvarint(bw, uint64(index[g]))
		}
		return nil
	}
	for _, r := range x.roots {
		if err := encNode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// walkGroups visits every leaf group exactly once in hierarchy order
// (roots depth-first, then top-level leaves).
func (x *DynamicIndex) walkGroups(fn func(*leafGroup)) {
	var rec func(n *dnode)
	rec = func(n *dnode) {
		for _, c := range n.children {
			rec(c)
		}
		for _, g := range n.leaves {
			fn(g)
		}
	}
	for _, r := range x.roots {
		rec(r)
	}
	for _, g := range x.topLeaves {
		fn(g)
	}
}

// EncodedSize returns the exact wire size of the index in the chosen form.
func (x *DynamicIndex) EncodedSize(withIDs bool) (int, error) {
	var c countingWriter
	if err := x.Encode(&c, withIDs); err != nil {
		return 0, err
	}
	return int(c), nil
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// readCodecHeader consumes the HADX magic and returns the format version.
func readCodecHeader(br *bufio.Reader) (uint64, error) {
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("core: reading index magic: %w", err)
	}
	if string(magic) != codecMagic {
		return 0, fmt.Errorf("core: bad index magic %q", magic)
	}
	return binary.ReadUvarint(br)
}

// DecodeDynamic reads an index previously written by Encode. Indexes encoded
// without ids answer SearchCodes; their Search returns no ids.
func DecodeDynamic(r io.Reader) (*DynamicIndex, error) {
	br := bufio.NewReader(r)
	version, err := readCodecHeader(br)
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", version)
	}
	return decodeDynamicBody(br)
}

// indexDecoders maps additional HADX codec versions (registered by engine
// packages via RegisterIndexDecoder) to their body decoders. Registration
// happens in package init functions only, so the map needs no locking.
var indexDecoders = map[uint64]func(*bufio.Reader) (Index, error){}

// RegisterIndexDecoder makes DecodeIndex understand an additional HADX codec
// version; fn receives the reader positioned just past the magic and version
// varint. Engine packages (e.g. internal/mih) call this from init so any
// program importing them can decode their sections. Registering a version
// this package decodes natively, or registering one version twice, panics —
// codec versions are a global namespace and a collision is a build bug.
func RegisterIndexDecoder(version uint64, fn func(*bufio.Reader) (Index, error)) {
	if version == codecVersion || version == codecVersionFrozen || version == codecVersionArena {
		panic(fmt.Sprintf("core: codec version %d is built in", version))
	}
	if _, dup := indexDecoders[version]; dup {
		panic(fmt.Sprintf("core: codec version %d registered twice", version))
	}
	indexDecoders[version] = fn
}

// DecodeIndex reads any supported codec version from r: a v1 encoding yields
// the pointer-walk *DynamicIndex, a v2 or v4 (mmap-native arena, decoded
// eagerly here) encoding the flat *FrozenIndex, and registered versions
// (e.g. the MIH engine's v3) whatever their decoder returns. Serving paths that only need the read-only Index surface should
// decode through this so flat snapshots load without reconstruction.
func DecodeIndex(r io.Reader) (Index, error) {
	br := bufio.NewReader(r)
	version, err := readCodecHeader(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case codecVersion:
		idx, err := decodeDynamicBody(br)
		if err != nil {
			return nil, err
		}
		return idx, nil
	case codecVersionFrozen:
		idx, err := decodeFrozenBody(br)
		if err != nil {
			return nil, err
		}
		return idx, nil
	case codecVersionArena:
		return decodeArenaBody(br)
	default:
		if fn, ok := indexDecoders[version]; ok {
			return fn(br)
		}
		return nil, fmt.Errorf("core: unsupported index version %d", version)
	}
}

// decodeDynamicBody parses the v1 layout after the magic and version.
func decodeDynamicBody(br *bufio.Reader) (*DynamicIndex, error) {
	length64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	length := int(length64)
	if length <= 0 || length > 1<<20 {
		return nil, fmt.Errorf("core: implausible code length %d", length)
	}
	flags, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	withIDs := flags&1 != 0

	readCode := func() (bitvec.Code, error) {
		c := bitvec.New(length)
		w := c.Words()
		var buf [8]byte
		for i := range w {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return bitvec.Code{}, err
			}
			w[i] = binary.BigEndian.Uint64(buf[:])
		}
		return c, nil
	}

	x := &DynamicIndex{
		opts:   Options{}.withDefaults(1),
		length: length,
		byCode: make(map[string]*leafGroup),
	}
	nGroups, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// Grow incrementally: every group consumes at least one code worth of
	// input, so a hostile count fails at EOF instead of pre-allocating.
	groups := make([]*leafGroup, 0, 1024)
	for i := uint64(0); i < nGroups; i++ {
		code, err := readCode()
		if err != nil {
			return nil, fmt.Errorf("core: reading leaf code %d: %w", i, err)
		}
		g := &leafGroup{code: code}
		if withIDs {
			cnt, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			prev := int64(0)
			for j := uint64(0); j < cnt; j++ {
				d, err := binary.ReadVarint(br)
				if err != nil {
					return nil, err
				}
				prev += d
				g.ids = append(g.ids, int(prev))
			}
			x.n += len(g.ids)
		}
		groups = append(groups, g)
		x.byCode[code.Key()] = g
	}

	groupAt := func(i uint64) (*leafGroup, error) {
		if i >= uint64(len(groups)) {
			return nil, fmt.Errorf("core: leaf group index %d out of range", i)
		}
		return groups[i], nil
	}

	nTop, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTop; i++ {
		gi, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		g, err := groupAt(gi)
		if err != nil {
			return nil, err
		}
		x.topLeaves = append(x.topLeaves, g)
	}

	nRoots, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	var decNode func(parent *dnode) (*dnode, error)
	decNode = func(parent *dnode) (*dnode, error) {
		mask, err := readCode()
		if err != nil {
			return nil, err
		}
		bits, err := readCode()
		if err != nil {
			return nil, err
		}
		n := &dnode{pat: bitvec.PatternFromMaskBits(mask, bits), parent: parent}
		freq, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		n.freq = int(freq)
		nc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nc; i++ {
			c, err := decNode(n)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, c)
		}
		nl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nl; i++ {
			gi, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			g, err := groupAt(gi)
			if err != nil {
				return nil, err
			}
			g.parent = n
			n.leaves = append(n.leaves, g)
		}
		return n, nil
	}
	for i := uint64(0); i < nRoots; i++ {
		r, err := decNode(nil)
		if err != nil {
			return nil, fmt.Errorf("core: decoding root %d: %w", i, err)
		}
		x.roots = append(x.roots, r)
	}
	x.finalizeResiduals()
	return x, nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}
