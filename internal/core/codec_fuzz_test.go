package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// validEncoding builds a small index and returns its withIDs encoding, used
// as the mutation base for the corruption tests and fuzz target below.
func validEncoding(tb testing.TB) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(157))
	codes := clusteredCodes(rng, 60, 32, 3, 2)
	ids := make([]int, len(codes))
	for i := range ids {
		ids[i] = i
	}
	idx := BuildDynamic(codes, ids, Options{})
	var buf bytes.Buffer
	if err := idx.Encode(&buf, true); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeCorruptInput drives DecodeDynamic through every guarded error
// path with hand-built inputs: bad magic, unsupported version, implausible
// lengths, out-of-range leaf group indexes, and truncations at each layout
// section.
func TestDecodeCorruptInput(t *testing.T) {
	valid := validEncoding(t)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("HA")},
		{"bad magic", []byte("XDAH\x01\x20\x01")},
		{"missing version", []byte("HADX")},
		{"bad version", []byte("HADX\x09\x20\x01")},
		{"missing length", []byte("HADX\x01")},
		{"zero length", []byte("HADX\x01\x00\x01")},
		// 1<<21 bits, over the plausibility cap.
		{"huge length", []byte("HADX\x01\x80\x80\x80\x01\x01")},
		{"missing flags", []byte("HADX\x01\x20")},
		// 8-bit codes, no ids, 0 leaf groups, 1 top leaf referencing
		// group 5 — the out-of-range index guard.
		{"top leaf index out of range", []byte("HADX\x01\x08\x00\x00\x01\x05")},
		// Same, but the dangling reference sits in a root's leaf list:
		// 0 groups, 0 top leaves, 1 root with mask+bits words, freq 0,
		// 0 children, 1 leaf -> group 9.
		{"node leaf index out of range", append(append([]byte("HADX\x01\x08\x00\x00\x00\x01"),
			make([]byte, 16)...), 0x00, 0x00, 0x01, 0x09)},
		// A leaf-group count far beyond the bytes that follow.
		{"hostile group count", []byte("HADX\x01\x08\x00\xff\xff\xff\xff\x0f")},
	}
	// Truncate a real encoding at several depths: inside the header, inside
	// the leaf-group table, and just before the end.
	for _, cut := range []int{5, 7, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		cases = append(cases, struct {
			name string
			data []byte
		}{"truncated", valid[:cut]})
	}
	for _, tc := range cases {
		if _, err := DecodeDynamic(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s (%d bytes): decode accepted corrupt input", tc.name, len(tc.data))
		}
	}
	// The uncorrupted base must still decode.
	if _, err := DecodeDynamic(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
}

// FuzzDecodeIndex mutates a known-valid encoding — truncating it and
// flipping one byte — rather than feeding arbitrary bytes like
// FuzzDecodeDynamic; starting from well-formed input reaches the deep
// decoder states (node recursion, id tables) that random prefixes rarely
// survive to. Decoding must either error or yield a usable index.
func FuzzDecodeIndex(f *testing.F) {
	valid := validEncoding(f)
	f.Add(uint16(len(valid)), uint16(0), byte(0))
	f.Add(uint16(len(valid)/2), uint16(5), byte(0xff))
	f.Add(uint16(10), uint16(4), byte(1))
	f.Fuzz(func(t *testing.T, cut uint16, flipAt uint16, flipMask byte) {
		data := append([]byte(nil), valid...)
		if int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 {
			data[int(flipAt)%len(data)] ^= flipMask
		}
		got, err := DecodeDynamic(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever survived the mutation must still behave like an index:
		// searching every decoded code at radius 0 must not panic, and a
		// withIDs encoding that decoded cleanly must report its ids.
		for _, c := range got.Codes() {
			got.Search(c, 0)
		}
	})
}
