package core

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 5; trial++ {
		bitsLen := []int{16, 32, 64, 100}[trial%4]
		codes := clusteredCodes(rng, 100+rng.Intn(400), bitsLen, 6, 3)
		orig := BuildDynamic(codes, nil, Options{})
		var buf bytes.Buffer
		if err := orig.Encode(&buf, true); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeDynamic(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != orig.Len() || back.Length() != orig.Length() {
			t.Fatalf("len=%d/%d length=%d/%d", back.Len(), orig.Len(), back.Length(), orig.Length())
		}
		for q := 0; q < 20; q++ {
			query := codes[rng.Intn(len(codes))].Clone()
			query.FlipBit(rng.Intn(bitsLen))
			h := rng.Intn(6)
			if !equalIDs(back.Search(query, h), orig.Search(query, h)) {
				t.Fatal("decoded index answers differently")
			}
		}
	}
}

func TestEncodeLeafless(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	codes := clusteredCodes(rng, 300, 32, 5, 3)
	orig := BuildDynamic(codes, nil, Options{})
	var buf bytes.Buffer
	if err := orig.Encode(&buf, false); err != nil {
		t.Fatal(err)
	}
	leafless, err := DecodeDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := codes[0]
	// Leafless index yields the same qualifying codes but no ids.
	wantCodes := orig.SearchCodes(q, 3)
	gotCodes := leafless.SearchCodes(q, 3)
	if len(gotCodes) != len(wantCodes) {
		t.Fatalf("codes %d vs %d", len(gotCodes), len(wantCodes))
	}
	if ids := leafless.Search(q, 3); len(ids) != 0 {
		t.Fatalf("leafless index returned ids: %v", ids)
	}
}

func TestEncodedSizeOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	codes := clusteredCodes(rng, 2000, 32, 10, 3)
	idx := BuildDynamic(codes, nil, Options{})
	full, err := idx.EncodedSize(true)
	if err != nil {
		t.Fatal(err)
	}
	leafless, err := idx.EncodedSize(false)
	if err != nil {
		t.Fatal(err)
	}
	if leafless >= full {
		t.Fatalf("leafless (%d) must be smaller than full (%d)", leafless, full)
	}
	// The byte-accounting estimator should be the same order of magnitude
	// as the true wire size (it includes in-memory overheads, so larger).
	est := idx.BroadcastSizeBytes(true)
	if est < full/4 || est > full*16 {
		t.Fatalf("estimator %d vs encoded %d out of range", est, full)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeDynamic(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := DecodeDynamic(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
	// Truncated stream.
	rng := rand.New(rand.NewSource(154))
	codes := clusteredCodes(rng, 50, 32, 3, 2)
	idx := BuildDynamic(codes, nil, Options{})
	var buf bytes.Buffer
	if err := idx.Encode(&buf, true); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDynamic(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestDecodedIndexIsUpdatable(t *testing.T) {
	rng := rand.New(rand.NewSource(155))
	codes := clusteredCodes(rng, 200, 32, 4, 3)
	idx := BuildDynamic(codes, nil, Options{})
	var buf bytes.Buffer
	if err := idx.Encode(&buf, true); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	extra := clusteredCodes(rng, 20, 32, 2, 2)
	for i, c := range extra {
		back.Insert(1000+i, c)
	}
	back.Flush()
	for i, c := range extra {
		got := back.Search(c, 0)
		found := false
		for _, id := range got {
			if id == 1000+i {
				found = true
			}
		}
		if !found {
			t.Fatalf("inserted tuple %d missing after decode+insert", 1000+i)
		}
	}
}
