package core

import (
	"math/rand"
	"sync"
	"testing"

	"haindex/internal/bitvec"
)

// TestConcurrentSearchInto exercises the reducer scenario: many goroutines
// searching one shared index with caller-owned stats. Run with -race.
func TestConcurrentSearchInto(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	codes := clusteredCodes(rng, 2000, 32, 10, 3)
	idx := BuildDynamic(codes, nil, Options{})
	queries := make([]bitvec.Code, 64)
	for i := range queries {
		queries[i] = codes[rng.Intn(len(codes))]
	}
	expected := make([][]int, len(queries))
	for i, q := range queries {
		expected[i] = oracle(codes, q, 3)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var stats SearchStats
			for r := 0; r < 50; r++ {
				i := (w*50 + r) % len(queries)
				got := idx.SearchInto(queries[i], 3, &stats)
				if !equalIDs(got, expected[i]) {
					errs <- "concurrent search mismatch"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestConcurrentSearchers exercises the broadcast-index contract for both
// variants: one shared read-only index, one Searcher per goroutine, exact
// results under -race.
func TestConcurrentSearchers(t *testing.T) {
	rng := rand.New(rand.NewSource(146))
	codes := clusteredCodes(rng, 2000, 32, 10, 3)
	queries := make([]bitvec.Code, 64)
	for i := range queries {
		queries[i] = codes[rng.Intn(len(codes))]
	}
	expected := make([][]int, len(queries))
	for i, q := range queries {
		expected[i] = oracle(codes, q, 3)
	}
	for _, idx := range []Index{
		BuildDynamic(codes, nil, Options{}),
		BuildStatic(codes, nil, 8),
	} {
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sr := NewSearcher(idx)
				for r := 0; r < 50; r++ {
					i := (w*50 + r) % len(queries)
					if got := sr.Search(queries[i], 3); !equalIDs(got, expected[i]) {
						errs <- "concurrent searcher mismatch"
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("%T: %s", idx, e)
		}
	}
}

// TestConcurrentSearchBatches runs several SearchBatch calls concurrently on
// one shared index — the reducer fan-out of the MapReduce join — under -race.
func TestConcurrentSearchBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(147))
	codes := clusteredCodes(rng, 1500, 32, 8, 3)
	idx := BuildDynamic(codes, nil, Options{})
	queries := make([]bitvec.Code, 40)
	for i := range queries {
		queries[i] = codes[rng.Intn(len(codes))]
	}
	expected := make([][]int, len(queries))
	for i, q := range queries {
		expected[i] = oracle(codes, q, 3)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, _ := SearchBatch(idx, queries, 3, 4)
			for i := range queries {
				if !equalIDs(results[i], expected[i]) {
					errs <- "concurrent batch mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestStaticBudgetFallback drives the static index into its loose-threshold
// fallback and verifies exactness there.
func TestStaticBudgetFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	codes := make([]bitvec.Code, 400)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 64)
	}
	st := BuildStatic(codes, nil, 8)
	for _, h := range []int{20, 40, 63} {
		q := bitvec.Rand(rng, 64)
		if got, want := st.Search(q, h), oracle(codes, q, h); !equalIDs(got, want) {
			t.Fatalf("h=%d: fallback search mismatch (%d vs %d results)", h, len(got), len(want))
		}
	}
}

// TestDynamicHugeThreshold: with h = L every tuple qualifies, and the search
// must remain linear-bounded, not exponential.
func TestDynamicHugeThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	codes := clusteredCodes(rng, 1500, 32, 8, 3)
	dyn := BuildDynamic(codes, nil, Options{})
	got := dyn.Search(bitvec.Rand(rng, 32), 32)
	if len(got) != len(codes) {
		t.Fatalf("h=L should return everything: %d of %d", len(got), len(codes))
	}
	if dyn.Stats.DistanceComputations > 4*len(codes) {
		t.Fatalf("search work %d not linear-bounded", dyn.Stats.DistanceComputations)
	}
}

// TestResidualInvariant: along every root-to-leaf path the residual masks
// are disjoint and union to the node's full pattern mask.
func TestResidualInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	codes := clusteredCodes(rng, 800, 64, 8, 3)
	dyn := BuildDynamic(codes, nil, Options{})
	var rec func(n *dnode, accMask []uint64)
	rec = func(n *dnode, accMask []uint64) {
		nw := len(accMask)
		for i := 0; i < nw; i++ {
			if n.res[i]&accMask[i] != 0 {
				t.Fatal("residual overlaps ancestor mask")
			}
		}
		// acc + residual must equal the node's own pattern mask.
		own := n.pat.Mask().Words()
		next := make([]uint64, nw)
		for i := 0; i < nw; i++ {
			next[i] = accMask[i] | n.res[i]
			if next[i] != own[i] {
				t.Fatal("residual + parent mask != node mask")
			}
		}
		for _, c := range n.children {
			rec(c, next)
		}
	}
	for _, r := range dyn.roots {
		rec(r, make([]uint64, len(r.pat.Mask().Words())))
	}
}

// TestFrequencies: node frequencies equal the number of tuples beneath.
func TestFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	codes := clusteredCodes(rng, 600, 32, 6, 3)
	dyn := BuildDynamic(codes, nil, Options{})
	var count func(n *dnode) int
	count = func(n *dnode) int {
		total := 0
		for _, c := range n.children {
			total += count(c)
		}
		for _, g := range n.leaves {
			total += len(g.ids)
		}
		if total != n.freq {
			t.Fatalf("node freq %d but %d tuples beneath", n.freq, total)
		}
		return total
	}
	total := 0
	for _, r := range dyn.roots {
		total += count(r)
	}
	for _, g := range dyn.topLeaves {
		total += len(g.ids)
	}
	if total != len(codes) {
		t.Fatalf("hierarchy covers %d of %d tuples", total, len(codes))
	}
}
