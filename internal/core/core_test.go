package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"haindex/internal/bitvec"
)

func paperCodes() []bitvec.Code {
	return []bitvec.Code{
		bitvec.MustFromString("001001010"), // t0
		bitvec.MustFromString("001011101"), // t1
		bitvec.MustFromString("011001100"), // t2
		bitvec.MustFromString("101001010"), // t3
		bitvec.MustFromString("101110110"), // t4
		bitvec.MustFromString("101011101"), // t5
		bitvec.MustFromString("101101010"), // t6
		bitvec.MustFromString("111001100"), // t7
	}
}

func oracle(codes []bitvec.Code, q bitvec.Code, h int) []int {
	var out []int
	for i, c := range codes {
		if q.Distance(c) <= h {
			out = append(out, i)
		}
	}
	return out
}

func equalIDs(a, b []int) bool {
	a = append([]int(nil), a...)
	b = append([]int(nil), b...)
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func clusteredCodes(rng *rand.Rand, n, bitsLen, clusters, flips int) []bitvec.Code {
	out := make([]bitvec.Code, 0, n)
	for len(out) < n {
		center := bitvec.Rand(rng, bitsLen)
		for i := 0; i < n/clusters+1 && len(out) < n; i++ {
			c := center.Clone()
			for f := 0; f < flips; f++ {
				c.FlipBit(rng.Intn(bitsLen))
			}
			out = append(out, c)
		}
	}
	return out
}

// TestPaperExampleSelect is Example 1: query "101100010" at h=3 over Table
// 2a selects {t0, t3, t4, t6}.
func TestPaperExampleSelect(t *testing.T) {
	codes := paperCodes()
	q := bitvec.MustFromString("101100010")
	want := []int{0, 3, 4, 6}
	for _, w := range []int{2, 3, 4, 8} {
		dyn := BuildDynamic(codes, nil, Options{Window: w, Depth: 4})
		if got := dyn.Search(q, 3); !equalIDs(got, want) {
			t.Errorf("dynamic w=%d: got %v want %v", w, got, want)
		}
	}
	for _, sw := range []int{3, 4, 8} {
		st := BuildStatic(codes, nil, sw)
		if got := st.Search(q, 3); !equalIDs(got, want) {
			t.Errorf("static sw=%d: got %v want %v", sw, got, want)
		}
	}
}

// TestPaperTrace mirrors the H-Search trace of Table 3: query "010001011" at
// h=3 over Table 2a returns exactly t0.
func TestPaperTrace(t *testing.T) {
	codes := paperCodes()
	q := bitvec.MustFromString("010001011")
	want := oracle(codes, q, 3)
	if !equalIDs(want, []int{0}) {
		t.Fatalf("oracle disagrees with the paper: %v", want)
	}
	dyn := BuildDynamic(codes, nil, Options{Window: 2, Depth: 3})
	if got := dyn.Search(q, 3); !equalIDs(got, []int{0}) {
		t.Errorf("trace query: got %v want [0]", got)
	}
}

func TestDynamicAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		bitsLen := []int{8, 16, 32, 64, 128}[trial%5]
		n := 1 + rng.Intn(400)
		var codes []bitvec.Code
		if trial%2 == 0 {
			codes = clusteredCodes(rng, n, bitsLen, 8, 3)
		} else {
			codes = make([]bitvec.Code, n)
			for i := range codes {
				codes[i] = bitvec.Rand(rng, bitsLen)
			}
		}
		opts := Options{Window: 2 + rng.Intn(16), Depth: 1 + rng.Intn(7)}
		dyn := BuildDynamic(codes, nil, opts)
		if dyn.Len() != n {
			t.Fatalf("Len=%d want %d", dyn.Len(), n)
		}
		for q := 0; q < 25; q++ {
			query := codes[rng.Intn(n)].Clone()
			for f := 0; f < rng.Intn(5); f++ {
				query.FlipBit(rng.Intn(bitsLen))
			}
			h := rng.Intn(8)
			if got, want := dyn.Search(query, h), oracle(codes, query, h); !equalIDs(got, want) {
				t.Fatalf("trial %d opts %+v: got %d want %d results", trial, opts, len(got), len(want))
			}
		}
	}
}

func TestStaticAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 8; trial++ {
		bitsLen := []int{9, 16, 32, 64}[trial%4]
		n := 1 + rng.Intn(300)
		codes := clusteredCodes(rng, n, bitsLen, 6, 2)
		segW := []int{3, 4, 8, 16}[rng.Intn(4)]
		st := BuildStatic(codes, nil, segW)
		for q := 0; q < 25; q++ {
			query := codes[rng.Intn(n)].Clone()
			for f := 0; f < rng.Intn(5); f++ {
				query.FlipBit(rng.Intn(bitsLen))
			}
			h := rng.Intn(7)
			if got, want := st.Search(query, h), oracle(codes, query, h); !equalIDs(got, want) {
				t.Fatalf("trial %d segW=%d: mismatch", trial, segW)
			}
		}
	}
}

// TestQuickDynamic is a property-based cross-check with random seeds.
func TestQuickDynamic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		codes := clusteredCodes(rng, n, 32, 4, 4)
		dyn := BuildDynamic(codes, nil, Options{Window: 2 + rng.Intn(8), Depth: 1 + rng.Intn(5)})
		q := bitvec.Rand(rng, 32)
		h := rng.Intn(10)
		return equalIDs(dyn.Search(q, h), oracle(codes, q, h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSearchCodes(t *testing.T) {
	codes := paperCodes()
	codes = append(codes, codes[0]) // duplicate code, distinct tuple
	dyn := BuildDynamic(codes, nil, Options{Window: 2})
	q := bitvec.MustFromString("101100010")
	got := dyn.SearchCodes(q, 3)
	// Distinct qualifying codes: t0/t8 share one code, t3, t4, t6.
	if len(got) != 4 {
		t.Fatalf("got %d codes want 4", len(got))
	}
	for _, c := range got {
		if q.Distance(c) > 3 {
			t.Errorf("code %s beyond threshold", c.String())
		}
	}
	st := BuildStatic(codes, nil, 3)
	gotS := st.SearchCodes(q, 3)
	if len(gotS) != 4 {
		t.Fatalf("static got %d codes want 4", len(gotS))
	}
}

func TestDynamicInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	codes := clusteredCodes(rng, 200, 32, 6, 3)
	dyn := BuildDynamic(codes[:100], nil, Options{Window: 8, BufferMax: 16})
	for i := 100; i < 200; i++ {
		dyn.Insert(i, codes[i])
	}
	if dyn.Len() != 200 {
		t.Fatalf("Len=%d", dyn.Len())
	}
	for q := 0; q < 20; q++ {
		query := codes[rng.Intn(200)]
		h := rng.Intn(6)
		if got, want := dyn.Search(query, h), oracle(codes, query, h); !equalIDs(got, want) {
			t.Fatalf("post-insert mismatch: got %d want %d", len(got), len(want))
		}
	}
	// Flush and re-verify.
	dyn.Flush()
	for q := 0; q < 20; q++ {
		query := codes[rng.Intn(200)]
		if got, want := dyn.Search(query, 4), oracle(codes, query, 4); !equalIDs(got, want) {
			t.Fatal("post-flush mismatch")
		}
	}
}

func TestDynamicDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	codes := clusteredCodes(rng, 150, 32, 5, 3)
	dyn := BuildDynamic(codes, nil, Options{Window: 6})
	// Delete every third tuple.
	deleted := map[int]bool{}
	for i := 0; i < 150; i += 3 {
		if !dyn.Delete(i, codes[i]) {
			t.Fatalf("delete %d failed", i)
		}
		deleted[i] = true
	}
	if dyn.Len() != 100 {
		t.Fatalf("Len=%d", dyn.Len())
	}
	for q := 0; q < 25; q++ {
		query := codes[rng.Intn(150)]
		h := rng.Intn(6)
		var want []int
		for i, c := range codes {
			if !deleted[i] && query.Distance(c) <= h {
				want = append(want, i)
			}
		}
		if got := dyn.Search(query, h); !equalIDs(got, want) {
			t.Fatalf("post-delete mismatch")
		}
	}
	// Deleting a nonexistent tuple fails cleanly.
	if dyn.Delete(0, codes[0]) {
		t.Fatal("double delete succeeded")
	}
	if dyn.Delete(9999, bitvec.Rand(rng, 32)) {
		t.Fatal("absent delete succeeded")
	}
}

func TestDeleteBufferedInsert(t *testing.T) {
	codes := paperCodes()
	dyn := BuildDynamic(codes, nil, Options{Window: 2, BufferMax: 100})
	extra := bitvec.MustFromString("110110110")
	dyn.Insert(42, extra)
	if got := dyn.Search(extra, 0); !equalIDs(got, []int{42}) {
		t.Fatalf("buffered insert invisible: %v", got)
	}
	if !dyn.Delete(42, extra) {
		t.Fatal("buffered delete failed")
	}
	if got := dyn.Search(extra, 0); len(got) != 0 {
		t.Fatalf("buffered tuple survived delete: %v", got)
	}
}

func TestStaticInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	codes := clusteredCodes(rng, 100, 32, 4, 2)
	st := BuildStatic(codes[:60], nil, 8)
	for i := 60; i < 100; i++ {
		st.Insert(i, codes[i])
	}
	if st.Len() != 100 {
		t.Fatalf("Len=%d", st.Len())
	}
	for i := 0; i < 30; i++ {
		if !st.Delete(i, codes[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for q := 0; q < 20; q++ {
		query := codes[rng.Intn(100)]
		h := rng.Intn(5)
		var want []int
		for i := 30; i < 100; i++ {
			if query.Distance(codes[i]) <= h {
				want = append(want, i)
			}
		}
		if got := st.Search(query, h); !equalIDs(got, want) {
			t.Fatal("static post-update mismatch")
		}
	}
}

// TestRedundancyElimination verifies the headline claim: on clustered data
// the Dynamic HA-Index performs far fewer distance computations than the
// nested-loop's n per query.
func TestRedundancyElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	codes := clusteredCodes(rng, 5000, 32, 20, 2)
	dyn := BuildDynamic(codes, nil, Options{})
	q := codes[0].Clone()
	q.FlipBit(3)
	dyn.Search(q, 3)
	if dyn.Stats.DistanceComputations >= len(codes) {
		t.Errorf("HA-Index did %d distance computations for n=%d; expected sublinear",
			dyn.Stats.DistanceComputations, len(codes))
	}
}

// TestDownwardClosurePruning: a query far from every cluster prunes at the
// top of the hierarchy.
func TestDownwardClosurePruning(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	center := bitvec.Rand(rng, 64)
	codes := make([]bitvec.Code, 1000)
	for i := range codes {
		c := center.Clone()
		c.FlipBit(rng.Intn(64))
		codes[i] = c
	}
	dyn := BuildDynamic(codes, nil, Options{})
	// Query = complement of the center: distance ~63 to everything.
	q := center.Clone()
	for i := 0; i < 64; i++ {
		q.FlipBit(i)
	}
	if got := dyn.Search(q, 3); len(got) != 0 {
		t.Fatalf("got %d results", len(got))
	}
	if dyn.Stats.DistanceComputations > 200 {
		t.Errorf("pruning ineffective: %d computations", dyn.Stats.DistanceComputations)
	}
}

func TestNodeEdgeCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	codes := clusteredCodes(rng, 500, 32, 8, 2)
	dyn := BuildDynamic(codes, nil, Options{})
	v, e := dyn.NodeCount(), dyn.EdgeCount()
	if v <= 0 || e <= 0 {
		t.Fatalf("V=%d E=%d", v, e)
	}
	// Section 4.7: the index should be small relative to the dataset.
	if v > len(codes) {
		t.Errorf("more internal nodes (%d) than tuples (%d)", v, len(codes))
	}
	st := BuildStatic(codes, nil, 8)
	if st.NodeCount() <= 0 || st.EdgeCount() <= 0 {
		t.Error("static counts must be positive")
	}
}

func TestSizeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	codes := clusteredCodes(rng, 300, 32, 6, 2)
	dyn := BuildDynamic(codes, nil, Options{})
	if dyn.SizeBytes() != dyn.InternalSizeBytes()+dyn.LeafSizeBytes() {
		t.Error("size decomposition broken")
	}
	if dyn.InternalSizeBytes() >= dyn.SizeBytes() {
		t.Error("internal-only must be smaller than total")
	}
}

func TestTuplesIteration(t *testing.T) {
	codes := paperCodes()
	dyn := BuildDynamic(codes, nil, Options{Window: 2, BufferMax: 100})
	dyn.Insert(99, bitvec.MustFromString("110110110"))
	seen := map[int]bool{}
	dyn.Tuples(func(id int, c bitvec.Code) { seen[id] = true })
	if len(seen) != 9 {
		t.Fatalf("saw %d tuples want 9", len(seen))
	}
	if !seen[99] {
		t.Fatal("buffered tuple not iterated")
	}
}

func TestDuplicateCodesShareLeaf(t *testing.T) {
	c := bitvec.MustFromString("10101010")
	codes := []bitvec.Code{c, c, c, bitvec.MustFromString("01010101")}
	dyn := BuildDynamic(codes, nil, Options{Window: 2})
	got := dyn.Search(c, 0)
	if !equalIDs(got, []int{0, 1, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestSingleTuple(t *testing.T) {
	codes := []bitvec.Code{bitvec.MustFromString("1111")}
	dyn := BuildDynamic(codes, nil, Options{})
	if got := dyn.Search(bitvec.MustFromString("1110"), 1); !equalIDs(got, []int{0}) {
		t.Fatalf("got %v", got)
	}
	if got := dyn.Search(bitvec.MustFromString("0000"), 1); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}
