// Package core implements the paper's primary contribution: the HA-Index, in
// its static (Section 4.3) and dynamic (Sections 4.4–4.6) variants.
//
// The Dynamic HA-Index sorts the dataset's binary codes in Gray order — so
// that codes with small mutual Hamming distance become neighbours — and then
// repeatedly groups consecutive items with a sliding window, extracting from
// each window the maximal fixed-length subsequence (FLSSeq) the items share.
// Each FLSSeq becomes an internal node; nodes with identical patterns are
// consolidated. A Hamming range query walks the resulting hierarchy
// breadth-first, computing at every node only the distance contribution of
// the bit positions that node fixes beyond its parent, and prunes an entire
// subtree the moment the accumulated distance exceeds the threshold
// (Proposition 1, the Hamming downward-closure property). Every shared
// pattern is therefore XORed against the query at most once — the redundancy
// elimination that gives the index its speedup.
package core

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
)

// Options configures HA-Index construction (Algorithm 1).
type Options struct {
	// Window is the H-Build window size w: the maximum number of
	// consecutive Gray-ordered items grouped under one FLSSeq node. Groups
	// grow adaptively while the shared pattern keeps at least the level's
	// bit threshold (the paper's "sequences of data points that are close
	// in their binary values"); Window caps the growth. 0 selects 64.
	Window int
	// Depth is the maximum index depth md. 0 selects 8.
	Depth int
	// MinShared is the floor on the per-level shared-bit threshold: level d
	// (1-based) requires ceil(L/2^d) shared bits, never below MinShared.
	// Items that cannot group at a level pass through and may group at a
	// higher level with a lower threshold; leftovers link to the top level
	// (Algorithm 1, line 16). Default 1.
	MinShared int
	// BufferMax is the insert buffer capacity; reaching it triggers the
	// H-Build append of Section 4.5. 0 selects 256.
	BufferMax int

	// LexOrder sorts leaves lexicographically instead of by Gray rank — an
	// ablation switch for measuring what Gray-order clustering contributes
	// (Proposition 2). Production use should leave it false.
	LexOrder bool
	// NoConsolidate disables merging of window nodes with identical
	// FLSSeq patterns — the node-consolidation ablation.
	NoConsolidate bool
}

func (o Options) withDefaults(n int) Options {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.Depth <= 0 {
		o.Depth = 8
	}
	if o.MinShared <= 0 {
		o.MinShared = 1
	}
	if o.BufferMax <= 0 {
		o.BufferMax = 256
	}
	return o
}

// SearchStats reports the work performed by the most recent search.
type SearchStats struct {
	// DistanceComputations counts pattern- or code-level XOR+popcount
	// evaluations — the redundancy metric the HA-Index minimizes.
	DistanceComputations int
	// NodesVisited counts internal nodes dequeued.
	NodesVisited int
	// LeavesChecked counts leaf groups whose full residual was evaluated.
	LeavesChecked int
}

// leafGroup stores one distinct binary code with the ids of all tuples
// hashing to it (the per-bottom-node hash table of Section 4.5).
type leafGroup struct {
	code   bitvec.Code
	ids    []int
	parent *dnode // nil when linked at the top level
}

// dnode is an internal Dynamic HA-Index node holding the FLSSeq shared by
// everything beneath it.
type dnode struct {
	pat      bitvec.Pattern
	children []*dnode
	leaves   []*leafGroup
	parent   *dnode // nil at roots
	freq     int    // number of tuples beneath (Algorithm 1, line 10)

	// res holds the node's residual pattern relative to its parent —
	// mask words followed by bits words in one contiguous allocation — so
	// H-Search touches a single cache line per candidate instead of
	// chasing the pattern's slices and re-deriving the parent exclusion.
	res []uint64
}

// DynamicIndex is the Dynamic HA-Index of Section 4.4.
type DynamicIndex struct {
	opts   Options
	length int
	roots  []*dnode
	// topLeaves are leaf groups that shared no FLSSeq with their window and
	// are linked directly at the top level.
	topLeaves []*leafGroup
	byCode    map[string]*leafGroup
	n         int

	// buffer holds inserts not yet merged into the hierarchy (Section 4.5).
	buffer []pendingInsert

	// Stats describes the most recent Search/SearchCodes call.
	//
	// Deprecated: the field is a single-threaded convenience — Search copies
	// the statistics back here, so concurrent callers sharing one index must
	// use a Searcher (or SearchInto) and read per-searcher stats instead.
	Stats SearchStats
}

type pendingInsert struct {
	id   int
	code bitvec.Code
}

// BuildDynamic bulkloads a Dynamic HA-Index over the codes with their tuple
// ids (positions if ids is nil), per Algorithm 1 (H-Build).
func BuildDynamic(codes []bitvec.Code, ids []int, opts Options) *DynamicIndex {
	if len(codes) == 0 {
		panic("core: BuildDynamic over empty dataset")
	}
	if codes[0].Len() == 0 {
		panic("core: BuildDynamic over zero-length codes")
	}
	length := codes[0].Len()
	idx := &DynamicIndex{
		opts:   opts.withDefaults(len(codes)),
		length: length,
		byCode: make(map[string]*leafGroup),
	}
	for i, c := range codes {
		if c.Len() != length {
			panic(fmt.Sprintf("core: mixed code lengths %d and %d", length, c.Len()))
		}
		id := i
		if ids != nil {
			id = ids[i]
		}
		idx.addLeaf(id, c)
	}
	idx.rebuild()
	return idx
}

// addLeaf registers a tuple into its (possibly new) leaf group without
// touching the hierarchy.
func (x *DynamicIndex) addLeaf(id int, c bitvec.Code) *leafGroup {
	key := c.Key()
	g := x.byCode[key]
	if g == nil {
		g = &leafGroup{code: c}
		x.byCode[key] = g
	}
	g.ids = append(g.ids, id)
	x.n++
	return g
}

// rebuild reconstructs the hierarchy from the current leaf groups: the
// H-Build sliding-window pass over the Gray-ordered leaves, repeated level by
// level until the configured depth (Algorithm 1, lines 1–24).
func (x *DynamicIndex) rebuild() {
	groups := make([]*leafGroup, 0, len(x.byCode))
	codes := make([]bitvec.Code, 0, len(x.byCode))
	for _, g := range x.byCode {
		groups = append(groups, g)
		codes = append(codes, g.code)
	}
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	if x.opts.LexOrder {
		sort.SliceStable(order, func(a, b int) bool {
			return groups[order[a]].code.Compare(groups[order[b]].code) < 0
		})
	} else {
		gray.Sort(codes, order)
	}
	sorted := make([]*leafGroup, len(groups))
	for i, j := range order {
		sorted[i] = groups[j]
	}
	x.buildFromSorted(sorted)
}

// buildFromSorted runs the level-by-level H-Build over leaf groups already
// in build order.
func (x *DynamicIndex) buildFromSorted(sorted []*leafGroup) {
	x.roots = nil
	x.topLeaves = nil
	for _, g := range sorted {
		g.parent = nil
	}

	w := x.opts.Window
	// Level 1: window over leaf groups.
	type item struct {
		node *dnode
		leaf *leafGroup
	}
	pat := func(it item) bitvec.Pattern {
		if it.node != nil {
			return it.node.pat
		}
		return bitvec.PatternOf(it.leaf.code)
	}
	freq := func(it item) int {
		if it.node != nil {
			return it.node.freq
		}
		return len(it.leaf.ids)
	}

	items := make([]item, len(sorted))
	for i, g := range sorted {
		items[i] = item{leaf: g}
	}

	for depth := 0; depth < x.opts.Depth && len(items) > 1; depth++ {
		// Per-level shared-bit threshold: L/2 at the first level, halving
		// each level up (Section 4.7's window analysis), floored at
		// MinShared so sparse data still aggregates near the top.
		minShared := thresholdAt(x.length, depth)
		if minShared < x.opts.MinShared {
			minShared = x.opts.MinShared
		}
		var next []item
		consolidate := make(map[string]*dnode)
		progressed := false
		at := 0
		for at < len(items) {
			// Grow the group while the shared pattern stays informative.
			shared := pat(items[at])
			end := at + 1
			for end < len(items) && end-at < w {
				cand := bitvec.SharedPattern(shared, pat(items[end]))
				if cand.FixedCount() < minShared {
					break
				}
				shared = cand
				end++
			}
			window := items[at:end]
			at = end
			if len(window) == 1 {
				// Nothing grouped here: pass the item through so it can
				// still merge at a higher level with a lower threshold.
				next = append(next, window[0])
				continue
			}
			progressed = true
			var parent *dnode
			if !x.opts.NoConsolidate {
				parent = consolidate[shared.Key()]
			}
			if parent == nil {
				parent = &dnode{pat: shared}
				if !x.opts.NoConsolidate {
					consolidate[shared.Key()] = parent
				}
				next = append(next, item{node: parent})
			}
			for _, it := range window {
				parent.freq += freq(it)
				if it.node != nil {
					it.node.parent = parent
					parent.children = append(parent.children, it.node)
				} else {
					it.leaf.parent = parent
					parent.leaves = append(parent.leaves, it.leaf)
				}
			}
		}
		items = next
		if !progressed && minShared == x.opts.MinShared {
			// No grouping is possible even at the floor threshold; further
			// levels would spin.
			break
		}
	}
	for _, it := range items {
		x.promote(it.node, it.leaf)
	}
	x.finalizeResiduals()
}

// finalizeResiduals precomputes every node's residual pattern words (mask
// beyond the parent, then bits), top-down.
func (x *DynamicIndex) finalizeResiduals() {
	var rec func(n *dnode)
	rec = func(n *dnode) {
		var exclude []uint64
		if n.parent != nil {
			exclude = n.parent.pat.Mask().Words()
		}
		mw := n.pat.Mask().Words()
		bw := n.pat.Bits().Words()
		res := make([]uint64, 2*len(mw))
		for i := range mw {
			m := mw[i]
			if exclude != nil {
				m &^= exclude[i]
			}
			res[i] = m
			res[len(mw)+i] = bw[i] & m
		}
		n.res = res
		for _, c := range n.children {
			rec(c)
		}
	}
	for _, r := range x.roots {
		rec(r)
	}
}

// thresholdAt returns the shared-bit requirement for grouping at the given
// build level (0 = just above the leaves). The schedule starts at 3L/4 and
// decays geometrically so that lower levels form tight groups whose leaves
// are nearly identical, while upper levels keep aggregating.
func thresholdAt(length, depth int) int {
	t := (length * 3 / 4) >> uint(depth)
	if t < 1 {
		t = 1
	}
	return t
}

// promote links an item at the top level of the index.
func (x *DynamicIndex) promote(n *dnode, g *leafGroup) {
	if n != nil {
		n.parent = nil
		x.roots = append(x.roots, n)
		return
	}
	g.parent = nil
	x.topLeaves = append(x.topLeaves, g)
}

// Len returns the number of indexed tuples (including buffered inserts).
func (x *DynamicIndex) Len() int { return x.n + len(x.buffer) }

// Length returns the code length L in bits.
func (x *DynamicIndex) Length() int { return x.length }

// Search returns the ids of all tuples whose codes are within Hamming
// distance h of q (Algorithm 3, H-Search). It records per-query work in
// x.Stats; concurrent callers sharing one index (e.g. reducers searching a
// broadcast index) should use SearchInto with their own stats.
func (x *DynamicIndex) Search(q bitvec.Code, h int) []int {
	x.Stats = SearchStats{}
	return x.SearchInto(q, h, &x.Stats)
}

// SearchInto is Search with caller-owned statistics; it does not mutate the
// index and is safe for concurrent use.
func (x *DynamicIndex) SearchInto(q bitvec.Code, h int, stats *SearchStats) []int {
	var out []int
	x.search(q, h, stats, func(g *leafGroup) { out = append(out, g.ids...) })
	for _, p := range x.buffer {
		stats.DistanceComputations++
		if _, ok := q.DistanceWithin(p.code, h); ok {
			out = append(out, p.id)
		}
	}
	return out
}

// SearchCodes returns the distinct qualifying binary codes instead of tuple
// ids — the leafless mode used by MapReduce Hamming-join Option B, where a
// post-processing join recovers the ids.
func (x *DynamicIndex) SearchCodes(q bitvec.Code, h int) []bitvec.Code {
	x.Stats = SearchStats{}
	return x.SearchCodesInto(q, h, &x.Stats)
}

// SearchCodesInto is SearchCodes with caller-owned statistics, safe for
// concurrent use.
func (x *DynamicIndex) SearchCodesInto(q bitvec.Code, h int, stats *SearchStats) []bitvec.Code {
	var out []bitvec.Code
	x.search(q, h, stats, func(g *leafGroup) { out = append(out, g.code) })
	for _, p := range x.buffer {
		stats.DistanceComputations++
		if _, ok := q.DistanceWithin(p.code, h); ok {
			out = append(out, p.code)
		}
	}
	return out
}

// search runs the breadth-first H-Search over the hierarchy, invoking emit
// for every qualifying leaf group. At each node only the bits fixed beyond
// the parent are charged, so along any root-to-leaf path each bit position
// is XORed exactly once.
func (x *DynamicIndex) search(q bitvec.Code, h int, stats *SearchStats, emit func(*leafGroup)) {
	queue := queuePool.Get().(*[]qitem)
	defer func() {
		*queue = (*queue)[:0]
		queuePool.Put(queue)
	}()
	x.searchHier(queue, q, h, stats, emit)
}

// searchWith implements Index: the same H-Search on the searcher's own work
// queue (reused across queries), followed by a linear pass over the
// unflushed insert buffer through emitOne.
func (x *DynamicIndex) searchWith(sr *Searcher, q bitvec.Code, h int, emitGroup func(*leafGroup), emitOne func(int, bitvec.Code)) {
	x.searchHier(&sr.queue, q, h, &sr.Stats, emitGroup)
	for i := range x.buffer {
		sr.Stats.DistanceComputations++
		if _, ok := q.DistanceWithin(x.buffer[i].code, h); ok {
			emitOne(x.buffer[i].id, x.buffer[i].code)
		}
	}
}

// searchHier is the H-Search core over a caller-supplied queue; *queue is
// left grown so pooling callers keep the high-water capacity.
func (x *DynamicIndex) searchHier(queue *[]qitem, q bitvec.Code, h int, stats *SearchStats, emit func(*leafGroup)) {
	if q.Len() != x.length {
		panic(fmt.Sprintf("core: %d-bit query against %d-bit index", q.Len(), x.length))
	}
	*queue = (*queue)[:0]
	qw := q.Words()
	nw := len(qw)
	for _, r := range x.roots {
		stats.DistanceComputations++
		if d := residualDistance(r.res, qw, nw); d <= h {
			*queue = append(*queue, qitem{n: r, dist: d})
		}
	}
	for _, g := range x.topLeaves {
		stats.DistanceComputations++
		stats.LeavesChecked++
		if _, ok := q.DistanceWithin(g.code, h); ok {
			emit(g)
		}
	}
	for head := 0; head < len(*queue); head++ {
		it := (*queue)[head]
		stats.NodesVisited++
		for _, c := range it.n.children {
			stats.DistanceComputations++
			if d := it.dist + residualDistance(c.res, qw, nw); d <= h {
				*queue = append(*queue, qitem{n: c, dist: d})
			}
		}
		if len(it.n.leaves) > 0 {
			mask := it.n.pat.Mask()
			for _, g := range it.n.leaves {
				stats.DistanceComputations++
				stats.LeavesChecked++
				if it.dist+q.DistanceExcluding(g.code, mask) <= h {
					emit(g)
				}
			}
		}
	}
}

// qitem is one H-Search queue entry.
type qitem struct {
	n    *dnode
	dist int
}

// queuePool recycles H-Search work queues across queries.
var queuePool = sync.Pool{New: func() interface{} {
	s := make([]qitem, 0, 128)
	return &s
}}

// residualDistance counts differing bits between the query words and a
// node's residual pattern (mask words then bits words).
func residualDistance(res, qw []uint64, nw int) int {
	d := 0
	for i := 0; i < nw; i++ {
		d += bits.OnesCount64((qw[i] ^ res[nw+i]) & res[i])
	}
	return d
}

// Insert adds a tuple (Section 4.5): the tuple enters a temporary buffer,
// and when the buffer reaches its maximum size an H-Build pass appends the
// buffered tuples into the hierarchy.
func (x *DynamicIndex) Insert(id int, c bitvec.Code) {
	if c.Len() != x.length {
		panic(fmt.Sprintf("core: inserting %d-bit code into %d-bit index", c.Len(), x.length))
	}
	// Fast path: the code already has a leaf group — join it directly. No
	// ancestor mask needs widening: the inserted code is bit-identical to the
	// group's code, which already matches every ancestor's FLSSeq pattern, so
	// the soundness invariant (each leaf beneath a node agrees with the node's
	// pattern on all its fixed positions) is untouched. Only the frequencies
	// change. Pinned by TestMutatePropertyVsOracle / checkHierarchyInvariants.
	if g, ok := x.byCode[c.Key()]; ok {
		g.ids = append(g.ids, id)
		x.n++
		for n := g.parent; n != nil; n = n.parent {
			n.freq++
		}
		return
	}
	x.buffer = append(x.buffer, pendingInsert{id: id, code: c})
	if len(x.buffer) >= x.opts.BufferMax {
		x.Flush()
	}
}

// Flush merges all buffered inserts into the hierarchy.
func (x *DynamicIndex) Flush() {
	if len(x.buffer) == 0 {
		return
	}
	for _, p := range x.buffer {
		x.addLeaf(p.id, p.code)
	}
	x.buffer = x.buffer[:0]
	x.rebuild()
}

// Delete removes the tuple with the given id and code (Algorithm 2,
// H-Delete): the leaf is located, frequencies along its path are
// decremented, and nodes whose frequency reaches zero are unlinked.
// It reports whether a tuple was removed.
//
// Ancestor residual and full masks are deliberately NOT recomputed. A node's
// pattern was the FLSSeq shared by every item beneath it at build time;
// removing an item leaves the survivors still matching that pattern, so the
// soundness invariant H-Search depends on (descendants agree with the node
// pattern on all fixed positions, hence per-node residual charges are exact
// along any root-to-leaf path) is preserved. The masks may become narrower
// than the survivors' true FLSSeq — the hierarchy loses pruning power, never
// correctness — until the next rebuild() re-tightens them. Pinned by
// TestMutatePropertyVsOracle / checkHierarchyInvariants.
func (x *DynamicIndex) Delete(id int, c bitvec.Code) bool {
	for i, p := range x.buffer {
		if p.id == id && p.code.Equal(c) {
			x.buffer = append(x.buffer[:i], x.buffer[i+1:]...)
			return true
		}
	}
	g, ok := x.byCode[c.Key()]
	if !ok {
		return false
	}
	found := false
	for i, v := range g.ids {
		if v == id {
			g.ids = append(g.ids[:i], g.ids[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	x.n--
	if len(g.ids) == 0 {
		delete(x.byCode, c.Key())
		if g.parent == nil {
			x.topLeaves = removeLeaf(x.topLeaves, g)
		} else {
			g.parent.leaves = removeLeaf(g.parent.leaves, g)
		}
	}
	// Decrement frequencies and unlink empty nodes bottom-up.
	for n := g.parent; n != nil; {
		n.freq--
		parent := n.parent
		if n.freq <= 0 {
			if parent == nil {
				x.roots = removeNode(x.roots, n)
			} else {
				parent.children = removeNode(parent.children, n)
			}
		}
		n = parent
	}
	return true
}

func removeLeaf(s []*leafGroup, g *leafGroup) []*leafGroup {
	for i, x := range s {
		if x == g {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func removeNode(s []*dnode, n *dnode) []*dnode {
	for i, x := range s {
		if x == n {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// NodeCount returns the number of internal nodes |V| (Section 4.7).
func (x *DynamicIndex) NodeCount() int {
	count := 0
	x.walk(func(*dnode) { count++ })
	return count
}

// EdgeCount returns the number of hierarchy edges |E|, counting node→node
// and node→leaf links (Section 4.7).
func (x *DynamicIndex) EdgeCount() int {
	count := 0
	x.walk(func(n *dnode) { count += len(n.children) + len(n.leaves) })
	return count
}

func (x *DynamicIndex) walk(fn func(*dnode)) {
	var rec func(*dnode)
	rec = func(n *dnode) {
		fn(n)
		for _, c := range n.children {
			rec(c)
		}
	}
	for _, r := range x.roots {
		rec(r)
	}
}

// SizeBytes returns the approximate total in-memory footprint, including the
// leaf-level hash table.
func (x *DynamicIndex) SizeBytes() int {
	return x.InternalSizeBytes() + x.LeafSizeBytes()
}

// InternalSizeBytes returns the footprint of the internal nodes only — the
// part broadcast by MapReduce Hamming-join Option B, which drops the leaf
// id tables (Section 5.3).
func (x *DynamicIndex) InternalSizeBytes() int {
	sz := 0
	x.walk(func(n *dnode) {
		sz += 64 + n.pat.SizeBytes() + 8*(len(n.children)+len(n.leaves))
	})
	return sz
}

// LeafSizeBytes returns the footprint of the leaf groups and their id hash
// table.
func (x *DynamicIndex) LeafSizeBytes() int {
	return x.LeafCodeSizeBytes() + x.LeafIDSizeBytes()
}

// LeafCodeSizeBytes returns the footprint of the distinct leaf codes alone.
func (x *DynamicIndex) LeafCodeSizeBytes() int {
	sz := 0
	for _, g := range x.byCode {
		sz += 48 + g.code.SizeBytes()
	}
	for _, p := range x.buffer {
		sz += 16 + p.code.SizeBytes()
	}
	return sz
}

// LeafIDSizeBytes returns the footprint of the per-leaf tuple-id tables —
// the part MapReduce Hamming-join Option B omits from the broadcast.
func (x *DynamicIndex) LeafIDSizeBytes() int {
	sz := 0
	for _, g := range x.byCode {
		sz += 8 * len(g.ids)
	}
	return sz
}

// BroadcastSizeBytes returns the serialized size shipped to each node by the
// distributed join: with ids (Option A) or leafless (Option B).
func (x *DynamicIndex) BroadcastSizeBytes(withIDs bool) int {
	sz := x.InternalSizeBytes() + x.LeafCodeSizeBytes()
	if withIDs {
		sz += x.LeafIDSizeBytes()
	}
	return sz
}

// Codes returns the distinct indexed codes in unspecified order; used when
// repartitioning or merging indexes.
func (x *DynamicIndex) Codes() []bitvec.Code {
	out := make([]bitvec.Code, 0, len(x.byCode))
	for _, g := range x.byCode {
		out = append(out, g.code)
	}
	return out
}

// Tuples invokes fn for every (id, code) pair in the index, including
// buffered inserts.
func (x *DynamicIndex) Tuples(fn func(id int, code bitvec.Code)) {
	for _, g := range x.byCode {
		for _, id := range g.ids {
			fn(id, g.code)
		}
	}
	for _, p := range x.buffer {
		fn(p.id, p.code)
	}
}
