package core

import (
	"haindex/internal/bitvec"
)

// Engine is the surface an external search engine implements to plug into
// the core query machinery. The Index interface itself is sealed (its
// searchWith method is unexported so the walk internals stay private), so
// engines living outside this package — multi-index hashing, future
// LSH-style backends — implement Engine instead and are adapted with
// AsIndex. The adapted index runs under Searcher, SearchBatch,
// SearchCodesBatch, and the generic radius-escalating TopK unchanged.
type Engine interface {
	// Length returns the code length L in bits.
	Length() int
	// Len returns the number of indexed tuples.
	Len() int
	// NewScratch returns a fresh per-searcher scratch. Each Searcher bound
	// to the adapted index creates exactly one scratch lazily and reuses it,
	// mirroring the Searcher-as-unit-of-concurrency contract: scratches are
	// never shared across goroutines, the engine itself is read-only.
	NewScratch() EngineScratch
}

// EngineScratch is one searcher's mutable state over an Engine.
type EngineScratch interface {
	// Search runs one Hamming-select: emit receives every qualifying
	// distinct code once, with its tuple ids. The slices passed to emit may
	// alias the engine's arenas and must not be retained or mutated. Work
	// done is accumulated into stats.
	Search(q bitvec.Code, h int, stats *SearchStats, emit func(ids []int, code bitvec.Code))
}

// EngineIndex adapts an Engine to the sealed Index interface. Create with
// AsIndex. The wrapper routes the engine's emit callback through per-Searcher
// persistent state, so steady-state search over an adapted engine stays
// allocation-free when the engine's own scratch is.
type EngineIndex struct {
	eng Engine
}

// AsIndex wraps an external engine as a core.Index.
func AsIndex(e Engine) *EngineIndex { return &EngineIndex{eng: e} }

// Engine returns the wrapped engine (e.g. for codec type switches).
func (x *EngineIndex) Engine() Engine { return x.eng }

// Length returns the code length L in bits.
func (x *EngineIndex) Length() int { return x.eng.Length() }

// Len returns the number of indexed tuples.
func (x *EngineIndex) Len() int { return x.eng.Len() }

// searchWith implements Index: the engine's qualifying groups are forwarded
// through the searcher's reusable leafGroup shim, so the existing emit
// closures (ids and codes alike) work unchanged. emitOne is never invoked —
// an engine has no unflushed insert buffer.
func (x *EngineIndex) searchWith(sr *Searcher, q bitvec.Code, h int, emitGroup func(*leafGroup), emitOne func(int, bitvec.Code)) {
	if sr.xscratch == nil {
		sr.xscratch = x.eng.NewScratch()
	}
	sr.xtarget = emitGroup
	sr.xscratch.Search(q, h, &sr.Stats, sr.xemit)
	sr.xtarget = nil
}
