package core

import (
	"fmt"
	"math/bits"
	"sort"

	"haindex/internal/bitvec"
)

// FrozenIndex is the compiled, read-only form of the Dynamic HA-Index: the
// pointer hierarchy flattened into structure-of-arrays storage so H-Search
// walks contiguous memory instead of chasing *dnode children.
//
// Nodes are numbered in level (BFS) order — roots are ids [0, nRoots), every
// child id is strictly greater than its parent's — and their edges are CSR
// slices: node i's children are childList[childStart[i]:childStart[i+1]] and
// its leaf groups leafList[leafStart[i]:leafStart[i+1]]. The per-node
// residual pattern words (mask then bits&mask, the same layout dnode.res
// uses) are packed back to back in resSlab at offset i*2*nw, and the node's
// full pattern mask (for the leaf-level DistanceExcluding) in maskSlab at
// i*nw. Leaf codes sit word-packed in Gray (hierarchy) order in codeSlab,
// tuple ids in idSlab with idStart offsets; fillGroup materializes any group
// on demand into a per-Searcher scratch leafGroup whose code and ids alias
// the arena, so the Searcher's existing emit closures work unchanged without
// a resident groups array.
//
// A FrozenIndex is immutable: it has no insert buffer and no Insert/Delete.
// It implements Index, so Searcher, SearchBatch, SearchCodesBatch, and TopK
// all run over it; TopK additionally reuses an epoch-packed per-node memo so
// radius escalation computes each node's residual distance at most once.
type FrozenIndex struct {
	length int // code length L in bits
	n      int // number of tuples
	nw     int // words per code

	// rootIDs lists the hierarchy roots. An index compiled by Freeze (or
	// decoded from the v2 codec) has the contiguous roots [0, len(rootIDs));
	// a streamed arena (FrozenStreamWriter) concatenates chunk forests, so
	// its roots are scattered. Either way every child id strictly exceeds
	// its parent's, which is the invariant the walks and decoders rely on.
	rootIDs []int32

	childStart []int32
	childList  []int32
	leafStart  []int32
	leafList   []int32
	resSlab    []uint64 // 2*nw words per node: residual mask, then bits&mask
	maskSlab   []uint64 // nw words per node: full pattern mask

	codeSlab  []uint64 // nw words per leaf group, Gray order
	idStart   []int32  // nGroups+1 offsets into idSlab
	idSlab    []int
	topLeaves []int32 // leaf groups linked at the top level

	// arenaForm marks an index decoded from (or destined for) the v4
	// mmap-native layout; wire snapshot anti-splicing checks read it.
	arenaForm bool
	// mapping, when non-nil, is the mmap'd file region every slab above
	// aliases; munmap releases it. The slabs are then read-only: nothing may
	// write through them (see bitvec.FromWordsShared).
	mapping []byte
	munmap  func([]byte) error
}

// Freeze compiles a Dynamic HA-Index into its flat, read-only form. A
// non-empty insert buffer is flushed into the hierarchy first, so frozen
// search answers exactly what the pointer walk would — buffered tuples are
// never dropped. The input index remains valid (and flushed) afterwards.
func Freeze(x *DynamicIndex) *FrozenIndex {
	x.Flush()
	nw := (x.length + 63) / 64

	// Leaf groups in hierarchy order: depth-first under the Gray-built
	// roots, then the top-level leaves — the same contiguous Gray layout the
	// codec serializes.
	srcGroups := make([]*leafGroup, 0, len(x.byCode))
	x.walkGroups(func(g *leafGroup) { srcGroups = append(srcGroups, g) })
	gidx := make(map[*leafGroup]int32, len(srcGroups))
	for i, g := range srcGroups {
		gidx[g] = int32(i)
	}

	// Level-order the nodes: BFS from the roots, so children are contiguous
	// in childList and every child id exceeds its parent's.
	nodes := append([]*dnode(nil), x.roots...)
	for at := 0; at < len(nodes); at++ {
		nodes = append(nodes, nodes[at].children...)
	}
	nidOf := make(map[*dnode]int32, len(nodes))
	for i, n := range nodes {
		nidOf[n] = int32(i)
	}

	f := &FrozenIndex{
		length:  x.length,
		n:       x.n,
		nw:      nw,
		rootIDs: contiguousRoots(len(x.roots)),
	}

	// Leaf arena.
	nIDs := 0
	for _, g := range srcGroups {
		nIDs += len(g.ids)
	}
	f.codeSlab = make([]uint64, len(srcGroups)*nw)
	f.idSlab = make([]int, 0, nIDs)
	f.idStart = make([]int32, len(srcGroups)+1)
	for i, g := range srcGroups {
		copy(f.codeSlab[i*nw:(i+1)*nw], g.code.Words())
		f.idStart[i] = int32(len(f.idSlab))
		f.idSlab = append(f.idSlab, g.ids...)
	}
	f.idStart[len(srcGroups)] = int32(len(f.idSlab))
	f.topLeaves = make([]int32, len(x.topLeaves))
	for i, g := range x.topLeaves {
		f.topLeaves[i] = gidx[g]
	}

	// Node arena.
	nn := len(nodes)
	f.childStart = make([]int32, nn+1)
	f.leafStart = make([]int32, nn+1)
	f.resSlab = make([]uint64, nn*2*nw)
	f.maskSlab = make([]uint64, nn*nw)
	for i, n := range nodes {
		f.childStart[i] = int32(len(f.childList))
		for _, c := range n.children {
			f.childList = append(f.childList, nidOf[c])
		}
		f.leafStart[i] = int32(len(f.leafList))
		for _, g := range n.leaves {
			f.leafList = append(f.leafList, gidx[g])
		}
		copy(f.resSlab[i*2*nw:(i+1)*2*nw], n.res)
		copy(f.maskSlab[i*nw:(i+1)*nw], n.pat.Mask().Words())
	}
	f.childStart[nn] = int32(len(f.childList))
	f.leafStart[nn] = int32(len(f.leafList))
	return f
}

// contiguousRoots returns the identity root list [0, n) — the layout Freeze
// and the v2 codec produce.
func contiguousRoots(n int) []int32 {
	roots := make([]int32, n)
	for i := range roots {
		roots[i] = int32(i)
	}
	return roots
}

// fillGroup materializes leaf group gi into the caller's scratch: the code
// and id slices alias the arena (capacity-clamped so appends can never
// bleed). Groups are no longer kept as a resident []leafGroup array — at
// millions of distinct codes the headers alone cost more than the slabs —
// so the walks pass each qualifying group through a per-Searcher scratch
// value instead.
func (f *FrozenIndex) fillGroup(gi int32, g *leafGroup) {
	lo, hi := f.idStart[gi], f.idStart[gi+1]
	g.code = bitvec.FromWordsShared(f.codeSlab[int(gi)*f.nw:int(gi+1)*f.nw], f.length)
	g.ids = f.idSlab[lo:hi:hi]
	g.parent = nil
}

// groupCode returns leaf group gi's code, aliasing the arena.
func (f *FrozenIndex) groupCode(gi int32) bitvec.Code {
	return bitvec.FromWordsShared(f.codeSlab[int(gi)*f.nw:int(gi+1)*f.nw], f.length)
}

// groupIDs returns leaf group gi's tuple ids, aliasing the arena.
func (f *FrozenIndex) groupIDs(gi int32) []int {
	lo, hi := f.idStart[gi], f.idStart[gi+1]
	return f.idSlab[lo:hi:hi]
}

// Len returns the number of indexed tuples.
func (f *FrozenIndex) Len() int { return f.n }

// Length returns the code length L in bits.
func (f *FrozenIndex) Length() int { return f.length }

// NodeCount returns the number of internal nodes.
func (f *FrozenIndex) NodeCount() int { return len(f.childStart) - 1 }

// EdgeCount returns the number of hierarchy edges (node→node and node→leaf).
func (f *FrozenIndex) EdgeCount() int { return len(f.childList) + len(f.leafList) }

// GroupCount returns the number of distinct indexed codes.
func (f *FrozenIndex) GroupCount() int {
	if len(f.idStart) == 0 {
		return 0
	}
	return len(f.idStart) - 1
}

// SizeBytes returns the full footprint of the arena: every slab and CSR
// array, resident or mapped. Unlike the pointer index there are no per-node
// allocations or map buckets to estimate.
func (f *FrozenIndex) SizeBytes() int {
	sz := 8 * (len(f.resSlab) + len(f.maskSlab) + len(f.codeSlab) + len(f.idSlab))
	sz += 4 * (len(f.childStart) + len(f.childList) + len(f.leafStart) + len(f.leafList) + len(f.idStart) + len(f.topLeaves) + len(f.rootIDs))
	return sz
}

// MappedBytes returns the size of the mmap'd file region backing the arena,
// or 0 when every slab lives on the Go heap.
func (f *FrozenIndex) MappedBytes() int { return len(f.mapping) }

// ArenaForm reports whether this index came from (or is destined for) the
// v4 mmap-native layout; the wire snapshot codec keys its version on it.
func (f *FrozenIndex) ArenaForm() bool { return f.arenaForm }

// HeapBytes returns the heap-resident share of the arena: SizeBytes for an
// eagerly decoded index, zero for an mmap'd one — every array, down to the
// root list, aliases the page-cache-backed mapping.
func (f *FrozenIndex) HeapBytes() int {
	if f.mapping != nil {
		return 0
	}
	return f.SizeBytes()
}

// Close releases the mmap'd region backing a mapped arena; it is a no-op for
// a heap-resident index. The index must not be searched after Close — the
// slabs alias the released mapping.
func (f *FrozenIndex) Close() error {
	if f.mapping == nil {
		return nil
	}
	m := f.mapping
	f.mapping = nil
	if f.munmap == nil {
		return nil
	}
	return f.munmap(m)
}

// Codes returns the distinct indexed codes in arena order.
func (f *FrozenIndex) Codes() []bitvec.Code {
	out := make([]bitvec.Code, f.GroupCount())
	for i := range out {
		out[i] = f.groupCode(int32(i))
	}
	return out
}

// Tuples invokes fn for every (id, code) pair in the index.
func (f *FrozenIndex) Tuples(fn func(id int, code bitvec.Code)) {
	for gi := 0; gi < f.GroupCount(); gi++ {
		code := f.groupCode(int32(gi))
		for _, id := range f.groupIDs(int32(gi)) {
			fn(id, code)
		}
	}
}

// searchWith implements Index: the H-Search walk over the flat arrays on the
// searcher's scratch. A frozen index has no insert buffer, so emitOne is
// never invoked.
func (f *FrozenIndex) searchWith(sr *Searcher, q bitvec.Code, h int, emitGroup func(*leafGroup), emitOne func(int, bitvec.Code)) {
	if q.Len() != f.length {
		panic(fmt.Sprintf("core: %d-bit query against %d-bit frozen index", q.Len(), f.length))
	}
	f.walkEmit(sr, q.Words(), h, emitGroup)
}

// fitem is one frozen-walk queue entry: a node id and the Hamming distance
// accumulated over its ancestors' residuals.
type fitem struct {
	nid  int32
	dist int32
}

// walkEmit is the hot-path breadth-first H-Search over the arena, invoking
// emit for every qualifying leaf group. Residual distances are computed
// inline from the slabs (no memo, since a single walk touches each node at
// most once), with the one-word case — the common short-code configuration —
// specialized so the per-node work is a bare XOR/AND/popcount.
func (f *FrozenIndex) walkEmit(sr *Searcher, qw []uint64, h int, emit func(*leafGroup)) {
	st := &sr.Stats
	nw := f.nw
	hh := int32(h)
	resSlab, maskSlab, codeSlab := f.resSlab, f.maskSlab, f.codeSlab
	childStart, childList := f.childStart, f.childList
	leafStart, leafList := f.leafStart, f.leafList
	queue := sr.fqueue[:0]
	// Qualifying groups pass through the searcher's scratch leafGroup: the
	// emit closures consume (copy out of) the group synchronously, so one
	// reused value replaces the resident groups array an arena would
	// otherwise have to materialize on load.
	emitGi := func(gi int32) {
		f.fillGroup(gi, &sr.fgroup)
		emit(&sr.fgroup)
	}
	if nw == 1 {
		qw0 := qw[0]
		for _, nid := range f.rootIDs {
			st.DistanceComputations++
			base := 2 * int(nid)
			if d := int32(bits.OnesCount64((qw0 ^ resSlab[base+1]) & resSlab[base])); d <= hh {
				queue = append(queue, fitem{nid: nid, dist: d})
			}
		}
		for _, gi := range f.topLeaves {
			st.DistanceComputations++
			st.LeavesChecked++
			if bits.OnesCount64(qw0^codeSlab[gi]) <= h {
				emitGi(gi)
			}
		}
		for head := 0; head < len(queue); head++ {
			it := queue[head]
			st.NodesVisited++
			for ci := childStart[it.nid]; ci < childStart[it.nid+1]; ci++ {
				c := childList[ci]
				st.DistanceComputations++
				base := 2 * int(c)
				if d := it.dist + int32(bits.OnesCount64((qw0^resSlab[base+1])&resSlab[base])); d <= hh {
					queue = append(queue, fitem{nid: c, dist: d})
				}
			}
			ls, le := leafStart[it.nid], leafStart[it.nid+1]
			if ls < le {
				mask := maskSlab[it.nid]
				for li := ls; li < le; li++ {
					gi := leafList[li]
					st.DistanceComputations++
					st.LeavesChecked++
					if it.dist+int32(bits.OnesCount64((qw0^codeSlab[gi])&^mask)) <= hh {
						emitGi(gi)
					}
				}
			}
		}
	} else {
		for _, nid := range f.rootIDs {
			st.DistanceComputations++
			base := int(nid) * 2 * nw
			if d := int32(residualDistance(resSlab[base:base+2*nw], qw, nw)); d <= hh {
				queue = append(queue, fitem{nid: nid, dist: d})
			}
		}
		for _, gi := range f.topLeaves {
			st.DistanceComputations++
			st.LeavesChecked++
			if _, ok := distWithinWords(qw, codeSlab[int(gi)*nw:int(gi+1)*nw], h); ok {
				emitGi(gi)
			}
		}
		for head := 0; head < len(queue); head++ {
			it := queue[head]
			st.NodesVisited++
			for ci := childStart[it.nid]; ci < childStart[it.nid+1]; ci++ {
				c := childList[ci]
				st.DistanceComputations++
				base := int(c) * 2 * nw
				if d := it.dist + int32(residualDistance(resSlab[base:base+2*nw], qw, nw)); d <= hh {
					queue = append(queue, fitem{nid: c, dist: d})
				}
			}
			ls, le := leafStart[it.nid], leafStart[it.nid+1]
			if ls < le {
				mask := maskSlab[int(it.nid)*nw : int(it.nid)*nw+nw]
				for li := ls; li < le; li++ {
					gi := leafList[li]
					st.DistanceComputations++
					st.LeavesChecked++
					if it.dist+int32(distExcludingWords(qw, codeSlab[int(gi)*nw:int(gi+1)*nw], mask)) <= hh {
						emitGi(gi)
					}
				}
			}
		}
	}
	sr.fqueue = queue[:0] // keep the high-water capacity
}

// walkMemo is the TopK variant of the walk: it appends every qualifying leaf
// group and its exact distance to sr.fgroups/sr.fdists, and serves per-node
// residual distances from the searcher's epoch-packed memo so the radius
// escalation computes each node's contribution at most once; callers must
// have bumped sr.fepoch via prepareFrozen.
func (f *FrozenIndex) walkMemo(sr *Searcher, qw []uint64, h int) {
	st := &sr.Stats
	nw := f.nw
	hh := int32(h)
	sr.fgroups = sr.fgroups[:0]
	sr.fdists = sr.fdists[:0]
	queue := sr.fqueue[:0]
	for _, nid := range f.rootIDs {
		if d := f.nodeDistMemo(sr, qw, nid); d <= hh {
			queue = append(queue, fitem{nid: nid, dist: d})
		}
	}
	for _, gi := range f.topLeaves {
		st.DistanceComputations++
		st.LeavesChecked++
		if d, ok := distWithinWords(qw, f.codeSlab[int(gi)*nw:int(gi+1)*nw], h); ok {
			sr.fgroups = append(sr.fgroups, gi)
			sr.fdists = append(sr.fdists, int32(d))
		}
	}
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		st.NodesVisited++
		for ci := f.childStart[it.nid]; ci < f.childStart[it.nid+1]; ci++ {
			c := f.childList[ci]
			if d := it.dist + f.nodeDistMemo(sr, qw, c); d <= hh {
				queue = append(queue, fitem{nid: c, dist: d})
			}
		}
		ls, le := f.leafStart[it.nid], f.leafStart[it.nid+1]
		if ls < le {
			mask := f.maskSlab[int(it.nid)*nw : int(it.nid)*nw+nw]
			for li := ls; li < le; li++ {
				gi := f.leafList[li]
				st.DistanceComputations++
				st.LeavesChecked++
				d := it.dist + int32(distExcludingWords(qw, f.codeSlab[int(gi)*nw:int(gi+1)*nw], mask))
				if d <= hh {
					sr.fgroups = append(sr.fgroups, gi)
					sr.fdists = append(sr.fdists, d)
				}
			}
		}
	}
	sr.fqueue = queue[:0] // keep the high-water capacity
}

// nodeDistMemo returns the memoized residual distance of one node against
// the query. Memo entries pack (epoch<<21 | dist+1) in a uint64; 21 bits
// cover any distance over codes up to the 1<<20-bit codec cap, and a zero
// entry never matches a live epoch.
func (f *FrozenIndex) nodeDistMemo(sr *Searcher, qw []uint64, nid int32) int32 {
	if m := sr.fmemo[nid]; m>>21 == sr.fepoch {
		return int32(m&(1<<21-1)) - 1
	}
	sr.Stats.DistanceComputations++
	nw := f.nw
	d := int32(residualDistance(f.resSlab[int(nid)*2*nw:int(nid)*2*nw+2*nw], qw, nw))
	sr.fmemo[nid] = sr.fepoch<<21 | uint64(d+1)
	return d
}

// prepareFrozen (re)sizes the searcher's frozen memo scratch for this index
// and advances the epoch that invalidates previous entries.
func (sr *Searcher) prepareFrozen(f *FrozenIndex) {
	if nn := len(f.childStart) - 1; len(sr.fmemo) < nn {
		sr.fmemo = append(sr.fmemo, make([]uint64, nn-len(sr.fmemo))...)
	}
	if ng := f.GroupCount(); len(sr.fseen) < ng {
		sr.fseen = append(sr.fseen, make([]uint64, ng-len(sr.fseen))...)
	}
	sr.fepoch++
	if sr.fepoch >= 1<<43 {
		for i := range sr.fmemo {
			sr.fmemo[i] = 0
		}
		for i := range sr.fseen {
			sr.fseen[i] = 0
		}
		sr.fepoch = 1
	}
}

// topK is the frozen-index top-k: the same radius escalation as the generic
// Searcher.TopK, but every walk after the first reuses the epoch-packed
// per-node memo (one residual distance computation per node for the whole
// expansion) and first-seen groups are deduplicated with epoch marks instead
// of a map. The walk computes each emitted group's exact distance, so the
// result is assembled without re-measuring codes.
func (f *FrozenIndex) topK(sr *Searcher, q bitvec.Code, k int) ([]int, []int) {
	sr.Stats = SearchStats{}
	if k <= 0 || f.n == 0 {
		return nil, nil
	}
	if q.Len() != f.length {
		panic(fmt.Sprintf("core: %d-bit query against %d-bit frozen index", q.Len(), f.length))
	}
	sr.prepareFrozen(f)
	qw := q.Words()
	var his, hds []int32
	found := 0
	for h := 0; h <= f.length && found < k; h++ {
		f.walkMemo(sr, qw, h)
		for i, gi := range sr.fgroups {
			if sr.fseen[gi] == sr.fepoch {
				continue
			}
			sr.fseen[gi] = sr.fepoch
			his = append(his, gi)
			hds = append(hds, sr.fdists[i])
			found += len(f.groupIDs(gi))
		}
	}
	ids := make([]int, 0, found)
	dists := make([]int, 0, found)
	for i, gi := range his {
		for _, id := range f.groupIDs(gi) {
			ids = append(ids, id)
			dists = append(dists, int(hds[i]))
		}
	}
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if dists[ia] != dists[ib] {
			return dists[ia] < dists[ib]
		}
		return ids[ia] < ids[ib]
	})
	if len(order) > k {
		order = order[:k]
	}
	outIDs := make([]int, len(order))
	outDists := make([]int, len(order))
	for i, j := range order {
		outIDs[i] = ids[j]
		outDists[i] = dists[j]
	}
	return outIDs, outDists
}

// distWithinWords is Code.DistanceWithin over raw word slices: it returns
// the full Hamming distance and whether it is at most h, short-circuiting
// once the running count exceeds h.
func distWithinWords(qw, cw []uint64, h int) (int, bool) {
	sum := 0
	for i, w := range qw {
		sum += bits.OnesCount64(w ^ cw[i])
		if sum > h {
			return sum, false
		}
	}
	return sum, true
}

// distExcludingWords is Code.DistanceExcluding over raw word slices: the
// Hamming distance counted only at positions NOT set in the mask words.
func distExcludingWords(qw, cw, mw []uint64) int {
	sum := 0
	for i, w := range qw {
		sum += bits.OnesCount64((w ^ cw[i]) &^ mw[i])
	}
	return sum
}
