package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// codecVersionFrozen is the HADX v2 layout: the frozen index's arenas
// serialized directly, so decoding is a near-single-copy fill of the flat
// arrays instead of node-by-node pointer reconstruction.
//
// Layout (integers are unsigned varints unless noted):
//
//	magic "HADX" | version 2 | code length L | flags (bit0: ids present)
//	nGroups | nNodes | nRoots | nChildRefs | nLeafRefs | nTopLeaves
//	codeSlab: nGroups*nw words (fixed 8B big-endian each)
//	ids (only when flag set): per group: count, then delta-encoded ids
//	topLeaves: nTopLeaves group indexes
//	child degrees: nNodes counts (prefix-summed into childStart on decode)
//	childList: nChildRefs node ids (level order: each child id > its parent)
//	leaf degrees: nNodes counts | leafList: nLeafRefs group indexes
//	resSlab: nNodes*2*nw words (fixed) | maskSlab: nNodes*nw words (fixed)
const codecVersionFrozen = 2

// rootsContiguous reports whether the root list is the identity prefix
// [0, len(rootIDs)) — the only root layout the v2 varint codec can encode.
// Freeze and the v2 decoder always produce it; a streamed arena
// (FrozenStreamWriter) generally does not.
func (f *FrozenIndex) rootsContiguous() bool {
	for i, r := range f.rootIDs {
		if r != int32(i) {
			return false
		}
	}
	return true
}

// Encode writes the frozen index in the v2 arena layout. With withIDs=false
// the tuple-id tables are omitted (the leafless Option-B broadcast form).
// Indexes with non-contiguous roots (streamed arenas) cannot be represented
// in v2; use EncodeArena for those.
func (f *FrozenIndex) Encode(w io.Writer, withIDs bool) error {
	if !f.rootsContiguous() {
		return fmt.Errorf("core: v2 codec cannot encode scattered roots; use the arena codec")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	putUvarint(bw, codecVersionFrozen)
	putUvarint(bw, uint64(f.length))
	flags := uint64(0)
	if withIDs {
		flags |= 1
	}
	putUvarint(bw, flags)

	nn := len(f.childStart) - 1
	for _, v := range []uint64{
		uint64(f.GroupCount()), uint64(nn), uint64(len(f.rootIDs)),
		uint64(len(f.childList)), uint64(len(f.leafList)), uint64(len(f.topLeaves)),
	} {
		putUvarint(bw, v)
	}
	if err := writeWordsBulk(bw, f.codeSlab); err != nil {
		return err
	}
	if withIDs {
		for gi := 0; gi < f.GroupCount(); gi++ {
			ids := f.groupIDs(int32(gi))
			putUvarint(bw, uint64(len(ids)))
			prev := int64(0)
			for _, id := range ids {
				putVarint(bw, int64(id)-prev)
				prev = int64(id)
			}
		}
	}
	for _, gi := range f.topLeaves {
		putUvarint(bw, uint64(gi))
	}
	for i := 0; i < nn; i++ {
		putUvarint(bw, uint64(f.childStart[i+1]-f.childStart[i]))
	}
	for _, c := range f.childList {
		putUvarint(bw, uint64(c))
	}
	for i := 0; i < nn; i++ {
		putUvarint(bw, uint64(f.leafStart[i+1]-f.leafStart[i]))
	}
	for _, gi := range f.leafList {
		putUvarint(bw, uint64(gi))
	}
	if err := writeWordsBulk(bw, f.resSlab); err != nil {
		return err
	}
	if err := writeWordsBulk(bw, f.maskSlab); err != nil {
		return err
	}
	return bw.Flush()
}

// writeWordsBulk serializes a word slab big-endian through a reusable stack
// chunk, issuing one Write per 512 words instead of one per word — the same
// chunking the decoder's readWords uses. On multi-megabyte slabs this is the
// difference between the encoder being bound by bufio bookkeeping and being
// bound by memcpy.
func writeWordsBulk(bw *bufio.Writer, words []uint64) error {
	var chunk [512 * 8]byte
	for len(words) > 0 {
		c := len(chunk) / 8
		if c > len(words) {
			c = len(words)
		}
		for i := 0; i < c; i++ {
			binary.BigEndian.PutUint64(chunk[i*8:], words[i])
		}
		if _, err := bw.Write(chunk[:c*8]); err != nil {
			return err
		}
		words = words[c:]
	}
	return nil
}

// EncodedSize returns the exact wire size of the frozen index.
func (f *FrozenIndex) EncodedSize(withIDs bool) (int, error) {
	var c countingWriter
	if err := f.Encode(&c, withIDs); err != nil {
		return 0, err
	}
	return int(c), nil
}

// DecodeFrozen reads a frozen index previously written by
// (*FrozenIndex).Encode. Corrupt input returns an error, never panics.
func DecodeFrozen(r io.Reader) (*FrozenIndex, error) {
	br := bufio.NewReader(r)
	version, err := readCodecHeader(br)
	if err != nil {
		return nil, err
	}
	if version != codecVersionFrozen {
		return nil, fmt.Errorf("core: not a frozen index (version %d)", version)
	}
	return decodeFrozenBody(br)
}

// decodeFrozenBody parses the v2 layout after the magic and version. Every
// array grows incrementally while its bytes arrive, so hostile counts fail
// at EOF instead of pre-allocating, and all cross-array indexes are bounds-
// checked before the index is returned.
func decodeFrozenBody(br *bufio.Reader) (*FrozenIndex, error) {
	length64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	length := int(length64)
	if length <= 0 || length > 1<<20 {
		return nil, fmt.Errorf("core: implausible code length %d", length)
	}
	flags, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	withIDs := flags&1 != 0
	var nGroups, nNodes, nRoots, nChild, nLeafRefs, nTop uint64
	for _, dst := range []*uint64{&nGroups, &nNodes, &nRoots, &nChild, &nLeafRefs, &nTop} {
		if *dst, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
	}
	if nRoots > nNodes {
		return nil, fmt.Errorf("core: frozen index claims %d roots of %d nodes", nRoots, nNodes)
	}
	if nNodes > 1<<31-2 || nGroups > 1<<31-2 || nChild > 1<<31-2 || nLeafRefs > 1<<31-2 {
		return nil, fmt.Errorf("core: frozen index counts overflow")
	}

	nw := (length + 63) / 64
	f := &FrozenIndex{length: length, nw: nw, rootIDs: contiguousRoots(int(nRoots))}

	// readWords appends `count` big-endian words, reading in bounded chunks
	// so the allocation grows only as fast as real input arrives.
	var chunk [512 * 8]byte
	readWords := func(dst []uint64, count uint64, what string) ([]uint64, error) {
		for count > 0 {
			c := uint64(len(chunk) / 8)
			if c > count {
				c = count
			}
			if _, err := io.ReadFull(br, chunk[:c*8]); err != nil {
				return nil, fmt.Errorf("core: reading frozen %s: %w", what, err)
			}
			for i := uint64(0); i < c; i++ {
				dst = append(dst, binary.BigEndian.Uint64(chunk[i*8:]))
			}
			count -= c
		}
		return dst, nil
	}
	// readRefs appends `count` uvarint values each below `bound`.
	readRefs := func(dst []int32, count, bound uint64, what string) ([]int32, error) {
		for i := uint64(0); i < count; i++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("core: reading frozen %s: %w", what, err)
			}
			if v >= bound {
				return nil, fmt.Errorf("core: frozen %s index %d out of range (%d)", what, v, bound)
			}
			dst = append(dst, int32(v))
		}
		return dst, nil
	}

	if f.codeSlab, err = readWords(nil, nGroups*uint64(nw), "code slab"); err != nil {
		return nil, err
	}
	f.idStart = make([]int32, 0, 1024)
	if withIDs {
		for g := uint64(0); g < nGroups; g++ {
			f.idStart = append(f.idStart, int32(len(f.idSlab)))
			cnt, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			prev := int64(0)
			for j := uint64(0); j < cnt; j++ {
				d, err := binary.ReadVarint(br)
				if err != nil {
					return nil, err
				}
				prev += d
				if len(f.idSlab) >= 1<<31-2 {
					return nil, fmt.Errorf("core: frozen id table overflows")
				}
				f.idSlab = append(f.idSlab, int(prev))
			}
		}
	} else {
		for g := uint64(0); g < nGroups; g++ {
			f.idStart = append(f.idStart, 0)
		}
	}
	f.idStart = append(f.idStart, int32(len(f.idSlab)))
	f.n = len(f.idSlab)

	if f.topLeaves, err = readRefs(nil, nTop, maxU64(nGroups, 1), "top leaf"); err != nil {
		return nil, err
	}
	if nGroups == 0 && nTop > 0 {
		return nil, fmt.Errorf("core: frozen index has %d top leaves but no groups", nTop)
	}

	// CSR edges: degrees prefix-sum into the start arrays, then the flat ref
	// lists, validated against the declared totals.
	readStarts := func(total uint64, what string) ([]int32, error) {
		starts := make([]int32, 0, 1024)
		sum := uint64(0)
		for i := uint64(0); i < nNodes; i++ {
			starts = append(starts, int32(sum))
			deg, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("core: reading frozen %s degrees: %w", what, err)
			}
			sum += deg
			if sum > total {
				return nil, fmt.Errorf("core: frozen %s degrees exceed declared total %d", what, total)
			}
		}
		if sum != total {
			return nil, fmt.Errorf("core: frozen %s degrees sum to %d, declared %d", what, sum, total)
		}
		return append(starts, int32(sum)), nil
	}
	if f.childStart, err = readStarts(nChild, "child"); err != nil {
		return nil, err
	}
	if f.childList, err = readRefs(nil, nChild, maxU64(nNodes, 1), "child"); err != nil {
		return nil, err
	}
	if nNodes == 0 && nChild > 0 {
		return nil, fmt.Errorf("core: frozen index has %d child refs but no nodes", nChild)
	}
	// Level-order invariant: every child id exceeds its parent's, which both
	// rules out cycles and guarantees the BFS walk terminates.
	for nid := 0; nid < int(nNodes); nid++ {
		for ci := f.childStart[nid]; ci < f.childStart[nid+1]; ci++ {
			if f.childList[ci] <= int32(nid) {
				return nil, fmt.Errorf("core: frozen node %d lists child %d out of level order", nid, f.childList[ci])
			}
		}
	}
	if f.leafStart, err = readStarts(nLeafRefs, "leaf"); err != nil {
		return nil, err
	}
	if f.leafList, err = readRefs(nil, nLeafRefs, maxU64(nGroups, 1), "leaf"); err != nil {
		return nil, err
	}
	if nGroups == 0 && nLeafRefs > 0 {
		return nil, fmt.Errorf("core: frozen index has %d leaf refs but no groups", nLeafRefs)
	}
	if f.resSlab, err = readWords(nil, nNodes*2*uint64(nw), "residual slab"); err != nil {
		return nil, err
	}
	if f.maskSlab, err = readWords(nil, nNodes*uint64(nw), "mask slab"); err != nil {
		return nil, err
	}
	return f, nil
}

// maxU64 keeps readRefs' exclusive bound nonzero so a zero-element universe
// rejects every reference (the callers double-check the zero cases).
func maxU64(v, floor uint64) uint64 {
	if v < floor {
		return floor
	}
	return v
}
