package core

import (
	"bytes"
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
)

// frozenEnv builds a clustered dataset, its pointer index, and the frozen
// compilation, plus a mixed query set (members and random outsiders).
func frozenEnv(tb testing.TB, seed int64, n, bitsLen int) ([]bitvec.Code, []bitvec.Code, *DynamicIndex, *FrozenIndex) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	codes := clusteredCodes(rng, n, bitsLen, 10, 3)
	queries := make([]bitvec.Code, 32)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = bitvec.Rand(rng, bitsLen)
		} else {
			queries[i] = codes[rng.Intn(len(codes))]
		}
	}
	dyn := BuildDynamic(codes, nil, Options{})
	return codes, queries, dyn, Freeze(dyn)
}

// TestFreezeSearchEquivalence: the property pinning the tentpole — for random
// datasets across one-word and multi-word code widths and every threshold in
// 0..8, Freeze∘Search answers exactly the brute-force oracle and exactly the
// pointer walk it was compiled from.
func TestFreezeSearchEquivalence(t *testing.T) {
	for _, bitsLen := range []int{32, 64, 128} {
		codes, queries, dyn, frozen := frozenEnv(t, int64(900+bitsLen), 900, bitsLen)
		if frozen.Len() != dyn.Len() || frozen.Length() != dyn.Length() {
			t.Fatalf("L=%d: frozen (%d tuples, %d bits) != dynamic (%d tuples, %d bits)",
				bitsLen, frozen.Len(), frozen.Length(), dyn.Len(), dyn.Length())
		}
		fsr := NewSearcher(frozen)
		dsr := NewSearcher(dyn)
		for h := 0; h <= 8; h++ {
			for qi, q := range queries {
				got := append([]int(nil), fsr.Search(q, h)...)
				if want := oracle(codes, q, h); !equalIDs(got, want) {
					t.Fatalf("L=%d h=%d q#%d: frozen %d ids, oracle %d", bitsLen, h, qi, len(got), len(want))
				}
				if ptr := dsr.Search(q, h); !equalIDs(got, ptr) {
					t.Fatalf("L=%d h=%d q#%d: frozen %d ids, pointer walk %d", bitsLen, h, qi, len(got), len(ptr))
				}
			}
		}
	}
}

// TestFrozenTopKEquivalence: frozen TopK (native radius escalation with the
// epoch memo) returns exactly the generic escalation's (distance, id) pairs.
func TestFrozenTopKEquivalence(t *testing.T) {
	for _, bitsLen := range []int{32, 128} {
		_, queries, dyn, frozen := frozenEnv(t, int64(1100+bitsLen), 700, bitsLen)
		fsr := NewSearcher(frozen)
		dsr := NewSearcher(dyn)
		for _, k := range []int{0, 1, 3, 17, 64, dyn.Len() + 5} {
			for qi, q := range queries {
				gotIDs, gotDists := fsr.TopK(q, k)
				wantIDs, wantDists := dsr.TopK(q, k)
				if !equalIDs(gotIDs, wantIDs) {
					t.Fatalf("L=%d k=%d q#%d: frozen ids %v, want %v", bitsLen, k, qi, gotIDs, wantIDs)
				}
				for i := range gotDists {
					if gotDists[i] != wantDists[i] {
						t.Fatalf("L=%d k=%d q#%d: dist[%d]=%d, want %d", bitsLen, k, qi, i, gotDists[i], wantDists[i])
					}
				}
			}
		}
	}
}

// TestFreezeFlushesBuffer: freezing an index with unflushed inserts must
// flush them first — buffered tuples appear in frozen results.
func TestFreezeFlushesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	codes := clusteredCodes(rng, 400, 32, 8, 3)
	dyn := BuildDynamic(codes[:300], nil, Options{BufferMax: 1 << 30})
	for i := 300; i < len(codes); i++ {
		dyn.Insert(i, codes[i])
	}
	frozen := Freeze(dyn)
	if frozen.Len() != len(codes) {
		t.Fatalf("frozen index has %d tuples, want %d (buffer dropped?)", frozen.Len(), len(codes))
	}
	sr := NewSearcher(frozen)
	for _, q := range codes[290:310] {
		if got, want := sr.Search(q, 3), oracle(codes, q, 3); !equalIDs(got, want) {
			t.Fatalf("frozen search over buffered build: got %d ids, want %d", len(got), len(want))
		}
	}
}

// TestFrozenSearchConcurrent: one FrozenIndex, many Searchers in parallel.
func TestFrozenSearchConcurrent(t *testing.T) {
	codes, queries, _, frozen := frozenEnv(t, 73, 1000, 64)
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed int) {
			sr := NewSearcher(frozen)
			for r := 0; r < 20; r++ {
				q := queries[(seed+r)%len(queries)]
				if got, want := sr.Search(q, 4), oracle(codes, q, 4); !equalIDs(got, want) {
					done <- &searchMismatchError{len(got), len(want)}
					return
				}
				sr.TopK(q, 5)
			}
			done <- nil
		}(w * 7)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type searchMismatchError struct{ got, want int }

func (e *searchMismatchError) Error() string {
	return "concurrent frozen search mismatch"
}

// validFrozenEncoding freezes a small index and returns its v2 encoding.
func validFrozenEncoding(tb testing.TB, withIDs bool) ([]byte, *FrozenIndex) {
	tb.Helper()
	rng := rand.New(rand.NewSource(157))
	codes := clusteredCodes(rng, 60, 32, 3, 2)
	ids := make([]int, len(codes))
	for i := range ids {
		ids[i] = i
	}
	frozen := Freeze(BuildDynamic(codes, ids, Options{}))
	var buf bytes.Buffer
	if err := frozen.Encode(&buf, withIDs); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), frozen
}

// TestFrozenCodecRoundTrip: Encode∘DecodeFrozen is the identity on the search
// surface, with and without id tables, and DecodeIndex dispatches v2 bytes to
// the frozen decoder.
func TestFrozenCodecRoundTrip(t *testing.T) {
	for _, withIDs := range []bool{true, false} {
		data, orig := validFrozenEncoding(t, withIDs)
		got, err := DecodeFrozen(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("withIDs=%v: %v", withIDs, err)
		}
		if got.Length() != orig.Length() || got.GroupCount() != orig.GroupCount() ||
			got.NodeCount() != orig.NodeCount() || got.EdgeCount() != orig.EdgeCount() {
			t.Fatalf("withIDs=%v: structure mismatch after round trip", withIDs)
		}
		wantLen := orig.Len()
		if !withIDs {
			wantLen = 0
		}
		if got.Len() != wantLen {
			t.Fatalf("withIDs=%v: %d tuples after round trip, want %d", withIDs, got.Len(), wantLen)
		}
		gsr, osr := NewSearcher(got), NewSearcher(orig)
		for _, c := range orig.Codes()[:20] {
			gotCodes := gsr.SearchCodes(c, 2)
			wantCodes := osr.SearchCodes(c, 2)
			if len(gotCodes) != len(wantCodes) {
				t.Fatalf("withIDs=%v: decoded index answers %d codes, want %d", withIDs, len(gotCodes), len(wantCodes))
			}
			if withIDs {
				if got, want := gsr.Search(c, 2), osr.Search(c, 2); !equalIDs(got, want) {
					t.Fatalf("decoded index answers %d ids, want %d", len(got), len(want))
				}
			}
		}
		idx, err := DecodeIndex(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := idx.(*FrozenIndex); !ok {
			t.Fatalf("DecodeIndex returned %T for a v2 encoding", idx)
		}
	}
	// DecodeIndex must still hand v1 bytes to the pointer decoder.
	idx, err := DecodeIndex(bytes.NewReader(validEncoding(t)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx.(*DynamicIndex); !ok {
		t.Fatalf("DecodeIndex returned %T for a v1 encoding", idx)
	}
	// DecodeFrozen must reject a v1 encoding outright.
	if _, err := DecodeFrozen(bytes.NewReader(validEncoding(t))); err == nil {
		t.Fatal("DecodeFrozen accepted a v1 pointer encoding")
	}
}

// TestDecodeFrozenCorruptInput mirrors TestDecodeCorruptInput for the v2
// layout: every guarded error path with hand-built inputs, plus truncations
// of a real encoding.
func TestDecodeFrozenCorruptInput(t *testing.T) {
	valid, _ := validFrozenEncoding(t, true)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("HA")},
		{"bad magic", []byte("XDAH\x02\x20\x00")},
		{"missing version", []byte("HADX")},
		{"v1 under frozen decoder", []byte("HADX\x01\x20\x00")},
		{"missing length", []byte("HADX\x02")},
		{"zero length", []byte("HADX\x02\x00\x00")},
		// 1<<21 bits, over the plausibility cap.
		{"huge length", []byte("HADX\x02\x80\x80\x80\x01\x00")},
		{"missing counts", []byte("HADX\x02\x08\x00\x01")},
		// 8-bit codes: 0 groups, 0 nodes but 1 root.
		{"roots exceed nodes", []byte("HADX\x02\x08\x00\x00\x00\x01\x00\x00\x00")},
		// Hostile node count (2^32) with no bytes behind it.
		{"hostile node count", []byte("HADX\x02\x08\x00\x00\x90\x80\x80\x80\x10\x00")},
		// 1 top leaf referencing a group that does not exist.
		{"top leaf out of range", []byte("HADX\x02\x08\x00\x00\x00\x00\x00\x00\x01\x05")},
		// 2 nodes, 1 root, 1 child edge: node 0 lists node 0 — a self-loop
		// the level-order invariant must reject.
		{"child out of level order", []byte("HADX\x02\x08\x00\x00\x02\x01\x01\x00\x00\x01\x00\x00")},
		// Same header but the child degrees sum to 0, not the declared 1.
		{"degree sum mismatch", []byte("HADX\x02\x08\x00\x00\x02\x01\x01\x00\x00\x00\x00")},
	}
	for _, cut := range []int{5, 8, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		cases = append(cases, struct {
			name string
			data []byte
		}{"truncated", valid[:cut]})
	}
	for _, tc := range cases {
		if _, err := DecodeFrozen(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s (%d bytes): decode accepted corrupt input", tc.name, len(tc.data))
		}
	}
	if _, err := DecodeFrozen(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
}

// FuzzDecodeFrozen mutates a known-valid v2 encoding — truncating and
// flipping one byte, the FuzzDecodeIndex recipe — so the fuzzer reaches the
// deep decoder states (CSR tables, slabs) that random prefixes rarely
// survive to. Decoding must either error or yield a usable index.
func FuzzDecodeFrozen(f *testing.F) {
	valid, _ := validFrozenEncoding(f, true)
	f.Add(uint16(len(valid)), uint16(0), byte(0))
	f.Add(uint16(len(valid)/2), uint16(5), byte(0xff))
	f.Add(uint16(10), uint16(4), byte(1))
	f.Fuzz(func(t *testing.T, cut uint16, flipAt uint16, flipMask byte) {
		data := append([]byte(nil), valid...)
		if int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 {
			data[int(flipAt)%len(data)] ^= flipMask
		}
		got, err := DecodeFrozen(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever survived must behave like an index: searching every
		// decoded code must terminate and not panic.
		sr := NewSearcher(got)
		for _, c := range got.Codes() {
			sr.Search(c, 0)
		}
		sr.TopK(bitvec.New(got.Length()), 3)
	})
}

// TestFrozenSizeBytes: the arena footprint is positive and grows with the
// dataset; sanity for the habench resident-bytes row.
func TestFrozenSizeBytes(t *testing.T) {
	_, _, _, small := frozenEnv(t, 81, 200, 32)
	_, _, _, large := frozenEnv(t, 81, 2000, 32)
	if small.SizeBytes() <= 0 || large.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("SizeBytes: small=%d large=%d", small.SizeBytes(), large.SizeBytes())
	}
}

func BenchmarkFreeze(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := BuildDynamic(codes, nil, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Freeze(idx)
	}
}

func BenchmarkSearcherSearchFrozen(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := Freeze(BuildDynamic(codes, nil, Options{}))
	sr := NewSearcher(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.Search(codes[i%len(codes)], 3)
	}
}

func BenchmarkFrozenTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := Freeze(BuildDynamic(codes, nil, Options{}))
	sr := NewSearcher(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.TopK(codes[i%len(codes)], 10)
	}
}

func BenchmarkDecodeFrozen(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := Freeze(BuildDynamic(codes, nil, Options{}))
	var buf bytes.Buffer
	if err := idx.Encode(&buf, true); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrozen(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
