package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeDynamic: arbitrary bytes must produce an error, never a panic
// or a structurally broken index.
func FuzzDecodeDynamic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("HADX"))
	f.Add([]byte("HADX\x01\x20\x01\x00"))
	// A valid encoding as seed.
	codes := paperCodes()
	idx := BuildDynamic(codes, nil, Options{Window: 2})
	var buf bytes.Buffer
	if err := idx.Encode(&buf, true); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeDynamic(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must behave like an index.
		q := got.Codes()
		if len(q) > 0 {
			got.Search(q[0], 1)
		}
	})
}
