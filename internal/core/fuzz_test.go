package core

import (
	"bytes"
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
)

// staticSegKeyRef is the original per-bit extraction, kept as the reference
// the word-aligned staticSegKey must agree with.
func staticSegKeyRef(c bitvec.Code, from, width int) uint64 {
	words := c.Words()
	var v uint64
	for i := 0; i < width; i++ {
		bit := from + i
		v <<= 1
		v |= words[bit/64] >> uint(63-bit%64) & 1
	}
	return v
}

// TestStaticSegKeyEquivalence sweeps random codes, widths, and offsets —
// including word-boundary-straddling segments — against the per-bit
// reference.
func TestStaticSegKeyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{9, 32, 63, 64, 65, 100, 127, 128, 200} {
		for trial := 0; trial < 50; trial++ {
			c := bitvec.Rand(rng, n)
			for width := 1; width <= 64 && width <= n; width += 1 + trial%5 {
				from := rng.Intn(n - width + 1)
				if got, want := staticSegKey(c, from, width), staticSegKeyRef(c, from, width); got != want {
					t.Fatalf("n=%d from=%d width=%d: got %#x want %#x (code %s)", n, from, width, got, want, c)
				}
			}
		}
	}
}

// FuzzStaticSegKey: the word-aligned extraction must agree with the per-bit
// reference on arbitrary codes and segment geometries.
func FuzzStaticSegKey(f *testing.F) {
	f.Add([]byte{0xff, 0x01}, uint16(3), uint8(7))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x12, 0x34, 0x56, 0x78, 0x9a}, uint16(60), uint8(10))
	f.Fuzz(func(t *testing.T, data []byte, fromRaw uint16, widthRaw uint8) {
		if len(data) == 0 {
			return
		}
		n := len(data) * 8
		if n > 512 {
			n = 512
		}
		c := bitvec.New(n)
		for i := 0; i < n; i++ {
			if data[i/8]&(1<<uint(7-i%8)) != 0 {
				c.SetBit(i, true)
			}
		}
		width := int(widthRaw)%64 + 1
		if width > n {
			width = n
		}
		from := int(fromRaw) % (n - width + 1)
		if got, want := staticSegKey(c, from, width), staticSegKeyRef(c, from, width); got != want {
			t.Fatalf("n=%d from=%d width=%d: got %#x want %#x", n, from, width, got, want)
		}
	})
}

// FuzzDecodeDynamic: arbitrary bytes must produce an error, never a panic
// or a structurally broken index.
func FuzzDecodeDynamic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("HADX"))
	f.Add([]byte("HADX\x01\x20\x01\x00"))
	// A valid encoding as seed.
	codes := paperCodes()
	idx := BuildDynamic(codes, nil, Options{Window: 2})
	var buf bytes.Buffer
	if err := idx.Encode(&buf, true); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeDynamic(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must behave like an index.
		q := got.Codes()
		if len(q) > 0 {
			got.Search(q[0], 1)
		}
	})
}
