package core

import "haindex/internal/bitvec"

// Merge combines per-partition HA-Indexes into one global index (the
// post-processing step of Section 5.2). When the partitions hold disjoint
// code sets — which histogram pivoting guarantees, since partitions are
// contiguous Gray ranges — the local hierarchies are grafted together and
// top-level nodes with identical FLSSeq patterns are consolidated, so the
// merge touches only index nodes, never the data. If code sets overlap the
// merge falls back to a rebuild over the union.
//
// The grafted structure is deep-copied: the output shares no dnodes or
// leafGroups with the inputs, so mutating the merged index (Insert, Delete,
// Flush) never corrupts the parts and the parts stay independently usable —
// the contract the LSM compactor relies on when it merges live segments.
// Leaf codes and node patterns are shared by value; neither is ever mutated
// in place by index operations.
//
// The returned index adopts the options of the first input. Every input is
// flushed, including in the single-input case, so a buffered-insert index
// merges identically regardless of how many siblings it has.
func Merge(parts ...*DynamicIndex) *DynamicIndex {
	if len(parts) == 0 {
		panic("core: Merge of no indexes")
	}
	if len(parts) == 1 {
		parts[0].Flush()
		return parts[0]
	}
	first := parts[0]
	out := &DynamicIndex{
		opts:   first.opts,
		length: first.length,
		byCode: make(map[string]*leafGroup),
	}
	disjoint := true
	seen := make(map[string]struct{})
	for _, p := range parts {
		if p.length != out.length {
			panic("core: merging indexes with different code lengths")
		}
		p.Flush()
		for key := range p.byCode {
			if _, dup := seen[key]; dup {
				disjoint = false
			}
			seen[key] = struct{}{}
		}
	}
	if !disjoint {
		// Overlapping code sets: rebuild over the union of tuples. Fresh
		// leaf groups are created so the inputs stay usable.
		for _, p := range parts {
			p.Tuples(func(id int, c bitvec.Code) { out.addLeaf(id, c) })
		}
		out.rebuild()
		return out
	}
	// Graft: deep-copy each part's top level into the output, consolidating
	// equal root patterns, then recompute residuals over the copied nodes.
	rootByPat := make(map[string]*dnode)
	for _, p := range parts {
		for _, r := range p.roots {
			cr := out.cloneSubtree(r)
			key := cr.pat.Key()
			if prev, ok := rootByPat[key]; ok {
				prev.children = append(prev.children, cr.children...)
				for _, c := range cr.children {
					c.parent = prev
				}
				prev.leaves = append(prev.leaves, cr.leaves...)
				for _, g := range cr.leaves {
					g.parent = prev
				}
				prev.freq += cr.freq
				continue
			}
			rootByPat[key] = cr
			out.roots = append(out.roots, cr)
		}
		for _, g := range p.topLeaves {
			out.topLeaves = append(out.topLeaves, out.cloneLeaf(g, nil))
		}
	}
	out.finalizeResiduals()
	return out
}

// cloneLeaf copies one leaf group (fresh ids slice, shared code value) into
// the output index, registering it in byCode and counting its tuples.
func (x *DynamicIndex) cloneLeaf(g *leafGroup, parent *dnode) *leafGroup {
	cg := &leafGroup{
		code:   g.code,
		ids:    append([]int(nil), g.ids...),
		parent: parent,
	}
	x.byCode[g.code.Key()] = cg
	x.n += len(cg.ids)
	return cg
}

// cloneSubtree deep-copies a node and everything beneath it; residuals are
// left for finalizeResiduals, since consolidation may change parents.
func (x *DynamicIndex) cloneSubtree(n *dnode) *dnode {
	cn := &dnode{pat: n.pat, freq: n.freq}
	if len(n.children) > 0 {
		cn.children = make([]*dnode, len(n.children))
		for i, c := range n.children {
			cc := x.cloneSubtree(c)
			cc.parent = cn
			cn.children[i] = cc
		}
	}
	if len(n.leaves) > 0 {
		cn.leaves = make([]*leafGroup, len(n.leaves))
		for i, g := range n.leaves {
			cn.leaves[i] = x.cloneLeaf(g, cn)
		}
	}
	return cn
}
