package core

import "haindex/internal/bitvec"

// Merge combines per-partition HA-Indexes into one global index (the
// post-processing step of Section 5.2). When the partitions hold disjoint
// code sets — which histogram pivoting guarantees, since partitions are
// contiguous Gray ranges — the local hierarchies are grafted together and
// top-level nodes with identical FLSSeq patterns are consolidated, so the
// merge touches only index nodes, never the data. If code sets overlap the
// merge falls back to a rebuild over the union.
//
// The returned index adopts the options of the first input.
func Merge(parts ...*DynamicIndex) *DynamicIndex {
	if len(parts) == 0 {
		panic("core: Merge of no indexes")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	first := parts[0]
	out := &DynamicIndex{
		opts:   first.opts,
		length: first.length,
		byCode: make(map[string]*leafGroup),
	}
	disjoint := true
	for _, p := range parts {
		if p.length != out.length {
			panic("core: merging indexes with different code lengths")
		}
		p.Flush()
		for key, g := range p.byCode {
			if _, dup := out.byCode[key]; dup {
				disjoint = false
			}
			out.byCode[key] = g
			out.n += len(g.ids)
		}
	}
	if !disjoint {
		// Overlapping code sets: rebuild over the union of tuples. Fresh
		// leaf groups are created so the inputs stay usable.
		out.byCode = make(map[string]*leafGroup)
		out.n = 0
		for _, p := range parts {
			p.Tuples(func(id int, c bitvec.Code) { out.addLeaf(id, c) })
		}
		out.rebuild()
		return out
	}
	// Graft: concatenate top levels, consolidating equal root patterns.
	rootByPat := make(map[string]*dnode)
	for _, p := range parts {
		for _, r := range p.roots {
			key := r.pat.Key()
			if prev, ok := rootByPat[key]; ok {
				prev.children = append(prev.children, r.children...)
				for _, c := range r.children {
					c.parent = prev
				}
				prev.leaves = append(prev.leaves, r.leaves...)
				for _, g := range r.leaves {
					g.parent = prev
				}
				prev.freq += r.freq
				continue
			}
			rootByPat[key] = r
			out.roots = append(out.roots, r)
		}
		out.topLeaves = append(out.topLeaves, p.topLeaves...)
	}
	out.finalizeResiduals()
	return out
}
