package core

import (
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
	"haindex/internal/histo"
)

// TestMergeDisjoint merges per-partition indexes built from gray-range
// partitions (the MapReduce scenario) and checks the global index answers
// like a single index over the union.
func TestMergeDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	codes := clusteredCodes(rng, 600, 32, 8, 3)
	// Dedup: gray-range partitioning guarantees disjoint code sets across
	// partitions, but identical codes may repeat within one partition.
	pivots := histo.Pivots(codes[:200], 4)
	parts := make([][]bitvec.Code, 4)
	ids := make([][]int, 4)
	for i, c := range codes {
		p := histo.PartitionID(pivots, c)
		parts[p] = append(parts[p], c)
		ids[p] = append(ids[p], i)
	}
	var locals []*DynamicIndex
	for p := range parts {
		if len(parts[p]) == 0 {
			continue
		}
		locals = append(locals, BuildDynamic(parts[p], ids[p], Options{Window: 8}))
	}
	if len(locals) < 2 {
		t.Skip("degenerate partitioning")
	}
	global := Merge(locals...)
	if global.Len() != len(codes) {
		t.Fatalf("global Len=%d want %d", global.Len(), len(codes))
	}
	for q := 0; q < 30; q++ {
		query := codes[rng.Intn(len(codes))].Clone()
		for f := 0; f < rng.Intn(4); f++ {
			query.FlipBit(rng.Intn(32))
		}
		h := rng.Intn(6)
		if got, want := global.Search(query, h), oracle(codes, query, h); !equalIDs(got, want) {
			t.Fatalf("merged search mismatch: got %d want %d", len(got), len(want))
		}
	}
}

// TestMergeOverlapping forces the rebuild path with shared codes.
func TestMergeOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	codes := clusteredCodes(rng, 200, 32, 4, 2)
	a := BuildDynamic(codes[:120], nil, Options{Window: 8})
	idsB := make([]int, 100)
	for i := range idsB {
		idsB[i] = 100 + i
	}
	b := BuildDynamic(codes[100:], idsB, Options{Window: 8})
	global := Merge(a, b)
	if global.Len() != 220 {
		t.Fatalf("Len=%d want 220", global.Len())
	}
	q := codes[110]
	got := global.Search(q, 0)
	// Tuple 110 appears as id 110 in both inputs (overlap), so it must be
	// reported twice.
	count := 0
	for _, id := range got {
		if id == 110 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("overlapping tuple reported %d times, want 2", count)
	}
}

func TestMergeSingle(t *testing.T) {
	codes := paperCodes()
	a := BuildDynamic(codes, nil, Options{Window: 2})
	if Merge(a) != a {
		t.Fatal("single merge should return input")
	}
}

// TestMergeSingleFlushes pins the single-part bug: Merge(p) must flush p's
// insert buffer exactly like the multi-part path flushes every input, so a
// buffered-insert index merges identically regardless of sibling count.
func TestMergeSingleFlushes(t *testing.T) {
	codes := paperCodes()
	a := BuildDynamic(codes, nil, Options{Window: 2, BufferMax: 64})
	a.Insert(100, bitvec.MustFromString("110110001"))
	if len(a.buffer) != 1 {
		t.Fatalf("setup: insert should be buffered, buffer=%d", len(a.buffer))
	}
	m := Merge(a)
	if len(m.buffer) != 0 {
		t.Fatalf("single-part Merge left %d buffered inserts unflushed", len(m.buffer))
	}
	if got := m.Search(bitvec.MustFromString("110110001"), 0); !equalIDs(got, []int{100}) {
		t.Fatalf("buffered insert lost across single-part Merge: got %v", got)
	}
}

// TestMergeDoesNotAliasParts pins the graft-aliasing bug: mutating the
// merged index (Insert into an existing leaf group, Delete, Flush/rebuild)
// must leave the input parts byte-identical in behavior — the LSM compactor
// deletes tombstoned tuples out of a merged index while the source segments
// are still serving reads.
func TestMergeDoesNotAliasParts(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	codes := clusteredCodes(rng, 400, 32, 8, 3)
	pivots := histo.Pivots(codes[:150], 3)
	parts := make([][]bitvec.Code, 3)
	ids := make([][]int, 3)
	for i, c := range codes {
		p := histo.PartitionID(pivots, c)
		parts[p] = append(parts[p], c)
		ids[p] = append(ids[p], i)
	}
	var locals []*DynamicIndex
	for p := range parts {
		if len(parts[p]) == 0 {
			continue
		}
		locals = append(locals, BuildDynamic(parts[p], ids[p], Options{Window: 8}))
	}
	if len(locals) < 2 {
		t.Skip("degenerate partitioning")
	}
	merged := Merge(locals...)

	// Mutate the merged index every way the dynamic index can change shape:
	// join an existing leaf group (the Insert fast path), delete tuples until
	// nodes unlink, then force a full rebuild.
	merged.Insert(9001, codes[0]) // fast path: codes[0]'s group exists
	for i := 0; i < 150; i++ {
		if !merged.Delete(i, codes[i]) {
			t.Fatalf("merged.Delete(%d) failed", i)
		}
	}
	merged.Insert(9002, bitvec.FromUint64(0xDEADBEEF, 32))
	merged.Flush() // rebuild reparents every leaf group in the merged index

	// Every part must still answer exactly as a fresh index over its own
	// tuples would — any shared node or leaf group breaks this.
	for p := range parts {
		if len(parts[p]) == 0 {
			continue
		}
		want := BuildDynamic(parts[p], ids[p], Options{Window: 8})
		var local *DynamicIndex
		for _, l := range locals {
			if l.Len() == want.Len() && sameIDSet(l, want) {
				local = l
				break
			}
		}
		if local == nil {
			t.Fatalf("part %d: tuple set changed under the merged index's mutations", p)
		}
		for q := 0; q < 40; q++ {
			query := parts[p][rng.Intn(len(parts[p]))].Clone()
			for f := 0; f < rng.Intn(4); f++ {
				query.FlipBit(rng.Intn(32))
			}
			h := rng.Intn(6)
			if got, wantIDs := local.Search(query, h), want.Search(query, h); !equalIDs(got, wantIDs) {
				t.Fatalf("part %d corrupted by merged-index mutation: got %v want %v", p, got, wantIDs)
			}
		}
	}
	// And the merged index itself must reflect its own mutations.
	got := merged.Search(codes[0], 0)
	for _, id := range got {
		if id < 150 && codes[id].Equal(codes[0]) {
			t.Fatalf("deleted tuple %d still reported by merged index", id)
		}
	}
	found := false
	for _, id := range got {
		found = found || id == 9001
	}
	if !found {
		t.Fatalf("merged index lost inserted tuple 9001: %v", got)
	}
}

// sameIDSet reports whether two indexes hold the same multiset of tuple ids.
func sameIDSet(a, b *DynamicIndex) bool {
	count := map[int]int{}
	a.Tuples(func(id int, _ bitvec.Code) { count[id]++ })
	b.Tuples(func(id int, _ bitvec.Code) { count[id]-- })
	for _, v := range count {
		if v != 0 {
			return false
		}
	}
	return true
}

// TestMergeGrayPartitionsShareNothing double-checks the disjointness
// premise: gray-range partitions cannot contain the same code.
func TestMergeGrayPartitionsShareNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	codes := make([]bitvec.Code, 300)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 16)
	}
	pivots := histo.Pivots(codes, 5)
	seen := map[string]int{}
	for _, c := range codes {
		p := histo.PartitionID(pivots, c)
		if prev, ok := seen[c.Key()]; ok && prev != p {
			t.Fatalf("code %s in partitions %d and %d", c.String(), prev, p)
		}
		seen[c.Key()] = p
	}
	_ = gray.Compare // keep import if unused otherwise
}
