package core

import (
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
	"haindex/internal/histo"
)

// TestMergeDisjoint merges per-partition indexes built from gray-range
// partitions (the MapReduce scenario) and checks the global index answers
// like a single index over the union.
func TestMergeDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	codes := clusteredCodes(rng, 600, 32, 8, 3)
	// Dedup: gray-range partitioning guarantees disjoint code sets across
	// partitions, but identical codes may repeat within one partition.
	pivots := histo.Pivots(codes[:200], 4)
	parts := make([][]bitvec.Code, 4)
	ids := make([][]int, 4)
	for i, c := range codes {
		p := histo.PartitionID(pivots, c)
		parts[p] = append(parts[p], c)
		ids[p] = append(ids[p], i)
	}
	var locals []*DynamicIndex
	for p := range parts {
		if len(parts[p]) == 0 {
			continue
		}
		locals = append(locals, BuildDynamic(parts[p], ids[p], Options{Window: 8}))
	}
	if len(locals) < 2 {
		t.Skip("degenerate partitioning")
	}
	global := Merge(locals...)
	if global.Len() != len(codes) {
		t.Fatalf("global Len=%d want %d", global.Len(), len(codes))
	}
	for q := 0; q < 30; q++ {
		query := codes[rng.Intn(len(codes))].Clone()
		for f := 0; f < rng.Intn(4); f++ {
			query.FlipBit(rng.Intn(32))
		}
		h := rng.Intn(6)
		if got, want := global.Search(query, h), oracle(codes, query, h); !equalIDs(got, want) {
			t.Fatalf("merged search mismatch: got %d want %d", len(got), len(want))
		}
	}
}

// TestMergeOverlapping forces the rebuild path with shared codes.
func TestMergeOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	codes := clusteredCodes(rng, 200, 32, 4, 2)
	a := BuildDynamic(codes[:120], nil, Options{Window: 8})
	idsB := make([]int, 100)
	for i := range idsB {
		idsB[i] = 100 + i
	}
	b := BuildDynamic(codes[100:], idsB, Options{Window: 8})
	global := Merge(a, b)
	if global.Len() != 220 {
		t.Fatalf("Len=%d want 220", global.Len())
	}
	q := codes[110]
	got := global.Search(q, 0)
	// Tuple 110 appears as id 110 in both inputs (overlap), so it must be
	// reported twice.
	count := 0
	for _, id := range got {
		if id == 110 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("overlapping tuple reported %d times, want 2", count)
	}
}

func TestMergeSingle(t *testing.T) {
	codes := paperCodes()
	a := BuildDynamic(codes, nil, Options{Window: 2})
	if Merge(a) != a {
		t.Fatal("single merge should return input")
	}
}

// TestMergeGrayPartitionsShareNothing double-checks the disjointness
// premise: gray-range partitions cannot contain the same code.
func TestMergeGrayPartitionsShareNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	codes := make([]bitvec.Code, 300)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 16)
	}
	pivots := histo.Pivots(codes, 5)
	seen := map[string]int{}
	for _, c := range codes {
		p := histo.PartitionID(pivots, c)
		if prev, ok := seen[c.Key()]; ok && prev != p {
			t.Fatalf("code %s in partitions %d and %d", c.String(), prev, p)
		}
		seen[c.Key()] = p
	}
	_ = gray.Compare // keep import if unused otherwise
}
