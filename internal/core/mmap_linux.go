//go:build linux

package core

import (
	"fmt"
	"os"
	"syscall"
)

// MapFrozen opens a HADX v4 arena file and aliases the index straight into a
// read-only mmap of it: load time is O(validation) — a few int32 scans — no
// matter how many codes the file holds, and the slabs stay in the page cache
// rather than the Go heap, shared across processes serving the same shard.
// Close the returned index to release the mapping.
//
// Hosts that cannot alias the little-endian layout (big-endian or 32-bit
// int) fall back to an eager copying decode with no mapping to close.
func MapFrozen(path string) (*FrozenIndex, error) {
	return MapFrozenAt(path, 0)
}

// MapFrozenAt is MapFrozen for an arena embedded at byte offset off inside a
// larger file (a HASN snapshot). The offset must be 8-aligned so the aliased
// slabs keep their natural alignment; the whole file is mapped (pages are
// only faulted in as touched) and released by Close.
func MapFrozenAt(path string, off int64) (*FrozenIndex, error) {
	if !canAliasArena {
		return mapFrozenEager(path, off)
	}
	if off < 0 || off%8 != 0 {
		return nil, fmt.Errorf("core: arena offset %d not 8-aligned", off)
	}
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= off || size > 1<<46 {
		return nil, fmt.Errorf("core: arena file %q is %d bytes, arena at %d", path, size, off)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("core: mmap %q: %w", path, err)
	}
	f, err := DecodeArenaBytes(data[off:], true)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	f.mapping = data
	f.munmap = syscall.Munmap
	return f, nil
}
