//go:build !linux

package core

// MapFrozen loads a HADX v4 arena file. On platforms without the mmap fast
// path it decodes eagerly onto the heap — same index, same results, no
// mapping to close.
func MapFrozen(path string) (*FrozenIndex, error) {
	return mapFrozenEager(path, 0)
}

// MapFrozenAt is MapFrozen for an arena embedded at byte offset off inside a
// larger file (a HASN snapshot).
func MapFrozenAt(path string, off int64) (*FrozenIndex, error) {
	return mapFrozenEager(path, off)
}
