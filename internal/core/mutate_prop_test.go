package core

import (
	"fmt"
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
)

// mutOracle is the brute-force model a mutated index is checked against: one
// live code per id.
type mutOracle map[int]bitvec.Code

func (o mutOracle) search(q bitvec.Code, h int) []int {
	var out []int
	for id, c := range o {
		if _, ok := q.DistanceWithin(c, h); ok {
			out = append(out, id)
		}
	}
	return out
}

// checkHierarchyInvariants walks the pointer hierarchy and verifies the
// soundness conditions H-Search relies on after arbitrary mutation:
// every leaf code beneath a node matches the node's pattern on all fixed
// positions, every node's frequency equals the tuples beneath it, and
// parent links are consistent. This is the structural audit of the Insert
// fast path (which never widens masks) and of H-Delete (which leaves
// ancestor masks stale): both are harmless exactly as long as these hold.
func checkHierarchyInvariants(t *testing.T, x *DynamicIndex) {
	t.Helper()
	var walk func(n *dnode) int
	walk = func(n *dnode) int {
		total := 0
		for _, c := range n.children {
			if c.parent != n {
				t.Fatalf("child node has wrong parent pointer")
			}
			total += walk(c)
		}
		for _, g := range n.leaves {
			if g.parent != n {
				t.Fatalf("leaf group has wrong parent pointer")
			}
			for p := n; p != nil; p = p.parent {
				if !p.pat.Matches(g.code) {
					t.Fatalf("leaf code %s violates ancestor pattern %s", g.code, p.pat)
				}
			}
			total += len(g.ids)
		}
		if n.freq != total {
			t.Fatalf("node freq %d but %d tuples beneath", n.freq, total)
		}
		return total
	}
	n := 0
	for _, r := range x.roots {
		if r.parent != nil {
			t.Fatalf("root has non-nil parent")
		}
		n += walk(r)
	}
	for _, g := range x.topLeaves {
		if g.parent != nil {
			t.Fatalf("top-level leaf has non-nil parent")
		}
		n += len(g.ids)
	}
	if n != x.n {
		t.Fatalf("hierarchy holds %d tuples, index says %d", n, x.n)
	}
}

// TestMutatePropertyVsOracle drives a random interleaving of Insert, Delete,
// Flush, and Freeze against a brute-force oracle across code lengths 32, 64,
// and 128 bits and thresholds 0..8 — the correctness pinning for the
// mutation path (Sections 4.5–4.6) that the LSM serving tier builds on.
func TestMutatePropertyVsOracle(t *testing.T) {
	for _, bitsLen := range []int{32, 64, 128} {
		bitsLen := bitsLen
		t.Run(fmt.Sprintf("bits=%d", bitsLen), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(4000 + bitsLen)))
			oracle := mutOracle{}
			nextID := 0
			// Seed with a clustered base so the hierarchy is non-trivial.
			seeds := clusteredCodes(rng, 60, bitsLen, 6, 3)
			ids := make([]int, len(seeds))
			for i, c := range seeds {
				ids[i] = nextID
				oracle[nextID] = c
				nextID++
			}
			idx := BuildDynamic(seeds, ids, Options{Window: 8, BufferMax: 16})

			liveIDs := func() []int {
				out := make([]int, 0, len(oracle))
				for id := range oracle {
					out = append(out, id)
				}
				return out
			}
			randomCode := func() bitvec.Code {
				// Mix exact duplicates (Insert fast path), near-duplicates
				// (Gray neighbours), and fresh codes.
				if live := liveIDs(); len(live) > 0 && rng.Intn(3) > 0 {
					c := oracle[live[rng.Intn(len(live))]].Clone()
					for f := 0; f < rng.Intn(3); f++ {
						c.FlipBit(rng.Intn(bitsLen))
					}
					return c
				}
				return bitvec.Rand(rng, bitsLen)
			}

			for step := 0; step < 250; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // insert
					c := randomCode()
					oracle[nextID] = c
					idx.Insert(nextID, c)
					nextID++
				case op < 7: // delete
					if live := liveIDs(); len(live) > 0 {
						id := live[rng.Intn(len(live))]
						if !idx.Delete(id, oracle[id]) {
							t.Fatalf("step %d: Delete(%d) reported not found", step, id)
						}
						delete(oracle, id)
					}
					// Deleting a tuple that is not there must be a no-op.
					if idx.Delete(1<<30, bitvec.Rand(rng, bitsLen)) {
						t.Fatalf("step %d: Delete of absent tuple succeeded", step)
					}
				case op < 8: // flush
					idx.Flush()
				default: // freeze: the compiled form must agree too
					if len(oracle) == 0 {
						continue
					}
					fz := Freeze(idx)
					q := randomCode()
					h := rng.Intn(9)
					fsr := NewSearcher(fz)
					if got, want := fsr.Search(q, h), oracle.search(q, h); !equalIDs(got, want) {
						t.Fatalf("step %d: frozen search mismatch: got %v want %v", step, got, want)
					}
				}
				if idx.Len() != len(oracle) {
					t.Fatalf("step %d: Len=%d oracle=%d", step, idx.Len(), len(oracle))
				}
				// Every few steps, check queries across the whole threshold
				// band and audit the hierarchy structure.
				if step%10 == 0 {
					checkHierarchyInvariants(t, idx)
					q := randomCode()
					var stats SearchStats
					for h := 0; h <= 8; h++ {
						if got, want := idx.SearchInto(q, h, &stats), oracle.search(q, h); !equalIDs(got, want) {
							t.Fatalf("step %d: search h=%d mismatch: got %v want %v", step, h, got, want)
						}
					}
				}
			}
			checkHierarchyInvariants(t, idx)
		})
	}
}
