package core

import (
	"runtime"
	"sync"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
)

// BuildDynamicParallel bulkloads a Dynamic HA-Index using several workers:
// the codes are split into contiguous Gray-rank ranges (the same
// partitioning the distributed build uses, so ranges are disjoint in code
// space), each range is H-Built concurrently, and the local indexes are
// grafted with Merge. The result answers queries identically to
// BuildDynamic; the hierarchy differs only in how top-level nodes are
// grouped. workers <= 0 selects GOMAXPROCS.
func BuildDynamicParallel(codes []bitvec.Code, ids []int, opts Options, workers int) *DynamicIndex {
	if len(codes) == 0 {
		panic("core: BuildDynamicParallel over empty dataset")
	}
	if codes[0].Len() == 0 {
		// Matches BuildDynamic's boundary validation; past this point the
		// shard-merge of parallelGroupBy indexes into each code's key.
		panic("core: BuildDynamicParallel over zero-length codes")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(codes) < 2*workers {
		return BuildDynamic(codes, ids, opts)
	}
	if ids == nil {
		ids = make([]int, len(codes))
		for i := range ids {
			ids[i] = i
		}
	}
	// Dedup to distinct leaf groups with a parallel group-by (dedup is the
	// dominant build phase on duplicate-heavy data): workers group their
	// input chunks locally, then shard-merge by key.
	distinct, distinctCodes := parallelGroupBy(codes, ids, workers)
	order := make([]int, len(distinct))
	for i := range order {
		order[i] = i
	}
	gray.Sort(distinctCodes, order)
	sorted := make([]*leafGroup, len(distinct))
	for i, j := range order {
		sorted[i] = distinct[j]
	}

	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	per := (len(sorted) + workers - 1) / workers
	for at := per; at < len(sorted); at += per {
		bounds = append(bounds, at)
	}
	bounds = append(bounds, len(sorted))

	locals := make([]*DynamicIndex, len(bounds)-1)
	var wg sync.WaitGroup
	for w := 0; w < len(bounds)-1; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			locals[w] = buildDynamicFromGroups(sorted[lo:hi], opts)
		}(w, lo, hi)
	}
	wg.Wait()
	nonNil := locals[:0]
	for _, l := range locals {
		if l != nil {
			nonNil = append(nonNil, l)
		}
	}
	return Merge(nonNil...)
}

// parallelGroupBy groups (code, id) pairs into leaf groups: each worker
// groups one input chunk into a local map, then each worker merges one key
// shard across all local maps. Returns the distinct groups and their codes
// (parallel slices, unordered).
func parallelGroupBy(codes []bitvec.Code, ids []int, workers int) ([]*leafGroup, []bitvec.Code) {
	locals := make([]map[string]*leafGroup, workers)
	chunk := (len(codes) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(codes) {
			hi = len(codes)
		}
		if lo >= hi {
			locals[w] = map[string]*leafGroup{}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := make(map[string]*leafGroup, hi-lo)
			for i := lo; i < hi; i++ {
				key := codes[i].Key()
				g := m[key]
				if g == nil {
					g = &leafGroup{code: codes[i]}
					m[key] = g
				}
				g.ids = append(g.ids, ids[i])
			}
			locals[w] = m
		}(w, lo, hi)
	}
	wg.Wait()

	// Shard-merge: worker s owns the keys whose first byte mod workers == s.
	shardGroups := make([][]*leafGroup, workers)
	for sh := 0; sh < workers; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			merged := make(map[string]*leafGroup)
			for _, m := range locals {
				for key, g := range m {
					if int(key[0])%workers != sh {
						continue
					}
					if prev, ok := merged[key]; ok {
						prev.ids = append(prev.ids, g.ids...)
					} else {
						merged[key] = g
					}
				}
			}
			out := make([]*leafGroup, 0, len(merged))
			for _, g := range merged {
				out = append(out, g)
			}
			shardGroups[sh] = out
		}(sh)
	}
	wg.Wait()

	var distinct []*leafGroup
	for _, sg := range shardGroups {
		distinct = append(distinct, sg...)
	}
	distinctCodes := make([]bitvec.Code, len(distinct))
	for i, g := range distinct {
		distinctCodes[i] = g.code
	}
	return distinct, distinctCodes
}

// buildDynamicFromGroups bulkloads over pre-deduplicated leaf groups already
// in Gray order.
func buildDynamicFromGroups(groups []*leafGroup, opts Options) *DynamicIndex {
	n := 0
	for _, g := range groups {
		n += len(g.ids)
	}
	x := &DynamicIndex{
		opts:   opts.withDefaults(n),
		length: groups[0].code.Len(),
		byCode: make(map[string]*leafGroup, len(groups)),
		n:      n,
	}
	for _, g := range groups {
		x.byCode[g.code.Key()] = g
	}
	x.buildFromSorted(groups)
	return x
}
