package core

import (
	"math/rand"
	"strings"
	"testing"

	"haindex/internal/bitvec"
)

func TestParallelBuildEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 5; trial++ {
		n := 200 + rng.Intn(2000)
		codes := clusteredCodes(rng, n, 32, 8, 3)
		seq := BuildDynamic(codes, nil, Options{})
		for _, workers := range []int{2, 4, 8} {
			par := BuildDynamicParallel(codes, nil, Options{}, workers)
			if par.Len() != seq.Len() {
				t.Fatalf("workers=%d: Len %d vs %d", workers, par.Len(), seq.Len())
			}
			for q := 0; q < 15; q++ {
				query := codes[rng.Intn(n)].Clone()
				query.FlipBit(rng.Intn(32))
				h := rng.Intn(6)
				if !equalIDs(par.Search(query, h), seq.Search(query, h)) {
					t.Fatalf("workers=%d: search mismatch", workers)
				}
			}
		}
	}
}

func TestParallelBuildSmallFallsBack(t *testing.T) {
	codes := paperCodes()
	par := BuildDynamicParallel(codes, nil, Options{Window: 2}, 8)
	got := par.Search(paperCodes()[0], 0)
	if !equalIDs(got, []int{0}) {
		t.Fatalf("got %v", got)
	}
}

func TestParallelBuildDuplicateRuns(t *testing.T) {
	// A large duplicate run crossing the nominal cut boundary must stay in
	// one partition (Merge requires disjoint code sets).
	rng := rand.New(rand.NewSource(212))
	dup := bitvec.Rand(rng, 32)
	codes := make([]bitvec.Code, 0, 1000)
	for i := 0; i < 600; i++ {
		codes = append(codes, dup)
	}
	codes = append(codes, clusteredCodes(rng, 400, 32, 4, 3)...)
	par := BuildDynamicParallel(codes, nil, Options{}, 4)
	if par.Len() != 1000 {
		t.Fatalf("Len=%d", par.Len())
	}
	got := par.Search(dup, 0)
	if len(got) != 600 {
		t.Fatalf("duplicate run returned %d ids", len(got))
	}
}

func TestBuildRejectsZeroLengthCodes(t *testing.T) {
	// The zero value of bitvec.Code is the only way to get a 0-bit code;
	// it used to flow into parallelGroupBy's shard-merge unchecked.
	codes := make([]bitvec.Code, 300) // all zero values: Len() == 0
	for name, build := range map[string]func(){
		"BuildDynamic":         func() { BuildDynamic(codes, nil, Options{}) },
		"BuildDynamicParallel": func() { BuildDynamicParallel(codes, nil, Options{}, 4) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s accepted zero-length codes", name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "zero-length") {
					t.Fatalf("%s panic message %v lacks zero-length diagnosis", name, r)
				}
			}()
			build()
		}()
	}
}
