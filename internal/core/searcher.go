package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"haindex/internal/bitvec"
)

// Index is the read-only query interface shared by the Static and Dynamic
// HA-Index. A Searcher binds to one Index; many Searchers may query the same
// Index concurrently as long as no goroutine mutates it (Insert, Delete,
// Flush) — the contract under which a broadcast index is shared by every
// reducer of a MapReduce join (Section 5).
type Index interface {
	// Length returns the code length L in bits.
	Length() int
	// Len returns the number of indexed tuples.
	Len() int
	// searchWith runs one Hamming-select against the index using the
	// searcher's scratch state: emitGroup receives each qualifying distinct
	// code with its tuple ids, emitOne receives qualifying tuples that live
	// outside the hierarchy (the Dynamic index's unflushed insert buffer).
	searchWith(sr *Searcher, q bitvec.Code, h int, emitGroup func(*leafGroup), emitOne func(id int, c bitvec.Code))
}

// Searcher owns the per-worker scratch state of the query engine: memoized
// per-level distance tables (Static), the traversal stack/queue, path and
// emission buffers, and per-search statistics. Steady-state Search and
// SearchCodes perform no heap allocations; the scratch grows to the
// high-water mark of the queries seen and is reused afterwards.
//
// A Searcher is NOT safe for concurrent use — it is the unit of concurrency:
// give each goroutine its own Searcher over the shared index (or use
// SearchBatch, which does exactly that).
type Searcher struct {
	idx Index

	// Stats describes the most recent Search/SearchCodes call.
	Stats SearchStats

	// Dynamic H-Search scratch: the BFS work queue.
	queue []qitem

	// Frozen walk scratch: the BFS queue over flat node ids, the qualifying
	// (group, distance) collection buffers, and the epoch-packed per-node
	// residual-distance memo with per-group seen marks that TopK's radius
	// escalation reuses (see FrozenIndex.walk).
	fqueue  []fitem
	fgroups []int32
	fdists  []int32
	fmemo   []uint64
	fseen   []uint64
	fepoch  uint64
	// fgroup is the scratch leafGroup the frozen walk fills per qualifying
	// group (fillGroup); the emit closures copy out of it synchronously, so
	// the arena never materializes a resident groups array.
	fgroup leafGroup

	// Static walk scratch. memo[l][nid] packs (epoch<<7 | dist+1) so the
	// per-level distance tables reset between queries by bumping epoch
	// instead of clearing O(nodes) entries.
	memo  [][]uint32
	epoch uint32
	qsegs []uint64
	stack []sframe
	path  []uint64
	found []*leafGroup
	// asmWords and keyBuf assemble and key a candidate multi-word code
	// without constructing a bitvec.Code.
	asmWords []uint64
	keyBuf   []byte

	// Emission buffers reused across searches. The closures are created once
	// here so a Search call does not allocate them.
	ids        []int
	codes      []bitvec.Code
	emitGIDs   func(*leafGroup)
	emitOneID  func(int, bitvec.Code)
	emitGCode  func(*leafGroup)
	emitOneCod func(int, bitvec.Code)

	// External-engine scratch (EngineIndex): the engine's per-searcher state,
	// a reusable leafGroup shim, and the persistent emit bridge that forwards
	// the engine's (ids, code) pairs to whichever group sink the current call
	// installed in xtarget.
	xscratch EngineScratch
	xgroup   leafGroup
	xtarget  func(*leafGroup)
	xemit    func(ids []int, code bitvec.Code)
}

// sframe is one frame of the Static index's iterative depth-first walk: the
// node to expand and the Hamming distance accumulated over its ancestors.
type sframe struct {
	level int32
	nid   int32
	dist  int32
}

// NewSearcher returns a Searcher bound to idx. The first few searches size
// the scratch; afterwards searches are allocation-free.
func NewSearcher(idx Index) *Searcher {
	sr := &Searcher{idx: idx}
	sr.emitGIDs = func(g *leafGroup) { sr.ids = append(sr.ids, g.ids...) }
	sr.emitOneID = func(id int, c bitvec.Code) { sr.ids = append(sr.ids, id) }
	sr.emitGCode = func(g *leafGroup) { sr.codes = append(sr.codes, g.code) }
	sr.emitOneCod = func(id int, c bitvec.Code) { sr.codes = append(sr.codes, c) }
	sr.xemit = func(ids []int, c bitvec.Code) {
		sr.xgroup.code = c
		sr.xgroup.ids = ids
		sr.xtarget(&sr.xgroup)
	}
	return sr
}

// Index returns the index this searcher is bound to.
func (sr *Searcher) Index() Index { return sr.idx }

// Search returns the ids of all tuples within Hamming distance h of q. The
// returned slice aliases the searcher's scratch and is valid only until the
// next call on this searcher; copy it if it must outlive that.
func (sr *Searcher) Search(q bitvec.Code, h int) []int {
	sr.Stats = SearchStats{}
	sr.ids = sr.ids[:0]
	sr.idx.searchWith(sr, q, h, sr.emitGIDs, sr.emitOneID)
	return sr.ids
}

// SearchCodes returns the distinct qualifying codes instead of ids, under
// the same scratch-aliasing contract as Search.
func (sr *Searcher) SearchCodes(q bitvec.Code, h int) []bitvec.Code {
	sr.Stats = SearchStats{}
	sr.codes = sr.codes[:0]
	sr.idx.searchWith(sr, q, h, sr.emitGCode, sr.emitOneCod)
	return sr.codes
}

// SearchAppend appends the qualifying ids to dst and returns it; unlike
// Search the result does not alias the searcher's scratch.
func (sr *Searcher) SearchAppend(dst []int, q bitvec.Code, h int) []int {
	return append(dst, sr.Search(q, h)...)
}

// Add accumulates o into s; SearchBatch uses it to aggregate per-worker
// statistics.
func (s *SearchStats) Add(o SearchStats) {
	s.DistanceComputations += o.DistanceComputations
	s.NodesVisited += o.NodesVisited
	s.LeavesChecked += o.LeavesChecked
}

// SearchBatch answers a batch of Hamming-select queries against one shared
// read-only index with a pool of workers, each draining queries through its
// own Searcher. results[i] holds the ids matching queries[i] (nil when none).
// workers <= 0 selects GOMAXPROCS; workers == 1 runs serially on the calling
// goroutine. The returned stats aggregate the work of the whole batch.
func SearchBatch(idx Index, queries []bitvec.Code, h, workers int) ([][]int, SearchStats) {
	results := make([][]int, len(queries))
	stats := runBatch(idx, queries, h, workers, func(sr *Searcher, i int, q bitvec.Code) {
		if out := sr.Search(q, h); len(out) > 0 {
			results[i] = append([]int(nil), out...)
		}
	})
	return results, stats
}

// SearchCodesBatch is SearchBatch returning the distinct qualifying codes
// per query — the leafless mode of MapReduce Hamming-join Option B.
func SearchCodesBatch(idx Index, queries []bitvec.Code, h, workers int) ([][]bitvec.Code, SearchStats) {
	results := make([][]bitvec.Code, len(queries))
	stats := runBatch(idx, queries, h, workers, func(sr *Searcher, i int, q bitvec.Code) {
		if out := sr.SearchCodes(q, h); len(out) > 0 {
			results[i] = append([]bitvec.Code(nil), out...)
		}
	})
	return results, stats
}

// runBatch partitions the query batch across workers; each worker owns one
// Searcher and claims queries off a shared atomic cursor, so skewed queries
// do not unbalance fixed chunks.
func runBatch(idx Index, queries []bitvec.Code, h, workers int, run func(sr *Searcher, i int, q bitvec.Code)) SearchStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		sr := NewSearcher(idx)
		var agg SearchStats
		for i, q := range queries {
			run(sr, i, q)
			agg.Add(sr.Stats)
		}
		return agg
	}
	var cursor atomic.Int64
	perWorker := make([]SearchStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sr := NewSearcher(idx)
			var agg SearchStats
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(queries) {
					break
				}
				run(sr, i, queries[i])
				agg.Add(sr.Stats)
			}
			perWorker[w] = agg
		}(w)
	}
	wg.Wait()
	var agg SearchStats
	for _, st := range perWorker {
		agg.Add(st)
	}
	return agg
}

// ---- Static HA-Index walk on searcher scratch ----

// searchWith implements Index for the Static HA-Index: the budgeted layered-
// graph walk of Search, driven by an explicit stack and epoch-reset memo
// tables instead of a per-query recursive closure.
func (s *StaticIndex) searchWith(sr *Searcher, q bitvec.Code, h int, emitGroup func(*leafGroup), emitOne func(int, bitvec.Code)) {
	if q.Len() != s.length {
		panic(fmt.Sprintf("core: %d-bit query against %d-bit static index", q.Len(), s.length))
	}
	// The merged-layer graph can contain far more qualifying paths than real
	// codes once h stops pruning (spurious paths are only filtered at
	// assembly). Bound the walk by a budget proportional to the data; when
	// the threshold is too loose for pruning to pay, fall back to an exact
	// scan over the distinct codes.
	budget := 2 * (len(s.groups) + s.NodeCount() + 16)
	if !s.walkIterative(sr, q, h, budget) {
		sr.Stats.NodesVisited = 0
		for _, g := range s.groups {
			if len(g.ids) == 0 {
				continue // deleted code
			}
			sr.Stats.DistanceComputations++
			sr.Stats.LeavesChecked++
			if _, ok := q.DistanceWithin(g.code, h); ok {
				emitGroup(g)
			}
		}
		return
	}
	for _, g := range sr.found {
		emitGroup(g)
	}
}

// prepareStatic (re)sizes the searcher's static scratch for the index's
// current node counts and advances the memo epoch.
func (sr *Searcher) prepareStatic(s *StaticIndex) {
	if len(sr.memo) < s.levels {
		sr.memo = append(sr.memo, make([][]uint32, s.levels-len(sr.memo))...)
	}
	for l := 0; l < s.levels; l++ {
		if len(sr.memo[l]) < len(s.segs[l]) {
			sr.memo[l] = append(sr.memo[l], make([]uint32, len(s.segs[l])-len(sr.memo[l]))...)
		}
	}
	if len(sr.qsegs) < s.levels {
		sr.qsegs = make([]uint64, s.levels)
	}
	if len(sr.path) < s.levels {
		sr.path = make([]uint64, s.levels)
	}
	sr.epoch++
	if sr.epoch >= 1<<25 {
		// The packed memo entries hold epoch<<7|dist in 32 bits; on epoch
		// wrap, clear the tables once and restart.
		for l := range sr.memo {
			for i := range sr.memo[l] {
				sr.memo[l][i] = 0
			}
		}
		sr.epoch = 1
	}
}

// walkIterative runs the pruned layered-graph DFS on the searcher's scratch.
// It reports false when the work budget is exhausted, leaving sr.found
// untouched for the caller's fallback; on success sr.found holds the
// verified leaf groups.
func (s *StaticIndex) walkIterative(sr *Searcher, q bitvec.Code, h int, budget int) bool {
	sr.prepareStatic(s)
	for l := 0; l < s.levels; l++ {
		sr.qsegs[l] = staticSegKey(q, s.bounds[l][0], s.bounds[l][1])
	}
	sr.found = sr.found[:0]
	stack := sr.stack[:0]
	for nid := len(s.segs[0]) - 1; nid >= 0; nid-- {
		stack = append(stack, sframe{level: 0, nid: int32(nid)})
	}
	lastLevel := int32(s.levels - 1)
	markBase := sr.epoch << 7
	visited := 0
	ok := true
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited++
		if visited > budget {
			ok = false
			break
		}
		l, nid := fr.level, fr.nid
		// Memoized node distance: one XOR+popcount per distinct segment
		// value per query, shared by every code traversing the node.
		var nd int32
		if m := sr.memo[l][nid]; m>>7 == sr.epoch {
			nd = int32(m&127) - 1
		} else {
			sr.Stats.DistanceComputations++
			nd = int32(bits.OnesCount64(s.segs[l][nid] ^ sr.qsegs[l]))
			sr.memo[l][nid] = markBase | uint32(nd+1)
		}
		d := fr.dist + nd
		if d > int32(h) {
			continue
		}
		sr.path[l] = s.segs[l][nid]
		if l == lastLevel {
			// Assemble the candidate code and verify it exists, which
			// filters the spurious paths a merged-layer graph can contain.
			sr.Stats.LeavesChecked++
			if s.byCode64 != nil {
				if g, okk := s.byCode64[s.assemble64(sr.path)]; okk {
					sr.found = append(sr.found, g)
				}
			} else if g := s.lookupAssembled(sr); g != nil {
				sr.found = append(sr.found, g)
			}
			continue
		}
		for _, next := range s.adj[l][nid] {
			stack = append(stack, sframe{level: l + 1, nid: next, dist: d})
		}
	}
	sr.stack = stack[:0]
	sr.Stats.NodesVisited += visited
	return ok
}

// lookupAssembled assembles the multi-word code on sr.path into scratch
// words, builds its map key in a reused byte buffer, and resolves the leaf
// group — the allocation-free equivalent of byCode[assemble(path).Key()].
func (s *StaticIndex) lookupAssembled(sr *Searcher) *leafGroup {
	nw := (s.length + 63) / 64
	if len(sr.asmWords) < nw {
		sr.asmWords = make([]uint64, nw)
	}
	words := sr.asmWords[:nw]
	for i := range words {
		words[i] = 0
	}
	used := 0
	for l := 0; l < s.levels; l++ {
		w := s.bounds[l][1]
		lv := sr.path[l] << uint(64-w)
		hi, off := used/64, uint(used%64)
		words[hi] |= lv >> off
		if int(off)+w > 64 {
			words[hi+1] |= lv << (64 - off)
		}
		used += w
	}
	// Key layout must match bitvec.Code.Key: big-endian words then length.
	// Codes up to 256 bits key through a stack buffer; longer ones reuse the
	// searcher's scratch. Either way the map probe's string conversion stays
	// off the heap (the compiler's map[string(bytes)] optimization), so no
	// per-query allocation happens on this path.
	if nw <= 4 {
		var stack [4*8 + 1]byte
		for i, w := range words {
			binary.BigEndian.PutUint64(stack[i*8:], w)
		}
		stack[nw*8] = byte(s.length)
		return s.byCode[string(stack[:nw*8+1])]
	}
	if cap(sr.keyBuf) < nw*8+1 {
		sr.keyBuf = make([]byte, nw*8+1)
	}
	buf := sr.keyBuf[:nw*8+1]
	for i, w := range words {
		binary.BigEndian.PutUint64(buf[i*8:], w)
	}
	buf[nw*8] = byte(s.length)
	return s.byCode[string(buf)]
}
