package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"haindex/internal/bitvec"
)

// searcherEnv builds both index variants over one clustered dataset plus a
// mixed query set (dataset members and random outsiders).
func searcherEnv(t testing.TB, seed int64, n, bitsLen, h int) ([]bitvec.Code, []bitvec.Code, []Index) {
	rng := rand.New(rand.NewSource(seed))
	codes := clusteredCodes(rng, n, bitsLen, 12, 3)
	queries := make([]bitvec.Code, 48)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = bitvec.Rand(rng, bitsLen)
		} else {
			queries[i] = codes[rng.Intn(len(codes))]
		}
	}
	return codes, queries, []Index{
		BuildDynamic(codes, nil, Options{}),
		BuildStatic(codes, nil, 8),
		Freeze(BuildDynamic(codes, nil, Options{})),
	}
}

// TestSearcherMatchesOracle: a reused Searcher answers every query exactly,
// on both index variants, across code widths spanning one word and several.
func TestSearcherMatchesOracle(t *testing.T) {
	for _, bitsLen := range []int{32, 64, 100, 150} {
		codes, queries, indexes := searcherEnv(t, int64(200+bitsLen), 1200, bitsLen, 0)
		for _, idx := range indexes {
			sr := NewSearcher(idx)
			for h := 0; h <= 5; h++ {
				for qi, q := range queries {
					want := oracle(codes, q, h)
					if got := sr.Search(q, h); !equalIDs(got, want) {
						t.Fatalf("L=%d %T h=%d q#%d: got %d ids, want %d", bitsLen, idx, h, qi, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestSearcherCodes: SearchCodes returns the distinct qualifying codes.
func TestSearcherCodes(t *testing.T) {
	codes, queries, indexes := searcherEnv(t, 77, 800, 48, 0)
	for _, idx := range indexes {
		sr := NewSearcher(idx)
		for _, q := range queries {
			distinct := map[string]bool{}
			for _, i := range oracle(codes, q, 3) {
				distinct[codes[i].Key()] = true
			}
			got := sr.SearchCodes(q, 3)
			if len(got) != len(distinct) {
				t.Fatalf("%T: %d distinct codes, want %d", idx, len(got), len(distinct))
			}
			for _, c := range got {
				if !distinct[c.Key()] {
					t.Fatalf("%T: code %s not a qualifying code", idx, c)
				}
			}
		}
	}
}

// TestSearcherZeroAlloc: steady-state Searcher.Search performs zero heap
// allocations, for single-word and multi-word codes on both index variants.
func TestSearcherZeroAlloc(t *testing.T) {
	for _, bitsLen := range []int{32, 128} {
		_, queries, indexes := searcherEnv(t, int64(300+bitsLen), 1500, bitsLen, 0)
		for _, idx := range indexes {
			sr := NewSearcher(idx)
			// Warm the scratch to its high-water mark.
			for r := 0; r < 3; r++ {
				for _, q := range queries {
					sr.Search(q, 3)
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				sr.Search(queries[i%len(queries)], 3)
				i++
			})
			if allocs != 0 {
				t.Errorf("L=%d %T: %.1f allocs/op in steady state, want 0", bitsLen, idx, allocs)
			}
		}
	}
}

// TestStaticLookupAssembledZeroAlloc pins the multi-word byCode lookup: the
// static walk's assembled-key probe must resolve exact hits correctly and
// allocation-free on both its variants — the stack buffer (codes ≤ 256 bits)
// and the reused scratch buffer (wider codes).
func TestStaticLookupAssembledZeroAlloc(t *testing.T) {
	for _, bitsLen := range []int{128, 320} {
		rng := rand.New(rand.NewSource(int64(400 + bitsLen)))
		codes := clusteredCodes(rng, 400, bitsLen, 6, 3)
		idx := BuildStatic(codes, nil, 8)
		sr := NewSearcher(idx)
		for qi, q := range codes[:50] {
			if got, want := sr.Search(q, 0), oracle(codes, q, 0); !equalIDs(got, want) {
				t.Fatalf("L=%d q#%d: exact lookup got %d ids, want %d", bitsLen, qi, len(got), len(want))
			}
		}
		for r := 0; r < 3; r++ {
			for _, q := range codes[:50] {
				sr.Search(q, 2)
			}
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			sr.Search(codes[i%50], 2)
			i++
		})
		if allocs != 0 {
			t.Errorf("L=%d: %.1f allocs/op through the assembled-key lookup, want 0", bitsLen, allocs)
		}
	}
}

// TestSearcherZeroAllocLooseThreshold drives the static walk into its budget
// fallback (exact scan) and checks that path is allocation-free too.
func TestSearcherZeroAllocLooseThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	codes := make([]bitvec.Code, 500)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 64)
	}
	idx := BuildStatic(codes, nil, 8)
	q := bitvec.Rand(rng, 64)
	sr := NewSearcher(idx)
	for r := 0; r < 3; r++ {
		sr.Search(q, 40)
	}
	if allocs := testing.AllocsPerRun(100, func() { sr.Search(q, 40) }); allocs != 0 {
		t.Errorf("fallback scan: %.1f allocs/op, want 0", allocs)
	}
}

// TestSearchBatchMatchesSerial: SearchBatch returns per-query results
// identical to serial searches, for several worker counts, and aggregates
// the same total work.
func TestSearchBatchMatchesSerial(t *testing.T) {
	codes, queries, indexes := searcherEnv(t, 41, 2000, 32, 0)
	for _, idx := range indexes {
		for _, workers := range []int{0, 1, 2, 4, 7} {
			results, stats := SearchBatch(idx, queries, 3, workers)
			if len(results) != len(queries) {
				t.Fatalf("%T workers=%d: %d results for %d queries", idx, workers, len(results), len(queries))
			}
			if stats.DistanceComputations == 0 {
				t.Fatalf("%T workers=%d: batch stats empty", idx, workers)
			}
			for i, q := range queries {
				if want := oracle(codes, q, 3); !equalIDs(results[i], want) {
					t.Fatalf("%T workers=%d q#%d: got %v want %v", idx, workers, i, results[i], want)
				}
			}
		}
	}
}

// TestSearchCodesBatch: the leafless batch variant agrees with per-query
// SearchCodes.
func TestSearchCodesBatch(t *testing.T) {
	codes, queries, indexes := searcherEnv(t, 43, 1000, 32, 0)
	_ = codes
	for _, idx := range indexes {
		serial := NewSearcher(idx)
		results, _ := SearchCodesBatch(idx, queries, 3, 4)
		for i, q := range queries {
			want := serial.SearchCodes(q, 3)
			if len(results[i]) != len(want) {
				t.Fatalf("%T q#%d: %d codes, want %d", idx, i, len(results[i]), len(want))
			}
			seen := map[string]bool{}
			for _, c := range want {
				seen[c.Key()] = true
			}
			for _, c := range results[i] {
				if !seen[c.Key()] {
					t.Fatalf("%T q#%d: unexpected code %s", idx, i, c)
				}
			}
		}
	}
}

// TestSearcherOnBufferedDynamic: Searcher results include unflushed inserts.
func TestSearcherOnBufferedDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	codes := clusteredCodes(rng, 400, 32, 8, 3)
	idx := BuildDynamic(codes[:300], nil, Options{BufferMax: 1 << 30})
	for i := 300; i < len(codes); i++ {
		idx.Insert(i, codes[i])
	}
	sr := NewSearcher(idx)
	for _, q := range codes[:20] {
		if got, want := sr.Search(q, 3), oracle(codes, q, 3); !equalIDs(got, want) {
			t.Fatalf("buffered dynamic: got %d ids, want %d", len(got), len(want))
		}
	}
}

// TestSearcherAfterStaticInsert: scratch sized at construction must grow
// when the index gains nodes afterwards.
func TestSearcherAfterStaticInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	codes := clusteredCodes(rng, 300, 32, 6, 3)
	idx := BuildStatic(codes[:100], nil, 8)
	sr := NewSearcher(idx)
	sr.Search(codes[0], 3) // size scratch to the small index
	for i := 100; i < len(codes); i++ {
		idx.Insert(i, codes[i])
	}
	for _, q := range codes[:20] {
		if got, want := sr.Search(q, 3), oracle(codes, q, 3); !equalIDs(got, want) {
			t.Fatalf("post-insert static search: got %d ids, want %d", len(got), len(want))
		}
	}
}

// TestSearchAppend: results copied out of scratch survive subsequent calls.
func TestSearchAppend(t *testing.T) {
	codes, queries, indexes := searcherEnv(t, 57, 600, 32, 0)
	sr := NewSearcher(indexes[0])
	var acc []int
	var want []int
	for _, q := range queries[:10] {
		acc = sr.SearchAppend(acc, q, 3)
		want = append(want, oracle(codes, q, 3)...)
	}
	if !equalIDs(acc, want) {
		t.Fatalf("SearchAppend accumulated %d ids, want %d", len(acc), len(want))
	}
}

func BenchmarkSearcherSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := BuildDynamic(codes, nil, Options{})
	sr := NewSearcher(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.Search(codes[i%len(codes)], 3)
	}
}

func BenchmarkSearcherSearchStatic(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := BuildStatic(codes, nil, 8)
	sr := NewSearcher(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.Search(codes[i%len(codes)], 3)
	}
}

func BenchmarkSearchBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := clusteredCodes(rng, 20000, 32, 16, 3)
	idx := BuildDynamic(codes, nil, Options{})
	queries := codes[:1024]
	for _, workers := range []int{1, 2, 4, 8} {
		if workers > runtime.GOMAXPROCS(0) {
			continue
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SearchBatch(idx, queries, 3, workers)
			}
		})
	}
}
