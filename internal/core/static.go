package core

import (
	"fmt"
	"sort"

	"haindex/internal/bitvec"
)

// StaticIndex is the Static HA-Index of Section 4.3: binary codes are cut
// into fixed-length contiguous segments, each level of the index holds the
// distinct segment values observed at that offset, and each code is an
// undirected path through one node per level (Figure 2). Because many codes
// share segment values, the Hamming distance between the query and a segment
// value is computed once per query and reused by every code traversing that
// node — the sharing that removes the Radix-Tree's prefix sensitivity for
// aligned substrings.
type StaticIndex struct {
	length   int
	segWidth int
	levels   int
	bounds   [][2]int

	// nodes[l] maps a level-l segment value to its node id; segs[l] is the
	// inverse. adj[l][node] lists the level-(l+1) node ids reachable from it.
	nodes []map[uint64]int32
	segs  [][]uint64
	adj   [][][]int32

	// byCode maps a full code to the ids of its tuples; paths assembled from
	// the layered graph are verified against it, so merged nodes can never
	// produce false positives. byCode64 is the allocation-free fast path
	// for codes up to 64 bits; groups lists the entries for fallback scans.
	byCode   map[string]*leafGroup
	byCode64 map[uint64]*leafGroup
	groups   []*leafGroup
	n        int

	// Stats describes the most recent Search/SearchCodes call.
	//
	// Deprecated: the field is a single-threaded convenience — Search copies
	// the statistics back here, so concurrent callers sharing one index must
	// use a Searcher (or SearchInto) and read per-searcher stats instead.
	Stats SearchStats
}

// BuildStatic builds a Static HA-Index with the given segment width (0
// selects 8 bits). ids default to positions when nil.
func BuildStatic(codes []bitvec.Code, ids []int, segWidth int) *StaticIndex {
	if len(codes) == 0 {
		panic("core: BuildStatic over empty dataset")
	}
	length := codes[0].Len()
	if segWidth <= 0 {
		segWidth = 8
	}
	if segWidth > 64 {
		panic(fmt.Sprintf("core: segment width %d exceeds 64", segWidth))
	}
	levels := (length + segWidth - 1) / segWidth
	s := &StaticIndex{
		length:   length,
		segWidth: segWidth,
		levels:   levels,
		bounds:   make([][2]int, levels),
		nodes:    make([]map[uint64]int32, levels),
		segs:     make([][]uint64, levels),
		adj:      make([][][]int32, levels),
		byCode:   make(map[string]*leafGroup),
	}
	if length <= 64 {
		s.byCode64 = make(map[uint64]*leafGroup)
	}
	at := 0
	for l := 0; l < levels; l++ {
		w := segWidth
		if at+w > length {
			w = length - at
		}
		s.bounds[l] = [2]int{at, w}
		s.nodes[l] = make(map[uint64]int32)
		at += w
	}
	for i, c := range codes {
		id := i
		if ids != nil {
			id = ids[i]
		}
		s.Insert(id, c)
	}
	return s
}

// Insert adds a tuple, creating segment nodes and path edges as needed.
func (s *StaticIndex) Insert(id int, c bitvec.Code) {
	if c.Len() != s.length {
		panic(fmt.Sprintf("core: inserting %d-bit code into %d-bit static index", c.Len(), s.length))
	}
	key := c.Key()
	g := s.byCode[key]
	if g == nil {
		g = &leafGroup{code: c}
		s.byCode[key] = g
		if s.byCode64 != nil {
			s.byCode64[c.Words()[0]] = g
		}
		s.groups = append(s.groups, g)
		prev := int32(-1)
		for l := 0; l < s.levels; l++ {
			from, w := s.bounds[l][0], s.bounds[l][1]
			val := staticSegKey(c, from, w)
			nid, ok := s.nodes[l][val]
			if !ok {
				nid = int32(len(s.segs[l]))
				s.nodes[l][val] = nid
				s.segs[l] = append(s.segs[l], val)
				if l < s.levels-1 {
					s.adj[l] = append(s.adj[l], nil)
				}
			}
			if l > 0 {
				s.addEdge(l-1, prev, nid)
			}
			prev = nid
		}
	}
	g.ids = append(g.ids, id)
	s.n++
}

func (s *StaticIndex) addEdge(level int, from, to int32) {
	lst := s.adj[level][from]
	i := sort.Search(len(lst), func(j int) bool { return lst[j] >= to })
	if i < len(lst) && lst[i] == to {
		return
	}
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = to
	s.adj[level][from] = lst
}

// Delete removes the tuple with the given id and code. Segment nodes and
// edges are retained (they may serve other codes); empty codes are dropped
// from the verification map, so stale paths are filtered at query time. It
// reports whether a tuple was removed.
func (s *StaticIndex) Delete(id int, c bitvec.Code) bool {
	key := c.Key()
	g, ok := s.byCode[key]
	if !ok {
		return false
	}
	for i, v := range g.ids {
		if v == id {
			g.ids = append(g.ids[:i], g.ids[i+1:]...)
			s.n--
			if len(g.ids) == 0 {
				delete(s.byCode, key)
				if s.byCode64 != nil {
					delete(s.byCode64, c.Words()[0])
				}
			}
			return true
		}
	}
	return false
}

// staticSegKey extracts the segment [from, from+width) as a uint64 (width
// <= 64 guaranteed by construction) with word-aligned shift/mask extraction:
// at most two word reads instead of one shift-or per bit.
func staticSegKey(c bitvec.Code, from, width int) uint64 {
	words := c.Words()
	wi := from / 64
	off := uint(from % 64)
	v := words[wi] << off
	if off != 0 && wi+1 < len(words) {
		v |= words[wi+1] >> (64 - off)
	}
	return v >> uint(64-width)
}

// Search returns the ids of all tuples within Hamming distance h of q. Per
// query, the distance between q's level-l segment and each distinct segment
// value is computed at most once (memoized); a depth-first walk over the
// layered graph prunes any path whose partial distance exceeds h, and the
// assembled full code of a surviving path is verified against the code map,
// which filters the spurious paths a merged-layer graph can contain.
//
// Search copies the per-query statistics into s.Stats for single-threaded
// callers; hot paths and concurrent callers should reuse a Searcher.
func (s *StaticIndex) Search(q bitvec.Code, h int) []int {
	sr := NewSearcher(s)
	out := sr.Search(q, h)
	s.Stats = sr.Stats
	return out
}

// SearchCodes returns the distinct qualifying codes instead of ids.
func (s *StaticIndex) SearchCodes(q bitvec.Code, h int) []bitvec.Code {
	sr := NewSearcher(s)
	out := sr.SearchCodes(q, h)
	s.Stats = sr.Stats
	return out
}

// SearchInto is Search with caller-owned statistics; it does not mutate the
// index and is safe for concurrent use on a read-only index. Callers issuing
// many queries should hold a Searcher instead, which reuses its scratch.
func (s *StaticIndex) SearchInto(q bitvec.Code, h int, stats *SearchStats) []int {
	sr := NewSearcher(s)
	out := sr.Search(q, h)
	*stats = sr.Stats
	return out
}

// assemble64 packs per-level segment values into the single word of a
// <=64-bit code (left-aligned, as bitvec stores it).
func (s *StaticIndex) assemble64(path []uint64) uint64 {
	var w uint64
	used := 0
	for l, v := range path {
		width := s.bounds[l][1]
		w |= v << uint(64-used-width)
		used += width
	}
	return w
}

// Len returns the number of indexed tuples.
func (s *StaticIndex) Len() int { return s.n }

// Length returns the code length L in bits.
func (s *StaticIndex) Length() int { return s.length }

// NodeCount returns the number of segment nodes across levels.
func (s *StaticIndex) NodeCount() int {
	n := 0
	for _, lv := range s.segs {
		n += len(lv)
	}
	return n
}

// EdgeCount returns the number of level-to-level edges.
func (s *StaticIndex) EdgeCount() int {
	n := 0
	for _, lv := range s.adj {
		for _, lst := range lv {
			n += len(lst)
		}
	}
	return n
}

// SizeBytes returns the approximate in-memory footprint.
func (s *StaticIndex) SizeBytes() int {
	sz := 0
	for l := 0; l < s.levels; l++ {
		sz += len(s.segs[l]) * 8
		sz += len(s.nodes[l]) * 16
	}
	for _, lv := range s.adj {
		for _, lst := range lv {
			sz += 24 + 4*len(lst)
		}
	}
	for _, g := range s.byCode {
		sz += 48 + g.code.SizeBytes() + 8*len(g.ids)
	}
	return sz
}
