package core

import (
	"sort"

	"haindex/internal/bitvec"
)

// TopK returns the ids of the k tuples nearest to q in Hamming distance,
// with their distances, ordered by (distance, id); ties at the kth place are
// broken toward smaller ids, so the result is deterministic. Fewer than k
// pairs come back when the index holds fewer tuples.
//
// The search expands the radius one step at a time — a tuple's distance is
// the first radius at which it appears — and stops at the first radius whose
// cumulative result reaches k, so selective queries never pay for a full
// scan. Unlike Search, the returned slices are freshly allocated and do not
// alias the searcher's scratch; Stats aggregates the whole expansion.
func (sr *Searcher) TopK(q bitvec.Code, k int) ([]int, []int) {
	if f, ok := sr.idx.(*FrozenIndex); ok {
		// The frozen index escalates natively: its epoch-packed memo computes
		// each node's residual distance once for the whole expansion.
		return f.topK(sr, q, k)
	}
	if k <= 0 || sr.idx.Len() == 0 {
		sr.Stats = SearchStats{}
		return nil, nil
	}
	var agg SearchStats
	dist := make(map[int]int)
	maxH := sr.idx.Length()
	for h := 0; h <= maxH; h++ {
		for _, id := range sr.Search(q, h) {
			if _, seen := dist[id]; !seen {
				dist[id] = h
			}
		}
		agg.Add(sr.Stats)
		if len(dist) >= k {
			break
		}
	}
	sr.Stats = agg
	ids := make([]int, 0, len(dist))
	for id := range dist {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := dist[ids[i]], dist[ids[j]]
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	dists := make([]int, len(ids))
	for i, id := range ids {
		dists[i] = dist[id]
	}
	return ids, dists
}
