package core

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteTopK is the oracle: sort all (distance, id) pairs, take k.
func bruteTopK(codes []int, idx *DynamicIndex, q int, all [][2]int, k int) [][2]int {
	sorted := append([][2]int(nil), all...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

func TestTopKAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 8; trial++ {
		bitsLen := []int{16, 32, 64, 100}[trial%4]
		codes := clusteredCodes(rng, 200+rng.Intn(300), bitsLen, 6, 3)
		idx := BuildDynamic(codes, nil, Options{})
		sr := NewSearcher(idx)
		for qi := 0; qi < 10; qi++ {
			q := codes[rng.Intn(len(codes))].Clone()
			q.FlipBit(rng.Intn(bitsLen))
			k := 1 + rng.Intn(20)
			all := make([][2]int, len(codes))
			for id, c := range codes {
				all[id] = [2]int{q.Distance(c), id}
			}
			want := bruteTopK(nil, idx, 0, all, k)
			ids, dists := sr.TopK(q, k)
			if len(ids) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(ids), len(want))
			}
			for i := range ids {
				if ids[i] != want[i][1] || dists[i] != want[i][0] {
					t.Fatalf("k=%d pos %d: got (id=%d,d=%d) want (id=%d,d=%d)",
						k, i, ids[i], dists[i], want[i][1], want[i][0])
				}
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	codes := clusteredCodes(rng, 50, 32, 3, 2)
	idx := BuildDynamic(codes, nil, Options{})
	sr := NewSearcher(idx)
	if ids, dists := sr.TopK(codes[0], 0); ids != nil || dists != nil {
		t.Fatal("k=0 must return nothing")
	}
	// k larger than the index returns every tuple.
	ids, _ := sr.TopK(codes[0], 10*len(codes))
	if len(ids) != idx.Len() {
		t.Fatalf("k>n returned %d of %d", len(ids), idx.Len())
	}
	// Exact-match query puts its own id first at distance 0.
	ids, dists := sr.TopK(codes[7], 3)
	if dists[0] != 0 {
		t.Fatalf("nearest distance %d, want 0", dists[0])
	}
	found := false
	for i, id := range ids {
		if id == 7 && dists[i] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("query's own id missing from top-k: %v %v", ids, dists)
	}
}
