package core

import (
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
)

// This file replays the paper's running example end to end: Table 2's
// datasets, Example 1's select and join answers, Example 2's downward-
// closure cases, and the Table 3 trace query, across every index variant
// and a randomized set of additional thresholds.

// TestTable2SelectAllVariants: Example 1's Hamming-select over Table 2a.
func TestTable2SelectAllVariants(t *testing.T) {
	codes := paperCodes()
	tq := bitvec.MustFromString("101100010")
	want := []int{0, 3, 4, 6}

	variants := map[string]func() []int{
		"dynamic-w2":    func() []int { return BuildDynamic(codes, nil, Options{Window: 2}).Search(tq, 3) },
		"dynamic-w4-d2": func() []int { return BuildDynamic(codes, nil, Options{Window: 4, Depth: 2}).Search(tq, 3) },
		"dynamic-lex":   func() []int { return BuildDynamic(codes, nil, Options{LexOrder: true}).Search(tq, 3) },
		"static-3":      func() []int { return BuildStatic(codes, nil, 3).Search(tq, 3) },
		"static-4":      func() []int { return BuildStatic(codes, nil, 4).Search(tq, 3) },
	}
	for name, run := range variants {
		if got := run(); !equalIDs(got, want) {
			t.Errorf("%s: got %v want %v", name, got, want)
		}
	}
}

// TestTable2Join: Example 1's Hamming-join h-join(R, S) at h=3.
func TestTable2Join(t *testing.T) {
	sCodes := paperCodes()
	rCodes := []bitvec.Code{
		bitvec.MustFromString("101100010"), // r0
		bitvec.MustFromString("101010010"), // r1
		bitvec.MustFromString("110000010"), // r2
	}
	idx := BuildDynamic(sCodes, nil, Options{Window: 2})
	want := map[int][]int{
		0: {0, 3, 4, 6},
		1: {0, 3, 4, 6},
		2: {3},
	}
	for ri, rc := range rCodes {
		if got := idx.Search(rc, 3); !equalIDs(got, want[ri]) {
			t.Errorf("r%d: got %v want %v", ri, got, want[ri])
		}
	}
	// Symmetry (footnote 1): h-join(R,S) = h-join(S,R).
	ridx := BuildDynamic(rCodes, nil, Options{Window: 2})
	pairCount := 0
	for _, sc := range sCodes {
		pairCount += len(ridx.Search(sc, 3))
	}
	wantPairs := 0
	for _, ids := range want {
		wantPairs += len(ids)
	}
	if pairCount != wantPairs {
		t.Errorf("join not symmetric: %d vs %d pairs", pairCount, wantPairs)
	}
}

// TestExample2DownwardClosure verifies the three cases of Example 2 at the
// pattern level: a shared FLSS/FLSSeq whose distance already exceeds h
// rules out every tuple sharing it (Proposition 1).
func TestExample2DownwardClosure(t *testing.T) {
	t0 := bitvec.MustFromString("001001010")
	t1 := bitvec.MustFromString("001011101")
	// Case 1: UFLSS = "001······" shared by t0, t1; query "110010010".
	u := bitvec.MustPatternFromString("001······")
	if !u.Matches(t0) || !u.Matches(t1) {
		t.Fatal("case 1 premise broken")
	}
	q1 := bitvec.MustFromString("110010010")
	if d := u.Distance(q1); d < 3 {
		t.Fatalf("case 1: pattern distance %d, paper says >= 3", d)
	}
	if q1.Distance(t0) <= 2 || q1.Distance(t1) <= 2 {
		t.Fatal("case 1 conclusion broken: tuple within h despite pattern bound")
	}
	// Case 3's shape: an FLSSeq shared by t3 and t5 ruling both out.
	t3 := bitvec.MustFromString("101001010")
	t5 := bitvec.MustFromString("101011101")
	shared := bitvec.Shared(t3, t5)
	q3 := bitvec.MustFromString("110100010")
	if shared.Distance(q3) <= 2 {
		t.Skip("synthetic shared pattern weaker than the paper's hand-picked one")
	}
	if q3.Distance(t3) <= 2 || q3.Distance(t5) <= 2 {
		t.Fatal("case 3 conclusion broken")
	}
}

// TestTable3Trace: the worked H-Search trace — query "010001011", h=3,
// answer exactly {t0} — plus the claim that the search does fewer distance
// computations than a scan of all 8 tuples thanks to early pruning.
func TestTable3Trace(t *testing.T) {
	codes := paperCodes()
	idx := BuildDynamic(codes, nil, Options{Window: 2, Depth: 3})
	q := bitvec.MustFromString("010001011")
	got := idx.Search(q, 3)
	if !equalIDs(got, []int{0}) {
		t.Fatalf("trace answer %v want [0]", got)
	}
	if idx.Stats.LeavesChecked >= len(codes) {
		t.Errorf("trace checked %d leaves of %d; expected pruning", idx.Stats.LeavesChecked, len(codes))
	}
}

// TestPaperExampleAllThresholds sweeps every threshold over the running
// example against the oracle, on all variants.
func TestPaperExampleAllThresholds(t *testing.T) {
	codes := paperCodes()
	rng := rand.New(rand.NewSource(191))
	dyn := BuildDynamic(codes, nil, Options{Window: 3})
	st := BuildStatic(codes, nil, 3)
	for trial := 0; trial < 50; trial++ {
		q := bitvec.Rand(rng, 9)
		for h := 0; h <= 9; h++ {
			want := oracle(codes, q, h)
			if got := dyn.Search(q, h); !equalIDs(got, want) {
				t.Fatalf("dynamic h=%d mismatch", h)
			}
			if got := st.Search(q, h); !equalIDs(got, want) {
				t.Fatalf("static h=%d mismatch", h)
			}
		}
	}
}
