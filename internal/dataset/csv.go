package dataset

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"haindex/internal/vector"
)

// ReadCSV loads a dataset written by the hagen command: one comma-separated
// feature vector per line. All rows must share one dimensionality.
func ReadCSV(path string) ([]vector.Vec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []vector.Vec
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		v := make(vector.Vec, len(fields))
		for i, fld := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(fld), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: %s:%d: column %d: %w", path, line, i+1, err)
			}
			v[i] = x
		}
		if len(out) > 0 && len(v) != len(out[0]) {
			return nil, fmt.Errorf("dataset: %s:%d: %d columns, want %d", path, line, len(v), len(out[0]))
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataset: %s: empty dataset", path)
	}
	return out, nil
}
