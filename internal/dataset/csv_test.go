package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(path, []byte("1,2,3\n4,5,6\n\n7,8,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := ReadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[1][2] != 6 {
		t.Fatalf("vs = %v", vs)
	}
}

func TestReadCSVErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("1,x,3\n"), 0o644)
	if _, err := ReadCSV(bad); err == nil {
		t.Error("expected parse error")
	}
	ragged := filepath.Join(dir, "ragged.csv")
	os.WriteFile(ragged, []byte("1,2\n1,2,3\n"), 0o644)
	if _, err := ReadCSV(ragged); err == nil {
		t.Error("expected ragged-row error")
	}
	empty := filepath.Join(dir, "empty.csv")
	os.WriteFile(empty, nil, 0o644)
	if _, err := ReadCSV(empty); err == nil {
		t.Error("expected empty error")
	}
	if _, err := ReadCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("expected missing-file error")
	}
}
