// Package dataset provides synthetic workload generators standing in for the
// paper's three real datasets, the paper's ×s scale-up technique, and
// reservoir sampling.
//
// Substitution note (see DESIGN.md): the paper evaluates on NUS-WIDE
// (269,648 images, 225-d block-wise color moments), 1M crawled Flickr images
// (512-d GIST descriptors) and 1M DBPedia documents (250 LDA topics). Those
// corpora are not redistributable here, so each profile generates vectors
// with the same dimensionality and a clustered, skewed structure: a Gaussian
// mixture with Zipf-distributed cluster sizes for the image-feature datasets
// and Dirichlet topic mixtures on the simplex for the document dataset. The
// downstream algorithms only see the learned binary codes, so cluster skew
// and dimensionality — which the generators preserve — are what shape the
// results.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"haindex/internal/vector"
)

// Profile describes a synthetic dataset family.
type Profile struct {
	Name     string
	Dim      int     // feature dimensionality
	Clusters int     // number of mixture components
	Skew     float64 // Zipf exponent for cluster sizes (0 = uniform)
	Spread   float64 // within-cluster standard deviation
	Simplex  bool    // generate Dirichlet topic mixtures instead of Gaussians
}

// The three dataset profiles used throughout the paper's evaluation.
var (
	// NUSWide mimics NUS-WIDE 225-d block-wise color moments.
	NUSWide = Profile{Name: "NUS-WIDE", Dim: 225, Clusters: 512, Skew: 0.5, Spread: 0.10}
	// Flickr mimics 512-d GIST descriptors of crawled Flickr images.
	Flickr = Profile{Name: "Flickr", Dim: 512, Clusters: 512, Skew: 0.5, Spread: 0.07}
	// DBPedia mimics 250-topic LDA mixtures of Wikipedia abstracts.
	DBPedia = Profile{Name: "DBPedia", Dim: 250, Clusters: 512, Skew: 0.6, Spread: 0.0, Simplex: true}
)

// Profiles lists the three paper datasets in presentation order.
func Profiles() []Profile { return []Profile{NUSWide, Flickr, DBPedia} }

// ProfileByName returns the named profile (case-sensitive, as printed by the
// paper: "NUS-WIDE", "Flickr", "DBPedia").
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

// Generate produces n vectors from the profile, deterministically from seed.
func Generate(p Profile, n int, seed int64) []vector.Vec {
	rng := rand.New(rand.NewSource(seed))
	if p.Simplex {
		return generateSimplex(p, n, rng)
	}
	return generateMixture(p, n, rng)
}

// generateMixture draws from a Gaussian mixture with Zipf cluster weights in
// the unit hypercube, clamped to [0, 1] like normalized image features.
func generateMixture(p Profile, n int, rng *rand.Rand) []vector.Vec {
	centers := make([]vector.Vec, p.Clusters)
	for c := range centers {
		v := make(vector.Vec, p.Dim)
		for i := range v {
			v[i] = rng.Float64()
		}
		centers[c] = v
	}
	weights := ZipfWeights(p.Clusters, p.Skew)
	out := make([]vector.Vec, n)
	for i := range out {
		c := sampleIndex(rng, weights)
		v := make(vector.Vec, p.Dim)
		for j := range v {
			x := centers[c][j] + rng.NormFloat64()*p.Spread
			v[j] = math.Max(0, math.Min(1, x))
		}
		out[i] = v
	}
	return out
}

// generateSimplex draws Dirichlet topic mixtures: each cluster is a Dirichlet
// concentrated on a handful of topics, mimicking LDA document-topic output.
func generateSimplex(p Profile, n int, rng *rand.Rand) []vector.Vec {
	type topicCluster struct {
		hot []int // dominant topics of this cluster
	}
	clusters := make([]topicCluster, p.Clusters)
	for c := range clusters {
		k := 3 + rng.Intn(4)
		hot := make([]int, k)
		for i := range hot {
			hot[i] = rng.Intn(p.Dim)
		}
		clusters[c] = topicCluster{hot: hot}
	}
	weights := ZipfWeights(p.Clusters, p.Skew)
	out := make([]vector.Vec, n)
	for i := range out {
		cl := clusters[sampleIndex(rng, weights)]
		alpha := make(vector.Vec, p.Dim)
		for j := range alpha {
			alpha[j] = 0.05
		}
		for _, t := range cl.hot {
			alpha[t] = 4.0
		}
		out[i] = dirichlet(rng, alpha)
	}
	return out
}

// dirichlet samples from Dir(alpha) via normalized Gamma draws.
func dirichlet(rng *rand.Rand, alpha vector.Vec) vector.Vec {
	v := make(vector.Vec, len(alpha))
	sum := 0.0
	for i, a := range alpha {
		g := gamma(rng, a)
		v[i] = g
		sum += g
	}
	if sum == 0 {
		v[rng.Intn(len(v))] = 1
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

// gamma samples Gamma(shape, 1) using Marsaglia–Tsang, with the boost trick
// for shape < 1.
func gamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// ZipfWeights returns k weights proportional to rank^(-s), normalized to
// sum to 1. It shapes the cluster-size skew of every synthetic profile
// here, and the query-popularity skew of the load harness
// (internal/loadgen) — the same distribution governs what the data looks
// like and what traffic asks for.
func ZipfWeights(k int, s float64) []float64 {
	w := make([]float64, k)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleIndex draws an index proportionally to the weights (assumed
// normalized).
func sampleIndex(rng *rand.Rand, w []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// ScaleUp applies the paper's synthetic scale-up technique (Section 6): it
// returns a dataset s times the size of d while maintaining the original
// distribution. For each generation, every tuple component t_j is replaced by
// the next larger value observed in dimension j of the original data (the
// largest value maps to itself), producing a shifted copy; generations
// 1..s-1 are appended to the original.
func ScaleUp(d []vector.Vec, s int) []vector.Vec {
	if s <= 1 || len(d) == 0 {
		return d
	}
	dim := len(d[0])
	// Sorted unique values per dimension.
	sorted := make([][]float64, dim)
	for j := 0; j < dim; j++ {
		vals := make([]float64, 0, len(d))
		for _, t := range d {
			vals = append(vals, t[j])
		}
		sort.Float64s(vals)
		vals = dedupFloats(vals)
		sorted[j] = vals
	}
	out := make([]vector.Vec, 0, len(d)*s)
	out = append(out, d...)
	prev := d
	for gen := 1; gen < s; gen++ {
		next := make([]vector.Vec, len(prev))
		for i, t := range prev {
			nt := make(vector.Vec, dim)
			for j := 0; j < dim; j++ {
				nt[j] = successor(sorted[j], t[j])
			}
			next[i] = nt
		}
		out = append(out, next...)
		prev = next
	}
	return out
}

// successor returns the smallest recorded value strictly larger than x, or x
// itself when x is at or beyond the maximum (the paper's boundary rule).
func successor(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, x)
	// Skip equal values to find a strictly larger one.
	for i < len(sorted) && sorted[i] <= x {
		i++
	}
	if i >= len(sorted) {
		return x
	}
	return sorted[i]
}

func dedupFloats(vals []float64) []float64 {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Reservoir draws a uniform random sample of size k from the data using
// Vitter's Algorithm R, deterministically from seed. When k >= len(data) a
// copy of the whole dataset is returned.
func Reservoir(data []vector.Vec, k int, seed int64) []vector.Vec {
	if k >= len(data) {
		out := make([]vector.Vec, len(data))
		copy(out, data)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	res := make([]vector.Vec, k)
	copy(res, data[:k])
	for i := k; i < len(data); i++ {
		j := rng.Intn(i + 1)
		if j < k {
			res[j] = data[i]
		}
	}
	return res
}
