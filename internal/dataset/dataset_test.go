package dataset

import (
	"math"
	"testing"

	"haindex/internal/vector"
)

func TestGenerateShapes(t *testing.T) {
	for _, p := range Profiles() {
		vs := Generate(p, 200, 1)
		if len(vs) != 200 {
			t.Fatalf("%s: n=%d", p.Name, len(vs))
		}
		for _, v := range vs {
			if len(v) != p.Dim {
				t.Fatalf("%s: dim=%d want %d", p.Name, len(v), p.Dim)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(NUSWide, 50, 7)
	b := Generate(NUSWide, 50, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	c := Generate(NUSWide, 50, 8)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateRanges(t *testing.T) {
	vs := Generate(Flickr, 300, 2)
	for _, v := range vs {
		for _, x := range v {
			if x < 0 || x > 1 {
				t.Fatalf("feature out of [0,1]: %v", x)
			}
		}
	}
}

func TestSimplexSumsToOne(t *testing.T) {
	vs := Generate(DBPedia, 100, 3)
	for _, v := range vs {
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative topic weight %v", x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("topic weights sum to %v", sum)
		}
	}
}

func TestGenerateSkew(t *testing.T) {
	// With Zipf weights the most popular cluster should dominate: check
	// that the data is not uniformly spread by measuring distances to the
	// densest point's neighborhood. Cheap proxy: there are repeated
	// near-identical regions. We simply check variance is nonzero and
	// distribution is clustered (mean nearest-neighbor distance much
	// smaller than mean pairwise distance).
	vs := Generate(NUSWide, 200, 4)
	nn := 0.0
	pair := 0.0
	np := 0
	for i := 0; i < 50; i++ {
		best := math.Inf(1)
		for j := range vs {
			if i == j {
				continue
			}
			d := vs[i].Dist(vs[j])
			if d < best {
				best = d
			}
			if j > i {
				pair += d
				np++
			}
		}
		nn += best
	}
	nn /= 50
	pair /= float64(np)
	if nn > pair*0.8 {
		t.Errorf("data not clustered: mean NN %v vs mean pair %v", nn, pair)
	}
}

func TestScaleUp(t *testing.T) {
	base := Generate(NUSWide, 40, 5)
	for _, s := range []int{1, 2, 5} {
		scaled := ScaleUp(base, s)
		if len(scaled) != 40*s {
			t.Fatalf("scale %d: n=%d", s, len(scaled))
		}
		// The first generation is the original data.
		for i := range base {
			if scaled[i].Dist(base[i]) != 0 {
				t.Fatal("scaleup must preserve original tuples")
			}
		}
		// Values stay within the original per-dimension range.
		for j := 0; j < len(base[0]); j++ {
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, v := range base {
				mn = math.Min(mn, v[j])
				mx = math.Max(mx, v[j])
			}
			for _, v := range scaled {
				if v[j] < mn-1e-12 || v[j] > mx+1e-12 {
					t.Fatalf("scaled value %v outside [%v,%v]", v[j], mn, mx)
				}
			}
		}
	}
}

func TestSuccessor(t *testing.T) {
	sorted := []float64{1, 2, 2, 3}
	if got := successor(sorted, 1); got != 2 {
		t.Errorf("succ(1)=%v", got)
	}
	if got := successor(sorted, 2); got != 3 {
		t.Errorf("succ(2)=%v", got)
	}
	if got := successor(sorted, 3); got != 3 {
		t.Errorf("succ(3)=%v (max maps to itself)", got)
	}
	if got := successor(sorted, 0.5); got != 1 {
		t.Errorf("succ(0.5)=%v", got)
	}
}

func TestReservoir(t *testing.T) {
	data := Generate(NUSWide, 100, 6)
	s := Reservoir(data, 10, 1)
	if len(s) != 10 {
		t.Fatalf("sample size %d", len(s))
	}
	// Every sampled vector must come from the data.
	for _, v := range s {
		found := false
		for _, d := range data {
			if v.Dist(d) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("sample contains foreign vector")
		}
	}
	// k >= n returns everything.
	all := Reservoir(data, 200, 1)
	if len(all) != 100 {
		t.Fatalf("oversized sample returned %d", len(all))
	}
	// Deterministic per seed.
	s2 := Reservoir(data, 10, 1)
	for i := range s {
		if s[i].Dist(s2[i]) != 0 {
			t.Fatal("reservoir not deterministic")
		}
	}
}

// TestReservoirUniformity: over many seeds, each element should be sampled
// with roughly equal frequency.
func TestReservoirUniformity(t *testing.T) {
	n, k, trials := 20, 5, 2000
	data := make([]vector.Vec, n)
	for i := range data {
		data[i] = vector.Vec{float64(i)}
	}
	counts := make([]int, n)
	for seed := 0; seed < trials; seed++ {
		for _, v := range Reservoir(data, k, int64(seed)) {
			counts[int(v[0])]++
		}
	}
	want := float64(trials*k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Errorf("element %d sampled %d times, want ~%v", i, c, want)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("Flickr")
	if err != nil || p.Dim != 512 {
		t.Fatalf("p=%+v err=%v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

// TestZipfWeightsShape pins the exported popularity distribution: weights
// are normalized, strictly decreasing for positive skew, uniform at skew 0,
// and steeper skew concentrates more mass on the head — the properties the
// load harness's hit-rate math rests on.
func TestZipfWeightsShape(t *testing.T) {
	w := ZipfWeights(100, 1.1)
	sum := 0.0
	for i, x := range w {
		sum += x
		if i > 0 && x >= w[i-1] {
			t.Fatalf("weight %d = %g not below its predecessor %g", i, x, w[i-1])
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %g, want 1", sum)
	}
	u := ZipfWeights(10, 0)
	for i, x := range u {
		if math.Abs(x-0.1) > 1e-12 {
			t.Fatalf("skew 0 weight %d = %g, want uniform 0.1", i, x)
		}
	}
	head := func(w []float64) float64 { return w[0] + w[1] + w[2] }
	if head(ZipfWeights(100, 1.5)) <= head(ZipfWeights(100, 0.5)) {
		t.Fatal("steeper skew did not concentrate mass on the head")
	}
}
