// Package dfs is a minimal in-memory distributed-filesystem model with the
// two properties the reproduction needs from HDFS: named immutable blobs
// and byte-level I/O accounting. The MapReduce pipelines use it the way the
// paper's jobs use the real DFS — reducers persist their serialized local
// HA-Indexes, the merge phase reads them back — so the index wire codec is
// exercised on the exact path a cluster deployment would take, and the
// DFS read/write volumes become measurable alongside shuffle and broadcast.
package dfs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// FS is one simulated filesystem instance. The zero value is not usable;
// call New.
type FS struct {
	mu    sync.Mutex
	files map[string][]byte
	// Replication is the block replication factor charged on writes
	// (HDFS default 3). Reads are charged once.
	replication int

	written int64
	read    int64
}

// New returns an empty filesystem with the given replication factor
// (0 selects HDFS's default of 3).
func New(replication int) *FS {
	if replication <= 0 {
		replication = 3
	}
	return &FS{files: make(map[string][]byte), replication: replication}
}

// Create returns a writer for a new file. The file becomes visible when the
// writer is closed; creating an existing path fails at Close (immutable
// write-once files, as in HDFS).
func (fs *FS) Create(path string) io.WriteCloser {
	return &fileWriter{fs: fs, path: path}
}

// CreateIdempotent is Create for task outputs that may be re-executed: if
// the path already holds byte-identical content, Close succeeds without
// charging any write volume (the re-executed or speculative attempt commits
// what is already there); differing content still fails, preserving the
// write-once immutability. This is the commit discipline the failure-aware
// MapReduce runtime requires of task side effects.
func (fs *FS) CreateIdempotent(path string) io.WriteCloser {
	return &fileWriter{fs: fs, path: path, idempotent: true}
}

type fileWriter struct {
	fs         *FS
	path       string
	buf        bytes.Buffer
	done       bool
	idempotent bool
}

func (w *fileWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("dfs: write to closed file %q", w.path)
	}
	return w.buf.Write(p)
}

func (w *fileWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if prev, exists := w.fs.files[w.path]; exists {
		if w.idempotent && bytes.Equal(prev, w.buf.Bytes()) {
			return nil
		}
		return fmt.Errorf("dfs: file %q already exists", w.path)
	}
	data := append([]byte(nil), w.buf.Bytes()...)
	w.fs.files[w.path] = data
	w.fs.written += int64(len(data)) * int64(w.fs.replication)
	return nil
}

// WriteFile stores data at path in one call.
func (fs *FS) WriteFile(path string, data []byte) error {
	w := fs.Create(path)
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// Open returns a reader over an existing file.
func (fs *FS) Open(path string) (io.Reader, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", path)
	}
	fs.read += int64(len(data))
	return bytes.NewReader(data), nil
}

// ReadFile returns a file's contents.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

// List returns the paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns a file's length in bytes, or an error if absent.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: file %q not found", path)
	}
	return int64(len(data)), nil
}

// Remove deletes a file; removing a missing file is an error.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("dfs: file %q not found", path)
	}
	delete(fs.files, path)
	return nil
}

// BytesWritten returns the cumulative write volume including replication.
func (fs *FS) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.written
}

// BytesRead returns the cumulative read volume.
func (fs *FS) BytesRead() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.read
}
