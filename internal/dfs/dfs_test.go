package dfs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(3)
	if err := fs.WriteFile("/idx/part-0", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/idx/part-0")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q err %v", got, err)
	}
	if fs.BytesWritten() != 15 { // 5 bytes × replication 3
		t.Fatalf("written = %d", fs.BytesWritten())
	}
	if fs.BytesRead() != 5 {
		t.Fatalf("read = %d", fs.BytesRead())
	}
	if sz, err := fs.Size("/idx/part-0"); err != nil || sz != 5 {
		t.Fatalf("size = %d err %v", sz, err)
	}
}

func TestWriteOnce(t *testing.T) {
	fs := New(1)
	if err := fs.WriteFile("/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a", []byte("y")); err == nil {
		t.Fatal("overwrite must fail")
	}
	// Streaming writer semantics: invisible before close.
	w := fs.Create("/b")
	if _, err := w.Write([]byte("zz")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/b"); err == nil {
		t.Fatal("file visible before close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/b"); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op; write-after-close fails.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("q")); err == nil {
		t.Fatal("write after close must fail")
	}
}

func TestListAndRemove(t *testing.T) {
	fs := New(1)
	for i := 0; i < 5; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/idx/part-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	fs.WriteFile("/other", []byte("x"))
	got := fs.List("/idx/")
	if len(got) != 5 || got[0] != "/idx/part-0" || got[4] != "/idx/part-4" {
		t.Fatalf("list = %v", got)
	}
	if err := fs.Remove("/idx/part-2"); err != nil {
		t.Fatal(err)
	}
	if len(fs.List("/idx/")) != 4 {
		t.Fatal("remove did not take")
	}
	if err := fs.Remove("/idx/part-2"); err == nil {
		t.Fatal("double remove must fail")
	}
	if _, err := fs.Open("/missing"); err == nil {
		t.Fatal("open missing must fail")
	}
	if _, err := fs.Size("/missing"); err == nil {
		t.Fatal("size missing must fail")
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := New(1)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fs.WriteFile(fmt.Sprintf("/p/%d", i), make([]byte, 100)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if len(fs.List("/p/")) != 16 {
		t.Fatal("missing files after concurrent writes")
	}
	if fs.BytesWritten() != 1600 {
		t.Fatalf("written = %d", fs.BytesWritten())
	}
}

func TestOpenIsSnapshot(t *testing.T) {
	fs := New(1)
	fs.WriteFile("/f", []byte("abc"))
	r, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	fs.Remove("/f")
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "abc" {
		t.Fatal("reader must survive removal")
	}
}

func TestCreateIdempotent(t *testing.T) {
	fs := New(3)
	if err := fs.WriteFile("/job/part-0", []byte("local-index")); err != nil {
		t.Fatal(err)
	}
	charged := fs.BytesWritten()

	// A re-executed task attempt committing identical bytes succeeds and
	// charges nothing.
	w := fs.CreateIdempotent("/job/part-0")
	if _, err := w.Write([]byte("local-index")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("idempotent rewrite failed: %v", err)
	}
	if fs.BytesWritten() != charged {
		t.Fatalf("idempotent rewrite charged bytes: %d vs %d", fs.BytesWritten(), charged)
	}
	if got, _ := fs.ReadFile("/job/part-0"); string(got) != "local-index" {
		t.Fatalf("content changed: %q", got)
	}

	// Divergent content still violates write-once immutability.
	w = fs.CreateIdempotent("/job/part-0")
	if _, err := w.Write([]byte("DIFFERENT")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("divergent rewrite must fail")
	}

	// Plain Create stays strict even against identical content.
	w = fs.Create("/job/part-0")
	if _, err := w.Write([]byte("local-index")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("plain Create must reject existing paths")
	}

	// First-time idempotent writes behave like Create.
	if err := func() error {
		w := fs.CreateIdempotent("/job/part-1")
		if _, err := w.Write([]byte("x")); err != nil {
			return err
		}
		return w.Close()
	}(); err != nil {
		t.Fatal(err)
	}
	if fs.BytesWritten() != charged+3 {
		t.Fatalf("first idempotent write charged %d, want %d", fs.BytesWritten()-charged, 3)
	}
}

func TestConcurrentIdempotentWriters(t *testing.T) {
	// Speculative duplicate attempts commit the same part file concurrently.
	fs := New(1)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := fs.CreateIdempotent("/spec/part-7")
			if _, err := w.Write([]byte("payload")); err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if fs.BytesWritten() != int64(len("payload")) {
		t.Fatalf("charged %d, want one write", fs.BytesWritten())
	}
}
