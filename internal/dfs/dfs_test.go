package dfs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(3)
	if err := fs.WriteFile("/idx/part-0", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/idx/part-0")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q err %v", got, err)
	}
	if fs.BytesWritten() != 15 { // 5 bytes × replication 3
		t.Fatalf("written = %d", fs.BytesWritten())
	}
	if fs.BytesRead() != 5 {
		t.Fatalf("read = %d", fs.BytesRead())
	}
	if sz, err := fs.Size("/idx/part-0"); err != nil || sz != 5 {
		t.Fatalf("size = %d err %v", sz, err)
	}
}

func TestWriteOnce(t *testing.T) {
	fs := New(1)
	if err := fs.WriteFile("/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a", []byte("y")); err == nil {
		t.Fatal("overwrite must fail")
	}
	// Streaming writer semantics: invisible before close.
	w := fs.Create("/b")
	if _, err := w.Write([]byte("zz")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/b"); err == nil {
		t.Fatal("file visible before close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/b"); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op; write-after-close fails.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("q")); err == nil {
		t.Fatal("write after close must fail")
	}
}

func TestListAndRemove(t *testing.T) {
	fs := New(1)
	for i := 0; i < 5; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/idx/part-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	fs.WriteFile("/other", []byte("x"))
	got := fs.List("/idx/")
	if len(got) != 5 || got[0] != "/idx/part-0" || got[4] != "/idx/part-4" {
		t.Fatalf("list = %v", got)
	}
	if err := fs.Remove("/idx/part-2"); err != nil {
		t.Fatal(err)
	}
	if len(fs.List("/idx/")) != 4 {
		t.Fatal("remove did not take")
	}
	if err := fs.Remove("/idx/part-2"); err == nil {
		t.Fatal("double remove must fail")
	}
	if _, err := fs.Open("/missing"); err == nil {
		t.Fatal("open missing must fail")
	}
	if _, err := fs.Size("/missing"); err == nil {
		t.Fatal("size missing must fail")
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := New(1)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fs.WriteFile(fmt.Sprintf("/p/%d", i), make([]byte, 100)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if len(fs.List("/p/")) != 16 {
		t.Fatal("missing files after concurrent writes")
	}
	if fs.BytesWritten() != 1600 {
		t.Fatalf("written = %d", fs.BytesWritten())
	}
}

func TestOpenIsSnapshot(t *testing.T) {
	fs := New(1)
	fs.WriteFile("/f", []byte("abc"))
	r, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	fs.Remove("/f")
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "abc" {
		t.Fatal("reader must survive removal")
	}
}
