package gray

import (
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
)

func BenchmarkRank(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cs := make([]bitvec.Code, 1024)
	for i := range cs {
		cs[i] = bitvec.Rand(rng, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rank(cs[i%1024])
	}
}

func BenchmarkCompare(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cs := make([]bitvec.Code, 1024)
	for i := range cs {
		cs[i] = bitvec.Rand(rng, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(cs[i%1024], cs[(i+1)%1024])
	}
}

func BenchmarkSort10k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	base := make([]bitvec.Code, 10000)
	for i := range base {
		base[i] = bitvec.Rand(rng, 32)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := make([]bitvec.Code, len(base))
		copy(cs, base)
		Sort(cs, nil)
	}
}
