// Package gray implements binary-reflected Gray codes over fixed-length
// binary codes of arbitrary width.
//
// Definition 5 of the paper orders binary codes by their position in the
// reflected Gray sequence: consecutive codewords in that sequence differ in
// exactly one bit, so sorting a dataset's codes by Gray rank clusters codes
// with small mutual Hamming distance (Proposition 2), which is what makes the
// sliding-window FLSSeq extraction of H-Build productive.
package gray

import (
	"math/bits"
	"sort"

	"haindex/internal/bitvec"
)

// Rank interprets code g as a reflected-Gray codeword and returns its rank in
// the Gray sequence as a binary code of the same width: the inverse Gray
// transform b[i] = g[0] XOR ... XOR g[i] (prefix parity, bit 0 leftmost).
func Rank(g bitvec.Code) bitvec.Code {
	out := bitvec.New(g.Len())
	gw := g.Words()
	ow := out.Words()
	carry := uint64(0) // 0 or all-ones: parity of all bits above this word
	for i, w := range gw {
		// In-word prefix XOR from the MSB down.
		x := w
		x ^= x >> 1
		x ^= x >> 2
		x ^= x >> 4
		x ^= x >> 8
		x ^= x >> 16
		x ^= x >> 32
		x ^= carry
		ow[i] = x
		if x&1 != 0 {
			carry = ^uint64(0)
		} else {
			carry = 0
		}
	}
	// Unused tail bits of g are zero, so the tail of the rank is a constant
	// run equal to the last meaningful parity; clear it for canonical form.
	clearTail(out)
	return out
}

// FromRank is the inverse of Rank: it returns the Gray codeword at binary
// rank b, using g[i] = b[i] XOR b[i-1] with b[-1] = 0.
func FromRank(b bitvec.Code) bitvec.Code {
	out := bitvec.New(b.Len())
	bw := b.Words()
	ow := out.Words()
	prev := uint64(0) // b's bit immediately above the current word (0 or 1)
	for i, w := range bw {
		ow[i] = w ^ (w >> 1) ^ (prev << 63)
		prev = w & 1
	}
	clearTail(out)
	return out
}

func clearTail(c bitvec.Code) {
	if r := uint(c.Len() % 64); r != 0 {
		w := c.Words()
		w[len(w)-1] &= ^uint64(0) << (64 - r)
	}
}

// Compare orders two equal-length codes by Gray rank without materializing
// the ranks. The Gray rank order at the first differing bit position depends
// on the parity of the shared prefix: even parity preserves bit order, odd
// parity reverses it.
func Compare(a, b bitvec.Code) int {
	aw, bw := a.Words(), b.Words()
	parity := 0
	for i := range aw {
		x := aw[i] ^ bw[i]
		if x == 0 {
			parity ^= bits.OnesCount64(aw[i]) & 1
			continue
		}
		lead := bits.LeadingZeros64(x)
		// Parity of the shared prefix: previous words plus this word's bits
		// above the first difference.
		p := parity ^ (bits.OnesCount64(aw[i]>>(64-uint(lead))<<(64-uint(lead))) & 1)
		aBit := aw[i]>>(63-uint(lead))&1 == 1
		less := !aBit // even prefix parity: 0 ranks before 1
		if p == 1 {
			less = aBit
		}
		if less {
			return -1
		}
		return 1
	}
	return 0
}

// Sort sorts codes in nondecreasing Gray-rank order in place, carrying along
// the parallel ids slice when it is non-nil. Ranks are precomputed so the
// sort costs O(nL) transform work plus O(n log n) word comparisons.
func Sort(codes []bitvec.Code, ids []int) {
	if ids != nil && len(ids) != len(codes) {
		panic("gray: ids length mismatch")
	}
	ranks := make([]bitvec.Code, len(codes))
	for i, c := range codes {
		ranks[i] = Rank(c)
	}
	idx := make([]int, len(codes))
	for i := range idx {
		idx[i] = i
	}
	// Unstable sort: equal ranks mean identical codes, so any relative
	// order of ties is acceptable and pattern-defeating quicksort is much
	// faster than the stable merge.
	sort.Slice(idx, func(i, j int) bool {
		return ranks[idx[i]].Compare(ranks[idx[j]]) < 0
	})
	permute(codes, idx)
	if ids != nil {
		permuteInts(ids, idx)
	}
}

func permute(s []bitvec.Code, idx []int) {
	out := make([]bitvec.Code, len(s))
	for i, j := range idx {
		out[i] = s[j]
	}
	copy(s, out)
}

func permuteInts(s []int, idx []int) {
	out := make([]int, len(s))
	for i, j := range idx {
		out[i] = s[j]
	}
	copy(s, out)
}

// IsSorted reports whether codes are in nondecreasing Gray-rank order.
func IsSorted(codes []bitvec.Code) bool {
	for i := 1; i < len(codes); i++ {
		if Compare(codes[i-1], codes[i]) > 0 {
			return false
		}
	}
	return true
}
