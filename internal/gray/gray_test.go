package gray

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"haindex/internal/bitvec"
)

func TestRankSmall(t *testing.T) {
	// Classic 3-bit reflected Gray sequence: 000,001,011,010,110,111,101,100.
	seq := []string{"000", "001", "011", "010", "110", "111", "101", "100"}
	for rank, s := range seq {
		g := bitvec.MustFromString(s)
		r := Rank(g)
		if got := int(r.Uint64()); got != rank {
			t.Errorf("Rank(%s) = %d, want %d", s, got, rank)
		}
		if back := FromRank(r); !back.Equal(g) {
			t.Errorf("FromRank(Rank(%s)) = %s", s, back.String())
		}
	}
}

func TestRankRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		g := bitvec.Rand(rng, n)
		return FromRank(Rank(g)).Equal(g) && Rank(FromRank(g)).Equal(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAdjacencyProperty verifies Definition 5: consecutive ranks map to
// codewords at Hamming distance exactly 1, including across word boundaries.
func TestAdjacencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		n := 2 + rng.Intn(200)
		r := bitvec.Rand(rng, n)
		// next rank = r + 1 (big-endian increment); skip all-ones.
		next := increment(r)
		if next.IsZero() {
			continue
		}
		a, b := FromRank(r), FromRank(next)
		if d := a.Distance(b); d != 1 {
			t.Fatalf("adjacent gray codes at distance %d (n=%d rank=%s)", d, n, r.String())
		}
	}
}

// increment adds one to a big-endian code; returns zero value on overflow.
func increment(c bitvec.Code) bitvec.Code {
	out := c.Clone()
	for i := c.Len() - 1; i >= 0; i-- {
		if !out.Bit(i) {
			out.SetBit(i, true)
			return out
		}
		out.SetBit(i, false)
	}
	return bitvec.Code{}
}

func TestCompareAgainstRanks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := bitvec.Rand(rng, n), bitvec.Rand(rng, n)
		want := Rank(a).Compare(Rank(b))
		return Compare(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompareReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 100; i++ {
		c := bitvec.Rand(rng, 1+rng.Intn(100))
		if Compare(c, c) != 0 {
			t.Fatal("Compare(c,c) != 0")
		}
	}
}

func TestSort(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(100)
		count := 1 + rng.Intn(200)
		codes := make([]bitvec.Code, count)
		ids := make([]int, count)
		for i := range codes {
			codes[i] = bitvec.Rand(rng, n)
			ids[i] = i
		}
		orig := make([]bitvec.Code, count)
		copy(orig, codes)
		Sort(codes, ids)
		if !IsSorted(codes) {
			t.Fatal("not gray-sorted")
		}
		// ids permuted consistently with codes.
		for i, id := range ids {
			if !codes[i].Equal(orig[id]) {
				t.Fatal("ids not permuted consistently")
			}
		}
	}
}

// TestSortClusters checks Proposition 2 qualitatively: after Gray sorting,
// the average adjacent-pair Hamming distance is no worse than under
// lexicographic sorting, and strictly better than random order on clustered
// data.
func TestSortClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 64
	var codes []bitvec.Code
	for c := 0; c < 8; c++ {
		center := bitvec.Rand(rng, n)
		for i := 0; i < 50; i++ {
			v := center.Clone()
			for f := 0; f < 3; f++ {
				v.FlipBit(rng.Intn(n))
			}
			codes = append(codes, v)
		}
	}
	adjSum := func(cs []bitvec.Code) int {
		s := 0
		for i := 1; i < len(cs); i++ {
			s += cs[i-1].Distance(cs[i])
		}
		return s
	}
	shuffled := make([]bitvec.Code, len(codes))
	copy(shuffled, codes)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	randomSum := adjSum(shuffled)

	graySorted := make([]bitvec.Code, len(codes))
	copy(graySorted, codes)
	Sort(graySorted, nil)
	graySum := adjSum(graySorted)

	lexSorted := make([]bitvec.Code, len(codes))
	copy(lexSorted, codes)
	sort.Slice(lexSorted, func(i, j int) bool { return lexSorted[i].Compare(lexSorted[j]) < 0 })
	lexSum := adjSum(lexSorted)

	if graySum >= randomSum {
		t.Errorf("gray order (%d) should cluster better than random (%d)", graySum, randomSum)
	}
	if graySum > lexSum {
		t.Errorf("gray order (%d) should be no worse than lexicographic (%d)", graySum, lexSum)
	}
}

func TestPaperSortExample(t *testing.T) {
	// Table 2a codes; the paper sorts them into {t0,t1,t2,t7,t4,t6,t3,t5}
	// "based on the Gray order ... in descending order". Verify that our
	// ordering is a valid Gray ordering (monotone ranks) over those codes
	// and that t2,t7 — the pair the paper highlights — end up adjacent.
	codes := []bitvec.Code{
		bitvec.MustFromString("001001010"), // t0
		bitvec.MustFromString("001011101"), // t1
		bitvec.MustFromString("011001100"), // t2
		bitvec.MustFromString("101001010"), // t3
		bitvec.MustFromString("101110110"), // t4
		bitvec.MustFromString("101011101"), // t5
		bitvec.MustFromString("101101010"), // t6
		bitvec.MustFromString("111001100"), // t7
	}
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Sort(codes, ids)
	if !IsSorted(codes) {
		t.Fatal("not sorted")
	}
	pos := make(map[int]int)
	for i, id := range ids {
		pos[id] = i
	}
	if d := pos[2] - pos[7]; d != 1 && d != -1 {
		t.Errorf("t2 and t7 should be adjacent in Gray order, positions %d and %d", pos[2], pos[7])
	}
}
