// Package hash implements the similarity hash functions that map
// d-dimensional feature vectors to fixed-length binary codes, the
// preprocessing step every Hamming-distance query in the paper assumes.
//
// Two families are provided: Spectral Hashing (Weiss, Torralba, Fergus,
// NIPS'08) — the data-dependent, learned function the paper uses in all
// experiments — and SimHash (Charikar, STOC'02) random-hyperplane hashing,
// the data-independent function used by near-duplicate detection systems
// such as Manku et al.'s web crawler.
package hash

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"haindex/internal/bitvec"
	"haindex/internal/vector"
)

// Func maps feature vectors to binary codes of a fixed length. A Func learned
// from a sample of one dataset must be applied to every tuple of both join
// sides so their codes are comparable.
type Func interface {
	// Hash maps one vector to its binary code.
	Hash(v vector.Vec) bitvec.Code
	// Bits returns the code length L.
	Bits() int
	// Dim returns the input dimensionality d.
	Dim() int
}

// HashAll maps a batch of vectors through f.
func HashAll(f Func, vs []vector.Vec) []bitvec.Code {
	out := make([]bitvec.Code, len(vs))
	for i, v := range vs {
		out[i] = f.Hash(v)
	}
	return out
}

// Spectral is a learned spectral-hashing function. Learning fits PCA to a
// sample, then selects the bits analytical eigenfunctions with the smallest
// eigenvalues across the principal directions; each output bit thresholds a
// sinusoidal eigenfunction of one principal projection.
type Spectral struct {
	mean vector.Vec
	proj *vector.Mat // nPC×d principal directions (rows)
	bits []spectralBit
	dim  int
}

type spectralBit struct {
	pc    int     // principal component index
	omega float64 // angular frequency kπ/(mx-mn)
	mn    float64 // lower end of the projected range
}

// LearnSpectral learns a bits-bit spectral hash function from a sample of the
// dataset. The number of principal components used is min(bits, d). It
// returns an error when the sample is too small to estimate a covariance.
func LearnSpectral(sample []vector.Vec, bits int) (*Spectral, error) {
	if len(sample) < 2 {
		return nil, fmt.Errorf("hash: spectral learning needs >= 2 samples, got %d", len(sample))
	}
	if bits <= 0 {
		return nil, fmt.Errorf("hash: invalid code length %d", bits)
	}
	d := len(sample[0])
	npc := bits
	if npc > d {
		npc = d
	}
	mean, proj := vector.PCATopK(sample, npc, 100)

	// Projected ranges per principal direction.
	mn := make([]float64, npc)
	mx := make([]float64, npc)
	for i := range mn {
		mn[i] = math.Inf(1)
		mx[i] = math.Inf(-1)
	}
	for _, v := range sample {
		c := v.Sub(mean)
		for i := 0; i < npc; i++ {
			p := vector.Vec(proj.Row(i)).Dot(c)
			if p < mn[i] {
				mn[i] = p
			}
			if p > mx[i] {
				mx[i] = p
			}
		}
	}

	// Candidate eigenfunctions (pc, mode k) with analytical eigenvalue
	// proportional to (k/(mx-mn))²; keep the bits smallest.
	type cand struct {
		pc  int
		k   int
		val float64
	}
	maxMode := bits + 1
	cands := make([]cand, 0, npc*maxMode)
	for i := 0; i < npc; i++ {
		r := mx[i] - mn[i]
		if r <= 0 || math.IsInf(r, 0) {
			// Degenerate direction (constant projection): unusable.
			continue
		}
		for k := 1; k <= maxMode; k++ {
			f := float64(k) / r
			cands = append(cands, cand{pc: i, k: k, val: f * f})
		}
	}
	if len(cands) < bits {
		return nil, fmt.Errorf("hash: sample too degenerate for %d bits (%d usable eigenfunctions)", bits, len(cands))
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].val != cands[b].val {
			return cands[a].val < cands[b].val
		}
		if cands[a].pc != cands[b].pc {
			return cands[a].pc < cands[b].pc
		}
		return cands[a].k < cands[b].k
	})
	sb := make([]spectralBit, bits)
	for j := 0; j < bits; j++ {
		c := cands[j]
		sb[j] = spectralBit{
			pc:    c.pc,
			omega: float64(c.k) * math.Pi / (mx[c.pc] - mn[c.pc]),
			mn:    mn[c.pc],
		}
	}
	return &Spectral{mean: mean, proj: proj, bits: sb, dim: d}, nil
}

// Hash maps v to its spectral binary code. Bit j is the sign of the
// eigenfunction sin(π/2 + ω(p - mn)) evaluated at v's projection p on bit
// j's principal direction.
func (s *Spectral) Hash(v vector.Vec) bitvec.Code {
	if len(v) != s.dim {
		panic(fmt.Sprintf("hash: spectral hash of %d-d vector, learned on %d-d", len(v), s.dim))
	}
	c := v.Sub(s.mean)
	nproj := s.proj.Rows
	ps := make([]float64, nproj)
	for i := 0; i < nproj; i++ {
		ps[i] = vector.Vec(s.proj.Row(i)).Dot(c)
	}
	code := bitvec.New(len(s.bits))
	for j, b := range s.bits {
		y := math.Sin(math.Pi/2 + b.omega*(ps[b.pc]-b.mn))
		if y > 0 {
			code.SetBit(j, true)
		}
	}
	return code
}

// Bits returns the code length.
func (s *Spectral) Bits() int { return len(s.bits) }

// Dim returns the input dimensionality.
func (s *Spectral) Dim() int { return s.dim }

// SimHash is Charikar's random-hyperplane hash: bit j is the sign of the
// inner product with a fixed random Gaussian direction. It is
// data-independent; two vectors' codes collide on a bit with probability
// 1 - angle/π.
type SimHash struct {
	planes []vector.Vec
	dim    int
}

// NewSimHash returns a bits-bit SimHash over d-dimensional inputs with
// hyperplanes drawn deterministically from seed.
func NewSimHash(d, bits int, seed int64) *SimHash {
	if d <= 0 || bits <= 0 {
		panic(fmt.Sprintf("hash: invalid SimHash dims d=%d bits=%d", d, bits))
	}
	rng := rand.New(rand.NewSource(seed))
	planes := make([]vector.Vec, bits)
	for j := range planes {
		p := make(vector.Vec, d)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		planes[j] = p
	}
	return &SimHash{planes: planes, dim: d}
}

// Hash maps v to its SimHash code.
func (s *SimHash) Hash(v vector.Vec) bitvec.Code {
	if len(v) != s.dim {
		panic(fmt.Sprintf("hash: simhash of %d-d vector, constructed for %d-d", len(v), s.dim))
	}
	code := bitvec.New(len(s.planes))
	for j, p := range s.planes {
		if p.Dot(v) > 0 {
			code.SetBit(j, true)
		}
	}
	return code
}

// Bits returns the code length.
func (s *SimHash) Bits() int { return len(s.planes) }

// Dim returns the input dimensionality.
func (s *SimHash) Dim() int { return s.dim }
