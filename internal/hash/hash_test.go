package hash

import (
	"math/rand"
	"testing"

	"haindex/internal/vector"
)

func gaussianCluster(rng *rand.Rand, center vector.Vec, spread float64, n int) []vector.Vec {
	out := make([]vector.Vec, n)
	for i := range out {
		v := make(vector.Vec, len(center))
		for j := range v {
			v[j] = center[j] + rng.NormFloat64()*spread
		}
		out[i] = v
	}
	return out
}

func randomCenters(rng *rand.Rand, d, k int) []vector.Vec {
	out := make([]vector.Vec, k)
	for i := range out {
		v := make(vector.Vec, d)
		for j := range v {
			v[j] = rng.Float64() * 4
		}
		out[i] = v
	}
	return out
}

func TestLearnSpectralBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var sample []vector.Vec
	for _, c := range randomCenters(rng, 16, 4) {
		sample = append(sample, gaussianCluster(rng, c, 0.2, 100)...)
	}
	s, err := LearnSpectral(sample, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bits() != 32 || s.Dim() != 16 {
		t.Fatalf("bits=%d dim=%d", s.Bits(), s.Dim())
	}
	// Deterministic.
	c1 := s.Hash(sample[0])
	c2 := s.Hash(sample[0])
	if !c1.Equal(c2) {
		t.Error("hash not deterministic")
	}
	if c1.Len() != 32 {
		t.Errorf("code length %d", c1.Len())
	}
}

func TestLearnSpectralErrors(t *testing.T) {
	if _, err := LearnSpectral(nil, 8); err == nil {
		t.Error("expected error on empty sample")
	}
	if _, err := LearnSpectral([]vector.Vec{{1}, {2}}, 0); err == nil {
		t.Error("expected error on zero bits")
	}
	// All-identical sample: no usable direction.
	same := make([]vector.Vec, 10)
	for i := range same {
		same[i] = vector.Vec{1, 1}
	}
	if _, err := LearnSpectral(same, 8); err == nil {
		t.Error("expected error on degenerate sample")
	}
}

// TestSpectralLocality verifies the similarity-preservation property that
// makes Hamming search meaningful: points in the same cluster get codes
// with smaller Hamming distance than points in different clusters, on
// average.
func TestSpectralLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	centers := randomCenters(rng, 24, 4)
	var sample []vector.Vec
	clusters := make([][]vector.Vec, len(centers))
	for i, c := range centers {
		clusters[i] = gaussianCluster(rng, c, 0.1, 80)
		sample = append(sample, clusters[i]...)
	}
	s, err := LearnSpectral(sample, 32)
	if err != nil {
		t.Fatal(err)
	}
	within, across := 0.0, 0.0
	nw, na := 0, 0
	for ci, cl := range clusters {
		for i := 0; i+1 < len(cl); i += 2 {
			within += float64(s.Hash(cl[i]).Distance(s.Hash(cl[i+1])))
			nw++
		}
		other := clusters[(ci+1)%len(clusters)]
		for i := 0; i < len(cl); i += 4 {
			across += float64(s.Hash(cl[i]).Distance(s.Hash(other[i])))
			na++
		}
	}
	within /= float64(nw)
	across /= float64(na)
	if within >= across {
		t.Errorf("spectral hash not locality preserving: within=%.2f across=%.2f", within, across)
	}
}

func TestSimHashDeterminismAndSeed(t *testing.T) {
	a := NewSimHash(8, 16, 1)
	b := NewSimHash(8, 16, 1)
	c := NewSimHash(8, 16, 2)
	v := vector.Vec{1, -2, 3, -4, 5, -6, 7, -8}
	if !a.Hash(v).Equal(b.Hash(v)) {
		t.Error("same seed must give same codes")
	}
	if a.Hash(v).Equal(c.Hash(v)) {
		t.Error("different seeds should give different codes (overwhelmingly)")
	}
	if a.Bits() != 16 || a.Dim() != 8 {
		t.Errorf("bits=%d dim=%d", a.Bits(), a.Dim())
	}
}

// TestSimHashAngleMonotonicity: closer vectors should collide on more bits.
func TestSimHashAngleMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := NewSimHash(32, 64, 7)
	near, far := 0, 0
	trials := 200
	for i := 0; i < trials; i++ {
		v := make(vector.Vec, 32)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		nearV := v.Clone()
		nearV[0] += 0.1
		farV := make(vector.Vec, 32)
		for j := range farV {
			farV[j] = rng.NormFloat64()
		}
		hv := s.Hash(v)
		near += hv.Distance(s.Hash(nearV))
		far += hv.Distance(s.Hash(farV))
	}
	if near >= far {
		t.Errorf("simhash not angle-monotone: near=%d far=%d", near, far)
	}
}

func TestHashAll(t *testing.T) {
	s := NewSimHash(4, 8, 3)
	vs := []vector.Vec{{1, 2, 3, 4}, {-1, -2, -3, -4}}
	codes := HashAll(s, vs)
	if len(codes) != 2 {
		t.Fatalf("len=%d", len(codes))
	}
	if !codes[0].Equal(s.Hash(vs[0])) {
		t.Error("HashAll mismatch")
	}
}
