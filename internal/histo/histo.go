// Package histo implements the sampling-based partitioning of Section 5.1:
// an equi-depth histogram over the Gray ranks of sampled binary codes yields
// pivot values that split the Gray-ordered code space into partitions of
// approximately equal tuple counts, so reducers receive balanced work even
// on skewed data. Because partitions are contiguous Gray ranges, tuples in
// one partition share FLSSeq patterns, which keeps the per-partition
// HA-Indexes effective.
package histo

import (
	"sort"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
)

// Pivots returns parts-1 pivot codes from an equi-depth histogram over the
// sample: pivot m is the sample code at rank m·|sample|/parts in Gray order.
// Partition m holds the codes c with pivot[m-1] <= c < pivot[m] (Gray
// order). The sample is not modified.
func Pivots(sample []bitvec.Code, parts int) []bitvec.Code {
	if parts <= 1 || len(sample) == 0 {
		return nil
	}
	sorted := make([]bitvec.Code, len(sample))
	copy(sorted, sample)
	gray.Sort(sorted, nil)
	pivots := make([]bitvec.Code, 0, parts-1)
	for m := 1; m < parts; m++ {
		i := m * len(sorted) / parts
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		pivots = append(pivots, sorted[i])
	}
	return pivots
}

// Sample returns at most k codes drawn at a fixed stride across the whole
// slice, so every region of the input contributes — unlike a prefix slice,
// which on row-ordered (clustered) datasets sees only the first cluster and
// yields pivots that dump everything else into the last partition. The
// returned slice aliases the input and must not be mutated.
func Sample(codes []bitvec.Code, k int) []bitvec.Code {
	if k <= 0 || len(codes) <= k {
		return codes
	}
	out := make([]bitvec.Code, 0, k)
	// Pick the middle of each of k equal spans: i = (2j+1)·n/(2k).
	for j := 0; j < k; j++ {
		out = append(out, codes[(2*j+1)*len(codes)/(2*k)])
	}
	return out
}

// UniformPivots splits the whole L-bit Gray rank space into parts equal
// ranges, ignoring the data distribution — the ablation baseline for the
// histogram pivots.
func UniformPivots(length, parts int) []bitvec.Code {
	if parts <= 1 {
		return nil
	}
	pivots := make([]bitvec.Code, 0, parts-1)
	for m := 1; m < parts; m++ {
		// rank = floor(m/parts · 2^length), built bit by bit from the
		// binary expansion of the fraction m/parts.
		rank := bitvec.New(length)
		num := m
		for i := 0; i < length; i++ {
			num *= 2
			if num >= parts {
				rank.SetBit(i, true)
				num -= parts
			}
		}
		pivots = append(pivots, gray.FromRank(rank))
	}
	return pivots
}

// PartitionID returns the partition index of c under the pivots: the number
// of pivots at or before c in Gray order, found by binary search.
func PartitionID(pivots []bitvec.Code, c bitvec.Code) int {
	return sort.Search(len(pivots), func(i int) bool {
		return gray.Compare(pivots[i], c) > 0
	})
}

// Counts tallies how many codes fall into each of len(pivots)+1 partitions —
// the balance diagnostic behind Figure 10a.
func Counts(codes []bitvec.Code, pivots []bitvec.Code) []int {
	out := make([]int, len(pivots)+1)
	for _, c := range codes {
		out[PartitionID(pivots, c)]++
	}
	return out
}

// Imbalance returns max/mean of the partition counts (1.0 = perfectly
// balanced, like mapreduce.Metrics.Skew).
func Imbalance(counts []int) float64 {
	max, sum := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	if sum == 0 {
		return 0
	}
	return float64(max) / (float64(sum) / float64(len(counts)))
}
