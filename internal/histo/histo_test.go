package histo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
)

func clustered(rng *rand.Rand, n, bits, clusters int) []bitvec.Code {
	out := make([]bitvec.Code, 0, n)
	for len(out) < n {
		c := bitvec.Rand(rng, bits)
		for i := 0; i < n/clusters+1 && len(out) < n; i++ {
			v := c.Clone()
			v.FlipBit(rng.Intn(bits))
			out = append(out, v)
		}
	}
	return out
}

func TestPivotsBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	// Heavily skewed codes: all in a few clusters.
	codes := clustered(rng, 4000, 32, 3)
	// Random sample (clustered() emits cluster-by-cluster, so a prefix
	// would all come from one cluster).
	sample := make([]bitvec.Code, 0, 800)
	for _, i := range rng.Perm(len(codes))[:800] {
		sample = append(sample, codes[i])
	}
	pivots := Pivots(sample, 8)
	if len(pivots) != 7 {
		t.Fatalf("pivot count = %d", len(pivots))
	}
	counts := Counts(codes, pivots)
	if got := Imbalance(counts); got > 2.5 {
		t.Errorf("histogram pivots imbalance %.2f on skewed data", got)
	}
	// Uniform pivots on the same skewed data should be far worse.
	uni := UniformPivots(32, 8)
	uniCounts := Counts(codes, uni)
	if Imbalance(uniCounts) <= Imbalance(counts) {
		t.Errorf("uniform pivots (%.2f) should be worse than histogram pivots (%.2f) on skewed data",
			Imbalance(uniCounts), Imbalance(counts))
	}
}

func TestPivotsSortedAndPartitionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	sample := make([]bitvec.Code, 500)
	for i := range sample {
		sample[i] = bitvec.Rand(rng, 24)
	}
	pivots := Pivots(sample, 6)
	for i := 1; i < len(pivots); i++ {
		if gray.Compare(pivots[i-1], pivots[i]) > 0 {
			t.Fatal("pivots not in gray order")
		}
	}
	// Partition ids are monotone in gray order.
	codes := make([]bitvec.Code, 300)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 24)
	}
	gray.Sort(codes, nil)
	prev := 0
	for _, c := range codes {
		pid := PartitionID(pivots, c)
		if pid < prev {
			t.Fatal("partition ids not monotone in gray order")
		}
		if pid < 0 || pid > len(pivots) {
			t.Fatalf("pid out of range: %d", pid)
		}
		prev = pid
	}
}

func TestPartitionIDBoundaries(t *testing.T) {
	// A code equal to a pivot belongs to the partition at or after it.
	p := bitvec.MustFromString("1010")
	pivots := []bitvec.Code{p}
	if got := PartitionID(pivots, p); got != 1 {
		t.Errorf("code equal to pivot -> partition %d, want 1", got)
	}
}

func TestUniformPivots(t *testing.T) {
	pv := UniformPivots(8, 4)
	if len(pv) != 3 {
		t.Fatalf("count=%d", len(pv))
	}
	// Ranks should be at 1/4, 2/4, 3/4 of the 8-bit rank space.
	wantRanks := []uint64{64, 128, 192}
	for i, p := range pv {
		r := gray.Rank(p).Uint64()
		if r != wantRanks[i] {
			t.Errorf("pivot %d rank = %d want %d", i, r, wantRanks[i])
		}
	}
	if UniformPivots(8, 1) != nil {
		t.Error("1 part needs no pivots")
	}
}

func TestPivotsEdgeCases(t *testing.T) {
	if Pivots(nil, 4) != nil {
		t.Error("empty sample gives no pivots")
	}
	one := []bitvec.Code{bitvec.MustFromString("1")}
	if got := Pivots(one, 1); got != nil {
		t.Error("1 part needs no pivots")
	}
	// More parts than samples still yields parts-1 pivots.
	if got := Pivots(one, 4); len(got) != 3 {
		t.Errorf("got %d pivots", len(got))
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int{5, 5, 5, 5}); got != 1 {
		t.Errorf("balanced = %v", got)
	}
	if got := Imbalance([]int{20, 0, 0, 0}); got != 4 {
		t.Errorf("skewed = %v", got)
	}
	if got := Imbalance(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

// Property (testing/quick): every pivot set covers the code space — each
// code lands in exactly one in-range partition, and partition counts sum
// to the input size.
func TestQuickPartitionCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 8 + rng.Intn(56)
		n := 10 + rng.Intn(300)
		parts := 2 + rng.Intn(10)
		codes := make([]bitvec.Code, n)
		for i := range codes {
			codes[i] = bitvec.Rand(rng, bits)
		}
		pivots := Pivots(codes[:1+rng.Intn(n)], parts)
		counts := Counts(codes, pivots)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n && len(counts) == len(pivots)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSampleBeatsPrefixOnClusteredData: on a row-ordered clustered dataset a
// prefix sample sees only the first cluster and its pivots cram every other
// cluster into the last partition; a strided Sample covers all clusters and
// keeps the split balanced. This is the failure mode haidx shard had when it
// sampled codes[:2000].
func TestSampleBeatsPrefixOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	// clustered() emits cluster-by-cluster, so position correlates with
	// cluster membership — exactly the ordering that biases a prefix.
	codes := clustered(rng, 12000, 32, 6)
	const parts, k = 8, 2000

	prefix := Pivots(codes[:k], parts)
	strided := Pivots(Sample(codes, k), parts)

	prefixImb := Imbalance(Counts(codes, prefix))
	stridedImb := Imbalance(Counts(codes, strided))
	if stridedImb > 1.5 {
		t.Errorf("strided-sample pivots imbalance %.2f on clustered data", stridedImb)
	}
	if prefixImb < 2*stridedImb {
		t.Errorf("prefix imbalance %.2f not clearly worse than strided %.2f — test dataset no longer exercises the bias",
			prefixImb, stridedImb)
	}
}

func TestSampleEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	codes := make([]bitvec.Code, 100)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 16)
	}
	if got := Sample(codes, 200); len(got) != 100 {
		t.Errorf("k beyond len returns input, got %d", len(got))
	}
	if got := Sample(codes, 0); len(got) != 100 {
		t.Errorf("k=0 returns input, got %d", len(got))
	}
	got := Sample(codes, 7)
	if len(got) != 7 {
		t.Fatalf("len=%d", len(got))
	}
	// Strides must be spread: first pick in the first span, last in the last.
	if !got[0].Equal(codes[100/14]) || !got[6].Equal(codes[13*100/14]) {
		t.Error("sample picks not at span midpoints")
	}
}
