package histo

import (
	"math/bits"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
)

// Shard routing over Gray-range partitions.
//
// A partition is a contiguous interval of Gray ranks, so every code it can
// contain shares the Gray-code prefix determined by the common binary prefix
// of the interval's rank endpoints: if ranks rlo..rhi agree on their first k
// bits, every rank in between does too, and because Gray bit i depends only
// on rank bits i-1 and i, every code in the partition agrees on its first k
// Gray bits. The Hamming distance from a query q to any code in the
// partition is therefore at least the distance between q's first k bits and
// that shared prefix — a sound lower bound that lets an online router skip
// shards whose Gray range cannot contain a match within threshold h.

// Ranges precomputes, per partition, the shared Gray prefix of the
// partition's rank interval, so routing a query costs one masked popcount
// per partition. Build once per pivot set and share read-only.
type Ranges struct {
	length int
	parts  int
	// empty marks partitions whose rank interval is empty (duplicate or
	// degenerate pivots); they can never contain a code.
	empty []bool
	// prefixLen[m] is the number of leading Gray bits all codes of partition
	// m share; prefixGray[m] carries those bits (its remaining bits are
	// ignored).
	prefixLen  []int
	prefixGray []bitvec.Code
}

// NewRanges builds the routing table for length-bit codes under the pivots
// (the same pivot list Pivots returns and PartitionID consumes).
func NewRanges(length int, pivots []bitvec.Code) *Ranges {
	parts := len(pivots) + 1
	ranks := make([]bitvec.Code, len(pivots))
	for i, p := range pivots {
		ranks[i] = gray.Rank(p)
	}
	r := &Ranges{
		length:     length,
		parts:      parts,
		empty:      make([]bool, parts),
		prefixLen:  make([]int, parts),
		prefixGray: make([]bitvec.Code, parts),
	}
	for m := 0; m < parts; m++ {
		var lo bitvec.Code
		if m == 0 {
			lo = bitvec.New(length)
		} else {
			lo = ranks[m-1]
		}
		var hi bitvec.Code
		if m == parts-1 {
			hi = maxRank(length)
		} else {
			// Codes equal to pivot m belong to partition m+1, so the
			// inclusive upper rank is rank(pivot[m])-1; rank 0 means the
			// pivot is the Gray-minimum code and the partition is empty.
			var ok bool
			hi, ok = decRank(ranks[m])
			if !ok {
				r.empty[m] = true
				continue
			}
		}
		if lo.Compare(hi) > 0 {
			r.empty[m] = true
			continue
		}
		r.prefixLen[m] = commonPrefixLen(lo, hi)
		r.prefixGray[m] = gray.FromRank(lo)
	}
	return r
}

// Parts returns the number of partitions (len(pivots)+1).
func (r *Ranges) Parts() int { return r.parts }

// Empty reports whether partition m's Gray range is empty.
func (r *Ranges) Empty(m int) bool { return r.empty[m] }

// MinDistance returns the lower bound on the Hamming distance from q to any
// code in partition m, or length+1 when the partition is empty.
func (r *Ranges) MinDistance(m int, q bitvec.Code) int {
	if r.empty[m] {
		return r.length + 1
	}
	return prefixDistance(q, r.prefixGray[m], r.prefixLen[m])
}

// Route appends to dst the partitions that can contain a code within Hamming
// distance h of q and returns the extended slice. The partition owning q is
// always included; partitions whose lower bound exceeds h are pruned.
func (r *Ranges) Route(dst []int, q bitvec.Code, h int) []int {
	for m := 0; m < r.parts; m++ {
		if r.empty[m] {
			continue
		}
		if prefixDistance(q, r.prefixGray[m], r.prefixLen[m]) <= h {
			dst = append(dst, m)
		}
	}
	return dst
}

// RouteParts is the convenience form of Ranges.Route for one-off use; a
// serving router should build Ranges once instead.
func RouteParts(pivots []bitvec.Code, q bitvec.Code, h int) []int {
	return NewRanges(q.Len(), pivots).Route(nil, q, h)
}

// maxRank returns the all-ones length-bit rank (the last Gray rank).
func maxRank(length int) bitvec.Code {
	c := bitvec.New(length)
	w := c.Words()
	for i := range w {
		w[i] = ^uint64(0)
	}
	if rem := uint(length % 64); rem != 0 {
		w[len(w)-1] &= ^uint64(0) << (64 - rem)
	}
	return c
}

// decRank returns r-1 for a length-bit rank in the MSB-first bitvec layout;
// ok is false when r is zero (no predecessor).
func decRank(r bitvec.Code) (bitvec.Code, bool) {
	out := r.Clone()
	w := out.Words()
	// Bit length-1 sits above the tail padding of the last word, so the
	// least significant rank bit has weight 1<<shift there.
	shift := uint((64 - r.Len()%64) % 64)
	borrow := uint64(1) << shift
	for i := len(w) - 1; i >= 0; i-- {
		old := w[i]
		w[i] = old - borrow
		if old >= borrow {
			return out, true
		}
		borrow = 1
	}
	return bitvec.Code{}, false
}

// commonPrefixLen returns how many leading bits a and b share.
func commonPrefixLen(a, b bitvec.Code) int {
	aw, bw := a.Words(), b.Words()
	for i := range aw {
		if x := aw[i] ^ bw[i]; x != 0 {
			k := i*64 + bits.LeadingZeros64(x)
			if k > a.Len() {
				k = a.Len()
			}
			return k
		}
	}
	return a.Len()
}

// prefixDistance counts differing bits among the first k bits of a and b.
func prefixDistance(a, b bitvec.Code, k int) int {
	aw, bw := a.Words(), b.Words()
	d := 0
	full := k / 64
	for i := 0; i < full; i++ {
		d += bits.OnesCount64(aw[i] ^ bw[i])
	}
	if rem := uint(k % 64); rem != 0 {
		mask := ^uint64(0) << (64 - rem)
		d += bits.OnesCount64((aw[full] ^ bw[full]) & mask)
	}
	return d
}
