package histo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haindex/internal/bitvec"
	"haindex/internal/gray"
)

// randPivots draws sorted pivots from a random sample, optionally forcing
// duplicates — the shapes Pivots can emit on small or skewed samples.
func randPivots(rng *rand.Rand, bits, parts int, dup bool) []bitvec.Code {
	sample := make([]bitvec.Code, 64)
	for i := range sample {
		sample[i] = bitvec.Rand(rng, bits)
	}
	pivots := Pivots(sample, parts)
	if dup && len(pivots) > 1 {
		pivots[rng.Intn(len(pivots)-1)+1] = pivots[0].Clone()
		gray.Sort(pivots, nil)
	}
	return pivots
}

// TestRouteCoversAllMatches is the routing soundness property: every code
// within Hamming distance h of the query must live in a routed partition.
func TestRouteCoversAllMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 200; trial++ {
		bits := []int{8, 16, 32, 64, 100}[trial%5]
		parts := 1 + rng.Intn(9)
		pivots := randPivots(rng, bits, parts, trial%3 == 0)
		ranges := NewRanges(bits, pivots)
		h := rng.Intn(5)
		q := bitvec.Rand(rng, bits)
		routed := ranges.Route(nil, q, h)
		onRoute := make(map[int]bool, len(routed))
		for _, m := range routed {
			onRoute[m] = true
		}
		// Probe with near codes (guaranteed within h) and random codes.
		for probe := 0; probe < 50; probe++ {
			c := q.Clone()
			for f := 0; f < rng.Intn(h+1); f++ {
				c.FlipBit(rng.Intn(bits))
			}
			if !onRoute[PartitionID(pivots, c)] {
				t.Fatalf("bits=%d parts=%d h=%d: code at distance %d lives in unrouted partition %d (routed %v)",
					bits, parts, h, q.Distance(c), PartitionID(pivots, c), routed)
			}
		}
		for probe := 0; probe < 50; probe++ {
			c := bitvec.Rand(rng, bits)
			if q.Distance(c) <= h && !onRoute[PartitionID(pivots, c)] {
				t.Fatalf("random code within h=%d in unrouted partition %d", h, PartitionID(pivots, c))
			}
		}
	}
}

// TestRouteMinDistanceIsLowerBound checks the per-partition bound against
// the true minimum over sampled members of the partition.
func TestRouteMinDistanceIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	bits := 24
	pivots := randPivots(rng, bits, 6, false)
	ranges := NewRanges(bits, pivots)
	for trial := 0; trial < 2000; trial++ {
		c := bitvec.Rand(rng, bits)
		q := bitvec.Rand(rng, bits)
		m := PartitionID(pivots, c)
		if lb := ranges.MinDistance(m, q); lb > q.Distance(c) {
			t.Fatalf("partition %d: lower bound %d exceeds member distance %d", m, lb, q.Distance(c))
		}
	}
}

// TestRouteEmptyAndDuplicatePivots: duplicate pivots yield provably empty
// partitions that must be pruned, and an empty pivot list routes everything
// to the single partition.
func TestRouteEmptyAndDuplicatePivots(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	q := bitvec.Rand(rng, 16)
	if got := RouteParts(nil, q, 3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("no pivots: routed %v, want [0]", got)
	}
	p := bitvec.Rand(rng, 16)
	dup := []bitvec.Code{p, p.Clone(), p.Clone()}
	ranges := NewRanges(16, dup)
	if !ranges.Empty(1) || !ranges.Empty(2) {
		t.Fatalf("duplicate pivots must make middle partitions empty: %v %v", ranges.Empty(1), ranges.Empty(2))
	}
	routed := ranges.Route(nil, q, 16)
	for _, m := range routed {
		if m == 1 || m == 2 {
			t.Fatalf("routed empty partition %d", m)
		}
	}
	// Even at the maximum threshold every code is still covered.
	for trial := 0; trial < 200; trial++ {
		c := bitvec.Rand(rng, 16)
		id := PartitionID(dup, c)
		found := false
		for _, m := range routed {
			if m == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("code's partition %d missing from %v", id, routed)
		}
	}
}

// TestDecRank: decrement agrees with rank arithmetic via the Gray transform.
func TestDecRank(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	if _, ok := decRank(bitvec.New(20)); ok {
		t.Fatal("rank 0 must have no predecessor")
	}
	for _, bits := range []int{5, 16, 64, 65, 130} {
		for trial := 0; trial < 200; trial++ {
			r := bitvec.Rand(rng, bits)
			if r.OnesCount() == 0 {
				continue
			}
			dec, ok := decRank(r)
			if !ok {
				t.Fatalf("nonzero rank %s reported underflow", r)
			}
			// r-1 and r are adjacent ranks, so their Gray codes differ in
			// exactly one bit and compare in order.
			a, b := gray.FromRank(dec), gray.FromRank(r)
			if d := a.Distance(b); d != 1 {
				t.Fatalf("adjacent ranks differ by %d bits", d)
			}
			if gray.Compare(a, b) >= 0 {
				t.Fatalf("dec rank does not precede in Gray order")
			}
		}
	}
}

// Property tests (testing/quick): Counts always sums to len(codes), and
// PartitionID stays within [0, len(pivots)], across random pivot/code sets
// including empty and duplicate pivot lists.
func TestCountsAndPartitionIDProperties(t *testing.T) {
	type tcase struct {
		Bits   uint8
		Pivots uint8
		Codes  uint8
		Dup    bool
		Seed   int64
	}
	prop := func(tc tcase) bool {
		bits := int(tc.Bits)%100 + 1
		rng := rand.New(rand.NewSource(tc.Seed))
		var pivots []bitvec.Code
		if n := int(tc.Pivots) % 8; n > 0 {
			sample := make([]bitvec.Code, 32)
			for i := range sample {
				sample[i] = bitvec.Rand(rng, bits)
			}
			pivots = Pivots(sample, n+1)
			if tc.Dup && len(pivots) > 1 {
				pivots[len(pivots)-1] = pivots[0].Clone()
				gray.Sort(pivots, nil)
			}
		}
		codes := make([]bitvec.Code, int(tc.Codes))
		for i := range codes {
			codes[i] = bitvec.Rand(rng, bits)
			if id := PartitionID(pivots, codes[i]); id < 0 || id > len(pivots) {
				return false
			}
		}
		counts := Counts(codes, pivots)
		if len(counts) != len(pivots)+1 {
			return false
		}
		sum := 0
		for _, c := range counts {
			sum += c
		}
		return sum == len(codes)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
