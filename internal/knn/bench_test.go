package knn

import (
	"math/rand"
	"testing"

	"haindex/internal/core"
	"haindex/internal/hash"
	"haindex/internal/vector"
)

func benchSetup(b *testing.B) (*HammingKNN, *E2LSH, *LSBTree, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	data := clusteredVecs(rng, 5000, 24, 16, 0.12)
	sh, err := hash.LearnSpectral(data[:800], 32)
	if err != nil {
		b.Fatal(err)
	}
	idx := core.BuildDynamic(hash.HashAll(sh, data), nil, core.Options{})
	h := NewHammingKNN(idx, sh, data)
	lsh := NewE2LSH(data, E2LSHConfig{Tables: 20, Seed: 1})
	lsb := NewLSBTree(data, LSBConfig{Trees: 10, Seed: 1})
	q := make([]int, 64)
	for i := range q {
		q[i] = (i * 73) % len(data)
	}
	benchData = data
	return h, lsh, lsb, q
}

var benchData []vector.Vec

func BenchmarkSelectHammingKNN(b *testing.B) {
	h, _, _, q := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Select(benchData[q[i%len(q)]], 10)
	}
}

func BenchmarkSelectE2LSH(b *testing.B) {
	_, lsh, _, q := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsh.Select(benchData[q[i%len(q)]], 10)
	}
}

func BenchmarkSelectLSBTree(b *testing.B) {
	_, _, lsb, q := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsb.Select(benchData[q[i%len(q)]], 10)
	}
}

func BenchmarkSelectExact(b *testing.B) {
	_, _, _, q := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(benchData, benchData[q[i%len(q)]], 10)
	}
}
