package knn

import (
	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/vector"
)

// HammingSearcher is the Hamming range-query contract the approximate kNN
// driver accepts; both HA-Index variants, the Radix-Tree, and every baseline
// index satisfy it.
type HammingSearcher interface {
	Search(q bitvec.Code, h int) []int
}

// statelessSearcher is the race-free variant exposed by the Dynamic
// HA-Index; when available, concurrent drivers (Join) use it with
// caller-owned statistics.
type statelessSearcher interface {
	SearchInto(q bitvec.Code, h int, stats *core.SearchStats) []int
}

// Hasher maps a feature vector to its binary code (satisfied by hash.Func).
type Hasher interface {
	Hash(v vector.Vec) bitvec.Code
	Bits() int
}

// HammingKNN answers approximate kNN-select queries by Hamming threshold
// escalation (Section 2): the query vector is hashed, a Hamming range query
// runs at a small threshold, and if fewer than k answers are found a larger
// threshold is estimated and the near-neighbor query repeats; the k closest
// answers by true distance are reported.
type HammingKNN struct {
	idx    HammingSearcher
	hasher Hasher
	data   []vector.Vec
	// InitialH is the first Hamming threshold tried (default 1);
	// thresholds escalate by doubling (h -> 2h+1).
	InitialH int
}

// NewHammingKNN wires an index over the codes of data to the original
// vectors for exact re-ranking.
func NewHammingKNN(idx HammingSearcher, hasher Hasher, data []vector.Vec) *HammingKNN {
	return &HammingKNN{idx: idx, hasher: hasher, data: data, InitialH: 1}
}

// Select returns the approximate k nearest neighbors of q.
func (a *HammingKNN) Select(q vector.Vec, k int) []Neighbor {
	return a.selectWith(q, k, a.idx.Search)
}

// selectConcurrent is Select for use from multiple goroutines; it requires
// the index to expose the stateless search and falls back to the plain
// (unsynchronized) path otherwise.
func (a *HammingKNN) selectConcurrent(q vector.Vec, k int, stats *core.SearchStats) []Neighbor {
	if ss, ok := a.idx.(statelessSearcher); ok {
		return a.selectWith(q, k, func(c bitvec.Code, h int) []int {
			return ss.SearchInto(c, h, stats)
		})
	}
	return a.Select(q, k)
}

func (a *HammingKNN) selectWith(q vector.Vec, k int, search func(bitvec.Code, int) []int) []Neighbor {
	code := a.hasher.Hash(q)
	h := a.InitialH
	if h < 0 {
		h = 1
	}
	maxH := a.hasher.Bits()
	for {
		ids := search(code, h)
		if len(ids) >= k || h >= maxH {
			return ExactSubset(a.data, ids, q, k)
		}
		h = h*2 + 1
		if h > maxH {
			h = maxH
		}
	}
}

// SelectByCode runs the escalation purely in Hamming space, returning tuple
// ids ranked by code distance; used when original vectors are unavailable
// (e.g. MapReduce option B post-processing).
func SelectByCode(idx HammingSearcher, codes []bitvec.Code, q bitvec.Code, k int) []Neighbor {
	h := 1
	maxH := q.Len()
	for {
		ids := idx.Search(q, h)
		if len(ids) >= k || h >= maxH {
			ns := make([]Neighbor, 0, len(ids))
			for _, id := range ids {
				ns = append(ns, Neighbor{ID: id, Dist: float64(q.Distance(codes[id]))})
			}
			sortNeighbors(ns)
			if len(ns) > k {
				ns = ns[:k]
			}
			return ns
		}
		h = h*2 + 1
		if h > maxH {
			h = maxH
		}
	}
}
