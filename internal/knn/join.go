package knn

import (
	"sync"

	"haindex/internal/core"
	"haindex/internal/vector"
)

// JoinResult maps each probe-side tuple index to its k nearest neighbors on
// the indexed side.
type JoinResult map[int][]Neighbor

// HammingJoin computes the approximate R kNN-join S of Section 2: for every
// tuple of probe, the k approximate nearest indexed tuples, found by
// Hamming threshold escalation over the shared index and re-ranked by exact
// distance. Workers share the index read-only; workers <= 0 selects 4.
func (a *HammingKNN) Join(probe []vector.Vec, k, workers int) JoinResult {
	if workers <= 0 {
		workers = 4
	}
	if workers > len(probe) && len(probe) > 0 {
		workers = len(probe)
	}
	out := make(JoinResult, len(probe))
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(probe) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(probe) {
			hi = len(probe)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var stats core.SearchStats
			local := make(JoinResult, hi-lo)
			for i := lo; i < hi; i++ {
				local[i] = a.selectConcurrent(probe[i], k, &stats)
			}
			mu.Lock()
			for i, ns := range local {
				out[i] = ns
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// ExactJoin computes the exact R kNN-join S by per-tuple linear scan — the
// ground truth for join recall measurements.
func ExactJoin(data []vector.Vec, probe []vector.Vec, k int) JoinResult {
	out := make(JoinResult, len(probe))
	for i, q := range probe {
		out[i] = Exact(data, q, k)
	}
	return out
}

// JoinRecall averages per-tuple Recall of approx against exact.
func JoinRecall(approx, exact JoinResult) float64 {
	if len(exact) == 0 {
		return 1
	}
	sum := 0.0
	for i, e := range exact {
		sum += Recall(approx[i], e)
	}
	return sum / float64(len(exact))
}
