package knn

import (
	"math/rand"
	"testing"

	"haindex/internal/core"
	"haindex/internal/hash"
)

func TestHammingJoinRecallAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	data := clusteredVecs(rng, 1200, 24, 10, 0.12)
	probe := clusteredVecs(rng, 120, 24, 10, 0.12)
	sh, err := hash.LearnSpectral(data[:400], 32)
	if err != nil {
		t.Fatal(err)
	}
	idx := core.BuildDynamic(hash.HashAll(sh, data), nil, core.Options{})
	a := NewHammingKNN(idx, sh, data)
	k := 8
	approx := a.Join(probe, k, 4)
	if len(approx) != len(probe) {
		t.Fatalf("join covers %d of %d probes", len(approx), len(probe))
	}
	for i, ns := range approx {
		if len(ns) != k {
			t.Fatalf("probe %d got %d neighbors", i, len(ns))
		}
	}
	exact := ExactJoin(data, probe, k)
	if r := JoinRecall(approx, exact); r < 0.3 {
		t.Fatalf("join recall %.2f too low", r)
	}
	// Sequential and concurrent joins agree.
	seq := a.Join(probe, k, 1)
	for i := range probe {
		for j := range seq[i] {
			if seq[i][j] != approx[i][j] {
				t.Fatal("worker count changed results")
			}
		}
	}
}

func TestJoinRecallMetric(t *testing.T) {
	exact := JoinResult{0: {{ID: 1}, {ID: 2}}, 1: {{ID: 3}}}
	approx := JoinResult{0: {{ID: 1}, {ID: 9}}, 1: {{ID: 3}}}
	if r := JoinRecall(approx, exact); r != 0.75 {
		t.Fatalf("recall = %v", r)
	}
	if JoinRecall(nil, nil) != 1 {
		t.Fatal("empty join recall should be 1")
	}
}

func TestExactJoin(t *testing.T) {
	data := clusteredVecs(rand.New(rand.NewSource(182)), 50, 8, 3, 0.1)
	probe := data[:5]
	res := ExactJoin(data, probe, 3)
	for i := range probe {
		if res[i][0].ID != i || res[i][0].Dist != 0 {
			t.Fatalf("probe %d nearest should be itself: %v", i, res[i][0])
		}
	}
}
