// Package knn implements k-nearest-neighbor selection and join over
// high-dimensional data: the exact linear-scan reference, the approximate
// Hamming-code-based kNN the paper accelerates with the HA-Index, and the
// two state-of-the-art baselines of Table 5 — E2LSH (p-stable
// locality-sensitive hashing) and the LSB-Tree (Z-order of LSH projections
// over a B-tree).
package knn

import (
	"container/heap"
	"math"
	"sort"

	"haindex/internal/vector"
)

// Neighbor is one kNN result.
type Neighbor struct {
	ID   int
	Dist float64
}

// maxHeap keeps the k largest-distance neighbors on top for replacement.
type maxHeap []Neighbor

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Exact returns the k nearest neighbors of q among data by linear scan,
// sorted by ascending distance (ties broken by id for determinism).
func Exact(data []vector.Vec, q vector.Vec, k int) []Neighbor {
	h := make(maxHeap, 0, k)
	for i, v := range data {
		d := q.Dist2(v)
		if len(h) < k {
			heap.Push(&h, Neighbor{ID: i, Dist: d})
		} else if d < h[0].Dist {
			h[0] = Neighbor{ID: i, Dist: d}
			heap.Fix(&h, 0)
		}
	}
	out := []Neighbor(h)
	for i := range out {
		out[i].Dist = sqrt(out[i].Dist)
	}
	sortNeighbors(out)
	return out
}

// ExactSubset is Exact restricted to the given candidate ids.
func ExactSubset(data []vector.Vec, ids []int, q vector.Vec, k int) []Neighbor {
	h := make(maxHeap, 0, k)
	for _, id := range ids {
		d := q.Dist2(data[id])
		if len(h) < k {
			heap.Push(&h, Neighbor{ID: id, Dist: d})
		} else if d < h[0].Dist {
			h[0] = Neighbor{ID: id, Dist: d}
			heap.Fix(&h, 0)
		}
	}
	out := []Neighbor(h)
	for i := range out {
		out[i].Dist = sqrt(out[i].Dist)
	}
	sortNeighbors(out)
	return out
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
}

// sqrt converts the heap's cheap squared distances back to distances.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Recall measures |approx ∩ exact| / |exact| over the neighbor id sets — the
// standard approximate-kNN quality metric used in Figure 10.
func Recall(approx, exact []Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int]bool, len(exact))
	for _, n := range exact {
		in[n.ID] = true
	}
	hit := 0
	for _, n := range approx {
		if in[n.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}
