package knn

import (
	"math/rand"
	"testing"

	"haindex/internal/baseline"
	"haindex/internal/core"
	"haindex/internal/hash"
	"haindex/internal/vector"
)

func clusteredVecs(rng *rand.Rand, n, d, clusters int, spread float64) []vector.Vec {
	centers := make([]vector.Vec, clusters)
	for i := range centers {
		c := make(vector.Vec, d)
		for j := range c {
			c[j] = rng.Float64() * 4
		}
		centers[i] = c
	}
	out := make([]vector.Vec, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		v := make(vector.Vec, d)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*spread
		}
		out[i] = v
	}
	return out
}

func TestExact(t *testing.T) {
	data := []vector.Vec{{0}, {1}, {2}, {3}, {10}}
	got := Exact(data, vector.Vec{1.4}, 3)
	if len(got) != 3 {
		t.Fatalf("len=%d", len(got))
	}
	if got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 0 {
		t.Fatalf("ids = %v", got)
	}
	if got[0].Dist > got[1].Dist || got[1].Dist > got[2].Dist {
		t.Fatal("not sorted by distance")
	}
}

func TestExactSmallerThanK(t *testing.T) {
	data := []vector.Vec{{0}, {1}}
	got := Exact(data, vector.Vec{0}, 5)
	if len(got) != 2 {
		t.Fatalf("len=%d", len(got))
	}
}

func TestExactSubset(t *testing.T) {
	data := []vector.Vec{{0}, {1}, {2}, {3}}
	got := ExactSubset(data, []int{0, 3}, vector.Vec{2.6}, 1)
	if len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestRecall(t *testing.T) {
	exact := []Neighbor{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	approx := []Neighbor{{ID: 2}, {ID: 4}, {ID: 9}}
	if r := Recall(approx, exact); r != 0.5 {
		t.Fatalf("recall=%v", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty recall=%v", r)
	}
}

// TestHammingKNNRecall: the HA-Index-backed approximate kNN should achieve
// reasonable recall on clustered data — the property Table 5 relies on.
func TestHammingKNNRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	data := clusteredVecs(rng, 2000, 24, 12, 0.15)
	sh, err := hash.LearnSpectral(data[:500], 32)
	if err != nil {
		t.Fatal(err)
	}
	codes := hash.HashAll(sh, data)
	idx := core.BuildDynamic(codes, nil, core.Options{})
	a := NewHammingKNN(idx, sh, data)
	k := 10
	sumRecall := 0.0
	trials := 30
	for i := 0; i < trials; i++ {
		q := data[rng.Intn(len(data))]
		approx := a.Select(q, k)
		exact := Exact(data, q, k)
		sumRecall += Recall(approx, exact)
	}
	if avg := sumRecall / float64(trials); avg < 0.5 {
		t.Errorf("average recall %.2f too low", avg)
	}
}

// TestHammingKNNEscalation: with fewer than k matches at small thresholds,
// escalation must still deliver k results.
func TestHammingKNNEscalation(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	data := clusteredVecs(rng, 200, 16, 200, 0.01) // every point its own cluster
	sh := hash.NewSimHash(16, 32, 5)
	codes := hash.HashAll(sh, data)
	idx := baseline.NewNestedLoop(codes, nil)
	a := NewHammingKNN(idx, sh, data)
	got := a.Select(data[0], 50)
	if len(got) != 50 {
		t.Fatalf("escalation returned %d results, want 50", len(got))
	}
	if got[0].ID != 0 || got[0].Dist != 0 {
		t.Fatalf("nearest should be the query point itself: %v", got[0])
	}
}

func TestSelectByCode(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	data := clusteredVecs(rng, 300, 16, 5, 0.1)
	sh := hash.NewSimHash(16, 32, 6)
	codes := hash.HashAll(sh, data)
	idx := core.BuildDynamic(codes, nil, core.Options{})
	got := SelectByCode(idx, codes, codes[7], 5)
	if len(got) != 5 {
		t.Fatalf("len=%d", len(got))
	}
	if got[0].Dist != 0 {
		t.Fatalf("self distance %v", got[0].Dist)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("not sorted")
		}
	}
}

func TestE2LSHRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	data := clusteredVecs(rng, 2000, 24, 12, 0.15)
	l := NewE2LSH(data, E2LSHConfig{Tables: 20, K: 6, Seed: 1})
	k := 10
	sumRecall := 0.0
	trials := 30
	for i := 0; i < trials; i++ {
		q := data[rng.Intn(len(data))]
		sumRecall += Recall(l.Select(q, k), Exact(data, q, k))
	}
	if avg := sumRecall / float64(trials); avg < 0.4 {
		t.Errorf("E2LSH average recall %.2f too low", avg)
	}
	if l.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
}

func TestLSBTreeRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	data := clusteredVecs(rng, 2000, 24, 12, 0.15)
	f := NewLSBTree(data, LSBConfig{Trees: 10, M: 6, U: 8, Seed: 2})
	k := 10
	sumRecall := 0.0
	trials := 30
	for i := 0; i < trials; i++ {
		q := data[rng.Intn(len(data))]
		sumRecall += Recall(f.Select(q, k), Exact(data, q, k))
	}
	if avg := sumRecall / float64(trials); avg < 0.4 {
		t.Errorf("LSB-Tree average recall %.2f too low", avg)
	}
	if f.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
}

func TestLSBTreeEdgeSeeks(t *testing.T) {
	// Data collapsing to extreme z-values must not break expansion.
	data := []vector.Vec{{0, 0}, {0, 0.0001}, {100, 100}, {100, 100.0001}}
	f := NewLSBTree(data, LSBConfig{Trees: 3, M: 2, U: 4, Seed: 3})
	got := f.Select(vector.Vec{200, 200}, 2)
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
}
