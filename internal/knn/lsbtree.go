package knn

import (
	"math"
	"math/rand"

	"haindex/internal/btree"
	"haindex/internal/vector"
	"haindex/internal/zorder"
)

// LSBTree is the LSB-Tree baseline of Tao, Yi, Sheng & Kalnis (TODS'10):
// each of T trees projects every point onto m p-stable LSH directions,
// quantizes each projection to u bits, interleaves them into a Z-order value
// and stores it in a B-tree. A query seeks its own Z-value in every tree and
// expands bidirectionally, collecting candidates whose exact distances are
// then ranked. The paper configures an LSB-forest of 25 trees and highlights
// its long construction time and large index footprint.
type LSBTree struct {
	data  []vector.Vec
	trees []*lsbOne
	// ProbesPerTree bounds the bidirectional expansion per tree (default
	// 4k at query time).
	ProbesPerTree int
	u             int

	visited []uint32
	epoch   uint32
}

type lsbOne struct {
	dirs []vector.Vec
	lo   []float64
	hi   []float64
	bt   *btree.Tree
}

// LSBConfig tunes the forest.
type LSBConfig struct {
	Trees int // T; 0 selects the paper's 25
	M     int // projection dimensions per tree; 0 selects 8
	U     int // bits per projection; 0 selects 8
	Seed  int64
}

// NewLSBTree builds the forest over data.
func NewLSBTree(data []vector.Vec, cfg LSBConfig) *LSBTree {
	if cfg.Trees <= 0 {
		cfg.Trees = 25
	}
	if cfg.M <= 0 {
		cfg.M = 8
	}
	if cfg.U <= 0 {
		cfg.U = 8
	}
	if cfg.M*cfg.U > 64 {
		panic("knn: LSB z-values exceed 64 bits; reduce M or U")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := len(data[0])
	f := &LSBTree{data: data, visited: make([]uint32, len(data)), u: cfg.U}
	for t := 0; t < cfg.Trees; t++ {
		one := &lsbOne{
			dirs: make([]vector.Vec, cfg.M),
			lo:   make([]float64, cfg.M),
			hi:   make([]float64, cfg.M),
			bt:   btree.New(),
		}
		for j := range one.dirs {
			a := make(vector.Vec, d)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			one.dirs[j] = a
			one.lo[j] = math.Inf(1)
			one.hi[j] = math.Inf(-1)
		}
		// Projection ranges for quantization.
		projs := make([][]float64, len(data))
		for i, v := range data {
			p := make([]float64, cfg.M)
			for j, a := range one.dirs {
				p[j] = a.Dot(v)
				if p[j] < one.lo[j] {
					one.lo[j] = p[j]
				}
				if p[j] > one.hi[j] {
					one.hi[j] = p[j]
				}
			}
			projs[i] = p
		}
		for i := range data {
			one.bt.Insert(one.zvalue(projs[i], cfg.U), i)
		}
		f.trees = append(f.trees, one)
	}
	f.ProbesPerTree = 0
	return f
}

func (o *lsbOne) zvalue(projs []float64, u int) uint64 {
	coords := make([]uint32, len(projs))
	for j, p := range projs {
		coords[j] = zorder.Quantize(p, o.lo[j], o.hi[j], u)
	}
	return zorder.Interleave(coords, u)
}

func (o *lsbOne) queryZ(v vector.Vec, u int) uint64 {
	projs := make([]float64, len(o.dirs))
	for j, a := range o.dirs {
		projs[j] = a.Dot(v)
	}
	return o.zvalue(projs, u)
}

// Select returns the approximate k nearest neighbors of q.
func (f *LSBTree) Select(q vector.Vec, k int) []Neighbor {
	f.epoch++
	probes := f.ProbesPerTree
	if probes <= 0 {
		probes = 4 * k
	}
	u := f.u
	var cands []int
	for _, one := range f.trees {
		z := one.queryZ(q, u)
		fwd := one.bt.Seek(z)
		bwd := fwd.Prev()
		if !fwd.Valid() && !bwd.Valid() {
			// Query beyond the largest key: expand backward from the tail.
			bwd = one.bt.Max()
		}
		for taken := 0; taken < probes && (fwd.Valid() || bwd.Valid()); taken++ {
			// Expand toward the closer Z-value first, the LSB bidirectional
			// scan.
			useFwd := fwd.Valid()
			if fwd.Valid() && bwd.Valid() {
				useFwd = fwd.Key()-z <= z-bwd.Key()
			}
			var id int
			if useFwd {
				id = fwd.Val()
				fwd = fwd.Next()
			} else {
				id = bwd.Val()
				bwd = bwd.Prev()
			}
			if f.visited[id] != f.epoch {
				f.visited[id] = f.epoch
				cands = append(cands, id)
			}
		}
	}
	return ExactSubset(f.data, cands, q, k)
}

// SizeBytes returns the approximate forest footprint.
func (f *LSBTree) SizeBytes() int {
	sz := len(f.visited) * 4
	for _, one := range f.trees {
		sz += one.bt.SizeBytes()
		for _, a := range one.dirs {
			sz += 8 * len(a)
		}
		sz += 16 * len(one.lo)
	}
	return sz
}
