package knn

import (
	"hash/fnv"
	"math"
	"math/rand"

	"haindex/internal/vector"
)

// E2LSH is the classic p-stable locality-sensitive hashing index for
// Euclidean space (Andoni & Indyk): L hash tables, each keyed by a composite
// of k quantized Gaussian projections h(v) = floor((a·v + b)/w). A query
// probes its bucket in each table and re-ranks the union of candidates by
// exact distance. The paper configures 20 tables.
type E2LSH struct {
	data    []vector.Vec
	tables  []map[uint64][]int32
	funcs   [][]pstable
	w       float64
	visited []uint32
	epoch   uint32
}

type pstable struct {
	a vector.Vec
	b float64
}

// E2LSHConfig tunes the index.
type E2LSHConfig struct {
	Tables int     // L; 0 selects the paper's 20
	K      int     // projections per table; 0 selects 8
	W      float64 // quantization width; 0 estimates from a data sample
	Seed   int64
}

// NewE2LSH indexes the data.
func NewE2LSH(data []vector.Vec, cfg E2LSHConfig) *E2LSH {
	if cfg.Tables <= 0 {
		cfg.Tables = 20
	}
	if cfg.K <= 0 {
		cfg.K = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := len(data[0])
	if cfg.W <= 0 {
		cfg.W = estimateW(data, rng)
	}
	l := &E2LSH{
		data:    data,
		tables:  make([]map[uint64][]int32, cfg.Tables),
		funcs:   make([][]pstable, cfg.Tables),
		w:       cfg.W,
		visited: make([]uint32, len(data)),
	}
	for t := 0; t < cfg.Tables; t++ {
		fs := make([]pstable, cfg.K)
		for j := range fs {
			a := make(vector.Vec, d)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			fs[j] = pstable{a: a, b: rng.Float64() * cfg.W}
		}
		l.funcs[t] = fs
		tab := make(map[uint64][]int32, len(data))
		for i, v := range data {
			key := l.bucketKey(t, v)
			tab[key] = append(tab[key], int32(i))
		}
		l.tables[t] = tab
	}
	return l
}

// estimateW picks the quantization width as the mean distance between a few
// sampled pairs divided by the projection count — a standard heuristic that
// keeps near neighbors in one cell.
func estimateW(data []vector.Vec, rng *rand.Rand) float64 {
	n := len(data)
	if n < 2 {
		return 1
	}
	sum, cnt := 0.0, 0
	for i := 0; i < 50; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		sum += data[a].Dist(data[b])
		cnt++
	}
	if cnt == 0 || sum == 0 {
		return 1
	}
	// Half the mean pairwise distance: wide enough that true neighbors
	// collide with useful probability at k in the tens (the recall regime
	// Table 5 compares at), at the cost of larger buckets to verify.
	return sum / float64(cnt) / 2
}

func (l *E2LSH) bucketKey(t int, v vector.Vec) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range l.funcs[t] {
		q := int64(math.Floor((f.a.Dot(v) + f.b) / l.w))
		for i := 0; i < 8; i++ {
			buf[i] = byte(q >> uint(8*i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Select returns the approximate k nearest neighbors of q.
func (l *E2LSH) Select(q vector.Vec, k int) []Neighbor {
	l.epoch++
	var cands []int
	for t := range l.tables {
		for _, pos := range l.tables[t][l.bucketKey(t, q)] {
			if l.visited[pos] != l.epoch {
				l.visited[pos] = l.epoch
				cands = append(cands, int(pos))
			}
		}
	}
	return ExactSubset(l.data, cands, q, k)
}

// SizeBytes returns the approximate footprint of the hash tables (excluding
// the shared data vectors).
func (l *E2LSH) SizeBytes() int {
	sz := len(l.visited) * 4
	for _, tab := range l.tables {
		for _, b := range tab {
			sz += 24 + 4*len(b)
		}
	}
	for _, fs := range l.funcs {
		for _, f := range fs {
			sz += 8*len(f.a) + 8
		}
	}
	return sz
}
