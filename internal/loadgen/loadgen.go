// Package loadgen generates query traffic against a serving deployment and
// measures what came back: an open-loop generator that offers load at a
// fixed rate whether or not the system keeps up (the only honest way to
// probe past saturation — a closed loop slows down with the victim and
// hides the collapse), and a closed-loop generator that holds concurrency
// constant (the right tool for measuring capacity). Query popularity is
// skewed by the same Zipf distribution the dataset generators use
// (dataset.ZipfWeights), so cache behaviour under realistic traffic is
// measurable.
//
// The generator is transport-agnostic: it drives a caller-supplied Do
// function by query-pool index and classifies the returned errors, so it
// needs no knowledge of routers or wire formats.
package loadgen

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Picker samples query-pool indexes from a fixed popularity distribution.
// Index 0 is the most popular. Safe for concurrent use (it is read-only
// after construction); callers supply their own rng.
type Picker struct {
	cum []float64 // cumulative weights, cum[len-1] == 1
}

// NewPicker builds a sampler over weights (normalized or not; typically
// dataset.ZipfWeights(poolSize, skew)). Nil or empty weights yield a
// single-index picker.
func NewPicker(weights []float64) *Picker {
	if len(weights) == 0 {
		return &Picker{cum: []float64{1}}
	}
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cum[i] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &Picker{cum: cum}
}

// Pick draws one index.
func (p *Picker) Pick(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(p.cum, u)
	if i >= len(p.cum) {
		i = len(p.cum) - 1
	}
	return i
}

// Config drives one load run.
type Config struct {
	// Do issues one query identified by its pool index and returns its
	// outcome. It must be safe for concurrent use.
	Do func(qi int) error
	// Pick samples pool indexes; nil picks index 0 always.
	Pick *Picker
	// Duration is how long to generate load.
	Duration time.Duration

	// Workers is the closed-loop concurrency (used when Rate == 0): that
	// many workers issue queries back-to-back. 0 = 1.
	Workers int
	// Rate, when positive, switches to open loop: queries arrive on a fixed
	// schedule at this many per second, regardless of how the system keeps
	// up. Arrivals that find MaxInFlight queries already outstanding are
	// counted Dropped, not issued — offered-but-undeliverable load is what
	// makes overload collapse visible.
	Rate float64
	// MaxInFlight bounds outstanding open-loop queries (0 = 4096).
	MaxInFlight int

	// SLO, when positive, is the latency bound a completed query must meet
	// to count toward goodput. 0 counts every success.
	SLO time.Duration
	// IsShed classifies an error as a polite shed (counted separately from
	// failures); nil treats every error as a failure.
	IsShed func(error) bool
	// Seed makes the popularity sampling deterministic.
	Seed int64
}

// Result is what one load run measured.
type Result struct {
	// Offered is how many arrivals the schedule generated (closed loop:
	// every issued query). Offered = Done + Shed + Failed + Dropped.
	Offered int64
	// Done completed successfully; Good additionally met the SLO.
	Done int64
	Good int64
	// Shed were answered with a polite overload signal (per Config.IsShed);
	// Failed are all other errors; Dropped were never issued because
	// MaxInFlight was exhausted at arrival time.
	Shed    int64
	Failed  int64
	Dropped int64

	// Elapsed is the measured wall time; Throughput and Goodput are
	// Done/Elapsed and Good/Elapsed in queries per second.
	Elapsed    time.Duration
	Throughput float64
	Goodput    float64

	// Latency summarizes successful queries only.
	Latency LatencySummary
}

// LatencySummary holds order statistics of successful query latencies.
type LatencySummary struct {
	Count               int
	Mean, P50, P95, P99 time.Duration
	Max                 time.Duration
}

// collector accumulates outcomes from concurrent issuers.
type collector struct {
	offered, done, good, shed, failed, dropped atomic.Int64

	mu   sync.Mutex
	lats []time.Duration
}

func (c *collector) record(cfg *Config, lat time.Duration, err error) {
	if err != nil {
		if cfg.IsShed != nil && cfg.IsShed(err) {
			c.shed.Add(1)
		} else {
			c.failed.Add(1)
		}
		return
	}
	c.done.Add(1)
	if cfg.SLO <= 0 || lat <= cfg.SLO {
		c.good.Add(1)
	}
	c.mu.Lock()
	c.lats = append(c.lats, lat)
	c.mu.Unlock()
}

func (c *collector) result(elapsed time.Duration) Result {
	r := Result{
		Offered: c.offered.Load(),
		Done:    c.done.Load(),
		Good:    c.good.Load(),
		Shed:    c.shed.Load(),
		Failed:  c.failed.Load(),
		Dropped: c.dropped.Load(),
		Elapsed: elapsed,
		Latency: summarize(c.lats),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		r.Throughput = float64(r.Done) / sec
		r.Goodput = float64(r.Good) / sec
	}
	return r
}

func summarize(lats []time.Duration) LatencySummary {
	s := LatencySummary{Count: len(lats)}
	if len(lats) == 0 {
		return s
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	s.Mean = sum / time.Duration(len(lats))
	s.P50 = pct(0.50)
	s.P95 = pct(0.95)
	s.P99 = pct(0.99)
	s.Max = lats[len(lats)-1]
	return s
}

// Run executes one load run: open loop when cfg.Rate > 0, closed loop
// otherwise.
func Run(cfg Config) Result {
	if cfg.Pick == nil {
		cfg.Pick = NewPicker(nil)
	}
	if cfg.Rate > 0 {
		return runOpen(cfg)
	}
	return runClosed(cfg)
}

// runClosed holds Workers queries in flight back-to-back for Duration.
func runClosed(cfg Config) Result {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	var c collector
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for time.Now().Before(deadline) {
				qi := cfg.Pick.Pick(rng)
				c.offered.Add(1)
				t0 := time.Now()
				err := cfg.Do(qi)
				c.record(&cfg, time.Since(t0), err)
			}
		}(w)
	}
	wg.Wait()
	return c.result(time.Since(start))
}

// runOpen offers queries on a fixed arrival schedule at cfg.Rate per
// second. The schedule does not slow down when the system does: arrivals
// that cannot be issued (MaxInFlight outstanding) are dropped on the spot,
// which is what makes goodput collapse measurable past saturation.
func runOpen(cfg Config) Result {
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	var c collector
	sem := make(chan struct{}, maxInFlight)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for next := start; next.Before(deadline); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		qi := cfg.Pick.Pick(rng)
		c.offered.Add(1)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				t0 := time.Now()
				err := cfg.Do(qi)
				c.record(&cfg, time.Since(t0), err)
				<-sem
			}(qi)
		default:
			c.dropped.Add(1)
		}
	}
	wg.Wait()
	return c.result(time.Since(start))
}
