package loadgen

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"haindex/internal/dataset"
)

// TestPickerDistribution: sampled frequencies must track the weights.
func TestPickerDistribution(t *testing.T) {
	w := dataset.ZipfWeights(50, 1.1)
	p := NewPicker(w)
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	counts := make([]int, len(w))
	for i := 0; i < n; i++ {
		counts[p.Pick(rng)]++
	}
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / n
		if math.Abs(got-w[i]) > w[i]*0.1 {
			t.Fatalf("index %d sampled with frequency %.4f, weight %.4f", i, got, w[i])
		}
	}
	if counts[0] <= counts[len(counts)-1] {
		t.Fatal("head not more popular than tail")
	}
}

func TestPickerDegenerate(t *testing.T) {
	p := NewPicker(nil)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		if p.Pick(rng) != 0 {
			t.Fatal("nil-weight picker must always pick 0")
		}
	}
}

// TestClosedLoop: counters are consistent and goodput distinguishes
// SLO-violating completions from fast ones.
func TestClosedLoop(t *testing.T) {
	var slow atomic.Int64
	res := Run(Config{
		Do: func(qi int) error {
			if qi == 0 {
				// The popular query is served slowly: misses the SLO.
				slow.Add(1)
				time.Sleep(2 * time.Millisecond)
			}
			return nil
		},
		Pick:     NewPicker([]float64{0.5, 0.5}),
		Workers:  4,
		Duration: 80 * time.Millisecond,
		SLO:      time.Millisecond,
		Seed:     3,
	})
	if res.Offered == 0 || res.Offered != res.Done {
		t.Fatalf("offered %d done %d, want equal and nonzero", res.Offered, res.Done)
	}
	if res.Good+slow.Load() != res.Done {
		t.Fatalf("good %d + slow %d != done %d", res.Good, slow.Load(), res.Done)
	}
	if res.Good == 0 || res.Good == res.Done {
		t.Fatalf("SLO split degenerate: good %d of %d", res.Good, res.Done)
	}
	if res.Latency.Count != int(res.Done) {
		t.Fatalf("latency samples %d, done %d", res.Latency.Count, res.Done)
	}
	if res.Latency.P99 < res.Latency.P50 || res.Latency.Max < res.Latency.P99 {
		t.Fatalf("percentiles out of order: %+v", res.Latency)
	}
	if res.Throughput <= 0 || res.Goodput <= 0 || res.Goodput >= res.Throughput {
		t.Fatalf("throughput %.1f goodput %.1f", res.Throughput, res.Goodput)
	}
}

// TestOpenLoopOffersAtRate: the arrival schedule tracks Rate and does not
// slow down with the system; slow service with a tight in-flight bound
// surfaces as drops, and shed-classified errors are counted apart from
// failures.
func TestOpenLoopOffersAtRate(t *testing.T) {
	errShed := errors.New("shed")
	var n atomic.Int64
	res := Run(Config{
		Do: func(qi int) error {
			// Every third query is shed; the rest are slow enough to pile
			// up against MaxInFlight.
			if n.Add(1)%3 == 0 {
				return errShed
			}
			time.Sleep(20 * time.Millisecond)
			return nil
		},
		Rate:        1000,
		MaxInFlight: 4,
		Duration:    100 * time.Millisecond,
		IsShed:      func(err error) bool { return errors.Is(err, errShed) },
		Seed:        4,
	})
	if res.Offered < 80 || res.Offered > 120 {
		t.Fatalf("offered %d arrivals at 1000/s over 100ms, want ~100", res.Offered)
	}
	if res.Dropped == 0 {
		t.Fatal("slow service under open loop produced no drops")
	}
	if res.Shed == 0 {
		t.Fatal("shed errors not classified")
	}
	if res.Failed != 0 {
		t.Fatalf("%d failures, want 0 (all errors were sheds)", res.Failed)
	}
	if got := res.Done + res.Shed + res.Failed + res.Dropped; got != res.Offered {
		t.Fatalf("outcomes sum to %d, offered %d", got, res.Offered)
	}
}
