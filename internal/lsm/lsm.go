// Package lsm is the mutable serving tier: a log-structured shard that
// layers a small Dynamic HA-Index memtable (Section 4.5, H-Insert/H-Delete)
// over a stack of immutable compiled segments (core.FrozenIndex), the way an
// LSM storage engine layers a memtable over sorted runs.
//
// Writes are upserts keyed by tuple id. An Insert lands in the memtable; if
// the id is live in a frozen segment, a tombstone masks the old version. A
// Delete of a memtable id edits the memtable in place (H-Delete); a delete
// of a frozen id becomes a tombstone. When the memtable passes a size
// threshold a background goroutine seals it: the memtable is published as an
// immutable just-sealed segment (still the pointer index, already flushed),
// then compiled with core.Freeze off the write path and swapped in under an
// epoch-bumped atomic state update. A compactor merges the segment stack
// with core.Merge — safe only because Merge deep-copies, the bug fixed
// alongside this package — drops tombstoned tuples, refreezes, and swaps,
// garbage-collecting tombstones no remaining segment needs.
//
// Versioning uses a single mutation sequence: every segment records the
// sequence at seal time (maxSeq), every tombstone the sequence of the
// mutation that created it, and a tombstone masks an id only in segments
// sealed before it (tomb > maxSeq). Because an insert always tombstones any
// frozen occurrence of its id, at most one live version of an id exists
// across the memtable and all segments, so searches fan out and concatenate
// without a dedup pass.
//
// Searches take a read lock (memtable and tombstones are mutable); seal
// freeze and compaction — the expensive work — run off-lock on immutable
// structure, so readers only ever wait out the cheap pointer swaps.
package lsm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/obs"
)

// Options configures a mutable shard.
type Options struct {
	// Index is the H-Build configuration used for the memtable and for
	// compaction rebuilds.
	Index core.Options
	// MemtableMax is the number of live memtable entries that triggers a
	// background seal. 0 selects 4096; negative disables automatic sealing
	// (Seal must be called explicitly).
	MemtableMax int
	// CompactAt is the segment count that triggers compaction after a seal.
	// 0 selects 4; negative disables automatic compaction.
	CompactAt int

	// Obs, when set, is the registry the shard hangs its instruments on:
	// lsm.memtable_size / lsm.segments / lsm.tombstones gauges,
	// lsm.seal_ns / lsm.compact_ns wall histograms, and
	// lsm.inserts / lsm.deletes / lsm.seals / lsm.compactions counters.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MemtableMax == 0 {
		o.MemtableMax = 4096
	}
	if o.CompactAt == 0 {
		o.CompactAt = 4
	}
	return o
}

// segment is one immutable layer of the shard: the serving index (frozen,
// or the just-sealed pointer index until the background freeze lands), the
// pointer form kept for compaction merges, and the seal-time sequence that
// orders it against tombstones.
type segment struct {
	idx    core.Index
	dyn    *core.DynamicIndex // nil when bootstrapped from a frozen snapshot
	maxSeq uint64
	pool   sync.Pool // *core.Searcher bound to idx
}

func newSegment(idx core.Index, dyn *core.DynamicIndex, maxSeq uint64) *segment {
	g := &segment{idx: idx, dyn: dyn, maxSeq: maxSeq}
	g.pool.New = func() interface{} { return core.NewSearcher(g.idx) }
	return g
}

// state is the immutable segment stack, swapped atomically under the write
// lock and readable without it.
type state struct {
	segments []*segment
	epoch    uint64
}

// Stats is a point-in-time summary of the shard's layering.
type Stats struct {
	Len          int    // live tuples (memtable + unmasked frozen)
	MemtableSize int    // live memtable entries
	Segments     int    // immutable segments
	Tombstones   int    // ids masked in some segment
	Epoch        uint64 // bumped on every seal/compaction swap
	Seals        int64
	Compactions  int64
}

// Shard is a mutable, searchable HA-Index shard. All methods are safe for
// concurrent use; Close must be the last call.
type Shard struct {
	opts   Options
	length int

	mu         sync.RWMutex
	mem        *core.DynamicIndex    // nil when empty
	memPool    *sync.Pool            // searchers bound to mem's current incarnation
	memIDs     map[int]bitvec.Code   // live memtable entries by id
	frozenLive map[int]struct{}      // ids live in some segment (not masked)
	tomb       map[int]uint64        // id -> sequence of the masking mutation
	seq        uint64                // mutation sequence, monotone under mu
	state      atomic.Pointer[state] // immutable segment stack
	booted     bool

	// ver counts result-changing mutations (bootstrap, insert, delete) —
	// unlike the structural epoch, which only moves on seal/compact swaps.
	// It is the invalidation token result caches key on: any acknowledged
	// change to what a search can return is visible as a new version.
	ver atomic.Uint64

	// structMu serializes structural background work (seal, compact) so at
	// most one freeze/merge is in flight.
	structMu    sync.Mutex
	sealArmed   atomic.Bool
	wg          sync.WaitGroup
	closed      atomic.Bool
	seals       atomic.Int64
	compactions atomic.Int64

	gMem, gSegs, gTomb                 *obs.Gauge
	cInserts, cDeletes, cSeals, cComps *obs.Counter
	hSeal, hCompact                    *obs.Histogram
}

// New creates an empty mutable shard for codes of the given bit length.
func New(length int, opts Options) *Shard {
	if length <= 0 {
		panic("lsm: non-positive code length")
	}
	opts = opts.withDefaults()
	s := &Shard{
		opts:       opts,
		length:     length,
		memIDs:     make(map[int]bitvec.Code),
		frozenLive: make(map[int]struct{}),
		tomb:       make(map[int]uint64),
	}
	s.state.Store(&state{})
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.gMem = reg.Gauge("lsm.memtable_size")
	s.gSegs = reg.Gauge("lsm.segments")
	s.gTomb = reg.Gauge("lsm.tombstones")
	s.cInserts = reg.Counter("lsm.inserts")
	s.cDeletes = reg.Counter("lsm.deletes")
	s.cSeals = reg.Counter("lsm.seals")
	s.cComps = reg.Counter("lsm.compactions")
	s.hSeal = reg.Histogram("lsm.seal_ns")
	s.hCompact = reg.Histogram("lsm.compact_ns")
	return s
}

// Bootstrap seeds the shard with an existing immutable index as its first
// segment — how a server turns a loaded snapshot into a mutable shard. Ids
// in the index must be unique. It must be called before any mutation.
func (s *Shard) Bootstrap(idx core.Index) error {
	if idx.Length() != s.length {
		return fmt.Errorf("lsm: bootstrap index is %d-bit, shard serves %d-bit codes", idx.Length(), s.length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.booted || s.seq != 0 {
		return fmt.Errorf("lsm: Bootstrap must be the first operation")
	}
	s.booted = true
	if idx.Len() == 0 {
		return nil
	}
	var seg *segment
	s.seq++
	switch t := idx.(type) {
	case *core.DynamicIndex:
		t.Flush()
		seg = newSegment(core.Freeze(t), t, s.seq)
	case *core.FrozenIndex:
		seg = newSegment(t, nil, s.seq)
	default:
		return fmt.Errorf("lsm: cannot bootstrap from index type %T", idx)
	}
	enumerate(idx, func(id int, _ bitvec.Code) {
		s.frozenLive[id] = struct{}{}
	})
	st := s.state.Load()
	s.state.Store(&state{segments: []*segment{seg}, epoch: st.epoch + 1})
	s.ver.Add(1)
	s.publishGauges()
	return nil
}

// enumerate walks (id, code) pairs of either index form.
func enumerate(idx core.Index, fn func(int, bitvec.Code)) {
	idx.(interface {
		Tuples(func(id int, code bitvec.Code))
	}).Tuples(fn)
}

// Length returns the code length L in bits.
func (s *Shard) Length() int { return s.length }

// Len returns the number of live tuples.
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.memIDs) + len(s.frozenLive)
}

// Epoch returns the current structural epoch; it bumps on every seal and
// compaction swap, so cached results keyed on it invalidate correctly.
func (s *Shard) Epoch() uint64 { return s.state.Load().epoch }

// Version returns the mutation version: a monotone counter bumped by every
// result-changing mutation (bootstrap, insert, delete) and left alone by
// result-neutral structural work (seal, compact). A result cache keys its
// entries on the version read before the search; the bump happens before
// the mutation's lock is released, so once a mutation is acknowledged no
// later read can use the old version's key space.
func (s *Shard) Version() uint64 { return s.ver.Load() }

// Stats returns a point-in-time layering summary.
func (s *Shard) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.state.Load()
	return Stats{
		Len:          len(s.memIDs) + len(s.frozenLive),
		MemtableSize: len(s.memIDs),
		Segments:     len(st.segments),
		Tombstones:   len(s.tomb),
		Epoch:        st.epoch,
		Seals:        s.seals.Load(),
		Compactions:  s.compactions.Load(),
	}
}

// publishGauges mirrors the layering into the registry; callers hold mu.
func (s *Shard) publishGauges() {
	s.gMem.Set(int64(len(s.memIDs)))
	s.gSegs.Set(int64(len(s.state.Load().segments)))
	s.gTomb.Set(int64(len(s.tomb)))
}

// Insert upserts the tuple: any older version of the id — in the memtable or
// in a frozen segment — is superseded. It reports whether an older version
// was replaced.
func (s *Shard) Insert(id int, c bitvec.Code) bool {
	if c.Len() != s.length {
		panic(fmt.Sprintf("lsm: inserting %d-bit code into %d-bit shard", c.Len(), s.length))
	}
	s.mu.Lock()
	s.booted = true
	replaced := false
	if old, ok := s.memIDs[id]; ok {
		if old.Equal(c) {
			s.mu.Unlock()
			return true
		}
		s.mem.Delete(id, old)
		replaced = true
	} else if _, ok := s.frozenLive[id]; ok {
		// The frozen copy is now stale: mask it in every current segment.
		delete(s.frozenLive, id)
		s.seq++
		s.tomb[id] = s.seq
		replaced = true
	}
	s.seq++
	s.memIDs[id] = c
	if s.mem == nil {
		mem := core.BuildDynamic([]bitvec.Code{c}, []int{id}, s.opts.Index)
		s.mem = mem
		s.memPool = &sync.Pool{New: func() interface{} { return core.NewSearcher(mem) }}
	} else {
		s.mem.Insert(id, c)
	}
	s.cInserts.Inc()
	s.ver.Add(1)
	sealNow := s.opts.MemtableMax > 0 && len(s.memIDs) >= s.opts.MemtableMax
	s.publishGauges()
	s.mu.Unlock()
	if sealNow && !s.closed.Load() && s.sealArmed.CompareAndSwap(false, true) {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.sealArmed.Store(false)
			s.Seal(false)
			if s.opts.CompactAt > 0 && len(s.state.Load().segments) > s.opts.CompactAt {
				s.Compact()
			}
		}()
	}
	return replaced
}

// Delete removes the tuple with the given id, wherever its live version
// sits: a memtable id is H-Deleted in place, a frozen id becomes a
// tombstone. It reports whether the id was live.
func (s *Shard) Delete(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.booted = true
	if c, ok := s.memIDs[id]; ok {
		s.mem.Delete(id, c)
		delete(s.memIDs, id)
		s.cDeletes.Inc()
		s.ver.Add(1)
		s.publishGauges()
		return true
	}
	if _, ok := s.frozenLive[id]; ok {
		delete(s.frozenLive, id)
		s.seq++
		s.tomb[id] = s.seq
		s.cDeletes.Inc()
		s.ver.Add(1)
		s.publishGauges()
		return true
	}
	return false
}

// SearchInto returns the ids of all live tuples within Hamming distance h of
// q, fanning out over the memtable and every segment with tombstone masking;
// stats aggregates the index work of the whole fan-out.
func (s *Shard) SearchInto(q bitvec.Code, h int, stats *core.SearchStats) []int {
	if q.Len() != s.length {
		panic(fmt.Sprintf("lsm: %d-bit query against %d-bit shard", q.Len(), s.length))
	}
	var out []int
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mem != nil {
		pool := s.memPool
		sr := pool.Get().(*core.Searcher)
		out = append(out, sr.Search(q, h)...)
		stats.Add(sr.Stats)
		pool.Put(sr)
	}
	for _, seg := range s.state.Load().segments {
		sr := seg.pool.Get().(*core.Searcher)
		for _, id := range sr.Search(q, h) {
			if t, masked := s.tomb[id]; masked && t > seg.maxSeq {
				continue
			}
			out = append(out, id)
		}
		stats.Add(sr.Stats)
		seg.pool.Put(sr)
	}
	return out
}

// Search is SearchInto with throwaway statistics.
func (s *Shard) Search(q bitvec.Code, h int) []int {
	var stats core.SearchStats
	return s.SearchInto(q, h, &stats)
}

// TopKInto returns the k nearest live ids with their distances, ordered by
// (distance, id), by radius escalation over the layered search — a tuple's
// distance is the first radius at which it appears.
func (s *Shard) TopKInto(q bitvec.Code, k int, stats *core.SearchStats) ([]int, []int) {
	if k <= 0 {
		return nil, nil
	}
	dist := make(map[int]int)
	for h := 0; h <= s.length; h++ {
		for _, id := range s.SearchInto(q, h, stats) {
			if _, seen := dist[id]; !seen {
				dist[id] = h
			}
		}
		if len(dist) >= k {
			break
		}
	}
	ids := make([]int, 0, len(dist))
	for id := range dist {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := dist[ids[i]], dist[ids[j]]
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	dists := make([]int, len(ids))
	for i, id := range ids {
		dists[i] = dist[id]
	}
	return ids, dists
}

// TopK is TopKInto with throwaway statistics.
func (s *Shard) TopK(q bitvec.Code, k int) ([]int, []int) {
	var stats core.SearchStats
	return s.TopKInto(q, k, &stats)
}

// Tuples invokes fn for every live (id, code) pair: memtable entries plus
// unmasked segment tuples.
func (s *Shard) Tuples(fn func(id int, code bitvec.Code)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, c := range s.memIDs {
		fn(id, c)
	}
	for _, seg := range s.state.Load().segments {
		enumerate(seg.idx, func(id int, c bitvec.Code) {
			if t, masked := s.tomb[id]; masked && t > seg.maxSeq {
				return
			}
			fn(id, c)
		})
	}
}

// Seal freezes the current memtable into a new immutable segment. The
// memtable is first published as a just-sealed (pointer-index) segment so
// its tuples stay searchable, then compiled with core.Freeze off the write
// path and swapped in. With compact set, a compaction follows. Seal is
// synchronous: when it returns, the new segment is frozen and live.
func (s *Shard) Seal(compact bool) {
	s.structMu.Lock()
	t0 := time.Now()
	s.mu.Lock()
	mem := s.mem
	if mem == nil || len(s.memIDs) == 0 {
		s.mu.Unlock()
		s.structMu.Unlock()
		if compact {
			s.Compact()
		}
		return
	}
	// Settle the insert buffer while exclusive; afterwards the pointer index
	// is read-only and safe to publish and to Freeze concurrently.
	mem.Flush()
	for id := range s.memIDs {
		s.frozenLive[id] = struct{}{}
	}
	s.mem, s.memPool = nil, nil
	s.memIDs = make(map[int]bitvec.Code)
	sealed := newSegment(mem, mem, s.seq)
	st := s.state.Load()
	segs := append(append([]*segment(nil), st.segments...), sealed)
	s.state.Store(&state{segments: segs, epoch: st.epoch + 1})
	s.publishGauges()
	s.mu.Unlock()

	// Compile off-lock; searches meanwhile walk the pointer segment.
	frozen := newSegment(core.Freeze(mem), mem, sealed.maxSeq)

	s.mu.Lock()
	st = s.state.Load()
	segs = make([]*segment, 0, len(st.segments))
	for _, seg := range st.segments {
		if seg == sealed {
			seg = frozen
		}
		segs = append(segs, seg)
	}
	s.state.Store(&state{segments: segs, epoch: st.epoch + 1})
	s.publishGauges()
	s.mu.Unlock()
	s.seals.Add(1)
	s.cSeals.Inc()
	s.hSeal.RecordSince(t0)
	s.structMu.Unlock()
	if compact {
		s.Compact()
	}
}

// Compact merges the whole segment stack into one segment: the pointer forms
// are combined with core.Merge (deep-copying, so the live inputs stay
// valid), tombstoned tuples are H-Deleted out of the merged index, and the
// result is refrozen and swapped in. Tombstones no remaining segment was
// sealed after are garbage-collected. Synchronous, like Seal.
func (s *Shard) Compact() {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	t0 := time.Now()
	inputs := s.state.Load().segments
	if len(inputs) == 0 {
		return
	}
	// Snapshot the masking decisions: which (segment, id) occurrences are
	// dead, and the sequence horizon the output represents. A tombstone
	// created mid-compaction has a sequence above this snapshot — and so
	// above the output's maxSeq — so the tuple it masks simply stays masked
	// by the live check after the swap.
	s.mu.RLock()
	snapSeq := s.seq
	type drop struct {
		id   int
		code bitvec.Code
	}
	var drops []drop
	droppedIDs := make(map[int]struct{})
	for _, seg := range inputs {
		enumerate(seg.idx, func(id int, c bitvec.Code) {
			if t, masked := s.tomb[id]; masked && t > seg.maxSeq {
				drops = append(drops, drop{id: id, code: c})
				droppedIDs[id] = struct{}{}
			}
		})
	}
	s.mu.RUnlock()
	if len(inputs) == 1 && len(drops) == 0 {
		return // nothing to merge, nothing to fold away
	}

	var merged *core.DynamicIndex
	if len(inputs) == 1 {
		// Merge of one part returns the part itself, which must keep serving
		// reads untouched — rebuild the survivors instead. An id occurs once
		// per segment, so the dropped-id set decides membership.
		var codes []bitvec.Code
		var ids []int
		enumerate(inputs[0].idx, func(id int, c bitvec.Code) {
			if _, dead := droppedIDs[id]; !dead {
				ids = append(ids, id)
				codes = append(codes, c)
			}
		})
		if len(ids) > 0 {
			merged = core.BuildDynamic(codes, ids, s.opts.Index)
		}
	} else {
		// Pointer forms for the merge; a frozen-bootstrapped segment rebuilds
		// one from its tuples.
		dyns := make([]*core.DynamicIndex, len(inputs))
		for i, seg := range inputs {
			if seg.dyn != nil {
				dyns[i] = seg.dyn
				continue
			}
			var codes []bitvec.Code
			var ids []int
			enumerate(seg.idx, func(id int, c bitvec.Code) {
				ids = append(ids, id)
				codes = append(codes, c)
			})
			dyns[i] = core.BuildDynamic(codes, ids, s.opts.Index)
		}
		// Merge deep-copies, so deleting the masked tuples out of the merged
		// index cannot corrupt the inputs still serving reads.
		merged = core.Merge(dyns...)
		if merged == dyns[0] {
			// Multi-part Merge always builds a fresh index; guard the
			// invariant anyway so a future Merge change cannot alias us.
			panic("lsm: Merge returned an input")
		}
		for _, d := range drops {
			merged.Delete(d.id, d.code)
		}
		merged.Flush()
		if merged.Len() == 0 {
			merged = nil
		}
	}
	var out *segment
	if merged != nil {
		out = newSegment(core.Freeze(merged), merged, snapSeq)
	}

	s.mu.Lock()
	st := s.state.Load()
	replaced := make(map[*segment]bool, len(inputs))
	for _, seg := range inputs {
		replaced[seg] = true
	}
	var segs []*segment
	if out != nil {
		segs = append(segs, out)
	}
	for _, seg := range st.segments {
		if !replaced[seg] {
			segs = append(segs, seg)
		}
	}
	s.state.Store(&state{segments: segs, epoch: st.epoch + 1})
	// GC tombstones that mask nothing anymore: a tombstone is needed only
	// while some segment was sealed before it.
	minMax := uint64(0)
	for i, seg := range segs {
		if i == 0 || seg.maxSeq < minMax {
			minMax = seg.maxSeq
		}
	}
	for id, t := range s.tomb {
		if len(segs) == 0 || t <= minMax {
			delete(s.tomb, id)
		}
	}
	s.publishGauges()
	s.mu.Unlock()
	s.compactions.Add(1)
	s.cComps.Inc()
	s.hCompact.RecordSince(t0)
}

// Close waits for in-flight background seals and compactions. The shard
// must not be mutated concurrently with or after Close.
func (s *Shard) Close() {
	s.closed.Store(true)
	s.wg.Wait()
}
