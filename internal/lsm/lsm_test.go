package lsm

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/obs"
)

// oracle is the brute-force model: one live code per id.
type oracle map[int]bitvec.Code

func (o oracle) search(q bitvec.Code, h int) []int {
	var out []int
	for id, c := range o {
		if _, ok := q.DistanceWithin(c, h); ok {
			out = append(out, id)
		}
	}
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func clustered(rng *rand.Rand, n, bitsLen, clusters, flips int) []bitvec.Code {
	centers := make([]bitvec.Code, clusters)
	for i := range centers {
		centers[i] = bitvec.Rand(rng, bitsLen)
	}
	out := make([]bitvec.Code, n)
	for i := range out {
		c := centers[rng.Intn(clusters)].Clone()
		for f := 0; f < flips; f++ {
			c.FlipBit(rng.Intn(bitsLen))
		}
		out[i] = c
	}
	return out
}

func checkAgainstOracle(t *testing.T, s *Shard, o oracle, rng *rand.Rand, bitsLen, queries int) {
	t.Helper()
	if s.Len() != len(o) {
		t.Fatalf("shard Len=%d oracle=%d", s.Len(), len(o))
	}
	for q := 0; q < queries; q++ {
		query := bitvec.Rand(rng, bitsLen)
		if len(o) > 0 && rng.Intn(3) > 0 {
			ids := make([]int, 0, len(o))
			for id := range o {
				ids = append(ids, id)
			}
			query = o[ids[rng.Intn(len(ids))]].Clone()
			for f := 0; f < rng.Intn(4); f++ {
				query.FlipBit(rng.Intn(bitsLen))
			}
		}
		for h := 0; h <= 8; h++ {
			var stats core.SearchStats
			got := s.SearchInto(query, h, &stats)
			want := o.search(query, h)
			if !equalIDs(got, want) {
				t.Fatalf("search h=%d mismatch: got %v want %v (stats=%+v)", h, got, want, stats)
			}
		}
	}
}

// TestShardVsOracleSequential drives a random interleaving of Insert
// (including id-reusing upserts), Delete, Seal, and Compact against the
// brute-force oracle, checking byte-identical answers throughout. Automatic
// sealing is disabled so every structural transition is deterministic.
func TestShardVsOracleSequential(t *testing.T) {
	for _, bitsLen := range []int{32, 64} {
		bitsLen := bitsLen
		t.Run(fmt.Sprintf("bits=%d", bitsLen), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + bitsLen)))
			s := New(bitsLen, Options{
				Index:       core.Options{Window: 8, BufferMax: 16},
				MemtableMax: -1,
				CompactAt:   -1,
			})
			defer s.Close()
			o := oracle{}
			nextID := 0
			pool := clustered(rng, 80, bitsLen, 6, 3)

			for step := 0; step < 400; step++ {
				switch op := rng.Intn(20); {
				case op < 8: // fresh insert
					c := pool[rng.Intn(len(pool))].Clone()
					for f := 0; f < rng.Intn(3); f++ {
						c.FlipBit(rng.Intn(bitsLen))
					}
					s.Insert(nextID, c)
					o[nextID] = c
					nextID++
				case op < 11: // upsert an existing id with a new code
					if len(o) == 0 {
						continue
					}
					ids := make([]int, 0, len(o))
					for id := range o {
						ids = append(ids, id)
					}
					id := ids[rng.Intn(len(ids))]
					c := bitvec.Rand(rng, bitsLen)
					if !s.Insert(id, c) {
						t.Fatalf("step %d: upsert of live id %d not reported as replace", step, id)
					}
					o[id] = c
				case op < 16: // delete
					if len(o) > 0 {
						ids := make([]int, 0, len(o))
						for id := range o {
							ids = append(ids, id)
						}
						id := ids[rng.Intn(len(ids))]
						if !s.Delete(id) {
							t.Fatalf("step %d: Delete(%d) reported not found", step, id)
						}
						delete(o, id)
					}
					if s.Delete(1 << 30) {
						t.Fatalf("step %d: Delete of absent id succeeded", step)
					}
				case op < 19: // seal
					s.Seal(false)
				default: // compact
					s.Seal(true)
				}
				if step%20 == 0 {
					checkAgainstOracle(t, s, o, rng, bitsLen, 3)
				}
			}
			s.Seal(true)
			checkAgainstOracle(t, s, o, rng, bitsLen, 20)
			st := s.Stats()
			if st.Segments > 1 {
				t.Fatalf("full compaction left %d segments", st.Segments)
			}
			if st.Epoch == 0 {
				t.Fatalf("structural swaps never bumped the epoch")
			}
		})
	}
}

// TestShardAutoSealCompact lets the background thresholds drive the
// layering: a small memtable bound and compaction trigger, a burst of
// inserts and deletes, then a quiesce and an exact oracle comparison.
func TestShardAutoSealCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	reg := obs.NewRegistry()
	s := New(32, Options{
		Index:       core.Options{Window: 8, BufferMax: 16},
		MemtableMax: 48,
		CompactAt:   2,
		Obs:         reg,
	})
	o := oracle{}
	codes := clustered(rng, 600, 32, 8, 3)
	for i, c := range codes {
		s.Insert(i, c)
		o[i] = c
		if i%5 == 0 && i > 0 {
			victim := rng.Intn(i)
			if _, live := o[victim]; live {
				s.Delete(victim)
				delete(o, victim)
			}
		}
	}
	// Quiesce: wait out in-flight background seals, then force a final
	// deterministic seal+compact.
	s.Close()
	s.Seal(true)
	if st := s.Stats(); st.Seals == 0 {
		t.Fatalf("no automatic seal fired below MemtableMax=48 after 600 inserts")
	}
	checkAgainstOracle(t, s, o, rng, 32, 25)
	if got := reg.Counter("lsm.inserts").Value(); got != 600 {
		t.Fatalf("lsm.inserts counter = %d, want 600", got)
	}
	if reg.Counter("lsm.seals").Value() == 0 {
		t.Fatalf("lsm.seals counter never incremented")
	}
}

// TestShardBootstrap starts shards from both index forms, then mutates
// through the frozen layer: deletes of bootstrapped ids must tombstone, an
// upsert must supersede the frozen copy, and compaction must fold the
// tombstones away.
func TestShardBootstrap(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	codes := clustered(rng, 200, 32, 5, 3)
	base := core.BuildDynamic(codes, nil, core.Options{Window: 8})
	for _, form := range []string{"dynamic", "frozen"} {
		form := form
		t.Run(form, func(t *testing.T) {
			var idx core.Index
			if form == "dynamic" {
				idx = core.BuildDynamic(codes, nil, core.Options{Window: 8})
			} else {
				idx = core.Freeze(core.BuildDynamic(codes, nil, core.Options{Window: 8}))
			}
			s := New(32, Options{Index: core.Options{Window: 8}, MemtableMax: -1, CompactAt: -1})
			defer s.Close()
			if err := s.Bootstrap(idx); err != nil {
				t.Fatal(err)
			}
			if err := s.Bootstrap(idx); err == nil {
				t.Fatal("second Bootstrap should fail")
			}
			o := oracle{}
			for i, c := range codes {
				o[i] = c
			}
			// Delete a frozen id, upsert another, insert a fresh one.
			s.Delete(3)
			delete(o, 3)
			moved := bitvec.Rand(rng, 32)
			if !s.Insert(7, moved) {
				t.Fatal("upsert of bootstrapped id not reported as replace")
			}
			o[7] = moved
			s.Insert(9000, codes[0])
			o[9000] = codes[0]
			if st := s.Stats(); st.Tombstones != 2 {
				t.Fatalf("want 2 tombstones (delete + upsert), got %d", st.Tombstones)
			}
			checkAgainstOracle(t, s, o, rng, 32, 15)
			s.Seal(true)
			if st := s.Stats(); st.Tombstones != 0 {
				t.Fatalf("compaction left %d tombstones", st.Tombstones)
			}
			checkAgainstOracle(t, s, o, rng, 32, 15)
			_ = base
		})
	}
}

// TestShardTopK checks radius-escalation TopK over the layered shard against
// a brute-force (distance, id) sort.
func TestShardTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := New(32, Options{Index: core.Options{Window: 8}, MemtableMax: -1, CompactAt: -1})
	defer s.Close()
	o := oracle{}
	for i, c := range clustered(rng, 150, 32, 6, 3) {
		s.Insert(i, c)
		o[i] = c
		if i == 70 {
			s.Seal(false) // split across a segment boundary
		}
	}
	s.Delete(5)
	delete(o, 5)
	for trial := 0; trial < 20; trial++ {
		q := bitvec.Rand(rng, 32)
		k := 1 + rng.Intn(12)
		type cand struct{ id, d int }
		var cands []cand
		for id, c := range o {
			d, _ := q.DistanceWithin(c, 32)
			cands = append(cands, cand{id, d})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].id < cands[j].id
		})
		wantIDs := make([]int, 0, k)
		wantDs := make([]int, 0, k)
		for i := 0; i < k && i < len(cands); i++ {
			wantIDs = append(wantIDs, cands[i].id)
			wantDs = append(wantDs, cands[i].d)
		}
		gotIDs, gotDs := s.TopK(q, k)
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("TopK k=%d: got %v want %v", k, gotIDs, wantIDs)
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] || gotDs[i] != wantDs[i] {
				t.Fatalf("TopK k=%d: got %v/%v want %v/%v", k, gotIDs, gotDs, wantIDs, wantDs)
			}
		}
	}
}

// TestShardConcurrentSearchUnderMutation is the acceptance test: continuous
// Insert/Delete with background seal+compact while searcher goroutines hammer
// the shard. A stable core of tuples is never mutated, so every concurrent
// search must contain exactly the stable ids its radius demands; after the
// writers quiesce, answers must be byte-identical to the brute-force oracle.
// Run under -race (make test-race) for the data-race half of the guarantee.
func TestShardConcurrentSearchUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	s := New(64, Options{
		Index:       core.Options{Window: 8, BufferMax: 32},
		MemtableMax: 64,
		CompactAt:   2,
	})
	o := oracle{}
	var oMu sync.Mutex

	// Stable core: ids 0..99, never touched again.
	stable := clustered(rng, 100, 64, 4, 2)
	for i, c := range stable {
		s.Insert(i, c)
		o[i] = c
	}
	s.Seal(false)

	churn := clustered(rng, 400, 64, 6, 3)
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator: churn ids >= 1000 (insert, upsert, delete) with background
	// seals and compactions firing off the thresholds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		mrng := rand.New(rand.NewSource(5678))
		next := 1000
		live := []int{}
		for i := 0; i < 1500; i++ {
			switch {
			case len(live) == 0 || mrng.Intn(3) > 0:
				c := churn[mrng.Intn(len(churn))].Clone()
				c.FlipBit(mrng.Intn(64))
				id := next
				next++
				oMu.Lock()
				s.Insert(id, c)
				o[id] = c
				oMu.Unlock()
				live = append(live, id)
			default:
				k := mrng.Intn(len(live))
				id := live[k]
				live = append(live[:k], live[k+1:]...)
				oMu.Lock()
				s.Delete(id)
				delete(o, id)
				oMu.Unlock()
			}
			if i%200 == 0 {
				s.Seal(i%400 == 0)
			}
		}
		close(done)
	}()

	// Searchers: the stable ids a query's radius demands must always be
	// present, whatever the churn does around them.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := stable[srng.Intn(len(stable))].Clone()
				for f := 0; f < srng.Intn(3); f++ {
					q.FlipBit(srng.Intn(64))
				}
				h := srng.Intn(7)
				got := map[int]bool{}
				for _, id := range s.Search(q, h) {
					if got[id] {
						t.Errorf("duplicate id %d in search result", id)
						return
					}
					got[id] = true
				}
				for id := 0; id < 100; id++ {
					if _, ok := q.DistanceWithin(stable[id], h); ok && !got[id] {
						t.Errorf("stable id %d missing from search (h=%d)", id, h)
						return
					}
				}
			}
		}(int64(9000 + w))
	}

	wg.Wait()
	s.Close()
	s.Seal(true)
	checkAgainstOracle(t, s, o, rng, 64, 25)
	if st := s.Stats(); st.Seals < 2 {
		t.Fatalf("expected background seals during churn, got %d", st.Seals)
	}
}

// TestShardSealEmptyAndCompactSingle checks the structural no-op edges.
func TestShardSealEmptyAndCompactSingle(t *testing.T) {
	s := New(32, Options{MemtableMax: -1, CompactAt: -1})
	defer s.Close()
	s.Seal(true) // empty shard: nothing to do, must not wedge or panic
	if st := s.Stats(); st.Segments != 0 || st.Len != 0 {
		t.Fatalf("empty seal produced state: %+v", st)
	}
	s.Insert(1, bitvec.FromUint64(0xF0F0F0F0, 32))
	s.Seal(false)
	s.Compact() // single segment: no-op
	if st := s.Stats(); st.Segments != 1 {
		t.Fatalf("compact of one segment changed count: %+v", st)
	}
	// Deleting every tuple and compacting must drop the segment entirely.
	s.Insert(2, bitvec.FromUint64(0x0F0F0F0F, 32))
	s.Seal(false)
	s.Delete(1)
	s.Delete(2)
	s.Seal(true)
	if st := s.Stats(); st.Segments != 0 || st.Len != 0 || st.Tombstones != 0 {
		t.Fatalf("compaction of fully-deleted shard left state: %+v", st)
	}
	if got := s.Search(bitvec.FromUint64(0xF0F0F0F0, 32), 32); len(got) != 0 {
		t.Fatalf("empty shard answered %v", got)
	}
}

// TestShardSealPublishesBeforeFreeze would be flaky as a timing assertion;
// instead, verify the observable contract: a Seal returning means the data
// is in a segment and still searchable, repeatedly, under small memtables.
func TestShardSealKeepsServing(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := New(32, Options{Index: core.Options{Window: 4}, MemtableMax: -1, CompactAt: -1})
	defer s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 40 && time.Now().Before(deadline); i++ {
		c := bitvec.Rand(rng, 32)
		s.Insert(i, c)
		s.Seal(false)
		if got := s.Search(c, 0); len(got) == 0 {
			t.Fatalf("tuple %d unsearchable immediately after Seal", i)
		}
	}
	if st := s.Stats(); st.MemtableSize != 0 {
		t.Fatalf("memtable not empty after Seal: %+v", st)
	}
}
