package mapreduce

import (
	"fmt"
	"time"
)

// TaskKind distinguishes map tasks from reduce tasks in fault plans and in
// the failure-model metrics.
type TaskKind uint8

const (
	MapTask TaskKind = iota
	ReduceTask
)

func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// Fault is what happens to one attempt of one task: an added latency (a
// straggling node), a forced failure after the attempt's work completes (a
// node dying at the end of the task, so the work is wasted), or both —
// the delay is served first, then the work runs, then the failure fires.
type Fault struct {
	Fail  bool
	Delay time.Duration
}

type faultKey struct {
	kind    TaskKind
	task    int
	attempt int
}

// FaultPlan is a deterministic fault-injection schedule: it maps
// (kind, task, attempt) triples to injected faults, so every failure a test
// or benchmark provokes is reproducible. A nil plan injects nothing. Plans
// are built before the job starts and read concurrently while it runs; they
// must not be mutated mid-job.
//
// The same plan may be shared by every job of a pipeline: task indices are
// per job, so FailEvery(MapTask, 4) fails the first attempt of every fourth
// map task of each job it is attached to.
type FaultPlan struct {
	entries map[faultKey]Fault
	every   map[TaskKind]int
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{
		entries: make(map[faultKey]Fault),
		every:   make(map[TaskKind]int),
	}
}

func (p *FaultPlan) upsert(kind TaskKind, task, attempt int, fn func(*Fault)) *FaultPlan {
	k := faultKey{kind: kind, task: task, attempt: attempt}
	f := p.entries[k]
	fn(&f)
	p.entries[k] = f
	return p
}

// Fail schedules attempt `attempt` of the given task to fail after its work
// completes. Returns the plan for chaining.
func (p *FaultPlan) Fail(kind TaskKind, task, attempt int) *FaultPlan {
	return p.upsert(kind, task, attempt, func(f *Fault) { f.Fail = true })
}

// Delay schedules attempt `attempt` of the given task to stall for d before
// doing its work — the straggler injection speculative execution exists to
// absorb. Returns the plan for chaining.
func (p *FaultPlan) Delay(kind TaskKind, task, attempt int, d time.Duration) *FaultPlan {
	return p.upsert(kind, task, attempt, func(f *Fault) { f.Delay = d })
}

// FailEvery schedules the first attempt of every task whose index is a
// multiple of mod to fail — a compact way to express a failure rate of
// 1/mod. mod <= 0 clears the rule. Explicit Fail/Delay entries take
// precedence for their exact (task, attempt).
func (p *FaultPlan) FailEvery(kind TaskKind, mod int) *FaultPlan {
	if mod <= 0 {
		delete(p.every, kind)
		return p
	}
	p.every[kind] = mod
	return p
}

// fault resolves the injected fault for one attempt; nil-receiver safe.
func (p *FaultPlan) fault(kind TaskKind, task, attempt int) Fault {
	if p == nil {
		return Fault{}
	}
	if f, ok := p.entries[faultKey{kind: kind, task: task, attempt: attempt}]; ok {
		return f
	}
	if mod, ok := p.every[kind]; ok && attempt == 0 && task%mod == 0 {
		return Fault{Fail: true}
	}
	return Fault{}
}

// RetryPolicy bounds per-task re-execution. Hadoop's equivalents are
// mapred.map.max.attempts / mapred.reduce.max.attempts (default 4) and the
// task-retry backoff.
type RetryPolicy struct {
	// MaxAttempts is the failure budget per task: a task that fails this
	// many times fails the job. 0 selects 4. Speculative attempts count
	// against the budget only if they fail.
	MaxAttempts int
	// Backoff is the sleep before the first retry; it doubles per
	// subsequent retry of the same task. 0 selects 1ms.
	Backoff time.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 4
	}
	if r.Backoff <= 0 {
		r.Backoff = time.Millisecond
	}
	return r
}

// Speculation configures speculative execution of stragglers: when a task's
// only running attempt has been executing longer than Factor times the
// median completed-task time of its phase, one backup attempt is launched
// and the first finisher wins; the loser's emissions are discarded and
// charged to Metrics.WastedBytes.
type Speculation struct {
	Enabled bool
	// Factor is the straggler threshold multiple over the median completed
	// task time. 0 selects 2.
	Factor float64
	// MinCompleted is how many tasks of the phase must have completed
	// before the median is trusted. 0 selects 3.
	MinCompleted int
	// MinRuntime floors the straggler threshold so microsecond-scale tasks
	// do not speculate on scheduling noise. 0 selects 1ms.
	MinRuntime time.Duration
}

func (s Speculation) withDefaults() Speculation {
	if s.Factor <= 0 {
		s.Factor = 2
	}
	if s.MinCompleted <= 0 {
		s.MinCompleted = 3
	}
	if s.MinRuntime <= 0 {
		s.MinRuntime = time.Millisecond
	}
	return s
}

// injectedFailure is the error an injected Fail fault produces.
func injectedFailure(job string, kind TaskKind, task, attempt int) error {
	return fmt.Errorf("mapreduce: job %q: injected failure of %s task %d attempt %d", job, kind, task, attempt)
}
