package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps injected-failure tests from sleeping through real backoff.
var fastRetry = RetryPolicy{Backoff: 50 * time.Microsecond}

// countJob is a wordcount-shaped job over synthetic input.
func countJob(name string, mappers, reducers, nodes int) (Config, []KV) {
	input := make([]KV, 600)
	for i := range input {
		input[i] = kv(fmt.Sprintf("k%02d", i%37), fmt.Sprintf("v%d", i))
	}
	cfg := Config{
		Name:     name,
		Mappers:  mappers,
		Reducers: reducers,
		Nodes:    nodes,
		Map:      func(in KV, emit func(KV)) error { emit(in); return nil },
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error {
			emit(KV{Key: key, Value: []byte(strconv.Itoa(len(values)))})
			return nil
		},
	}
	return cfg, input
}

func runsEqual(t *testing.T, a, b []KV) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("output sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("outputs differ at %d: %q=%q vs %q=%q", i, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
		}
	}
}

func TestRetryAfterInjectedFailure(t *testing.T) {
	cfg, input := countJob("retry", 8, 4, 4)
	cfg.Retry = fastRetry
	clean, cleanM, err := Run(cfg, input)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Faults = NewFaultPlan().
		Fail(MapTask, 0, 0).
		Fail(MapTask, 3, 0).
		Fail(ReduceTask, 1, 0).
		Fail(ReduceTask, 1, 1) // the same reduce task fails twice
	out, m, err := Run(cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	runsEqual(t, clean, out)
	if m.ShuffleBytes != cleanM.ShuffleBytes || m.ShuffleRecords != cleanM.ShuffleRecords {
		t.Fatalf("shuffle changed under failures: %d/%d vs %d/%d",
			m.ShuffleBytes, m.ShuffleRecords, cleanM.ShuffleBytes, cleanM.ShuffleRecords)
	}
	if want := int64(m.Tasks() + 4); m.Attempts != want {
		t.Fatalf("attempts = %d want %d", m.Attempts, want)
	}
	if m.RetriedTasks != 3 {
		t.Fatalf("retried tasks = %d want 3", m.RetriedTasks)
	}
	if m.WastedBytes == 0 {
		t.Fatal("injected failures produced no wasted bytes")
	}
	if cleanM.Attempts != int64(cleanM.Tasks()) || cleanM.WastedBytes != 0 {
		t.Fatalf("clean run has failure metrics: %+v", cleanM)
	}
}

func TestRetriesExhausted(t *testing.T) {
	cfg, input := countJob("exhausted", 4, 2, 4)
	cfg.Retry = RetryPolicy{MaxAttempts: 3, Backoff: 50 * time.Microsecond}
	plan := NewFaultPlan()
	for attempt := 0; attempt < 3; attempt++ {
		plan.Fail(MapTask, 1, attempt)
	}
	cfg.Faults = plan
	_, m, err := Run(cfg, input)
	if err == nil {
		t.Fatal("expected job failure after exhausting the attempt budget")
	}
	if !strings.Contains(err.Error(), "map task 1") {
		t.Fatalf("err = %v", err)
	}
	if m.Attempts < 3 {
		t.Fatalf("attempts = %d, want >= 3", m.Attempts)
	}
}

// TestFaultExactnessProperty is the property test: across randomized-shape
// jobs, injected failures plus retries must produce byte-identical output
// and identical shuffle accounting to the failure-free run.
func TestFaultExactnessProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		mappers := 3 + trial*2
		reducers := 2 + trial
		cfg, input := countJob(fmt.Sprintf("prop-%d", trial), mappers, reducers, 4)
		cfg.Retry = fastRetry
		clean, cleanM, err := Run(cfg, input)
		if err != nil {
			t.Fatal(err)
		}
		// >= 20% of both task kinds fail; a couple of tasks also straggle.
		cfg.Faults = NewFaultPlan().
			FailEvery(MapTask, 3).
			FailEvery(ReduceTask, 2).
			Delay(MapTask, 1, 0, 2*time.Millisecond).
			Delay(ReduceTask, 0, 1, time.Millisecond)
		out, m, err := Run(cfg, input)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		runsEqual(t, clean, out)
		if m.ShuffleBytes != cleanM.ShuffleBytes ||
			m.ShuffleRecords != cleanM.ShuffleRecords ||
			m.OutputRecords != cleanM.OutputRecords {
			t.Fatalf("trial %d: cost accounting changed under faults", trial)
		}
		if fmt.Sprint(m.ReducerRecords) != fmt.Sprint(cleanM.ReducerRecords) {
			t.Fatalf("trial %d: reducer records changed: %v vs %v", trial, m.ReducerRecords, cleanM.ReducerRecords)
		}
		if m.Attempts <= int64(m.Tasks()) {
			t.Fatalf("trial %d: attempts %d not above task count %d", trial, m.Attempts, m.Tasks())
		}
		if m.RetriedTasks == 0 || m.WastedBytes == 0 {
			t.Fatalf("trial %d: failure metrics empty: %+v", trial, m)
		}
	}
}

func TestSpeculativeExecution(t *testing.T) {
	const stall = 250 * time.Millisecond
	cfg, input := countJob("speculate", 8, 4, 8)
	cfg.Retry = fastRetry
	cfg.Faults = NewFaultPlan().Delay(MapTask, 0, 0, stall)

	clean, _, err := Run(cfg, input)
	if err != nil {
		t.Fatal(err)
	}

	slow := cfg
	_, slowM, err := Run(slow, input)
	if err != nil {
		t.Fatal(err)
	}
	if slowM.Wall < stall {
		t.Fatalf("without speculation the stall must dominate: wall %v < %v", slowM.Wall, stall)
	}

	fast := cfg
	fast.Speculation = Speculation{Enabled: true, MinCompleted: 2}
	out, fastM, err := Run(fast, input)
	if err != nil {
		t.Fatal(err)
	}
	runsEqual(t, clean, out)
	if fastM.SpeculativeLaunched == 0 || fastM.SpeculativeWon == 0 {
		t.Fatalf("no speculation recorded: %+v", fastM)
	}
	if fastM.Wall >= stall {
		t.Fatalf("speculation did not beat the straggler: wall %v >= %v", fastM.Wall, stall)
	}
	if fastM.Attempts <= int64(fastM.Tasks()) {
		t.Fatalf("speculative attempts not counted: %d attempts, %d tasks", fastM.Attempts, fastM.Tasks())
	}
}

// TestConcurrentMapErrors exercises simultaneous failures in several map
// tasks (with others succeeding concurrently); the job must deterministically
// report the lowest-indexed task's error. Run under -race by `make test-race`.
func TestConcurrentMapErrors(t *testing.T) {
	input := make([]KV, 64)
	for i := range input {
		input[i] = kv(fmt.Sprintf("k%02d", i), "v")
	}
	var calls atomic.Int64
	cfg := Config{
		Name:    "concurrent-errors",
		Mappers: 16,
		Nodes:   8,
		Retry:   RetryPolicy{MaxAttempts: 1},
		Map: func(in KV, emit func(KV)) error {
			calls.Add(1)
			// Tasks 3, 7, 11 fail (each split holds 4 consecutive records).
			i, _ := strconv.Atoi(string(in.Key[1:]))
			if task := i / 4; task == 3 || task == 7 || task == 11 {
				return fmt.Errorf("task %d boom", task)
			}
			emit(in)
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error {
			emit(KV{Key: key})
			return nil
		},
	}
	var first string
	for round := 0; round < 4; round++ {
		_, _, err := Run(cfg, input)
		if err == nil {
			t.Fatal("expected error")
		}
		if !strings.Contains(err.Error(), "map task 3") {
			t.Fatalf("round %d: non-deterministic error choice: %v", round, err)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("round %d: error changed: %q vs %q", round, err.Error(), first)
		}
	}
	if calls.Load() == 0 {
		t.Fatal("map never ran")
	}
}

func TestMetricsAddKeepsTaskData(t *testing.T) {
	// Regression: Add used to drop task times and per-reducer counts, so a
	// multi-job pipeline reported Skew() == 0 (or only the last job's).
	a := Metrics{
		MapTaskTimes:    []time.Duration{time.Millisecond},
		ReduceTaskTimes: []time.Duration{2 * time.Millisecond},
		ReducerRecords:  []int64{30, 10},
	}
	a.Add(Metrics{
		MapTaskTimes:    []time.Duration{3 * time.Millisecond, 4 * time.Millisecond},
		ReduceTaskTimes: []time.Duration{5 * time.Millisecond},
		ReducerRecords:  []int64{20, 20},
		Attempts:        7,
		RetriedTasks:    1,
		WastedBytes:     128,
	})
	if len(a.MapTaskTimes) != 3 || len(a.ReduceTaskTimes) != 2 || len(a.ReducerRecords) != 4 {
		t.Fatalf("task data dropped: %+v", a)
	}
	if got, want := a.Skew(), 30.0/20.0; got != want {
		t.Fatalf("skew = %v want %v", got, want)
	}
	if a.Attempts != 7 || a.RetriedTasks != 1 || a.WastedBytes != 128 {
		t.Fatalf("failure counters dropped: %+v", a)
	}
}

func TestTwoJobPipelineSkewNonzero(t *testing.T) {
	cfg, input := countJob("pipeline", 4, 4, 4)
	var total Metrics
	for job := 0; job < 2; job++ {
		_, m, err := Run(cfg, input)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(m)
	}
	if total.Skew() == 0 {
		t.Fatal("two-job pipeline reports zero skew")
	}
	if len(total.ReducerRecords) != 8 || len(total.MapTaskTimes) != 8 || len(total.ReduceTaskTimes) != 8 {
		t.Fatalf("per-task data not concatenated: %d reducers, %d map times, %d reduce times",
			len(total.ReducerRecords), len(total.MapTaskTimes), len(total.ReduceTaskTimes))
	}
}

func TestHashPartitionGuardAndParity(t *testing.T) {
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("HashPartition(%d) did not panic", n)
				}
			}()
			HashPartition([]byte("k"), n)
		}()
	}
	// The inlined FNV-1a must agree with the stdlib implementation the
	// partitioner previously allocated per record.
	for _, key := range []string{"", "a", "the quick brown fox", "\x00\xff\x10"} {
		for _, n := range []int{1, 2, 7, 64} {
			h := fnv.New32a()
			h.Write([]byte(key))
			want := int(h.Sum32() % uint32(n))
			if got := HashPartition([]byte(key), n); got != want {
				t.Fatalf("HashPartition(%q, %d) = %d want %d", key, n, got, want)
			}
		}
	}
}

func TestFaultPlanNilSafe(t *testing.T) {
	var p *FaultPlan
	if f := p.fault(MapTask, 0, 0); f.Fail || f.Delay != 0 {
		t.Fatalf("nil plan injected %+v", f)
	}
	plan := NewFaultPlan().FailEvery(ReduceTask, 2).Delay(MapTask, 1, 0, time.Millisecond)
	if f := plan.fault(ReduceTask, 2, 0); !f.Fail {
		t.Fatal("FailEvery missed task 2")
	}
	if f := plan.fault(ReduceTask, 2, 1); f.Fail {
		t.Fatal("FailEvery must only hit attempt 0")
	}
	if f := plan.fault(ReduceTask, 1, 0); f.Fail {
		t.Fatal("FailEvery hit a non-multiple task")
	}
	if f := plan.fault(MapTask, 1, 0); f.Delay != time.Millisecond {
		t.Fatalf("delay entry lost: %+v", f)
	}
	plan.FailEvery(ReduceTask, 0)
	if f := plan.fault(ReduceTask, 2, 0); f.Fail {
		t.Fatal("FailEvery(0) did not clear the rule")
	}
}

// TestDelayedTaskStillExact: a pure straggler (delay, no failure) changes
// only wall time, never output or attempts.
func TestDelayedTaskStillExact(t *testing.T) {
	cfg, input := countJob("delayed", 4, 2, 4)
	clean, _, err := Run(cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = NewFaultPlan().Delay(MapTask, 1, 0, 5*time.Millisecond)
	out, m, err := Run(cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	runsEqual(t, clean, out)
	if m.Attempts != int64(m.Tasks()) || m.RetriedTasks != 0 {
		t.Fatalf("delay alone changed attempt accounting: %+v", m)
	}
	if m.MapTaskTimes[1] < 5*time.Millisecond {
		t.Fatalf("delay not reflected in task time: %v", m.MapTaskTimes[1])
	}
}

func TestErrorsStillWrapped(t *testing.T) {
	boom := errors.New("boom")
	cfg := Config{
		Name:  "wrap",
		Retry: fastRetry,
		Map:   func(in KV, emit func(KV)) error { return boom },
	}
	_, _, err := Run(cfg, []KV{kv("a", "b")})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
