// Package mapreduce is an in-process MapReduce runtime with exact cost
// accounting, standing in for the paper's 16-node Hadoop 0.22 cluster
// (see DESIGN.md, substitution 1).
//
// The runtime executes real map and reduce functions on a bounded pool of
// workers that model cluster nodes. Every intermediate record crosses the
// map→reduce boundary as serialized bytes, so the shuffle volume the paper
// plots in Figure 7 is measured, not estimated; distributed-cache broadcasts
// (how the HA-Index and pivot tables reach every node) are charged per node.
// Per-task wall times and per-reducer record counts expose the load balance
// that the histogram-based partitioning of Section 5.1 is designed to
// achieve.
//
// The runtime is failure-aware: a FaultPlan injects deterministic task
// failures and straggler delays, failed attempts are retried with
// exponential backoff up to a bounded budget, and speculative execution
// races a backup attempt against any straggling task, taking the first
// finisher. Map and reduce functions are pure over their inputs, so
// re-execution cannot change the output or the shuffle volume; only the
// wasted-work counters and wall time reflect the failures.
package mapreduce

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"haindex/internal/obs"
)

// KV is one key-value record. Keys and values are raw bytes, as on the wire.
type KV struct {
	Key   []byte
	Value []byte
}

// MapFunc consumes one input record and emits intermediate records.
type MapFunc func(in KV, emit func(KV)) error

// ReduceFunc consumes one key group and emits output records.
type ReduceFunc func(key []byte, values [][]byte, emit func(KV)) error

// PartitionFunc routes an intermediate key to one of n reduce partitions.
type PartitionFunc func(key []byte, n int) int

// Broadcast is a distributed-cache entry: a read-only object shipped to every
// node before the job starts (Section 5.2 loads the pivots, the hash
// function, and the global HA-Index this way). Size is the serialized size
// charged once per node.
type Broadcast struct {
	Name string
	Size int64
}

// Config describes one MapReduce job.
type Config struct {
	Name     string
	Mappers  int // map tasks; 0 selects Nodes
	Reducers int // reduce tasks; 0 selects Nodes
	Nodes    int // concurrently executing workers (cluster size); 0 selects 4

	Map MapFunc // required
	// Combine, when set, runs on each map task's local output per key
	// before the shuffle — Hadoop's combiner. It must be semantically
	// idempotent with Reduce's aggregation; the runtime applies it once
	// per (map task, key) group.
	Combine   ReduceFunc
	Reduce    ReduceFunc
	Partition PartitionFunc // nil selects FNV-1a hash partitioning
	Broadcast []Broadcast

	// Faults, when set, injects deterministic task failures and straggler
	// delays (nil injects nothing). Map, Combine, and Reduce must be pure
	// over their inputs — any task attempt may be re-executed or raced
	// against a duplicate; external side effects must be idempotent (see
	// dfs.CreateIdempotent).
	Faults *FaultPlan
	// Retry bounds per-task re-execution; the zero value selects Hadoop's
	// defaults (4 attempts, backoff from 1ms doubling per retry).
	Retry RetryPolicy
	// Speculation, when enabled, launches a backup attempt for any task
	// running longer than a multiple of the median completed-task time and
	// takes the first finisher.
	Speculation Speculation

	// Obs, when set, receives the job's timing distributions: per-task wall
	// times land in the "mr.map_task_ns" / "mr.reduce_task_ns" histograms
	// and the phase walls in "mr.{map,shuffle,reduce}_wall_ns", so a
	// multi-job pipeline accumulates per-phase latency percentiles across
	// jobs. Nil records nothing.
	Obs *obs.Registry
}

// Metrics reports what one job cost.
type Metrics struct {
	ShuffleBytes   int64 // serialized intermediate data crossing map→reduce
	ShuffleRecords int64
	BroadcastBytes int64 // distributed-cache bytes (size × nodes)
	OutputRecords  int64

	MapTaskTimes    []time.Duration
	ReduceTaskTimes []time.Duration
	ReducerRecords  []int64 // per-reducer input records (skew indicator)
	Wall            time.Duration

	// Per-phase wall times; Wall covers the whole job, these split it into
	// the map phase, the shuffle (partition merge + sort), and the reduce
	// phase (including the identity pass of map-only jobs).
	MapWall     time.Duration
	ShuffleWall time.Duration
	ReduceWall  time.Duration

	// Failure-model counters. On a failure-free run without speculation,
	// Attempts equals the task count and the rest are zero.
	Attempts            int64 // task attempts launched (first runs, retries, backups)
	RetriedTasks        int64 // tasks that succeeded only after >=1 failed attempt
	SpeculativeLaunched int64 // backup attempts launched against stragglers
	SpeculativeWon      int64 // backups that finished before the original
	WastedBytes         int64 // bytes emitted by failed or losing attempts, discarded
}

// Skew returns max/mean of per-reducer record counts; 1.0 is perfectly
// balanced. It returns 0 when the job had no reduce input.
func (m Metrics) Skew() float64 {
	var max, sum int64
	for _, r := range m.ReducerRecords {
		if r > max {
			max = r
		}
		sum += r
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(m.ReducerRecords))
	return float64(max) / mean
}

// Add accumulates another job's metrics, for multi-job pipelines. Per-task
// data (task times, per-reducer record counts) is concatenated, so Skew()
// over the sum reflects every job's reducers, not just the last one's.
func (m *Metrics) Add(o Metrics) {
	m.ShuffleBytes += o.ShuffleBytes
	m.ShuffleRecords += o.ShuffleRecords
	m.BroadcastBytes += o.BroadcastBytes
	m.OutputRecords += o.OutputRecords
	m.Wall += o.Wall
	m.MapWall += o.MapWall
	m.ShuffleWall += o.ShuffleWall
	m.ReduceWall += o.ReduceWall
	m.MapTaskTimes = append(m.MapTaskTimes, o.MapTaskTimes...)
	m.ReduceTaskTimes = append(m.ReduceTaskTimes, o.ReduceTaskTimes...)
	m.ReducerRecords = append(m.ReducerRecords, o.ReducerRecords...)
	m.Attempts += o.Attempts
	m.RetriedTasks += o.RetriedTasks
	m.SpeculativeLaunched += o.SpeculativeLaunched
	m.SpeculativeWon += o.SpeculativeWon
	m.WastedBytes += o.WastedBytes
}

// Tasks returns the job's task count (map + reduce); with failures injected,
// Attempts exceeds it.
func (m Metrics) Tasks() int {
	return len(m.MapTaskTimes) + len(m.ReduceTaskTimes)
}

// observe publishes the job's timing distributions into reg (nil records
// nothing): per-task times and per-phase walls as histograms, job and
// attempt totals as counters.
func (m Metrics) observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	mapTask := reg.Histogram("mr.map_task_ns")
	for _, d := range m.MapTaskTimes {
		mapTask.Record(int64(d))
	}
	redTask := reg.Histogram("mr.reduce_task_ns")
	for _, d := range m.ReduceTaskTimes {
		redTask.Record(int64(d))
	}
	reg.Histogram("mr.map_wall_ns").Record(int64(m.MapWall))
	reg.Histogram("mr.shuffle_wall_ns").Record(int64(m.ShuffleWall))
	reg.Histogram("mr.reduce_wall_ns").Record(int64(m.ReduceWall))
	reg.Histogram("mr.job_wall_ns").Record(int64(m.Wall))
	reg.Counter("mr.jobs").Inc()
	reg.Counter("mr.attempts").Add(m.Attempts)
	reg.Counter("mr.shuffle_bytes").Add(m.ShuffleBytes)
	reg.Counter("mr.wasted_bytes").Add(m.WastedBytes)
}

// recordOverhead models per-record framing (key length + value length).
const recordOverhead = 8

// HashPartition is the default FNV-1a key partitioner. It panics when n is
// not positive, like an out-of-range slice index would.
func HashPartition(key []byte, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("mapreduce: HashPartition over %d partitions", n))
	}
	// FNV-1a inlined: the hash.Hash32 interface allocation is measurable on
	// the shuffle path, where this runs once per intermediate record.
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range key {
		h ^= uint32(b)
		h *= prime32
	}
	return int(h % uint32(n))
}

// kvBytes is one record's contribution to shuffle/output volume.
func kvBytes(kv KV) int64 {
	return int64(len(kv.Key) + len(kv.Value) + recordOverhead)
}

// Run executes the job over the input and returns the reduce output and the
// job metrics. Output records are sorted by (key, value) for determinism;
// injected failures, retries, and speculative execution never change the
// output or the shuffle volume.
func Run(cfg Config, input []KV) ([]KV, Metrics, error) {
	if cfg.Map == nil {
		return nil, Metrics{}, fmt.Errorf("mapreduce: job %q has no map function", cfg.Name)
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Mappers <= 0 {
		cfg.Mappers = cfg.Nodes
	}
	if cfg.Reducers <= 0 {
		cfg.Reducers = cfg.Nodes
	}
	if cfg.Partition == nil {
		cfg.Partition = HashPartition
	}
	var metrics Metrics
	for _, b := range cfg.Broadcast {
		metrics.BroadcastBytes += b.Size * int64(cfg.Nodes)
	}
	start := time.Now()
	defer func() { metrics.observe(cfg.Obs) }()
	sem := make(chan struct{}, cfg.Nodes)

	// ---- Map phase ----
	splits := splitInput(input, cfg.Mappers)
	mapPayloads, mapTooks, err := runPhase(MapTask, &cfg, sem, len(splits), &metrics,
		func(mi int) (any, int64, error) {
			parts := make([][]KV, cfg.Reducers)
			emit := func(kv KV) {
				p := cfg.Partition(kv.Key, cfg.Reducers)
				parts[p] = append(parts[p], kv)
			}
			for _, in := range splits[mi] {
				if err := cfg.Map(in, emit); err != nil {
					return nil, emittedBytes(parts), fmt.Errorf("mapreduce: job %q map task %d: %w", cfg.Name, mi, err)
				}
			}
			if cfg.Combine != nil {
				for p := range parts {
					combined, err := combine(cfg.Combine, parts[p])
					if err != nil {
						return nil, emittedBytes(parts), fmt.Errorf("mapreduce: job %q combiner (map task %d): %w", cfg.Name, mi, err)
					}
					parts[p] = combined
				}
			}
			return parts, emittedBytes(parts), nil
		})
	if err != nil {
		metrics.Wall = time.Since(start)
		return nil, metrics, err
	}
	metrics.MapTaskTimes = mapTooks
	metrics.MapWall = time.Since(start)

	// ---- Shuffle ----
	shuffleStart := time.Now()
	// Only winning attempts reach this point, so the shuffle volume is
	// identical to a failure-free run.
	partData := make([][]KV, cfg.Reducers)
	for _, payload := range mapPayloads {
		for p, kvs := range payload.([][]KV) {
			for _, kv := range kvs {
				metrics.ShuffleBytes += kvBytes(kv)
				metrics.ShuffleRecords++
			}
			partData[p] = append(partData[p], kvs...)
		}
	}
	metrics.ReducerRecords = make([]int64, cfg.Reducers)
	for p, kvs := range partData {
		metrics.ReducerRecords[p] = int64(len(kvs))
	}
	// Sort each partition here, as the shuffle's merge step: reduce task
	// attempts may be re-executed or raced concurrently, so their input
	// must be read-only.
	var sortWG sync.WaitGroup
	for p := range partData {
		sortWG.Add(1)
		go func(p int) {
			defer sortWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sortKVs(partData[p])
		}(p)
	}
	sortWG.Wait()
	metrics.ShuffleWall = time.Since(shuffleStart)

	// ---- Reduce phase ----
	reduceStart := time.Now()
	if cfg.Reduce == nil {
		// Identity job: the shuffled records are the output.
		var out []KV
		for _, kvs := range partData {
			out = append(out, kvs...)
		}
		sortKVs(out)
		metrics.OutputRecords = int64(len(out))
		metrics.ReduceWall = time.Since(reduceStart)
		metrics.Wall = time.Since(start)
		return out, metrics, nil
	}
	redPayloads, redTooks, err := runPhase(ReduceTask, &cfg, sem, cfg.Reducers, &metrics,
		func(p int) (any, int64, error) {
			kvs := partData[p]
			var out []KV
			var emitted int64
			emit := func(kv KV) {
				out = append(out, kv)
				emitted += kvBytes(kv)
			}
			for i := 0; i < len(kvs); {
				j := i
				for j < len(kvs) && bytes.Equal(kvs[j].Key, kvs[i].Key) {
					j++
				}
				vals := make([][]byte, 0, j-i)
				for _, kv := range kvs[i:j] {
					vals = append(vals, kv.Value)
				}
				if err := cfg.Reduce(kvs[i].Key, vals, emit); err != nil {
					return nil, emitted, fmt.Errorf("mapreduce: job %q reduce task %d: %w", cfg.Name, p, err)
				}
				i = j
			}
			return out, emitted, nil
		})
	if err != nil {
		metrics.Wall = time.Since(start)
		return nil, metrics, err
	}
	metrics.ReduceTaskTimes = redTooks
	var out []KV
	for _, payload := range redPayloads {
		out = append(out, payload.([]KV)...)
	}
	sortKVs(out)
	metrics.OutputRecords = int64(len(out))
	metrics.ReduceWall = time.Since(reduceStart)
	metrics.Wall = time.Since(start)
	return out, metrics, nil
}

// emittedBytes totals a map attempt's partitioned output volume.
func emittedBytes(parts [][]KV) int64 {
	var b int64
	for _, kvs := range parts {
		for _, kv := range kvs {
			b += kvBytes(kv)
		}
	}
	return b
}

// combine groups one map task's output for one partition by key and runs
// the combiner over each group.
func combine(fn ReduceFunc, kvs []KV) ([]KV, error) {
	if len(kvs) == 0 {
		return kvs, nil
	}
	sortKVs(kvs)
	var out []KV
	emit := func(kv KV) { out = append(out, kv) }
	for i := 0; i < len(kvs); {
		j := i
		for j < len(kvs) && bytes.Equal(kvs[j].Key, kvs[i].Key) {
			j++
		}
		vals := make([][]byte, 0, j-i)
		for _, kv := range kvs[i:j] {
			vals = append(vals, kv.Value)
		}
		if err := fn(kvs[i].Key, vals, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

// splitInput divides the input into contiguous chunks, one per map task.
func splitInput(input []KV, mappers int) [][]KV {
	if mappers > len(input) && len(input) > 0 {
		mappers = len(input)
	}
	if len(input) == 0 {
		return [][]KV{nil}
	}
	splits := make([][]KV, 0, mappers)
	per := (len(input) + mappers - 1) / mappers
	for at := 0; at < len(input); at += per {
		end := at + per
		if end > len(input) {
			end = len(input)
		}
		splits = append(splits, input[at:end])
	}
	return splits
}

func sortKVs(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool {
		if c := bytes.Compare(kvs[i].Key, kvs[j].Key); c != 0 {
			return c < 0
		}
		return bytes.Compare(kvs[i].Value, kvs[j].Value) < 0
	})
}
