// Package mapreduce is an in-process MapReduce runtime with exact cost
// accounting, standing in for the paper's 16-node Hadoop 0.22 cluster
// (see DESIGN.md, substitution 1).
//
// The runtime executes real map and reduce functions on a bounded pool of
// workers that model cluster nodes. Every intermediate record crosses the
// map→reduce boundary as serialized bytes, so the shuffle volume the paper
// plots in Figure 7 is measured, not estimated; distributed-cache broadcasts
// (how the HA-Index and pivot tables reach every node) are charged per node.
// Per-task wall times and per-reducer record counts expose the load balance
// that the histogram-based partitioning of Section 5.1 is designed to
// achieve.
package mapreduce

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// KV is one key-value record. Keys and values are raw bytes, as on the wire.
type KV struct {
	Key   []byte
	Value []byte
}

// MapFunc consumes one input record and emits intermediate records.
type MapFunc func(in KV, emit func(KV)) error

// ReduceFunc consumes one key group and emits output records.
type ReduceFunc func(key []byte, values [][]byte, emit func(KV)) error

// PartitionFunc routes an intermediate key to one of n reduce partitions.
type PartitionFunc func(key []byte, n int) int

// Broadcast is a distributed-cache entry: a read-only object shipped to every
// node before the job starts (Section 5.2 loads the pivots, the hash
// function, and the global HA-Index this way). Size is the serialized size
// charged once per node.
type Broadcast struct {
	Name string
	Size int64
}

// Config describes one MapReduce job.
type Config struct {
	Name     string
	Mappers  int // map tasks; 0 selects Nodes
	Reducers int // reduce tasks; 0 selects Nodes
	Nodes    int // concurrently executing workers (cluster size); 0 selects 4

	Map MapFunc // required
	// Combine, when set, runs on each map task's local output per key
	// before the shuffle — Hadoop's combiner. It must be semantically
	// idempotent with Reduce's aggregation; the runtime applies it once
	// per (map task, key) group.
	Combine   ReduceFunc
	Reduce    ReduceFunc
	Partition PartitionFunc // nil selects FNV-1a hash partitioning
	Broadcast []Broadcast
}

// Metrics reports what one job cost.
type Metrics struct {
	ShuffleBytes   int64 // serialized intermediate data crossing map→reduce
	ShuffleRecords int64
	BroadcastBytes int64 // distributed-cache bytes (size × nodes)
	OutputRecords  int64

	MapTaskTimes    []time.Duration
	ReduceTaskTimes []time.Duration
	ReducerRecords  []int64 // per-reducer input records (skew indicator)
	Wall            time.Duration
}

// Skew returns max/mean of per-reducer record counts; 1.0 is perfectly
// balanced. It returns 0 when the job had no reduce input.
func (m Metrics) Skew() float64 {
	var max, sum int64
	for _, r := range m.ReducerRecords {
		if r > max {
			max = r
		}
		sum += r
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(m.ReducerRecords))
	return float64(max) / mean
}

// Add accumulates the cost counters of another job, for multi-job pipelines.
func (m *Metrics) Add(o Metrics) {
	m.ShuffleBytes += o.ShuffleBytes
	m.ShuffleRecords += o.ShuffleRecords
	m.BroadcastBytes += o.BroadcastBytes
	m.OutputRecords += o.OutputRecords
	m.Wall += o.Wall
}

// recordOverhead models per-record framing (key length + value length).
const recordOverhead = 8

// HashPartition is the default FNV-1a key partitioner.
func HashPartition(key []byte, n int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// Run executes the job over the input and returns the reduce output and the
// job metrics. Output records are sorted by (key, value) for determinism.
func Run(cfg Config, input []KV) ([]KV, Metrics, error) {
	if cfg.Map == nil {
		return nil, Metrics{}, fmt.Errorf("mapreduce: job %q has no map function", cfg.Name)
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Mappers <= 0 {
		cfg.Mappers = cfg.Nodes
	}
	if cfg.Reducers <= 0 {
		cfg.Reducers = cfg.Nodes
	}
	if cfg.Partition == nil {
		cfg.Partition = HashPartition
	}
	var metrics Metrics
	for _, b := range cfg.Broadcast {
		metrics.BroadcastBytes += b.Size * int64(cfg.Nodes)
	}
	start := time.Now()

	// ---- Map phase ----
	splits := splitInput(input, cfg.Mappers)
	type mapOut struct {
		parts [][]KV
		took  time.Duration
		err   error
	}
	mapOuts := make([]mapOut, len(splits))
	sem := make(chan struct{}, cfg.Nodes)
	var wg sync.WaitGroup
	for mi := range splits {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			parts := make([][]KV, cfg.Reducers)
			emit := func(kv KV) {
				p := cfg.Partition(kv.Key, cfg.Reducers)
				parts[p] = append(parts[p], kv)
			}
			for _, in := range splits[mi] {
				if err := cfg.Map(in, emit); err != nil {
					mapOuts[mi] = mapOut{err: fmt.Errorf("mapreduce: job %q map task %d: %w", cfg.Name, mi, err)}
					return
				}
			}
			if cfg.Combine != nil {
				for p := range parts {
					combined, err := combine(cfg.Combine, parts[p])
					if err != nil {
						mapOuts[mi] = mapOut{err: fmt.Errorf("mapreduce: job %q combiner (map task %d): %w", cfg.Name, mi, err)}
						return
					}
					parts[p] = combined
				}
			}
			mapOuts[mi] = mapOut{parts: parts, took: time.Since(t0)}
		}(mi)
	}
	wg.Wait()
	for _, mo := range mapOuts {
		if mo.err != nil {
			return nil, metrics, mo.err
		}
		metrics.MapTaskTimes = append(metrics.MapTaskTimes, mo.took)
	}

	// ---- Shuffle ----
	partData := make([][]KV, cfg.Reducers)
	for _, mo := range mapOuts {
		for p, kvs := range mo.parts {
			for _, kv := range kvs {
				metrics.ShuffleBytes += int64(len(kv.Key) + len(kv.Value) + recordOverhead)
				metrics.ShuffleRecords++
			}
			partData[p] = append(partData[p], kvs...)
		}
	}
	metrics.ReducerRecords = make([]int64, cfg.Reducers)
	for p, kvs := range partData {
		metrics.ReducerRecords[p] = int64(len(kvs))
	}

	// ---- Reduce phase ----
	if cfg.Reduce == nil {
		// Identity job: the shuffled records are the output.
		var out []KV
		for _, kvs := range partData {
			out = append(out, kvs...)
		}
		sortKVs(out)
		metrics.OutputRecords = int64(len(out))
		metrics.Wall = time.Since(start)
		return out, metrics, nil
	}
	type redOut struct {
		out  []KV
		took time.Duration
		err  error
	}
	redOuts := make([]redOut, cfg.Reducers)
	for p := range partData {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			kvs := partData[p]
			sortKVs(kvs)
			var out []KV
			emit := func(kv KV) { out = append(out, kv) }
			for i := 0; i < len(kvs); {
				j := i
				for j < len(kvs) && bytes.Equal(kvs[j].Key, kvs[i].Key) {
					j++
				}
				vals := make([][]byte, 0, j-i)
				for _, kv := range kvs[i:j] {
					vals = append(vals, kv.Value)
				}
				if err := cfg.Reduce(kvs[i].Key, vals, emit); err != nil {
					redOuts[p] = redOut{err: fmt.Errorf("mapreduce: job %q reduce task %d: %w", cfg.Name, p, err)}
					return
				}
				i = j
			}
			redOuts[p] = redOut{out: out, took: time.Since(t0)}
		}(p)
	}
	wg.Wait()
	var out []KV
	for _, ro := range redOuts {
		if ro.err != nil {
			return nil, metrics, ro.err
		}
		metrics.ReduceTaskTimes = append(metrics.ReduceTaskTimes, ro.took)
		out = append(out, ro.out...)
	}
	sortKVs(out)
	metrics.OutputRecords = int64(len(out))
	metrics.Wall = time.Since(start)
	return out, metrics, nil
}

// combine groups one map task's output for one partition by key and runs
// the combiner over each group.
func combine(fn ReduceFunc, kvs []KV) ([]KV, error) {
	if len(kvs) == 0 {
		return kvs, nil
	}
	sortKVs(kvs)
	var out []KV
	emit := func(kv KV) { out = append(out, kv) }
	for i := 0; i < len(kvs); {
		j := i
		for j < len(kvs) && bytes.Equal(kvs[j].Key, kvs[i].Key) {
			j++
		}
		vals := make([][]byte, 0, j-i)
		for _, kv := range kvs[i:j] {
			vals = append(vals, kv.Value)
		}
		if err := fn(kvs[i].Key, vals, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

// splitInput divides the input into contiguous chunks, one per map task.
func splitInput(input []KV, mappers int) [][]KV {
	if mappers > len(input) && len(input) > 0 {
		mappers = len(input)
	}
	if len(input) == 0 {
		return [][]KV{nil}
	}
	splits := make([][]KV, 0, mappers)
	per := (len(input) + mappers - 1) / mappers
	for at := 0; at < len(input); at += per {
		end := at + per
		if end > len(input) {
			end = len(input)
		}
		splits = append(splits, input[at:end])
	}
	return splits
}

func sortKVs(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool {
		if c := bytes.Compare(kvs[i].Key, kvs[j].Key); c != 0 {
			return c < 0
		}
		return bytes.Compare(kvs[i].Value, kvs[j].Value) < 0
	})
}
