package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func kv(k, v string) KV { return KV{Key: []byte(k), Value: []byte(v)} }

func TestWordCount(t *testing.T) {
	docs := []KV{
		kv("d1", "the quick brown fox"),
		kv("d2", "the lazy dog"),
		kv("d3", "the fox"),
	}
	cfg := Config{
		Name: "wordcount",
		Map: func(in KV, emit func(KV)) error {
			for _, w := range strings.Fields(string(in.Value)) {
				emit(kv(w, "1"))
			}
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error {
			emit(KV{Key: key, Value: []byte(strconv.Itoa(len(values)))})
			return nil
		},
	}
	out, m, err := Run(cfg, docs)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range out {
		got[string(kv.Key)] = string(kv.Value)
	}
	want := map[string]string{"the": "3", "quick": "1", "brown": "1", "fox": "2", "lazy": "1", "dog": "1"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %q want %q", k, got[k], v)
		}
	}
	if m.ShuffleRecords != 9 {
		t.Errorf("shuffle records = %d want 9", m.ShuffleRecords)
	}
	wantBytes := int64(0)
	for _, w := range []string{"the", "quick", "brown", "fox", "the", "lazy", "dog", "the", "fox"} {
		wantBytes += int64(len(w) + 1 + recordOverhead)
	}
	if m.ShuffleBytes != wantBytes {
		t.Errorf("shuffle bytes = %d want %d", m.ShuffleBytes, wantBytes)
	}
	if m.OutputRecords != 6 {
		t.Errorf("output records = %d", m.OutputRecords)
	}
}

func TestDeterministicOutput(t *testing.T) {
	input := make([]KV, 100)
	for i := range input {
		input[i] = kv(fmt.Sprintf("k%03d", i%10), fmt.Sprintf("v%d", i))
	}
	cfg := Config{
		Name: "ident",
		Map:  func(in KV, emit func(KV)) error { emit(in); return nil },
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error {
			for _, v := range values {
				emit(KV{Key: key, Value: v})
			}
			return nil
		},
		Mappers:  7,
		Reducers: 3,
		Nodes:    8,
	}
	out1, _, err := Run(cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := Run(cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != len(out2) {
		t.Fatal("different output sizes")
	}
	for i := range out1 {
		if !bytes.Equal(out1[i].Key, out2[i].Key) || !bytes.Equal(out1[i].Value, out2[i].Value) {
			t.Fatal("nondeterministic output")
		}
	}
	if !sort.SliceIsSorted(out1, func(i, j int) bool { return bytes.Compare(out1[i].Key, out1[j].Key) < 0 }) {
		t.Fatal("output not key-sorted")
	}
}

func TestIdentityReduceNil(t *testing.T) {
	input := []KV{kv("b", "2"), kv("a", "1")}
	out, m, err := Run(Config{Name: "nil-reduce", Map: func(in KV, emit func(KV)) error { emit(in); return nil }}, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || string(out[0].Key) != "a" {
		t.Fatalf("out = %v", out)
	}
	if m.OutputRecords != 2 {
		t.Fatalf("records = %d", m.OutputRecords)
	}
}

func TestCustomPartitioner(t *testing.T) {
	input := []KV{kv("0", "a"), kv("1", "b"), kv("2", "c"), kv("3", "d")}
	seen := make(map[int][]string)
	cfg := Config{
		Name:     "parts",
		Reducers: 2,
		Map:      func(in KV, emit func(KV)) error { emit(in); return nil },
		Partition: func(key []byte, n int) int {
			v, _ := strconv.Atoi(string(key))
			return v % n
		},
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error {
			v, _ := strconv.Atoi(string(key))
			seen[v%2] = append(seen[v%2], string(key))
			emit(KV{Key: key})
			return nil
		},
	}
	if _, m, err := Run(cfg, input); err != nil {
		t.Fatal(err)
	} else if m.ReducerRecords[0] != 2 || m.ReducerRecords[1] != 2 {
		t.Fatalf("reducer records = %v", m.ReducerRecords)
	}
}

func TestBroadcastAccounting(t *testing.T) {
	cfg := Config{
		Name:      "bcast",
		Nodes:     5,
		Map:       func(in KV, emit func(KV)) error { return nil },
		Broadcast: []Broadcast{{Name: "index", Size: 1000}, {Name: "pivots", Size: 24}},
	}
	_, m, err := Run(cfg, []KV{kv("x", "y")})
	if err != nil {
		t.Fatal(err)
	}
	if m.BroadcastBytes != 5*1024 {
		t.Fatalf("broadcast bytes = %d want %d", m.BroadcastBytes, 5*1024)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := Run(Config{
		Name: "maperr",
		Map:  func(in KV, emit func(KV)) error { return boom },
	}, []KV{kv("a", "b")})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceError(t *testing.T) {
	boom := errors.New("red")
	_, _, err := Run(Config{
		Name:   "rederr",
		Map:    func(in KV, emit func(KV)) error { emit(in); return nil },
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error { return boom },
	}, []KV{kv("a", "b")})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingMap(t *testing.T) {
	if _, _, err := Run(Config{Name: "nomap"}, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSkewMetric(t *testing.T) {
	m := Metrics{ReducerRecords: []int64{10, 10, 10, 10}}
	if m.Skew() != 1 {
		t.Fatalf("balanced skew = %v", m.Skew())
	}
	m = Metrics{ReducerRecords: []int64{40, 0, 0, 0}}
	if m.Skew() != 4 {
		t.Fatalf("skew = %v", m.Skew())
	}
	if (Metrics{}).Skew() != 0 {
		t.Fatal("empty skew should be 0")
	}
}

func TestSplitInput(t *testing.T) {
	in := make([]KV, 10)
	s := splitInput(in, 3)
	if len(s) != 3 || len(s[0]) != 4 || len(s[2]) != 2 {
		t.Fatalf("splits = %d/%d/%d", len(s[0]), len(s[1]), len(s[2]))
	}
	if got := splitInput(nil, 4); len(got) != 1 || got[0] != nil {
		t.Fatal("empty input should give one empty split")
	}
	if got := splitInput(in[:2], 8); len(got) != 2 {
		t.Fatalf("more mappers than records: %d splits", len(got))
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{ShuffleBytes: 10, ShuffleRecords: 1, BroadcastBytes: 5, OutputRecords: 2}
	a.Add(Metrics{ShuffleBytes: 20, ShuffleRecords: 2, BroadcastBytes: 15, OutputRecords: 3})
	if a.ShuffleBytes != 30 || a.ShuffleRecords != 3 || a.BroadcastBytes != 20 || a.OutputRecords != 5 {
		t.Fatalf("add = %+v", a)
	}
}

// TestManyTasksParallel stresses the worker pool with more tasks than nodes.
func TestManyTasksParallel(t *testing.T) {
	input := make([]KV, 5000)
	for i := range input {
		input[i] = kv(fmt.Sprintf("k%d", i%97), "v")
	}
	cfg := Config{
		Name:     "stress",
		Mappers:  64,
		Reducers: 32,
		Nodes:    4,
		Map:      func(in KV, emit func(KV)) error { emit(in); return nil },
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error {
			emit(KV{Key: key, Value: []byte(strconv.Itoa(len(values)))})
			return nil
		},
	}
	out, m, err := Run(cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 97 {
		t.Fatalf("out = %d keys", len(out))
	}
	if len(m.MapTaskTimes) != 64 || len(m.ReduceTaskTimes) != 32 {
		t.Fatalf("task counts %d/%d", len(m.MapTaskTimes), len(m.ReduceTaskTimes))
	}
	total := int64(0)
	for _, kv := range out {
		v, _ := strconv.Atoi(string(kv.Value))
		total += int64(v)
	}
	if total != 5000 {
		t.Fatalf("counted %d", total)
	}
}

func TestCombiner(t *testing.T) {
	input := make([]KV, 1000)
	for i := range input {
		input[i] = kv(fmt.Sprintf("k%d", i%5), "1")
	}
	sum := func(key []byte, values [][]byte, emit func(KV)) error {
		total := 0
		for _, v := range values {
			x, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += x
		}
		emit(KV{Key: key, Value: []byte(strconv.Itoa(total))})
		return nil
	}
	base := Config{
		Name:    "sum",
		Mappers: 8,
		Map:     func(in KV, emit func(KV)) error { emit(in); return nil },
		Reduce:  sum,
	}
	outPlain, mPlain, err := Run(base, input)
	if err != nil {
		t.Fatal(err)
	}
	withComb := base
	withComb.Name = "sum-combined"
	withComb.Combine = sum
	outComb, mComb, err := Run(withComb, input)
	if err != nil {
		t.Fatal(err)
	}
	// Same answers.
	if len(outPlain) != len(outComb) {
		t.Fatalf("outputs differ: %d vs %d", len(outPlain), len(outComb))
	}
	for i := range outPlain {
		if string(outPlain[i].Key) != string(outComb[i].Key) ||
			string(outPlain[i].Value) != string(outComb[i].Value) {
			t.Fatalf("combiner changed results: %v vs %v", outPlain[i], outComb[i])
		}
	}
	// Far less shuffle: 8 mappers × 5 keys instead of 1000 records.
	if mComb.ShuffleRecords >= mPlain.ShuffleRecords/10 {
		t.Fatalf("combiner shuffle %d not much below plain %d", mComb.ShuffleRecords, mPlain.ShuffleRecords)
	}
}

func TestCombinerError(t *testing.T) {
	_, _, err := Run(Config{
		Name: "comb-err",
		Map:  func(in KV, emit func(KV)) error { emit(in); return nil },
		Combine: func(key []byte, values [][]byte, emit func(KV)) error {
			return errors.New("combiner boom")
		},
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error { return nil },
	}, []KV{kv("a", "1")})
	if err == nil || !strings.Contains(err.Error(), "combiner") {
		t.Fatalf("err = %v", err)
	}
}
