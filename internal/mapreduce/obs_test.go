package mapreduce

import (
	"strconv"
	"strings"
	"testing"

	"haindex/internal/obs"
)

// TestPhaseWallsAndObs: a job must split its wall time into the three
// phases and, when given a registry, publish per-task and per-phase timing
// distributions into it.
func TestPhaseWallsAndObs(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		Name:    "obs",
		Mappers: 3, Reducers: 2, Nodes: 2,
		Obs: reg,
		Map: func(in KV, emit func(KV)) error {
			for _, w := range strings.Fields(string(in.Value)) {
				emit(kv(w, "1"))
			}
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(KV)) error {
			emit(KV{Key: key, Value: []byte(strconv.Itoa(len(values)))})
			return nil
		},
	}
	docs := []KV{kv("d1", "a b c"), kv("d2", "b c d"), kv("d3", "c d e")}
	_, m, err := Run(cfg, docs)
	if err != nil {
		t.Fatal(err)
	}
	if m.MapWall <= 0 || m.ShuffleWall <= 0 || m.ReduceWall <= 0 {
		t.Fatalf("phase walls not set: map=%v shuffle=%v reduce=%v", m.MapWall, m.ShuffleWall, m.ReduceWall)
	}
	if sum := m.MapWall + m.ShuffleWall + m.ReduceWall; sum > m.Wall+m.Wall/2 {
		t.Fatalf("phase walls %v far exceed job wall %v", sum, m.Wall)
	}
	snap := reg.Snapshot()
	if got := snap.Histograms["mr.map_task_ns"].Count; got != int64(len(m.MapTaskTimes)) {
		t.Fatalf("mr.map_task_ns holds %d samples, want %d", got, len(m.MapTaskTimes))
	}
	if got := snap.Histograms["mr.reduce_task_ns"].Count; got != int64(len(m.ReduceTaskTimes)) {
		t.Fatalf("mr.reduce_task_ns holds %d samples, want %d", got, len(m.ReduceTaskTimes))
	}
	for _, name := range []string{"mr.map_wall_ns", "mr.shuffle_wall_ns", "mr.reduce_wall_ns", "mr.job_wall_ns"} {
		if snap.Histograms[name].Count != 1 {
			t.Fatalf("%s holds %d samples, want 1", name, snap.Histograms[name].Count)
		}
	}
	if snap.Counters["mr.jobs"] != 1 || snap.Counters["mr.attempts"] != m.Attempts {
		t.Fatalf("job counters wrong: %v (attempts=%d)", snap.Counters, m.Attempts)
	}

	// A second job accumulates into the same registry, and Metrics.Add
	// carries the phase walls along.
	var total Metrics
	total.Add(m)
	_, m2, err := Run(cfg, docs)
	if err != nil {
		t.Fatal(err)
	}
	total.Add(m2)
	if total.MapWall != m.MapWall+m2.MapWall || total.ReduceWall != m.ReduceWall+m2.ReduceWall {
		t.Fatalf("Metrics.Add dropped phase walls: %+v", total)
	}
	if got := reg.Snapshot().Counters["mr.jobs"]; got != 2 {
		t.Fatalf("mr.jobs = %d after two jobs", got)
	}
}
