package mapreduce

import (
	"sort"
	"sync"
	"time"
)

// This file is the failure-aware task scheduler. Each phase (map, reduce)
// hands the scheduler a set of tasks whose work functions are pure over
// their inputs — re-executing one produces identical output — so the
// scheduler is free to retry failed attempts and to race duplicate
// (speculative) attempts against stragglers, exactly as Hadoop's JobTracker
// does. Only the winning attempt's output reaches the shuffle or the job
// output; everything emitted by failed or losing attempts is discarded and
// accounted as wasted work.

// attemptResult is one attempt's outcome, reported to its task loop.
type attemptResult struct {
	attempt     int
	speculative bool
	payload     any
	bytes       int64 // emitted bytes, charged to WastedBytes if discarded
	took        time.Duration
	err         error
	superseded  bool // cancelled before doing work (winner already decided)
}

// taskState is the per-task bookkeeping shared between the task loop, the
// attempt goroutines, and the speculation monitor.
type taskState struct {
	mu         sync.Mutex
	next       int       // next attempt index to hand out
	running    int       // attempts currently live
	backup     bool      // a speculative attempt was launched
	done       bool      // a winner was decided
	startedRun time.Time // when the sole live attempt began executing

	results chan attemptResult
	cancel  chan struct{} // closed once a winner is decided
}

// scheduler runs one phase's tasks under the failure model.
type scheduler struct {
	kind  TaskKind
	cfg   *Config
	sem   chan struct{} // node slots, shared across phases of the job
	run   func(task int) (payload any, bytes int64, err error)
	retry RetryPolicy
	spec  Speculation

	tasks []*taskState

	mu        sync.Mutex
	completed []time.Duration // winning-attempt durations, for the median

	// failure-model counters, merged into Metrics by runPhase
	attempts     int64
	retriedTasks int64
	specLaunched int64
	specWon      int64
	wasted       int64
}

// runPhase executes n tasks and returns their payloads and winning-attempt
// durations in task order. On failure it returns the error of the
// lowest-indexed failed task, for determinism. The failure-model counters
// are merged into m even when the phase fails.
func runPhase(kind TaskKind, cfg *Config, sem chan struct{}, n int, m *Metrics,
	run func(task int) (any, int64, error)) ([]any, []time.Duration, error) {

	s := &scheduler{
		kind:  kind,
		cfg:   cfg,
		sem:   sem,
		run:   run,
		retry: cfg.Retry.withDefaults(),
		spec:  cfg.Speculation.withDefaults(),
		tasks: make([]*taskState, n),
	}
	for t := range s.tasks {
		s.tasks[t] = &taskState{
			results: make(chan attemptResult, s.retry.MaxAttempts+2),
			cancel:  make(chan struct{}),
		}
	}

	stopMonitor := make(chan struct{})
	var monitorWG sync.WaitGroup
	if cfg.Speculation.Enabled {
		monitorWG.Add(1)
		go func() {
			defer monitorWG.Done()
			s.monitor(stopMonitor)
		}()
	}

	payloads := make([]any, n)
	tooks := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for t := 0; t < n; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			payloads[t], tooks[t], errs[t] = s.runTask(t)
		}(t)
	}
	wg.Wait()
	close(stopMonitor)
	monitorWG.Wait()

	m.Attempts += s.attempts
	m.RetriedTasks += s.retriedTasks
	m.SpeculativeLaunched += s.specLaunched
	m.SpeculativeWon += s.specWon
	m.WastedBytes += s.wasted

	for t := 0; t < n; t++ {
		if errs[t] != nil {
			return nil, nil, errs[t]
		}
	}
	return payloads, tooks, nil
}

// launch starts one attempt of task t. Speculative launches are refused once
// the task is done or already has a backup.
func (s *scheduler) launch(t int, speculative bool) {
	st := s.tasks[t]
	st.mu.Lock()
	if speculative && (st.done || st.backup || st.running != 1) {
		st.mu.Unlock()
		return
	}
	attempt := st.next
	st.next++
	st.running++
	if speculative {
		st.backup = true
	}
	st.mu.Unlock()

	s.mu.Lock()
	s.attempts++
	if speculative {
		s.specLaunched++
	}
	s.mu.Unlock()

	go s.exec(t, attempt, speculative)
}

// exec runs one attempt: wait for a node slot, serve the injected delay
// (cancellable — a loser stuck in a simulated stall is "killed" the moment
// the winner commits), run the task work, then fire the injected failure.
func (s *scheduler) exec(t, attempt int, speculative bool) {
	st := s.tasks[t]
	select {
	case <-st.cancel:
		st.results <- attemptResult{attempt: attempt, speculative: speculative, superseded: true}
		return
	case s.sem <- struct{}{}:
	}
	defer func() { <-s.sem }()

	t0 := time.Now()
	st.mu.Lock()
	if st.running == 1 {
		st.startedRun = t0
	}
	st.mu.Unlock()

	f := s.cfg.Faults.fault(s.kind, t, attempt)
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-st.cancel:
			st.results <- attemptResult{attempt: attempt, speculative: speculative, superseded: true, took: time.Since(t0)}
			return
		}
	}
	payload, bytes, err := s.run(t)
	if err == nil && f.Fail {
		err = injectedFailure(s.cfg.Name, s.kind, t, attempt)
	}
	st.results <- attemptResult{
		attempt:     attempt,
		speculative: speculative,
		payload:     payload,
		bytes:       bytes,
		took:        time.Since(t0),
		err:         err,
	}
}

// runTask drives one task to completion: launch the first attempt, retry
// failures with exponential backoff up to the attempt budget, absorb
// speculative results, and drain every live attempt before returning so no
// goroutine outlives the phase.
func (s *scheduler) runTask(t int) (any, time.Duration, error) {
	st := s.tasks[t]
	s.launch(t, false)

	var winner *attemptResult
	var lastErr error
	failures := 0
	for {
		res := <-st.results
		st.mu.Lock()
		st.running--
		live := st.running
		st.mu.Unlock()

		switch {
		case winner != nil || res.superseded:
			// Work done after the winner committed is wasted.
			s.addWasted(res.bytes)
		case res.err == nil:
			res := res
			winner = &res
			st.mu.Lock()
			st.done = true
			st.mu.Unlock()
			close(st.cancel)
			s.mu.Lock()
			if res.speculative {
				s.specWon++
			}
			if failures > 0 {
				s.retriedTasks++
			}
			s.completed = append(s.completed, res.took)
			s.mu.Unlock()
		default:
			failures++
			lastErr = res.err
			s.addWasted(res.bytes)
			if live == 0 {
				if failures >= s.retry.MaxAttempts {
					return nil, 0, lastErr
				}
				time.Sleep(s.retry.Backoff << uint(failures-1))
				s.launch(t, false)
			}
			// A concurrent (speculative) attempt is still live: it may
			// yet win, so neither retry nor fail until it reports.
		}
		if winner != nil && live == 0 {
			return winner.payload, winner.took, nil
		}
		if winner == nil && live == 0 && failures >= s.retry.MaxAttempts {
			return nil, 0, lastErr
		}
	}
}

func (s *scheduler) addWasted(b int64) {
	s.mu.Lock()
	s.wasted += b
	s.mu.Unlock()
}

// monitor is the speculation loop: once enough tasks have completed to
// trust the median, any task whose sole running attempt has exceeded the
// straggler threshold gets one backup attempt.
func (s *scheduler) monitor(stop <-chan struct{}) {
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		med, n := s.medianCompleted()
		if n < s.spec.MinCompleted {
			continue
		}
		threshold := time.Duration(s.spec.Factor * float64(med))
		if threshold < s.spec.MinRuntime {
			threshold = s.spec.MinRuntime
		}
		now := time.Now()
		for t, st := range s.tasks {
			st.mu.Lock()
			straggling := !st.done && !st.backup && st.running == 1 &&
				!st.startedRun.IsZero() && now.Sub(st.startedRun) > threshold
			st.mu.Unlock()
			if straggling {
				s.launch(t, true)
			}
		}
	}
}

// medianCompleted returns the median winning-attempt duration and how many
// tasks have completed.
func (s *scheduler) medianCompleted() (time.Duration, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.completed)
	if n == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), s.completed...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[n/2], n
}
