package mih

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"haindex/internal/core"
)

// codecVersion is the HADX v3 layout: the MIH arenas serialized directly,
// mirroring the frozen HA-Index's v2 section — decoding is a flat fill of
// the slabs, no per-probe reconstruction. The version is registered with
// core.RegisterIndexDecoder so core.DecodeIndex (and therefore the snapshot
// loader) understands MIH sections wherever a HADX stream is accepted.
//
// Layout (integers are unsigned varints unless noted):
//
//	magic "HADX" | version 3 | code length L | flags (bit0: ids present)
//	blocks | matched | nGroups | nKeys | nCands
//	codeSlab: nGroups*nw words (fixed 8B big-endian each)
//	ids (only when flag set): per group: count, then delta-encoded ids
//	per-table key counts: C(blocks, matched) values summing to nKeys
//	keys: per table, first key raw, then strictly positive deltas
//	candidate degrees: nKeys counts (prefix-summed into candStart on decode)
//	cands: nCands group indexes
const codecVersion = 3

// Encode writes the index in the v3 arena layout. With withIDs=false the
// tuple-id tables are omitted (the leafless Option-B broadcast form, as the
// HA-Index codecs offer).
func (m *Index) Encode(w io.Writer, withIDs bool) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("HADX"); err != nil {
		return err
	}
	putUvarint(bw, codecVersion)
	putUvarint(bw, uint64(m.length))
	flags := uint64(0)
	if withIDs {
		flags |= 1
	}
	putUvarint(bw, flags)
	for _, v := range []uint64{
		uint64(m.blocks), uint64(m.matched),
		uint64(len(m.groups)), uint64(len(m.keys)), uint64(len(m.cands)),
	} {
		putUvarint(bw, v)
	}
	var buf [8]byte
	for _, word := range m.codeSlab {
		binary.BigEndian.PutUint64(buf[:], word)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	if withIDs {
		for i := range m.groups {
			ids := m.groups[i].ids
			putUvarint(bw, uint64(len(ids)))
			prev := int64(0)
			for _, id := range ids {
				putVarint(bw, int64(id)-prev)
				prev = int64(id)
			}
		}
	}
	for t := 0; t < len(m.combos); t++ {
		putUvarint(bw, uint64(m.tabStart[t+1]-m.tabStart[t]))
	}
	for t := 0; t < len(m.combos); t++ {
		prev := uint64(0)
		for i := m.tabStart[t]; i < m.tabStart[t+1]; i++ {
			k := m.keys[i]
			if i == m.tabStart[t] {
				putUvarint(bw, k)
			} else {
				putUvarint(bw, k-prev)
			}
			prev = k
		}
	}
	for i := 0; i < len(m.keys); i++ {
		putUvarint(bw, uint64(m.candStart[i+1]-m.candStart[i]))
	}
	for _, gi := range m.cands {
		putUvarint(bw, uint64(gi))
	}
	return bw.Flush()
}

// EncodedSize returns the exact wire size of the index in the chosen form.
func (m *Index) EncodedSize(withIDs bool) (int, error) {
	var c countingWriter
	if err := m.Encode(&c, withIDs); err != nil {
		return 0, err
	}
	return int(c), nil
}

// Decode reads an MIH index previously written by Encode. Corrupt or hostile
// input returns an error, never panics, and never allocates faster than real
// bytes arrive.
func Decode(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mih: reading index magic: %w", err)
	}
	if string(magic) != "HADX" {
		return nil, fmt.Errorf("mih: bad index magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("mih: not an MIH index (version %d)", version)
	}
	return decodeBody(br)
}

func init() {
	core.RegisterIndexDecoder(codecVersion, func(br *bufio.Reader) (core.Index, error) {
		m, err := decodeBody(br)
		if err != nil {
			return nil, err
		}
		return core.AsIndex(m), nil
	})
}

// decodeBody parses the v3 layout after the magic and version. Structural
// invariants — parameter plausibility, strictly increasing keys that fit
// their table's width, degree sums matching declared totals, every group
// referenced exactly once per table — are all enforced, so a hostile stream
// cannot produce an index whose probes read out of bounds or loop.
func decodeBody(br *bufio.Reader) (*Index, error) {
	length64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	length := int(length64)
	if length <= 0 || length > 1<<20 {
		return nil, fmt.Errorf("mih: implausible code length %d", length)
	}
	flags, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	withIDs := flags&1 != 0
	var blocks, matched, nGroups, nKeys, nCands uint64
	for _, dst := range []*uint64{&blocks, &matched, &nGroups, &nKeys, &nCands} {
		if *dst, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
	}
	if blocks > uint64(length) || matched > blocks {
		return nil, fmt.Errorf("mih: implausible parameters blocks=%d matched=%d", blocks, matched)
	}
	if nGroups > 1<<31-2 || nKeys > 1<<31-2 || nCands > 1<<31-2 {
		return nil, fmt.Errorf("mih: index counts overflow")
	}
	m, err := newIndex(length, int(blocks), int(matched))
	if err != nil {
		return nil, err
	}
	tables := uint64(len(m.combos))
	// Every distinct code keys into every table exactly once, so the
	// candidate arena's size is fully determined — anything else is corrupt.
	if nCands != tables*nGroups {
		return nil, fmt.Errorf("mih: %d candidate refs for %d tables over %d groups", nCands, tables, nGroups)
	}
	if nKeys > nCands {
		return nil, fmt.Errorf("mih: %d keys exceed %d candidate refs", nKeys, nCands)
	}

	// Code slab in bounded chunks so allocation tracks real input.
	var chunk [512 * 8]byte
	words := nGroups * uint64(m.nw)
	for words > 0 {
		c := uint64(len(chunk) / 8)
		if c > words {
			c = words
		}
		if _, err := io.ReadFull(br, chunk[:c*8]); err != nil {
			return nil, fmt.Errorf("mih: reading code slab: %w", err)
		}
		for i := uint64(0); i < c; i++ {
			m.codeSlab = append(m.codeSlab, binary.BigEndian.Uint64(chunk[i*8:]))
		}
		words -= c
	}
	m.idStart = make([]int32, 0, 1024)
	if withIDs {
		for g := uint64(0); g < nGroups; g++ {
			m.idStart = append(m.idStart, int32(len(m.idSlab)))
			cnt, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			prev := int64(0)
			for j := uint64(0); j < cnt; j++ {
				d, err := binary.ReadVarint(br)
				if err != nil {
					return nil, err
				}
				prev += d
				if len(m.idSlab) >= 1<<31-2 {
					return nil, fmt.Errorf("mih: id table overflows")
				}
				m.idSlab = append(m.idSlab, int(prev))
			}
		}
	} else {
		for g := uint64(0); g < nGroups; g++ {
			m.idStart = append(m.idStart, 0)
		}
	}
	m.idStart = append(m.idStart, int32(len(m.idSlab)))
	m.n = len(m.idSlab)
	m.buildGroups()

	// Per-table key counts, prefix-summed into tabStart.
	m.tabStart = make([]int32, 0, tables+1)
	sum := uint64(0)
	for t := uint64(0); t < tables; t++ {
		m.tabStart = append(m.tabStart, int32(sum))
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("mih: reading table %d key count: %w", t, err)
		}
		if cnt > nGroups {
			return nil, fmt.Errorf("mih: table %d claims %d keys for %d groups", t, cnt, nGroups)
		}
		if cnt == 0 && nGroups > 0 {
			return nil, fmt.Errorf("mih: table %d has no keys for %d groups", t, nGroups)
		}
		sum += cnt
		if sum > nKeys {
			return nil, fmt.Errorf("mih: table key counts exceed declared total %d", nKeys)
		}
	}
	if sum != nKeys {
		return nil, fmt.Errorf("mih: table key counts sum to %d, declared %d", sum, nKeys)
	}
	m.tabStart = append(m.tabStart, int32(sum))

	// Keys per table: first raw, then strictly positive deltas, each key
	// fitting the table's width so hostile keys cannot shadow real buckets.
	for t := uint64(0); t < tables; t++ {
		width := uint(m.widths[t])
		prev := uint64(0)
		for i := m.tabStart[t]; i < m.tabStart[t+1]; i++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("mih: reading table %d keys: %w", t, err)
			}
			key := v
			if i > m.tabStart[t] {
				if v == 0 {
					return nil, fmt.Errorf("mih: table %d keys not strictly increasing", t)
				}
				key = prev + v
				if key < prev {
					return nil, fmt.Errorf("mih: table %d key overflows", t)
				}
			}
			if width < 64 && key >= 1<<width {
				return nil, fmt.Errorf("mih: table %d key %d exceeds %d-bit width", t, key, width)
			}
			m.keys = append(m.keys, key)
			prev = key
		}
	}

	// Candidate degrees prefix-summed into candStart; each table's buckets
	// must cover its groups exactly once.
	m.candStart = make([]int32, 0, nKeys+1)
	sum = 0
	next := uint64(0)
	for i := uint64(0); i < nKeys; i++ {
		m.candStart = append(m.candStart, int32(sum))
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("mih: reading candidate degrees: %w", err)
		}
		if deg == 0 {
			return nil, fmt.Errorf("mih: empty bucket at key %d", i)
		}
		sum += deg
		if sum > nCands {
			return nil, fmt.Errorf("mih: candidate degrees exceed declared total %d", nCands)
		}
		if next < tables && i+1 == uint64(m.tabStart[next+1]) {
			if sum != (next+1)*nGroups {
				return nil, fmt.Errorf("mih: table %d buckets cover %d of %d groups", next, sum-next*nGroups, nGroups)
			}
			next++
		}
	}
	if sum != nCands {
		return nil, fmt.Errorf("mih: candidate degrees sum to %d, declared %d", sum, nCands)
	}
	m.candStart = append(m.candStart, int32(sum))

	for i := uint64(0); i < nCands; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("mih: reading candidate refs: %w", err)
		}
		if v >= nGroups {
			return nil, fmt.Errorf("mih: candidate group %d out of range (%d)", v, nGroups)
		}
		m.cands = append(m.cands, int32(v))
	}
	return m, nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
