package mih

import (
	"bytes"
	"math/rand"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/core"
)

// validMIHEncoding builds a small index and returns its encoding, the
// mutation base for the corruption table and fuzz target.
func validMIHEncoding(tb testing.TB, withIDs bool) ([]byte, *Index) {
	tb.Helper()
	rng := rand.New(rand.NewSource(201))
	codes := clusteredCodes(rng, 120, 32, 5, 2)
	m, err := Build(codes, nil, Options{Blocks: 4})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf, withIDs); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), m
}

func TestCodecRoundTrip(t *testing.T) {
	for _, withIDs := range []bool{true, false} {
		data, orig := validMIHEncoding(t, withIDs)
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("withIDs=%v: %v", withIDs, err)
		}
		if got.Length() != orig.Length() || got.GroupCount() != orig.GroupCount() ||
			got.Blocks() != orig.Blocks() || got.Matched() != orig.Matched() ||
			got.Tables() != orig.Tables() {
			t.Fatalf("withIDs=%v: structure mismatch after round trip", withIDs)
		}
		wantLen := orig.Len()
		if !withIDs {
			wantLen = 0
		}
		if got.Len() != wantLen {
			t.Fatalf("withIDs=%v: %d tuples after round trip, want %d", withIDs, got.Len(), wantLen)
		}
		if withIDs {
			// Re-encoding must be byte-identical: the layout is canonical.
			var again bytes.Buffer
			if err := got.Encode(&again, true); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Bytes(), data) {
				t.Fatal("re-encoding a decoded index changed the bytes")
			}
			sr := core.NewSearcher(core.AsIndex(got))
			osr := core.NewSearcher(core.AsIndex(orig))
			rng := rand.New(rand.NewSource(77))
			for i := 0; i < 20; i++ {
				q := bitvec.Rand(rng, 32)
				if got, want := sortedCopy(sr.Search(q, 4)), sortedCopy(osr.Search(q, 4)); !equalIDs(got, want) {
					t.Fatalf("decoded index answers %d ids, want %d", len(got), len(want))
				}
			}
		}
	}
}

// TestDecodeIndexRoundTrip: the registered v3 decoder lets core.DecodeIndex
// hand back the MIH engine behind the generic Index surface.
func TestDecodeIndexRoundTrip(t *testing.T) {
	data, orig := validMIHEncoding(t, true)
	idx, err := core.DecodeIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ei, ok := idx.(*core.EngineIndex)
	if !ok {
		t.Fatalf("DecodeIndex returned %T for a v3 encoding", idx)
	}
	m, ok := ei.Engine().(*Index)
	if !ok {
		t.Fatalf("EngineIndex wraps %T, want *mih.Index", ei.Engine())
	}
	if m.Len() != orig.Len() || idx.Length() != orig.Length() {
		t.Fatal("structure mismatch through core.DecodeIndex")
	}
	// Dedicated decoders of the other versions must reject v3 bytes.
	if _, err := core.DecodeFrozen(bytes.NewReader(data)); err == nil {
		t.Fatal("DecodeFrozen accepted a v3 MIH encoding")
	}
	if _, err := core.DecodeDynamic(bytes.NewReader(data)); err == nil {
		t.Fatal("DecodeDynamic accepted a v3 MIH encoding")
	}
}

// TestDecodeCorruptInput drives decodeBody through every guarded error path
// with hand-built inputs, plus truncations of a real encoding.
func TestDecodeCorruptInput(t *testing.T) {
	valid, _ := validMIHEncoding(t, true)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("HA")},
		{"bad magic", []byte("XDAH\x03\x20\x00")},
		{"missing version", []byte("HADX")},
		{"v1 under mih decoder", []byte("HADX\x01\x20\x00")},
		{"missing length", []byte("HADX\x03")},
		{"zero length", []byte("HADX\x03\x00\x00")},
		// 1<<21 bits, over the plausibility cap.
		{"huge length", []byte("HADX\x03\x80\x80\x80\x01\x00")},
		{"missing params", []byte("HADX\x03\x20\x00\x04")},
		// 32-bit codes, blocks=40 > length.
		{"blocks exceed length", []byte("HADX\x03\x20\x00\x28\x01\x00\x00\x00")},
		// matched=3 > blocks=2.
		{"matched exceeds blocks", []byte("HADX\x03\x20\x00\x02\x03\x00\x00\x00")},
		// blocks=0.
		{"zero blocks", []byte("HADX\x03\x20\x00\x00\x00\x00\x00\x00")},
		// 128-bit codes in a single block: 128-bit keys.
		{"overwide keys", []byte("HADX\x03\x80\x01\x00\x01\x01\x00\x00\x00")},
		// blocks=4 matched=1 over 32 bits: 4 tables, 1 group, but 0 declared
		// candidate refs (must be tables*groups = 4).
		{"cand count mismatch", []byte("HADX\x03\x20\x00\x04\x01\x01\x04\x00")},
		// Same header, 4 cands declared but 5 keys > 4 cands.
		{"keys exceed cands", []byte("HADX\x03\x20\x00\x04\x01\x01\x05\x04")},
		// Hostile group count (2^32) with no bytes behind it: nCands check
		// fires before any allocation.
		{"hostile group count", []byte("HADX\x03\x20\x00\x04\x01\x90\x80\x80\x80\x10\x00\x00")},
		// 1 group, 4 tables, 4 keys, 4 cands — code slab truncated.
		{"truncated code slab", []byte("HADX\x03\x20\x00\x04\x01\x01\x04\x04\xaa\xbb")},
	}
	for _, cut := range []int{5, 8, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		cases = append(cases, struct {
			name string
			data []byte
		}{"truncated", valid[:cut]})
	}
	for _, tc := range cases {
		if _, err := Decode(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s (%d bytes): decode accepted corrupt input", tc.name, len(tc.data))
		}
	}
	if _, err := Decode(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
}

// FuzzDecodeMIH mutates a known-valid v3 encoding — truncating and flipping
// one byte, the FuzzDecodeIndex recipe — so the fuzzer reaches the deep
// decoder states (key runs, candidate degrees) that random prefixes rarely
// survive to. Decoding must either error or yield a usable index.
func FuzzDecodeMIH(f *testing.F) {
	valid, _ := validMIHEncoding(f, true)
	f.Add(uint16(len(valid)), uint16(0), byte(0))
	f.Add(uint16(len(valid)/2), uint16(5), byte(0xff))
	f.Add(uint16(10), uint16(4), byte(1))
	f.Fuzz(func(t *testing.T, cut uint16, flipAt uint16, flipMask byte) {
		data := append([]byte(nil), valid...)
		if int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 {
			data[int(flipAt)%len(data)] ^= flipMask
		}
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever survived must behave like an index: searching every
		// decoded code must terminate and not panic.
		sr := core.NewSearcher(core.AsIndex(got))
		got.Tuples(func(_ int, c bitvec.Code) {
			sr.Search(c, 2)
		})
		sr.TopK(bitvec.New(got.Length()), 3)
	})
}
