// Package mih is the multi-index-hashing engine: Norouzi et al.'s exact
// Hamming search by substring pigeonhole, in the frozen structure-of-arrays
// form the rest of the serving stack expects (flat slabs mirroring
// core.Freeze's layout, so the arenas can later be mmap'd).
//
// The code's L bits are cut into `blocks` contiguous blocks and one table is
// built per combination of `matched` blocks, keyed on their concatenation.
// If q and c are within Hamming distance h, the pigeonhole principle puts at
// most floor(matched·h/blocks) of the differing bits into some combination
// (each differing bit lands in C(blocks-1, matched-1) of the C(blocks,
// matched) combinations, so the average combination carries h·matched/blocks
// of them and the minimum is at or below the floor of that). Probing every
// table with every key variant within that radius therefore finds every
// answer; candidates are verified by a short-circuiting distance check. At
// large thresholds this beats the HA-Index walk, whose pruning collapses —
// the regime internal/planner routes here.
//
// Unlike the hash-map baseline in internal/baseline, the frozen form keeps
// each table as a sorted run of distinct keys over a shared candidate arena:
// a probe is a binary search, a bucket a contiguous []int32 of group indexes
// into one shared distinct-code slab. Search runs on a per-searcher Scratch
// (combination enumeration state plus an epoch-marked visited table) and is
// allocation-free on the steady path; the engine plugs into core.Searcher,
// SearchBatch, and TopK through core.AsIndex.
package mih

import (
	"fmt"
	"math/bits"
	"sort"

	"haindex/internal/bitvec"
	"haindex/internal/core"
)

// Options configures Build. The zero value selects sane defaults.
type Options struct {
	// Blocks is the number of contiguous bit blocks the code is cut into.
	// 0 picks Norouzi's substring-length heuristic: key width near
	// log2(n) bits, i.e. blocks ≈ L/log2(n), clamped to [ceil(L/64), 16].
	Blocks int
	// Matched is how many blocks each table keys on (C(Blocks, Matched)
	// tables). 0 selects 1 — single-block tables, the classic MIH layout.
	Matched int
}

// Index is the frozen multi-index-hashing engine. It is immutable and safe
// for any number of concurrent readers; per-query state lives in Scratch.
type Index struct {
	length  int // code length L in bits
	nw      int // words per code
	n       int // number of tuples
	blocks  int
	matched int

	// Derived from (length, blocks, matched), never serialized.
	bounds [][2]int // per block: start bit, width
	combos [][]int  // per table: the matched block indexes
	widths []int    // per table: total key width in bits

	// Per-table sorted key directory over one shared candidate arena:
	// table t's distinct keys are keys[tabStart[t]:tabStart[t+1]], sorted
	// ascending; the key at global position p owns candidate group indexes
	// cands[candStart[p]:candStart[p+1]].
	tabStart  []int32
	keys      []uint64
	candStart []int32
	cands     []int32

	// Shared distinct-code groups: codes word-packed in codeSlab, tuple ids
	// in idSlab with idStart offsets, groups[] aliasing both slabs.
	codeSlab []uint64
	idStart  []int32
	idSlab   []int
	groups   []group
}

// group is one distinct code with its tuple ids; both alias the arenas.
type group struct {
	code bitvec.Code
	ids  []int
}

// Build constructs the engine over the codes; ids default to positions.
func Build(codes []bitvec.Code, ids []int, opts Options) (*Index, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("mih: empty dataset")
	}
	if ids == nil {
		ids = make([]int, len(codes))
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != len(codes) {
		return nil, fmt.Errorf("mih: %d ids for %d codes", len(ids), len(codes))
	}
	return build(codes[0].Len(), codes, ids, opts)
}

// TupleSource is any index that can enumerate its tuples — both HA-Index
// forms satisfy it, so a serving shard can grow an MIH engine from whatever
// snapshot it loaded.
type TupleSource interface {
	Length() int
	Tuples(fn func(id int, code bitvec.Code))
}

// FromTuples builds the engine from an existing index's tuples. An empty
// source yields an empty (but valid) engine whose searches match nothing.
func FromTuples(src TupleSource, opts Options) (*Index, error) {
	var codes []bitvec.Code
	var ids []int
	src.Tuples(func(id int, c bitvec.Code) {
		ids = append(ids, id)
		codes = append(codes, c)
	})
	return build(src.Length(), codes, ids, opts)
}

func build(length int, codes []bitvec.Code, ids []int, opts Options) (*Index, error) {
	if length <= 0 {
		return nil, fmt.Errorf("mih: invalid code length %d", length)
	}
	blocks, matched := opts.Blocks, opts.Matched
	if matched == 0 {
		matched = 1
	}
	if blocks == 0 {
		blocks = autoBlocks(length, len(codes), matched)
	}
	m, err := newIndex(length, blocks, matched)
	if err != nil {
		return nil, err
	}

	// Distinct-code groups shared by every table.
	type bucket struct {
		gi  int32
		ids []int
	}
	byCode := make(map[string]int32, len(codes))
	var order []bucket
	for i, c := range codes {
		if c.Len() != length {
			return nil, fmt.Errorf("mih: code %d is %d-bit, index is %d-bit", i, c.Len(), length)
		}
		if gi, ok := byCode[c.Key()]; ok {
			order[gi].ids = append(order[gi].ids, ids[i])
			continue
		}
		gi := int32(len(order))
		byCode[c.Key()] = gi
		order = append(order, bucket{gi: gi, ids: []int{ids[i]}})
	}
	ng := len(order)
	m.n = len(codes)
	m.codeSlab = make([]uint64, ng*m.nw)
	m.idStart = make([]int32, ng+1)
	m.idSlab = make([]int, 0, len(codes))
	gi := 0
	seen := make(map[string]bool, ng)
	for _, c := range codes {
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		copy(m.codeSlab[gi*m.nw:(gi+1)*m.nw], c.Words())
		m.idStart[gi] = int32(len(m.idSlab))
		m.idSlab = append(m.idSlab, order[byCode[k]].ids...)
		gi++
	}
	m.idStart[ng] = int32(len(m.idSlab))
	m.buildGroups()
	m.buildTables()
	return m, nil
}

// autoBlocks picks the block count for n codes of length bits: key width
// near log2(n) (Norouzi's substring-length heuristic — buckets then hold O(1)
// codes), clamped so every block fits a uint64 key and the table count stays
// modest. With matched > 1 the per-block target shrinks proportionally so
// the concatenated key keeps the same selectivity.
func autoBlocks(length, n, matched int) int {
	lg := 1
	for v := 1; v < n; v *= 2 {
		lg++
	}
	target := lg * matched // concatenated key width target, ≈ log2(n)·matched... per block combination
	if target < 1 {
		target = 1
	}
	b := (length + target/2) / target * matched
	if b < matched {
		b = matched
	}
	if min := (length + 63) / 64 * matched; b < min {
		b = min // widest matched blocks must concatenate into ≤ 64 key bits
	}
	if b > 16 {
		b = 16
	}
	if b > length {
		b = length
	}
	return b
}

// newIndex validates the parameters and derives bounds, combos, and widths.
func newIndex(length, blocks, matched int) (*Index, error) {
	if blocks <= 0 || blocks > length {
		return nil, fmt.Errorf("mih: invalid block count %d for %d-bit codes", blocks, length)
	}
	if matched <= 0 || matched > blocks {
		return nil, fmt.Errorf("mih: invalid matched count %d of %d blocks", matched, blocks)
	}
	m := &Index{
		length:  length,
		nw:      (length + 63) / 64,
		blocks:  blocks,
		matched: matched,
	}
	// Nearly equal blocks, the first length%blocks one bit wider.
	base, extra := length/blocks, length%blocks
	at := 0
	for i := 0; i < blocks; i++ {
		w := base
		if i < extra {
			w++
		}
		m.bounds = append(m.bounds, [2]int{at, w})
		at += w
	}
	keyBits := 0
	for i := 0; i < matched; i++ {
		keyBits += m.bounds[i][1] // widest blocks come first
	}
	if keyBits > 64 {
		return nil, fmt.Errorf("mih: %d-bit combination keys exceed 64 bits", keyBits)
	}
	// All matched-element subsets of the blocks, one table per subset; the
	// count is bounded before enumerating so hostile codec parameters cannot
	// allocate unboundedly.
	nt, err := tableCount(blocks, matched)
	if err != nil {
		return nil, err
	}
	m.combos = make([][]int, 0, nt)
	combo := make([]int, matched)
	var rec func(start, at int)
	rec = func(start, at int) {
		if at == matched {
			m.combos = append(m.combos, append([]int(nil), combo...))
			return
		}
		for i := start; i < blocks; i++ {
			combo[at] = i
			rec(i+1, at+1)
		}
	}
	rec(0, 0)
	m.widths = make([]int, len(m.combos))
	for t, c := range m.combos {
		for _, b := range c {
			m.widths[t] += m.bounds[b][1]
		}
	}
	return m, nil
}

// tableCount computes C(blocks, matched), refusing configurations whose
// table count would be implausible (the codec feeds decoded parameters here).
func tableCount(blocks, matched int) (int, error) {
	c := 1
	for i := 0; i < matched; i++ {
		c = c * (blocks - i) / (i + 1)
		if c > 1<<16 {
			return 0, fmt.Errorf("mih: C(%d,%d) tables is implausible", blocks, matched)
		}
	}
	return c, nil
}

// buildGroups wraps the code and id slabs as group values aliasing the
// arenas (capacity-clamped so appends can never bleed).
func (m *Index) buildGroups() {
	ng := len(m.idStart) - 1
	m.groups = make([]group, ng)
	for i := 0; i < ng; i++ {
		lo, hi := m.idStart[i], m.idStart[i+1]
		m.groups[i] = group{
			code: bitvec.FromWords(m.codeSlab[i*m.nw:(i+1)*m.nw], m.length),
			ids:  m.idSlab[lo:hi:hi],
		}
	}
}

// buildTables sorts every table's (key, group) pairs and compacts them into
// the shared key/candidate arenas.
func (m *Index) buildTables() {
	ng := len(m.groups)
	nt := len(m.combos)
	m.tabStart = make([]int32, nt+1)
	type pair struct {
		key uint64
		gi  int32
	}
	pairs := make([]pair, ng)
	for t, combo := range m.combos {
		m.tabStart[t] = int32(len(m.keys))
		for g := 0; g < ng; g++ {
			pairs[g] = pair{key: m.comboKey(m.groups[g].code, combo), gi: int32(g)}
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].key != pairs[b].key {
				return pairs[a].key < pairs[b].key
			}
			return pairs[a].gi < pairs[b].gi
		})
		for i := 0; i < ng; i++ {
			if i == 0 || pairs[i].key != pairs[i-1].key {
				m.keys = append(m.keys, pairs[i].key)
				m.candStart = append(m.candStart, int32(len(m.cands)))
			}
			m.cands = append(m.cands, pairs[i].gi)
		}
	}
	m.tabStart[nt] = int32(len(m.keys))
	m.candStart = append(m.candStart, int32(len(m.cands)))
}

// segKey extracts the width-bit segment starting at bit `from` as a uint64,
// reading at most two words (codes store bit i at word i/64, shift 63-i%64).
func segKey(words []uint64, from, width int) uint64 {
	hi, off := from/64, uint(from%64)
	v := words[hi] << off
	if int(off)+width > 64 {
		v |= words[hi+1] >> (64 - off)
	}
	return v >> uint(64-width)
}

// comboKey concatenates the blocks selected by combo into one key.
func (m *Index) comboKey(c bitvec.Code, combo []int) uint64 {
	words := c.Words()
	var key uint64
	for _, b := range combo {
		from, width := m.bounds[b][0], m.bounds[b][1]
		key = key<<uint(width) | segKey(words, from, width)
	}
	return key
}

// Length returns the code length L in bits.
func (m *Index) Length() int { return m.length }

// Len returns the number of indexed tuples.
func (m *Index) Len() int { return m.n }

// Blocks returns the block count.
func (m *Index) Blocks() int { return m.blocks }

// Matched returns how many blocks each table keys on.
func (m *Index) Matched() int { return m.matched }

// Tables returns the table count C(Blocks, Matched).
func (m *Index) Tables() int { return len(m.combos) }

// GroupCount returns the number of distinct indexed codes.
func (m *Index) GroupCount() int { return len(m.groups) }

// Radius returns the per-table probe radius at threshold h: the pigeonhole
// bound floor(matched·h/blocks).
func (m *Index) Radius(h int) int { return m.matched * h / m.blocks }

// SizeBytes returns the resident footprint of the arenas. The distinct codes
// are stored once; each table adds only its sorted key run and candidate
// references — the flat-arena answer to the per-table code replicas the
// paper criticizes in Manku's layout.
func (m *Index) SizeBytes() int {
	sz := 8 * (len(m.codeSlab) + len(m.keys) + len(m.idSlab))
	sz += 4 * (len(m.idStart) + len(m.tabStart) + len(m.candStart) + len(m.cands))
	sz += 40 * len(m.groups)
	return sz
}

// Tuples invokes fn for every (id, code) pair in the index.
func (m *Index) Tuples(fn func(id int, code bitvec.Code)) {
	for i := range m.groups {
		g := &m.groups[i]
		for _, id := range g.ids {
			fn(id, g.code)
		}
	}
}

// NewScratch implements core.Engine.
func (m *Index) NewScratch() core.EngineScratch {
	return &Scratch{
		m:       m,
		visited: make([]uint32, len(m.groups)),
		comb:    make([]int, 65),
	}
}

// Search is a convenience for tools and tests: a fresh-scratch, allocating
// select. Serving paths use core.NewSearcher(core.AsIndex(m)) instead, whose
// per-searcher scratch makes the steady state allocation-free.
func (m *Index) Search(q bitvec.Code, h int) []int {
	var out []int
	var stats core.SearchStats
	m.NewScratch().Search(q, h, &stats, func(ids []int, _ bitvec.Code) {
		out = append(out, ids...)
	})
	return out
}

// Scratch is one searcher's mutable state: the iterative combination
// enumerator and the epoch-marked visited table that deduplicates candidate
// groups across tables. Not safe for concurrent use; the Index is.
type Scratch struct {
	m       *Index
	visited []uint32
	epoch   uint32
	comb    []int
}

// Search implements core.EngineScratch: probe every table with every key
// variant within the pigeonhole radius, verify candidates once each, and
// emit the qualifying groups. Probes count into stats.NodesVisited,
// candidate verifications into LeavesChecked and DistanceComputations.
func (s *Scratch) Search(q bitvec.Code, h int, stats *core.SearchStats, emit func(ids []int, code bitvec.Code)) {
	m := s.m
	if q.Len() != m.length {
		panic(fmt.Sprintf("mih: %d-bit query against %d-bit index", q.Len(), m.length))
	}
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	radius := m.matched * h / m.blocks
	qw := q.Words()
	for t, combo := range m.combos {
		key := m.comboKey(q, combo)
		width := m.widths[t]
		lo, hi := m.tabStart[t], m.tabStart[t+1]
		s.probe(lo, hi, key, qw, h, stats, emit)
		r := radius
		if r > width {
			r = width
		}
		// Key variants at exact flip-count k, for k = 1..r: the classic
		// iterative combination enumeration over the key's bit positions,
		// on preallocated scratch — no recursion, no closures.
		for k := 1; k <= r; k++ {
			comb := s.comb[:k]
			for i := range comb {
				comb[i] = i
			}
			for {
				var mask uint64
				for _, b := range comb {
					mask |= 1 << uint(b)
				}
				s.probe(lo, hi, key^mask, qw, h, stats, emit)
				i := k - 1
				for i >= 0 && comb[i] == width-k+i {
					i--
				}
				if i < 0 {
					break
				}
				comb[i]++
				for j := i + 1; j < k; j++ {
					comb[j] = comb[j-1] + 1
				}
			}
		}
	}
}

// probe binary-searches one table's sorted key run and verifies that
// bucket's candidates, emitting first-seen qualifying groups.
func (s *Scratch) probe(lo, hi int32, key uint64, qw []uint64, h int, stats *core.SearchStats, emit func(ids []int, code bitvec.Code)) {
	m := s.m
	stats.NodesVisited++
	i, j := int(lo), int(hi)
	for i < j {
		mid := int(uint(i+j) >> 1)
		if m.keys[mid] < key {
			i = mid + 1
		} else {
			j = mid
		}
	}
	if i >= int(hi) || m.keys[i] != key {
		return
	}
	nw := m.nw
	for _, gi := range m.cands[m.candStart[i]:m.candStart[i+1]] {
		if s.visited[gi] == s.epoch {
			continue
		}
		s.visited[gi] = s.epoch
		stats.LeavesChecked++
		stats.DistanceComputations++
		if distWithin(qw, m.codeSlab[int(gi)*nw:(int(gi)+1)*nw], h) {
			g := &m.groups[gi]
			emit(g.ids, g.code)
		}
	}
}

// distWithin reports whether two word-aligned codes are within Hamming
// distance h, short-circuiting once the running count exceeds it.
func distWithin(qw, cw []uint64, h int) bool {
	sum := 0
	for i, w := range qw {
		sum += bits.OnesCount64(w ^ cw[i])
		if sum > h {
			return false
		}
	}
	return true
}
