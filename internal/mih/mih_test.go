package mih

import (
	"math/rand"
	"sort"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/core"
)

// clusteredCodes produces codes with heavy sharing, like hashed real data.
func clusteredCodes(rng *rand.Rand, n, bitsLen, clusters, flips int) []bitvec.Code {
	out := make([]bitvec.Code, 0, n)
	for len(out) < n {
		center := bitvec.Rand(rng, bitsLen)
		for i := 0; i < n/clusters+1 && len(out) < n; i++ {
			c := center.Clone()
			for f := 0; f < flips; f++ {
				c.FlipBit(rng.Intn(bitsLen))
			}
			out = append(out, c)
		}
	}
	return out
}

func uniformCodes(rng *rand.Rand, n, bitsLen int) []bitvec.Code {
	out := make([]bitvec.Code, n)
	for i := range out {
		out[i] = bitvec.Rand(rng, bitsLen)
	}
	return out
}

// oracle is the nested-loop scan every engine must agree with.
func oracle(codes []bitvec.Code, q bitvec.Code, h int) []int {
	var out []int
	for i, c := range codes {
		if _, ok := q.DistanceWithin(c, h); ok {
			out = append(out, i)
		}
	}
	return out
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSearchMatchesOracle is the exactness property test: frozen MIH search
// equals the brute-force scan across code widths, thresholds 0..10, both
// code distributions, and several block/matched configurations. Run under
// -race by make test-race.
func TestSearchMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, bitsLen := range []int{32, 64, 128} {
		for _, clustered := range []bool{true, false} {
			var codes []bitvec.Code
			if clustered {
				codes = clusteredCodes(rng, 250, bitsLen, 8, 3)
			} else {
				codes = uniformCodes(rng, 250, bitsLen)
			}
			for _, opts := range []Options{{}, {Blocks: 4}, {Blocks: 5, Matched: 2}} {
				m, err := Build(codes, nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				sr := core.NewSearcher(core.AsIndex(m))
				for qi := 0; qi < 15; qi++ {
					q := codes[rng.Intn(len(codes))].Clone()
					for f := 0; f < rng.Intn(5); f++ {
						q.FlipBit(rng.Intn(bitsLen))
					}
					for h := 0; h <= 10; h++ {
						want := oracle(codes, q, h)
						if got := sortedCopy(sr.Search(q, h)); !equalIDs(got, want) {
							t.Fatalf("bits=%d clustered=%v opts=%+v h=%d: got %d ids, want %d",
								bitsLen, clustered, opts, h, len(got), len(want))
						}
						if got := sortedCopy(m.Search(q, h)); !equalIDs(got, want) {
							t.Fatalf("bits=%d direct search h=%d: got %d ids, want %d", bitsLen, h, len(got), len(want))
						}
					}
				}
			}
		}
	}
}

// TestSearchZeroAlloc pins the steady-state allocation-free property: after
// the first search warms the scratch, neither tight nor loose thresholds
// may allocate (the hoisted combination enumerator and epoch table at work).
func TestSearchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	codes := clusteredCodes(rng, 800, 64, 10, 3)
	m, err := Build(codes, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := core.NewSearcher(core.AsIndex(m))
	q := codes[17]
	for _, h := range []int{2, 10, 24} {
		sr.Search(q, h) // warm the scratch and result buffers
		if allocs := testing.AllocsPerRun(200, func() { sr.Search(q, h) }); allocs != 0 {
			t.Fatalf("h=%d: %.1f allocs per search, want 0", h, allocs)
		}
	}
}

// TestTopKThroughAdapter: the generic radius-escalating TopK must work over
// the adapted engine and agree with distances computed by hand.
func TestTopKThroughAdapter(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	codes := uniformCodes(rng, 300, 64)
	m, err := Build(codes, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := core.NewSearcher(core.AsIndex(m))
	q := bitvec.Rand(rng, 64)
	ids, gotDists := sr.TopK(q, 10)
	if len(ids) != 10 || len(gotDists) != 10 {
		t.Fatalf("TopK returned %d ids, %d dists, want 10", len(ids), len(gotDists))
	}
	dists := make([]int, len(codes))
	for i, c := range codes {
		dists[i] = q.Distance(c)
	}
	sort.Ints(dists)
	for i := range ids {
		if gotDists[i] != dists[i] {
			t.Fatalf("TopK[%d] distance %d, want %d", i, gotDists[i], dists[i])
		}
		if d := q.Distance(codes[ids[i]]); d != gotDists[i] {
			t.Fatalf("TopK[%d] id %d is at distance %d, reported %d", i, ids[i], d, gotDists[i])
		}
	}
}

// TestSearchBatchConcurrent: the engine must serve concurrent batch searches
// through the adapter (exercised under -race by make test-race).
func TestSearchBatchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes := clusteredCodes(rng, 600, 64, 8, 3)
	m, err := Build(codes, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]bitvec.Code, 40)
	for i := range queries {
		queries[i] = codes[rng.Intn(len(codes))]
	}
	got, _ := core.SearchBatch(core.AsIndex(m), queries, 6, 4)
	for i, q := range queries {
		if want := oracle(codes, q, 6); !equalIDs(got[i], want) {
			t.Fatalf("query %d: batch got %d ids, want %d", i, len(got[i]), len(want))
		}
	}
}

// TestDuplicateCodesShareGroup: repeated codes collapse into one group whose
// id table carries every tuple.
func TestDuplicateCodesShareGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := bitvec.Rand(rng, 32)
	codes := []bitvec.Code{base, base.Clone(), bitvec.Rand(rng, 32), base.Clone()}
	ids := []int{10, 20, 30, 40}
	m, err := Build(codes, ids, Options{Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.GroupCount() > 3 {
		t.Fatalf("GroupCount=%d, duplicates not collapsed", m.GroupCount())
	}
	if got := sortedCopy(m.Search(base, 0)); !equalIDs(got, []int{10, 20, 40}) {
		t.Fatalf("exact search over duplicates returned %v", got)
	}
}

// TestFromTuples builds from a frozen HA-Index's tuple stream and must agree
// with building from the raw codes.
func TestFromTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	codes := clusteredCodes(rng, 400, 64, 6, 3)
	ids := make([]int, len(codes))
	for i := range ids {
		ids[i] = i * 3
	}
	frozen := core.Freeze(core.BuildDynamic(codes, ids, core.Options{}))
	m, err := FromTuples(frozen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != len(codes) || m.Length() != 64 {
		t.Fatalf("FromTuples: n=%d length=%d", m.Len(), m.Length())
	}
	q := codes[7]
	want := make([]int, 0)
	for i, c := range codes {
		if _, ok := q.DistanceWithin(c, 5); ok {
			want = append(want, ids[i])
		}
	}
	if got := sortedCopy(m.Search(q, 5)); !equalIDs(got, want) {
		t.Fatalf("FromTuples search: got %v want %v", got, want)
	}
}

// TestBuildValidation: the constructor rejects inconsistent inputs and
// overwide keys.
func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	codes := uniformCodes(rng, 10, 128)
	if _, err := Build(nil, nil, Options{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := Build(codes, []int{1}, Options{}); err == nil {
		t.Fatal("mismatched id count accepted")
	}
	if _, err := Build(codes, nil, Options{Blocks: 1}); err == nil {
		t.Fatal("128-bit single-block key accepted (exceeds 64-bit keys)")
	}
	if _, err := Build(codes, nil, Options{Blocks: 2, Matched: 3}); err == nil {
		t.Fatal("matched > blocks accepted")
	}
	mixed := []bitvec.Code{bitvec.Rand(rng, 32), bitvec.Rand(rng, 64)}
	if _, err := Build(mixed, nil, Options{Blocks: 4}); err == nil {
		t.Fatal("mixed code lengths accepted")
	}
}

// TestAutoBlocks: the default configuration keeps key widths near log2(n)
// and always within a uint64.
func TestAutoBlocks(t *testing.T) {
	for _, tc := range []struct{ length, n int }{
		{32, 100}, {64, 1000}, {64, 100000}, {128, 20000}, {256, 500}, {16, 10},
	} {
		b := autoBlocks(tc.length, tc.n, 1)
		m, err := newIndex(tc.length, b, 1)
		if err != nil {
			t.Fatalf("L=%d n=%d: auto blocks %d rejected: %v", tc.length, tc.n, b, err)
		}
		for _, w := range m.widths {
			if w > 64 {
				t.Fatalf("L=%d n=%d blocks=%d: table width %d", tc.length, tc.n, b, w)
			}
		}
	}
}

// TestRadius: the pigeonhole probe radius matches floor(matched·h/blocks).
func TestRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := Build(uniformCodes(rng, 50, 64), nil, Options{Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for h, want := range map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 16: 4} {
		if got := m.Radius(h); got != want {
			t.Fatalf("Radius(%d)=%d, want %d", h, got, want)
		}
	}
}

// TestSizeBytes grows with the dataset; sanity for the bench size row.
func TestSizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small, err := Build(uniformCodes(rng, 100, 64), nil, Options{Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Build(uniformCodes(rng, 2000, 64), nil, Options{Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if small.SizeBytes() <= 0 || large.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("SizeBytes: small=%d large=%d", small.SizeBytes(), large.SizeBytes())
	}
}
