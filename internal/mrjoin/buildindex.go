package mrjoin

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/histo"
	"haindex/internal/mapreduce"
	"haindex/internal/vector"
)

// GlobalIndex is the phase-2 output: the merged HA-Index over R together
// with the cost of producing it.
type GlobalIndex struct {
	Index   *core.DynamicIndex
	Metrics mapreduce.Metrics
	Merge   time.Duration
	// DFSWritten and DFSRead are the bytes the local-index persistence
	// moved through the distributed filesystem (zero without Options.FS).
	DFSWritten int64
	DFSRead    int64
}

// buildSeq disambiguates DFS paths across pipeline invocations sharing one
// filesystem.
var buildSeq atomic.Int64

type codeWithID struct {
	id   int
	code bitvec.Code
}

// partitionID routes a code to the partition owning its Gray range.
func partitionID(pre *Preprocessed, c bitvec.Code) int {
	return histo.PartitionID(pre.Pivots, c)
}

// hashFuncSize estimates the broadcast size of the learned hash function:
// the PCA projection matrix plus per-bit parameters.
func hashFuncSize(pre *Preprocessed) int64 {
	return int64(8*pre.Hash.Dim()*pre.Hash.Bits() + 24*pre.Hash.Bits())
}

// buildLocal bulkloads one partition's HA-Index (the reducer-side H-Build).
func buildLocal(cs []codeWithID, opt Options) *core.DynamicIndex {
	codes := make([]bitvec.Code, len(cs))
	ids := make([]int, len(cs))
	for i, c := range cs {
		codes[i] = c.code
		ids[i] = c.id
	}
	return core.BuildDynamic(codes, ids, opt.IndexOpts)
}

// BuildGlobalIndex runs the first MapReduce job of Figure 5: every mapper
// hashes its R tuples into binary codes and routes them to the partition
// owning their Gray range (binary search over the broadcast pivots); every
// reducer bulkloads a local HA-Index via H-Build; the local indexes are then
// merged into the global index for R.
func BuildGlobalIndex(r []vector.Vec, pre *Preprocessed, opt Options) (*GlobalIndex, error) {
	opt = opt.withDefaults()
	if err := checkBits(pre, opt); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	locals := make([]*core.DynamicIndex, opt.Partitions)
	var dfsPrefix string
	var wBefore, rBefore int64
	if opt.FS != nil {
		dfsPrefix = fmt.Sprintf("/haindex/build-%d/", buildSeq.Add(1))
		wBefore, rBefore = opt.FS.BytesWritten(), opt.FS.BytesRead()
	}

	pivotBytes := int64(0)
	for _, p := range pre.Pivots {
		pivotBytes += int64(p.SizeBytes())
	}
	cfg := mapreduce.Config{
		Name:      "mrha-build-index",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Broadcast: []mapreduce.Broadcast{
			{Name: "pivots", Size: pivotBytes},
			{Name: "hash", Size: hashFuncSize(pre)},
		},
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			id := decodeID(in.Key)
			code := pre.Hash.Hash(decodeVecValue(in.Value))
			pid := partitionID(pre, code)
			emit(mapreduce.KV{Key: encodeUint32(uint32(pid)), Value: encodeIDCode(id, code)})
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			cs := make([]codeWithID, 0, len(values))
			for _, v := range values {
				id, c, err := decodeIDCode(v, opt.Bits)
				if err != nil {
					return err
				}
				cs = append(cs, codeWithID{id: id, code: c})
			}
			local := buildLocal(cs, opt)
			if opt.FS != nil {
				// Persist the serialized local index to the DFS, as the
				// paper's reducers do; the merge phase reads it back. The
				// write is idempotent so a re-executed or speculative
				// attempt can rewrite the same part file.
				w := opt.FS.CreateIdempotent(fmt.Sprintf("%spart-%05d", dfsPrefix, decodeID(key)))
				if err := local.Encode(w, true); err != nil {
					return fmt.Errorf("encoding local index: %w", err)
				}
				if err := w.Close(); err != nil {
					return err
				}
				return nil
			}
			// Keyed by partition so a re-executed or speculative attempt
			// overwrites (with identical content) instead of duplicating.
			mu.Lock()
			locals[decodeID(key)] = local
			mu.Unlock()
			return nil
		},
	}
	opt.applyRuntime(&cfg)
	_, metrics, err := mapreduce.Run(cfg, VecInput(r))
	if err != nil {
		return nil, fmt.Errorf("mrjoin: build-index job: %w", err)
	}
	if opt.FS != nil {
		for _, path := range opt.FS.List(dfsPrefix) {
			rd, err := opt.FS.Open(path)
			if err != nil {
				return nil, fmt.Errorf("mrjoin: reading local index %s: %w", path, err)
			}
			local, err := core.DecodeDynamic(rd)
			if err != nil {
				return nil, fmt.Errorf("mrjoin: decoding local index %s: %w", path, err)
			}
			locals = append(locals, local)
		}
	}
	parts := make([]*core.DynamicIndex, 0, len(locals))
	for _, l := range locals {
		if l != nil {
			parts = append(parts, l)
		}
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("mrjoin: no local indexes built (empty R?)")
	}
	t0 := time.Now()
	global := core.Merge(parts...)
	out := &GlobalIndex{Index: global, Metrics: metrics, Merge: time.Since(t0)}
	if opt.FS != nil {
		out.DFSWritten = opt.FS.BytesWritten() - wBefore
		out.DFSRead = opt.FS.BytesRead() - rBefore
	}
	return out, nil
}
