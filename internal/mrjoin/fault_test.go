package mrjoin

import (
	"testing"
	"time"

	"haindex/internal/dfs"
	"haindex/internal/mapreduce"
)

// faultedOptions injects failures into >=25% of map and reduce tasks of
// every job a pipeline runs, with a straggler delay thrown in.
func faultedOptions() Options {
	opt := testOptions()
	opt.Faults = mapreduce.NewFaultPlan().
		FailEvery(mapreduce.MapTask, 3).
		FailEvery(mapreduce.ReduceTask, 2).
		Delay(mapreduce.MapTask, 1, 0, time.Millisecond)
	opt.Retry = mapreduce.RetryPolicy{Backoff: 50 * time.Microsecond}
	return opt
}

// TestJoinsExactUnderFaults is the acceptance check of the failure model:
// with failures injected into a large fraction of every job's tasks, both
// MRHA options must return byte-identical pairs and identical shuffle
// volumes, while the attempt counters show the re-execution that happened.
func TestJoinsExactUnderFaults(t *testing.T) {
	r, s := testData(t, 260, 220)

	clean := testOptions()
	pre, err := Preprocess(r, s, clean)
	if err != nil {
		t.Fatal(err)
	}
	gClean, err := BuildGlobalIndex(r, pre, clean)
	if err != nil {
		t.Fatal(err)
	}
	aClean, err := HammingJoinA(s, gClean, pre, clean)
	if err != nil {
		t.Fatal(err)
	}
	bClean, err := HammingJoinB(s, gClean, pre, clean)
	if err != nil {
		t.Fatal(err)
	}

	faulted := faultedOptions()
	faulted.FS = dfs.New(0) // exercise idempotent DFS writes under re-execution
	g, err := BuildGlobalIndex(r, pre, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if g.Metrics.ShuffleBytes != gClean.Metrics.ShuffleBytes {
		t.Fatalf("build shuffle changed under faults: %d vs %d", g.Metrics.ShuffleBytes, gClean.Metrics.ShuffleBytes)
	}
	if g.Metrics.Attempts <= int64(g.Metrics.Tasks()) {
		t.Fatalf("build job recorded no extra attempts: %d for %d tasks", g.Metrics.Attempts, g.Metrics.Tasks())
	}
	if g.Metrics.RetriedTasks == 0 {
		t.Fatal("build job recorded no retried tasks")
	}

	a, err := HammingJoinA(s, g, pre, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(a.Pairs, aClean.Pairs) {
		t.Fatalf("Option A pairs changed under faults: %d vs %d", len(a.Pairs), len(aClean.Pairs))
	}
	if a.Metrics.ShuffleBytes != aClean.Metrics.ShuffleBytes {
		t.Fatalf("Option A shuffle changed under faults: %d vs %d", a.Metrics.ShuffleBytes, aClean.Metrics.ShuffleBytes)
	}
	if a.Metrics.Attempts <= int64(a.Metrics.Tasks()) {
		t.Fatalf("Option A recorded no extra attempts: %d for %d tasks", a.Metrics.Attempts, a.Metrics.Tasks())
	}

	b, err := HammingJoinB(s, g, pre, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(b.Pairs, bClean.Pairs) {
		t.Fatalf("Option B pairs changed under faults: %d vs %d", len(b.Pairs), len(bClean.Pairs))
	}
	if b.Metrics.ShuffleBytes != bClean.Metrics.ShuffleBytes {
		t.Fatalf("Option B shuffle changed under faults: %d vs %d", b.Metrics.ShuffleBytes, bClean.Metrics.ShuffleBytes)
	}
	if b.Metrics.Attempts <= int64(b.Metrics.Tasks()) {
		t.Fatalf("Option B recorded no extra attempts: %d for %d tasks", b.Metrics.Attempts, b.Metrics.Tasks())
	}
}

// TestPGBJExactUnderFaults: the exact kNN-join baseline also re-executes
// cleanly (its reducers' shared-state writes are idempotent).
func TestPGBJExactUnderFaults(t *testing.T) {
	r, s := testData(t, 120, 80)
	r, s = roundTrip(r), roundTrip(s)
	clean, err := PGBJ(r, s, 5, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := PGBJ(r, s, 5, faultedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted.Neighbors) != len(clean.Neighbors) {
		t.Fatalf("result lists: %d vs %d", len(faulted.Neighbors), len(clean.Neighbors))
	}
	for sid, want := range clean.Neighbors {
		got := faulted.Neighbors[sid]
		if len(got) != len(want) {
			t.Fatalf("sid %d: %d vs %d neighbors", sid, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sid %d neighbor %d: %+v vs %+v", sid, i, got[i], want[i])
			}
		}
	}
	if faulted.Metrics.ShuffleBytes != clean.Metrics.ShuffleBytes {
		t.Fatalf("PGBJ shuffle changed under faults: %d vs %d", faulted.Metrics.ShuffleBytes, clean.Metrics.ShuffleBytes)
	}
	if faulted.Metrics.Attempts <= int64(faulted.Metrics.Tasks()) {
		t.Fatalf("PGBJ recorded no extra attempts: %d for %d tasks", faulted.Metrics.Attempts, faulted.Metrics.Tasks())
	}
}

// TestPipelineMetricsSkewSurvivesAdd: the 3-phase pipeline's accumulated
// metrics keep every job's reducer counts, so end-to-end skew is reportable.
func TestPipelineMetricsSkewSurvivesAdd(t *testing.T) {
	r, s := testData(t, 200, 150)
	opt := testOptions()
	pre, err := Preprocess(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	join, err := HammingJoinA(s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	var total mapreduce.Metrics
	total.Add(g.Metrics)
	total.Add(join.Metrics)
	if total.Skew() == 0 {
		t.Fatal("pipeline skew lost in Metrics.Add")
	}
	if len(total.ReducerRecords) != len(g.Metrics.ReducerRecords)+len(join.Metrics.ReducerRecords) {
		t.Fatalf("reducer records not concatenated: %d", len(total.ReducerRecords))
	}
}
