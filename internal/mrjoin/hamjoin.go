package mrjoin

import (
	"fmt"
	"time"

	"haindex/internal/baseline"
	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/hash"
	"haindex/internal/mapreduce"
	"haindex/internal/vector"
)

// JoinResult is the output of one distributed Hamming-join.
type JoinResult struct {
	Pairs    []Pair
	Metrics  mapreduce.Metrics
	PostJoin time.Duration // Option B's id-recovery join
}

// decodePairs converts the reduce output into result pairs.
func decodePairs(out []mapreduce.KV) []Pair {
	pairs := make([]Pair, len(out))
	for i, kv := range out {
		pairs[i] = Pair{RID: decodeID(kv.Key), SID: decodeID(kv.Value)}
	}
	return pairs
}

// HammingJoinA is Option A of Section 5.3: the global HA-Index of R — leaves
// included — is broadcast to every node; S is partitioned by the Gray-order
// pivots and every reducer joins its partition against the replicated index.
func HammingJoinA(s []vector.Vec, g *GlobalIndex, pre *Preprocessed, opt Options) (*JoinResult, error) {
	opt = opt.withDefaults()
	if err := checkBits(pre, opt); err != nil {
		return nil, err
	}
	idx := g.Index
	cfg := mapreduce.Config{
		Name:      "mrha-join-a",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Broadcast: []mapreduce.Broadcast{
			{Name: "global-ha-index", Size: int64(idx.BroadcastSizeBytes(true))},
			{Name: "hash", Size: hashFuncSize(pre)},
			{Name: "pivots", Size: pivotsSize(pre)},
		},
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			sid := decodeID(in.Key)
			code := pre.Hash.Hash(decodeVecValue(in.Value))
			pid := partitionID(pre, code)
			emit(mapreduce.KV{Key: encodeUint32(uint32(pid)), Value: encodeIDCode(sid, code)})
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			// Batch the partition's queries through the shared read-only
			// index: one Searcher per worker, emissions in input order so
			// the output is byte-identical to the serial reducer's.
			sids, queries, err := decodeIDCodeBatch(values, opt.Bits)
			if err != nil {
				return err
			}
			results, _ := core.SearchBatch(idx, queries, opt.Threshold, opt.SearchWorkers)
			for i, rids := range results {
				for _, rid := range rids {
					emit(mapreduce.KV{Key: encodeUint32(uint32(rid)), Value: encodeUint32(uint32(sids[i]))})
				}
			}
			return nil
		},
	}
	opt.applyRuntime(&cfg)
	out, metrics, err := mapreduce.Run(cfg, VecInput(s))
	if err != nil {
		return nil, fmt.Errorf("mrjoin: join job (option A): %w", err)
	}
	return &JoinResult{Pairs: decodePairs(out), Metrics: metrics}, nil
}

// HammingJoinB is Option B of Section 5.3: for large R the leaf id tables
// dominate the index, so a leafless index is broadcast; reducers emit the
// qualifying binary codes, and a post-processing hash join against R's
// code→id table recovers the tuple ids.
func HammingJoinB(s []vector.Vec, g *GlobalIndex, pre *Preprocessed, opt Options) (*JoinResult, error) {
	opt = opt.withDefaults()
	if err := checkBits(pre, opt); err != nil {
		return nil, err
	}
	idx := g.Index
	cfg := mapreduce.Config{
		Name:      "mrha-join-b",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Broadcast: []mapreduce.Broadcast{
			{Name: "global-ha-index-leafless", Size: int64(idx.BroadcastSizeBytes(false))},
			{Name: "hash", Size: hashFuncSize(pre)},
			{Name: "pivots", Size: pivotsSize(pre)},
		},
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			sid := decodeID(in.Key)
			code := pre.Hash.Hash(decodeVecValue(in.Value))
			pid := partitionID(pre, code)
			emit(mapreduce.KV{Key: encodeUint32(uint32(pid)), Value: encodeIDCode(sid, code)})
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			sids, queries, err := decodeIDCodeBatch(values, opt.Bits)
			if err != nil {
				return err
			}
			results, _ := core.SearchCodesBatch(idx, queries, opt.Threshold, opt.SearchWorkers)
			for i, qcs := range results {
				for _, qc := range qcs {
					emit(mapreduce.KV{Key: qc.AppendBytes(nil), Value: encodeUint32(uint32(sids[i]))})
				}
			}
			return nil
		},
	}
	opt.applyRuntime(&cfg)
	out, metrics, err := mapreduce.Run(cfg, VecInput(s))
	if err != nil {
		return nil, fmt.Errorf("mrjoin: join job (option B): %w", err)
	}
	// Post-processing: R fits in memory here, so the qualifying codes join
	// against R's in-memory code→ids hash table (Section 5.3's small-R
	// path; the large-R path would be one more MapReduce hash-join).
	t0 := time.Now()
	byCode := make(map[string][]int)
	idx.Tuples(func(id int, c bitvec.Code) {
		k := c.Key()
		byCode[k] = append(byCode[k], id)
	})
	var pairs []Pair
	for _, kv := range out {
		c, _, err := bitvec.CodeFromBytes(kv.Key, opt.Bits)
		if err != nil {
			return nil, fmt.Errorf("mrjoin: decoding qualifying code: %w", err)
		}
		sid := decodeID(kv.Value)
		for _, rid := range byCode[c.Key()] {
			pairs = append(pairs, Pair{RID: rid, SID: sid})
		}
	}
	return &JoinResult{Pairs: pairs, Metrics: metrics, PostJoin: time.Since(t0)}, nil
}

// PMHJoin is the parallel MultiHashTable baseline (Manku et al. extended to
// MapReduce): the entire R table — full-dimensional records — is broadcast
// to every node, S is hash-partitioned, and each reducer builds a
// MultiHashTable (tables per PMH-k) over R's codes and probes it per S
// tuple. Its broadcast cost is O(m·N·d), the term the HA-Index eliminates.
func PMHJoin(r, s []vector.Vec, pre *Preprocessed, tables int, opt Options) (*JoinResult, error) {
	opt = opt.withDefaults()
	if err := checkBits(pre, opt); err != nil {
		return nil, err
	}
	if tables <= 0 {
		tables = 10
	}
	rBytes := int64(0)
	for _, v := range r {
		rBytes += int64(4*len(v) + 8)
	}
	// R's codes are computed once per node from the broadcast records.
	rCodes := hash.HashAll(pre.Hash, r)
	cfg := mapreduce.Config{
		Name:      "pmh-join",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Broadcast: []mapreduce.Broadcast{
			{Name: "table-r", Size: rBytes},
			{Name: "hash", Size: hashFuncSize(pre)},
		},
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			sid := decodeID(in.Key)
			code := pre.Hash.Hash(decodeVecValue(in.Value))
			pid := sid % opt.Partitions
			emit(mapreduce.KV{Key: encodeUint32(uint32(pid)), Value: encodeIDCode(sid, code)})
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			var mh *baseline.MultiHash
			var err error
			if tables == 10 {
				mh, err = baseline.NewMH10(rCodes, nil)
			} else {
				mh, err = baseline.NewMultiHash(rCodes, nil, tables, 1)
			}
			if err != nil {
				return err
			}
			for _, v := range values {
				sid, code, err := decodeIDCode(v, opt.Bits)
				if err != nil {
					return err
				}
				for _, rid := range mh.Search(code, opt.Threshold) {
					emit(mapreduce.KV{Key: encodeUint32(uint32(rid)), Value: encodeUint32(uint32(sid))})
				}
			}
			return nil
		},
	}
	opt.applyRuntime(&cfg)
	out, metrics, err := mapreduce.Run(cfg, VecInput(s))
	if err != nil {
		return nil, fmt.Errorf("mrjoin: PMH join job: %w", err)
	}
	return &JoinResult{Pairs: decodePairs(out), Metrics: metrics}, nil
}

func pivotsSize(pre *Preprocessed) int64 {
	sz := int64(0)
	for _, p := range pre.Pivots {
		sz += int64(p.SizeBytes())
	}
	return sz
}

// ReferenceJoin computes the Hamming-join centrally (nested loop over the
// hashed codes); tests and precision/recall measurements use it as ground
// truth for the distributed plans.
func ReferenceJoin(r, s []vector.Vec, pre *Preprocessed, h int) []Pair {
	rc := hash.HashAll(pre.Hash, r)
	sc := hash.HashAll(pre.Hash, s)
	var out []Pair
	for i, a := range rc {
		for j, b := range sc {
			if _, ok := a.DistanceWithin(b, h); ok {
				out = append(out, Pair{RID: i, SID: j})
			}
		}
	}
	return out
}
