package mrjoin

import (
	"fmt"

	"haindex/internal/core"
	"haindex/internal/hash"
	"haindex/internal/mapreduce"
	"haindex/internal/vector"
)

// HammingJoinBLarge is Option B's large-R path (Section 5.3): when table R
// is too large for the post-processing id recovery to run in one memory,
// the (qualifying code, sid) pairs produced by the leafless join are joined
// back to R's (code, rid) tuples with one more MapReduce job — the standard
// repartition hash-join of Blanas et al. [23]: both sides shuffle keyed on
// the binary code, and each reducer pairs the R ids with the S ids of its
// key group.
func HammingJoinBLarge(r, s []vector.Vec, g *GlobalIndex, pre *Preprocessed, opt Options) (*JoinResult, error) {
	opt = opt.withDefaults()
	if err := checkBits(pre, opt); err != nil {
		return nil, err
	}
	idx := g.Index
	// Stage 1: identical to HammingJoinB's join job — emit (code, sid).
	cfg := mapreduce.Config{
		Name:      "mrha-join-b-stage1",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Broadcast: []mapreduce.Broadcast{
			{Name: "global-ha-index-leafless", Size: int64(idx.BroadcastSizeBytes(false))},
			{Name: "hash", Size: hashFuncSize(pre)},
			{Name: "pivots", Size: pivotsSize(pre)},
		},
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			sid := decodeID(in.Key)
			code := pre.Hash.Hash(decodeVecValue(in.Value))
			pid := partitionID(pre, code)
			emit(mapreduce.KV{Key: encodeUint32(uint32(pid)), Value: encodeIDCode(sid, code)})
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			var stats core.SearchStats
			for _, v := range values {
				sid, code, err := decodeIDCode(v, opt.Bits)
				if err != nil {
					return err
				}
				for _, qc := range idx.SearchCodesInto(code, opt.Threshold, &stats) {
					emit(mapreduce.KV{Key: qc.AppendBytes(nil), Value: encodeUint32(uint32(sid))})
				}
			}
			return nil
		},
	}
	opt.applyRuntime(&cfg)
	stage1, metrics, err := mapreduce.Run(cfg, VecInput(s))
	if err != nil {
		return nil, fmt.Errorf("mrjoin: join job (option B large): %w", err)
	}

	// Stage 2: repartition hash-join on the code key. The R side streams
	// its (code, rid) records; the stage-1 output streams its (code, sid)
	// records; reducers cross the two lists per code.
	const (
		sideR = 0
		sideS = 1
	)
	rCodes := hash.HashAll(pre.Hash, r)
	input := make([]mapreduce.KV, 0, len(r)+len(stage1))
	for rid, code := range rCodes {
		input = append(input, mapreduce.KV{
			Key:   code.AppendBytes(nil),
			Value: append([]byte{sideR}, encodeUint32(uint32(rid))...),
		})
	}
	for _, kv := range stage1 {
		input = append(input, mapreduce.KV{
			Key:   kv.Key,
			Value: append([]byte{sideS}, kv.Value...),
		})
	}
	joinCfg := mapreduce.Config{
		Name:     "mrha-join-b-hashjoin",
		Nodes:    opt.Nodes,
		Reducers: opt.Partitions,
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			emit(in)
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			var rids, sids []uint32
			for _, v := range values {
				if len(v) != 5 {
					return fmt.Errorf("mrjoin: malformed hash-join record (%d bytes)", len(v))
				}
				id := uint32(v[1])<<24 | uint32(v[2])<<16 | uint32(v[3])<<8 | uint32(v[4])
				if v[0] == sideR {
					rids = append(rids, id)
				} else {
					sids = append(sids, id)
				}
			}
			for _, rid := range rids {
				for _, sid := range sids {
					emit(mapreduce.KV{Key: encodeUint32(rid), Value: encodeUint32(sid)})
				}
			}
			return nil
		},
	}
	opt.applyRuntime(&joinCfg)
	out, m2, err := mapreduce.Run(joinCfg, input)
	if err != nil {
		return nil, fmt.Errorf("mrjoin: option B hash-join job: %w", err)
	}
	metrics.Add(m2)
	return &JoinResult{Pairs: decodePairs(out), Metrics: metrics}, nil
}
