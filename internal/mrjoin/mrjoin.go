// Package mrjoin implements the parallel Hamming-join of Section 5 on the
// MapReduce runtime, together with the two distributed baselines the paper
// evaluates against:
//
//   - MRHA (Options A and B): preprocessing (sampling, hash learning,
//     histogram pivot selection) → a first MapReduce job that partitions R
//     by Gray-order pivots and builds per-partition HA-Indexes that are
//     merged into a global index → a second job that broadcasts the (leafy
//     or leafless) index and joins S against it.
//   - PMH: Manku et al.'s approach — broadcast the whole of table R to
//     every node and run a MultiHashTable join per partition of S.
//   - PGBJ: Lu et al.'s exact kNN-join via pivot (Voronoi) partitioning
//     with full-dimensional record shuffling.
package mrjoin

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/dataset"
	"haindex/internal/dfs"
	"haindex/internal/hash"
	"haindex/internal/histo"
	"haindex/internal/mapreduce"
	"haindex/internal/obs"
	"haindex/internal/vector"
)

// Options configures the distributed join pipelines.
type Options struct {
	Bits       int     // binary code length L; 0 selects 32
	Partitions int     // number of data partitions N; 0 selects Nodes
	Nodes      int     // simulated cluster size; 0 selects 16 (the paper's)
	SampleRate float64 // preprocessing sample fraction; 0 selects 0.1
	Threshold  int     // Hamming-join threshold h; 0 selects 3 (the paper's default)
	Seed       int64
	IndexOpts  core.Options // HA-Index build options

	// SearchWorkers is the per-reducer query-engine parallelism: each join
	// or select reducer drains its query partition through a
	// core.SearchBatch worker pool over the shared broadcast index instead
	// of searching serially. 0 selects GOMAXPROCS; 1 forces serial search.
	SearchWorkers int

	// FS, when set, routes the per-partition local indexes through the
	// simulated distributed filesystem: reducers persist their serialized
	// index (the paper's "produces the local HA-Index as output"), and the
	// merge phase reads the parts back. When nil the indexes are handed
	// over in memory.
	FS *dfs.FS

	// Faults, Retry, and Speculation configure the runtime failure model
	// for every MapReduce job a pipeline runs; see the mapreduce package.
	// The jobs' map and reduce functions are pure (and their DFS writes
	// idempotent), so injected failures and speculative re-execution never
	// change a join's output or its shuffle volume.
	Faults      *mapreduce.FaultPlan
	Retry       mapreduce.RetryPolicy
	Speculation mapreduce.Speculation

	// Obs, when set, is handed to every MapReduce job the pipeline runs, so
	// per-phase wall times and per-task latency distributions accumulate
	// across the pipeline's jobs; see mapreduce.Config.Obs.
	Obs *obs.Registry
}

// applyRuntime threads the failure-model and observability knobs into one
// job config.
func (o Options) applyRuntime(cfg *mapreduce.Config) {
	cfg.Faults = o.Faults
	cfg.Retry = o.Retry
	cfg.Speculation = o.Speculation
	cfg.Obs = o.Obs
}

func (o Options) withDefaults() Options {
	if o.Bits <= 0 {
		o.Bits = 32
	}
	if o.Nodes <= 0 {
		o.Nodes = 16
	}
	if o.Partitions <= 0 {
		o.Partitions = o.Nodes
	}
	if o.SampleRate <= 0 {
		o.SampleRate = 0.1
	}
	if o.Threshold <= 0 {
		o.Threshold = 3
	}
	return o
}

// Pair is one Hamming-join result: tuple RID of R and SID of S whose binary
// codes are within the threshold.
type Pair struct {
	RID, SID int
}

// Preprocessed carries the phase-1 artifacts of Figure 5: the learned hash
// function and the histogram pivots, with their costs.
type Preprocessed struct {
	Hash       *hash.Spectral
	Pivots     []bitvec.Code
	SampleSize int

	SampleTime time.Duration
	LearnTime  time.Duration
	PivotTime  time.Duration
}

// Preprocess runs the phase-1 of the pipeline: reservoir-sample R and S,
// learn the spectral hash on the sample, and derive equi-depth Gray-order
// pivots from the sampled codes.
func Preprocess(r, s []vector.Vec, opt Options) (*Preprocessed, error) {
	opt = opt.withDefaults()
	t0 := time.Now()
	want := int(opt.SampleRate * float64(len(r)+len(s)))
	if want < 2 {
		want = 2
	}
	sample := dataset.Reservoir(append(append([]vector.Vec{}, r...), s...), want, opt.Seed)
	sampleTime := time.Since(t0)

	t0 = time.Now()
	h, err := hash.LearnSpectral(sample, opt.Bits)
	if err != nil {
		return nil, fmt.Errorf("mrjoin: learning hash: %w", err)
	}
	learnTime := time.Since(t0)

	t0 = time.Now()
	codes := hash.HashAll(h, sample)
	pivots := histo.Pivots(codes, opt.Partitions)
	pivotTime := time.Since(t0)

	return &Preprocessed{
		Hash:       h,
		Pivots:     pivots,
		SampleSize: len(sample),
		SampleTime: sampleTime,
		LearnTime:  learnTime,
		PivotTime:  pivotTime,
	}, nil
}

// ---- record encodings (the bytes that cross the simulated wire) ----

// encodeVecKV packs a tuple id and its feature vector (float32 components,
// matching typical feature storage) as one KV.
func encodeVecKV(id int, v vector.Vec) mapreduce.KV {
	key := make([]byte, 4)
	binary.BigEndian.PutUint32(key, uint32(id))
	val := make([]byte, 4*len(v))
	for i, x := range v {
		binary.BigEndian.PutUint32(val[4*i:], math.Float32bits(float32(x)))
	}
	return mapreduce.KV{Key: key, Value: val}
}

func decodeVecValue(b []byte) vector.Vec {
	v := make(vector.Vec, len(b)/4)
	for i := range v {
		v[i] = float64(math.Float32frombits(binary.BigEndian.Uint32(b[4*i:])))
	}
	return v
}

// VecInput encodes a dataset as MapReduce input records.
func VecInput(data []vector.Vec) []mapreduce.KV {
	out := make([]mapreduce.KV, len(data))
	for i, v := range data {
		out[i] = encodeVecKV(i, v)
	}
	return out
}

func decodeID(b []byte) int { return int(binary.BigEndian.Uint32(b)) }

func encodeUint32(v uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	return b
}

// encodeIDCode packs (tuple id, binary code) as a value.
func encodeIDCode(id int, c bitvec.Code) []byte {
	b := make([]byte, 4, 4+bitvec.EncodedLen(c.Len()))
	binary.BigEndian.PutUint32(b, uint32(id))
	return c.AppendBytes(b)
}

func decodeIDCode(b []byte, bits int) (int, bitvec.Code, error) {
	if len(b) < 4 {
		return 0, bitvec.Code{}, fmt.Errorf("mrjoin: short id+code record (%d bytes)", len(b))
	}
	id := int(binary.BigEndian.Uint32(b))
	c, _, err := bitvec.CodeFromBytes(b[4:], bits)
	return id, c, err
}

// decodeIDCodeBatch decodes a reducer's value list into parallel id and code
// slices — the query batch a reducer hands to core.SearchBatch.
func decodeIDCodeBatch(values [][]byte, bits int) ([]int, []bitvec.Code, error) {
	ids := make([]int, len(values))
	codes := make([]bitvec.Code, len(values))
	for i, v := range values {
		id, c, err := decodeIDCode(v, bits)
		if err != nil {
			return nil, nil, err
		}
		ids[i], codes[i] = id, c
	}
	return ids, codes, nil
}

// checkBits guards against a silent reinterpretation hazard: codes are
// wire-encoded without a length marker (the job config carries it), so a
// config whose Bits disagrees with the learned hash would decode garbage.
func checkBits(pre *Preprocessed, opt Options) error {
	if pre.Hash.Bits() != opt.Bits {
		return fmt.Errorf("mrjoin: options declare %d-bit codes but the learned hash produces %d-bit codes",
			opt.Bits, pre.Hash.Bits())
	}
	return nil
}

// partitionByKeyUint32 routes 4-byte big-endian partition-id keys directly.
func partitionByKeyUint32(key []byte, n int) int {
	return int(binary.BigEndian.Uint32(key)) % n
}
