package mrjoin

import (
	"math/rand"
	"sort"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/dataset"
	"haindex/internal/dfs"
	"haindex/internal/hash"
	"haindex/internal/knn"
	"haindex/internal/vector"
)

func testOptions() Options {
	return Options{Bits: 32, Partitions: 4, Nodes: 4, SampleRate: 0.2, Threshold: 3, Seed: 1}
}

func testData(t *testing.T, nr, ns int) (r, s []vector.Vec) {
	t.Helper()
	// One generation so R and S share cluster structure (they model two
	// tables over the same feature space).
	prof := dataset.Profile{Name: "test", Dim: 24, Clusters: 6, Skew: 0.8, Spread: 0.03}
	data := dataset.Generate(prof, nr+ns, 11)
	return data[:nr], data[nr:]
}

// roundTrip pushes vectors through the wire encoding (float32), giving the
// values the distributed plans actually compute with.
func roundTrip(vs []vector.Vec) []vector.Vec {
	out := make([]vector.Vec, len(vs))
	for i, v := range vs {
		out[i] = decodeVecValue(encodeVecKV(i, v).Value)
	}
	return out
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
}

func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	sortPairs(a)
	sortPairs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPreprocess(t *testing.T) {
	r, s := testData(t, 300, 200)
	pre, err := Preprocess(r, s, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pre.Hash.Bits() != 32 {
		t.Errorf("bits = %d", pre.Hash.Bits())
	}
	if len(pre.Pivots) != 3 {
		t.Errorf("pivots = %d", len(pre.Pivots))
	}
	if pre.SampleSize != 100 {
		t.Errorf("sample = %d want 100", pre.SampleSize)
	}
}

// TestJoinEquivalence: both MRHA options and PMH must produce exactly the
// centralized Hamming-join.
func TestJoinEquivalence(t *testing.T) {
	r, s := testData(t, 400, 300)
	opt := testOptions()
	pre, err := Preprocess(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The distributed plans hash float32-transported vectors; use the same
	// values for the reference.
	rr, ss := roundTrip(r), roundTrip(s)
	want := ReferenceJoin(rr, ss, pre, opt.Threshold)
	if len(want) == 0 {
		t.Fatal("reference join empty; test data too sparse")
	}

	g, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g.Index.Len() != len(r) {
		t.Fatalf("global index Len=%d want %d", g.Index.Len(), len(r))
	}

	a, err := HammingJoinA(s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(a.Pairs, want) {
		t.Errorf("option A: %d pairs want %d", len(a.Pairs), len(want))
	}

	b, err := HammingJoinB(s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(b.Pairs, want) {
		t.Errorf("option B: %d pairs want %d", len(b.Pairs), len(want))
	}

	p, err := PMHJoin(r, s, pre, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(p.Pairs, want) {
		t.Errorf("PMH: %d pairs want %d", len(p.Pairs), len(want))
	}
}

// TestShuffleOrdering reproduces the Figure 7 ordering at miniature scale:
// PGBJ (full-dimensional shuffle) ≫ PMH (whole-R broadcast) > MRHA-A
// (index broadcast) ≥ MRHA-B (leafless index broadcast).
func TestShuffleOrdering(t *testing.T) {
	r, s := testData(t, 500, 500)
	opt := testOptions()
	pre, err := Preprocess(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := HammingJoinA(s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HammingJoinB(s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PMHJoin(r, s, pre, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := PGBJ(r, s, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the data movement each plan needs beyond the join output:
	// broadcast plus shuffle of its input-side records.
	costA := a.Metrics.BroadcastBytes + g.Metrics.ShuffleBytes + shuffleIn(a)
	costB := b.Metrics.BroadcastBytes + g.Metrics.ShuffleBytes + shuffleIn(b)
	costP := p.Metrics.BroadcastBytes + shuffleIn(p)
	costPG := pg.Metrics.ShuffleBytes + pg.Metrics.BroadcastBytes
	if costPG <= costP {
		t.Errorf("PGBJ (%d) should shuffle more than PMH (%d)", costPG, costP)
	}
	if costP <= costA {
		t.Errorf("PMH (%d) should cost more than MRHA-A (%d)", costP, costA)
	}
	if costB > costA {
		t.Errorf("MRHA-B (%d) should not cost more than MRHA-A (%d)", costB, costA)
	}
}

// shuffleIn isolates the S-side input shuffle (excludes emitted join pairs,
// which are identical across equivalent plans).
func shuffleIn(j *JoinResult) int64 {
	return j.Metrics.ShuffleBytes - int64(len(j.Pairs))*16
}

// TestPGBJExact: the pivot-partitioned join must equal the brute-force
// kNN-join.
func TestPGBJExact(t *testing.T) {
	r, s := testData(t, 300, 60)
	opt := testOptions()
	k := 5
	res, err := PGBJ(r, s, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != len(s) {
		t.Fatalf("neighbors for %d tuples want %d", len(res.Neighbors), len(s))
	}
	rr, ss := roundTrip(r), roundTrip(s)
	for sid, got := range res.Neighbors {
		want := knn.Exact(rr, ss[sid], k)
		if len(got) != len(want) {
			t.Fatalf("sid %d: %d neighbors want %d", sid, len(got), len(want))
		}
		for i := range want {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("sid %d rank %d: dist %v want %v (ids %d vs %d)",
					sid, i, got[i].Dist, want[i].Dist, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestPGBJErrors(t *testing.T) {
	if _, err := PGBJ(nil, nil, 5, testOptions()); err == nil {
		t.Fatal("expected error on empty input")
	}
}

// TestLoadBalance: histogram pivots should keep reducer skew low on skewed
// data (the Section 5.1 goal).
func TestLoadBalance(t *testing.T) {
	prof := dataset.Profile{Name: "skewed", Dim: 16, Clusters: 2, Skew: 1.5, Spread: 0.02}
	r := dataset.Generate(prof, 2000, 31)
	opt := testOptions()
	opt.Partitions = 8
	pre, err := Preprocess(r, r, opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	if skew := g.Metrics.Skew(); skew > 3 {
		t.Errorf("reducer skew %.2f too high for histogram partitioning", skew)
	}
}

func TestVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	v := make(vector.Vec, 10)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	kv := encodeVecKV(42, v)
	if decodeID(kv.Key) != 42 {
		t.Fatal("id mismatch")
	}
	back := decodeVecValue(kv.Value)
	for i := range v {
		if diff := v[i] - back[i]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("component %d: %v vs %v", i, v[i], back[i])
		}
	}
}

func TestIDCodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for i := 0; i < 50; i++ {
		c := randCode(rng, 32)
		b := encodeIDCode(7, c)
		id, back, err := decodeIDCode(b, 32)
		if err != nil || id != 7 || !back.Equal(c) {
			t.Fatalf("roundtrip failed: %v", err)
		}
	}
	if _, _, err := decodeIDCode([]byte{1, 2}, 32); err == nil {
		t.Fatal("expected short-record error")
	}
}

func randCode(rng *rand.Rand, n int) bitvec.Code {
	return bitvec.Rand(rng, n)
}

// TestHammingJoinBLarge: the large-R MapReduce hash-join path must produce
// exactly the same pairs as the in-memory Option B and the reference.
func TestHammingJoinBLarge(t *testing.T) {
	r, s := testData(t, 350, 250)
	opt := testOptions()
	pre, err := Preprocess(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	rr, ss := roundTrip(r), roundTrip(s)
	want := ReferenceJoin(rr, ss, pre, opt.Threshold)
	g, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	big, err := HammingJoinBLarge(r, s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(big.Pairs, want) {
		t.Errorf("large-R option B: %d pairs want %d", len(big.Pairs), len(want))
	}
	small, err := HammingJoinB(s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(big.Pairs, small.Pairs) {
		t.Error("large and small Option B disagree")
	}
	// The second job costs extra shuffle (it reshuffles R's codes), which
	// is the trade the paper describes for not holding R in memory.
	if big.Metrics.ShuffleBytes <= small.Metrics.ShuffleBytes {
		t.Error("large-R path should shuffle more than the in-memory path")
	}
}

// TestBuildGlobalIndexViaDFS routes the local indexes through the simulated
// distributed filesystem and verifies the merged index is identical to the
// in-memory handoff.
func TestBuildGlobalIndexViaDFS(t *testing.T) {
	r, s := testData(t, 400, 100)
	_ = s
	opt := testOptions()
	pre, err := Preprocess(r, r, opt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	withFS := opt
	withFS.FS = dfs.New(3)
	viaDFS, err := BuildGlobalIndex(r, pre, withFS)
	if err != nil {
		t.Fatal(err)
	}
	if viaDFS.Index.Len() != plain.Index.Len() {
		t.Fatalf("len %d vs %d", viaDFS.Index.Len(), plain.Index.Len())
	}
	if viaDFS.DFSWritten == 0 || viaDFS.DFSRead == 0 {
		t.Fatalf("DFS accounting empty: w=%d r=%d", viaDFS.DFSWritten, viaDFS.DFSRead)
	}
	// Replication factor 3 on writes.
	if viaDFS.DFSWritten != 3*viaDFS.DFSRead {
		t.Fatalf("expected 3x replication: w=%d r=%d", viaDFS.DFSWritten, viaDFS.DFSRead)
	}
	// The merged indexes answer identically.
	rr := roundTrip(r)
	codes := hashCodes(pre, rr)
	for q := 0; q < 25; q++ {
		query := codes[(q*37)%len(codes)]
		a := plain.Index.Search(query, 3)
		b := viaDFS.Index.Search(query, 3)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			t.Fatalf("DFS-built index differs: %d vs %d results", len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("DFS-built index differs in ids")
			}
		}
	}
}

func hashCodes(pre *Preprocessed, vs []vector.Vec) []bitvec.Code {
	out := make([]bitvec.Code, len(vs))
	for i, v := range vs {
		out[i] = pre.Hash.Hash(v)
	}
	return out
}

// TestMismatchedBitsFails: a configuration whose code length disagrees with
// the learned hash must surface a decode error, not corrupt results.
func TestMismatchedBitsFails(t *testing.T) {
	r, _ := testData(t, 100, 10)
	opt := testOptions()
	pre, err := Preprocess(r, r, opt)
	if err != nil {
		t.Fatal(err)
	}
	bad := opt
	bad.Bits = 64 // hash produces 32-bit codes
	if _, err := BuildGlobalIndex(r, pre, bad); err == nil {
		t.Fatal("expected decode error from mismatched code length")
	}
}

// TestOptionBLeaflessBroadcastSmaller: Option B's broadcast is strictly
// smaller than Option A's (the Section 5.3 point).
func TestOptionBLeaflessBroadcastSmaller(t *testing.T) {
	r, s := testData(t, 500, 200)
	opt := testOptions()
	pre, err := Preprocess(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := HammingJoinA(s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HammingJoinB(s, g, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	if b.Metrics.BroadcastBytes >= a.Metrics.BroadcastBytes {
		t.Fatalf("leafless broadcast %d should be below leafy %d",
			b.Metrics.BroadcastBytes, a.Metrics.BroadcastBytes)
	}
}

// TestEmptyR: building over an empty R reports an error.
func TestEmptyR(t *testing.T) {
	_, s := testData(t, 10, 50)
	opt := testOptions()
	pre, err := Preprocess(s, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGlobalIndex(nil, pre, opt); err == nil {
		t.Fatal("expected error for empty R")
	}
}

// TestJoinSearchWorkersEquivalence: the batched reducers must produce the
// same pairs at every per-reducer worker count, including the serial one.
func TestJoinSearchWorkersEquivalence(t *testing.T) {
	r, s := testData(t, 350, 250)
	opt := testOptions()
	pre, err := Preprocess(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceJoin(roundTrip(r), roundTrip(s), pre, opt.Threshold)
	for _, workers := range []int{1, 2, 4, 0} {
		opt.SearchWorkers = workers
		a, err := HammingJoinA(s, g, pre, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPairs(a.Pairs, want) {
			t.Errorf("option A workers=%d: %d pairs want %d", workers, len(a.Pairs), len(want))
		}
		b, err := HammingJoinB(s, g, pre, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPairs(b.Pairs, want) {
			t.Errorf("option B workers=%d: %d pairs want %d", workers, len(b.Pairs), len(want))
		}
	}
}

// TestHammingSelect: the distributed select matches per-query reference
// scans, at several per-reducer worker counts.
func TestHammingSelect(t *testing.T) {
	r, q := testData(t, 400, 60)
	opt := testOptions()
	pre, err := Preprocess(r, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGlobalIndex(r, pre, opt)
	if err != nil {
		t.Fatal(err)
	}
	rr, qq := roundTrip(r), roundTrip(q)
	rc := hash.HashAll(pre.Hash, rr)
	qc := hash.HashAll(pre.Hash, qq)
	want := make([][]int, len(qq))
	for i, quc := range qc {
		for j, c := range rc {
			if _, ok := quc.DistanceWithin(c, opt.Threshold); ok {
				want[i] = append(want[i], j)
			}
		}
	}
	for _, workers := range []int{1, 4} {
		opt.SearchWorkers = workers
		res, err := HammingSelect(q, g, pre, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) != len(q) {
			t.Fatalf("workers=%d: %d result lists for %d queries", workers, len(res.IDs), len(q))
		}
		for i := range want {
			got := append([]int(nil), res.IDs[i]...)
			exp := append([]int(nil), want[i]...)
			sort.Ints(got)
			sort.Ints(exp)
			if len(got) != len(exp) {
				t.Fatalf("workers=%d query %d: got %d ids want %d", workers, i, len(got), len(exp))
			}
			for k := range got {
				if got[k] != exp[k] {
					t.Fatalf("workers=%d query %d: id mismatch at %d", workers, i, k)
				}
			}
		}
		if res.Metrics.BroadcastBytes == 0 {
			t.Error("select job charged no broadcast bytes")
		}
	}
}
