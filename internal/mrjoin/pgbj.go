package mrjoin

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"haindex/internal/dataset"
	"haindex/internal/knn"
	"haindex/internal/mapreduce"
	"haindex/internal/vector"
)

// PGBJResult is the output of the exact parallel kNN-join baseline.
type PGBJResult struct {
	// Neighbors maps each S tuple id to its k nearest R neighbors.
	Neighbors map[int][]knn.Neighbor
	Metrics   mapreduce.Metrics
}

// cellStats describes one Voronoi cell of the pivot partitioning.
type cellStats struct {
	radius float64 // max distance from a member R tuple to the pivot
	count  int
}

// PGBJ reimplements Lu et al.'s (PVLDB'12) exact kNN-join: R is Voronoi-
// partitioned around sampled pivots; a first job computes per-cell radii and
// counts; a second job shuffles R to its cells and replicates each S tuple
// to every cell that can contain one of its k nearest neighbors (bounded by
// the smallest distance guaranteeing k covered candidates); reducers join
// cells exactly and a final merge keeps the global top k per S tuple.
//
// The defining cost — full d-dimensional records crossing the shuffle, with
// S replication — is what Figures 7 and 9 contrast with the code-only
// shuffles of the Hamming-join plans.
func PGBJ(r, s []vector.Vec, k int, opt Options) (*PGBJResult, error) {
	opt = opt.withDefaults()
	if len(r) == 0 || len(s) == 0 {
		return nil, fmt.Errorf("mrjoin: PGBJ over empty input")
	}
	if k <= 0 {
		k = 50
	}
	pivots := dataset.Reservoir(r, opt.Partitions, opt.Seed+17)
	nearest := func(v vector.Vec) (int, float64) {
		best, bd := 0, math.Inf(1)
		for i, p := range pivots {
			if d := v.Dist(p); d < bd {
				best, bd = i, d
			}
		}
		return best, bd
	}

	var total mapreduce.Metrics

	// ---- Job A: per-cell statistics (radius, count) ----
	stats := make([]cellStats, len(pivots))
	var mu sync.Mutex
	cfgA := mapreduce.Config{
		Name:      "pgbj-cell-stats",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			v := decodeVecValue(in.Value)
			cell, _ := nearest(v)
			emit(mapreduce.KV{Key: encodeUint32(uint32(cell)), Value: in.Value})
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			cell := decodeID(key)
			cs := cellStats{count: len(values)}
			p := pivots[cell]
			for _, v := range values {
				if d := decodeVecValue(v).Dist(p); d > cs.radius {
					cs.radius = d
				}
			}
			mu.Lock()
			stats[cell] = cs
			mu.Unlock()
			return nil
		},
	}
	opt.applyRuntime(&cfgA)
	if _, m, err := mapreduce.Run(cfgA, VecInput(r)); err != nil {
		return nil, fmt.Errorf("mrjoin: PGBJ stats job: %w", err)
	} else {
		total.Add(m)
	}

	// ---- Job B: partition R, replicate S, join per cell ----
	const (
		sideR = 0
		sideS = 1
	)
	input := make([]mapreduce.KV, 0, len(r)+len(s))
	for i, v := range r {
		kv := encodeVecKV(i, v)
		kv.Value = append([]byte{sideR}, kv.Value...)
		input = append(input, kv)
	}
	for i, v := range s {
		kv := encodeVecKV(i, v)
		kv.Value = append([]byte{sideS}, kv.Value...)
		input = append(input, kv)
	}
	cfgB := mapreduce.Config{
		Name:      "pgbj-join",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Broadcast: []mapreduce.Broadcast{
			{Name: "pivots+stats", Size: int64(len(pivots)*(4*len(r[0])+16) + 16)},
		},
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			side := in.Value[0]
			id := decodeID(in.Key)
			v := decodeVecValue(in.Value[1:])
			if side == sideR {
				cell, _ := nearest(v)
				val := append([]byte{sideR}, encodeVecKV(id, v).Value...)
				val = append(encodeUint32(uint32(id)), val...)
				emit(mapreduce.KV{Key: encodeUint32(uint32(cell)), Value: val})
				return nil
			}
			// S side: find the distance bound covering >= k R tuples, then
			// replicate to every cell that can intersect it.
			type cand struct {
				cell  int
				upper float64 // dist(s, p) + radius: covers whole cell
				lower float64 // dist(s, p) - radius: closest possible member
			}
			cands := make([]cand, 0, len(pivots))
			for ci := range pivots {
				if stats[ci].count == 0 {
					continue
				}
				d := v.Dist(pivots[ci])
				cands = append(cands, cand{cell: ci, upper: d + stats[ci].radius, lower: d - stats[ci].radius})
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].upper < cands[b].upper })
			covered := 0
			ub := math.Inf(1)
			for _, c := range cands {
				covered += stats[c.cell].count
				if covered >= k {
					ub = c.upper
					break
				}
			}
			for _, c := range cands {
				if c.lower <= ub {
					val := append([]byte{sideS}, encodeVecKV(id, v).Value...)
					val = append(encodeUint32(uint32(id)), val...)
					emit(mapreduce.KV{Key: encodeUint32(uint32(c.cell)), Value: val})
				}
			}
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			var rids []int
			var rvecs []vector.Vec
			type srec struct {
				id  int
				vec vector.Vec
			}
			var ss []srec
			for _, v := range values {
				id := decodeID(v)
				side := v[4]
				vec := decodeVecValue(v[5:])
				if side == sideR {
					rids = append(rids, id)
					rvecs = append(rvecs, vec)
				} else {
					ss = append(ss, srec{id: id, vec: vec})
				}
			}
			for _, sr := range ss {
				for _, n := range knn.Exact(rvecs, sr.vec, k) {
					val := make([]byte, 12)
					binary.BigEndian.PutUint32(val, uint32(rids[n.ID]))
					binary.BigEndian.PutUint64(val[4:], math.Float64bits(n.Dist))
					emit(mapreduce.KV{Key: encodeUint32(uint32(sr.id)), Value: val})
				}
			}
			return nil
		},
	}
	opt.applyRuntime(&cfgB)
	out, m, err := mapreduce.Run(cfgB, input)
	if err != nil {
		return nil, fmt.Errorf("mrjoin: PGBJ join job: %w", err)
	}
	total.Add(m)

	// Merge candidates per S tuple, keep the global top k.
	perS := make(map[int][]knn.Neighbor)
	for _, kv := range out {
		sid := decodeID(kv.Key)
		rid := int(binary.BigEndian.Uint32(kv.Value))
		dist := math.Float64frombits(binary.BigEndian.Uint64(kv.Value[4:]))
		perS[sid] = append(perS[sid], knn.Neighbor{ID: rid, Dist: dist})
	}
	for sid, ns := range perS {
		sort.Slice(ns, func(a, b int) bool {
			if ns[a].Dist != ns[b].Dist {
				return ns[a].Dist < ns[b].Dist
			}
			return ns[a].ID < ns[b].ID
		})
		// Replicated S tuples can meet the same R tuple in several cells
		// only if R were replicated — it is not — so no dedup is needed.
		if len(ns) > k {
			ns = ns[:k]
		}
		perS[sid] = ns
	}
	return &PGBJResult{Neighbors: perS, Metrics: total}, nil
}
