package mrjoin

import (
	"fmt"

	"haindex/internal/core"
	"haindex/internal/mapreduce"
	"haindex/internal/vector"
)

// SelectResult is the output of one distributed Hamming-select job.
type SelectResult struct {
	// IDs[i] lists the R tuple ids within the Hamming threshold of query i.
	IDs     [][]int
	Metrics mapreduce.Metrics
}

// HammingSelect is the MapReduce Hamming-select of Section 5.2: the global
// HA-Index of R is broadcast to every node, the query stream is spread
// round-robin over the reducers (the index is replicated, so any placement
// is correct — round-robin keeps the load balanced), and each reducer drains
// its query partition through a core.SearchBatch worker pool instead of
// searching serially.
func HammingSelect(queries []vector.Vec, g *GlobalIndex, pre *Preprocessed, opt Options) (*SelectResult, error) {
	opt = opt.withDefaults()
	if err := checkBits(pre, opt); err != nil {
		return nil, err
	}
	idx := g.Index
	cfg := mapreduce.Config{
		Name:      "mrha-select",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Broadcast: []mapreduce.Broadcast{
			{Name: "global-ha-index", Size: int64(idx.BroadcastSizeBytes(true))},
			{Name: "hash", Size: hashFuncSize(pre)},
		},
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			qid := decodeID(in.Key)
			code := pre.Hash.Hash(decodeVecValue(in.Value))
			pid := qid % opt.Partitions
			emit(mapreduce.KV{Key: encodeUint32(uint32(pid)), Value: encodeIDCode(qid, code)})
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			qids, qcodes, err := decodeIDCodeBatch(values, opt.Bits)
			if err != nil {
				return err
			}
			results, _ := core.SearchBatch(idx, qcodes, opt.Threshold, opt.SearchWorkers)
			for i, rids := range results {
				for _, rid := range rids {
					emit(mapreduce.KV{Key: encodeUint32(uint32(qids[i])), Value: encodeUint32(uint32(rid))})
				}
			}
			return nil
		},
	}
	opt.applyRuntime(&cfg)
	out, metrics, err := mapreduce.Run(cfg, VecInput(queries))
	if err != nil {
		return nil, fmt.Errorf("mrjoin: select job: %w", err)
	}
	res := &SelectResult{IDs: make([][]int, len(queries)), Metrics: metrics}
	for _, kv := range out {
		qid := decodeID(kv.Key)
		if qid < 0 || qid >= len(queries) {
			return nil, fmt.Errorf("mrjoin: select emitted query id %d outside [0,%d)", qid, len(queries))
		}
		res.IDs[qid] = append(res.IDs[qid], decodeID(kv.Value))
	}
	return res, nil
}
