package mrjoin

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/gray"
	"haindex/internal/mapreduce"
	"haindex/internal/vector"
	"haindex/internal/wire"
)

// ShardSnapshots is the output of BuildShardSnapshots: one serving-ready
// snapshot file per partition plus the job's cost.
type ShardSnapshots struct {
	Paths   []string // shard-%05d.hasn, indexed by partition id
	Tuples  []int    // per-partition tuple counts
	Metrics mapreduce.Metrics
	Build   time.Duration
}

// BuildShardSnapshots runs the Figure-5 build job end-to-end for serving:
// mappers hash and route tuples to their Gray partition exactly as
// BuildGlobalIndex does, but each reducer emits a serving-ready v4 snapshot
// (shard-%05d.hasn in dir) instead of handing back a pointer index for a
// global merge. The reducer Gray-sorts its partition and streams it through
// a core.FrozenStreamWriter in chunkSize chunks, so reducer peak memory is
// O(chunkSize) — a partition far larger than a worker's RAM still freezes,
// because no pointer DAG over the whole partition ever exists. chunkSize <= 0
// selects 1<<18.
//
// Partitions that receive no tuples still get a (valid, empty) snapshot so
// the directory always holds opt.Partitions files and a server fleet can
// load every shard of the routing table.
func BuildShardSnapshots(r []vector.Vec, pre *Preprocessed, opt Options, dir string, chunkSize int) (*ShardSnapshots, error) {
	opt = opt.withDefaults()
	if err := checkBits(pre, opt); err != nil {
		return nil, err
	}
	if chunkSize <= 0 {
		chunkSize = 1 << 18
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta := func(pid int) wire.SnapshotMeta {
		return wire.SnapshotMeta{Part: pid, Parts: opt.Partitions, Length: opt.Bits, Pivots: pre.Pivots}
	}
	shardPath := func(pid int) string {
		return filepath.Join(dir, fmt.Sprintf("shard-%05d.hasn", pid))
	}

	var mu sync.Mutex
	tuples := make([]int, opt.Partitions)

	pivotBytes := int64(0)
	for _, p := range pre.Pivots {
		pivotBytes += int64(p.SizeBytes())
	}
	cfg := mapreduce.Config{
		Name:      "mrha-build-snapshots",
		Nodes:     opt.Nodes,
		Reducers:  opt.Partitions,
		Partition: partitionByKeyUint32,
		Broadcast: []mapreduce.Broadcast{
			{Name: "pivots", Size: pivotBytes},
			{Name: "hash", Size: hashFuncSize(pre)},
		},
		Map: func(in mapreduce.KV, emit func(mapreduce.KV)) error {
			id := decodeID(in.Key)
			code := pre.Hash.Hash(decodeVecValue(in.Value))
			pid := partitionID(pre, code)
			emit(mapreduce.KV{Key: encodeUint32(uint32(pid)), Value: encodeIDCode(id, code)})
			return nil
		},
		Reduce: func(key []byte, values [][]byte, emit func(mapreduce.KV)) error {
			pid := decodeID(key)
			ids, codes, err := decodeIDCodeBatch(values, opt.Bits)
			if err != nil {
				return err
			}
			// Gray-sort so each streamed chunk covers a tight Gray range and
			// the per-chunk hierarchies stay as selective as a monolithic
			// build over the same range.
			gray.Sort(codes, ids)
			if err := emitSnapshot(shardPath(pid), meta(pid), opt, chunkSize, ids, codes); err != nil {
				return err
			}
			mu.Lock()
			tuples[pid] = len(ids)
			mu.Unlock()
			return nil
		},
	}
	opt.applyRuntime(&cfg)
	t0 := time.Now()
	_, metrics, err := mapreduce.Run(cfg, VecInput(r))
	if err != nil {
		return nil, fmt.Errorf("mrjoin: build-snapshots job: %w", err)
	}
	out := &ShardSnapshots{Tuples: tuples, Metrics: metrics, Build: time.Since(t0)}
	for pid := 0; pid < opt.Partitions; pid++ {
		path := shardPath(pid)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			// Empty partition: no reducer key, so emit the snapshot here.
			if err := emitSnapshot(path, meta(pid), opt, chunkSize, nil, nil); err != nil {
				return nil, err
			}
		}
		out.Paths = append(out.Paths, path)
	}
	return out, nil
}

// emitSnapshot streams one partition's tuples into path as a v4 snapshot,
// writing through a same-directory temp file and an atomic rename so
// concurrent attempts at the same partition never interleave.
func emitSnapshot(path string, meta wire.SnapshotMeta, opt Options, chunkSize int, ids []int, codes []bitvec.Code) error {
	sw, err := core.NewFrozenStreamWriter(meta.Length, chunkSize, opt.IndexOpts)
	if err != nil {
		return err
	}
	for i, c := range codes {
		if err := sw.Add(ids[i], c); err != nil {
			return err
		}
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-")
	if err != nil {
		sw.Abort()
		return err
	}
	if err := wire.WriteSnapshotStream(f, meta, sw); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("mrjoin: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}
