package mrjoin

import (
	"sort"
	"testing"

	"haindex/internal/core"
	"haindex/internal/mapreduce"
	"haindex/internal/wire"
)

// TestBuildShardSnapshots: the reducer-emitted v4 snapshots load through
// both the eager and the mmap readers, and the union of shard answers equals
// a monolithic single-index build's answers.
func TestBuildShardSnapshots(t *testing.T) {
	r, _ := testData(t, 600, 0)
	r = roundTrip(r)
	opt := testOptions()
	pre, err := Preprocess(r, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Tiny chunk so every partition streams through several chunks.
	snaps, err := BuildShardSnapshots(r, pre, opt, dir, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps.Paths) != opt.Partitions {
		t.Fatalf("%d snapshot files, want %d", len(snaps.Paths), opt.Partitions)
	}
	total := 0
	for _, n := range snaps.Tuples {
		total += n
	}
	if total != len(r) {
		t.Fatalf("shards hold %d tuples, dataset has %d", total, len(r))
	}

	codes := hashCodes(pre, r)
	mono := core.NewSearcher(core.BuildDynamic(codes, nil, opt.IndexOpts))

	searchers := make([]*core.Searcher, 0, len(snaps.Paths))
	for i, path := range snaps.Paths {
		meta, mapped, err := wire.MapSnapshotFile(path)
		if err != nil {
			t.Fatalf("mapping %s: %v", path, err)
		}
		defer mapped.Close()
		if meta.Part != i || meta.Parts != opt.Partitions {
			t.Fatalf("%s: meta %d/%d", path, meta.Part, meta.Parts)
		}
		if mapped.Len() != snaps.Tuples[i] {
			t.Fatalf("%s: %d tuples, job reported %d", path, mapped.Len(), snaps.Tuples[i])
		}
		// The eager reader must accept the same file (downward path).
		if _, eager, err := wire.ReadSnapshotFile(path); err != nil {
			t.Fatalf("eager read %s: %v", path, err)
		} else if fi, ok := eager.(*core.FrozenIndex); !ok || !fi.ArenaForm() {
			t.Fatalf("%s decoded as %T", path, eager)
		}
		searchers = append(searchers, core.NewSearcher(mapped))
	}

	for qi := 0; qi < 40; qi++ {
		q := codes[qi*len(codes)/40]
		want := append([]int(nil), mono.Search(q, opt.Threshold)...)
		var got []int
		for _, sr := range searchers {
			got = append(got, sr.Search(q, opt.Threshold)...)
		}
		sort.Ints(want)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("query %d: sharded %d ids, monolithic %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: id mismatch at %d", qi, i)
			}
		}
	}
}

// TestBuildShardSnapshotsEmptyPartition: partitions that receive no tuples
// still produce a loadable snapshot.
func TestBuildShardSnapshotsEmptyPartition(t *testing.T) {
	r, _ := testData(t, 40, 0)
	r = roundTrip(r)
	opt := testOptions()
	opt.Partitions = 16 // far more partitions than clusters: some go empty
	opt.Nodes = 4
	pre, err := Preprocess(r, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := BuildShardSnapshots(r, pre, opt, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sawEmpty := false
	for i, path := range snaps.Paths {
		_, idx, err := wire.ReadSnapshotFile(path)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if idx.Len() == 0 {
			sawEmpty = true
		}
	}
	if !sawEmpty {
		t.Skip("no empty partition produced; dataset change?")
	}
}

// TestBuildShardSnapshotsUnderFaults: reducer re-execution rewrites shard
// files idempotently — the job still yields correct, loadable snapshots.
func TestBuildShardSnapshotsUnderFaults(t *testing.T) {
	r, _ := testData(t, 300, 0)
	r = roundTrip(r)
	opt := testOptions()
	opt.Faults = mapreduce.NewFaultPlan().
		FailEvery(mapreduce.MapTask, 3).
		FailEvery(mapreduce.ReduceTask, 2)
	opt.Retry = mapreduce.RetryPolicy{MaxAttempts: 5}
	pre, err := Preprocess(r, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := BuildShardSnapshots(r, pre, opt, t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, path := range snaps.Paths {
		_, idx, err := wire.ReadSnapshotFile(path)
		if err != nil {
			t.Fatalf("shard %d after faults: %v", i, err)
		}
		total += idx.Len()
	}
	if total != len(r) {
		t.Fatalf("shards hold %d tuples after faulty run, want %d", total, len(r))
	}
}
