// Package obs is the dependency-free observability layer shared by the
// serving stack (internal/server, internal/client) and the MapReduce runtime:
// lock-free log-spaced latency histograms, request-scoped trace spans, and a
// registry that components hang counters, gauges, and histograms on. The
// package deliberately depends only on the standard library so every layer of
// the system — including internal/core consumers — can use it without import
// cycles or new dependencies.
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram's buckets are log-spaced: values below subCount are exact,
// and above that each power of two is split into subCount sub-buckets, so
// the relative error of any recorded value is at most 1/subCount (~6%).
// This is the usual HDR-style layout, sized so one histogram is ~8 KB and
// Record is one atomic add with no locks — cheap enough to sit on the
// per-request serving path.
const (
	subBits  = 4
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64: index(maxInt64) is
	// (63-subBits)*subCount + (2*subCount-1) = (65-subBits)*subCount - 1.
	numBuckets = (65 - subBits) * subCount
)

// bucketIndex maps a non-negative value to its bucket. Negative values
// clamp to bucket 0 so a buggy caller cannot corrupt the layout.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	shift := uint(bits.Len64(u) - 1 - subBits)
	return int(shift)*subCount + int(u>>shift)
}

// bucketLower returns the smallest value mapping to bucket i — the bucket
// boundaries tests pin down.
func bucketLower(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	shift := uint(i/subCount - 1)
	m := int64(i - int(shift)*subCount)
	return m << shift
}

// Histogram is a lock-free fixed-bucket histogram of int64 values
// (typically latencies in nanoseconds, but any non-negative magnitude —
// distance computations, nodes visited — fits). Record never allocates and
// never blocks; Snapshot is a consistent-enough read for monitoring (counts
// are individually atomic, not globally fenced). The zero value is NOT
// usable; create with NewHistogram.
type Histogram struct {
	buckets []atomic.Uint64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Uint64, numBuckets)}
}

// Record adds one value.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordSince records the nanoseconds elapsed since t0.
func (h *Histogram) RecordSince(t0 time.Time) {
	h.Record(time.Since(t0).Nanoseconds())
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram's current state. Snapshots are plain
// values: mergeable, JSON-encodable, and independent of the live histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Low: bucketLower(i), Count: n})
		}
	}
	return s
}

// Bucket is one non-empty histogram bucket: Low is the smallest value the
// bucket holds, Count how many values landed in it.
type Bucket struct {
	Low   int64  `json:"low"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a Histogram. The zero value is an
// empty snapshot; Merge and the quantile accessors work on it directly.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Merge folds o into s — the shard/worker aggregation primitive. Bucket
// lists stay sorted by Low.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if len(o.Buckets) == 0 {
		return
	}
	merged := make([]Bucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Low < o.Buckets[j].Low):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Low < s.Buckets[i].Low:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, Bucket{Low: s.Buckets[i].Low, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}

// Quantile returns the value at quantile q in [0,1]: the lower bound of the
// bucket holding the ceil(q*count)-th value (exact for values < subCount).
// An empty snapshot returns 0; q outside [0,1] clamps.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += int64(b.Count)
		if seen > rank {
			return b.Low
		}
	}
	return s.Max
}

// Mean returns the average recorded value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// P50, P95, P99 are the percentile accessors monitoring dashboards ask for.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }
func (s HistSnapshot) P95() int64 { return s.Quantile(0.95) }
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }

// Summary formats the snapshot as durations — the human rendering used by
// CLIs ("p50=1.2ms p95=3.4ms p99=8ms max=12ms n=1024").
func (s HistSnapshot) Summary() string {
	if s.Count == 0 {
		return "empty"
	}
	d := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v n=%d",
		d(s.P50()), d(s.P95()), d(s.P99()), d(s.Max), s.Count)
}
