package obs

import (
	"math"
	"testing"
)

// TestBucketBoundaries pins the bucket layout down: indexes are monotone in
// the value, lower bounds invert the index, and small values are exact.
func TestBucketBoundaries(t *testing.T) {
	// Small values get their own bucket.
	for v := int64(0); v < subCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, got)
		}
		if got := bucketLower(int(v)); got != v {
			t.Fatalf("bucketLower(%d) = %d", v, got)
		}
	}
	// Every bucket's lower bound maps back to that bucket, and bounds are
	// strictly increasing.
	maxIdx := bucketIndex(math.MaxInt64)
	prev := int64(-1)
	for i := 0; i <= maxIdx; i++ {
		lo := bucketLower(i)
		if lo <= prev {
			t.Fatalf("bucketLower not increasing at %d: %d after %d", i, lo, prev)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLower(%d)) = %d", i, got)
		}
		prev = lo
	}
	if maxIdx >= numBuckets {
		t.Fatalf("bucketIndex(MaxInt64) = %d, out of %d buckets", maxIdx, numBuckets)
	}
	// Index is monotone across boundaries and the relative error is bounded
	// by the sub-bucket resolution.
	for _, v := range []int64{1, 15, 16, 17, 31, 32, 1000, 1e6, 1e9, 1e12, math.MaxInt64} {
		i := bucketIndex(v)
		lo := bucketLower(i)
		if lo > v {
			t.Fatalf("value %d below its bucket lower bound %d", v, lo)
		}
		if i < maxIdx {
			if hi := bucketLower(i + 1); hi <= v {
				t.Fatalf("value %d at index %d but next bucket starts at %d", v, i, hi)
			}
		}
		if v >= subCount && float64(v-lo)/float64(v) > 1.0/subCount {
			t.Fatalf("value %d bucket lower %d: relative error above 1/%d", v, lo, subCount)
		}
	}
}

// TestQuantileEdgeCases: empty (k=0) and single-value (k=1) histograms.
func TestQuantileEdgeCases(t *testing.T) {
	empty := NewHistogram().Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %d, want 0", q, got)
		}
	}
	if empty.Mean() != 0 || empty.Summary() != "empty" {
		t.Fatalf("empty snapshot: mean %v summary %q", empty.Mean(), empty.Summary())
	}

	one := NewHistogram()
	one.Record(7) // exact bucket: below subCount
	s := one.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Fatalf("single-value Quantile(%v) = %d, want 7", q, got)
		}
	}
	if s.Count != 1 || s.Sum != 7 || s.Max != 7 {
		t.Fatalf("single-value snapshot: %+v", s)
	}
}

func TestHistogramRecordAndQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000: p50 must land within one bucket of 500, p99 near 990.
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 || s.Max != 1000 {
		t.Fatalf("snapshot totals: %+v", s)
	}
	check := func(q float64, want int64) {
		got := s.Quantile(q)
		lo := want - want/subCount - 1
		if got < lo || got > want {
			t.Fatalf("Quantile(%v) = %d, want within [%d,%d]", q, got, lo, want)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	if got := s.Quantile(1); got < 1000-1000/subCount || got > 1000 {
		t.Fatalf("Quantile(1) = %d", got)
	}
	// Negative records clamp to 0 instead of corrupting the layout.
	h.Record(-5)
	if got := h.Snapshot().Quantile(0); got != 0 {
		t.Fatalf("after negative record Quantile(0) = %d", got)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := int64(0); v < 100; v++ {
		a.Record(v)
	}
	for v := int64(1000); v < 1100; v++ {
		b.Record(v)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count %d", sa.Count)
	}
	if sa.Max != 1099 {
		t.Fatalf("merged max %d", sa.Max)
	}
	wantSum := int64(99*100/2) + int64(1000+1099)*100/2
	if sa.Sum != wantSum {
		t.Fatalf("merged sum %d, want %d", sa.Sum, wantSum)
	}
	// Medians of the merged distribution straddle the two halves.
	if p25 := sa.Quantile(0.25); p25 >= 100 {
		t.Fatalf("merged p25 %d not from the low half", p25)
	}
	if p75 := sa.Quantile(0.75); p75 < 1000-1000/subCount {
		t.Fatalf("merged p75 %d not from the high half", p75)
	}
	// Buckets stay sorted and deduplicated.
	for i := 1; i < len(sa.Buckets); i++ {
		if sa.Buckets[i].Low <= sa.Buckets[i-1].Low {
			t.Fatalf("merged buckets unsorted at %d", i)
		}
	}
	// Merging identical histograms doubles counts bucket for bucket.
	sc := a.Snapshot()
	sc.Merge(a.Snapshot())
	if sc.Count != 200 || len(sc.Buckets) != len(a.Snapshot().Buckets) {
		t.Fatalf("self-merge: %+v", sc)
	}
	// Merging an empty snapshot is the identity.
	before := len(sa.Buckets)
	sa.Merge(HistSnapshot{})
	if sa.Count != 200 || len(sa.Buckets) != before {
		t.Fatalf("empty merge changed snapshot: %+v", sa)
	}
}
