package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 (requests served, retries,
// bytes). All methods are lock-free.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 (pool occupancy, open connections).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (use negative d to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of counters, gauges, and histograms that
// any component hangs its instruments on. Get-or-create lookups take a
// read-mostly lock; callers on hot paths should look their instrument up
// once and keep the pointer — recording through it is lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// HistSummary is one histogram's exported view: the full snapshot plus
// precomputed percentiles, so JSON consumers need no bucket math.
type HistSummary struct {
	Count int64    `json:"count"`
	Sum   int64    `json:"sum"`
	Mean  float64  `json:"mean"`
	P50   int64    `json:"p50"`
	P95   int64    `json:"p95"`
	P99   int64    `json:"p99"`
	Max   int64    `json:"max"`
	Hist  []Bucket `json:"buckets,omitempty"`
}

// Summarize builds the exported view of a snapshot.
func Summarize(s HistSnapshot) HistSummary {
	return HistSummary{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.P50(),
		P95:   s.P95(),
		P99:   s.P99(),
		Max:   s.Max,
		Hist:  s.Buckets,
	}
}

// RegistrySnapshot is a point-in-time copy of every instrument in a
// registry, JSON-encodable for the debug endpoint.
type RegistrySnapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]int64       `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures every instrument. Counters and histograms are read
// atomically per instrument (not fenced across instruments), which is the
// right consistency for monitoring.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSummary, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = Summarize(h.Snapshot())
	}
	return s
}

// JSON encodes the snapshot, indented — what the debug endpoint serves.
func (s RegistrySnapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // maps of plain values cannot fail to encode
		return []byte("{}")
	}
	return append(b, '\n')
}

// Names lists every instrument name, sorted — handy for tests and debug
// tooling.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
