package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestRegistryConcurrentWrites hammers one registry from many goroutines —
// get-or-create races, lock-free recording, and snapshots taken mid-flight —
// and then checks the final totals. Run under -race this is the package's
// thread-safety proof.
func TestRegistryConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every goroutine resolves the same names — the get-or-create race.
			c := r.Counter("requests")
			g := r.Gauge("inflight")
			h := r.Histogram("latency_ns")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Record(int64(i))
				g.Add(-1)
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race records; must not trip -race
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["requests"]; got != workers*perWorker {
		t.Fatalf("counter %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauges["inflight"]; got != 0 {
		t.Fatalf("gauge %d, want 0", got)
	}
	hs := s.Histograms["latency_ns"]
	if hs.Count != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", hs.Count, workers*perWorker)
	}
	if hs.Max != perWorker-1 {
		t.Fatalf("histogram max %d", hs.Max)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-4)
	r.Histogram("c").Record(123456)
	var round RegistrySnapshot
	if err := json.Unmarshal(r.Snapshot().JSON(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["a"] != 3 || round.Gauges["b"] != -4 {
		t.Fatalf("round-tripped snapshot: %+v", round)
	}
	if round.Histograms["c"].Count != 1 || round.Histograms["c"].Max != 123456 {
		t.Fatalf("round-tripped histogram: %+v", round.Histograms["c"])
	}
	want := []string{"a", "b", "c"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("names %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names %v, want %v", got, want)
		}
	}
}
