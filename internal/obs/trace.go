package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// SpanID names one span within its trace. The root span is always 0; NoSpan
// marks "no parent" (only the root has it).
type SpanID int

// NoSpan is the parent of a trace's root span.
const NoSpan SpanID = -1

// Span is one timed region of a request: a name, its start offset from the
// trace's beginning, its duration, and its parent span. Spans form a tree —
// the request's critical path is readable straight off the dump.
type Span struct {
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Parent SpanID        `json:"parent"`
}

// Trace is the span tree of one request. A Trace may be appended to from
// several goroutines (a router's per-shard fan-out), so Start/End take an
// internal lock; traces are request-scoped and short-lived, so the lock is
// uncontended in practice.
type Trace struct {
	mu    sync.Mutex
	name  string
	begin time.Time
	spans []Span
	done  bool
}

// NewTrace opens a trace whose root span is named name and starts now.
func NewTrace(name string) *Trace {
	return &Trace{
		name:  name,
		begin: time.Now(),
		spans: []Span{{Name: name, Parent: NoSpan}},
	}
}

// Name returns the root span's name.
func (t *Trace) Name() string { return t.name }

// Start opens a child span under parent (use 0 for the root) and returns its
// id. Close it with End. A nil Trace ignores Start/End/Finish, so optional
// tracing costs call sites no branches.
func (t *Trace) Start(name string, parent SpanID) SpanID {
	if t == nil {
		return NoSpan
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Start: time.Since(t.begin), Parent: parent})
	return id
}

// End closes span id, fixing its duration. Ending a span twice keeps the
// first duration.
func (t *Trace) End(id SpanID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id <= 0 || int(id) >= len(t.spans) || t.spans[id].Dur != 0 {
		return
	}
	t.spans[id].Dur = time.Since(t.begin) - t.spans[id].Start
}

// Finish closes the root span; the trace's Duration is fixed from here on.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.spans[0].Dur = time.Since(t.begin)
		t.done = true
	}
}

// Duration returns the root span's duration (elapsed time, if not yet
// finished).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.spans[0].Dur
	}
	return time.Since(t.begin)
}

// Spans returns a copy of the span list, root first.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// traceJSON is the dump layout: begin timestamp plus the span tree.
type traceJSON struct {
	Name  string    `json:"name"`
	Begin time.Time `json:"begin"`
	Spans []Span    `json:"spans"`
}

// MarshalJSON dumps the trace — the format the debug endpoint serves.
func (t *Trace) MarshalJSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.Marshal(traceJSON{Name: t.name, Begin: t.begin, Spans: t.spans})
}

// Tree renders the span tree as indented text, children in start order —
// what haquery -trace prints for the slowest query.
func (t *Trace) Tree() string {
	spans := t.Spans()
	children := make([][]SpanID, len(spans))
	for id := 1; id < len(spans); id++ {
		p := spans[id].Parent
		if p < 0 || int(p) >= len(spans) {
			p = 0
		}
		children[p] = append(children[p], SpanID(id))
	}
	var b strings.Builder
	var walk func(id SpanID, depth int)
	walk = func(id SpanID, depth int) {
		sp := spans[id]
		fmt.Fprintf(&b, "%s%-*s %8v  +%v\n",
			strings.Repeat("  ", depth), 24-2*depth, sp.Name,
			sp.Dur.Round(time.Microsecond), sp.Start.Round(time.Microsecond))
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}

// Tracer keeps the last capacity finished traces of one component in a ring,
// and separately pins the slowest trace seen — the one a tail-latency
// investigation wants. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []*Trace
	next    int
	total   int64
	slowest *Trace
}

// NewTracer returns a Tracer keeping the last capacity traces (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Trace, capacity)}
}

// Add finishes t (if the caller has not) and records it.
func (tz *Tracer) Add(t *Trace) {
	t.Finish()
	tz.mu.Lock()
	defer tz.mu.Unlock()
	tz.ring[tz.next] = t
	tz.next = (tz.next + 1) % len(tz.ring)
	tz.total++
	if tz.slowest == nil || t.Duration() > tz.slowest.Duration() {
		tz.slowest = t
	}
}

// Slowest returns the slowest trace recorded so far (nil when none).
func (tz *Tracer) Slowest() *Trace {
	tz.mu.Lock()
	defer tz.mu.Unlock()
	return tz.slowest
}

// Traces returns the retained traces, oldest first.
func (tz *Tracer) Traces() []*Trace {
	tz.mu.Lock()
	defer tz.mu.Unlock()
	var out []*Trace
	for i := 0; i < len(tz.ring); i++ {
		if t := tz.ring[(tz.next+i)%len(tz.ring)]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Total returns how many traces have been recorded (including evicted ones).
func (tz *Tracer) Total() int64 {
	tz.mu.Lock()
	defer tz.mu.Unlock()
	return tz.total
}
