package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("request")
	route := tr.Start("route", 0)
	tr.End(route)
	shard := tr.Start("shard-0", 0)
	attempt := tr.Start("attempt-0", shard)
	tr.End(attempt)
	tr.End(shard)
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Name != "request" || spans[0].Parent != NoSpan {
		t.Fatalf("root span %+v", spans[0])
	}
	if spans[attempt].Parent != shard || spans[shard].Parent != 0 {
		t.Fatalf("parenting: %+v", spans)
	}
	if tr.Duration() <= 0 {
		t.Fatalf("duration %v", tr.Duration())
	}
	// The child's window nests inside its parent's.
	if spans[attempt].Start < spans[shard].Start {
		t.Fatalf("child starts before parent")
	}

	tree := tr.Tree()
	for _, name := range []string{"request", "route", "shard-0", "attempt-0"} {
		if !strings.Contains(tree, name) {
			t.Fatalf("tree missing %q:\n%s", name, tree)
		}
	}
	// The nested span is indented under its parent.
	lines := strings.Split(strings.TrimRight(tree, "\n"), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[3], "    attempt-0") {
		t.Fatalf("tree layout:\n%s", tree)
	}

	blob, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Name  string `json:"name"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Name != "request" || len(dump.Spans) != 4 {
		t.Fatalf("JSON dump: %+v", dump)
	}
}

// TestTraceConcurrentSpans mirrors the router's fan-out: per-shard spans are
// opened and closed from separate goroutines.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := tr.Start("shard", 0)
			tr.End(id)
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Spans()); got != 9 {
		t.Fatalf("%d spans, want 9", got)
	}
}

func TestTracerRingAndSlowest(t *testing.T) {
	tz := NewTracer(2)
	if tz.Slowest() != nil {
		t.Fatal("slowest on empty tracer")
	}
	slow := NewTrace("slow")
	time.Sleep(2 * time.Millisecond)
	tz.Add(slow)
	for i := 0; i < 3; i++ {
		tz.Add(NewTrace("fast")) // finishes immediately
	}
	if got := tz.Total(); got != 4 {
		t.Fatalf("total %d", got)
	}
	if got := len(tz.Traces()); got != 2 {
		t.Fatalf("ring holds %d", got)
	}
	// The slowest trace is pinned even after the ring evicted it.
	if s := tz.Slowest(); s == nil || s.Name() != "slow" {
		t.Fatalf("slowest = %v", s)
	}
}
