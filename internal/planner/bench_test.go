package planner

import (
	"math/rand"
	"testing"
)

func BenchmarkPlannedSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	codes := clustered(rng, 20000, 32, 16, 3)
	p, err := Auto(codes, nil, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []int{3, 28} {
		b.Run(map[int]string{3: "tight", 28: "loose"}[h], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Select(codes[i%len(codes)], h)
			}
		})
	}
}
