// Package planner routes each Hamming-select to the cheapest of three
// engines — the HA-Index walk, multi-index hashing, and the brute scan — in
// the spirit of the paper's Section 4.7 cost analysis: the walk's search
// cost is bounded by its nodes and edges and collapses toward a scan when
// the threshold stops pruning, while MIH's probe count explodes with its
// pigeonhole radius but ignores the walk's cliff. Neither analytical bound
// ranks real engines reliably across (bits, threshold, n, distribution), so
// the planner's cost model is *measured*: at build time it calibrates
// per-engine nanosecond costs by timing sampled probes over a threshold
// grid (interpolating between grid points), and at serve time it refines
// every cell with an EWMA of observed latencies, exploring a runner-up
// engine periodically so a stale cell cannot pin a threshold to a slow
// engine forever.
//
// The planner is safe for concurrent use: cost cells and decision counters
// are atomics, and a lost racing EWMA store merely drops one observation.
package planner

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/mih"
)

// Strategy names an access path.
type Strategy int

const (
	// UseHA routes the query through the HA-Index walk.
	UseHA Strategy = iota
	// UseMIH routes the query through multi-index hashing.
	UseMIH
	// UseScan routes the query through the linear scan.
	UseScan

	numStrategies
)

func (s Strategy) String() string {
	switch s {
	case UseHA:
		return "ha"
	case UseMIH:
		return "mih"
	case UseScan:
		return "scan"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy maps the -engine flag spelling to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "ha", "ha-index":
		return UseHA, nil
	case "mih":
		return UseMIH, nil
	case "scan":
		return UseScan, nil
	}
	return 0, fmt.Errorf("planner: unknown engine %q (want ha, mih, or scan)", name)
}

// Engines is the set of access paths the planner chooses among. HA is
// required; MIH and the scan arrays are optional — a missing engine is
// simply never chosen.
type Engines struct {
	// HA is the HA-Index (pointer or frozen).
	HA core.Index
	// MIH is the adapted multi-index-hashing engine, or nil.
	MIH *core.EngineIndex
	// Codes and IDs drive the brute scan and supply calibration probes.
	// IDs defaults to positions when nil; an empty Codes disables both the
	// scan path and calibration.
	Codes []bitvec.Code
	IDs   []int
}

// Options tunes the planner. The zero value selects sane defaults.
type Options struct {
	// Seed drives probe sampling and the distance histogram.
	Seed int64
	// CalibProbes is the number of timed queries per (engine, grid
	// threshold) during build-time calibration; 0 selects 2, negative
	// disables calibration (cells start unmeasured and fill online).
	CalibProbes int
	// Alpha is the EWMA weight of a new observation; 0 selects 0.2.
	Alpha float64
	// ExploreEvery routes every k-th decision at a threshold to the
	// runner-up engine so stale cells heal; 0 selects 64, negative disables.
	ExploreEvery int64
}

// Plan describes one routing decision.
type Plan struct {
	Strategy Strategy
	// Explore marks a periodic runner-up probe rather than a cost win.
	Explore bool
	// EstimatedResults is the selectivity-based expected answer count.
	EstimatedResults float64
	// CostNs is the modeled per-query cost of each strategy in nanoseconds
	// (0 = unmeasured or engine unavailable).
	CostNs [numStrategies]float64
	// Reason is a human-readable justification (EXPLAIN).
	Reason string
}

// Planner owns the engine set and the measured cost model.
type Planner struct {
	eng  Engines
	n    int
	bits int

	alpha        float64
	exploreEvery uint64

	distHist []float64 // P(pairwise distance = d), sampled

	avail [numStrategies]bool
	// cost[s][h] is the EWMA per-query cost of strategy s at threshold h,
	// stored as float64 bits; 0 means unmeasured.
	cost [numStrategies][]atomic.Uint64
	// decisions[h] counts Plan calls at threshold h, pacing exploration.
	decisions []atomic.Uint64

	// srHA and srMIH back the single-goroutine Select/SelectWith
	// convenience paths, created lazily.
	srHA, srMIH *core.Searcher
}

// New builds a planner over an existing engine set and calibrates its cost
// model (unless opts.CalibProbes is negative).
func New(eng Engines, opts Options) (*Planner, error) {
	if eng.HA == nil {
		return nil, fmt.Errorf("planner: HA engine is required")
	}
	bits := eng.HA.Length()
	if eng.MIH != nil && eng.MIH.Length() != bits {
		return nil, fmt.Errorf("planner: MIH engine is %d-bit, HA is %d-bit", eng.MIH.Length(), bits)
	}
	if eng.IDs == nil && eng.Codes != nil {
		eng.IDs = make([]int, len(eng.Codes))
		for i := range eng.IDs {
			eng.IDs[i] = i
		}
	}
	if eng.Codes != nil && len(eng.IDs) != len(eng.Codes) {
		return nil, fmt.Errorf("planner: %d ids for %d codes", len(eng.IDs), len(eng.Codes))
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = 0.2
	}
	explore := opts.ExploreEvery
	if explore == 0 {
		explore = 64
	}
	if explore < 0 {
		explore = math.MaxInt64 // never
	}
	p := &Planner{
		eng:          eng,
		n:            eng.HA.Len(),
		bits:         bits,
		alpha:        alpha,
		exploreEvery: uint64(explore),
		decisions:    make([]atomic.Uint64, bits+1),
	}
	for s := range p.cost {
		p.cost[s] = make([]atomic.Uint64, bits+1)
	}
	p.avail[UseHA] = true
	p.avail[UseMIH] = eng.MIH != nil
	p.avail[UseScan] = len(eng.Codes) > 0
	rng := rand.New(rand.NewSource(opts.Seed))
	if len(eng.Codes) > 0 {
		p.distHist = sampleDistanceHistogram(eng.Codes, rng)
	} else {
		p.distHist = make([]float64, bits+1)
	}
	probes := opts.CalibProbes
	if probes == 0 {
		probes = 2
	}
	if probes > 0 && len(eng.Codes) > 0 {
		p.calibrate(probes, rng)
	}
	return p, nil
}

// Auto builds the full engine set — frozen HA-Index, MIH, scan — over the
// codes and returns a calibrated planner. ids default to positions.
func Auto(codes []bitvec.Code, ids []int, opts Options) (*Planner, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("planner: empty dataset")
	}
	m, err := mih.Build(codes, ids, mih.Options{})
	if err != nil {
		return nil, err
	}
	eng := Engines{
		HA:    core.Freeze(core.BuildDynamic(codes, ids, core.Options{})),
		MIH:   core.AsIndex(m),
		Codes: codes,
		IDs:   ids,
	}
	return New(eng, opts)
}

// sampleDistanceHistogram estimates P(dist = d) from random pairs.
func sampleDistanceHistogram(codes []bitvec.Code, rng *rand.Rand) []float64 {
	bits := codes[0].Len()
	hist := make([]float64, bits+1)
	const pairs = 2000
	for i := 0; i < pairs; i++ {
		a := codes[rng.Intn(len(codes))]
		b := codes[rng.Intn(len(codes))]
		hist[a.Distance(b)]++
	}
	for d := range hist {
		hist[d] /= pairs
	}
	return hist
}

// calibGrid returns the thresholds measured at build time: dense where the
// engines cross over at small h, sparse toward the full code width.
func (p *Planner) calibGrid() []int {
	grid := []int{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96}
	out := grid[:0]
	for _, h := range grid {
		if h <= p.bits {
			out = append(out, h)
		}
	}
	if len(out) == 0 || out[len(out)-1] != p.bits {
		out = append(out, p.bits)
	}
	return out
}

// calibrate seeds every cost cell: each available engine is timed on
// `probes` data-distributed queries at each grid threshold, and the cells
// between grid points are filled by linear interpolation — so the very
// first real query at any threshold already has a comparable cost model.
func (p *Planner) calibrate(probes int, rng *rand.Rand) {
	queries := make([]bitvec.Code, probes)
	for i := range queries {
		q := p.eng.Codes[rng.Intn(len(p.eng.Codes))].Clone()
		// Perturb so exact-duplicate groups do not make h=0 look free.
		for f := 0; f < 2; f++ {
			q.FlipBit(rng.Intn(p.bits))
		}
		queries[i] = q
	}
	srHA := core.NewSearcher(p.eng.HA)
	var srMIH *core.Searcher
	if p.avail[UseMIH] {
		srMIH = core.NewSearcher(p.eng.MIH)
	}
	grid := p.calibGrid()
	measured := make([][numStrategies]float64, len(grid))
	for gi, h := range grid {
		for s := Strategy(0); s < numStrategies; s++ {
			if !p.avail[s] {
				continue
			}
			start := time.Now()
			for _, q := range queries {
				switch s {
				case UseHA:
					srHA.Search(q, h)
				case UseMIH:
					srMIH.Search(q, h)
				case UseScan:
					p.scan(q, h, nil, nil)
				}
			}
			measured[gi][s] = float64(time.Since(start).Nanoseconds()) / float64(len(queries))
		}
	}
	for s := Strategy(0); s < numStrategies; s++ {
		if !p.avail[s] {
			continue
		}
		for gi := 0; gi < len(grid); gi++ {
			lo := grid[gi]
			hi, next := p.bits, measured[gi][s]
			if gi+1 < len(grid) {
				hi, next = grid[gi+1], measured[gi+1][s]
			}
			for h := lo; h <= hi; h++ {
				v := measured[gi][s]
				if hi > lo {
					t := float64(h-lo) / float64(hi-lo)
					v = (1-t)*measured[gi][s] + t*next
				}
				p.cost[s][h].Store(math.Float64bits(math.Max(v, 1)))
			}
		}
	}
}

// scan is the brute-force path; out may be nil for a timing-only run.
func (p *Planner) scan(q bitvec.Code, h int, out []int, stats *core.SearchStats) []int {
	for i, c := range p.eng.Codes {
		if _, ok := q.DistanceWithin(c, h); ok {
			if out != nil || stats != nil {
				out = append(out, p.eng.IDs[i])
			}
		}
	}
	if stats != nil {
		stats.DistanceComputations += len(p.eng.Codes)
		stats.LeavesChecked += len(p.eng.Codes)
	}
	return out
}

// CostNs returns the modeled per-query cost of strategy s at threshold h in
// nanoseconds (0 = unmeasured or unavailable).
func (p *Planner) CostNs(s Strategy, h int) float64 {
	h = p.clamp(h)
	if s < 0 || s >= numStrategies || !p.avail[s] {
		return 0
	}
	return math.Float64frombits(p.cost[s][h].Load())
}

// Available reports whether strategy s can serve queries.
func (p *Planner) Available(s Strategy) bool {
	return s >= 0 && s < numStrategies && p.avail[s]
}

func (p *Planner) clamp(h int) int {
	if h < 0 {
		return 0
	}
	if h > p.bits {
		return p.bits
	}
	return h
}

// Selectivity returns the estimated fraction of tuples within distance h of
// a data-distributed query.
func (p *Planner) Selectivity(h int) float64 {
	if h >= p.bits {
		return 1
	}
	s := 0.0
	for d := 0; d <= h && d < len(p.distHist); d++ {
		s += p.distHist[d]
	}
	return s
}

// exploreCostCap bounds how bad a runner-up may look before periodic
// exploration stops probing it. Exploration heals stale cells near the
// decision boundary; a runner-up this far behind cannot plausibly become
// the winner before drift re-prices the whole grid, and probing it charges
// its full cost to a live query.
const exploreCostCap = 8.0

// Plan decides the access path for threshold h without executing. Every
// exploreEvery-th decision at a threshold deliberately picks the runner-up
// so its EWMA cell keeps tracking reality — unless the runner-up is modeled
// at more than exploreCostCap times the winner, in which case the probe
// would cost far more than the staleness it guards against.
func (p *Planner) Plan(h int) Plan {
	h = p.clamp(h)
	pl := Plan{EstimatedResults: p.Selectivity(h) * float64(p.n)}
	best, second := Strategy(-1), Strategy(-1)
	for s := Strategy(0); s < numStrategies; s++ {
		if !p.avail[s] {
			continue
		}
		c := math.Float64frombits(p.cost[s][h].Load())
		pl.CostNs[s] = c
		if c == 0 {
			// Unmeasured cells win outright: one real query prices them.
			pl.Strategy = s
			pl.Reason = fmt.Sprintf("%s unmeasured at h=%d; probing it", s, h)
			return pl
		}
		if best < 0 || c < pl.CostNs[best] {
			best, second = s, best
		} else if second < 0 || c < pl.CostNs[second] {
			second = s
		}
	}
	if best < 0 {
		// Only the HA walk exists and nothing is measured.
		pl.Strategy = UseHA
		pl.Reason = "no cost model; defaulting to the HA-Index walk"
		return pl
	}
	d := p.decisions[h].Add(1)
	if second >= 0 && d%p.exploreEvery == 0 &&
		pl.CostNs[second] <= exploreCostCap*pl.CostNs[best] {
		pl.Strategy = second
		pl.Explore = true
		pl.Reason = fmt.Sprintf("exploring runner-up %s (%.0fns vs best %s %.0fns)",
			second, pl.CostNs[second], best, pl.CostNs[best])
		return pl
	}
	pl.Strategy = best
	if second >= 0 {
		pl.Reason = fmt.Sprintf("%s %.0fns beats %s %.0fns at h=%d",
			best, pl.CostNs[best], second, pl.CostNs[second], h)
	} else {
		pl.Reason = fmt.Sprintf("%s is the only available engine", best)
	}
	return pl
}

// Observe folds a measured per-query cost (nanoseconds) into the EWMA cell
// for (s, h). Safe for concurrent use; a racing store loses one sample.
func (p *Planner) Observe(s Strategy, h int, ns float64) {
	if s < 0 || s >= numStrategies || ns <= 0 {
		return
	}
	h = p.clamp(h)
	cell := &p.cost[s][h]
	old := math.Float64frombits(cell.Load())
	v := ns
	if old != 0 {
		v = (1-p.alpha)*old + p.alpha*ns
	}
	cell.Store(math.Float64bits(v))
}

// Select answers the Hamming-select through the planned path, observes the
// measured cost, and returns the plan that was used. Select and SelectWith
// reuse planner-owned searchers and so must not be called concurrently;
// concurrent servers run their own Searchers and use Plan/Observe directly.
func (p *Planner) Select(q bitvec.Code, h int) ([]int, core.SearchStats, Plan) {
	pl := p.Plan(h)
	out, stats := p.SelectWith(pl.Strategy, q, h)
	return out, stats, pl
}

// SelectWith forces one strategy, still feeding the observation loop.
func (p *Planner) SelectWith(s Strategy, q bitvec.Code, h int) ([]int, core.SearchStats) {
	var out []int
	var stats core.SearchStats
	start := time.Now()
	switch s {
	case UseMIH:
		if p.srMIH == nil {
			p.srMIH = core.NewSearcher(p.eng.MIH)
		}
		out = append(out, p.srMIH.Search(q, h)...)
		stats = p.srMIH.Stats
	case UseScan:
		out = p.scan(q, h, []int{}, &stats)
	default:
		if p.srHA == nil {
			p.srHA = core.NewSearcher(p.eng.HA)
		}
		out = append(out, p.srHA.Search(q, h)...)
		stats = p.srHA.Stats
	}
	p.Observe(s, h, float64(time.Since(start).Nanoseconds()))
	return out, stats
}

// Explain renders the decision for threshold h, EXPLAIN-style.
func (p *Planner) Explain(h int) string {
	pl := p.Plan(h)
	var b strings.Builder
	fmt.Fprintf(&b, "Hamming-select h=%d over %d tuples (%d-bit codes)\n", h, p.n, p.bits)
	fmt.Fprintf(&b, "  estimated selectivity: %.4f (~%.0f results)\n", p.Selectivity(h), pl.EstimatedResults)
	for s := Strategy(0); s < numStrategies; s++ {
		if !p.avail[s] {
			fmt.Fprintf(&b, "  %-4s: unavailable\n", s)
		} else if pl.CostNs[s] == 0 {
			fmt.Fprintf(&b, "  %-4s: unmeasured\n", s)
		} else {
			fmt.Fprintf(&b, "  %-4s: %.0f ns/query (measured EWMA)\n", s, pl.CostNs[s])
		}
	}
	fmt.Fprintf(&b, "  -> %s: %s\n", pl.Strategy, pl.Reason)
	return b.String()
}

// Engines exposes the planner's engine set (e.g. so a server can share the
// same indexes for forced-engine requests).
func (p *Planner) Engines() Engines { return p.eng }
