// Package planner adds a cost-based access-path choice on top of the
// HA-Index, in the spirit of the paper's Section 4.7 cost analysis: the
// index's search cost is bounded by its nodes and edges and collapses
// toward a scan when the threshold stops pruning, so a query engine should
// not probe the index blindly. The planner estimates the Hamming-ball
// selectivity from a pairwise-distance histogram, tracks the index's
// measured per-threshold cost, and routes each query to the cheaper of
// H-Search and the linear scan, re-probing periodically so it adapts when
// the data or threshold regime changes.
package planner

import (
	"fmt"
	"math/rand"
	"strings"

	"haindex/internal/bitvec"
	"haindex/internal/core"
)

// Strategy names an access path.
type Strategy int

const (
	// UseIndex routes the query through H-Search.
	UseIndex Strategy = iota
	// UseScan routes the query through the linear scan.
	UseScan
)

func (s Strategy) String() string {
	if s == UseIndex {
		return "ha-index"
	}
	return "scan"
}

// Plan describes one routing decision.
type Plan struct {
	Strategy Strategy
	// EstimatedResults is the selectivity-based expected answer count.
	EstimatedResults float64
	// IndexCost is the tracked per-threshold index cost in distance
	// computations (0 until first measured).
	IndexCost float64
	// ScanCost is the scan cost in distance computations (= n).
	ScanCost float64
	// Reason is a human-readable justification (EXPLAIN).
	Reason string
}

// Planner owns the dataset's codes, its HA-Index, and the cost state.
type Planner struct {
	codes []bitvec.Code
	ids   []int
	idx   *core.DynamicIndex

	n        int
	bits     int
	distHist []float64 // P(pairwise distance = d), sampled

	// ewma[h] tracks the index's measured distance computations at
	// threshold h; sinceProbe[h] counts scan-routed queries since the last
	// index probe at h.
	ewma       []float64
	sinceProbe []int
}

// reprobeEvery forces an index probe after this many consecutive
// scan-routed queries at one threshold, so the planner notices when the
// index becomes competitive again.
const reprobeEvery = 32

// New builds a planner (and the underlying Dynamic HA-Index) over the
// codes; ids default to positions.
func New(codes []bitvec.Code, ids []int, opts core.Options, seed int64) *Planner {
	if len(codes) == 0 {
		panic("planner: empty dataset")
	}
	if ids == nil {
		ids = make([]int, len(codes))
		for i := range ids {
			ids[i] = i
		}
	}
	bits := codes[0].Len()
	p := &Planner{
		codes:      codes,
		ids:        ids,
		idx:        core.BuildDynamic(codes, ids, opts),
		n:          len(codes),
		bits:       bits,
		ewma:       make([]float64, bits+1),
		sinceProbe: make([]int, bits+1),
	}
	p.distHist = sampleDistanceHistogram(codes, seed)
	return p
}

// sampleDistanceHistogram estimates P(dist = d) from random pairs.
func sampleDistanceHistogram(codes []bitvec.Code, seed int64) []float64 {
	bits := codes[0].Len()
	hist := make([]float64, bits+1)
	rng := rand.New(rand.NewSource(seed))
	const pairs = 2000
	for i := 0; i < pairs; i++ {
		a := codes[rng.Intn(len(codes))]
		b := codes[rng.Intn(len(codes))]
		hist[a.Distance(b)]++
	}
	for d := range hist {
		hist[d] /= pairs
	}
	return hist
}

// Selectivity returns the estimated fraction of tuples within distance h of
// a data-distributed query.
func (p *Planner) Selectivity(h int) float64 {
	if h >= p.bits {
		return 1
	}
	s := 0.0
	for d := 0; d <= h; d++ {
		s += p.distHist[d]
	}
	return s
}

// Plan decides the access path for threshold h without executing.
func (p *Planner) Plan(h int) Plan {
	if h < 0 {
		h = 0
	}
	if h > p.bits {
		h = p.bits
	}
	pl := Plan{
		EstimatedResults: p.Selectivity(h) * float64(p.n),
		ScanCost:         float64(p.n),
		IndexCost:        p.ewma[h],
	}
	switch {
	case p.ewma[h] == 0:
		pl.Strategy = UseIndex
		pl.Reason = "no measured index cost yet at this threshold; probing the HA-Index"
	case p.sinceProbe[h] >= reprobeEvery:
		pl.Strategy = UseIndex
		pl.Reason = fmt.Sprintf("re-probing the HA-Index after %d scan-routed queries", p.sinceProbe[h])
	case p.ewma[h] < float64(p.n):
		pl.Strategy = UseIndex
		pl.Reason = fmt.Sprintf("index cost %.0f < scan cost %d", p.ewma[h], p.n)
	default:
		pl.Strategy = UseScan
		pl.Reason = fmt.Sprintf("index cost %.0f >= scan cost %d (threshold too loose to prune)", p.ewma[h], p.n)
	}
	return pl
}

// Select answers the Hamming-select through the planned path and returns
// the plan that was used.
func (p *Planner) Select(q bitvec.Code, h int) ([]int, Plan) {
	pl := p.Plan(h)
	if pl.Strategy == UseScan {
		p.sinceProbe[h]++
		var out []int
		for i, c := range p.codes {
			if _, ok := q.DistanceWithin(c, h); ok {
				out = append(out, p.ids[i])
			}
		}
		return out, pl
	}
	var stats core.SearchStats
	out := p.idx.SearchInto(q, h, &stats)
	p.observe(h, float64(stats.DistanceComputations))
	return out, pl
}

// observe folds a measured index cost into the per-threshold EWMA.
func (p *Planner) observe(h int, cost float64) {
	p.sinceProbe[h] = 0
	if p.ewma[h] == 0 {
		p.ewma[h] = cost
		return
	}
	const alpha = 0.25
	p.ewma[h] = (1-alpha)*p.ewma[h] + alpha*cost
}

// Explain renders the decision for threshold h, EXPLAIN-style.
func (p *Planner) Explain(h int) string {
	pl := p.Plan(h)
	var b strings.Builder
	fmt.Fprintf(&b, "Hamming-select h=%d over %d tuples (%d-bit codes)\n", h, p.n, p.bits)
	fmt.Fprintf(&b, "  estimated selectivity: %.4f (~%.0f results)\n", p.Selectivity(h), pl.EstimatedResults)
	fmt.Fprintf(&b, "  scan cost:  %d distance computations\n", p.n)
	if pl.IndexCost > 0 {
		fmt.Fprintf(&b, "  index cost: %.0f distance computations (measured EWMA)\n", pl.IndexCost)
	} else {
		fmt.Fprintf(&b, "  index cost: unmeasured (V=%d, E=%d bound)\n", p.idx.NodeCount(), p.idx.EdgeCount())
	}
	fmt.Fprintf(&b, "  -> %s: %s\n", pl.Strategy, pl.Reason)
	return b.String()
}

// Index exposes the underlying HA-Index (e.g. for updates; the planner's
// cost state adapts automatically as measurements change).
func (p *Planner) Index() *core.DynamicIndex { return p.idx }
