package planner

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/core"
)

func clustered(rng *rand.Rand, n, bits, clusters, flips int) []bitvec.Code {
	out := make([]bitvec.Code, 0, n)
	for len(out) < n {
		center := bitvec.Rand(rng, bits)
		for i := 0; i < n/clusters+1 && len(out) < n; i++ {
			c := center.Clone()
			for f := 0; f < flips; f++ {
				c.FlipBit(rng.Intn(bits))
			}
			out = append(out, c)
		}
	}
	return out
}

func equalIDs(a, b []int) bool {
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func autoPlanner(t testing.TB, codes []bitvec.Code, opts Options) *Planner {
	t.Helper()
	p, err := Auto(codes, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCorrectEveryPath: whatever path the planner picks — and each path when
// forced — results match the oracle.
func TestCorrectEveryPath(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	codes := clustered(rng, 1000, 32, 8, 3)
	p := autoPlanner(t, codes, Options{Seed: 1})
	for trial := 0; trial < 40; trial++ {
		q := codes[rng.Intn(len(codes))].Clone()
		q.FlipBit(rng.Intn(32))
		h := []int{1, 3, 8, 16, 31}[trial%5]
		var want []int
		for i, c := range codes {
			if q.Distance(c) <= h {
				want = append(want, i)
			}
		}
		got, _, pl := p.Select(q, h)
		if !equalIDs(got, want) {
			t.Fatalf("h=%d strategy=%s mismatch", h, pl.Strategy)
		}
		for s := Strategy(0); s < numStrategies; s++ {
			forced, stats := p.SelectWith(s, q, h)
			if !equalIDs(forced, want) {
				t.Fatalf("h=%d forced %s mismatch", h, s)
			}
			if stats.DistanceComputations == 0 && len(want) > 0 {
				t.Fatalf("h=%d forced %s reported no work", h, s)
			}
		}
	}
}

// TestCalibrationFillsModel: after New every cell of every available engine
// is measured, so the first real query at any threshold has a full model.
func TestCalibrationFillsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	codes := clustered(rng, 600, 32, 8, 3)
	p := autoPlanner(t, codes, Options{Seed: 2})
	for s := Strategy(0); s < numStrategies; s++ {
		if !p.Available(s) {
			t.Fatalf("%s unavailable in Auto planner", s)
		}
		for h := 0; h <= 32; h++ {
			if p.CostNs(s, h) <= 0 {
				t.Fatalf("%s cost unmeasured at h=%d after calibration", s, h)
			}
		}
	}
}

// TestObserveRefinesCell: the EWMA pulls a cell toward new observations.
func TestObserveRefinesCell(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	codes := clustered(rng, 300, 32, 4, 2)
	p := autoPlanner(t, codes, Options{Seed: 3})
	before := p.CostNs(UseHA, 5)
	target := before * 100
	for i := 0; i < 50; i++ {
		p.Observe(UseHA, 5, target)
	}
	after := p.CostNs(UseHA, 5)
	if math.Abs(after-target) > target/10 {
		t.Fatalf("EWMA did not converge: before=%.0f after=%.0f target=%.0f", before, after, target)
	}
	// Unrelated cells stay put.
	if p.CostNs(UseHA, 20) <= 0 {
		t.Fatal("neighboring cell lost its measurement")
	}
}

// TestPlanFollowsCosts: with the model pinned by hand, Plan picks the
// cheapest engine and explores the runner-up on schedule.
func TestPlanFollowsCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	codes := clustered(rng, 300, 32, 4, 2)
	p := autoPlanner(t, codes, Options{Seed: 4, ExploreEvery: 8, Alpha: 0.9})
	// Hammer the cells until mih is clearly cheapest at h=6, with the
	// runner-up (ha) close enough to stay worth exploring.
	for i := 0; i < 40; i++ {
		p.Observe(UseHA, 6, 500)
		p.Observe(UseMIH, 6, 100)
		p.Observe(UseScan, 6, 9000)
	}
	counts := map[Strategy]int{}
	explores := 0
	for i := 0; i < 64; i++ {
		pl := p.Plan(6)
		counts[pl.Strategy]++
		if pl.Explore {
			explores++
			if pl.Strategy == UseMIH {
				t.Fatal("exploration picked the best engine, not the runner-up")
			}
		}
	}
	if counts[UseMIH] < 48 {
		t.Fatalf("cheapest engine chosen only %d/64 times", counts[UseMIH])
	}
	if explores == 0 {
		t.Fatal("planner never explored the runner-up")
	}
}

// TestExploreCostCap: a runner-up modeled far beyond the winner is never
// probed — exploration must not charge a pathological engine's full cost
// to a live query.
func TestExploreCostCap(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	codes := clustered(rng, 300, 32, 4, 2)
	p := autoPlanner(t, codes, Options{Seed: 7, ExploreEvery: 4, Alpha: 0.9})
	for i := 0; i < 40; i++ {
		p.Observe(UseHA, 8, 100)
		p.Observe(UseMIH, 8, 100*exploreCostCap*10) // hopeless runner-up
		p.Observe(UseScan, 8, 100*exploreCostCap*20)
	}
	for i := 0; i < 64; i++ {
		if pl := p.Plan(8); pl.Strategy != UseHA {
			t.Fatalf("decision %d routed to %s (explore=%v) despite a %.0fx cost gap",
				i, pl.Strategy, pl.Explore, exploreCostCap*10)
		}
	}
}

// TestRegimeSwitch: on clustered data the measured model keeps tight
// thresholds off the scan, and at the full code width the walk has
// collapsed, so the planner should have moved off it — the crossover the
// multi-engine design exists to exploit.
func TestRegimeSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	codes := clustered(rng, 3000, 32, 12, 3)
	p := autoPlanner(t, codes, Options{Seed: 5, CalibProbes: 4})
	// Refine with real executions at both extremes.
	for i := 0; i < 12; i++ {
		q := codes[rng.Intn(len(codes))]
		for _, h := range []int{2, 30} {
			pl := p.Plan(h)
			p.SelectWith(pl.Strategy, q, h)
		}
	}
	if pl := p.Plan(2); pl.Strategy == UseScan && !pl.Explore {
		t.Errorf("tight threshold routed to the scan: %+v", pl)
	}
}

// TestUncalibratedProbesFirst: with calibration disabled, unmeasured cells
// are probed before any cost comparison.
func TestUncalibratedProbesFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	codes := clustered(rng, 200, 32, 4, 2)
	p := autoPlanner(t, codes, Options{Seed: 6, CalibProbes: -1})
	pl := p.Plan(4)
	if pl.CostNs[pl.Strategy] != 0 {
		t.Fatalf("uncalibrated planner claims a measured cost: %+v", pl)
	}
	if !strings.Contains(pl.Reason, "unmeasured") {
		t.Fatalf("reason should mention the unmeasured probe: %q", pl.Reason)
	}
	// Pricing every engine once ends the probing phase.
	q := codes[0]
	for s := Strategy(0); s < numStrategies; s++ {
		p.SelectWith(s, q, 4)
	}
	if pl := p.Plan(4); pl.CostNs[pl.Strategy] == 0 {
		t.Fatal("cells still unmeasured after forced probes")
	}
}

// TestHAOnlyPlanner: with no MIH and no codes, every plan stays on HA.
func TestHAOnlyPlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	codes := clustered(rng, 200, 32, 4, 2)
	idx := core.Freeze(core.BuildDynamic(codes, nil, core.Options{}))
	p, err := New(Engines{HA: idx}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Available(UseMIH) || p.Available(UseScan) {
		t.Fatal("engines available without backing state")
	}
	for _, h := range []int{0, 4, 31} {
		if pl := p.Plan(h); pl.Strategy != UseHA {
			t.Fatalf("h=%d routed to %s without the engine", h, pl.Strategy)
		}
	}
}

func TestSelectivityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	codes := clustered(rng, 500, 24, 4, 2)
	p := autoPlanner(t, codes, Options{Seed: 7})
	prev := 0.0
	for h := 0; h <= 24; h++ {
		s := p.Selectivity(h)
		if s < prev-1e-12 {
			t.Fatalf("selectivity not monotone at h=%d", h)
		}
		prev = s
	}
	if p.Selectivity(24) < 0.999 {
		t.Fatalf("selectivity at h=L should be ~1, got %v", p.Selectivity(24))
	}
	// Self-distance mass makes tiny-h selectivity nonzero on clustered data.
	if p.Selectivity(4) <= 0 {
		t.Fatal("clustered data should have nonzero tight selectivity")
	}
}

func TestExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	codes := clustered(rng, 300, 32, 4, 2)
	p := autoPlanner(t, codes, Options{Seed: 8})
	out := p.Explain(3)
	for _, want := range []string{"h=3", "ha", "mih", "scan", "measured EWMA", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{"ha": UseHA, "ha-index": UseHA, "mih": UseMIH, "scan": UseScan} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("warp"); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestPlanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	codes := clustered(rng, 100, 16, 2, 1)
	p := autoPlanner(t, codes, Options{Seed: 9})
	if pl := p.Plan(-5); !p.Available(pl.Strategy) {
		t.Error("negative h should clamp and plan")
	}
	if pl := p.Plan(99); pl.EstimatedResults < float64(len(codes))-1 {
		t.Error("h > L should estimate full selectivity")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Engines{}, Options{}); err == nil {
		t.Error("missing HA engine accepted")
	}
	if _, err := Auto(nil, nil, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	rng := rand.New(rand.NewSource(211))
	codes := clustered(rng, 50, 32, 2, 1)
	idx := core.Freeze(core.BuildDynamic(codes, nil, core.Options{}))
	if _, err := New(Engines{HA: idx, Codes: codes, IDs: []int{1}}, Options{}); err == nil {
		t.Error("mismatched id count accepted")
	}
}
