package planner

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/core"
)

func clustered(rng *rand.Rand, n, bits, clusters, flips int) []bitvec.Code {
	out := make([]bitvec.Code, 0, n)
	for len(out) < n {
		center := bitvec.Rand(rng, bits)
		for i := 0; i < n/clusters+1 && len(out) < n; i++ {
			c := center.Clone()
			for f := 0; f < flips; f++ {
				c.FlipBit(rng.Intn(bits))
			}
			out = append(out, c)
		}
	}
	return out
}

func equalIDs(a, b []int) bool {
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCorrectEitherPath: whatever path the planner picks, results match the
// oracle.
func TestCorrectEitherPath(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	codes := clustered(rng, 1000, 32, 8, 3)
	p := New(codes, nil, core.Options{}, 1)
	for trial := 0; trial < 40; trial++ {
		q := codes[rng.Intn(len(codes))].Clone()
		q.FlipBit(rng.Intn(32))
		h := []int{1, 3, 8, 16, 31}[trial%5]
		got, _ := p.Select(q, h)
		var want []int
		for i, c := range codes {
			if q.Distance(c) <= h {
				want = append(want, i)
			}
		}
		if !equalIDs(got, want) {
			t.Fatalf("h=%d mismatch", h)
		}
	}
}

// TestRegimeSwitch: tight thresholds stay on the index; loose thresholds
// converge to the scan.
func TestRegimeSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	codes := clustered(rng, 3000, 32, 12, 3)
	p := New(codes, nil, core.Options{}, 1)
	q := codes[0]
	// Warm both thresholds.
	for i := 0; i < 5; i++ {
		p.Select(q, 2)
		p.Select(q, 30)
	}
	if pl := p.Plan(2); pl.Strategy != UseIndex {
		t.Errorf("tight threshold should use the index: %+v", pl)
	}
	if pl := p.Plan(30); pl.Strategy != UseScan {
		t.Errorf("loose threshold should use the scan: %+v", pl)
	}
}

// TestReprobe: after enough scan-routed queries the planner probes the
// index again.
func TestReprobe(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	codes := clustered(rng, 800, 32, 6, 3)
	p := New(codes, nil, core.Options{}, 1)
	h := 30
	p.Select(codes[0], h) // measure once: expensive -> scan from now on
	if p.Plan(h).Strategy != UseScan {
		t.Skip("index unexpectedly cheap at loose threshold")
	}
	probes := 0
	for i := 0; i < 3*reprobeEvery+3; i++ {
		pl := p.Plan(h)
		if pl.Strategy == UseIndex {
			probes++
		}
		p.Select(codes[i%len(codes)], h)
	}
	if probes == 0 {
		t.Fatal("planner never re-probed the index")
	}
}

func TestSelectivityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	codes := clustered(rng, 500, 24, 4, 2)
	p := New(codes, nil, core.Options{}, 1)
	prev := 0.0
	for h := 0; h <= 24; h++ {
		s := p.Selectivity(h)
		if s < prev-1e-12 {
			t.Fatalf("selectivity not monotone at h=%d", h)
		}
		prev = s
	}
	if p.Selectivity(24) < 0.999 {
		t.Fatalf("selectivity at h=L should be ~1, got %v", p.Selectivity(24))
	}
	// Self-distance mass makes tiny-h selectivity nonzero on clustered data.
	if p.Selectivity(4) <= 0 {
		t.Fatal("clustered data should have nonzero tight selectivity")
	}
}

func TestExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	codes := clustered(rng, 300, 32, 4, 2)
	p := New(codes, nil, core.Options{}, 1)
	out := p.Explain(3)
	for _, want := range []string{"h=3", "scan cost", "index cost", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	p.Select(codes[0], 3)
	out = p.Explain(3)
	if !strings.Contains(out, "measured EWMA") {
		t.Errorf("explain after probe should show measured cost:\n%s", out)
	}
}

func TestPlanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	codes := clustered(rng, 100, 16, 2, 1)
	p := New(codes, nil, core.Options{}, 1)
	if pl := p.Plan(-5); pl.Strategy != UseIndex {
		t.Error("negative h should clamp and plan")
	}
	if pl := p.Plan(99); pl.EstimatedResults < float64(len(codes))-1 {
		t.Error("h > L should estimate full selectivity")
	}
}
