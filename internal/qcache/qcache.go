// Package qcache is a sharded, bounded result cache for Hamming-select
// answers. An entry maps one fully-resolved query — the code's words, the
// threshold, the access path that computed it, and the index epoch it was
// computed against — to the sorted id list the index returned.
//
// Correctness under mutation comes entirely from the key: the epoch field
// is a monotone version of the backing index (lsm.Shard.Version on a
// mutable server, a router-local mutation generation on the client, the
// constant 0 on an immutable index). A mutation bumps the version, every
// later lookup uses the new key, and stale entries are never read again —
// they age out of the bound like any other cold entry. No invalidation
// traffic exists.
//
// Admission is TinyLFU-style so one-hit wonders cannot evict the hot set: a
// small count-min sketch of 4-bit counters estimates each key's access
// frequency, and a full shard admits a newcomer only by evicting a sampled
// victim with a lower estimate. The sketch halves itself periodically so
// the frequency window tracks the recent workload.
package qcache

import (
	"encoding/binary"
	"sync"

	"haindex/internal/bitvec"
	"haindex/internal/obs"
)

// Key identifies one cached result. Epoch is the invalidation token: any
// result-changing mutation of the backing index must be visible as a new
// Epoch value, which keys the entry space afresh. Shard distinguishes
// partial (per-partition) results held by a router from whole-deployment
// ones; single-index callers leave it -1.
type Key struct {
	Code   bitvec.Code
	H      int
	Engine int
	Shard  int
	Epoch  uint64
	// Append packs the fields fixed-width (epoch, h, engine, shard+1, word
	// count, then the code words), so two keys collide iff they are equal —
	// pinned by the package's property and fuzz tests.
}

// Append packs the key into dst and returns the extended slice. The caller
// reuses dst across lookups to keep the hot path allocation-free.
func (k Key) Append(dst []byte) []byte {
	var hdr [20]byte
	binary.BigEndian.PutUint64(hdr[0:], k.Epoch)
	binary.BigEndian.PutUint32(hdr[8:], uint32(k.H))
	binary.BigEndian.PutUint32(hdr[12:], uint32(k.Engine))
	binary.BigEndian.PutUint32(hdr[16:], uint32(k.Shard+1))
	dst = append(dst, hdr[:]...)
	words := k.Code.Words()
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(words)))
	for _, w := range words {
		dst = binary.BigEndian.AppendUint64(dst, w)
	}
	return dst
}

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the total number of cached results across all
	// shards (0 = 65536).
	MaxEntries int
	// MaxIDs bounds one entry's result length; longer results bypass the
	// cache — they are the expensive-to-hold, cheap-to-skip tail (0 = 4096).
	MaxIDs int
	// Shards is the number of independently locked segments, rounded up to
	// a power of two (0 = 16).
	Shards int
	// Obs, when set, is where the hit/miss/eviction/bypass counters and the
	// entries gauge register, under the "qcache." prefix; nil keeps the
	// cache's counters private.
	Obs *obs.Registry
}

// Cache is a sharded, bounded result cache. Safe for concurrent use. The
// id slices returned by Get and handed to Put are shared with the cache
// and must be treated as immutable by every caller.
type Cache struct {
	shards []cshard
	mask   uint64
	maxIDs int

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bypass    *obs.Counter
	entries   *obs.Gauge
}

type entry struct {
	ids  []int
	h    uint64 // the key's hash, kept so victim sampling needn't re-hash
	last uint64 // shard access clock at last hit; the recency signal
}

type cshard struct {
	mu    sync.Mutex
	m     map[string]*entry
	cap   int
	clock uint64
	sk    sketch
	_     [24]byte // keep neighbouring shards off one cache line
}

// New builds a cache. A nil Obs gives it private counters.
func New(opts Options) *Cache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 1 << 16
	}
	if opts.MaxIDs <= 0 {
		opts.MaxIDs = 4096
	}
	ns := opts.Shards
	if ns <= 0 {
		ns = 16
	}
	for ns&(ns-1) != 0 {
		ns++
	}
	if opts.MaxEntries < ns {
		ns = 1
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Cache{
		shards:    make([]cshard, ns),
		mask:      uint64(ns - 1),
		hits:      reg.Counter("qcache.hits"),
		misses:    reg.Counter("qcache.misses"),
		evictions: reg.Counter("qcache.evictions"),
		bypass:    reg.Counter("qcache.bypass"),
		entries:   reg.Gauge("qcache.entries"),
	}
	perShard := (opts.MaxEntries + ns - 1) / ns
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = perShard
		sh.m = make(map[string]*entry, perShard)
		sh.sk.init(perShard)
	}
	c.maxIDs = opts.MaxIDs
	return c
}

// Get returns the result cached under the packed key kb (built with
// Key.Append into a caller-reused buffer), if any. The returned slice is
// shared and read-only. Every lookup — hit or miss — feeds the admission
// sketch, so a key's frequency accrues before it is ever admitted.
func (c *Cache) Get(kb []byte) ([]int, bool) {
	h := hash(kb)
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	sh.sk.inc(h)
	e, ok := sh.m[string(kb)]
	var ids []int
	if ok {
		sh.clock++
		e.last = sh.clock
		// The slice must be read under the lock: Put's concurrent-fill path
		// rewrites e.ids, and a torn slice header could pair a new length
		// with an older, smaller backing array.
		ids = e.ids
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return ids, true
}

// Put caches ids (which may be nil: a no-match answer is as cacheable as
// any other) under the packed key kb, admitting it TinyLFU-style when the
// shard is full: a sampled victim with a lower estimated frequency is
// evicted, otherwise the newcomer is bypassed. The ids slice is retained
// and must not be mutated afterwards; kb is copied.
func (c *Cache) Put(kb []byte, ids []int) {
	if len(ids) > c.maxIDs {
		c.bypass.Inc()
		return
	}
	h := hash(kb)
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[string(kb)]; ok {
		// A concurrent fill of the same key. The two answers can differ — a
		// fill racing a mutation may capture the epoch before the search and
		// the index state after it — but either is a valid answer for a read
		// concurrent with that write, and readers see exactly one of them
		// because Get copies the slice header under this same lock.
		e.ids = ids
		return
	}
	if len(sh.m) >= sh.cap {
		victim, vfreq := sh.sampleVictim()
		if victim == "" || sh.sk.estimate(h) <= vfreq {
			c.bypass.Inc()
			return
		}
		delete(sh.m, victim)
		c.evictions.Inc()
		c.entries.Add(-1)
	}
	sh.clock++
	sh.m[string(kb)] = &entry{ids: ids, h: h, last: sh.clock}
	c.entries.Add(1)
}

// sampleVictim scans a handful of entries (map range order is effectively
// random) and nominates the one with the lowest (frequency, recency) as the
// eviction candidate, returning its key and estimated frequency.
func (sh *cshard) sampleVictim() (string, uint32) {
	const sample = 5
	var (
		victim string
		vfreq  uint32
		vlast  uint64
		seen   int
	)
	for k, e := range sh.m {
		f := sh.sk.estimate(e.h)
		if seen == 0 || f < vfreq || (f == vfreq && e.last < vlast) {
			victim, vfreq, vlast = k, f, e.last
		}
		seen++
		if seen >= sample {
			break
		}
	}
	return victim, vfreq
}

// Warmth reports the cache's current occupancy and lifetime hit/miss
// counts — the cheap signal a server exports (wire.StatsResp, protocol v6)
// so a client router can prefer the replica whose cache is already hot.
func (c *Cache) Warmth() (entries, hits, misses int64) {
	return c.entries.Value(), c.hits.Value(), c.misses.Value()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Hash is FNV-1a over a packed key — dependency-free and good enough to
// spread Gray-coded keys across shards and sketch rows. It is exported for
// the client router, which rendezvous-hashes the same packed keys to pick
// the replica whose cache a query should keep warm.
func Hash(b []byte) uint64 { return hash(b) }

// hash is FNV-1a over the packed key — dependency-free and good enough to
// spread Gray-coded keys across shards and sketch rows.
func hash(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// sketch is a 4-row count-min sketch of 4-bit saturating counters — the
// TinyLFU frequency estimator. After sampleSize increments every counter is
// halved, so estimates decay toward the recent access distribution.
type sketch struct {
	rows  [4][]uint64 // 16 counters per word
	mask  uint64
	adds  int
	reset int
}

func (s *sketch) init(entries int) {
	w := 64
	for w < entries {
		w *= 2
	}
	words := w / 16
	if words < 1 {
		words = 1
	}
	for r := range s.rows {
		s.rows[r] = make([]uint64, words)
	}
	s.mask = uint64(w - 1)
	s.reset = 8 * w
}

// counterAt splits a slot index into its word and in-word shift.
func counterAt(slot uint64) (word uint64, shift uint) {
	return slot / 16, uint(slot%16) * 4
}

func (s *sketch) inc(h uint64) {
	for r := range s.rows {
		slot := (h >> (uint(r) * 13)) & s.mask
		word, shift := counterAt(slot)
		v := (s.rows[r][word] >> shift) & 0xf
		if v < 15 {
			s.rows[r][word] += 1 << shift
		}
	}
	s.adds++
	if s.adds >= s.reset {
		s.halve()
	}
}

func (s *sketch) estimate(h uint64) uint32 {
	min := uint64(0xf)
	for r := range s.rows {
		slot := (h >> (uint(r) * 13)) & s.mask
		word, shift := counterAt(slot)
		if v := (s.rows[r][word] >> shift) & 0xf; v < min {
			min = v
		}
	}
	return uint32(min)
}

// halve ages the sketch: every 4-bit counter is divided by two in place.
func (s *sketch) halve() {
	for r := range s.rows {
		for i, w := range s.rows[r] {
			s.rows[r][i] = (w >> 1) & 0x7777777777777777
		}
	}
	s.adds = 0
}
